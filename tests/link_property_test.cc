// Property tests for Link: conservation (every accepted packet arrives
// exactly once), FIFO delivery, throughput never exceeding the configured
// bandwidth, and queue-depth bookkeeping under random offered load.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/net/link.h"
#include "src/sim/random.h"

namespace softtimer {
namespace {

TEST(LinkPropertyTest, ConservationAndFifoUnderRandomLoad) {
  Simulator sim;
  Link::Config cfg;
  cfg.bandwidth_bps = 100e6;
  cfg.propagation_delay = SimDuration::Micros(10);
  cfg.queue_limit_packets = 32;
  Link link(&sim, cfg);
  Rng rng(5);

  std::vector<uint64_t> delivered;
  link.set_receiver([&](const Packet& p) { delivered.push_back(p.id); });

  std::vector<uint64_t> accepted;
  uint64_t next_id = 1;
  uint64_t dropped = 0;
  std::function<void()> offer = [&] {
    Packet p;
    p.id = next_id++;
    p.kind = Packet::Kind::kData;
    p.size_bytes = 60 + static_cast<uint32_t>(rng.UniformU64(1440));
    if (link.Send(p)) {
      accepted.push_back(p.id);
    } else {
      ++dropped;
    }
    if (next_id <= 5'000) {
      // Offered load ~2x the link rate on average: drops guaranteed.
      sim.ScheduleAfter(rng.ExpDuration(SimDuration::Micros(30)), offer);
    }
  };
  offer();
  sim.RunUntilIdle(SimTime::Zero() + SimDuration::Seconds(5));

  EXPECT_EQ(delivered, accepted);  // exact FIFO, no loss, no duplication
  EXPECT_GT(dropped, 0u);
  EXPECT_EQ(link.stats().dropped, dropped);
  EXPECT_EQ(link.stats().sent, accepted.size());
  EXPECT_EQ(link.queue_depth(), 0u);
}

TEST(LinkPropertyTest, ThroughputBoundedByBandwidth) {
  Simulator sim;
  Link::Config cfg;
  cfg.bandwidth_bps = 10e6;  // deliberately slow
  cfg.queue_limit_packets = 100'000;
  Link link(&sim, cfg);
  uint64_t bytes_delivered = 0;
  SimTime last_arrival;
  link.set_receiver([&](const Packet& p) {
    bytes_delivered += p.size_bytes;
    last_arrival = sim.now();
  });
  for (int i = 0; i < 1'000; ++i) {
    Packet p;
    p.id = static_cast<uint64_t>(i);
    p.size_bytes = 1500;
    link.Send(p);
  }
  sim.RunUntilIdle();
  double secs = last_arrival.ToSeconds();
  double mbps = static_cast<double>(bytes_delivered) * 8 / secs / 1e6;
  EXPECT_LE(mbps, 10.001);
  EXPECT_GT(mbps, 9.9);  // and the wire stays busy
}

TEST(LinkPropertyTest, MixedSizesSerializeProportionally) {
  Simulator sim;
  Link::Config cfg;
  cfg.bandwidth_bps = 8e6;  // 1 byte per microsecond
  cfg.propagation_delay = SimDuration::Zero();
  Link link(&sim, cfg);
  std::map<uint64_t, SimTime> arrival;
  link.set_receiver([&](const Packet& p) { arrival[p.id] = sim.now(); });
  Packet small;
  small.id = 1;
  small.size_bytes = 100;
  Packet big;
  big.id = 2;
  big.size_bytes = 1000;
  link.Send(small);
  link.Send(big);
  sim.RunUntilIdle();
  EXPECT_EQ(arrival[1].nanos_since_origin(), 100'000);
  EXPECT_EQ(arrival[2].nanos_since_origin(), 1'100'000);
}

}  // namespace
}  // namespace softtimer
