// Parameterized property sweeps for AdaptivePacer against synthetic
// soft-timer delay processes: for every (target, burst-floor, delay-regime)
// combination, either the achieved mean interval equals the target (when the
// burst headroom covers the mean lateness) or it converges to
// burst-floor + mean lateness + 1 (saturation) - the structure of
// Tables 4/5.

#include <gtest/gtest.h>

#include "src/core/adaptive_pacer.h"
#include "src/core/poll_governor.h"
#include "src/sim/random.h"
#include "src/stats/summary_stats.h"

namespace softtimer {
namespace {

struct SweepParam {
  uint64_t target;
  uint64_t min_burst;
  double mean_delay;  // soft-timer lateness beyond the scheduled delta
};

class PacerSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PacerSweep, MeanMatchesTargetOrSaturates) {
  const SweepParam& p = GetParam();
  AdaptivePacer pacer({p.target, p.min_burst});
  Rng rng(99);
  uint64_t now = 0;
  pacer.StartTrain(now);
  SummaryStats intervals;
  uint64_t prev = now;
  uint64_t delta = pacer.OnPacketSent(now);
  for (int i = 0; i < 40'000; ++i) {
    uint64_t lateness = 1 + static_cast<uint64_t>(rng.Exponential(p.mean_delay));
    now += delta + lateness;
    intervals.Add(static_cast<double>(now - prev));
    prev = now;
    delta = pacer.OnPacketSent(now);
  }
  double saturated_mean = static_cast<double>(p.min_burst) + p.mean_delay + 1.0;
  if (saturated_mean < static_cast<double>(p.target)) {
    // Headroom exists: the adaptive rule holds the target.
    EXPECT_NEAR(intervals.mean(), static_cast<double>(p.target),
                static_cast<double>(p.target) * 0.03);
  } else {
    // No headroom: the pacer degrades gracefully to the saturation floor.
    EXPECT_NEAR(intervals.mean(), saturated_mean, saturated_mean * 0.06);
    EXPECT_GT(intervals.mean(), static_cast<double>(p.target));
  }
  // Intervals never dip below the burst floor (plus the +1 rounding tick).
  EXPECT_GE(intervals.min(), static_cast<double>(p.min_burst));
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, PacerSweep,
    ::testing::Values(
        // The Table 4 sweep at mean soft-timer delay ~ the ST-Apache regime.
        SweepParam{40, 12, 14.0}, SweepParam{40, 20, 14.0}, SweepParam{40, 25, 14.0},
        SweepParam{40, 30, 14.0}, SweepParam{40, 35, 14.0},
        // The Table 5 sweep.
        SweepParam{60, 12, 14.0}, SweepParam{60, 30, 14.0}, SweepParam{60, 35, 14.0},
        // Fast pacing at Gigabit rates with tiny delays.
        SweepParam{12, 6, 1.5}, SweepParam{20, 12, 3.0},
        // Slow pacing, large delays.
        SweepParam{240, 120, 60.0}, SweepParam{1000, 100, 200.0}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "t" + std::to_string(info.param.target) + "_b" +
             std::to_string(info.param.min_burst) + "_d" +
             std::to_string(static_cast<int>(info.param.mean_delay));
    });

struct GovernorParam {
  double quota;
  double rate_per_tick;
};

class GovernorSweep : public ::testing::TestWithParam<GovernorParam> {};

TEST_P(GovernorSweep, HoldsQuotaAcrossRatesAndQuotas) {
  const GovernorParam& p = GetParam();
  PollGovernor::Config c;
  c.aggregation_quota = p.quota;
  c.min_interval_ticks = 5;
  c.max_interval_ticks = 20'000;
  c.initial_interval_ticks = 100;
  PollGovernor g(c);
  Rng rng(7);
  uint64_t interval = c.initial_interval_ticks;
  double carry = 0;
  double found_sum = 0;
  int measured = 0;
  for (int i = 0; i < 4'000; ++i) {
    carry += static_cast<double>(interval) * p.rate_per_tick;
    size_t found = static_cast<size_t>(carry);
    carry -= static_cast<double>(found);
    if (i > 800) {
      found_sum += static_cast<double>(found);
      ++measured;
    }
    interval = g.OnPoll(found, interval);
  }
  double per_poll = found_sum / measured;
  // Achievable unless the quota forces an interval outside the clamp.
  double needed_interval = p.quota / p.rate_per_tick;
  if (needed_interval >= 5 && needed_interval <= 20'000) {
    EXPECT_NEAR(per_poll, p.quota, p.quota * 0.30)
        << "rate " << p.rate_per_tick << " quota " << p.quota;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RateQuotaGrid, GovernorSweep,
    ::testing::Values(GovernorParam{1, 0.002}, GovernorParam{1, 0.02}, GovernorParam{1, 0.1},
                      GovernorParam{2, 0.002}, GovernorParam{2, 0.02}, GovernorParam{5, 0.02},
                      GovernorParam{5, 0.1}, GovernorParam{10, 0.02}, GovernorParam{15, 0.1}),
    [](const ::testing::TestParamInfo<GovernorParam>& info) {
      return "q" + std::to_string(static_cast<int>(info.param.quota)) + "_r" +
             std::to_string(static_cast<int>(info.param.rate_per_tick * 1000));
    });

}  // namespace
}  // namespace softtimer
