// Unit and property tests for SoftTimerFacility - the paper's contribution.
//
// The central invariant is Section 3's bound on when an event fires:
//
//     T  <  ActualEventTime  <  T + X + 1      (measurement-clock ticks)
//
// provided the backup interrupt runs every X ticks. The property tests
// verify it under randomized trigger-state workloads for every timer-queue
// backend.

#include <gtest/gtest.h>

#include <vector>

#include "src/core/clock_source.h"
#include "src/core/soft_timer_facility.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"

namespace softtimer {
namespace {

class FacilityFixture : public ::testing::Test {
 protected:
  FacilityFixture() : clock_(&sim_, 1'000'000) {
    SoftTimerFacility::Config cfg;
    cfg.interrupt_clock_hz = 1'000;  // X = 1000
    facility_ = std::make_unique<SoftTimerFacility>(&clock_, cfg);
  }

  void AdvanceTo(SimDuration t) { sim_.RunUntil(SimTime::Zero() + t); }

  Simulator sim_;
  SimClockSource clock_;
  std::unique_ptr<SoftTimerFacility> facility_;
};

TEST_F(FacilityFixture, PaperApiSurfaces) {
  EXPECT_EQ(facility_->MeasureResolution(), 1'000'000u);
  EXPECT_EQ(facility_->InterruptClockResolution(), 1'000u);
  EXPECT_EQ(facility_->ticks_per_backup_interval(), 1000u);
  EXPECT_EQ(facility_->MeasureTime(), 0u);
  AdvanceTo(SimDuration::Micros(123));
  EXPECT_EQ(facility_->MeasureTime(), 123u);
}

TEST_F(FacilityFixture, DoesNotFireBeforeLowerBound) {
  int fired = 0;
  facility_->ScheduleSoftEvent(50, [&](const SoftTimerFacility::FireInfo&) { ++fired; });
  // Trigger states up to and including tick 50: must not fire (actual must
  // exceed T).
  for (int t = 1; t <= 50; ++t) {
    AdvanceTo(SimDuration::Micros(t));
    facility_->OnTriggerState(TriggerSource::kSyscall);
  }
  EXPECT_EQ(fired, 0);
  AdvanceTo(SimDuration::Micros(51));
  facility_->OnTriggerState(TriggerSource::kSyscall);
  EXPECT_EQ(fired, 1);
}

TEST_F(FacilityFixture, FireInfoFields) {
  AdvanceTo(SimDuration::Micros(10));
  SoftTimerFacility::FireInfo got{};
  facility_->ScheduleSoftEvent(40, [&](const SoftTimerFacility::FireInfo& info) { got = info; });
  AdvanceTo(SimDuration::Micros(73));
  facility_->OnTriggerState(TriggerSource::kIpOutput);
  EXPECT_EQ(got.scheduled_tick, 10u);
  EXPECT_EQ(got.delta_ticks, 40u);
  EXPECT_EQ(got.fired_tick, 73u);
  EXPECT_EQ(got.source, TriggerSource::kIpOutput);
  EXPECT_EQ(got.lateness_ticks(), 23u);
}

TEST_F(FacilityFixture, CookieRetireHookFiresOnDispatchAndCancel) {
  std::vector<uint64_t> retired;
  facility_->set_event_retired_hook(
      [](void* ctx, uint64_t cookie) {
        static_cast<std::vector<uint64_t>*>(ctx)->push_back(cookie);
      },
      &retired);
  int fired = 0;
  SoftEventId dispatched = facility_->ScheduleSoftEventWithCookie(
      10, [&](const SoftTimerFacility::FireInfo&) { ++fired; }, 0, 0xA1);
  SoftEventId cancelled = facility_->ScheduleSoftEventWithCookie(
      500, [&](const SoftTimerFacility::FireInfo&) { ++fired; }, 0, 0xB2);
  SoftEventId plain = facility_->ScheduleSoftEvent(
      500, [&](const SoftTimerFacility::FireInfo&) { ++fired; });
  ASSERT_TRUE(dispatched.valid());

  // Cancelling a cookie-carrying event retires its cookie (the leak the
  // sharded runtime's remote-id table depends on not having)...
  EXPECT_TRUE(facility_->CancelSoftEvent(cancelled));
  ASSERT_EQ(retired.size(), 1u);
  EXPECT_EQ(retired[0], 0xB2u);
  // ...but only once: a stale cancel must not re-retire it.
  EXPECT_FALSE(facility_->CancelSoftEvent(cancelled));
  EXPECT_EQ(retired.size(), 1u);
  // Cookie-less events never reach the hook.
  EXPECT_TRUE(facility_->CancelSoftEvent(plain));
  EXPECT_EQ(retired.size(), 1u);

  // Dispatch retires too (pre-handler).
  AdvanceTo(SimDuration::Micros(20));
  facility_->OnTriggerState(TriggerSource::kSyscall);
  EXPECT_EQ(fired, 1);
  ASSERT_EQ(retired.size(), 2u);
  EXPECT_EQ(retired[1], 0xA1u);
}

TEST_F(FacilityFixture, StaleCancelAfterSlotReuseDoesNotRetireReusersCookie) {
  // The cancel-after-fire race window: the first event fired (its cookie was
  // retired) and an unrelated cookie-carrying event recycled its slab slot.
  // A stale cancel through the old id must retire nothing - CancelSoftEvent
  // reads the cookie via PeekUserData, which rejects stale ids, so the
  // reuser's cookie cannot be retired against a dead handle.
  std::vector<uint64_t> retired;
  facility_->set_event_retired_hook(
      [](void* ctx, uint64_t cookie) {
        static_cast<std::vector<uint64_t>*>(ctx)->push_back(cookie);
      },
      &retired);
  int fired = 0;
  SoftEventId a = facility_->ScheduleSoftEventWithCookie(
      10, [&](const SoftTimerFacility::FireInfo&) { ++fired; }, 0, 0xA1);
  AdvanceTo(SimDuration::Micros(20));
  facility_->OnTriggerState(TriggerSource::kSyscall);
  ASSERT_EQ(fired, 1);
  ASSERT_EQ(retired, (std::vector<uint64_t>{0xA1}));
  // b very likely recycles a's slab slot.
  SoftEventId b = facility_->ScheduleSoftEventWithCookie(
      500, [&](const SoftTimerFacility::FireInfo&) { ++fired; }, 0, 0xB2);
  EXPECT_FALSE(facility_->CancelSoftEvent(a));
  EXPECT_EQ(retired, (std::vector<uint64_t>{0xA1}));  // b's cookie untouched
  EXPECT_TRUE(facility_->CancelSoftEvent(b));
  EXPECT_EQ(retired, (std::vector<uint64_t>{0xA1, 0xB2}));
}

TEST_F(FacilityFixture, HandlerCancellingDueBatchPeerRetiresCookieOnce) {
  // Two cookie events due in the same drain batch; the first one's handler
  // cancels the second before it fires. The peer's cookie must be retired
  // exactly once (by the cancel) and its handler must never run - the
  // retire-on-dispatch path in DispatchFired must not see it again.
  std::vector<uint64_t> retired;
  facility_->set_event_retired_hook(
      [](void* ctx, uint64_t cookie) {
        static_cast<std::vector<uint64_t>*>(ctx)->push_back(cookie);
      },
      &retired);
  int peer_fired = 0;
  SoftEventId peer{};
  bool cancel_ok = false;
  facility_->ScheduleSoftEventWithCookie(
      10,
      [&](const SoftTimerFacility::FireInfo&) {
        cancel_ok = facility_->CancelSoftEvent(peer);
      },
      0, 0xA1);
  peer = facility_->ScheduleSoftEventWithCookie(
      10, [&](const SoftTimerFacility::FireInfo&) { ++peer_fired; }, 0, 0xB2);
  AdvanceTo(SimDuration::Micros(20));
  facility_->OnTriggerState(TriggerSource::kSyscall);
  EXPECT_TRUE(cancel_ok);
  EXPECT_EQ(peer_fired, 0);
  EXPECT_EQ(retired, (std::vector<uint64_t>{0xA1, 0xB2}));
  // And the peer's id stays dead: no double retire on a later stale cancel.
  EXPECT_FALSE(facility_->CancelSoftEvent(peer));
  EXPECT_EQ(retired.size(), 2u);
}

TEST_F(FacilityFixture, BackupInterruptCatchesOverdueEvents) {
  int fired = 0;
  facility_->ScheduleSoftEvent(10, [&](const SoftTimerFacility::FireInfo& info) {
    ++fired;
    EXPECT_EQ(info.source, TriggerSource::kBackupIntr);
  });
  // No trigger states at all; the host calls OnBackupInterrupt at 1 kHz.
  AdvanceTo(SimDuration::Millis(1));
  EXPECT_EQ(facility_->OnBackupInterrupt(), 1u);
  EXPECT_EQ(fired, 1);
}

TEST_F(FacilityFixture, CancelPreventsDispatch) {
  int fired = 0;
  SoftEventId id =
      facility_->ScheduleSoftEvent(5, [&](const SoftTimerFacility::FireInfo&) { ++fired; });
  EXPECT_TRUE(facility_->CancelSoftEvent(id));
  EXPECT_FALSE(facility_->CancelSoftEvent(id));
  AdvanceTo(SimDuration::Millis(2));
  facility_->OnTriggerState(TriggerSource::kSyscall);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(facility_->stats().cancelled, 1u);
}

TEST_F(FacilityFixture, MultipleEventsDispatchInDeadlineOrder) {
  std::vector<int> order;
  facility_->ScheduleSoftEvent(30, [&](const SoftTimerFacility::FireInfo&) { order.push_back(30); });
  facility_->ScheduleSoftEvent(10, [&](const SoftTimerFacility::FireInfo&) { order.push_back(10); });
  facility_->ScheduleSoftEvent(20, [&](const SoftTimerFacility::FireInfo&) { order.push_back(20); });
  AdvanceTo(SimDuration::Micros(100));
  EXPECT_EQ(facility_->OnTriggerState(TriggerSource::kTrap), 3u);
  EXPECT_EQ(order, (std::vector<int>{10, 20, 30}));
}

TEST_F(FacilityFixture, HandlerCanRescheduleItself) {
  int fires = 0;
  std::function<void(const SoftTimerFacility::FireInfo&)> handler =
      [&](const SoftTimerFacility::FireInfo&) {
        if (++fires < 5) {
          facility_->ScheduleSoftEvent(10, handler);
        }
      };
  facility_->ScheduleSoftEvent(10, handler);
  for (int t = 1; t <= 200; ++t) {
    AdvanceTo(SimDuration::Micros(t));
    facility_->OnTriggerState(TriggerSource::kSyscall);
  }
  EXPECT_EQ(fires, 5);
}

TEST_F(FacilityFixture, ZeroDeltaFiresAtNextTriggerStateOneTickLater) {
  int fired = 0;
  facility_->ScheduleSoftEvent(0, [&](const SoftTimerFacility::FireInfo&) { ++fired; });
  facility_->OnTriggerState(TriggerSource::kSyscall);  // same tick: too early
  EXPECT_EQ(fired, 0);
  AdvanceTo(SimDuration::Micros(1));
  facility_->OnTriggerState(TriggerSource::kSyscall);
  EXPECT_EQ(fired, 1);
}

TEST_F(FacilityFixture, LatenessClampsToZeroOnClockAnomaly) {
  // A stalled or backward-stepping measurement clock can stamp a dispatch
  // before the nominal due time; lateness must clamp instead of wrapping.
  SoftTimerFacility::FireInfo info{};
  info.scheduled_tick = 1000;
  info.delta_ticks = 50;
  info.fired_tick = 900;  // anomaly: fired "before" scheduled + T
  EXPECT_EQ(info.lateness_ticks(), 0u);
  info.fired_tick = 1050;  // exactly at the nominal due time
  EXPECT_EQ(info.lateness_ticks(), 0u);
  info.fired_tick = 1051;
  EXPECT_EQ(info.lateness_ticks(), 1u);
}

TEST_F(FacilityFixture, HandlerSelfCancelReturnsFalse) {
  bool cancel_result = true;
  SoftEventId id;
  id = facility_->ScheduleSoftEvent(10, [&](const SoftTimerFacility::FireInfo&) {
    // The event is already off the queue when its handler runs.
    cancel_result = facility_->CancelSoftEvent(id);
  });
  AdvanceTo(SimDuration::Micros(20));
  EXPECT_EQ(facility_->OnTriggerState(TriggerSource::kSyscall), 1u);
  EXPECT_FALSE(cancel_result);
  EXPECT_EQ(facility_->stats().cancelled, 0u);
}

TEST_F(FacilityFixture, HandlerCanCancelAnotherPendingEvent) {
  int other_fired = 0;
  bool cancel_result = false;
  SoftEventId other = facility_->ScheduleSoftEvent(
      50, [&](const SoftTimerFacility::FireInfo&) { ++other_fired; });
  facility_->ScheduleSoftEvent(10, [&](const SoftTimerFacility::FireInfo&) {
    cancel_result = facility_->CancelSoftEvent(other);
  });
  AdvanceTo(SimDuration::Micros(20));  // first due, `other` still pending
  facility_->OnTriggerState(TriggerSource::kSyscall);
  EXPECT_TRUE(cancel_result);
  AdvanceTo(SimDuration::Millis(2));
  facility_->OnTriggerState(TriggerSource::kSyscall);
  EXPECT_EQ(other_fired, 0);
  EXPECT_EQ(facility_->stats().cancelled, 1u);
}

TEST_F(FacilityFixture, StatsAccounting) {
  facility_->ScheduleSoftEvent(1, [](const SoftTimerFacility::FireInfo&) {});
  facility_->ScheduleSoftEvent(1, [](const SoftTimerFacility::FireInfo&) {});
  AdvanceTo(SimDuration::Micros(5));
  facility_->OnTriggerState(TriggerSource::kIpIntr);
  facility_->OnTriggerState(TriggerSource::kIpIntr);
  const auto& s = facility_->stats();
  EXPECT_EQ(s.scheduled, 2u);
  EXPECT_EQ(s.dispatches, 2u);
  EXPECT_EQ(s.checks, 2u);
  EXPECT_EQ(s.dispatches_by_source[static_cast<size_t>(TriggerSource::kIpIntr)], 2u);
  EXPECT_EQ(s.lateness_ticks.count(), 2u);
}

TEST_F(FacilityFixture, DispatchObserverRunsBeforeHandler) {
  std::vector<int> order;
  facility_->set_dispatch_observer(
      [&](const SoftTimerFacility::FireInfo&) { order.push_back(1); });
  facility_->ScheduleSoftEvent(1, [&](const SoftTimerFacility::FireInfo&) { order.push_back(2); });
  AdvanceTo(SimDuration::Micros(5));
  facility_->OnTriggerState(TriggerSource::kSyscall);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(FacilityFixture, ScheduleObserverFires) {
  int notified = 0;
  facility_->set_schedule_observer([&] { ++notified; });
  facility_->ScheduleSoftEvent(10, [](const SoftTimerFacility::FireInfo&) {});
  EXPECT_EQ(notified, 1);
}

TEST_F(FacilityFixture, NextDeadlineTick) {
  EXPECT_FALSE(facility_->NextDeadlineTick().has_value());
  facility_->ScheduleSoftEvent(10, [](const SoftTimerFacility::FireInfo&) {});
  // Deadline = scheduled(0) + T(10) + 1.
  EXPECT_EQ(facility_->NextDeadlineTick(), 11u);
}

// --- Property: the paper's delay bound, randomized, all backends ------------

struct BoundParam {
  TimerQueueKind kind;
  uint64_t seed;
};

class DelayBoundProperty : public ::testing::TestWithParam<BoundParam> {};

TEST_P(DelayBoundProperty, ActualFireTimeWithinPaperBound) {
  Simulator sim;
  SimClockSource clock(&sim, 1'000'000);
  SoftTimerFacility::Config cfg;
  cfg.interrupt_clock_hz = 1'000;
  cfg.queue_kind = GetParam().kind;
  SoftTimerFacility facility(&clock, cfg);
  Rng rng(GetParam().seed);

  const uint64_t x = facility.ticks_per_backup_interval();
  uint64_t checked = 0;

  // Random trigger states (bursty gaps up to ~200 us) with the backup
  // interrupt at exactly 1 ms boundaries.
  uint64_t next_backup_us = 1000;
  std::function<void()> backup = [&] {
    facility.OnBackupInterrupt();
    next_backup_us += 1000;
    sim.ScheduleAt(SimTime::Zero() + SimDuration::Micros(static_cast<double>(next_backup_us)),
                   backup);
  };
  sim.ScheduleAt(SimTime::Zero() + SimDuration::Micros(1000), backup);

  std::function<void()> triggers = [&] {
    facility.OnTriggerState(TriggerSource::kSyscall);
    sim.ScheduleAfter(rng.ExpDuration(SimDuration::Micros(40)), triggers);
  };
  sim.ScheduleAfter(SimDuration::Micros(1), triggers);

  // Random scheduling load, including delays beyond one backup interval.
  std::function<void()> scheduler = [&] {
    uint64_t t = rng.UniformU64(3000);
    uint64_t scheduled = facility.MeasureTime();
    facility.ScheduleSoftEvent(t, [&, t, scheduled](const SoftTimerFacility::FireInfo& info) {
      uint64_t actual = info.fired_tick - scheduled;
      EXPECT_GT(actual, t);
      EXPECT_LT(actual, t + x + 2);  // T + X + 1, plus one tick of backup jitter
      ++checked;
    });
    sim.ScheduleAfter(rng.ExpDuration(SimDuration::Micros(150)), scheduler);
  };
  sim.ScheduleAfter(SimDuration::Micros(3), scheduler);

  sim.RunUntil(SimTime::Zero() + SimDuration::Seconds(1));
  EXPECT_GT(checked, 5000u);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, DelayBoundProperty,
    ::testing::Values(BoundParam{TimerQueueKind::kHeap, 1},
                      BoundParam{TimerQueueKind::kHeap, 99},
                      BoundParam{TimerQueueKind::kHashedWheel, 1},
                      BoundParam{TimerQueueKind::kHashedWheel, 99},
                      BoundParam{TimerQueueKind::kHierarchicalWheel, 1},
                      BoundParam{TimerQueueKind::kHierarchicalWheel, 99}),
    [](const ::testing::TestParamInfo<BoundParam>& info) {
      std::string name = TimerQueueKindName(info.param.kind);
      for (auto& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name + "_seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace softtimer
