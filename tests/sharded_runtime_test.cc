// ShardedSoftTimerRuntime semantics, exercised deterministically from one
// thread (the runtime's threading contract only requires that owner calls
// and a producer's calls are each serialized - a single thread satisfies
// both, so every cross-core protocol step can be observed in isolation).

#include "src/core/sharded_soft_timer_runtime.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/timer/timer_slab.h"

namespace softtimer {
namespace {

class ManualClock : public ClockSource {
 public:
  uint64_t NowTicks() const override { return now_; }
  uint64_t ResolutionHz() const override { return 1'000'000; }
  void Advance(uint64_t ticks) { now_ += ticks; }

 private:
  uint64_t now_ = 0;
};

ShardedSoftTimerRuntime::Config Cfg(size_t shards, size_t ring_capacity = 64) {
  ShardedSoftTimerRuntime::Config c;
  c.num_shards = shards;
  c.ring_capacity = ring_capacity;
  return c;
}

TEST(RemoteIdMapTest, InsertFindEraseAcrossGrowth) {
  RemoteIdMap map;
  constexpr uint64_t kBase = kTimerIdRemoteBit;  // realistic key shape
  for (uint64_t i = 0; i < 1000; ++i) {
    map.Insert(kBase + i, i + 1);
  }
  EXPECT_EQ(map.size(), 1000u);
  for (uint64_t i = 0; i < 1000; i += 2) {
    EXPECT_TRUE(map.Erase(kBase + i));
  }
  EXPECT_FALSE(map.Erase(kBase + 2));  // already gone
  EXPECT_EQ(map.size(), 500u);
  // Backward-shift deletion must leave every survivor reachable.
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(map.Find(kBase + i), i % 2 == 1 ? i + 1 : 0u);
  }
}

TEST(ShardedRuntimeTest, LocalIdsCarryShardByte) {
  ManualClock clock;
  ShardedSoftTimerRuntime rt(&clock, Cfg(4));
  int fired = 0;
  SoftEventId id = rt.ScheduleOnShard(
      2, 100, [&](const SoftTimerFacility::FireInfo&) { ++fired; });
  ASSERT_TRUE(id.valid());
  EXPECT_EQ(TimerIdShard(id.value), 2u);
  EXPECT_FALSE(IsRemoteTimerId(id.value));

  // The id is only meaningful on its own shard.
  EXPECT_FALSE(rt.CancelOnShard(1, id));
  clock.Advance(150);
  EXPECT_EQ(rt.OnTriggerState(0, TriggerSource::kSyscall), 0u);
  EXPECT_EQ(rt.OnTriggerState(2, TriggerSource::kSyscall), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(rt.CancelOnShard(2, id));  // already fired
}

TEST(ShardedRuntimeTest, LocalCancelOnOwningShard) {
  ManualClock clock;
  ShardedSoftTimerRuntime rt(&clock, Cfg(2));
  int fired = 0;
  SoftEventId id = rt.ScheduleOnShard(
      1, 100, [&](const SoftTimerFacility::FireInfo&) { ++fired; });
  EXPECT_TRUE(rt.CancelOnShard(1, id));
  clock.Advance(200);
  EXPECT_EQ(rt.OnTriggerState(1, TriggerSource::kSyscall), 0u);
  EXPECT_EQ(fired, 0);
}

TEST(ShardedRuntimeTest, CrossCoreScheduleDrainsAndFires) {
  ManualClock clock;
  ShardedSoftTimerRuntime rt(&clock, Cfg(2));
  auto token = rt.RegisterProducer();
  ASSERT_TRUE(token.valid());

  int fired = 0;
  SoftEventId id = rt.ScheduleCrossCore(
      token, 1, 100, [&](const SoftTimerFacility::FireInfo&) { ++fired; });
  ASSERT_TRUE(id.valid());
  EXPECT_TRUE(IsRemoteTimerId(id.value));
  EXPECT_EQ(TimerIdShard(id.value), 1u);
  EXPECT_TRUE(rt.remote_pending(1));
  EXPECT_FALSE(rt.remote_pending(0));

  // The target shard's next trigger check drains the command...
  EXPECT_EQ(rt.OnTriggerState(1, TriggerSource::kIpIntr), 0u);
  EXPECT_FALSE(rt.remote_pending(1));
  EXPECT_EQ(rt.shard_stats(1).remote_scheduled, 1u);
  EXPECT_EQ(rt.shard_stats(1).remote_live, 1u);

  // ...and the event fires at its deadline, attributed to the firing source.
  clock.Advance(150);
  EXPECT_EQ(rt.OnTriggerState(1, TriggerSource::kIpOutput), 1u);
  EXPECT_EQ(fired, 1);
  // Fire retired the remote-id table entry (cookie hook).
  EXPECT_EQ(rt.shard_stats(1).remote_live, 0u);
  EXPECT_EQ(rt.shard_facility(1)
                .stats()
                .dispatches_by_source[static_cast<size_t>(TriggerSource::kIpOutput)],
            1u);
}

TEST(ShardedRuntimeTest, CrossCoreCancelFromSameProducerIsReliable) {
  ManualClock clock;
  ShardedSoftTimerRuntime rt(&clock, Cfg(2));
  auto token = rt.RegisterProducer();
  int fired = 0;
  SoftEventId id = rt.ScheduleCrossCore(
      token, 1, 100, [&](const SoftTimerFacility::FireInfo&) { ++fired; });
  // Cancel enqueued behind the schedule in the same ring: FIFO drain applies
  // schedule-then-cancel, so the cancel always lands.
  EXPECT_TRUE(rt.CancelCrossCore(token, id));
  rt.OnTriggerState(1, TriggerSource::kSyscall);
  clock.Advance(200);
  EXPECT_EQ(rt.OnTriggerState(1, TriggerSource::kSyscall), 0u);
  EXPECT_EQ(fired, 0);
  ShardedSoftTimerRuntime::ShardStats s = rt.shard_stats(1);
  EXPECT_EQ(s.remote_scheduled, 1u);
  EXPECT_EQ(s.remote_cancelled, 1u);
  EXPECT_EQ(s.remote_live, 0u);
}

TEST(ShardedRuntimeTest, CancelForUndrainedForeignScheduleIsMiss) {
  ManualClock clock;
  ShardedSoftTimerRuntime rt(&clock, Cfg(2));
  auto producer_a = rt.RegisterProducer();
  auto producer_b = rt.RegisterProducer();
  int fired = 0;
  // Schedule from B (ring 1) but cancel from A (ring 0): rings drain in
  // producer order, so the cancel reaches the shard before the schedule.
  // Cross-producer cancels are best-effort: it misses, the event fires.
  SoftEventId id = rt.ScheduleCrossCore(
      producer_b, 1, 100, [&](const SoftTimerFacility::FireInfo&) { ++fired; });
  EXPECT_TRUE(rt.CancelCrossCore(producer_a, id));
  rt.OnTriggerState(1, TriggerSource::kSyscall);
  ShardedSoftTimerRuntime::ShardStats after_drain = rt.shard_stats(1);
  EXPECT_EQ(after_drain.remote_scheduled, 1u);
  EXPECT_EQ(after_drain.remote_cancel_misses, 1u);
  EXPECT_EQ(after_drain.remote_cancelled, 0u);
  clock.Advance(200);
  rt.OnTriggerState(1, TriggerSource::kSyscall);
  EXPECT_EQ(fired, 1);
}

TEST(ShardedRuntimeTest, RingFullRejectsWithInvalidId) {
  ManualClock clock;
  ShardedSoftTimerRuntime rt(&clock, Cfg(1, /*ring_capacity=*/4));
  auto token = rt.RegisterProducer();
  std::vector<SoftEventId> accepted;
  SoftEventId rejected{};
  for (int i = 0; i < 8; ++i) {
    SoftEventId id = rt.ScheduleCrossCore(
        token, 0, 1'000, [](const SoftTimerFacility::FireInfo&) {});
    if (id.valid()) {
      accepted.push_back(id);
    } else {
      rejected = id;
    }
  }
  EXPECT_EQ(accepted.size(), 4u);
  EXPECT_EQ(token.ring_full_rejects(), 4u);
  // Draining frees the ring for the next push.
  rt.OnTriggerState(0, TriggerSource::kSyscall);
  EXPECT_TRUE(rt.ScheduleCrossCore(token, 0, 1'000,
                                   [](const SoftTimerFacility::FireInfo&) {})
                  .valid());
}

TEST(ShardedRuntimeTest, RemoteDeadlineAnchorsAtEnqueueTime) {
  ManualClock clock;
  ShardedSoftTimerRuntime rt(&clock, Cfg(1));
  auto token = rt.RegisterProducer();
  int fired = 0;
  // Enqueue at t=0 with T=100, but don't drain until t=60: the event must
  // still fire at ~t=101, not t=161 (ring residency counts against T).
  rt.ScheduleCrossCore(token, 0, 100,
                       [&](const SoftTimerFacility::FireInfo&) { ++fired; });
  clock.Advance(60);
  rt.OnTriggerState(0, TriggerSource::kSyscall);  // drain at t=60
  clock.Advance(35);                              // t=95 < 100: not yet
  EXPECT_EQ(rt.OnTriggerState(0, TriggerSource::kSyscall), 0u);
  clock.Advance(10);                              // t=105 > 101: due
  EXPECT_EQ(rt.OnTriggerState(0, TriggerSource::kSyscall), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(ShardedRuntimeTest, OverdueRemoteFiresImmediatelyAfterDrain) {
  ManualClock clock;
  ShardedSoftTimerRuntime rt(&clock, Cfg(1));
  auto token = rt.RegisterProducer();
  int fired = 0;
  rt.ScheduleCrossCore(token, 0, 10,
                       [&](const SoftTimerFacility::FireInfo&) { ++fired; });
  clock.Advance(500);  // way past due while still in the ring
  // One check: drain + dispatch in the same trigger state.
  rt.OnTriggerState(0, TriggerSource::kSyscall);
  clock.Advance(2);
  rt.OnTriggerState(0, TriggerSource::kSyscall);
  EXPECT_EQ(fired, 1);
}

TEST(ShardedRuntimeTest, OwnerCanCancelDrainedRemoteId) {
  ManualClock clock;
  ShardedSoftTimerRuntime rt(&clock, Cfg(2));
  auto token = rt.RegisterProducer();
  int fired = 0;
  SoftEventId id = rt.ScheduleCrossCore(
      token, 1, 100, [&](const SoftTimerFacility::FireInfo&) { ++fired; });
  EXPECT_FALSE(rt.CancelOnShard(1, id));  // not drained yet: unknown
  rt.OnTriggerState(1, TriggerSource::kSyscall);
  EXPECT_TRUE(rt.CancelOnShard(1, id));   // resolved through the id table
  EXPECT_FALSE(rt.CancelOnShard(1, id));  // idempotent
  EXPECT_EQ(rt.shard_stats(1).remote_live, 0u);
  clock.Advance(200);
  rt.OnTriggerState(1, TriggerSource::kSyscall);
  EXPECT_EQ(fired, 0);
}

TEST(ShardedRuntimeTest, RescheduleOnShardMovesDeadlineBothWays) {
  ManualClock clock;
  ShardedSoftTimerRuntime rt(&clock, Cfg(2));
  int fired = 0;
  SoftEventId id = rt.ScheduleOnShard(
      1, 100, [&](const SoftTimerFacility::FireInfo&) { ++fired; });
  // Wrong shard: rejected, event untouched.
  EXPECT_FALSE(rt.RescheduleOnShard(0, id, 10).valid());

  // Push the deadline out: t=50, re-arm for T=500 -> due past t=551.
  clock.Advance(50);
  SoftEventId moved = rt.RescheduleOnShard(1, id, 500);
  ASSERT_TRUE(moved.valid());
  EXPECT_EQ(TimerIdShard(moved.value), 1u);
  clock.Advance(100);  // t=150: the original deadline passed, must not fire
  EXPECT_EQ(rt.OnTriggerState(1, TriggerSource::kSyscall), 0u);

  // Pull it back in: t=150, re-arm for T=20 -> due past t=171.
  moved = rt.RescheduleOnShard(1, moved, 20);
  ASSERT_TRUE(moved.valid());
  clock.Advance(30);
  EXPECT_EQ(rt.OnTriggerState(1, TriggerSource::kSyscall), 1u);
  EXPECT_EQ(fired, 1);
  // The event is gone: a further reschedule misses.
  EXPECT_FALSE(rt.RescheduleOnShard(1, moved, 10).valid());
  EXPECT_EQ(rt.shard_facility(1).stats().rescheduled, 2u);
}

TEST(ShardedRuntimeTest, RescheduleCrossCoreKeepsRemoteHandleLive) {
  ManualClock clock;
  ShardedSoftTimerRuntime rt(&clock, Cfg(2));
  auto token = rt.RegisterProducer();
  int fired = 0;
  SoftEventId id = rt.ScheduleCrossCore(
      token, 1, 100, [&](const SoftTimerFacility::FireInfo&) { ++fired; });
  ASSERT_TRUE(IsRemoteTimerId(id.value));
  // FIFO drain applies schedule-then-update, so a same-producer reschedule
  // is reliable even before the schedule has drained.
  EXPECT_TRUE(rt.RescheduleCrossCore(token, id, 400));
  rt.OnTriggerState(1, TriggerSource::kSyscall);
  EXPECT_EQ(rt.shard_stats(1).remote_rescheduled, 1u);
  clock.Advance(150);  // t=150: original deadline passed, moved one pending
  EXPECT_EQ(rt.OnTriggerState(1, TriggerSource::kSyscall), 0u);
  // The SAME remote id still names the event: cancel it through the table.
  EXPECT_TRUE(rt.CancelOnShard(1, id));
  clock.Advance(500);
  EXPECT_EQ(rt.OnTriggerState(1, TriggerSource::kSyscall), 0u);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(rt.shard_stats(1).remote_live, 0u);
}

TEST(ShardedRuntimeTest, RescheduleCrossCoreAnchorsAtEnqueueTick) {
  ManualClock clock;
  ShardedSoftTimerRuntime rt(&clock, Cfg(1));
  auto token = rt.RegisterProducer();
  int fired = 0;
  SoftEventId id = rt.ScheduleCrossCore(
      token, 0, 50, [&](const SoftTimerFacility::FireInfo&) { ++fired; });
  rt.OnTriggerState(0, TriggerSource::kSyscall);  // drain the schedule
  // Enqueue the re-arm at t=0 with T=100, drain it at t=60: the event must
  // fire at ~t=101, not t=161 (ring residency counts against T).
  EXPECT_TRUE(rt.RescheduleCrossCore(token, id, 100));
  clock.Advance(60);
  rt.OnTriggerState(0, TriggerSource::kSyscall);  // drain at t=60
  clock.Advance(35);                              // t=95 < 100: not yet
  EXPECT_EQ(rt.OnTriggerState(0, TriggerSource::kSyscall), 0u);
  clock.Advance(10);                              // t=105 > 101: due
  EXPECT_EQ(rt.OnTriggerState(0, TriggerSource::kSyscall), 1u);
  EXPECT_EQ(fired, 1);
}

TEST(ShardedRuntimeTest, RescheduleCrossCoreRejectsLocalIdsAndMissesDead) {
  ManualClock clock;
  ShardedSoftTimerRuntime rt(&clock, Cfg(1));
  auto token = rt.RegisterProducer();
  // Local ids have no rebindable table entry: the producer API refuses them
  // up front (an emulated-update backend would rename the id with no way to
  // hand the new name back).
  SoftEventId local = rt.ScheduleOnShard(
      0, 1'000, [](const SoftTimerFacility::FireInfo&) {});
  EXPECT_FALSE(rt.RescheduleCrossCore(token, local, 10));

  // A re-arm racing the event's own dispatch is a counted miss, not a crash.
  int fired = 0;
  SoftEventId remote = rt.ScheduleCrossCore(
      token, 0, 10, [&](const SoftTimerFacility::FireInfo&) { ++fired; });
  rt.OnTriggerState(0, TriggerSource::kSyscall);
  clock.Advance(50);
  rt.OnTriggerState(0, TriggerSource::kSyscall);
  ASSERT_EQ(fired, 1);
  EXPECT_TRUE(rt.RescheduleCrossCore(token, remote, 100));  // enqueued...
  rt.OnTriggerState(0, TriggerSource::kSyscall);
  EXPECT_EQ(rt.shard_stats(0).remote_reschedule_misses, 1u);  // ...but missed
  EXPECT_EQ(rt.shard_stats(0).remote_rescheduled, 0u);
}

TEST(ShardedRuntimeTest, RescheduleWorksOnNativeUpdateBackend) {
  // Same handle-stability contract on the grouped-sorting backend, where the
  // facility-level reschedule keeps the slab id instead of renaming it.
  ManualClock clock;
  ShardedSoftTimerRuntime::Config cfg = Cfg(1);
  cfg.facility.queue_kind = TimerQueueKind::kGroupedSorting;
  ShardedSoftTimerRuntime rt(&clock, cfg);
  auto token = rt.RegisterProducer();
  int fired = 0;
  SoftEventId remote = rt.ScheduleCrossCore(
      token, 0, 100, [&](const SoftTimerFacility::FireInfo&) { ++fired; });
  rt.OnTriggerState(0, TriggerSource::kSyscall);
  SoftEventId local = rt.ScheduleOnShard(
      0, 100, [&](const SoftTimerFacility::FireInfo&) { ++fired; });
  // Native path: the local id survives a reschedule unchanged.
  SoftEventId moved = rt.RescheduleOnShard(0, local, 300);
  ASSERT_TRUE(moved.valid());
  EXPECT_EQ(moved.value, local.value);
  ASSERT_TRUE(rt.RescheduleOnShard(0, remote, 300).valid());
  clock.Advance(150);  // past the original deadlines
  EXPECT_EQ(rt.OnTriggerState(0, TriggerSource::kSyscall), 0u);
  clock.Advance(200);  // past the re-armed deadlines
  EXPECT_EQ(rt.OnTriggerState(0, TriggerSource::kSyscall), 2u);
  EXPECT_EQ(fired, 2);
}

TEST(ShardedRuntimeTest, WakeHookFiresOnPublish) {
  ManualClock clock;
  ShardedSoftTimerRuntime rt(&clock, Cfg(3));
  std::vector<size_t> woken;
  rt.set_wake_hook(
      [](void* ctx, size_t shard) {
        static_cast<std::vector<size_t>*>(ctx)->push_back(shard);
      },
      &woken);
  auto token = rt.RegisterProducer();
  rt.ScheduleCrossCore(token, 2, 100, [](const SoftTimerFacility::FireInfo&) {});
  rt.ScheduleCrossCore(token, 0, 100, [](const SoftTimerFacility::FireInfo&) {});
  ASSERT_EQ(woken.size(), 2u);
  EXPECT_EQ(woken[0], 2u);
  EXPECT_EQ(woken[1], 0u);
}

TEST(ShardedRuntimeTest, ProducerRegistrationIsBounded) {
  ManualClock clock;
  ShardedSoftTimerRuntime::Config cfg = Cfg(1);
  cfg.max_producers = 2;
  ShardedSoftTimerRuntime rt(&clock, cfg);
  EXPECT_TRUE(rt.RegisterProducer().valid());
  EXPECT_TRUE(rt.RegisterProducer().valid());
  auto overflow = rt.RegisterProducer();
  EXPECT_FALSE(overflow.valid());
  // An invalid token is rejected, not UB.
  EXPECT_FALSE(rt.ScheduleCrossCore(overflow, 0, 10,
                                    [](const SoftTimerFacility::FireInfo&) {})
                   .valid());
}

TEST(ShardedRuntimeTest, AggregateStatsSumShards) {
  ManualClock clock;
  ShardedSoftTimerRuntime rt(&clock, Cfg(2));
  auto token = rt.RegisterProducer();
  rt.ScheduleOnShard(0, 10, [](const SoftTimerFacility::FireInfo&) {});
  rt.ScheduleOnShard(1, 10, [](const SoftTimerFacility::FireInfo&) {});
  rt.ScheduleCrossCore(token, 1, 10, [](const SoftTimerFacility::FireInfo&) {});
  clock.Advance(50);
  rt.OnTriggerState(0, TriggerSource::kSyscall);
  rt.OnTriggerState(1, TriggerSource::kSyscall);
  // The overdue remote event drains at t=50 and clamps to t=51 (an
  // already-due schedule fires on the next check, per queue semantics).
  clock.Advance(2);
  rt.OnTriggerState(1, TriggerSource::kSyscall);
  ShardedSoftTimerRuntime::RuntimeStats s = rt.AggregateStats();
  EXPECT_EQ(s.scheduled, 3u);  // remote schedules land as facility schedules
  EXPECT_EQ(s.dispatches, 3u);
  EXPECT_EQ(s.remote_scheduled, 1u);
  EXPECT_EQ(s.checks, 3u);
  EXPECT_EQ(s.slab_live, 0u);
  EXPECT_GT(s.slab_capacity, 0u);
}

TEST(ShardedRuntimeTest, TrimShardStorageReleasesAfterBurst) {
  ManualClock clock;
  ShardedSoftTimerRuntime rt(&clock, Cfg(1));
  std::vector<SoftEventId> ids;
  for (int i = 0; i < 600; ++i) {
    ids.push_back(
        rt.ScheduleOnShard(0, 1'000, [](const SoftTimerFacility::FireInfo&) {}));
  }
  for (SoftEventId id : ids) {
    ASSERT_TRUE(rt.CancelOnShard(0, id));
  }
  EXPECT_GE(rt.TrimShardStorage(0), 2u);
  EXPECT_EQ(rt.AggregateStats().slab_live, 0u);
}

}  // namespace
}  // namespace softtimer
