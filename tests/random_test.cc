#include "src/sim/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/stats/summary_stats.h"

namespace softtimer {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10'000; ++i) {
    double x = r.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformU64RespectsBound) {
  Rng r(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(r.UniformU64(bound), bound);
    }
  }
}

TEST(RngTest, UniformU64IsRoughlyUniform) {
  Rng r(11);
  std::vector<int> counts(10, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    ++counts[r.UniformU64(10)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
  }
}

TEST(RngTest, UniformIntInclusiveEnds) {
  Rng r(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    int64_t v = r.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng r(5);
  SummaryStats s;
  for (int i = 0; i < 200'000; ++i) {
    s.Add(r.Exponential(40.0));
  }
  EXPECT_NEAR(s.mean(), 40.0, 0.5);
  EXPECT_NEAR(s.stddev(), 40.0, 1.0);  // exp: sd == mean
}

TEST(RngTest, NormalMoments) {
  Rng r(5);
  SummaryStats s;
  for (int i = 0; i < 200'000; ++i) {
    s.Add(r.Normal(10.0, 3.0));
  }
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(RngTest, LogNormalMedianIsMedian) {
  Rng r(9);
  std::vector<double> v;
  for (int i = 0; i < 100'001; ++i) {
    v.push_back(r.LogNormalMedian(18.0, 1.0));
  }
  std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
  EXPECT_NEAR(v[v.size() / 2], 18.0, 0.5);
}

TEST(RngTest, ParetoBoundedRespectsBounds) {
  Rng r(13);
  for (int i = 0; i < 10'000; ++i) {
    double x = r.ParetoBounded(20.0, 1.1, 1000.0);
    EXPECT_GE(x, 20.0);
    EXPECT_LE(x, 1000.0);
  }
}

TEST(RngTest, DurationHelpers) {
  Rng r(21);
  SummaryStats s;
  for (int i = 0; i < 100'000; ++i) {
    s.Add(r.ExpDuration(SimDuration::Micros(30)).ToMicros());
  }
  EXPECT_NEAR(s.mean(), 30.0, 0.5);
  SimDuration ln = r.LogNormalDuration(SimDuration::Micros(10), 0.5);
  EXPECT_GT(ln, SimDuration::Zero());
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(42);
  Rng c1 = parent.Fork(1);
  Rng c2 = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1.NextU64() == c2.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace softtimer
