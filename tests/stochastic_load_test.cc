// Tests for StochasticKernelLoad and BackgroundCompute - the generators
// behind the non-web Table 1 workloads.

#include "src/workload/stochastic_load.h"

#include <gtest/gtest.h>

#include "src/stats/sample_set.h"
#include "src/workload/background_compute.h"

namespace softtimer {
namespace {

Kernel::Config KernelCfg(Kernel::IdleBehavior idle = Kernel::IdleBehavior::kHaltPolicy) {
  Kernel::Config kc;
  kc.profile = MachineProfile::PentiumII300();
  kc.idle_behavior = idle;
  return kc;
}

TEST(StochasticLoadTest, GeneratesConfiguredSourceMix) {
  Simulator sim;
  Kernel kernel(&sim, KernelCfg());
  StochasticKernelLoad::Config cfg;
  cfg.ops = {
      {0.7, TriggerSource::kSyscall, true, SimDuration::Micros(5), 0.3, SimDuration::Micros(50)},
      {0.3, TriggerSource::kTrap, true, SimDuration::Micros(5), 0.3, SimDuration::Micros(50)},
  };
  StochasticKernelLoad load(&kernel, cfg);
  load.Start();
  sim.RunFor(SimDuration::Millis(100));
  const auto& by = kernel.stats().triggers_by_source;
  double syscalls = static_cast<double>(by[static_cast<size_t>(TriggerSource::kSyscall)]);
  double traps = static_cast<double>(by[static_cast<size_t>(TriggerSource::kTrap)]);
  EXPECT_NEAR(syscalls / (syscalls + traps), 0.7, 0.05);
  EXPECT_GT(load.ops_run(), 5'000u);
}

TEST(StochasticLoadTest, NonTriggerOpsWidenIntervalsWithoutSamples) {
  Simulator sim;
  Kernel kernel(&sim, KernelCfg());
  // Alternating 5 us trigger ops and 20 us silent compute: the mean trigger
  // interval must reflect the combined cost (~25 us+), not 5 us.
  StochasticKernelLoad::Config cfg;
  cfg.ops = {
      {0.5, TriggerSource::kSyscall, true, SimDuration::Micros(5), 0.0, SimDuration::Micros(50)},
      {0.5, TriggerSource::kSyscall, false, SimDuration::Micros(20), 0.0, SimDuration::Micros(50)},
  };
  StochasticKernelLoad load(&kernel, cfg);
  SampleSet intervals;
  kernel.set_trigger_observer(
      [&](TriggerSource, SimTime, SimDuration d) { intervals.Add(d.ToMicros()); });
  load.Start();
  sim.RunFor(SimDuration::Millis(50));
  // Per trigger op: 5 us own cost plus on average one 20 us compute stretch.
  EXPECT_GT(intervals.mean(), 15.0);
  EXPECT_LT(intervals.mean(), 40.0);
}

TEST(StochasticLoadTest, DutyCycleLeavesCpuIdle) {
  Simulator sim;
  Kernel kernel(&sim, KernelCfg(Kernel::IdleBehavior::kSpin));
  StochasticKernelLoad::Config cfg;
  cfg.ops = {
      {1.0, TriggerSource::kSyscall, true, SimDuration::Micros(5), 0.2, SimDuration::Micros(50)},
  };
  cfg.duty_cycle = 0.2;
  cfg.burst_mean = SimDuration::Micros(100);
  StochasticKernelLoad load(&kernel, cfg);
  load.Start();
  SimDuration horizon = SimDuration::Seconds(1);
  sim.RunFor(horizon);
  double busy_frac = kernel.cpu(0).work_time().ToSeconds() / horizon.ToSeconds();
  EXPECT_NEAR(busy_frac, 0.2, 0.06);
  // The idle loop dominates the trigger stream (the ST-nfs regime).
  uint64_t idle = kernel.stats().triggers_by_source[static_cast<size_t>(TriggerSource::kIdleLoop)];
  EXPECT_GT(static_cast<double>(idle), 0.5 * static_cast<double>(kernel.stats().triggers));
}

TEST(StochasticLoadTest, DeviceInterruptsArriveAtConfiguredRate) {
  Simulator sim;
  Kernel kernel(&sim, KernelCfg());
  StochasticKernelLoad::Config cfg;
  cfg.ops = {
      {1.0, TriggerSource::kSyscall, true, SimDuration::Micros(10), 0.2, SimDuration::Micros(50)},
  };
  cfg.device_intr_rate_hz = 2'000;
  cfg.device_intr_source = TriggerSource::kIpIntr;
  StochasticKernelLoad load(&kernel, cfg);
  load.Start();
  sim.RunFor(SimDuration::Seconds(1));
  uint64_t intr = kernel.stats().triggers_by_source[static_cast<size_t>(TriggerSource::kIpIntr)];
  EXPECT_NEAR(static_cast<double>(intr), 2'000.0, 200.0);
}

TEST(StochasticLoadTest, CostCapLimitsTail) {
  Simulator sim;
  Kernel kernel(&sim, KernelCfg());
  StochasticKernelLoad::Config cfg;
  cfg.ops = {
      {1.0, TriggerSource::kSyscall, true, SimDuration::Micros(10), 2.0,  // huge sigma
       SimDuration::Micros(80)},
  };
  StochasticKernelLoad load(&kernel, cfg);
  SampleSet intervals;
  kernel.set_trigger_observer(
      [&](TriggerSource, SimTime, SimDuration d) { intervals.Add(d.ToMicros()); });
  load.Start();
  sim.RunFor(SimDuration::Millis(200));
  // Intervals = op cost (capped at 80) plus small steal noise.
  EXPECT_LT(intervals.max(), 90.0);
}

TEST(BackgroundComputeTest, ConsumesCpuWithoutTriggers) {
  Simulator sim;
  Kernel kernel(&sim, KernelCfg());
  BackgroundCompute::Config cfg;
  cfg.period = SimDuration::Millis(1);
  cfg.chunk_median = SimDuration::Micros(200);
  BackgroundCompute bg(&kernel, cfg);
  bg.Start();
  sim.RunFor(SimDuration::Seconds(1));
  EXPECT_GT(bg.chunks_run(), 800u);
  // Compute is pure user-mode: only backup-interrupt triggers appear.
  EXPECT_EQ(kernel.stats().triggers_by_source[static_cast<size_t>(TriggerSource::kSyscall)], 0u);
  EXPECT_GT(kernel.cpu(0).work_time(), SimDuration::Millis(150));
}

}  // namespace
}  // namespace softtimer
