// TcpSender::Mode::kWheelPaced integration: transfers paced by a shared
// PacingWheel instead of per-flow soft events. Covers spacing equivalence
// with kRateBased, the resume/pause wheel hooks (transfer start, RTO
// go-back-N, completion), many flows on one wheel event, and an end-to-end
// lossy transfer over the WAN path.

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/machine/kernel.h"
#include "src/net/wan_path.h"
#include "src/pacing/pacing_wheel.h"
#include "src/pacing/pacing_wheel_host.h"
#include "src/tcp/tcp_paced_flow.h"
#include "src/tcp/tcp_receiver.h"
#include "src/tcp/tcp_sender.h"

namespace softtimer {
namespace {

PacingWheel::Config WheelCfg() {
  PacingWheel::Config c;
  c.quantum_ticks = 8;
  c.num_slots = 4096;
  return c;
}

TcpSender::Config WheelPacedCfg(uint64_t target = 120, uint64_t min_burst = 12,
                                uint32_t coalesce = 4) {
  TcpSender::Config cfg;
  cfg.mode = TcpSender::Mode::kWheelPaced;
  cfg.pace_target_interval_ticks = target;
  cfg.pace_min_burst_interval_ticks = min_burst;
  cfg.pace_max_coalesced_burst = coalesce;
  return cfg;
}

Kernel::Config KernelCfg() {
  Kernel::Config kc;
  kc.profile = MachineProfile::PentiumII300();
  kc.idle_poll_fast_forward = true;
  return kc;
}

struct WheelHarness {
  explicit WheelHarness(TcpSender::Config cfg)
      : kernel(&sim, KernelCfg()),
        sender(&kernel, cfg),
        wheel(WheelCfg()),
        host(&kernel.soft_timers(), &wheel),
        binder(&host) {
    sender.set_packet_sender([this](Packet p) { sent.push_back(p); });
    flow = binder.Attach(&sender);
  }
  Simulator sim;
  Kernel kernel;
  TcpSender sender;
  PacingWheel wheel;
  PacingWheelHost host;
  TcpPacedFlowBinder binder;
  PacedFlowId flow;
  std::vector<Packet> sent;
};

TEST(TcpWheelPacedTest, TransferPacesAtTargetInterval) {
  WheelHarness h(WheelPacedCfg());
  ASSERT_TRUE(h.flow.valid());
  h.sender.StartTransfer(50 * 1448);  // resume hook activates the flow
  EXPECT_TRUE(h.wheel.active(h.flow));
  h.sim.RunUntil(SimTime::Zero() + SimDuration::Millis(20));
  ASSERT_EQ(h.sent.size(), 50u);
  // Mean spacing tracks the 120-tick (~120 us) target, like kRateBased.
  double total_us =
      (h.sent.back().sent_at - h.sent.front().sent_at).ToMicros();
  EXPECT_NEAR(total_us / 49.0, 120.0, 8.0);
  EXPECT_TRUE(h.sent.back().fin);
  EXPECT_EQ(h.sender.stats().segments_sent, 50u);
  // Out of data: the binder's short send deactivated the flow.
  EXPECT_FALSE(h.wheel.active(h.flow));
  EXPECT_GT(h.binder.stats().short_sends, 0u);
}

TEST(TcpWheelPacedTest, SenderSchedulesNoPerFlowSoftEvents) {
  // The whole point of the wheel: with N paced flows, the facility carries
  // ONE armed event, not one per flow per packet.
  Simulator sim;
  Kernel kernel(&sim, KernelCfg());
  PacingWheel wheel(WheelCfg());
  PacingWheelHost host(&kernel.soft_timers(), &wheel);
  TcpPacedFlowBinder binder(&host);
  std::vector<std::unique_ptr<TcpSender>> senders;
  size_t total_sent = 0;
  std::vector<size_t> counts(8, 0);
  for (int i = 0; i < 8; ++i) {
    auto s = std::make_unique<TcpSender>(&kernel, WheelPacedCfg(240, 24));
    size_t* count = &counts[static_cast<size_t>(i)];
    s->set_packet_sender([count](Packet) { ++*count; });
    ASSERT_TRUE(binder.Attach(s.get()).valid());
    senders.push_back(std::move(s));
  }
  uint64_t scheduled_before = kernel.soft_timers().stats().scheduled;
  for (auto& s : senders) {
    s->StartTransfer(25 * 1448);
  }
  sim.RunUntil(SimTime::Zero() + SimDuration::Millis(30));
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i], 25u) << "sender " << i;
    total_sent += counts[i];
  }
  // 200 packets went out; the wheel re-armed once per drain, and drains
  // batch all due flows, so facility schedules stay well under one per
  // packet (per-flow soft events would be >= 200).
  uint64_t scheduled = kernel.soft_timers().stats().scheduled - scheduled_before;
  EXPECT_LT(scheduled, total_sent);
  EXPECT_EQ(binder.stats().packets_emitted, total_sent);
}

TEST(TcpWheelPacedTest, BatchGrantEmitsBurstThroughBurstSender) {
  // With a coalesced grant the sender emits the burst through the batched
  // path (one call, n packets) instead of n packet_sender_ calls.
  WheelHarness h(WheelPacedCfg(100, 10, /*coalesce=*/4));
  size_t burst_calls = 0;
  size_t burst_packets = 0;
  h.sender.set_burst_sender([&](const Packet* pkts, size_t n) {
    ++burst_calls;
    burst_packets += n;
    for (size_t i = 0; i < n; ++i) {
      h.sent.push_back(pkts[i]);
    }
  });
  h.sender.StartTransfer(30 * 1448);
  h.sim.RunUntil(SimTime::Zero() + SimDuration::Millis(10));
  EXPECT_EQ(h.sent.size(), 30u);
  EXPECT_EQ(burst_packets, 30u);
  EXPECT_GE(burst_calls, 1u);
  // Sequencing is intact: segments are in order with contiguous seqs.
  for (size_t i = 1; i < h.sent.size(); ++i) {
    EXPECT_EQ(h.sent[i].seq, h.sent[i - 1].seq + h.sent[i - 1].payload);
  }
}

// --- end-to-end over the WAN ----------------------------------------------

struct WheelE2E {
  WheelE2E(TcpSender::Config scfg, uint64_t loss_every_n)
      : kernel(&sim, KernelCfg()),
        sender(&kernel, scfg),
        wheel(WheelCfg()),
        host(&kernel.soft_timers(), &wheel),
        binder(&host),
        wan(&sim, WanCfg()),
        receiver(&sim, TcpReceiver::Config{}) {
    sender.set_packet_sender([this, loss_every_n](Packet p) {
      ++tx_count;
      if (loss_every_n > 0 && tx_count % loss_every_n == 0) {
        return;  // deterministic drop
      }
      wan.forward().Send(p);
    });
    flow = binder.Attach(&sender);
    wan.forward().set_receiver([this](const Packet& p) { receiver.OnSegment(p); });
    receiver.set_ack_sender([this](Packet p) { wan.reverse().Send(p); });
    wan.reverse().set_receiver([this](const Packet& p) { sender.OnAck(p); });
  }
  static WanPath::Config WanCfg() {
    WanPath::Config wc;
    wc.bottleneck_bps = 50e6;
    wc.one_way_delay = SimDuration::Millis(10);
    return wc;
  }
  Simulator sim;
  Kernel kernel;
  TcpSender sender;
  PacingWheel wheel;
  PacingWheelHost host;
  TcpPacedFlowBinder binder;
  WanPath wan;
  TcpReceiver receiver;
  PacedFlowId flow;
  uint64_t tx_count = 0;
};

TEST(TcpWheelPacedTest, EndToEndTransferCompletesUnderLoss) {
  // Loss forces RTO go-back-N; the resume hook must re-activate the flow on
  // the wheel for the resend to be paced out.
  TcpSender::Config cfg = WheelPacedCfg(240, 240, /*coalesce=*/0);
  cfg.rto_initial = SimDuration::Millis(200);
  WheelE2E e(cfg, /*loss_every_n=*/53);
  bool done = false;
  e.receiver.NotifyWhenReceived(150 * 1448, [&] { done = true; });
  e.sender.StartTransfer(150 * 1448);
  e.sim.RunUntil(SimTime::Zero() + SimDuration::Seconds(60));
  EXPECT_TRUE(done);
  EXPECT_EQ(e.receiver.bytes_received(), 150u * 1448u);
  EXPECT_GT(e.sender.stats().retransmits, 0u);
  EXPECT_TRUE(e.sender.transfer_complete());
  // Completion paused the flow on the wheel.
  EXPECT_FALSE(e.wheel.active(e.flow));
}

TEST(TcpWheelPacedTest, LosslessEndToEndDeliversInOrder) {
  WheelE2E e(WheelPacedCfg(120, 12), /*loss_every_n=*/0);
  bool done = false;
  e.receiver.NotifyWhenReceived(100 * 1448, [&] { done = true; });
  e.sender.StartTransfer(100 * 1448);
  e.sim.RunUntil(SimTime::Zero() + SimDuration::Seconds(10));
  EXPECT_TRUE(done);
  EXPECT_EQ(e.sender.stats().retransmits, 0u);
}

}  // namespace
}  // namespace softtimer
