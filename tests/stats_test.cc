#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/stats/latency_histogram.h"
#include "src/stats/rate_ewma.h"
#include "src/stats/sample_set.h"
#include "src/stats/summary_stats.h"
#include "src/stats/windowed_median.h"

namespace softtimer {
namespace {

TEST(SummaryStatsTest, BasicMoments) {
  SummaryStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);  // classic textbook data set
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryStatsTest, EmptyIsZero) {
  SummaryStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(SummaryStatsTest, MergeMatchesCombinedStream) {
  SummaryStats a, b, all;
  for (int i = 0; i < 100; ++i) {
    double x = std::sin(i) * 10 + i;
    (i % 2 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.stddev(), all.stddev(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(SummaryStatsTest, MergeWithEmpty) {
  SummaryStats a, empty;
  a.Add(5);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.mean(), 5.0);
}

TEST(SampleSetTest, ExactPercentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(i);
  }
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
  EXPECT_NEAR(s.Median(), 50.5, 1e-9);
  EXPECT_NEAR(s.Percentile(90), 90.1, 1e-9);
}

TEST(SampleSetTest, FractionAbove) {
  SampleSet s;
  for (int i = 1; i <= 10; ++i) {
    s.Add(i);
  }
  EXPECT_DOUBLE_EQ(s.FractionAbove(10), 0.0);
  EXPECT_DOUBLE_EQ(s.FractionAbove(5), 0.5);
  EXPECT_DOUBLE_EQ(s.FractionAbove(0), 1.0);
}

TEST(SampleSetTest, CdfAt) {
  SampleSet s;
  for (int i = 1; i <= 4; ++i) {
    s.Add(i);
  }
  std::vector<double> cdf = s.CdfAt({0.5, 2.0, 4.0, 9.0});
  EXPECT_DOUBLE_EQ(cdf[0], 0.0);
  EXPECT_DOUBLE_EQ(cdf[1], 0.5);
  EXPECT_DOUBLE_EQ(cdf[2], 1.0);
  EXPECT_DOUBLE_EQ(cdf[3], 1.0);
}

TEST(SampleSetTest, ReservoirKeepsMomentsExact) {
  SampleSet s(100);  // tiny reservoir
  SummaryStats ref;
  for (int i = 0; i < 10'000; ++i) {
    double x = (i * 37) % 1000;
    s.Add(x);
    ref.Add(x);
  }
  EXPECT_EQ(s.count(), 10'000u);
  EXPECT_EQ(s.retained().size(), 100u);
  EXPECT_DOUBLE_EQ(s.mean(), ref.mean());
  EXPECT_DOUBLE_EQ(s.max(), ref.max());
  // Percentiles are estimates from the reservoir but must stay in range.
  EXPECT_GE(s.Median(), 0.0);
  EXPECT_LE(s.Median(), 999.0);
}

TEST(SampleSetTest, CdfCurveIsMonotone) {
  SampleSet s;
  for (int i = 0; i < 1000; ++i) {
    s.Add((i * 7919) % 501);
  }
  auto curve = s.CdfCurve(20);
  ASSERT_EQ(curve.size(), 20u);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].x, curve[i - 1].x);
    EXPECT_GT(curve[i].fraction, curve[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(curve.back().fraction, 1.0);
}

TEST(WindowedMedianTest, MediansPerWindow) {
  WindowedMedian w(SimTime::Zero(), SimDuration::Millis(1));
  // Window 0: values 1,3,5 -> median 3. Window 1: 10, 20 -> 15.
  w.Add(SimTime::FromNanos(100'000), 1);
  w.Add(SimTime::FromNanos(200'000), 3);
  w.Add(SimTime::FromNanos(900'000), 5);
  w.Add(SimTime::FromNanos(1'100'000), 10);
  w.Add(SimTime::FromNanos(1'900'000), 20);
  auto windows = w.Finish();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_DOUBLE_EQ(windows[0].median, 3.0);
  EXPECT_EQ(windows[0].count, 3u);
  EXPECT_DOUBLE_EQ(windows[1].median, 15.0);
}

TEST(WindowedMedianTest, EmptyWindowsAreSkipped) {
  WindowedMedian w(SimTime::Zero(), SimDuration::Millis(1));
  w.Add(SimTime::FromNanos(100'000), 1);
  // Jump over several empty windows.
  w.Add(SimTime::FromNanos(5'500'000), 9);
  auto windows = w.Finish();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].window_start, SimTime::Zero());
  EXPECT_EQ(windows[1].window_start.nanos_since_origin(), 5'000'000);
}

TEST(RateEwmaTest, FirstObservationPrimes) {
  RateEwma e(0.5);
  EXPECT_FALSE(e.primed());
  e.Observe(10);
  EXPECT_TRUE(e.primed());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
  e.Observe(20);
  EXPECT_DOUBLE_EQ(e.value(), 15.0);
  e.Reset();
  EXPECT_FALSE(e.primed());
}

TEST(LatencyHistogramTest, BucketGeometryRoundTrips) {
  // Values 0..15 are exact; above that, every bucket's bounds must agree
  // with BucketIndex (lower maps into the bucket, lower-1 into the previous
  // one) and tier t spans [16*2^(t-1), 16*2^t) in 16 equal sub-buckets.
  for (uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(v), v);
    EXPECT_EQ(LatencyHistogram::BucketLower(v), v);
    EXPECT_EQ(LatencyHistogram::BucketUpper(v), v);
  }
  for (size_t i = 16; i < LatencyHistogram::kNumBuckets; ++i) {
    uint64_t lo = LatencyHistogram::BucketLower(i);
    uint64_t hi = LatencyHistogram::BucketUpper(i);
    EXPECT_LE(lo, hi);
    EXPECT_EQ(LatencyHistogram::BucketIndex(lo), i);
    EXPECT_EQ(LatencyHistogram::BucketIndex(lo - 1), i - 1);
    if (hi != UINT64_MAX) {
      EXPECT_EQ(LatencyHistogram::BucketIndex(hi), i);
    }
  }
  EXPECT_EQ(LatencyHistogram::BucketIndex(UINT64_MAX),
            LatencyHistogram::kNumBuckets - 1);
}

TEST(LatencyHistogramTest, ExactStatsAndEmptyBehaviour) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Percentile(99.0), 0u);
  h.Record(7);
  h.Record(1'000'000);
  h.Record(3);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 1'000'010u);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 1'000'000u);  // max is exact, not a bucket bound
  EXPECT_EQ(h.Percentile(100.0), 1'000'000u);
}

TEST(LatencyHistogramTest, PercentileIsConservativeUpperBound) {
  // Against a sorted reference: the reported percentile must be >= the true
  // sample at that rank (a gate "p < budget" can fail toward safety, never
  // pass spuriously) and within the 1/16 relative quantization error.
  LatencyHistogram h;
  std::vector<uint64_t> ref;
  uint64_t x = 1;
  for (int i = 0; i < 5'000; ++i) {
    x = x * 2862933555777941757ull + 3037000493ull;  // splmix-style LCG
    uint64_t v = x >> (x % 50);                      // spread across tiers
    h.Record(v);
    ref.push_back(v);
  }
  std::sort(ref.begin(), ref.end());
  for (double p : {10.0, 50.0, 90.0, 99.0, 99.9}) {
    size_t rank = static_cast<size_t>(p / 100.0 * ref.size() + 0.5);
    rank = std::min(std::max<size_t>(rank, 1), ref.size());
    uint64_t truth = ref[rank - 1];
    uint64_t reported = h.Percentile(p);
    EXPECT_GE(reported, truth) << "p" << p;
    // 2x bucket slop; subtract-form avoids uint64 overflow at the top tiers.
    EXPECT_LE(reported - truth, truth / 8 + 1) << "p" << p;
  }
}

TEST(LatencyHistogramTest, MergeAndForEachMatchSeparateStreams) {
  LatencyHistogram a, b, all;
  for (uint64_t v : {0ull, 5ull, 17ull, 300ull}) {
    a.Record(v);
    all.Record(v);
  }
  for (uint64_t v : {2ull, 17ull, 1'000'000ull}) {
    b.Record(v);
    all.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.sum(), all.sum());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  uint64_t total = 0;
  uint64_t buckets = 0;
  a.ForEachNonZero([&](uint64_t lo, uint64_t hi, uint64_t n) {
    EXPECT_LE(lo, hi);
    total += n;
    ++buckets;
  });
  EXPECT_EQ(total, 7u);
  EXPECT_EQ(buckets, 6u);  // the two 17s share one bucket
  a.Reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.Percentile(50.0), 0u);
}

}  // namespace
}  // namespace softtimer
