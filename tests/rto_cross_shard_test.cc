// Cross-shard cancel-vs-fire race for the RtoEngine (run under the tsan
// preset via the `cross-thread` label).
//
// Topology: the engine and its shard live on the owner thread, which sends
// segments and pumps trigger states. A second "NIC" thread delivers ACKs
// the sharded way - as cross-core commands (via ScheduleCrossCoreWithRetry)
// that invoke OnCumulativeAck on the owning shard after a randomized wire
// delay straddling the RTO. Some ACKs land before the RTO fires (the
// cancel path), some after (retransmit already happened; the late ACK
// retires a Karn-marked segment). The engine must survive both arms with
// exact timer accounting and zero stale fires.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/sharded_soft_timer_runtime.h"
#include "src/tcp/rto_engine.h"

namespace softtimer {
namespace {

class AtomicClock : public ClockSource {
 public:
  uint64_t NowTicks() const override {
    return now_.load(std::memory_order_relaxed);
  }
  uint64_t ResolutionHz() const override { return 1'000'000; }
  void Advance(uint64_t ticks) {
    now_.fetch_add(ticks, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> now_{0};
};

struct Xorshift {
  uint64_t s;
  explicit Xorshift(uint64_t seed) : s(seed * 2654435761u + 1) {}
  uint64_t Next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
};

TEST(RtoCrossShardTest, AckRacesRtoFireAcrossThreads) {
  constexpr size_t kConns = 32;
  constexpr int kSegmentsTotal = 8'000;

  AtomicClock clock;
  ShardedSoftTimerRuntime::Config rc;
  rc.num_shards = 1;
  rc.ring_capacity = 1024;
  ShardedSoftTimerRuntime rt(&clock, rc);

  RtoEngine::Config ec;
  ec.rto_initial_ticks = 500;
  ec.rto_min_ticks = 100;
  ec.rto_max_ticks = 8'000;
  ec.max_retransmits = 30;  // late ACKs keep connections alive
  RtoEngine engine(&rt, nullptr, ec);

  // (conn_id, seq_end) pairs awaiting an ACK, owner -> NIC thread.
  std::mutex wire_mutex;
  std::deque<std::pair<uint64_t, uint64_t>> wire;
  std::atomic<bool> sends_done{false};
  std::atomic<bool> acks_done{false};

  std::thread nic([&] {
    auto token = rt.RegisterProducer();
    ASSERT_TRUE(token.valid());
    Xorshift rng(7);
    RtoEngine* eng = &engine;
    while (true) {
      std::pair<uint64_t, uint64_t> item;
      {
        std::lock_guard<std::mutex> lock(wire_mutex);
        if (wire.empty()) {
          if (sends_done.load(std::memory_order_acquire)) {
            break;
          }
          item.first = 0;
        } else {
          item = wire.front();
          wire.pop_front();
        }
      }
      if (item.first == 0) {
        // Nothing on the wire: hand the core to the owner (this may be a
        // single-CPU machine, where spinning here starves the shard).
        std::this_thread::yield();
        continue;
      }
      // Wire delay 100..900 ticks straddles the 500-tick RTO: both race
      // arms (cancel-first, fire-first) occur.
      uint64_t delay = 100 + rng.Next() % 800;
      uint64_t conn = item.first;
      uint64_t seq = item.second;
      SoftEventId id = rt.ScheduleCrossCoreWithRetry(
          token, 0, delay, [eng, conn, seq](const SoftTimerFacility::FireInfo&) {
            eng->OnCumulativeAck(conn, seq);
          });
      // The retry helper must absorb ring bursts; losing an ACK here would
      // break the accounting below.
      ASSERT_TRUE(id.valid());
    }
    acks_done.store(true, std::memory_order_release);
  });

  // Owner: open connections, stream segments as window space allows, pump
  // trigger states.
  std::vector<uint64_t> conns(kConns);
  std::vector<uint64_t> next_seq(kConns, 1'000);
  for (size_t i = 0; i < kConns; ++i) {
    conns[i] = engine.OpenConnection(nullptr);
  }
  int sent = 0;
  uint64_t iterations = 0;
  while (sent < kSegmentsTotal) {
    // Guard against livelock regressions: fail loudly instead of hanging.
    ASSERT_LT(++iterations, 20'000'000u) << "owner loop made no progress";
    clock.Advance(25);
    rt.OnTriggerState(0, TriggerSource::kSyscall);
    int sent_this_iter = 0;
    for (size_t i = 0; i < kConns && sent < kSegmentsTotal; ++i) {
      if (!engine.IsOpen(conns[i]) ||
          engine.in_flight(conns[i]) >= kRtoWindowSegments) {
        continue;
      }
      uint64_t seq = next_seq[i];
      next_seq[i] += 1'000;
      ASSERT_TRUE(engine.OnSegmentSent(conns[i], seq));
      ++sent;
      ++sent_this_iter;
      {
        std::lock_guard<std::mutex> lock(wire_mutex);
        wire.emplace_back(conns[i], seq);
      }
    }
    if (sent_this_iter == 0) {
      // Windows full: the NIC thread owes us ACKs. Yield so it can run -
      // otherwise on one CPU the virtual clock races ahead of ACK delivery
      // and every connection spuriously exhausts its retry budget.
      std::this_thread::yield();
    }
  }
  sends_done.store(true, std::memory_order_release);
  // Keep the shard ticking until the NIC thread has pushed every ACK, then
  // let in-flight ACK timers and RTOs settle.
  while (!acks_done.load(std::memory_order_acquire)) {
    clock.Advance(25);
    rt.OnTriggerState(0, TriggerSource::kSyscall);
    std::this_thread::yield();
  }
  nic.join();
  for (int i = 0; i < 2'000; ++i) {
    clock.Advance(25);
    rt.OnTriggerState(0, TriggerSource::kSyscall);
  }
  for (size_t i = 0; i < kConns; ++i) {
    if (engine.IsOpen(conns[i])) {
      engine.CloseConnection(conns[i]);
    }
  }

  const RtoEngine::Stats& st = engine.stats();
  // Both arms of the race must actually have been exercised.
  EXPECT_GT(st.timers_cancelled, 0u);
  EXPECT_GT(st.timers_fired, 0u);
  EXPECT_GT(st.karn_suppressed, 0u);  // late-ACK arm retired marked segs
  // Exact conservation: every scheduled timer either fired or was
  // cancelled (ACK or close) - none lost, none double-counted.
  EXPECT_EQ(st.timers_scheduled, st.timers_cancelled + st.timers_fired);
  EXPECT_EQ(st.stale_fires, 0u);
  EXPECT_EQ(engine.open_connections(), 0u);
  EXPECT_EQ(st.segments_sent, static_cast<uint64_t>(kSegmentsTotal));
}

}  // namespace
}  // namespace softtimer
