// Sanity bounds on the Table 1 workload models: each workload's trigger
// interval distribution must land in the neighbourhood of the paper's
// measurements (loose bounds - the tight comparison lives in
// bench_fig4_table1_trigger_intervals and EXPERIMENTS.md).

#include <gtest/gtest.h>

#include "src/stats/sample_set.h"
#include "src/workload/trigger_workload.h"

namespace softtimer {
namespace {

struct Expect {
  WorkloadKind kind;
  double mean_lo, mean_hi;
  double median_lo, median_hi;
};

class WorkloadDistribution : public ::testing::TestWithParam<Expect> {};

TEST_P(WorkloadDistribution, IntervalStatsInPaperNeighbourhood) {
  const Expect& e = GetParam();
  auto wl = MakeTriggerWorkload(e.kind, MachineProfile::PentiumII300(), /*seed=*/42);
  SampleSet samples(400'000);
  wl->kernel().set_trigger_observer(
      [&](TriggerSource, SimTime, SimDuration d) { samples.Add(d.ToMicros()); });
  wl->Start();
  while (samples.count() < 60'000 && wl->sim().now() < SimTime::Zero() + SimDuration::Seconds(20)) {
    wl->sim().RunFor(SimDuration::Millis(100));
  }
  ASSERT_GE(samples.count(), 10'000u) << wl->name();
  EXPECT_GE(samples.mean(), e.mean_lo) << wl->name();
  EXPECT_LE(samples.mean(), e.mean_hi) << wl->name();
  EXPECT_GE(samples.Median(), e.median_lo) << wl->name();
  EXPECT_LE(samples.Median(), e.median_hi) << wl->name();
  // The 1 kHz backup interrupt bounds every gap at <= ~1 ms.
  EXPECT_LE(samples.max(), 1050.0) << wl->name();
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadDistribution,
    ::testing::Values(Expect{WorkloadKind::kApache, 22, 38, 13, 24},          // paper: 31.5 / 18
                      Expect{WorkloadKind::kApacheCompute, 22, 40, 13, 24},   // 31.6 / 18
                      Expect{WorkloadKind::kFlash, 16, 30, 11, 22},           // 22.5 / 17
                      Expect{WorkloadKind::kRealAudio, 6, 12, 4, 9},          // 8.5 / 6
                      Expect{WorkloadKind::kNfs, 1.5, 3.5, 1, 3},             // 2.1 / 2
                      Expect{WorkloadKind::kKernelBuild, 4, 9, 1, 4}),        // 5.6 / 2
    [](const ::testing::TestParamInfo<Expect>& info) {
      std::string n = WorkloadKindName(info.param.kind);
      std::string out;
      for (char c : n) {
        if (c != '-') {
          out += c;
        }
      }
      return out;
    });

TEST(WorkloadTest, XeonSpeedsUpApacheTriggerRate) {
  auto slow = MakeTriggerWorkload(WorkloadKind::kApache, MachineProfile::PentiumII300(), 42);
  auto fast = MakeTriggerWorkload(WorkloadKind::kApache, MachineProfile::PentiumIII500Xeon(), 42);
  SummaryStats s_slow, s_fast;
  slow->kernel().set_trigger_observer(
      [&](TriggerSource, SimTime, SimDuration d) { s_slow.Add(d.ToMicros()); });
  fast->kernel().set_trigger_observer(
      [&](TriggerSource, SimTime, SimDuration d) { s_fast.Add(d.ToMicros()); });
  slow->Start();
  fast->Start();
  slow->sim().RunFor(SimDuration::Seconds(1));
  fast->sim().RunFor(SimDuration::Seconds(1));
  // Table 1: the mean drops roughly with the clock-speed ratio (1.67).
  double ratio = s_slow.mean() / s_fast.mean();
  EXPECT_GT(ratio, 1.25);
  EXPECT_LT(ratio, 2.0);
}

TEST(WorkloadTest, ApacheSourceMixMatchesTable2Ordering) {
  auto wl = MakeTriggerWorkload(WorkloadKind::kApache, MachineProfile::PentiumII300(), 42);
  wl->Start();
  wl->sim().RunFor(SimDuration::Seconds(1));
  const auto& by = wl->kernel().stats().triggers_by_source;
  uint64_t syscalls = by[static_cast<size_t>(TriggerSource::kSyscall)];
  uint64_t ipout = by[static_cast<size_t>(TriggerSource::kIpOutput)];
  uint64_t ipintr = by[static_cast<size_t>(TriggerSource::kIpIntr)];
  uint64_t tcpip = by[static_cast<size_t>(TriggerSource::kTcpIpOthers)];
  uint64_t traps = by[static_cast<size_t>(TriggerSource::kTrap)];
  // Table 2 ordering: syscalls > ip-output, ip-intr > tcpip-others > traps.
  EXPECT_GT(syscalls, ipout);
  EXPECT_GT(ipout, tcpip);
  EXPECT_GT(ipintr, tcpip);
  EXPECT_GT(tcpip, traps);
  EXPECT_GT(traps, 0u);
}

TEST(WorkloadTest, StochasticAlternativeMatchesMechanisticRegimes) {
  // The fitted-distribution generators land in the same neighbourhoods as
  // the mechanistic substrates for the non-web workloads.
  struct Row {
    WorkloadKind kind;
    double mean_lo, mean_hi;
  };
  for (const Row& r : {Row{WorkloadKind::kNfs, 1.5, 3.5},
                       Row{WorkloadKind::kRealAudio, 6, 12},
                       Row{WorkloadKind::kKernelBuild, 4, 9}}) {
    auto wl = MakeStochasticTriggerWorkload(r.kind, MachineProfile::PentiumII300(), 42);
    SummaryStats s;
    wl->kernel().set_trigger_observer(
        [&](TriggerSource, SimTime, SimDuration d) { s.Add(d.ToMicros()); });
    wl->Start();
    wl->sim().RunFor(SimDuration::Seconds(1));
    EXPECT_GE(s.mean(), r.mean_lo) << wl->name();
    EXPECT_LE(s.mean(), r.mean_hi) << wl->name();
  }
}

TEST(WorkloadTest, NfsIsMostlyIdleLoopTriggers) {
  auto wl = MakeTriggerWorkload(WorkloadKind::kNfs, MachineProfile::PentiumII300(), 42);
  wl->Start();
  wl->sim().RunFor(SimDuration::Seconds(1));
  const auto& s = wl->kernel().stats();
  uint64_t idle = s.triggers_by_source[static_cast<size_t>(TriggerSource::kIdleLoop)];
  EXPECT_GT(static_cast<double>(idle), 0.7 * static_cast<double>(s.triggers));
}

}  // namespace
}  // namespace softtimer
