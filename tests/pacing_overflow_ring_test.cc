// Overflow-ring boundary semantics for PacingWheel: the hierarchical outer
// ring that parks deadlines past `quantum * num_slots` and cascades them
// into the inner wheel one lap ahead. Covers the ISSUE 6 checklist:
// deadline exactly at the horizon, deadlines multiple outer laps away,
// re-rate of a parked flow, cancel (deactivate/remove) while parked, and
// cascade ordering (a cascaded entry never fires earlier than an
// inner-wheel peer with the same deadline).

#include "src/pacing/pacing_wheel.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace softtimer {
namespace {

struct RecordedEmit {
  uint64_t flow;
  uint64_t user_data;
  uint32_t packets;
  uint64_t now_tick;
};

class RecordingSink : public PacingWheel::BatchSink {
 public:
  void OnPacedBatch(const PacedEmit* batch, size_t count,
                    uint64_t now_tick) override {
    for (size_t i = 0; i < count; ++i) {
      emits.push_back({batch[i].flow.value, batch[i].user_data,
                       batch[i].packets, now_tick});
    }
  }
  std::vector<RecordedEmit> emits;
};

PacedFlowConfig Flow(uint64_t target, uint64_t min_burst,
                     uint64_t user_data = 0) {
  PacedFlowConfig c;
  c.target_interval_ticks = target;
  c.min_burst_interval_ticks = min_burst;
  c.user_data = user_data;
  return c;
}

PacingWheel::Config Wheel(uint64_t quantum, uint32_t slots,
                          uint32_t overflow_slots = 64) {
  PacingWheel::Config c;
  c.quantum_ticks = quantum;
  c.num_slots = slots;
  c.overflow_slots = overflow_slots;
  return c;
}

// The boundary between "links inner" and "parks": the largest delay the
// inner wheel represents without aliasing is horizon - quantum (the same
// bound the old clamp enforced); one tick past it must park.
TEST(PacingOverflowRingTest, DeadlineExactlyAtHorizonBoundary) {
  PacingWheel wheel(Wheel(8, 64));  // horizon = 512
  RecordingSink sink;
  PacedFlowId at = wheel.AddFlow(Flow(100, 10, 1));
  PacedFlowId past = wheel.AddFlow(Flow(100, 10, 2));
  // Activate delay d gives deadline now + 1 + d. horizon - quantum = 504:
  // deadline 504 is the last inner-representable delay...
  ASSERT_TRUE(wheel.Activate(at, 0, 503));
  EXPECT_EQ(wheel.stats().overflow_parks, 0u);
  EXPECT_EQ(wheel.parked_flows(), 0u);
  // ...and deadline 505 (delay 504, one past the bound) parks.
  ASSERT_TRUE(wheel.Activate(past, 0, 504));
  EXPECT_EQ(wheel.stats().overflow_parks, 1u);
  EXPECT_EQ(wheel.parked_flows(), 1u);
  EXPECT_EQ(wheel.queued_flows(), 2u);
  EXPECT_EQ(wheel.next_due_tick(), 504u);
  // Both fire at their exact deadlines, never early.
  EXPECT_EQ(wheel.Drain(503, &sink), 0u);
  EXPECT_EQ(wheel.Drain(504, &sink), 1u);
  ASSERT_EQ(sink.emits.size(), 1u);
  EXPECT_EQ(sink.emits[0].user_data, 1u);
  EXPECT_EQ(wheel.Drain(505, &sink), 1u);
  ASSERT_EQ(sink.emits.size(), 2u);
  EXPECT_EQ(sink.emits[1].user_data, 2u);
  EXPECT_EQ(wheel.stats().horizon_clamps, 0u);
}

// A deadline several outer laps out survives the cursor passing its outer
// slot multiple times (re-parked each lap, fired only at its exact tick).
// A busy inner flow keeps the drains past the wake-up gate so the outer
// cursor genuinely walks window by window instead of leaping.
TEST(PacingOverflowRingTest, DeadlineMultipleOuterLapsAway) {
  // horizon = 512, 4 outer slots -> outer span = 2048 ticks.
  PacingWheel wheel(Wheel(8, 64, 4));
  EXPECT_EQ(wheel.overflow_slots(), 4u);
  RecordingSink sink;
  PacedFlowId busy = wheel.AddFlow(Flow(50, 5, 0));
  PacedFlowId id = wheel.AddFlow(Flow(9'000, 10, 7));
  ASSERT_TRUE(wheel.Activate(busy, 0));
  // Deadline 9'001: outer window [8'704, 9'216), i.e. more than four full
  // outer laps (4 * 2'048 = 8'192) from activation.
  ASSERT_TRUE(wheel.Activate(id, 0, 9'000));
  EXPECT_EQ(wheel.parked_flows(), 1u);
  // Drains every quantum up to just short of the deadline: the cursor
  // passes the flow's outer slot once per outer lap; each pass re-parks,
  // and the far flow never fires early.
  for (uint64_t now = 8; now < 9'001; now += 8) {
    wheel.Drain(now, &sink);
    for (const RecordedEmit& e : sink.emits) {
      ASSERT_NE(e.user_data, 7u) << "early fire at " << now;
    }
  }
  // Four re-parks: cursor passes outer slot 1 at ~512, ~2560, ~4608, ~6656
  // before the deadline's own window at ~8704 cascades it in.
  EXPECT_GE(wheel.stats().overflow_reparks, 3u);
  size_t before = sink.emits.size();
  EXPECT_GE(wheel.Drain(9'001, &sink), 1u);
  bool fired = false;
  for (size_t i = before; i < sink.emits.size(); ++i) {
    if (sink.emits[i].user_data == 7u) {
      EXPECT_EQ(sink.emits[i].now_tick, 9'001u);
      fired = true;
    }
  }
  EXPECT_TRUE(fired);
  EXPECT_EQ(wheel.stats().horizon_clamps, 0u);
}

// Re-rating a parked flow to a representable interval pulls it out of the
// overflow ring immediately (next emission at now + 1, then the new
// cadence), instead of waiting for the old far-future cascade.
TEST(PacingOverflowRingTest, ReRateOfParkedFlowLeavesRingImmediately) {
  PacingWheel wheel(Wheel(8, 64));
  RecordingSink sink;
  PacedFlowId id = wheel.AddFlow(Flow(100'000, 10));
  ASSERT_TRUE(wheel.Activate(id, 0));
  // First emission at tick 1, then the 100'000-tick interval parks it.
  EXPECT_EQ(wheel.Drain(1, &sink), 1u);
  EXPECT_EQ(wheel.parked_flows(), 1u);
  ASSERT_TRUE(wheel.ReRate(id, 1, 50, 5));
  EXPECT_EQ(wheel.parked_flows(), 0u);
  EXPECT_EQ(wheel.queued_flows(), 1u);
  EXPECT_EQ(wheel.next_due_tick(), 2u);
  EXPECT_EQ(wheel.Drain(2, &sink), 1u);
  EXPECT_EQ(sink.emits.size(), 2u);
  // And the reverse: re-rating an inner flow past the horizon parks the
  // NEXT emission (the re-rate itself re-aims at now + 1 first).
  ASSERT_TRUE(wheel.ReRate(id, 2, 100'000, 10));
  EXPECT_EQ(wheel.next_due_tick(), 3u);
  EXPECT_EQ(wheel.Drain(3, &sink), 1u);
  EXPECT_EQ(wheel.parked_flows(), 1u);
  EXPECT_EQ(wheel.next_due_tick(), 100'003u);
}

// Deactivate and RemoveFlow while parked unlink from the outer ring;
// nothing fires later and the wake-up gate resets when the ring empties.
TEST(PacingOverflowRingTest, CancelWhileParked) {
  PacingWheel wheel(Wheel(8, 64));
  RecordingSink sink;
  PacedFlowId a = wheel.AddFlow(Flow(10'000, 10, 1));
  PacedFlowId b = wheel.AddFlow(Flow(20'000, 10, 2));
  ASSERT_TRUE(wheel.Activate(a, 0, 9'999));
  ASSERT_TRUE(wheel.Activate(b, 0, 19'999));
  EXPECT_EQ(wheel.parked_flows(), 2u);
  ASSERT_TRUE(wheel.Deactivate(a));
  EXPECT_EQ(wheel.parked_flows(), 1u);
  EXPECT_FALSE(wheel.active(a));
  EXPECT_TRUE(wheel.contains(a));  // still registered, just idle
  ASSERT_TRUE(wheel.RemoveFlow(b));
  EXPECT_FALSE(wheel.contains(b));
  EXPECT_EQ(wheel.parked_flows(), 0u);
  EXPECT_EQ(wheel.next_due_tick(), UINT64_MAX);
  // Sweeping far past both old deadlines emits nothing.
  EXPECT_EQ(wheel.Drain(50'000, &sink), 0u);
  EXPECT_TRUE(sink.emits.empty());
  // A deactivated-then-reactivated flow runs normally.
  ASSERT_TRUE(wheel.Activate(a, 50'000, 0));
  EXPECT_EQ(wheel.Drain(50'001, &sink), 1u);
  EXPECT_EQ(sink.emits.size(), 1u);
}

// Cascade ordering: an entry that reaches its deadline via the overflow
// ring fires in the same drain (same now_tick) as an inner-wheel peer
// scheduled for the same deadline — the cascaded entry never fires
// earlier than the peer, and neither fires before the exact deadline.
TEST(PacingOverflowRingTest, CascadedEntryNeverFiresBeforeInnerPeer) {
  PacingWheel wheel(Wheel(8, 64));  // horizon = 512
  RecordingSink sink;
  const uint64_t deadline = 1'000;
  PacedFlowId parked = wheel.AddFlow(Flow(100, 10, 1));
  PacedFlowId inner = wheel.AddFlow(Flow(100, 10, 2));
  // Parked at activation (delay 999 > 504)...
  ASSERT_TRUE(wheel.Activate(parked, 0, deadline - 1));
  EXPECT_EQ(wheel.parked_flows(), 1u);
  // ...while the peer enters the inner wheel later, aimed at the same
  // absolute deadline (activated at 600, delay 399 fits the horizon).
  wheel.Drain(600, &sink);  // gated: nothing due yet, the entry stays parked
  ASSERT_TRUE(sink.emits.empty());
  ASSERT_TRUE(wheel.Activate(inner, 600, deadline - 601));
  EXPECT_EQ(wheel.parked_flows(), 1u);
  EXPECT_EQ(wheel.queued_flows(), 2u);
  // Sub-deadline drains: neither fires.
  EXPECT_EQ(wheel.Drain(deadline - 1, &sink), 0u);
  ASSERT_TRUE(sink.emits.empty());
  // At the deadline both fire under one clock read.
  EXPECT_EQ(wheel.Drain(deadline, &sink), 2u);
  ASSERT_EQ(sink.emits.size(), 2u);
  EXPECT_EQ(sink.emits[0].now_tick, deadline);
  EXPECT_EQ(sink.emits[1].now_tick, deadline);
  EXPECT_EQ(wheel.stats().horizon_clamps, 0u);
}

// The wake-up gate (next_due_tick) tracks parked deadlines so a host that
// arms one soft event from it cascades in time; emptying and refilling
// the ring keeps the gate exact.
TEST(PacingOverflowRingTest, NextDueTracksParkedDeadlines) {
  PacingWheel wheel(Wheel(8, 64));
  RecordingSink sink;
  PacedFlowId far = wheel.AddFlow(Flow(5'000, 10, 1));
  PacedFlowId near = wheel.AddFlow(Flow(50, 5, 2));
  ASSERT_TRUE(wheel.Activate(far, 0, 4'999));
  EXPECT_EQ(wheel.next_due_tick(), 5'000u);  // parked-only gate
  ASSERT_TRUE(wheel.Activate(near, 0, 0));
  EXPECT_EQ(wheel.next_due_tick(), 1u);  // inner deadline wins
  EXPECT_EQ(wheel.Drain(1, &sink), 1u);
  // After the drain the gate holds the near flow's next deadline.
  EXPECT_EQ(wheel.next_due_tick(), 51u);
  ASSERT_TRUE(wheel.Deactivate(near));
  wheel.Drain(60, &sink);
  EXPECT_EQ(wheel.next_due_tick(), 5'000u);
}

// Overflow traffic stays allocation-stable: after the ring's vectors reach
// their high-water mark, park/cascade/re-park cycles reuse storage (the
// slab and the outer slot vectors grow only to the workload peak).
TEST(PacingOverflowRingTest, SteadyStateParkCascadeReusesStorage) {
  PacingWheel wheel(Wheel(8, 64, 4));
  RecordingSink sink;
  std::vector<PacedFlowId> ids;
  for (int i = 0; i < 32; ++i) {
    ids.push_back(wheel.AddFlow(Flow(3'000 + 8 * i, 10, i)));
  }
  uint64_t now = 0;
  for (PacedFlowId id : ids) {
    ASSERT_TRUE(wheel.Activate(id, now));
  }
  // Several full interval cycles: every flow parks, cascades, fires,
  // re-parks each cycle.
  for (int cycle = 0; cycle < 8; ++cycle) {
    for (int step = 0; step < 400; ++step) {
      now += 8;
      wheel.Drain(now, &sink);
    }
  }
  EXPECT_EQ(wheel.stats().horizon_clamps, 0u);
  EXPECT_GE(wheel.stats().overflow_parks, 8u * 32u);
  // The final cycle's parks may still be waiting at test end.
  EXPECT_GE(wheel.stats().overflow_cascades, 7u * 32u);
  // Every emission happened at or after its exact deadline (the sink's
  // now_tick is the drain clock; per-flow deadlines are multiples of the
  // interval from activation, so lateness >= 0 is implied by the wheel's
  // keep-requeue discipline — spot-check that each flow fired each cycle).
  EXPECT_GE(sink.emits.size(), 8u * 32u);
}

}  // namespace
}  // namespace softtimer
