// ShardedRtHost behaviour: per-shard trigger loops, cross-core wakeups
// cutting through backup-bounded sleeps, and the single-owner idle-work
// takeover. Real threads and wall-clock sleeps; bounds are loose for loaded
// CI machines. Runs under the `cross-thread` label / tsan preset.

#include "src/rt/sharded_rt_host.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace softtimer {
namespace {

TEST(ShardedRtHostTest, StartStopIsIdempotentAndJoins) {
  ShardedRtHost::Config cfg;
  cfg.num_shards = 3;
  ShardedRtHost host(cfg);
  EXPECT_FALSE(host.running());
  host.Start();
  host.Start();  // no-op
  EXPECT_TRUE(host.running());
  host.Stop();
  host.Stop();  // no-op
  EXPECT_FALSE(host.running());
  // Restartable.
  host.Start();
  EXPECT_TRUE(host.running());
}  // dtor stops again

TEST(ShardedRtHostTest, CrossCoreEventFiresWhileShardsSleep) {
  ShardedRtHost::Config cfg;
  cfg.num_shards = 2;
  cfg.interrupt_clock_hz = 100;  // 10 ms backup: a wakeup must beat this
  ShardedRtHost host(cfg);
  host.Start();
  // Let the loops reach their sleep.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  auto token = host.RegisterProducer();
  std::atomic<uint64_t> fired_tick{0};
  uint64_t t0 = host.clock().NowTicks();
  host.runtime().ScheduleCrossCore(
      token, 1, 200 /* 200 us */,
      [&](const SoftTimerFacility::FireInfo& info) {
        fired_tick.store(info.fired_tick, std::memory_order_relaxed);
      });
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fired_tick.load(std::memory_order_relaxed) == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  host.Stop();
  ASSERT_NE(fired_tick.load(), 0u);
  EXPECT_GE(fired_tick.load() - t0, 200u);  // T < actual
  ShardedRtHost::ShardLoopStats loop = host.shard_loop_stats(1);
  EXPECT_GT(loop.polls, 0u);
}

TEST(ShardedRtHostTest, IdleWorkRunsOnExactlyOneShardAtATime) {
  ShardedRtHost::Config cfg;
  cfg.num_shards = 4;
  std::atomic<int> concurrent{0};
  std::atomic<int> max_concurrent{0};
  std::atomic<uint64_t> runs{0};
  cfg.idle_work = [&]() -> size_t {
    int now = concurrent.fetch_add(1, std::memory_order_acq_rel) + 1;
    int prev = max_concurrent.load(std::memory_order_relaxed);
    while (now > prev &&
           !max_concurrent.compare_exchange_weak(prev, now,
                                                 std::memory_order_relaxed)) {
    }
    runs.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    concurrent.fetch_sub(1, std::memory_order_acq_rel);
    return 0;
  };
  ShardedRtHost host(cfg);
  host.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  host.Stop();
  EXPECT_GT(runs.load(), 0u);
  EXPECT_EQ(max_concurrent.load(), 1);  // the arbiter admits one owner only
  uint64_t runs_by_shards = 0;
  for (size_t s = 0; s < host.num_shards(); ++s) {
    runs_by_shards += host.shard_loop_stats(s).idle_work_runs;
  }
  EXPECT_EQ(runs_by_shards, runs.load());
}

TEST(ShardedRtHostTest, BusyShardHandsIdleWorkBack) {
  ShardedRtHost::Config cfg;
  cfg.num_shards = 2;
  cfg.interrupt_clock_hz = 1'000;
  std::atomic<uint64_t> runs{0};
  cfg.idle_work = [&]() -> size_t {
    runs.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    return 0;
  };
  ShardedRtHost host(cfg);
  host.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_GT(runs.load(), 0u);

  // Keep every shard busy with an imminent-deadline treadmill: the idle-work
  // owner must release its claim when its own timers need service, yet the
  // work keeps running overall (migrating between momentarily-idle shards).
  auto token = host.RegisterProducer();
  std::atomic<bool> stop{false};
  std::thread treadmill([&] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      host.runtime().ScheduleCrossCore(token, i++ % 2, 150,
                                       [](const SoftTimerFacility::FireInfo&) {});
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  uint64_t runs_under_load = runs.load();
  stop.store(true, std::memory_order_relaxed);
  treadmill.join();
  host.Stop();
  // The work never wedged: it still made progress while shards cycled busy.
  EXPECT_GT(runs_under_load, 0u);
  uint64_t dispatched = host.runtime().AggregateStats().dispatches;
  EXPECT_GT(dispatched, 0u);
}

}  // namespace
}  // namespace softtimer
