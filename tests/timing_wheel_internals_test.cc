// Implementation-specific tests for the wheel structures, beyond the shared
// conformance suite: bucket wrap-around, multi-round occupancy, hierarchical
// cascading across level boundaries, coarse granularities, and sustained
// long-run stress against the heap as an oracle.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/sim/random.h"
#include "src/timer/hashed_timing_wheel.h"
#include "src/timer/heap_timer_queue.h"
#include "src/timer/hierarchical_timing_wheel.h"

namespace softtimer {
namespace {

TEST(HashedWheelTest, SmallWheelWrapsManyTimes) {
  // 8 slots, granularity 1: heavy multi-round occupancy.
  HashedTimingWheel w(1, 8);
  std::vector<uint64_t> fired;
  for (uint64_t d : {3u, 11u, 19u, 27u, 5u, 13u}) {
    w.Schedule(d, [&fired, d] { fired.push_back(d); });
  }
  for (uint64_t t = 0; t <= 30; ++t) {
    w.ExpireUpTo(t);
  }
  EXPECT_EQ(fired, (std::vector<uint64_t>{3, 5, 11, 13, 19, 27}));
}

TEST(HashedWheelTest, JumpOverManyEmptySlots) {
  HashedTimingWheel w(1, 16);
  int fired = 0;
  w.Schedule(1'000'000, [&] { ++fired; });
  // Nothing due for a long stretch: ExpireUpTo must stay cheap (covered by
  // the earliest-deadline fast path) and still fire at the right time.
  for (uint64_t t = 0; t < 1'000'000; t += 999) {
    w.ExpireUpTo(t);
  }
  EXPECT_EQ(fired, 0);
  w.ExpireUpTo(1'000'000);
  EXPECT_EQ(fired, 1);
}

TEST(HashedWheelTest, CancelLeavesNeighborsInBucket) {
  HashedTimingWheel w(1, 8);
  // Same bucket (deadline mod 8 == 2), different rounds.
  std::vector<uint64_t> fired;
  TimerId a = w.Schedule(2, [&] { fired.push_back(2); });
  w.Schedule(10, [&] { fired.push_back(10); });
  w.Schedule(18, [&] { fired.push_back(18); });
  EXPECT_TRUE(w.Cancel(a));
  w.ExpireUpTo(20);
  EXPECT_EQ(fired, (std::vector<uint64_t>{10, 18}));
}

TEST(HierarchicalWheelTest, CascadesAcrossLevelBoundaries) {
  // 4 slots per level so cascades happen constantly: level-0 horizon is 4,
  // level-1 is 16, level-2 is 64 ticks.
  HierarchicalTimingWheel w(1, 4, 4);
  std::vector<uint64_t> fired;
  for (uint64_t d : {2u, 7u, 15u, 33u, 62u, 200u}) {
    w.Schedule(d, [&fired, d] { fired.push_back(d); });
  }
  for (uint64_t t = 0; t <= 210; ++t) {
    w.ExpireUpTo(t);
  }
  EXPECT_EQ(fired, (std::vector<uint64_t>{2, 7, 15, 33, 62, 200}));
}

TEST(HierarchicalWheelTest, ScheduleIntoPartiallyElapsedCoarseBucket) {
  HierarchicalTimingWheel w(1, 4, 4);
  // Advance into the middle of a level-1 bucket, then schedule a deadline
  // that falls inside that same (already partially cascaded) bucket.
  w.ExpireUpTo(17);
  std::vector<uint64_t> fired;
  w.Schedule(19, [&] { fired.push_back(19); });
  w.ExpireUpTo(18);
  EXPECT_TRUE(fired.empty());
  w.ExpireUpTo(19);
  EXPECT_EQ(fired, (std::vector<uint64_t>{19}));
}

TEST(HierarchicalWheelTest, FarFutureBeyondTopHorizon) {
  HierarchicalTimingWheel w(1, 4, 2);  // top horizon: 16 ticks
  int fired = 0;
  w.Schedule(1000, [&] { ++fired; });  // wraps the top level many times
  for (uint64_t t = 0; t < 1000; t += 3) {
    w.ExpireUpTo(t);
    ASSERT_EQ(fired, 0) << "fired early at " << t;
  }
  w.ExpireUpTo(1000);
  EXPECT_EQ(fired, 1);
}

TEST(HierarchicalWheelTest, SparseExpiryAfterLongSilence) {
  HierarchicalTimingWheel w(1, 256, 4);
  std::vector<uint64_t> fired;
  w.Schedule(70'000, [&] { fired.push_back(70'000); });
  w.Schedule(70'001, [&] { fired.push_back(70'001); });
  w.Schedule(5'000'000, [&] { fired.push_back(5'000'000); });
  // One giant leap: cascade bookkeeping catches up in a single call.
  w.ExpireUpTo(80'000);
  EXPECT_EQ(fired, (std::vector<uint64_t>{70'000, 70'001}));
  w.ExpireUpTo(6'000'000);
  EXPECT_EQ(fired.size(), 3u);
}

class WheelVsHeapStress : public ::testing::TestWithParam<int> {};

TEST_P(WheelVsHeapStress, LongRunMatchesHeapOracle) {
  // Drive a wheel and the heap with the identical operation stream for a
  // long simulated stretch with tiny wheels (maximum wrap/cascade pressure)
  // and compare every firing.
  std::unique_ptr<TimerQueue> impl;
  if (GetParam() == 0) {
    impl = std::make_unique<HashedTimingWheel>(1, 4);
  } else if (GetParam() == 1) {
    impl = std::make_unique<HashedTimingWheel>(16, 8);
  } else if (GetParam() == 2) {
    impl = std::make_unique<HierarchicalTimingWheel>(1, 4, 3);
  } else {
    impl = std::make_unique<HierarchicalTimingWheel>(8, 4, 5);
  }
  HeapTimerQueue oracle;
  Rng rng(static_cast<uint64_t>(GetParam()) + 5);
  std::vector<uint64_t> fired_impl, fired_oracle;
  uint64_t now = 0;
  uint64_t key = 0;
  std::vector<std::pair<TimerId, TimerId>> live;  // (impl, oracle)

  for (int step = 0; step < 20'000; ++step) {
    double dice = rng.NextDouble();
    if (dice < 0.5) {
      uint64_t d = now + rng.UniformU64(400);
      uint64_t k = ++key;
      TimerId a = impl->Schedule(d, [&fired_impl, k] { fired_impl.push_back(k); });
      TimerId b = oracle.Schedule(d, [&fired_oracle, k] { fired_oracle.push_back(k); });
      live.emplace_back(a, b);
    } else if (dice < 0.6 && !live.empty()) {
      size_t idx = rng.UniformU64(live.size());
      bool ca = impl->Cancel(live[idx].first);
      bool cb = oracle.Cancel(live[idx].second);
      EXPECT_EQ(ca, cb);
      live.erase(live.begin() + static_cast<long>(idx));
    } else {
      now += rng.UniformU64(40);
      impl->ExpireUpTo(now);
      oracle.ExpireUpTo(now);
      ASSERT_EQ(fired_impl, fired_oracle) << "step " << step;
      ASSERT_EQ(impl->size(), oracle.size());
      ASSERT_EQ(impl->EarliestDeadline(), oracle.EarliestDeadline());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, WheelVsHeapStress, ::testing::Values(0, 1, 2, 3),
                         [](const ::testing::TestParamInfo<int>& info) {
                           switch (info.param) {
                             case 0:
                               return "HashedTiny";
                             case 1:
                               return "HashedCoarse";
                             case 2:
                               return "HierTiny";
                             default:
                               return "HierCoarse";
                           }
                         });

}  // namespace
}  // namespace softtimer
