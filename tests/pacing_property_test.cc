// Acceptance property for the pacing wheel (ISSUE: million-flow pacing
// engine): with N flows at heterogeneous rates driven through a
// SoftTimerFacility by one PacingWheelHost, every emitted packet respects
// its flow's configured inter-packet floor.
//
// The wheel never fires a flow early (per-node deadline checks survive slot
// quantization), and a flow's next deadline is always at least
// min_burst_interval past the emission that scheduled it. Emission
// timestamps here are the drain's now_tick — the moment the packets are
// actually handed to the sink — so consecutive per-flow emissions must be
// separated by >= min_burst_interval ticks exactly (a fortiori >=
// min_burst - (X + 1), the paper-bound phrasing in the issue). Lateness,
// by contrast, is bounded only by the dispatch process: the trigger-state
// mix for the wheel path, the backup interrupt alone for the degenerate
// path. Both paths must uphold the floor; the backup-only path must also
// show lateness bounded by one backup interval (the paper's T < actual <
// T + X + 1 with X = one backup period worth of ticks).
//
// Coalescing is disabled so "packet" == "emit record" and gaps are directly
// observable.

#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/clock_source.h"
#include "src/core/soft_timer_facility.h"
#include "src/pacing/pacing_wheel.h"
#include "src/pacing/pacing_wheel_host.h"
#include "src/sim/random.h"

namespace softtimer {
namespace {

class ManualClock : public ClockSource {
 public:
  uint64_t NowTicks() const override { return now_; }
  uint64_t ResolutionHz() const override { return 1'000'000; }
  void Advance(uint64_t ticks) { now_ += ticks; }

 private:
  uint64_t now_ = 0;
};

struct FlowSpec {
  PacedFlowId id;
  uint64_t target;
  uint64_t min_burst;
  std::vector<uint64_t> emit_ticks;
};

class GapRecordingSink : public PacingWheel::BatchSink {
 public:
  explicit GapRecordingSink(std::map<uint64_t, FlowSpec>* flows)
      : flows_(flows) {}
  void OnPacedBatch(const PacedEmit* batch, size_t count,
                    uint64_t now_tick) override {
    for (size_t i = 0; i < count; ++i) {
      ASSERT_EQ(batch[i].packets, 1u);  // coalescing disabled
      auto it = flows_->find(batch[i].flow.value);
      ASSERT_NE(it, flows_->end());
      it->second.emit_ticks.push_back(now_tick);
    }
  }

 private:
  std::map<uint64_t, FlowSpec>* flows_;
};

struct PacingHarness {
  explicit PacingHarness(uint64_t backup_hz)
      : facility(&clock, MakeConfig(backup_hz)),
        wheel(MakeWheel()),
        host(&facility, &wheel),
        sink(&flows) {
    host.set_sink(&sink);
  }

  static SoftTimerFacility::Config MakeConfig(uint64_t backup_hz) {
    SoftTimerFacility::Config c;
    c.interrupt_clock_hz = backup_hz;
    return c;
  }

  static PacingWheel::Config MakeWheel() {
    PacingWheel::Config c;
    c.quantum_ticks = 8;
    c.num_slots = 4096;
    return c;
  }

  void AddFlows(size_t n, Rng* rng) {
    static constexpr uint64_t kTargets[] = {64, 120, 250, 500, 1000, 2000};
    for (size_t i = 0; i < n; ++i) {
      PacedFlowConfig fc;
      fc.target_interval_ticks = kTargets[i % (sizeof(kTargets) / sizeof(kTargets[0]))];
      fc.min_burst_interval_ticks = fc.target_interval_ticks / 2;
      fc.max_coalesced_burst_packets = 0;  // coalescing off
      PacedFlowId id = host.AddFlow(fc);
      ASSERT_TRUE(id.valid());
      FlowSpec spec;
      spec.id = id;
      spec.target = fc.target_interval_ticks;
      spec.min_burst = fc.min_burst_interval_ticks;
      flows.emplace(id.value, spec);
      // Staggered starts so slots do not convoy.
      ASSERT_TRUE(host.Activate(id, rng->UniformU64(500)));
    }
  }

  void CheckGaps(size_t min_emits_per_flow) const {
    for (const auto& [key, spec] : flows) {
      ASSERT_GE(spec.emit_ticks.size(), min_emits_per_flow)
          << "flow target " << spec.target << " starved";
      for (size_t i = 1; i < spec.emit_ticks.size(); ++i) {
        uint64_t gap = spec.emit_ticks[i] - spec.emit_ticks[i - 1];
        ASSERT_GE(gap, spec.min_burst)
            << "flow target " << spec.target << " emission " << i;
      }
    }
  }

  ManualClock clock;
  SoftTimerFacility facility;
  std::map<uint64_t, FlowSpec> flows;
  PacingWheel wheel;
  PacingWheelHost host;
  GapRecordingSink sink;
};

TEST(PacingPropertyTest, WheelPathRespectsPerFlowFloorsUnderRandomTriggers) {
  // 1 MHz measure clock, 1 kHz backup => X = 1000 ticks per backup period.
  PacingHarness h(1'000);
  Rng rng(1234);
  h.AddFlows(400, &rng);
  // Random trigger-state process: bursts of frequent checks separated by
  // droughts, plus the backup interrupt at its fixed period.
  uint64_t next_backup = 1'000;
  uint64_t horizon = 200'000;
  while (h.clock.NowTicks() < horizon) {
    uint64_t step = 1 + static_cast<uint64_t>(rng.Exponential(
                            rng.UniformU64(10) == 0 ? 400.0 : 25.0));
    h.clock.Advance(step);
    while (h.clock.NowTicks() >= next_backup) {
      h.facility.OnBackupInterrupt();
      next_backup += 1'000;
    }
    h.facility.OnTriggerState(rng.UniformU64(2) == 0
                                  ? TriggerSource::kSyscall
                                  : TriggerSource::kIpIntr);
  }
  // Slowest flow (target 2000) over 200k ticks emits ~100 times; demand a
  // conservative floor to prove nobody starved.
  h.CheckGaps(/*min_emits_per_flow=*/40);
  EXPECT_GT(h.host.stats().wheel_events, 100u);
  // One soft event per shard: never more than the single armed wheel event.
  EXPECT_LE(h.facility.pending_count(), 1u);
}

TEST(PacingPropertyTest, BackupOnlyPathRespectsFloorsAndPaperBound) {
  // No trigger states at all: dispatch happens exclusively at the backup
  // interrupt, the paper's worst case. X = 500 ticks (2 kHz backup).
  PacingHarness h(2'000);
  Rng rng(99);
  h.AddFlows(100, &rng);
  const uint64_t backup_period = 500;
  uint64_t horizon = 300'000;
  for (uint64_t t = backup_period; t <= horizon; t += backup_period) {
    h.clock.Advance(backup_period);
    h.facility.OnBackupInterrupt();
  }
  h.CheckGaps(/*min_emits_per_flow=*/60);
  // Paper bound, wheel-level: every drain happens within one backup period
  // (+1 schedule tick) of the wheel's earliest deadline, so no flow's
  // emission is later than deadline + X + 1. Observable consequence: each
  // flow's mean gap cannot exceed target + X + 1.
  for (const auto& [key, spec] : h.flows) {
    double sum = 0;
    for (size_t i = 1; i < spec.emit_ticks.size(); ++i) {
      sum += static_cast<double>(spec.emit_ticks[i] - spec.emit_ticks[i - 1]);
    }
    double mean = sum / static_cast<double>(spec.emit_ticks.size() - 1);
    EXPECT_LE(mean, static_cast<double>(spec.target + backup_period + 1))
        << "flow target " << spec.target;
    // And every single gap obeys the hard floor even in backup-only mode.
    EXPECT_GE(mean, static_cast<double>(spec.min_burst));
  }
}

TEST(PacingPropertyTest, AggregateRateTracksTargetWithinTolerance) {
  // Acceptance criterion: aggregate achieved rate within 5% of the target
  // when the dispatch process is healthy (frequent trigger states).
  PacingHarness h(1'000);
  Rng rng(7);
  h.AddFlows(300, &rng);
  uint64_t horizon = 400'000;
  while (h.clock.NowTicks() < horizon) {
    h.clock.Advance(1 + static_cast<uint64_t>(rng.Exponential(6.0)));
    h.facility.OnTriggerState(TriggerSource::kSyscall);
  }
  double expected = 0;
  double achieved = 0;
  for (const auto& [key, spec] : h.flows) {
    ASSERT_GE(spec.emit_ticks.size(), 2u);
    uint64_t span = spec.emit_ticks.back() - spec.emit_ticks.front();
    expected += 1.0 / static_cast<double>(spec.target);
    achieved += static_cast<double>(spec.emit_ticks.size() - 1) /
                static_cast<double>(span);
  }
  EXPECT_NEAR(achieved, expected, expected * 0.05);
}

}  // namespace
}  // namespace softtimer
