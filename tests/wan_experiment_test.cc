// Integration tests asserting the structural invariants behind Tables 6/7 -
// the claims the WAN bench relies on, as regression-guarded properties.

#include <gtest/gtest.h>

#include "src/machine/kernel.h"
#include "src/net/wan_path.h"
#include "src/tcp/tcp_receiver.h"
#include "src/tcp/tcp_sender.h"

namespace softtimer {
namespace {

struct WanRun {
  double response_ms = -1;
  uint64_t segments_sent = 0;
};

WanRun RunWan(double bottleneck_bps, uint64_t packets, bool rate_based,
           SimDuration one_way = SimDuration::Millis(50)) {
  Simulator sim;
  Kernel::Config kc;
  kc.profile = MachineProfile::PentiumII300();
  kc.idle_poll_fast_forward = true;
  Kernel kernel(&sim, kc);
  WanPath::Config wc;
  wc.bottleneck_bps = bottleneck_bps;
  wc.one_way_delay = one_way;
  WanPath wan(&sim, wc);

  TcpSender::Config sc;
  sc.mode = rate_based ? TcpSender::Mode::kRateBased : TcpSender::Mode::kSelfClocked;
  sc.rwnd_bytes = 1 << 20;
  double wire_bits = (kDefaultMss + kTcpIpHeaderBytes) * 8.0;
  sc.pace_target_interval_ticks = static_cast<uint64_t>(wire_bits / bottleneck_bps * 1e6 + 0.5);
  sc.pace_min_burst_interval_ticks = sc.pace_target_interval_ticks;
  TcpSender sender(&kernel, sc);
  TcpReceiver receiver(&sim, TcpReceiver::Config{});

  sender.set_packet_sender([&](Packet p) { wan.forward().Send(p); });
  wan.forward().set_receiver([&](const Packet& p) { receiver.OnSegment(p); });
  receiver.set_ack_sender([&](Packet p) { wan.reverse().Send(p); });
  wan.reverse().set_receiver([&](const Packet& p) { sender.OnAck(p); });

  uint64_t bytes = packets * kDefaultMss;
  WanRun out;
  receiver.NotifyWhenReceived(bytes, [&] { out.response_ms = sim.now().ToSeconds() * 1e3; });
  sim.ScheduleAt(SimTime::Zero() + one_way, [&] { sender.StartTransfer(bytes); });
  sim.RunUntil(SimTime::Zero() + SimDuration::Seconds(60));
  out.segments_sent = sender.stats().segments_sent;
  return out;
}

TEST(WanExperimentTest, RateBasedResponseIsRttPlusPacedTransmission) {
  // resp ~= one-way (request) + N * pace + one-way (delivery).
  WanRun r = RunWan(50e6, 100, /*rate_based=*/true);
  double expected_ms = 50 + 100 * 0.240 + 50;
  EXPECT_GT(r.response_ms, 0);
  EXPECT_NEAR(r.response_ms, expected_ms, 3.0);
}

TEST(WanExperimentTest, RegularTcpPaysSlowStartRounds) {
  // 100 segments from cwnd 1 with delayed ACKs needs many RTTs: response far
  // above the paced transfer's, and at least 8 round trips.
  WanRun r = RunWan(50e6, 100, /*rate_based=*/false);
  EXPECT_GT(r.response_ms, 8 * 100.0);
  EXPECT_LT(r.response_ms, 16 * 100.0);
}

TEST(WanExperimentTest, AdvantageShrinksWithTransferSize) {
  double red_small = 1.0 - RunWan(50e6, 100, true).response_ms / RunWan(50e6, 100, false).response_ms;
  double red_large =
      1.0 - RunWan(50e6, 20'000, true).response_ms / RunWan(50e6, 20'000, false).response_ms;
  EXPECT_GT(red_small, 0.8);   // ~89% in the paper
  EXPECT_LT(red_large, 0.45);  // the crossover direction of Tables 6/7
  EXPECT_GT(red_large, 0.0);   // but rate-based never loses here
}

TEST(WanExperimentTest, LargeTransferApproachesBottleneckEitherWay) {
  WanRun reg = RunWan(50e6, 30'000, false);
  WanRun rbc = RunWan(50e6, 30'000, true);
  double reg_mbps = 30'000.0 * kDefaultMss * 8 / (reg.response_ms / 1e3) / 1e6;
  double rbc_mbps = 30'000.0 * kDefaultMss * 8 / (rbc.response_ms / 1e3) / 1e6;
  EXPECT_GT(reg_mbps, 35.0);
  EXPECT_GT(rbc_mbps, 44.0);
  EXPECT_LT(rbc_mbps, 50.0);  // cannot beat the wire
}

TEST(WanExperimentTest, NoRetransmissionsOnTheCleanPath) {
  WanRun r = RunWan(100e6, 5'000, false);
  EXPECT_EQ(r.segments_sent, 5'000u);  // window-limited, loss-free
}

TEST(WanExperimentTest, HigherBottleneckSpeedsPacedTransfer) {
  double t50 = RunWan(50e6, 1'000, true).response_ms;
  double t100 = RunWan(100e6, 1'000, true).response_ms;
  EXPECT_LT(t100, t50);
  // Transmission phase halves; RTT component stays.
  EXPECT_NEAR((t50 - 100) / (t100 - 100), 2.0, 0.2);
}

TEST(WanExperimentTest, PacingPrecisionFromIdleLoop) {
  // The otherwise-idle sender's pacing jitter comes only from the ~2 us idle
  // poll interval: achieved spacing within a few percent of the target.
  Simulator sim;
  Kernel::Config kc;
  kc.profile = MachineProfile::PentiumII300();
  kc.idle_poll_fast_forward = true;
  Kernel kernel(&sim, kc);
  TcpSender::Config sc;
  sc.mode = TcpSender::Mode::kRateBased;
  sc.pace_target_interval_ticks = 240;
  sc.pace_min_burst_interval_ticks = 240;
  TcpSender sender(&kernel, sc);
  SummaryStats gaps;
  SimTime last;
  bool have_last = false;
  sender.set_packet_sender([&](Packet) {
    if (have_last) {
      gaps.Add((sim.now() - last).ToMicros());
    }
    last = sim.now();
    have_last = true;
  });
  sender.StartTransfer(500 * kDefaultMss);
  sim.RunUntil(SimTime::Zero() + SimDuration::Seconds(1));
  ASSERT_GT(gaps.count(), 400u);
  EXPECT_NEAR(gaps.mean(), 240.0, 6.0);
  EXPECT_LT(gaps.stddev(), 20.0);
}

}  // namespace
}  // namespace softtimer
