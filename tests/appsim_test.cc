// Tests for the application substrates behind ST-real-audio and
// ST-kernel-build.

#include <gtest/gtest.h>

#include "src/appsim/compile_job_model.h"
#include "src/appsim/media_player_model.h"
#include "src/stats/sample_set.h"

namespace softtimer {
namespace {

Kernel::Config SpinKernel() {
  Kernel::Config kc;
  kc.profile = MachineProfile::PentiumII300();
  kc.idle_behavior = Kernel::IdleBehavior::kSpin;
  return kc;
}

TEST(MediaPlayerModelTest, SaturatesTheCpu) {
  Simulator sim;
  Kernel k(&sim, SpinKernel());
  MediaPlayerModel player(&k, MediaPlayerModel::Config{});
  player.Start();
  SimDuration horizon = SimDuration::Seconds(1);
  sim.RunFor(horizon);
  // "an example of an application that saturates the CPU".
  double busy = k.cpu(0).work_time().ToSeconds() / horizon.ToSeconds();
  EXPECT_GT(busy, 0.9);
  EXPECT_GT(player.stats().decode_units, 20'000u);
}

TEST(MediaPlayerModelTest, SyscallsDominateItsTriggerMix) {
  Simulator sim;
  Kernel k(&sim, SpinKernel());
  MediaPlayerModel player(&k, MediaPlayerModel::Config{});
  player.Start();
  sim.RunFor(SimDuration::Seconds(1));
  const auto& by = k.stats().triggers_by_source;
  uint64_t syscalls = by[static_cast<size_t>(TriggerSource::kSyscall)];
  EXPECT_GT(static_cast<double>(syscalls), 0.7 * static_cast<double>(k.stats().triggers));
  // The low-rate interrupt streams exist but are minor.
  EXPECT_GT(player.stats().stream_packets, 50u);
  EXPECT_GT(player.stats().audio_interrupts, 50u);
}

TEST(MediaPlayerModelTest, IntervalDistributionMatchesPaperRegime) {
  Simulator sim;
  Kernel k(&sim, SpinKernel());
  MediaPlayerModel player(&k, MediaPlayerModel::Config{});
  SampleSet intervals;
  k.set_trigger_observer(
      [&](TriggerSource, SimTime, SimDuration d) { intervals.Add(d.ToMicros()); });
  player.Start();
  sim.RunFor(SimDuration::Seconds(1));
  EXPECT_NEAR(intervals.mean(), 8.5, 2.5);   // paper: 8.47
  EXPECT_NEAR(intervals.Median(), 6.0, 2.0);  // paper: 6
}

TEST(CompileJobModelTest, MostlyBusyWithHeavyTailedIntervals) {
  Simulator sim;
  Kernel k(&sim, SpinKernel());
  CompileJobModel build(&k, CompileJobModel::Config{});
  SampleSet intervals;
  k.set_trigger_observer(
      [&](TriggerSource, SimTime, SimDuration d) { intervals.Add(d.ToMicros()); });
  build.Start();
  SimDuration horizon = SimDuration::Seconds(1);
  sim.RunFor(horizon);
  double busy = k.cpu(0).work_time().ToSeconds() / horizon.ToSeconds();
  EXPECT_GT(busy, 0.85);
  EXPECT_GT(build.stats().jobs, 100u);
  // Bimodal shape: 2 us-class median from the syscall storms, heavy tail
  // from the compute runs (paper: median 2, mean 5.63, sd 47.9).
  EXPECT_NEAR(intervals.Median(), 2.0, 1.0);
  EXPECT_GT(intervals.mean(), 4.0);
  EXPECT_LT(intervals.mean(), 10.0);
  EXPECT_GT(intervals.stddev(), 15.0);
}

TEST(CompileJobModelTest, DiskSeesReadsAndBatchedWriteback) {
  Simulator sim;
  Kernel k(&sim, SpinKernel());
  CompileJobModel build(&k, CompileJobModel::Config{});
  build.Start();
  sim.RunFor(SimDuration::Seconds(1));
  EXPECT_GT(build.stats().disk_reads, 5u);
  EXPECT_GT(build.stats().disk_writes, 5u);
  // Write-back is batched: far fewer writes than jobs.
  EXPECT_LT(build.stats().disk_writes * 8, build.stats().jobs);
  // The spindle is loaded but not saturated (compilation stays CPU-bound).
  double disk_busy = build.disk().stats().busy_time.ToSeconds() / 1.0;
  EXPECT_LT(disk_busy, 0.95);
}

TEST(CompileJobModelTest, TrapsComeFromExecAndFaultStorms) {
  Simulator sim;
  Kernel k(&sim, SpinKernel());
  CompileJobModel build(&k, CompileJobModel::Config{});
  build.Start();
  sim.RunFor(SimDuration::Millis(500));
  const auto& by = k.stats().triggers_by_source;
  uint64_t traps = by[static_cast<size_t>(TriggerSource::kTrap)];
  uint64_t syscalls = by[static_cast<size_t>(TriggerSource::kSyscall)];
  EXPECT_GT(traps, 10'000u);
  // Storms are ~30% faults.
  EXPECT_NEAR(static_cast<double>(traps) / static_cast<double>(traps + syscalls), 0.3, 0.08);
}

}  // namespace
}  // namespace softtimer
