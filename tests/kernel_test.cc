// Tests for machine::Kernel: trigger accounting, soft-timer integration,
// hardware interrupts (overhead, disabled windows, tick deferral/merging),
// the idle-loop policy of Section 5.2, and multi-CPU idle arbitration.

#include "src/machine/kernel.h"

#include <gtest/gtest.h>

#include <vector>

namespace softtimer {
namespace {

Kernel::Config BaseConfig() {
  Kernel::Config c;
  c.profile = MachineProfile::PentiumII300();
  c.idle_poll_jitter_sigma = 0;  // deterministic idle polls for the tests
  return c;
}

TEST(KernelTest, TriggerRecordsIntervalsAndSources) {
  Simulator sim;
  Kernel k(&sim, BaseConfig());
  std::vector<double> intervals;
  std::vector<TriggerSource> sources;
  k.set_trigger_observer([&](TriggerSource s, SimTime, SimDuration d) {
    sources.push_back(s);
    intervals.push_back(d.ToMicros());
  });
  k.Trigger(TriggerSource::kSyscall);  // first: no interval
  sim.RunUntil(SimTime::FromNanos(20'000));
  k.Trigger(TriggerSource::kIpOutput);
  sim.RunUntil(SimTime::FromNanos(50'000));
  k.Trigger(TriggerSource::kTrap);
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_DOUBLE_EQ(intervals[0], 20.0);
  EXPECT_DOUBLE_EQ(intervals[1], 30.0);
  EXPECT_EQ(sources[0], TriggerSource::kIpOutput);
  EXPECT_EQ(k.stats().triggers, 3u);
  EXPECT_EQ(k.stats().triggers_by_source[static_cast<size_t>(TriggerSource::kSyscall)], 1u);
}

TEST(KernelTest, TriggerDispatchesDueSoftEvents) {
  Simulator sim;
  Kernel k(&sim, BaseConfig());
  k.cpu(0).Submit(SimDuration::Millis(10));  // busy: the idle loop stays out
  int fired = 0;
  k.soft_timers().ScheduleSoftEvent(10, [&](const SoftTimerFacility::FireInfo& info) {
    ++fired;
    EXPECT_EQ(info.source, TriggerSource::kSyscall);
  });
  sim.RunUntil(SimTime::FromNanos(20'000));
  k.Trigger(TriggerSource::kSyscall);
  EXPECT_EQ(fired, 1);
}

TEST(KernelTest, BackupInterruptBoundsSoftEventDelay) {
  // With no trigger states at all, the 1 kHz backup interrupt fires the
  // event within T + X + 1 ticks.
  Simulator sim;
  Kernel::Config cfg = BaseConfig();
  cfg.idle_behavior = Kernel::IdleBehavior::kHaltPolicy;
  Kernel k(&sim, cfg);
  // Prevent idle polling from being the rescuer: no CPU-idle polls happen
  // when the facility halt-check runs before... (the halt policy does poll
  // when an event is due; to isolate the backup path, make the CPU busy.)
  k.cpu(0).Submit(SimDuration::Seconds(10));
  uint64_t fired_tick = 0;
  k.soft_timers().ScheduleSoftEvent(100, [&](const SoftTimerFacility::FireInfo& info) {
    fired_tick = info.fired_tick;
  });
  sim.RunUntil(SimTime::Zero() + SimDuration::Millis(5));
  EXPECT_GT(fired_tick, 100u);
  EXPECT_LT(fired_tick, 100 + k.soft_timers().ticks_per_backup_interval() + 2);
}

TEST(KernelTest, KernelOpChargesCpuAndTriggersAtStart) {
  Simulator sim;
  Kernel k(&sim, BaseConfig());
  std::vector<int64_t> trigger_times;
  k.set_trigger_observer([&](TriggerSource, SimTime now, SimDuration) {
    trigger_times.push_back(now.nanos_since_origin());
  });
  k.Trigger(TriggerSource::kTrap);  // reference point at t=0
  bool done = false;
  k.KernelOp(TriggerSource::kSyscall, SimDuration::Micros(30), [&] { done = true; });
  k.KernelOp(TriggerSource::kSyscall, SimDuration::Micros(30));
  // Stop before the first 1 ms backup tick so it does not pollute the
  // observer stream.
  sim.RunUntil(SimTime::Zero() + SimDuration::Micros(200));
  EXPECT_TRUE(done);
  // Second op triggers when it starts executing (after the first one's ~30us
  // plus the trigger-check steals), not at submission.
  ASSERT_EQ(trigger_times.size(), 2u);
  EXPECT_EQ(trigger_times[0], 0);
  EXPECT_GE(trigger_times[1], 30'000);
  EXPECT_LT(trigger_times[1], 32'000);
}

TEST(KernelTest, RaiseInterruptStealsOverheadAndSetsDisabledWindow) {
  Simulator sim;
  Kernel k(&sim, BaseConfig());
  SimTime done;
  k.cpu(0).Submit(SimDuration::Micros(100), [&] { done = sim.now(); });
  sim.RunUntil(SimTime::FromNanos(10'000));
  EXPECT_FALSE(k.interrupts_disabled());
  bool handler_ran = false;
  k.RaiseInterrupt(TriggerSource::kIpIntr, SimDuration::Micros(9), [&] { handler_ran = true; });
  EXPECT_TRUE(handler_ran);
  EXPECT_TRUE(k.interrupts_disabled());
  sim.RunUntilIdle(SimTime::Zero() + SimDuration::Millis(500));
  // Job took 100 us + 4.45 (overhead) + 9 (handler) + trigger-check noise.
  EXPECT_GE(done.nanos_since_origin(), 113'450);
  EXPECT_LT(done.nanos_since_origin(), 114'000);
}

TEST(KernelTest, PeriodicTimerFiresAtConfiguredRate) {
  Simulator sim;
  Kernel k(&sim, BaseConfig());
  k.cpu(0).Submit(SimDuration::Seconds(10));  // keep busy; no idle loop noise
  int fires = 0;
  int id = k.AddPeriodicHardwareTimer(10'000, SimDuration::Zero(), [&] { ++fires; });
  sim.RunUntil(SimTime::Zero() + SimDuration::Millis(100));
  // 10 kHz for 100 ms = ~1000 ticks (a few deferred/merged by the backup
  // interrupt's disabled windows).
  EXPECT_GE(fires, 950);
  EXPECT_LE(fires, 1001);
  auto stats = k.periodic_timer_stats(id);
  EXPECT_EQ(stats.fired, static_cast<uint64_t>(fires));
}

TEST(KernelTest, PeriodicTicksDeferWhileInterruptsDisabledAndMergeWhenPending) {
  Simulator sim;
  Kernel k(&sim, BaseConfig());
  k.cpu(0).Submit(SimDuration::Seconds(10));
  std::vector<int64_t> fire_times;
  int id = k.AddPeriodicHardwareTimer(100'000, SimDuration::Zero(),
                                      [&] { fire_times.push_back(sim.now().nanos_since_origin()); });
  // Hold interrupts disabled for 35 us via a long device interrupt: the
  // first 10us-tick in the window defers to the window's end; the following
  // two merge into it (lost).
  sim.RunUntil(SimTime::FromNanos(15'000));
  k.RaiseInterrupt(TriggerSource::kOtherIntr, SimDuration::Micros(30.55));  // 4.45 + 30.55 = 35
  sim.RunUntil(SimTime::FromNanos(100'000));
  auto stats = k.periodic_timer_stats(id);
  EXPECT_GE(stats.lost, 2u);
  // The deferred tick fired exactly when the window closed.
  bool found_deferred = false;
  for (int64_t t : fire_times) {
    if (t == 50'000) {
      found_deferred = true;
    }
  }
  EXPECT_TRUE(found_deferred);
}

TEST(KernelTest, RemovePeriodicTimerStopsIt) {
  Simulator sim;
  Kernel k(&sim, BaseConfig());
  int fires = 0;
  int id = k.AddPeriodicHardwareTimer(1'000'000, SimDuration::Zero(), [&] { ++fires; });
  sim.RunUntil(SimTime::FromNanos(10'500));
  int before = fires;
  EXPECT_GT(before, 0);
  k.RemovePeriodicHardwareTimer(id);
  sim.RunUntil(SimTime::FromNanos(100'000));
  EXPECT_EQ(fires, before);
}

// --- Idle-loop policy (Section 5.2) ----------------------------------------

TEST(KernelTest, IdleLoopPollsWhenEventDueBeforeBackupTick) {
  Simulator sim;
  Kernel::Config cfg = BaseConfig();
  cfg.idle_behavior = Kernel::IdleBehavior::kHaltPolicy;
  Kernel k(&sim, cfg);
  uint64_t fired_tick = 0;
  k.soft_timers().ScheduleSoftEvent(50, [&](const SoftTimerFacility::FireInfo& info) {
    fired_tick = info.fired_tick;
    EXPECT_EQ(info.source, TriggerSource::kIdleLoop);
  });
  sim.RunUntil(SimTime::Zero() + SimDuration::Millis(2));
  // Fired by the idle loop within a few poll intervals of the deadline, far
  // earlier than the 1 ms backup tick.
  EXPECT_GT(fired_tick, 50u);
  EXPECT_LT(fired_tick, 60u);
}

TEST(KernelTest, IdleLoopHaltsWhenNothingDueBeforeBackupTick) {
  Simulator sim;
  Kernel::Config cfg = BaseConfig();
  cfg.idle_behavior = Kernel::IdleBehavior::kHaltPolicy;
  Kernel k(&sim, cfg);
  // No soft events: the idle loop must not generate any trigger states.
  sim.RunUntil(SimTime::Zero() + SimDuration::Millis(10));
  EXPECT_EQ(k.stats().triggers_by_source[static_cast<size_t>(TriggerSource::kIdleLoop)], 0u);
}

TEST(KernelTest, SpinModePollsRegardless) {
  Simulator sim;
  Kernel::Config cfg = BaseConfig();
  cfg.idle_behavior = Kernel::IdleBehavior::kSpin;
  Kernel k(&sim, cfg);
  sim.RunUntil(SimTime::Zero() + SimDuration::Millis(1));
  // ~2 us polls for 1 ms ~= 500 idle triggers.
  uint64_t idle_triggers =
      k.stats().triggers_by_source[static_cast<size_t>(TriggerSource::kIdleLoop)];
  EXPECT_GT(idle_triggers, 400u);
  EXPECT_LT(idle_triggers, 600u);
}

TEST(KernelTest, IdlePollingStopsWhileCpuBusy) {
  Simulator sim;
  Kernel::Config cfg = BaseConfig();
  cfg.idle_behavior = Kernel::IdleBehavior::kSpin;
  Kernel k(&sim, cfg);
  sim.RunUntil(SimTime::Zero() + SimDuration::Millis(1));
  uint64_t before = k.stats().triggers_by_source[static_cast<size_t>(TriggerSource::kIdleLoop)];
  k.cpu(0).Submit(SimDuration::Millis(5));
  sim.RunUntil(SimTime::Zero() + SimDuration::Millis(5));
  uint64_t during = k.stats().triggers_by_source[static_cast<size_t>(TriggerSource::kIdleLoop)];
  EXPECT_LE(during - before, 2u);  // at most one straggler
  sim.RunUntil(SimTime::Zero() + SimDuration::Millis(7));
  uint64_t after = k.stats().triggers_by_source[static_cast<size_t>(TriggerSource::kIdleLoop)];
  EXPECT_GT(after, during + 300);  // resumed
}

TEST(KernelTest, NewSoftEventWakesIdlePolling) {
  Simulator sim;
  Kernel::Config cfg = BaseConfig();
  cfg.idle_behavior = Kernel::IdleBehavior::kHaltPolicy;
  Kernel k(&sim, cfg);
  sim.RunUntil(SimTime::Zero() + SimDuration::Micros(100));
  // CPU idle and halted (nothing pending). Scheduling an event must restart
  // polling without waiting for the backup tick.
  uint64_t fired_tick = 0;
  k.soft_timers().ScheduleSoftEvent(20, [&](const SoftTimerFacility::FireInfo& info) {
    fired_tick = info.fired_tick;
  });
  sim.RunUntil(SimTime::Zero() + SimDuration::Millis(2));
  EXPECT_GT(fired_tick, 120u);
  EXPECT_LT(fired_tick, 132u);
}

TEST(KernelTest, OnlyOneIdleCpuPolls) {
  Simulator sim;
  Kernel::Config cfg = BaseConfig();
  cfg.num_cpus = 2;
  cfg.idle_behavior = Kernel::IdleBehavior::kHaltPolicy;
  Kernel k(&sim, cfg);
  // Keep an event always pending so polling stays allowed.
  std::function<void(const SoftTimerFacility::FireInfo&)> resched =
      [&](const SoftTimerFacility::FireInfo&) { k.soft_timers().ScheduleSoftEvent(30, resched); };
  k.soft_timers().ScheduleSoftEvent(30, resched);
  sim.RunUntil(SimTime::Zero() + SimDuration::Millis(5));
  // Idle triggers come from exactly one CPU at a time; with both idle, rule
  // (b) allows only one to poll. The poll rate must therefore match a single
  // CPU's (~2 us period), not double it.
  uint64_t idle_triggers =
      k.stats().triggers_by_source[static_cast<size_t>(TriggerSource::kIdleLoop)];
  EXPECT_GT(idle_triggers, 2000u);
  EXPECT_LT(idle_triggers, 3000u);
}

TEST(KernelTest, CpuIdleListenersNotified) {
  Simulator sim;
  Kernel k(&sim, BaseConfig());
  std::vector<bool> idles;
  k.AddCpuIdleListener([&](int cpu, bool idle) {
    EXPECT_EQ(cpu, 0);
    idles.push_back(idle);
  });
  k.cpu(0).Submit(SimDuration::Micros(5));
  sim.RunUntil(SimTime::Zero() + SimDuration::Millis(1));
  EXPECT_EQ(idles, (std::vector<bool>{false, true}));
}

}  // namespace
}  // namespace softtimer
