// Isolated-profile ShardedRtHost behaviour (DESIGN.md section 14): the
// dedicated spinning trigger loop beside a normal sleeping shard, cross-core
// scheduling onto the spinner from a normal producer, shutdown while the
// spin is in flight, the compensated/disabled software-backup contract, and
// the lateness histograms + SLO accounting fed by the facility probe. Real
// threads and wall-clock sleeps; bounds are loose for loaded CI machines.
// Runs under the `cross-thread` and `isolated` labels / tsan preset.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/rt/sharded_rt_host.h"

namespace softtimer {
namespace {

using IsolatedBackup = ShardedRtHost::IsolatedBackup;
using ShardProfile = ShardedRtHost::ShardProfile;

ShardedRtHost::Config MixedConfig() {
  ShardedRtHost::Config cfg;
  cfg.num_shards = 2;
  cfg.measure_hz = 1'000'000;      // 1 tick = 1 us
  cfg.interrupt_clock_hz = 1'000;  // 1 ms backup period
  cfg.shard_profiles.resize(2);
  cfg.shard_profiles[0].profile = ShardProfile::kIsolated;
  return cfg;  // shard 1 stays kNormal
}

TEST(IsolatedRtHostTest, MixedProfileHostFiresOnBothShards) {
  ShardedRtHost host(MixedConfig());
  host.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  auto token = host.RegisterProducer();
  std::atomic<int> fired{0};
  for (size_t shard = 0; shard < 2; ++shard) {
    host.runtime().ScheduleCrossCore(
        token, shard, 500 /* 500 us */,
        [&](const SoftTimerFacility::FireInfo&) {
          fired.fetch_add(1, std::memory_order_relaxed);
        });
  }
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fired.load(std::memory_order_relaxed) < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  host.Stop();
  EXPECT_EQ(fired.load(), 2);
  // The spinner never parked on its eventcount; the normal shard slept.
  ShardedRtHost::ShardLoopStats iso_loop = host.shard_loop_stats(0);
  ShardedRtHost::ShardLoopStats normal_loop = host.shard_loop_stats(1);
  EXPECT_EQ(iso_loop.sleeps, 0u);
  EXPECT_GT(iso_loop.polls, 0u);
  EXPECT_GT(normal_loop.sleeps, 0u);
  // Both dispatches landed in their shard's raw histogram via the probe;
  // on the normal shard clean mirrors raw exactly.
  EXPECT_EQ(host.shard_lateness_raw(0).count(), 1u);
  EXPECT_EQ(host.shard_lateness_raw(1).count(), 1u);
  EXPECT_EQ(host.shard_lateness_clean(1).count(), 1u);
  // The spin loop calibrated itself and ran.
  ShardedRtHost::IsolatedShardStats iso = host.isolated_shard_stats(0);
  EXPECT_GT(iso.spin_checks, 0u);
  EXPECT_GT(iso.steal_threshold_ticks, 0u);
  // The normal shard reports no spin-loop state.
  EXPECT_EQ(host.isolated_shard_stats(1).spin_checks, 0u);
}

TEST(IsolatedRtHostTest, CrossCoreScheduleOntoIsolatedShardNeedsNoWakeup) {
  ShardedRtHost::Config cfg = MixedConfig();
  // A long backup period: if pickup depended on the backup (or on a condvar
  // wakeup, which a spinner never waits for), the 100 us event would miss
  // the 5 s test deadline by sleeping 10 ms per check.
  cfg.interrupt_clock_hz = 100;
  ShardedRtHost host(cfg);
  host.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  auto token = host.RegisterProducer();
  std::atomic<uint64_t> fired_tick{0};
  uint64_t t0 = host.clock().NowTicks();
  host.runtime().ScheduleCrossCore(
      token, 0, 100 /* 100 us */,
      [&](const SoftTimerFacility::FireInfo& info) {
        fired_tick.store(info.fired_tick, std::memory_order_relaxed);
      });
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fired_tick.load(std::memory_order_relaxed) == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  host.Stop();
  ASSERT_NE(fired_tick.load(), 0u);
  EXPECT_GE(fired_tick.load() - t0, 100u);  // paper bound: T < actual
  // No producer poke was ever delivered: the spinner is never a sleeper.
  EXPECT_EQ(host.shard_loop_stats(0).wakeups, 0u);
  EXPECT_EQ(host.shard_loop_stats(0).sleeps, 0u);
}

TEST(IsolatedRtHostTest, ShutdownWithEventInFlightWhileSpinning) {
  ShardedRtHost::Config cfg = MixedConfig();
  std::atomic<int> fired{0};
  ShardedRtHost host(cfg);
  host.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  auto token = host.RegisterProducer();
  // Far-future event on the spinning shard: Stop() must join cleanly with
  // it still pending, and teardown must reclaim it without dispatching.
  host.runtime().ScheduleCrossCore(
      token, 0, 60'000'000 /* 60 s */,
      [&](const SoftTimerFacility::FireInfo&) {
        fired.fetch_add(1, std::memory_order_relaxed);
      });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  host.Stop();
  EXPECT_FALSE(host.running());
  EXPECT_EQ(fired.load(), 0);
  // Restart after an isolated-shard stop works too.
  host.Start();
  host.Stop();
}

TEST(IsolatedRtHostTest, CompensatedBackupNeverFiresTrulyLate) {
  ShardedRtHost::Config cfg;
  cfg.num_shards = 1;
  cfg.measure_hz = 1'000'000;
  cfg.interrupt_clock_hz = 1'000;  // 1 ms period: dozens of fires below
  cfg.shard_profiles.resize(1);
  cfg.shard_profiles[0].profile = ShardProfile::kIsolated;
  cfg.shard_profiles[0].backup = IsolatedBackup::kCompensated;
  ShardedRtHost host(cfg);
  host.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  host.Stop();
  ShardedRtHost::IsolatedShardStats iso = host.isolated_shard_stats(0);
  EXPECT_GT(iso.backup_fires, 0u);
  // Compensation >= steal threshold makes this structural: a late fire with
  // a clean leading gap would contradict the threshold.
  EXPECT_EQ(iso.backup_true_late, 0u);
  EXPECT_EQ(iso.backup_fires,
            iso.backup_on_time + iso.backup_steal_late);
  EXPECT_GE(iso.compensation_ticks, iso.steal_threshold_ticks);
  EXPECT_EQ(host.shard_loop_stats(0).backup_checks, iso.backup_fires);
}

TEST(IsolatedRtHostTest, DisabledBackupNeverChecksButTimersStillFire) {
  ShardedRtHost::Config cfg;
  cfg.num_shards = 1;
  cfg.measure_hz = 1'000'000;
  cfg.interrupt_clock_hz = 1'000;
  cfg.shard_profiles.resize(1);
  cfg.shard_profiles[0].profile = ShardProfile::kIsolated;
  cfg.shard_profiles[0].backup = IsolatedBackup::kDisabled;
  ShardedRtHost host(cfg);
  host.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  auto token = host.RegisterProducer();
  std::atomic<int> fired{0};
  host.runtime().ScheduleCrossCore(
      token, 0, 200, [&](const SoftTimerFacility::FireInfo&) {
        fired.fetch_add(1, std::memory_order_relaxed);
      });
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fired.load(std::memory_order_relaxed) == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  host.Stop();
  EXPECT_EQ(fired.load(), 1);
  ShardedRtHost::IsolatedShardStats iso = host.isolated_shard_stats(0);
  EXPECT_EQ(iso.backup_fires, 0u);
  EXPECT_EQ(host.shard_loop_stats(0).backup_checks, 0u);
}

TEST(IsolatedRtHostTest, SloViolationsCountOverBudgetDispatches) {
  // Quiesced (never Start()ed) host: the probe still feeds the histograms
  // and SLO counter when the owner thread drives checks by hand, which
  // makes the over-budget case deterministic - sleep far past the deadline,
  // then check. Shard 1 (normal profile) carries the SLO here: on a normal
  // shard every dispatch is clean, so the counter must see it.
  ShardedRtHost::Config cfg = MixedConfig();
  cfg.shard_profiles[1].slo_lateness_ticks = 50'000;  // 50 ms budget
  ShardedRtHost host(cfg);
  std::atomic<int> fired{0};
  host.runtime().ScheduleOnShard(1, 100 /* 100 us */,
                                 [&](const SoftTimerFacility::FireInfo&) {
                                   fired.fetch_add(1, std::memory_order_relaxed);
                                 });
  std::this_thread::sleep_for(std::chrono::milliseconds(80));  // far over budget
  host.runtime().OnTriggerState(1, TriggerSource::kSyscall);
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(host.isolated_shard_stats(1).slo_violations, 1u);
  EXPECT_EQ(host.shard_lateness_clean(1).count(), 1u);
  EXPECT_GT(host.shard_lateness_clean(1).max(), 50'000u);
  // And an in-budget dispatch does not count: poll in a tight loop so the
  // check lands within microseconds of the deadline, far under 50 ms even
  // with scheduler noise on a loaded machine.
  host.runtime().ScheduleOnShard(1, 1,
                                 [&](const SoftTimerFacility::FireInfo&) {
                                   fired.fetch_add(1, std::memory_order_relaxed);
                                 });
  auto poll_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fired.load(std::memory_order_relaxed) < 2 &&
         std::chrono::steady_clock::now() < poll_deadline) {
    host.runtime().OnTriggerState(1, TriggerSource::kSyscall);
  }
  EXPECT_EQ(fired.load(), 2);
  EXPECT_EQ(host.isolated_shard_stats(1).slo_violations, 1u);
}

TEST(IsolatedRtHostTest, RuntimeShardStatsCarryLatenessSummary) {
  // The runtime-level ShardStats snapshot mirrors the facility's lateness
  // SummaryStats, so callers get per-shard latency health without the host.
  ShardedRtHost::Config cfg = MixedConfig();
  ShardedRtHost host(cfg);
  std::atomic<int> fired{0};
  host.runtime().ScheduleOnShard(0, 50,
                                 [&](const SoftTimerFacility::FireInfo&) {
                                   fired.fetch_add(1, std::memory_order_relaxed);
                                 });
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  host.runtime().OnTriggerState(0, TriggerSource::kSyscall);
  ASSERT_EQ(fired.load(), 1);
  ShardedSoftTimerRuntime::ShardStats ss = host.runtime().shard_stats(0);
  EXPECT_EQ(ss.lateness_ticks.count(), 1u);
  EXPECT_GT(ss.lateness_ticks.max(), 0.0);
  EXPECT_EQ(host.runtime().shard_stats(1).lateness_ticks.count(), 0u);
}

}  // namespace
}  // namespace softtimer
