// Tests for the ST-nfs substrate: the disk model's queueing/service
// behaviour and the NFS server's RPC paths (metadata, cache hit, disk read),
// plus the workload-level property the paper reports: a disk-bound server
// whose CPU is ~90% idle.

#include <gtest/gtest.h>

#include <map>

#include "src/nfssim/nfs_server_model.h"
#include "src/stats/summary_stats.h"
#include "src/storage/disk_model.h"
#include "src/workload/trigger_workload.h"

namespace softtimer {
namespace {

TEST(DiskModelTest, RequestsCompleteInFifoOrder) {
  Simulator sim;
  DiskModel disk(&sim, DiskModel::Config{});
  std::vector<int> order;
  disk.SubmitRead(8192, [&] { order.push_back(1); });
  disk.SubmitRead(8192, [&] { order.push_back(2); });
  disk.SubmitWrite(8192, [&] { order.push_back(3); });
  EXPECT_EQ(disk.queue_depth(), 3u);
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(disk.queue_depth(), 0u);
  EXPECT_EQ(disk.stats().requests, 3u);
  EXPECT_EQ(disk.stats().bytes, 3u * 8192u);
}

TEST(DiskModelTest, ServiceTimesAreMechanicallyPlausible) {
  Simulator sim;
  DiskModel disk(&sim, DiskModel::Config{});
  SummaryStats service_ms;
  SimTime last = SimTime::Zero();
  for (int i = 0; i < 300; ++i) {
    disk.SubmitRead(8192, [&] {
      service_ms.Add((sim.now() - last).ToMicros() / 1000.0);
      last = sim.now();
    });
  }
  sim.RunUntilIdle();
  // Mix of sequential (~sub-ms) and random (~8 ms seek + ~4 ms rotation)
  // accesses: the mean sits in the handful-of-milliseconds band.
  EXPECT_GT(service_ms.mean(), 3.0);
  EXPECT_LT(service_ms.mean(), 15.0);
  EXPECT_LT(service_ms.min(), 1.5);  // some sequential hits
}

TEST(DiskModelTest, CompletionCallbackMaySubmitMore) {
  Simulator sim;
  DiskModel disk(&sim, DiskModel::Config{});
  int completed = 0;
  std::function<void()> chain = [&] {
    if (++completed < 5) {
      disk.SubmitRead(4096, chain);
    }
  };
  disk.SubmitRead(4096, chain);
  sim.RunUntilIdle();
  EXPECT_EQ(completed, 5);
}

class NfsFixture : public ::testing::Test {
 protected:
  NfsFixture() {
    Kernel::Config kc;
    kc.profile = MachineProfile::PentiumII300();
    kc.idle_behavior = Kernel::IdleBehavior::kHaltPolicy;  // quiet idle for unit tests
    kernel_ = std::make_unique<Kernel>(&sim_, kc);
    Link::Config lan;
    downlink_ = std::make_unique<Link>(&sim_, lan);
    downlink_->set_receiver([this](const Packet& p) { replies_.push_back(p); });
    nic_ = std::make_unique<Nic>(&sim_, kernel_.get(), downlink_.get(), Nic::Config{});
    NfsServerModel::Config sc;
    sc.cache_hit_fraction = 0.0;  // overridden per test
    server_ = std::make_unique<NfsServerModel>(kernel_.get(), nic_.get(), sc);
    nic_->set_rx_handler([this](const Packet& p) { server_->OnPacket(p); });
  }

  void Rpc(uint64_t flow) {
    Packet p;
    p.kind = Packet::Kind::kRequest;
    p.flow_id = flow;
    p.size_bytes = 160;
    server_->OnPacket(p);
  }

  Simulator sim_;
  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<Link> downlink_;
  std::unique_ptr<Nic> nic_;
  std::unique_ptr<NfsServerModel> server_;
  std::vector<Packet> replies_;
};

TEST_F(NfsFixture, ReadRepliesArriveFragmentedWithEndMarker) {
  for (int i = 0; i < 30; ++i) {
    Rpc(static_cast<uint64_t>(i));
  }
  sim_.RunFor(SimDuration::Seconds(2));
  EXPECT_EQ(server_->stats().rpcs, 30u);
  EXPECT_GT(server_->stats().metadata_ops, 0u);
  EXPECT_GT(server_->stats().disk_reads, 0u);
  // Every reply ends with exactly one fin-marked fragment; reads carry
  // 8192 B across 6 fragments.
  uint64_t end_markers = 0;
  std::map<uint64_t, uint32_t> bytes_by_flow;
  for (const Packet& p : replies_) {
    bytes_by_flow[p.flow_id] += p.payload;
    if (p.fin) {
      ++end_markers;
    }
  }
  EXPECT_EQ(end_markers, 30u);
  for (const auto& [flow, bytes] : bytes_by_flow) {
    EXPECT_TRUE(bytes == 8192 || bytes == 128) << "flow " << flow;
  }
}

TEST_F(NfsFixture, CacheHitsSkipTheDisk) {
  NfsServerModel::Config sc;
  sc.cache_hit_fraction = 1.0;
  sc.metadata_fraction = 0.0;
  auto server = std::make_unique<NfsServerModel>(kernel_.get(), nic_.get(), sc);
  nic_->set_rx_handler([&](const Packet& p) { server->OnPacket(p); });
  Packet p;
  p.kind = Packet::Kind::kRequest;
  p.flow_id = 1;
  server->OnPacket(p);
  sim_.RunFor(SimDuration::Millis(10));
  EXPECT_EQ(server->stats().cache_hits, 1u);
  EXPECT_EQ(server->stats().disk_reads, 0u);
  EXPECT_EQ(server->disk().stats().requests, 0u);
}

TEST_F(NfsFixture, DiskReadsRaiseCompletionInterrupts) {
  NfsServerModel::Config sc;
  sc.cache_hit_fraction = 0.0;
  sc.metadata_fraction = 0.0;
  auto server = std::make_unique<NfsServerModel>(kernel_.get(), nic_.get(), sc);
  nic_->set_rx_handler([&](const Packet& p) { server->OnPacket(p); });
  Packet p;
  p.kind = Packet::Kind::kRequest;
  p.flow_id = 1;
  server->OnPacket(p);
  sim_.RunFor(SimDuration::Millis(100));
  EXPECT_EQ(server->stats().disk_reads, 1u);
  EXPECT_EQ(kernel_->stats().triggers_by_source[static_cast<size_t>(TriggerSource::kOtherIntr)],
            1u);
}

TEST(NfsWorkloadTest, DiskBoundServerIsMostlyIdle) {
  auto wl = MakeTriggerWorkload(WorkloadKind::kNfs, MachineProfile::PentiumII300(), 42);
  wl->Start();
  SimDuration horizon = SimDuration::Seconds(2);
  wl->sim().RunFor(horizon);
  double busy = wl->kernel().cpu(0).work_time().ToSeconds() / horizon.ToSeconds();
  // The paper: "disk-bound, leaving the CPU idle approximately 90% of the
  // time".
  EXPECT_LT(busy, 0.22);
  EXPECT_GT(busy, 0.02);
}

TEST(NfsWorkloadTest, ClosedLoopSustainsDiskUtilization) {
  auto wl = MakeTriggerWorkload(WorkloadKind::kNfs, MachineProfile::PentiumII300(), 42);
  wl->Start();
  wl->sim().RunFor(SimDuration::Seconds(2));
  // RPC traffic flows for the whole run: ip-output triggers keep arriving.
  uint64_t ipout =
      wl->kernel().stats().triggers_by_source[static_cast<size_t>(TriggerSource::kIpOutput)];
  EXPECT_GT(ipout, 400u);  // >200 replies/s (reads fragment into 6 packets)
}

}  // namespace
}  // namespace softtimer
