// The paper's central guarantee, verified under the real mechanistic
// workloads rather than synthetic trigger streams: for every workload and
// every delay T, an event scheduled at tick S fires at a tick F with
//
//     T  <  F - S  <  T + X + 1
//
// and the delay distribution is "heavily skewed towards low values"
// (Section 3) - the mean lateness sits near the workload's trigger interval,
// far below the backup bound.

#include <gtest/gtest.h>

#include "src/stats/summary_stats.h"
#include "src/workload/trigger_workload.h"

namespace softtimer {
namespace {

class PaperBound : public ::testing::TestWithParam<WorkloadKind> {};

TEST_P(PaperBound, HoldsUnderMechanisticWorkloads) {
  auto wl = MakeTriggerWorkload(GetParam(), MachineProfile::PentiumII300(), /*seed=*/42);
  wl->Start();
  wl->sim().RunFor(SimDuration::Millis(200));  // warm

  SoftTimerFacility& st = wl->kernel().soft_timers();
  const uint64_t x = st.ticks_per_backup_interval();
  Rng rng(77);
  SummaryStats lateness;
  uint64_t violations = 0;

  std::function<void()> scheduler = [&] {
    uint64_t t = rng.UniformU64(2'500);
    uint64_t scheduled = st.MeasureTime();
    st.ScheduleSoftEvent(t, [&, t, scheduled](const SoftTimerFacility::FireInfo& info) {
      uint64_t actual = info.fired_tick - scheduled;
      if (!(actual > t && actual < t + x + 2)) {
        ++violations;
      }
      lateness.Add(static_cast<double>(actual - t));
    });
    wl->sim().ScheduleAfter(SimDuration::Micros(180), scheduler);
  };
  scheduler();
  wl->sim().RunFor(SimDuration::Seconds(1));

  EXPECT_EQ(violations, 0u) << wl->name();
  EXPECT_GT(lateness.count(), 4'000u) << wl->name();
  // Skew: the mean lateness is a small fraction of the X+1 = 1001-tick worst
  // case (ST-kernel-build, with its heavy compute tail, has the largest).
  EXPECT_LT(lateness.mean(), 150.0) << wl->name();
  EXPECT_LE(lateness.max(), static_cast<double>(x + 1)) << wl->name();
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, PaperBound,
                         ::testing::Values(WorkloadKind::kApache, WorkloadKind::kApacheCompute,
                                           WorkloadKind::kFlash, WorkloadKind::kRealAudio,
                                           WorkloadKind::kNfs, WorkloadKind::kKernelBuild),
                         [](const ::testing::TestParamInfo<WorkloadKind>& info) {
                           std::string n = WorkloadKindName(info.param);
                           std::string out;
                           for (char c : n) {
                             if (c != '-') {
                               out += c;
                             }
                           }
                           return out;
                         });

}  // namespace
}  // namespace softtimer
