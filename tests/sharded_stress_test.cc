// Cross-core stress: real producer threads hammering a running ShardedRtHost
// with schedules, cancels (own, foreign, and deliberately stale), while the
// shard loop threads drain and dispatch. Designed to run under TSan (the
// `cross-thread` ctest label / tsan preset): the assertions matter, but the
// primary payload is the interleaving coverage of the SPSC rings, the
// pending-flag protocol, and the sleep/wake eventcount.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "src/rt/sharded_rt_host.h"

namespace softtimer {
namespace {

// Deterministic per-thread PRNG (threads must not share an engine).
struct Xorshift {
  uint64_t s;
  explicit Xorshift(uint64_t seed) : s(seed * 2654435761u + 1) {}
  uint64_t Next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
};

ShardedRtHost::Config StressCfg(size_t shards) {
  ShardedRtHost::Config cfg;
  cfg.num_shards = shards;
  cfg.interrupt_clock_hz = 4'000;  // 250 us backup: bounds test runtime
  cfg.max_producers = 8;
  cfg.ring_capacity = 4096;
  return cfg;
}

TEST(ShardedStressTest, ConcurrentScheduleCancelFire) {
  constexpr size_t kShards = 4;
  constexpr size_t kProducers = 4;
  constexpr int kOpsPerProducer = 2'000;

  ShardedRtHost host(StressCfg(kShards));
  host.Start();

  std::atomic<uint64_t> fired{0};
  std::atomic<uint64_t> push_ok{0};
  // Ids observed by any producer, for cross-thread stale-cancel attempts.
  std::mutex seen_mutex;
  std::vector<SoftEventId> seen;

  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      auto token = host.RegisterProducer();
      ASSERT_TRUE(token.valid());
      Xorshift rng(p + 1);
      std::vector<SoftEventId> mine;
      for (int op = 0; op < kOpsPerProducer; ++op) {
        size_t shard = rng.Next() % kShards;
        uint64_t delta = rng.Next() % 300;  // 0..300 us
        SoftEventId id = host.runtime().ScheduleCrossCore(
            token, shard, delta,
            [&fired](const SoftTimerFacility::FireInfo&) {
              fired.fetch_add(1, std::memory_order_relaxed);
            });
        if (id.valid()) {
          push_ok.fetch_add(1, std::memory_order_relaxed);
          mine.push_back(id);
        }
        uint64_t roll = rng.Next() % 100;
        if (roll < 20 && !mine.empty()) {
          // Cancel one of our own (often already fired: both outcomes fine).
          host.runtime().CancelCrossCore(token, mine[rng.Next() % mine.size()]);
        } else if (roll < 30) {
          // Stale / foreign cancel from the "wrong" thread: grab an id some
          // other producer minted and try to kill it.
          SoftEventId foreign{};
          {
            std::lock_guard<std::mutex> lock(seen_mutex);
            if (!seen.empty()) {
              foreign = seen[rng.Next() % seen.size()];
            }
          }
          if (foreign.valid()) {
            host.runtime().CancelCrossCore(token, foreign);
          }
        } else if (roll < 35 && !mine.empty()) {
          std::lock_guard<std::mutex> lock(seen_mutex);
          seen.push_back(mine.back());
        }
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }

  // Everything pushed either fires or is cancelled; wait (bounded) for the
  // shards to drain the tail. Only atomics may be polled while the shard
  // loops run (ShardStats is owner-thread data): no pending flags raised +
  // the fired count stable across a full backup interval means the rings are
  // empty and every due event has dispatched.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  auto settled = [&] {
    for (size_t s = 0; s < kShards; ++s) {
      if (host.runtime().remote_pending(s)) {
        return false;
      }
    }
    uint64_t before = fired.load(std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));  // > 4 backups
    return fired.load(std::memory_order_relaxed) == before;
  };
  while (!settled() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  host.Stop();  // joins the shard loops: stats reads below are quiesced

  uint64_t scheduled = 0, cancelled = 0, live = 0;
  for (size_t s = 0; s < kShards; ++s) {
    ShardedSoftTimerRuntime::ShardStats st = host.runtime().shard_stats(s);
    scheduled += st.remote_scheduled;
    cancelled += st.remote_cancelled;
    live += st.remote_live;
  }
  EXPECT_EQ(scheduled, push_ok.load());
  EXPECT_EQ(live, 0u);
  // Conservation: every applied schedule either dispatched or was cancelled.
  EXPECT_EQ(fired.load() + cancelled, push_ok.load());
  EXPECT_GT(fired.load(), 0u);
}

TEST(ShardedStressTest, PublishDrainRaceNeverStrandsACommand) {
  // Regression stress for the drain-sweep store-load fence (DrainRemote):
  // a busy-polling owner races a drain sweep against every publish. Without
  // the fence pairing, the owner's pending-flag clear can overwrite the
  // producer's set while the sweep's ring reads miss the pushed command,
  // stranding it with the flag down - the ping-pong below then never sees
  // its event fire and times out.
  ShardedRtHost::Config cfg = StressCfg(1);
  cfg.idle_strategy = ShardedRtHost::IdleStrategy::kBusyPoll;
  ShardedRtHost host(cfg);
  host.Start();
  auto token = host.RegisterProducer();
  ASSERT_TRUE(token.valid());

  std::atomic<uint64_t> fired{0};
  uint64_t pushed = 0;
  // Time-budgeted: on a single-CPU box each ping-pong hop costs a scheduler
  // timeslice, so a fixed iteration count would take many seconds there while
  // finishing instantly on multicore. A stranded command still fails fast:
  // its wait burns the whole budget and fired < pushed below.
  auto budget_end = std::chrono::steady_clock::now() + std::chrono::seconds(3);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  for (int i = 0;
       i < 5'000 && std::chrono::steady_clock::now() < budget_end; ++i) {
    if (!host.runtime()
             .ScheduleCrossCore(token, 0, 0,
                                [&fired](const SoftTimerFacility::FireInfo&) {
                                  fired.fetch_add(1, std::memory_order_relaxed);
                                })
             .valid()) {
      continue;  // ring momentarily full: skip, conservation still checked
    }
    ++pushed;
    // Wait for this command to drain and fire before publishing the next,
    // so every iteration exposes a fresh single-publish/drain race.
    while (fired.load(std::memory_order_relaxed) < pushed &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    if (fired.load(std::memory_order_relaxed) < pushed) {
      break;  // stranded (or machine pathologically slow): fail below
    }
  }
  host.Stop();
  EXPECT_EQ(fired.load(), pushed);
  EXPECT_GT(pushed, 0u);
}

TEST(ShardedStressTest, StopWithCommandsInFlight) {
  // Producers keep publishing while the host shuts down: undrained commands
  // must be destroyed cleanly (no dispatch, no leak, no race on the rings).
  for (int round = 0; round < 5; ++round) {
    ShardedRtHost host(StressCfg(2));
    host.Start();
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> fired{0};
    std::thread producer([&] {
      auto token = host.RegisterProducer();
      Xorshift rng(round + 99);
      while (!stop.load(std::memory_order_relaxed)) {
        host.runtime().ScheduleCrossCore(
            token, rng.Next() % 2, rng.Next() % 500,
            [&fired](const SoftTimerFacility::FireInfo&) {
              fired.fetch_add(1, std::memory_order_relaxed);
            });
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    stop.store(true, std::memory_order_relaxed);
    producer.join();  // producer quiescent before the host (and rings) die
    host.Stop();
  }
  // Reaching here without a crash/TSan report is the assertion.
  SUCCEED();
}

TEST(ShardedStressTest, ShardsStayIndependentUnderLoad) {
  // A producer floods shard 0; an event on shard 1 must still fire within
  // its paper bound-ish window (shards share no locks on the hot path).
  ShardedRtHost host(StressCfg(2));
  host.Start();
  std::atomic<bool> stop{false};
  std::thread flooder([&] {
    auto token = host.RegisterProducer();
    Xorshift rng(7);
    while (!stop.load(std::memory_order_relaxed)) {
      host.runtime().ScheduleCrossCore(token, 0, rng.Next() % 100,
                                       [](const SoftTimerFacility::FireInfo&) {});
    }
  });
  auto token = host.RegisterProducer();
  std::atomic<uint64_t> fired_tick{0};
  uint64_t t0 = host.clock().NowTicks();
  host.runtime().ScheduleCrossCore(
      token, 1, 500, [&](const SoftTimerFacility::FireInfo& info) {
        fired_tick.store(info.fired_tick, std::memory_order_relaxed);
      });
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fired_tick.load(std::memory_order_relaxed) == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_relaxed);
  flooder.join();
  host.Stop();
  ASSERT_NE(fired_tick.load(), 0u);
  // Loose bound for loaded CI: well under the 5 s timeout, respecting T.
  EXPECT_GE(fired_tick.load() - t0, 500u);
  EXPECT_LT(fired_tick.load() - t0, 2'000'000u);
}

}  // namespace
}  // namespace softtimer
