// RtoEngine unit tests: the RFC 6298 estimator arithmetic, Karn's rule,
// exponential backoff and its cap, the give-up path into
// DegradationPolicy::NoteConnectionReset, window bounds, and id staleness.
// All single-threaded against a manual clock, driving the shard's trigger
// states by hand so every fire is deterministic.

#include "src/tcp/rto_engine.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/core/degradation_policy.h"
#include "src/core/sharded_soft_timer_runtime.h"

namespace softtimer {
namespace {

class ManualClock : public ClockSource {
 public:
  uint64_t NowTicks() const override { return now_; }
  uint64_t ResolutionHz() const override { return 1'000'000; }
  void Advance(uint64_t ticks) { now_ += ticks; }
  uint64_t now() const { return now_; }

 private:
  uint64_t now_ = 0;
};

struct Harness {
  ManualClock clock;
  ShardedSoftTimerRuntime rt;
  DegradationPolicy policy;
  RtoEngine engine;

  explicit Harness(RtoEngine::Config ec = DefaultEngineCfg())
      : rt(&clock, RtCfg()),
        policy(DegradationPolicy::Config{}, 1000),
        engine(&rt, &policy, ec) {}

  static ShardedSoftTimerRuntime::Config RtCfg() {
    ShardedSoftTimerRuntime::Config c;
    c.num_shards = 1;
    return c;
  }

  static RtoEngine::Config DefaultEngineCfg() {
    RtoEngine::Config ec;
    ec.rto_initial_ticks = 1'000;
    ec.rto_min_ticks = 100;
    ec.rto_max_ticks = 8'000;
    ec.max_retransmits = 10;
    return ec;
  }

  // Walks time forward in `step` increments, passing a trigger state at
  // each stop so due timers dispatch promptly.
  void RunUntil(uint64_t until, uint64_t step = 50) {
    while (clock.now() < until) {
      clock.Advance(step);
      rt.OnTriggerState(0, TriggerSource::kSyscall);
    }
  }
};

struct RetransmitLog {
  std::vector<uint64_t> seq_ends;
  std::vector<uint32_t> attempts;
  static void Hook(void* ctx, void*, uint64_t seq_end, uint32_t attempt) {
    auto* log = static_cast<RetransmitLog*>(ctx);
    log->seq_ends.push_back(seq_end);
    log->attempts.push_back(attempt);
  }
};

TEST(RtoEngineTest, AckCancelsTimersBeforeTheyFire) {
  Harness h;
  uint64_t conn = h.engine.OpenConnection(nullptr);
  ASSERT_TRUE(h.engine.IsOpen(conn));

  EXPECT_TRUE(h.engine.OnSegmentSent(conn, 1'000));
  EXPECT_TRUE(h.engine.OnSegmentSent(conn, 2'000));
  EXPECT_TRUE(h.engine.OnSegmentSent(conn, 3'000));
  EXPECT_EQ(h.engine.in_flight(conn), 3u);

  h.RunUntil(400);  // well under the 1000-tick RTO
  EXPECT_EQ(h.engine.OnCumulativeAck(conn, 3'000), 3u);
  EXPECT_EQ(h.engine.in_flight(conn), 0u);

  // Nothing left to fire, ever.
  h.RunUntil(50'000);
  EXPECT_EQ(h.engine.stats().timers_scheduled, 3u);
  EXPECT_EQ(h.engine.stats().timers_cancelled, 3u);
  EXPECT_EQ(h.engine.stats().timers_fired, 0u);
  EXPECT_EQ(h.engine.stats().retransmits, 0u);
}

TEST(RtoEngineTest, RttSamplesDriveSrttAndRto) {
  Harness h;
  uint64_t conn = h.engine.OpenConnection(nullptr);

  EXPECT_EQ(h.engine.effective_rto_ticks(conn), 1'000u);  // initial
  EXPECT_TRUE(h.engine.OnSegmentSent(conn, 1'000));
  h.clock.Advance(500);
  EXPECT_EQ(h.engine.OnCumulativeAck(conn, 1'000), 1u);

  // First sample R=500: SRTT = 500, RTTVAR = 250, RTO = 500 + 4*250.
  EXPECT_EQ(h.engine.srtt_ticks(conn), 500u);
  EXPECT_EQ(h.engine.effective_rto_ticks(conn), 1'500u);
  EXPECT_EQ(h.engine.stats().rtt_samples, 1u);

  // Second sample R=500: RTTVAR = (3*250 + 0)/4 = 187, SRTT stays 500.
  EXPECT_TRUE(h.engine.OnSegmentSent(conn, 2'000));
  h.clock.Advance(500);
  EXPECT_EQ(h.engine.OnCumulativeAck(conn, 2'000), 1u);
  EXPECT_EQ(h.engine.srtt_ticks(conn), 500u);
  EXPECT_EQ(h.engine.effective_rto_ticks(conn), 500u + 4u * 187u);
  EXPECT_EQ(h.engine.stats().rtt_samples, 2u);
}

TEST(RtoEngineTest, FireBacksOffExponentiallyToTheCap) {
  Harness h;
  RetransmitLog log;
  h.engine.set_retransmit_hook(RetransmitLog::Hook, &log);
  uint64_t conn = h.engine.OpenConnection(nullptr);

  EXPECT_TRUE(h.engine.OnSegmentSent(conn, 1'000));
  EXPECT_EQ(h.engine.effective_rto_ticks(conn), 1'000u);

  // Never ACK: the RTO fires, doubles, and caps at rto_max = 8000.
  // Effective RTO after each fire: 2000, 4000, 8000, 8000, ...
  h.RunUntil(2'000);
  ASSERT_EQ(log.attempts.size(), 1u);
  EXPECT_EQ(h.engine.effective_rto_ticks(conn), 2'000u);
  h.RunUntil(5'000);
  ASSERT_EQ(log.attempts.size(), 2u);
  EXPECT_EQ(h.engine.effective_rto_ticks(conn), 4'000u);
  h.RunUntil(10'000);
  ASSERT_EQ(log.attempts.size(), 3u);
  EXPECT_EQ(h.engine.effective_rto_ticks(conn), 8'000u);
  h.RunUntil(19'000);
  ASSERT_EQ(log.attempts.size(), 4u);
  EXPECT_EQ(h.engine.effective_rto_ticks(conn), 8'000u);  // capped
  EXPECT_GE(h.engine.stats().backoff_capped, 1u);

  // Every retransmission re-sent the same segment with a rising attempt #.
  for (size_t i = 0; i < log.attempts.size(); ++i) {
    EXPECT_EQ(log.seq_ends[i], 1'000u);
    EXPECT_EQ(log.attempts[i], static_cast<uint32_t>(i + 1));
  }
}

TEST(RtoEngineTest, KarnRuleSuppressesSamplesFromRetransmittedSegments) {
  Harness h;
  uint64_t conn = h.engine.OpenConnection(nullptr);

  EXPECT_TRUE(h.engine.OnSegmentSent(conn, 1'000));
  // Let the RTO fire once so the segment is marked retransmitted.
  h.RunUntil(2'000);
  ASSERT_EQ(h.engine.stats().retransmits, 1u);

  // The (late) ACK retires it but must not feed the estimator.
  EXPECT_EQ(h.engine.OnCumulativeAck(conn, 1'000), 1u);
  EXPECT_EQ(h.engine.stats().rtt_samples, 0u);
  EXPECT_EQ(h.engine.stats().karn_suppressed, 1u);
  EXPECT_EQ(h.engine.srtt_ticks(conn), 0u);
  // Forward progress still collapses the backoff episode.
  EXPECT_EQ(h.engine.effective_rto_ticks(conn), 1'000u);

  // A fresh, never-retransmitted segment samples normally again.
  EXPECT_TRUE(h.engine.OnSegmentSent(conn, 2'000));
  h.clock.Advance(300);
  EXPECT_EQ(h.engine.OnCumulativeAck(conn, 2'000), 1u);
  EXPECT_EQ(h.engine.stats().rtt_samples, 1u);
  EXPECT_EQ(h.engine.srtt_ticks(conn), 300u);
}

TEST(RtoEngineTest, MixedAckSamplesOnlyTheFreshSegment) {
  Harness h;
  uint64_t conn = h.engine.OpenConnection(nullptr);

  // Two in flight; only the first one's timer expires (fire order is by
  // deadline), then one cumulative ACK retires both.
  EXPECT_TRUE(h.engine.OnSegmentSent(conn, 1'000));
  h.clock.Advance(900);
  EXPECT_TRUE(h.engine.OnSegmentSent(conn, 2'000));
  h.RunUntil(1'600);  // first segment's RTO (due ~1000) fired; second alive
  ASSERT_EQ(h.engine.stats().retransmits, 1u);

  EXPECT_EQ(h.engine.OnCumulativeAck(conn, 2'000), 2u);
  // One Karn suppression (segment 1), one sample (segment 2).
  EXPECT_EQ(h.engine.stats().karn_suppressed, 1u);
  EXPECT_EQ(h.engine.stats().rtt_samples, 1u);
}

TEST(RtoEngineTest, GiveUpAbortsConnectionAndNotifiesPolicy) {
  RtoEngine::Config ec = Harness::DefaultEngineCfg();
  ec.max_retransmits = 2;
  Harness h(ec);

  int conn_marker = 0;
  struct AbortLog {
    int calls = 0;
    void* ctx = nullptr;
    static void Hook(void* self, void* conn_ctx) {
      auto* log = static_cast<AbortLog*>(self);
      ++log->calls;
      log->ctx = conn_ctx;
    }
  } abort_log;
  h.engine.set_abort_hook(AbortLog::Hook, &abort_log);

  uint64_t conn = h.engine.OpenConnection(&conn_marker);
  EXPECT_TRUE(h.engine.OnSegmentSent(conn, 1'000));

  // Fires at ~1000 (attempt 1), ~3000 (attempt 2), ~7000 (give-up).
  h.RunUntil(60'000);
  EXPECT_EQ(h.engine.stats().retransmits, 2u);
  EXPECT_EQ(h.engine.stats().give_ups, 1u);
  EXPECT_EQ(abort_log.calls, 1);
  EXPECT_EQ(abort_log.ctx, &conn_marker);
  EXPECT_FALSE(h.engine.IsOpen(conn));
  EXPECT_EQ(h.engine.open_connections(), 0u);
  EXPECT_EQ(h.policy.stats().connection_resets, 1u);
  // The closed connection's id is dead.
  EXPECT_FALSE(h.engine.OnSegmentSent(conn, 2'000));
  EXPECT_EQ(h.engine.OnCumulativeAck(conn, 2'000), 0u);
}

TEST(RtoEngineTest, PartialAckRestartsSurvivorTimers) {
  Harness h;
  uint64_t conn = h.engine.OpenConnection(nullptr);

  // Four in flight at t=0, all due at ~1001 (initial RTO = 1000).
  for (uint32_t i = 1; i <= 4; ++i) {
    EXPECT_TRUE(h.engine.OnSegmentSent(conn, i * 1'000));
  }
  // Partial ACK at t=500 retires the head; the sample R=500 sets
  // SRTT=500, RTTVAR=250, RTO=1500, and RFC 6298 5.3 restarts the three
  // survivors from now: due ~t=2001, not their original ~1001.
  h.clock.Advance(500);
  EXPECT_EQ(h.engine.OnCumulativeAck(conn, 1'000), 1u);
  EXPECT_EQ(h.engine.stats().timers_rescheduled, 3u);
  EXPECT_EQ(h.engine.effective_rto_ticks(conn), 1'500u);

  h.RunUntil(1'800);  // past the original deadlines, before the restart
  EXPECT_EQ(h.engine.stats().timers_fired, 0u);
  EXPECT_EQ(h.engine.stats().retransmits, 0u);

  h.RunUntil(2'300);  // past the restarted deadlines: all three fire
  EXPECT_EQ(h.engine.stats().timers_fired, 3u);
  EXPECT_EQ(h.engine.stats().retransmits, 3u);
  // A reschedule is neither a schedule nor a cancel: once the close resolves
  // the retransmissions' re-armed timers, conservation holds exactly.
  h.engine.CloseConnection(conn);
  EXPECT_EQ(h.engine.stats().timers_scheduled,
            h.engine.stats().timers_cancelled + h.engine.stats().timers_fired);
}

TEST(RtoEngineTest, PartialAckRestartBehavesTheSameOnNativeUpdateBackend) {
  // The restart goes through RescheduleOnShard, which renames ids on
  // emulated-update backends but keeps them on the grouped-sorting queue;
  // the engine must be agnostic. Replay the scenario above on the native
  // backend and expect identical counters.
  ManualClock clock;
  ShardedSoftTimerRuntime::Config rc = Harness::RtCfg();
  rc.facility.queue_kind = TimerQueueKind::kGroupedSorting;
  ShardedSoftTimerRuntime rt(&clock, rc);
  RtoEngine engine(&rt, nullptr, Harness::DefaultEngineCfg());

  uint64_t conn = engine.OpenConnection(nullptr);
  for (uint32_t i = 1; i <= 4; ++i) {
    EXPECT_TRUE(engine.OnSegmentSent(conn, i * 1'000));
  }
  clock.Advance(500);
  EXPECT_EQ(engine.OnCumulativeAck(conn, 1'000), 1u);
  EXPECT_EQ(engine.stats().timers_rescheduled, 3u);
  while (clock.NowTicks() < 1'800) {
    clock.Advance(50);
    rt.OnTriggerState(0, TriggerSource::kSyscall);
  }
  EXPECT_EQ(engine.stats().timers_fired, 0u);
  while (clock.NowTicks() < 2'300) {
    clock.Advance(50);
    rt.OnTriggerState(0, TriggerSource::kSyscall);
  }
  EXPECT_EQ(engine.stats().timers_fired, 3u);
  // Another partial ACK after the retransmissions: survivors were all
  // retransmitted (Karn), so the restart re-arms them without a sample.
  EXPECT_TRUE(engine.OnSegmentSent(conn, 5'000));
  EXPECT_EQ(engine.OnCumulativeAck(conn, 2'000), 1u);
  EXPECT_EQ(engine.stats().timers_rescheduled, 6u);  // 3 survivors again
  EXPECT_EQ(engine.stats().rtt_samples, 1u);         // only the first ACK
}

TEST(RtoEngineTest, WindowBoundsInFlightSegments) {
  Harness h;
  uint64_t conn = h.engine.OpenConnection(nullptr);

  for (uint32_t i = 1; i <= kRtoWindowSegments; ++i) {
    EXPECT_TRUE(h.engine.OnSegmentSent(conn, i * 1'000));
  }
  EXPECT_FALSE(h.engine.OnSegmentSent(conn, 9'000));
  EXPECT_EQ(h.engine.stats().window_full_rejects, 1u);

  // Retiring the oldest reopens exactly one slot.
  EXPECT_EQ(h.engine.OnCumulativeAck(conn, 1'000), 1u);
  EXPECT_TRUE(h.engine.OnSegmentSent(conn, 9'000));
  EXPECT_FALSE(h.engine.OnSegmentSent(conn, 10'000));
}

TEST(RtoEngineTest, CloseCancelsEverythingAndStalesTheId) {
  Harness h;
  uint64_t conn = h.engine.OpenConnection(nullptr);
  EXPECT_TRUE(h.engine.OnSegmentSent(conn, 1'000));
  EXPECT_TRUE(h.engine.OnSegmentSent(conn, 2'000));
  h.engine.CloseConnection(conn);
  EXPECT_FALSE(h.engine.IsOpen(conn));
  EXPECT_EQ(h.engine.stats().timers_cancelled, 2u);

  // A reopened connection reuses the slot under a new generation; the old
  // id must not alias it, and no stale fire may slip through.
  uint64_t conn2 = h.engine.OpenConnection(nullptr);
  EXPECT_EQ(static_cast<uint32_t>(conn2), static_cast<uint32_t>(conn));
  EXPECT_NE(conn2, conn);
  EXPECT_FALSE(h.engine.OnSegmentSent(conn, 3'000));
  EXPECT_EQ(h.engine.OnCumulativeAck(conn, 3'000), 0u);
  EXPECT_TRUE(h.engine.OnSegmentSent(conn2, 3'000));

  h.RunUntil(100'000);
  EXPECT_EQ(h.engine.stats().stale_fires, 0u);
}

}  // namespace
}  // namespace softtimer
