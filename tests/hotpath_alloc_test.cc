// Enforces the zero-allocation hot-path guarantee (DESIGN.md "Hot path
// anatomy"): with no degradation policy configured, steady-state
// ScheduleSoftEvent / CancelSoftEvent, the nothing-due trigger-state check,
// and the dispatch cycle must not touch the heap once internal storage
// (timer slab, expiry scratch) has reached its high-water mark.
//
// The binary links bench/alloc_probe.cc, which interposes global operator
// new/delete with counting wrappers, so any allocation on these paths is an
// exact test failure, not a perf regression to notice later.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "bench/alloc_probe.h"
#include "src/core/clock_source.h"
#include "src/core/soft_timer_facility.h"
#include "src/net/multi_queue_poller.h"
#include "src/pacing/pacing_wheel.h"
#include "src/pacing/pacing_wheel_host.h"
#include "src/sim/simulator.h"

namespace softtimer {
namespace {

class HotpathAllocTest : public ::testing::TestWithParam<TimerQueueKind> {
 protected:
  HotpathAllocTest()
      : clock_(&sim_, 1'000'000),
        facility_(&clock_, MakeConfig(GetParam())) {}

  static SoftTimerFacility::Config MakeConfig(TimerQueueKind kind) {
    SoftTimerFacility::Config config;
    config.queue_kind = kind;
    return config;
  }

  Simulator sim_;
  SimClockSource clock_;
  SoftTimerFacility facility_;
  uint64_t fired_ = 0;
};

TEST_P(HotpathAllocTest, SteadyStateScheduleCancelAllocatesNothing) {
  // The handler capture must fit std::function's inline buffer, or the
  // allocation happens before the facility is even involved.
  uint64_t* fired = &fired_;
  auto handler = [fired](const SoftTimerFacility::FireInfo&) { ++*fired; };
  std::vector<SoftEventId> ids(256);
  auto round = [&] {
    for (size_t i = 0; i < ids.size(); ++i) {
      ids[i] = facility_.ScheduleSoftEvent(1000 + i, handler);
    }
    for (SoftEventId id : ids) {
      EXPECT_TRUE(facility_.CancelSoftEvent(id));
    }
  };
  // Warmup: grows the slab and (for the heap backend) the entry vector to
  // their high-water marks. Two rounds, because lazy deletion can carry a
  // few stale entries into the next round, nudging the peak size up once.
  round();
  round();
  uint64_t start = AllocProbeAllocCount();
  for (int r = 0; r < 4; ++r) {
    round();
  }
  EXPECT_EQ(AllocProbeAllocCount() - start, 0u);
}

TEST_P(HotpathAllocTest, NothingDueTriggerCheckAllocatesNothing) {
  uint64_t* fired = &fired_;
  facility_.ScheduleSoftEvent(1'000'000'000,
                              [fired](const SoftTimerFacility::FireInfo&) { ++*fired; });
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(facility_.OnTriggerState(TriggerSource::kSyscall), 0u);
  }
  uint64_t start = AllocProbeAllocCount();
  for (int i = 0; i < 100'000; ++i) {
    ASSERT_EQ(facility_.OnTriggerState(TriggerSource::kSyscall), 0u);
  }
  EXPECT_EQ(AllocProbeAllocCount() - start, 0u);
  EXPECT_EQ(fired_, 0u);
}

TEST_P(HotpathAllocTest, SteadyStateDispatchAllocatesNothing) {
  uint64_t* fired = &fired_;
  auto handler = [fired](const SoftTimerFacility::FireInfo&) { ++*fired; };
  auto cycle = [&] {
    facility_.ScheduleSoftEvent(1, handler);
    sim_.RunUntil(sim_.now() + SimDuration::Nanos(2'000));
    facility_.OnTriggerState(TriggerSource::kSyscall);
  };
  for (int i = 0; i < 256; ++i) {
    cycle();  // warmup: slab + expiry scratch reach steady state
  }
  uint64_t fired_before = fired_;
  uint64_t start = AllocProbeAllocCount();
  for (int i = 0; i < 10'000; ++i) {
    cycle();
  }
  EXPECT_EQ(AllocProbeAllocCount() - start, 0u);
  EXPECT_EQ(fired_ - fired_before, 10'000u);
}

TEST_P(HotpathAllocTest, SteadyStateRescheduleAllocatesNothing) {
  // Re-arm churn - the RTO restart pattern: a pool of live events whose
  // deadlines keep moving. Both the native update (grouped sorting queue)
  // and the emulated cancel+reschedule on the other backends must stay off
  // the heap once the slab has grown.
  uint64_t* fired = &fired_;
  auto handler = [fired](const SoftTimerFacility::FireInfo&) { ++*fired; };
  std::vector<SoftEventId> ids(256);
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = facility_.ScheduleSoftEvent(10'000 + i, handler);
  }
  auto round = [&](uint64_t delta) {
    for (size_t i = 0; i < ids.size(); ++i) {
      ids[i] = facility_.RescheduleSoftEvent(ids[i], delta + i);
      ASSERT_TRUE(ids[i].valid());
    }
  };
  round(20'000);  // warmup: emulated backends relink through fresh slots
  round(10'000);
  uint64_t start = AllocProbeAllocCount();
  for (int r = 0; r < 8; ++r) {
    round(10'000 + static_cast<uint64_t>(r) * 1'000);
  }
  EXPECT_EQ(AllocProbeAllocCount() - start, 0u);
  EXPECT_EQ(facility_.stats().rescheduled, 10u * ids.size());
  for (SoftEventId id : ids) {
    EXPECT_TRUE(facility_.CancelSoftEvent(id));
  }
}

// --- pacing wheel: enqueue / re-rate / dispatch stay off the heap ---------

class NullSink : public PacingWheel::BatchSink {
 public:
  void OnPacedBatch(const PacedEmit* batch, size_t count, uint64_t) override {
    packets += count;
    (void)batch;
  }
  uint64_t packets = 0;
};

class PacingWheelAllocTest : public ::testing::TestWithParam<TimerQueueKind> {
 protected:
  PacingWheelAllocTest()
      : clock_(&sim_, 1'000'000),
        facility_(&clock_, MakeConfig(GetParam())),
        wheel_(MakeWheel()),
        host_(&facility_, &wheel_) {
    host_.set_sink(&sink_);
  }

  static SoftTimerFacility::Config MakeConfig(TimerQueueKind kind) {
    SoftTimerFacility::Config config;
    config.queue_kind = kind;
    return config;
  }

  static PacingWheel::Config MakeWheel() {
    PacingWheel::Config config;
    config.quantum_ticks = 8;
    config.num_slots = 1024;
    // Provable zero-alloc steady state: a ReRate sweep can pile all 512
    // flows into whichever slot is current, and that slot differs each
    // sweep, so lazy growth would keep ratcheting fresh slot vectors
    // forever. Pre-reserving every slot closes that.
    config.reserve_slot_capacity = 512;
    return config;
  }

  Simulator sim_;
  SimClockSource clock_;
  SoftTimerFacility facility_;
  PacingWheel wheel_;
  PacingWheelHost host_;
  NullSink sink_;
};

TEST_P(PacingWheelAllocTest, SteadyStateEnqueueReRateDispatchAllocatesNothing) {
  // 512 flows at heterogeneous rates, driven through the facility-armed
  // wheel event: after the warmup grows the slab, the slot vectors, and the
  // emit batch to their high-water marks, the whole activate -> drain ->
  // re-bucket -> re-rate cycle must never touch the heap.
  std::vector<PacedFlowId> ids;
  for (int i = 0; i < 512; ++i) {
    PacedFlowConfig fc;
    fc.target_interval_ticks = 64 + (static_cast<uint64_t>(i) % 7) * 32;
    fc.min_burst_interval_ticks = 16;
    fc.max_coalesced_burst_packets = 4;
    PacedFlowId id = host_.AddFlow(fc);
    ASSERT_TRUE(id.valid());
    ASSERT_TRUE(host_.Activate(id, static_cast<uint64_t>(i) % 128));
    ids.push_back(id);
  }
  auto spin = [&](int steps) {
    for (int t = 0; t < steps; ++t) {
      sim_.RunUntil(sim_.now() + SimDuration::Nanos(4'000));
      facility_.OnTriggerState(TriggerSource::kSyscall);
    }
  };
  // One cycle = the full hot-path mix: drains/re-buckets, a re-rate sweep,
  // and deactivate/reactivate churn. Warmup cycles are IDENTICAL to the
  // measured ones, so every slot vector, the drain scratch, and the emit
  // batch hit their high-water marks before counting starts (slot occupancy
  // maxima ratchet; a novel access pattern mid-measurement would ratchet
  // them again).
  auto cycle = [&] {
    for (size_t i = 0; i < ids.size(); ++i) {
      ASSERT_TRUE(host_.ReRate(ids[i], 96 + (i % 5) * 32, 24));
    }
    spin(1'000);
    for (size_t i = 0; i < ids.size(); ++i) {
      ASSERT_TRUE(host_.ReRate(ids[i], 64 + (i % 7) * 32, 16));
    }
    spin(1'000);
    for (size_t i = 0; i < ids.size(); i += 4) {
      ASSERT_TRUE(host_.Deactivate(ids[i]));
      ASSERT_TRUE(host_.Activate(ids[i], i % 64));
    }
    spin(1'000);
  };
  cycle();
  cycle();
  cycle();  // three warmup laps, like the facility tests' double round
  uint64_t packets_before = sink_.packets;
  uint64_t start = AllocProbeAllocCount();
  cycle();
  cycle();
  EXPECT_EQ(AllocProbeAllocCount() - start, 0u);
  EXPECT_GT(sink_.packets - packets_before, 10'000u);
}

// --- multi-queue poller: the claim + poll fast path stays off the heap ----

class FixedDrainQueue : public MultiQueuePoller::Queue {
 public:
  size_t Drain(size_t max_packets, uint64_t) override {
    drains_ += 1;
    return max_packets < 3 ? max_packets : 3;
  }
  uint64_t drains() const { return drains_; }

 private:
  uint64_t drains_ = 0;
};

TEST(MultiQueuePollerAllocTest, ClaimAndPollPathAllocatesNothing) {
  // The BENCH_poll gate: once construction and AddQueue have sized the
  // per-queue state, the whole PollOnce cycle - gate check, deadline scan,
  // CAS claim, drain, governor update, release, gate publish - must never
  // touch the heap, on the found-work path and on the gate-skip / scan-miss
  // paths alike.
  MultiQueuePoller::Config config;
  config.governor.aggregation_quota = 2.0;
  config.governor.min_interval_ticks = 10;
  config.governor.max_interval_ticks = 200;
  config.governor.initial_interval_ticks = 100;
  MultiQueuePoller poller(config);
  std::vector<FixedDrainQueue> queues(8);
  for (auto& q : queues) {
    poller.AddQueue(&q);
  }
  uint64_t now = 0;
  auto cycle = [&] {
    now += 50;
    poller.PollOnce(0, now);  // serves at most one due queue
    poller.PollOnce(1, now);  // another due queue, or a scan miss
    poller.PollOnce(0, now);  // likely gate-skip once the gate advanced
  };
  for (int i = 0; i < 256; ++i) {
    cycle();  // warmup (nothing here should grow, but mirror the idiom)
  }
  uint64_t start = AllocProbeAllocCount();
  for (int i = 0; i < 10'000; ++i) {
    cycle();
  }
  EXPECT_EQ(AllocProbeAllocCount() - start, 0u);
  uint64_t drains = 0;
  for (auto& q : queues) {
    drains += q.drains();
  }
  EXPECT_GT(drains, 10'000u);
  EXPECT_EQ(poller.total_packets(), 3 * drains);
}

std::string KindName(const ::testing::TestParamInfo<TimerQueueKind>& info) {
  switch (info.param) {
    case TimerQueueKind::kHeap: return "Heap";
    case TimerQueueKind::kHashedWheel: return "HashedWheel";
    case TimerQueueKind::kHierarchicalWheel: return "HierarchicalWheel";
    case TimerQueueKind::kCalloutList: return "CalloutList";
    case TimerQueueKind::kGroupedSorting: return "GroupedSorting";
  }
  return "Unknown";
}

INSTANTIATE_TEST_SUITE_P(
    AllQueueKinds, PacingWheelAllocTest,
    ::testing::Values(TimerQueueKind::kHeap, TimerQueueKind::kHashedWheel,
                      TimerQueueKind::kHierarchicalWheel,
                      TimerQueueKind::kCalloutList,
                      TimerQueueKind::kGroupedSorting),
    KindName);

INSTANTIATE_TEST_SUITE_P(
    AllQueueKinds, HotpathAllocTest,
    ::testing::Values(TimerQueueKind::kHeap, TimerQueueKind::kHashedWheel,
                      TimerQueueKind::kHierarchicalWheel,
                      TimerQueueKind::kCalloutList,
                      TimerQueueKind::kGroupedSorting),
    KindName);

}  // namespace
}  // namespace softtimer
