// Enforces the zero-allocation hot-path guarantee (DESIGN.md "Hot path
// anatomy"): with no degradation policy configured, steady-state
// ScheduleSoftEvent / CancelSoftEvent, the nothing-due trigger-state check,
// and the dispatch cycle must not touch the heap once internal storage
// (timer slab, expiry scratch) has reached its high-water mark.
//
// The binary links bench/alloc_probe.cc, which interposes global operator
// new/delete with counting wrappers, so any allocation on these paths is an
// exact test failure, not a perf regression to notice later.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "bench/alloc_probe.h"
#include "src/core/clock_source.h"
#include "src/core/soft_timer_facility.h"
#include "src/sim/simulator.h"

namespace softtimer {
namespace {

class HotpathAllocTest : public ::testing::TestWithParam<TimerQueueKind> {
 protected:
  HotpathAllocTest()
      : clock_(&sim_, 1'000'000),
        facility_(&clock_, MakeConfig(GetParam())) {}

  static SoftTimerFacility::Config MakeConfig(TimerQueueKind kind) {
    SoftTimerFacility::Config config;
    config.queue_kind = kind;
    return config;
  }

  Simulator sim_;
  SimClockSource clock_;
  SoftTimerFacility facility_;
  uint64_t fired_ = 0;
};

TEST_P(HotpathAllocTest, SteadyStateScheduleCancelAllocatesNothing) {
  // The handler capture must fit std::function's inline buffer, or the
  // allocation happens before the facility is even involved.
  uint64_t* fired = &fired_;
  auto handler = [fired](const SoftTimerFacility::FireInfo&) { ++*fired; };
  std::vector<SoftEventId> ids(256);
  auto round = [&] {
    for (size_t i = 0; i < ids.size(); ++i) {
      ids[i] = facility_.ScheduleSoftEvent(1000 + i, handler);
    }
    for (SoftEventId id : ids) {
      EXPECT_TRUE(facility_.CancelSoftEvent(id));
    }
  };
  // Warmup: grows the slab and (for the heap backend) the entry vector to
  // their high-water marks. Two rounds, because lazy deletion can carry a
  // few stale entries into the next round, nudging the peak size up once.
  round();
  round();
  uint64_t start = AllocProbeAllocCount();
  for (int r = 0; r < 4; ++r) {
    round();
  }
  EXPECT_EQ(AllocProbeAllocCount() - start, 0u);
}

TEST_P(HotpathAllocTest, NothingDueTriggerCheckAllocatesNothing) {
  uint64_t* fired = &fired_;
  facility_.ScheduleSoftEvent(1'000'000'000,
                              [fired](const SoftTimerFacility::FireInfo&) { ++*fired; });
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(facility_.OnTriggerState(TriggerSource::kSyscall), 0u);
  }
  uint64_t start = AllocProbeAllocCount();
  for (int i = 0; i < 100'000; ++i) {
    ASSERT_EQ(facility_.OnTriggerState(TriggerSource::kSyscall), 0u);
  }
  EXPECT_EQ(AllocProbeAllocCount() - start, 0u);
  EXPECT_EQ(fired_, 0u);
}

TEST_P(HotpathAllocTest, SteadyStateDispatchAllocatesNothing) {
  uint64_t* fired = &fired_;
  auto handler = [fired](const SoftTimerFacility::FireInfo&) { ++*fired; };
  auto cycle = [&] {
    facility_.ScheduleSoftEvent(1, handler);
    sim_.RunUntil(sim_.now() + SimDuration::Nanos(2'000));
    facility_.OnTriggerState(TriggerSource::kSyscall);
  };
  for (int i = 0; i < 256; ++i) {
    cycle();  // warmup: slab + expiry scratch reach steady state
  }
  uint64_t fired_before = fired_;
  uint64_t start = AllocProbeAllocCount();
  for (int i = 0; i < 10'000; ++i) {
    cycle();
  }
  EXPECT_EQ(AllocProbeAllocCount() - start, 0u);
  EXPECT_EQ(fired_ - fired_before, 10'000u);
}

INSTANTIATE_TEST_SUITE_P(
    AllQueueKinds, HotpathAllocTest,
    ::testing::Values(TimerQueueKind::kHeap, TimerQueueKind::kHashedWheel,
                      TimerQueueKind::kHierarchicalWheel,
                      TimerQueueKind::kCalloutList),
    [](const ::testing::TestParamInfo<TimerQueueKind>& info) {
      switch (info.param) {
        case TimerQueueKind::kHeap: return "Heap";
        case TimerQueueKind::kHashedWheel: return "HashedWheel";
        case TimerQueueKind::kHierarchicalWheel: return "HierarchicalWheel";
        case TimerQueueKind::kCalloutList: return "CalloutList";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace softtimer
