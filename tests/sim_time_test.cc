#include "src/sim/time.h"

#include <gtest/gtest.h>

namespace softtimer {
namespace {

TEST(SimDurationTest, FactoriesRoundToNanoseconds) {
  EXPECT_EQ(SimDuration::Nanos(7).nanos(), 7);
  EXPECT_EQ(SimDuration::Micros(4.45).nanos(), 4450);
  EXPECT_EQ(SimDuration::Millis(1.5).nanos(), 1'500'000);
  EXPECT_EQ(SimDuration::Seconds(2).nanos(), 2'000'000'000);
  // Rounding, not truncation.
  EXPECT_EQ(SimDuration::Micros(0.0006).nanos(), 1);
  EXPECT_EQ(SimDuration::Micros(-0.0006).nanos(), -1);
}

TEST(SimDurationTest, Arithmetic) {
  SimDuration a = SimDuration::Micros(10);
  SimDuration b = SimDuration::Micros(4);
  EXPECT_EQ((a + b).nanos(), 14'000);
  EXPECT_EQ((a - b).nanos(), 6'000);
  EXPECT_EQ((-b).nanos(), -4'000);
  EXPECT_EQ((a * int64_t{3}).nanos(), 30'000);
  EXPECT_EQ((a * 0.5).nanos(), 5'000);
  EXPECT_EQ((a / int64_t{2}).nanos(), 5'000);
  EXPECT_EQ(a / b, 2);  // integer ratio
  a += b;
  EXPECT_EQ(a.nanos(), 14'000);
  a -= b;
  EXPECT_EQ(a.nanos(), 10'000);
}

TEST(SimDurationTest, Comparisons) {
  EXPECT_LT(SimDuration::Micros(1), SimDuration::Micros(2));
  EXPECT_EQ(SimDuration::Millis(1), SimDuration::Micros(1000));
  EXPECT_GT(SimDuration::Zero(), SimDuration::Micros(-1));
  EXPECT_LE(SimDuration::Zero(), SimDuration::Zero());
}

TEST(SimDurationTest, Conversions) {
  SimDuration d = SimDuration::Micros(1500);
  EXPECT_DOUBLE_EQ(d.ToMicros(), 1500.0);
  EXPECT_DOUBLE_EQ(d.ToMillis(), 1.5);
  EXPECT_DOUBLE_EQ(d.ToSeconds(), 0.0015);
}

TEST(SimTimeTest, PointArithmetic) {
  SimTime t0 = SimTime::Zero();
  SimTime t1 = t0 + SimDuration::Millis(2);
  EXPECT_EQ((t1 - t0).nanos(), 2'000'000);
  EXPECT_EQ((t1 - SimDuration::Millis(1)).nanos_since_origin(), 1'000'000);
  EXPECT_LT(t0, t1);
  t1 += SimDuration::Millis(1);
  EXPECT_EQ(t1.nanos_since_origin(), 3'000'000);
}

TEST(SimTimeTest, ToStringPicksUnits) {
  EXPECT_EQ(SimDuration::Nanos(12).ToString(), "12ns");
  EXPECT_EQ(SimDuration::Micros(4.45).ToString(), "4.45us");
  EXPECT_NE(SimDuration::Seconds(3).ToString().find("s"), std::string::npos);
}

}  // namespace
}  // namespace softtimer
