// Unit tests for HttpClientFarm: the client half of the scripted LAN
// exchange, driven against a hand-rolled fake server.

#include "src/httpsim/http_client_farm.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace softtimer {
namespace {

// A zero-cost fake server: answers SYN with SYN-ACK and requests with an
// n-segment response whose last segment carries the end-of-response marker.
class FakeServer {
 public:
  FakeServer(Simulator* sim, Link* to_client, int response_segments)
      : sim_(sim), to_client_(to_client), segments_(response_segments) {}

  void OnPacket(const Packet& p) {
    ++seen_[p.kind];
    switch (p.kind) {
      case Packet::Kind::kSyn: {
        Packet r;
        r.kind = Packet::Kind::kSynAck;
        r.flow_id = p.flow_id;
        r.size_bytes = 58;
        to_client_->Send(r);
        return;
      }
      case Packet::Kind::kRequest: {
        for (int i = 0; i < segments_; ++i) {
          Packet d;
          d.kind = Packet::Kind::kData;
          d.flow_id = p.flow_id;
          d.payload = kDefaultMss;
          d.size_bytes = kDefaultMss + kTcpIpHeaderBytes;
          d.fin = (i == segments_ - 1);
          to_client_->Send(d);
        }
        return;
      }
      default:
        return;
    }
  }

  int seen(Packet::Kind k) const {
    auto it = seen_.find(k);
    return it == seen_.end() ? 0 : it->second;
  }

 private:
  Simulator* sim_;
  Link* to_client_;
  int segments_;
  std::map<Packet::Kind, int> seen_;
};

struct FarmHarness {
  explicit FarmHarness(HttpClientFarm::Config cfg, int response_segments = 5)
      : uplink(&sim, LanCfg()), downlink(&sim, LanCfg()),
        server(&sim, &downlink, response_segments), farm(&sim, &uplink, cfg) {
    uplink.set_receiver([this](const Packet& p) { server.OnPacket(p); });
    downlink.set_receiver([this](const Packet& p) { farm.OnPacket(p); });
  }
  static Link::Config LanCfg() {
    Link::Config lc;
    lc.bandwidth_bps = 100e6;
    lc.propagation_delay = SimDuration::Micros(5);
    return lc;
  }
  Simulator sim;
  Link uplink;
  Link downlink;
  FakeServer server;
  HttpClientFarm farm;
};

HttpClientFarm::Config BaseCfg() {
  HttpClientFarm::Config cfg;
  cfg.concurrent_clients = 2;
  cfg.farm_id = 1;
  return cfg;
}

TEST(ClientFarmTest, ClosedLoopCompletesConnectionsForever) {
  FarmHarness h(BaseCfg());
  h.farm.Start();
  h.sim.RunFor(SimDuration::Millis(50));
  EXPECT_GT(h.farm.stats().connections_completed, 10u);
  EXPECT_EQ(h.farm.stats().responses_completed, h.farm.stats().connections_completed);
  // Every connection: one SYN, one request, one FIN at the server.
  EXPECT_EQ(h.server.seen(Packet::Kind::kSyn), h.server.seen(Packet::Kind::kFin) +
                                                   2 /* in-flight conns */);
}

TEST(ClientFarmTest, AcksEveryOtherDataSegment) {
  HttpClientFarm::Config cfg = BaseCfg();
  cfg.concurrent_clients = 1;
  FarmHarness h(cfg, /*response_segments=*/6);
  h.farm.Start();
  h.sim.RunFor(SimDuration::Millis(10));
  ASSERT_GE(h.farm.stats().responses_completed, 1u);
  // 6 segments -> ACKs at 2 and 4 (the tail is covered by the FIN).
  double acks_per_resp = static_cast<double>(h.farm.stats().acks_sent) /
                         static_cast<double>(h.farm.stats().responses_completed);
  EXPECT_NEAR(acks_per_resp, 2.0, 0.2);
}

TEST(ClientFarmTest, PersistentModeIssuesMultipleRequestsPerConnection) {
  HttpClientFarm::Config cfg = BaseCfg();
  cfg.workload.persistent = true;
  cfg.workload.requests_per_connection = 4;
  FarmHarness h(cfg);
  h.farm.Start();
  h.sim.RunFor(SimDuration::Millis(50));
  ASSERT_GT(h.farm.stats().connections_completed, 2u);
  double reqs_per_conn = static_cast<double>(h.farm.stats().responses_completed) /
                         static_cast<double>(h.farm.stats().connections_completed);
  EXPECT_NEAR(reqs_per_conn, 4.0, 0.5);
}

TEST(ClientFarmTest, ResponseTimesRecorded) {
  FarmHarness h(BaseCfg());
  h.farm.Start();
  h.sim.RunFor(SimDuration::Millis(20));
  ASSERT_GT(h.farm.response_time_us().count(), 0u);
  // 5 full segments at 100 Mbps = ~600 us of serialization alone.
  EXPECT_GT(h.farm.response_time_us().mean(), 500.0);
  EXPECT_LT(h.farm.response_time_us().mean(), 10'000.0);
}

TEST(ClientFarmTest, FlowIdsAreUniquePerFarmAndConnection) {
  HttpClientFarm::Config a = BaseCfg();
  a.farm_id = 1;
  HttpClientFarm::Config b = BaseCfg();
  b.farm_id = 2;
  FarmHarness ha(a), hb(b);
  ha.farm.Start();
  hb.farm.Start();
  ha.sim.RunFor(SimDuration::Millis(10));
  hb.sim.RunFor(SimDuration::Millis(10));
  // Farms embed their id in the upper bits; a packet from farm 2's flow
  // space is silently ignored by farm 1.
  Packet stray;
  stray.kind = Packet::Kind::kData;
  stray.flow_id = (static_cast<uint64_t>(2) << 48) | 1;
  stray.fin = true;
  uint64_t before = ha.farm.stats().responses_completed;
  ha.farm.OnPacket(stray);
  EXPECT_EQ(ha.farm.stats().responses_completed, before);
}

TEST(ClientFarmTest, ResetStatsClearsCounters) {
  FarmHarness h(BaseCfg());
  h.farm.Start();
  h.sim.RunFor(SimDuration::Millis(20));
  EXPECT_GT(h.farm.stats().connections_completed, 0u);
  h.farm.ResetStats();
  EXPECT_EQ(h.farm.stats().connections_completed, 0u);
  EXPECT_EQ(h.farm.response_time_us().count(), 0u);
  // The farm keeps running after a reset.
  h.sim.RunFor(SimDuration::Millis(20));
  EXPECT_GT(h.farm.stats().connections_completed, 0u);
}

}  // namespace
}  // namespace softtimer
