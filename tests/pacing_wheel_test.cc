// PacingWheel unit semantics: exact-deadline emission (quantization never
// fires early), catch-up and coalesced-burst arithmetic shared with
// AdaptivePacer, budget auto-idle, overflow-ring parking, stale-id rejection,
// deferred mid-drain mutation, and the single-armed-event host contract
// (one soft event per shard regardless of flow count).

#include "src/pacing/pacing_wheel.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/clock_source.h"
#include "src/core/soft_timer_facility.h"
#include "src/pacing/pacing_wheel_host.h"

namespace softtimer {
namespace {

class ManualClock : public ClockSource {
 public:
  uint64_t NowTicks() const override { return now_; }
  uint64_t ResolutionHz() const override { return 1'000'000; }
  void Advance(uint64_t ticks) { now_ += ticks; }

 private:
  uint64_t now_ = 0;
};

struct RecordedEmit {
  uint64_t flow;
  uint64_t user_data;
  uint32_t packets;
  bool budget_exhausted;
  uint64_t now_tick;
};

class RecordingSink : public PacingWheel::BatchSink {
 public:
  void OnPacedBatch(const PacedEmit* batch, size_t count,
                    uint64_t now_tick) override {
    for (size_t i = 0; i < count; ++i) {
      emits.push_back({batch[i].flow.value, batch[i].user_data,
                       batch[i].packets, batch[i].budget_exhausted, now_tick});
    }
  }
  std::vector<RecordedEmit> emits;
};

PacedFlowConfig Flow(uint64_t target, uint64_t min_burst,
                     uint32_t coalesce = 0, uint32_t budget = 0) {
  PacedFlowConfig c;
  c.target_interval_ticks = target;
  c.min_burst_interval_ticks = min_burst;
  c.max_coalesced_burst_packets = coalesce;
  c.packet_budget = budget;
  return c;
}

PacingWheel::Config Wheel(uint64_t quantum, uint32_t slots,
                          size_t max_batch = 256) {
  PacingWheel::Config c;
  c.quantum_ticks = quantum;
  c.num_slots = slots;
  c.max_batch = max_batch;
  return c;
}

TEST(PacingWheelTest, EmitsAtExactDeadlineNeverEarly) {
  PacingWheel wheel(Wheel(8, 4096));
  RecordingSink sink;
  PacedFlowId id = wheel.AddFlow(Flow(100, 10));
  ASSERT_TRUE(id.valid());
  EXPECT_FALSE(wheel.active(id));
  ASSERT_TRUE(wheel.Activate(id, 0));
  EXPECT_TRUE(wheel.active(id));
  // Activation at t=0 schedules the first emission at t=1 (+1 for the
  // schedule not being tick-aligned, like the facility).
  EXPECT_EQ(wheel.next_due_tick(), 1u);
  EXPECT_EQ(wheel.Drain(0, &sink), 0u);  // nothing due: gated out
  EXPECT_EQ(wheel.stats().spurious_drains, 1u);
  EXPECT_EQ(wheel.Drain(1, &sink), 1u);
  ASSERT_EQ(sink.emits.size(), 1u);
  EXPECT_EQ(sink.emits[0].packets, 1u);
  // On-time emission re-buckets at the target interval.
  EXPECT_EQ(wheel.next_due_tick(), 101u);
  EXPECT_EQ(wheel.Drain(100, &sink), 0u);  // one tick early: still gated
  EXPECT_EQ(wheel.Drain(101, &sink), 1u);
  EXPECT_EQ(sink.emits.size(), 2u);
  EXPECT_EQ(wheel.stats().catchup_decisions, 0u);
}

TEST(PacingWheelTest, QuantizationKeepsNotYetDueSlotMates) {
  // Two flows share the quantum-64 slot covering [0, 64): A due at t=1,
  // B due at t=61. Draining at t=1 must emit A and re-keep B.
  PacingWheel wheel(Wheel(64, 64));
  RecordingSink sink;
  PacedFlowId a = wheel.AddFlow(Flow(1000, 100));
  PacedFlowId b = wheel.AddFlow(Flow(1000, 100));
  ASSERT_TRUE(wheel.Activate(a, 0));
  ASSERT_TRUE(wheel.Activate(b, 0, 60));
  EXPECT_EQ(wheel.queued_flows(), 2u);
  EXPECT_EQ(wheel.Drain(1, &sink), 1u);
  ASSERT_EQ(sink.emits.size(), 1u);
  EXPECT_EQ(sink.emits[0].flow, a.value);
  EXPECT_EQ(wheel.stats().keep_requeues, 1u);
  EXPECT_EQ(wheel.queued_flows(), 2u);  // B kept, A re-bucketed
  EXPECT_EQ(wheel.next_due_tick(), 61u);
  EXPECT_EQ(wheel.Drain(60, &sink), 0u);  // still one tick early for B
  EXPECT_EQ(wheel.Drain(61, &sink), 1u);
  EXPECT_EQ(sink.emits.back().flow, b.value);
}

TEST(PacingWheelTest, LateDrainTakesCatchupBranch) {
  PacingWheel wheel(Wheel(8, 4096));
  RecordingSink sink;
  PacedFlowId id = wheel.AddFlow(Flow(100, 10));
  ASSERT_TRUE(wheel.Activate(id, 0));  // due at t=1
  EXPECT_EQ(wheel.Drain(50, &sink), 1u);  // 49 ticks late
  EXPECT_EQ(wheel.stats().catchup_decisions, 1u);
  // Catch-up re-buckets at the min-burst interval, not the target.
  EXPECT_EQ(wheel.next_due_tick(), 60u);
}

TEST(PacingWheelTest, StaleWakeupGrantsBoundedCoalescedBurst) {
  PacingWheel wheel(Wheel(8, 4096));
  RecordingSink sink;
  PacedFlowId id = wheel.AddFlow(Flow(10, 5, /*coalesce=*/4));
  ASSERT_TRUE(wheel.Activate(id, 0));  // due t=1, train anchored at 1
  // 3 whole intervals behind schedule: budget = 1 + 3, capped at 4.
  EXPECT_EQ(wheel.Drain(31, &sink), 4u);
  ASSERT_EQ(sink.emits.size(), 1u);
  EXPECT_EQ(sink.emits[0].packets, 4u);
  EXPECT_EQ(wheel.stats().coalesced_bursts, 1u);
  // Way behind: the cap holds regardless of lateness.
  EXPECT_EQ(wheel.Drain(1000, &sink), 4u);
  EXPECT_EQ(sink.emits.back().packets, 4u);
}

TEST(PacingWheelTest, PacketBudgetAutoIdlesAndAddBudgetResumes) {
  PacingWheel wheel(Wheel(8, 4096));
  RecordingSink sink;
  PacedFlowId id = wheel.AddFlow(Flow(10, 5, /*coalesce=*/0, /*budget=*/3));
  ASSERT_TRUE(wheel.Activate(id, 0));
  EXPECT_EQ(wheel.Drain(1, &sink), 1u);
  EXPECT_EQ(wheel.Drain(11, &sink), 1u);
  EXPECT_EQ(wheel.Drain(21, &sink), 1u);
  ASSERT_EQ(sink.emits.size(), 3u);
  EXPECT_TRUE(sink.emits.back().budget_exhausted);
  EXPECT_EQ(wheel.stats().budget_exhausted, 1u);
  // Auto-idled: registered but no longer queued.
  EXPECT_TRUE(wheel.contains(id));
  EXPECT_FALSE(wheel.active(id));
  EXPECT_EQ(wheel.queued_flows(), 0u);
  EXPECT_EQ(wheel.next_due_tick(), UINT64_MAX);
  // Topping up the budget resumes the flow at the next tick.
  ASSERT_TRUE(wheel.AddBudget(id, 30, 2));
  EXPECT_TRUE(wheel.active(id));
  EXPECT_EQ(wheel.next_due_tick(), 31u);
  EXPECT_EQ(wheel.Drain(31, &sink), 1u);
  EXPECT_FALSE(sink.emits.back().budget_exhausted);
}

TEST(PacingWheelTest, DeactivateStopsEmissionUntilReactivated) {
  PacingWheel wheel(Wheel(8, 4096));
  RecordingSink sink;
  PacedFlowId id = wheel.AddFlow(Flow(10, 5));
  ASSERT_TRUE(wheel.Activate(id, 0));
  EXPECT_EQ(wheel.Drain(1, &sink), 1u);
  ASSERT_TRUE(wheel.Deactivate(id));
  EXPECT_FALSE(wheel.active(id));
  EXPECT_EQ(wheel.next_due_tick(), UINT64_MAX);
  EXPECT_EQ(wheel.Drain(500, &sink), 0u);
  EXPECT_EQ(sink.emits.size(), 1u);
  ASSERT_TRUE(wheel.Deactivate(id));  // idempotent on an idle flow
  ASSERT_TRUE(wheel.Activate(id, 600));
  EXPECT_EQ(wheel.Drain(601, &sink), 1u);
}

TEST(PacingWheelTest, ReRateAppliesImmediatelyToQueuedFlow) {
  PacingWheel wheel(Wheel(8, 4096));
  RecordingSink sink;
  PacedFlowId id = wheel.AddFlow(Flow(1000, 100));
  ASSERT_TRUE(wheel.Activate(id, 0));
  EXPECT_EQ(wheel.Drain(1, &sink), 1u);
  EXPECT_EQ(wheel.next_due_tick(), 1001u);
  // Re-rate moves the pending emission to the next tick and restarts the
  // train under the new intervals.
  ASSERT_TRUE(wheel.ReRate(id, 10, 50, 5));
  EXPECT_EQ(wheel.next_due_tick(), 11u);
  EXPECT_EQ(wheel.Drain(11, &sink), 1u);
  EXPECT_EQ(wheel.next_due_tick(), 61u);
  EXPECT_EQ(wheel.stats().re_rates, 1u);
}

TEST(PacingWheelTest, FarDeadlinesParkInOverflowRingAndFireExactly) {
  PacingWheel wheel(Wheel(8, 64));  // horizon = 512 ticks
  EXPECT_EQ(wheel.horizon_ticks(), 512u);
  RecordingSink sink;
  // A target beyond the horizon is kept exact, not clamped...
  PacedFlowId id = wheel.AddFlow(Flow(10'000, 10));
  EXPECT_EQ(wheel.stats().horizon_clamps, 0u);
  // ...and so is a far initial delay: the deadline parks in the overflow
  // ring and the wake-up gate reflects it exactly.
  ASSERT_TRUE(wheel.Activate(id, 0, 100'000));
  EXPECT_EQ(wheel.stats().horizon_clamps, 0u);
  EXPECT_EQ(wheel.stats().overflow_parks, 1u);
  EXPECT_EQ(wheel.parked_flows(), 1u);
  EXPECT_EQ(wheel.next_due_tick(), 100'001u);
  // A drain short of the deadline cascades nothing out and emits nothing
  // early, no matter how many horizons it crosses.
  EXPECT_EQ(wheel.Drain(504, &sink), 0u);
  EXPECT_EQ(wheel.Drain(100'000, &sink), 0u);
  EXPECT_TRUE(sink.emits.empty());
  // At the exact deadline the parked entry has cascaded in and fires.
  EXPECT_EQ(wheel.Drain(100'001, &sink), 1u);
  ASSERT_EQ(sink.emits.size(), 1u);
  EXPECT_EQ(sink.emits[0].now_tick, 100'001u);
  EXPECT_GE(wheel.stats().overflow_cascades, 1u);
  // The next emission (interval 10'000 > horizon) parks again.
  EXPECT_EQ(wheel.parked_flows(), 1u);
  EXPECT_EQ(wheel.next_due_tick(), 110'001u);
  EXPECT_EQ(wheel.stats().horizon_clamps, 0u);
}

TEST(PacingWheelTest, StaleIdsAreRejectedEverywhere) {
  PacingWheel wheel(Wheel(8, 4096));
  PacedFlowId id = wheel.AddFlow(Flow(10, 5));
  ASSERT_TRUE(wheel.Activate(id, 0));
  ASSERT_TRUE(wheel.RemoveFlow(id));
  EXPECT_FALSE(wheel.contains(id));
  EXPECT_FALSE(wheel.Activate(id, 0));
  EXPECT_FALSE(wheel.Deactivate(id));
  EXPECT_FALSE(wheel.ReRate(id, 0, 10, 5));
  EXPECT_FALSE(wheel.AddBudget(id, 0, 1));
  EXPECT_FALSE(wheel.RemoveFlow(id));
  EXPECT_EQ(wheel.queued_flows(), 0u);
  // The slot the node occupied must not reference it anymore.
  RecordingSink sink;
  EXPECT_EQ(wheel.Drain(1'000, &sink), 0u);
  EXPECT_TRUE(sink.emits.empty());
}

// A sink that runs a callback on every emitted record (for reentrancy
// tests: mutating the wheel from inside its own drain).
class CallbackSink : public PacingWheel::BatchSink {
 public:
  std::function<void(const PacedEmit&)> on_emit;
  std::vector<RecordedEmit> emits;
  void OnPacedBatch(const PacedEmit* batch, size_t count,
                    uint64_t now_tick) override {
    for (size_t i = 0; i < count; ++i) {
      emits.push_back({batch[i].flow.value, batch[i].user_data,
                       batch[i].packets, batch[i].budget_exhausted, now_tick});
      if (on_emit) {
        on_emit(batch[i]);
      }
    }
  }
};

TEST(PacingWheelTest, MidDrainDeactivateOfScratchNodeIsDeferred) {
  // max_batch = 1 flushes after every emit, so A's callback runs while B is
  // still detached in the sweep scratch; the deactivate must defer, emit
  // nothing for B, and park it idle.
  PacingWheel wheel(Wheel(64, 64, /*max_batch=*/1));
  CallbackSink sink;
  PacedFlowId a = wheel.AddFlow(Flow(100, 10));
  PacedFlowId b = wheel.AddFlow(Flow(100, 10));
  ASSERT_TRUE(wheel.Activate(a, 0));       // due t=1, slot 0
  ASSERT_TRUE(wheel.Activate(b, 0, 1));    // due t=2, slot 0
  sink.on_emit = [&](const PacedEmit& e) {
    if (e.flow.value == a.value) {
      EXPECT_TRUE(wheel.Deactivate(b));
    }
  };
  EXPECT_EQ(wheel.Drain(5, &sink), 1u);
  ASSERT_EQ(sink.emits.size(), 1u);
  EXPECT_EQ(sink.emits[0].flow, a.value);
  EXPECT_EQ(wheel.stats().deferred_cancels, 1u);
  EXPECT_TRUE(wheel.contains(b));
  EXPECT_FALSE(wheel.active(b));
  // The parked flow reactivates cleanly (A, caught-up to t=15, is not due).
  ASSERT_TRUE(wheel.Activate(b, 10));
  EXPECT_EQ(wheel.Drain(11, &sink), 1u);
  EXPECT_EQ(sink.emits.back().flow, b.value);
}

TEST(PacingWheelTest, MidDrainRemoveOfScratchNodeFreesWithoutEmit) {
  PacingWheel wheel(Wheel(64, 64, /*max_batch=*/1));
  CallbackSink sink;
  PacedFlowId a = wheel.AddFlow(Flow(100, 10));
  PacedFlowId b = wheel.AddFlow(Flow(100, 10));
  ASSERT_TRUE(wheel.Activate(a, 0));
  ASSERT_TRUE(wheel.Activate(b, 0, 1));
  sink.on_emit = [&](const PacedEmit& e) {
    if (e.flow.value == a.value) {
      EXPECT_TRUE(wheel.RemoveFlow(b));
    }
  };
  EXPECT_EQ(wheel.Drain(5, &sink), 1u);
  EXPECT_EQ(sink.emits.size(), 1u);
  EXPECT_FALSE(wheel.contains(b));  // freed by the sweep, generation bumped
  EXPECT_EQ(wheel.live_flows(), 1u);
}

TEST(PacingWheelTest, SinkMayReactivateTheFlowItJustReceived) {
  PacingWheel wheel(Wheel(8, 4096, /*max_batch=*/1));
  CallbackSink sink;
  PacedFlowId id = wheel.AddFlow(Flow(100, 10));
  ASSERT_TRUE(wheel.Activate(id, 0));
  sink.on_emit = [&](const PacedEmit& e) {
    // Relink-then-emit: by now the flow is in its normal re-bucketed state,
    // so a sink Activate goes through the ordinary unlink/relink path.
    EXPECT_TRUE(wheel.Activate(PacedFlowId{e.flow.value}, 40, 4));
  };
  EXPECT_EQ(wheel.Drain(1, &sink), 1u);
  EXPECT_EQ(wheel.next_due_tick(), 45u);  // 40 + 1 + 4, not 1 + 100
  EXPECT_EQ(wheel.queued_flows(), 1u);
}

TEST(PacingWheelTest, LongStallSkipsAheadOneLapAndEmitsEveryFlowOnce) {
  PacingWheel wheel(Wheel(8, 64));  // horizon = 512
  RecordingSink sink;
  std::vector<PacedFlowId> ids;
  for (int i = 0; i < 50; ++i) {
    PacedFlowId id = wheel.AddFlow(Flow(400, 40));
    ASSERT_TRUE(wheel.Activate(id, 0, static_cast<uint64_t>(i) * 7));
    ids.push_back(id);
  }
  // Stall many laps, then drain once: every flow fires exactly once (the
  // catch-up re-bucket lands in the future) and the sweep fast-forwards
  // instead of walking every missed lap.
  EXPECT_EQ(wheel.Drain(1'000'000, &sink), 50u);
  EXPECT_EQ(sink.emits.size(), 50u);
  EXPECT_EQ(wheel.queued_flows(), 50u);
  EXPECT_GT(wheel.next_due_tick(), 1'000'000u);
}

TEST(PacingWheelTest, TrimStorageReleasesAfterFlowChurn) {
  PacingWheel wheel(Wheel(8, 4096));
  RecordingSink sink;
  std::vector<PacedFlowId> ids;
  for (int i = 0; i < 600; ++i) {
    PacedFlowId id = wheel.AddFlow(Flow(50, 5));
    ASSERT_TRUE(wheel.Activate(id, 0, static_cast<uint64_t>(i)));
    ids.push_back(id);
  }
  wheel.Drain(700, &sink);
  for (PacedFlowId id : ids) {
    ASSERT_TRUE(wheel.RemoveFlow(id));
  }
  EXPECT_EQ(wheel.live_flows(), 0u);
  EXPECT_GE(wheel.TrimStorage(), 1u);
  // The wheel still works after a trim.
  PacedFlowId id = wheel.AddFlow(Flow(10, 5));
  ASSERT_TRUE(wheel.Activate(id, 1'000));
  EXPECT_EQ(wheel.Drain(1'001, &sink), 1u);
}

// --- host: one soft event per shard --------------------------------------

TEST(PacingWheelHostTest, SingleArmedEventDrivesManyFlows) {
  ManualClock clock;
  SoftTimerFacility facility(&clock, {});
  PacingWheel wheel(Wheel(8, 4096));
  PacingWheelHost host(&facility, &wheel);
  RecordingSink sink;
  host.set_sink(&sink);
  std::vector<PacedFlowId> ids;
  for (int i = 0; i < 200; ++i) {
    PacedFlowId id = host.AddFlow(Flow(100, 10));
    ids.push_back(id);
    ASSERT_TRUE(host.Activate(id, static_cast<uint64_t>(i)));
  }
  // 200 active flows, ONE pending facility event.
  EXPECT_EQ(facility.pending_count(), 1u);
  uint64_t total = 0;
  for (int step = 0; step < 400; ++step) {
    clock.Advance(1);
    facility.OnTriggerState(TriggerSource::kSyscall);
  }
  total = sink.emits.size();
  // Every flow fired at least thrice over 400 ticks at interval 100.
  EXPECT_GE(total, 600u);
  EXPECT_LE(facility.pending_count(), 1u);
  EXPECT_GE(host.stats().wheel_events, 1u);
  // The armed event tracks the wheel: deactivating everything disarms.
  for (PacedFlowId id : ids) {
    ASSERT_TRUE(host.Deactivate(id));
  }
  host.Disarm();
  EXPECT_EQ(facility.pending_count(), 0u);
}

TEST(PacingWheelHostTest, PollDrainsAheadOfArmedEvent) {
  ManualClock clock;
  SoftTimerFacility facility(&clock, {});
  PacingWheel wheel(Wheel(8, 4096));
  PacingWheelHost host(&facility, &wheel);
  RecordingSink sink;
  host.set_sink(&sink);
  PacedFlowId id = host.AddFlow(Flow(50, 5));
  ASSERT_TRUE(host.Activate(id));
  EXPECT_EQ(host.Poll(), 0u);  // not due yet: O(1) gate, no drain
  clock.Advance(10);
  EXPECT_EQ(host.Poll(), 1u);  // due: opportunistic drain beats the event
  EXPECT_EQ(host.stats().poll_drains, 1u);
  EXPECT_EQ(sink.emits.size(), 1u);
}

TEST(PacingWheelHostTest, BatchAdaptTracksAchievedQuota) {
  // Governor->pacer coupling: every drain re-targets the wheel's max_batch
  // from the poll governor's achieved aggregation quota. Heavy load (big
  // quota) widens the emit batch, light load narrows it, and an unchanged
  // quota does not count as a retune.
  ManualClock clock;
  SoftTimerFacility facility(&clock, {});
  PacingWheel wheel(Wheel(8, 4096, /*max_batch=*/16));
  PacingWheelHost host(&facility, &wheel);
  RecordingSink sink;
  host.set_sink(&sink);

  double quota = 0.5;
  PacingWheelHost::BatchAdapt adapt;
  adapt.achieved_quota = [&] { return quota; };
  adapt.min_batch = 1;
  adapt.max_batch = 64;
  adapt.gain = 4.0;
  host.set_batch_adapt(adapt);

  PacedFlowId id = host.AddFlow(Flow(50, 5));
  ASSERT_TRUE(host.Activate(id));
  EXPECT_EQ(wheel.max_batch(), 16u);  // untouched until the first drain

  clock.Advance(10);
  ASSERT_EQ(host.Poll(), 1u);  // light load: round(0.5 * 4) = 2
  EXPECT_EQ(wheel.max_batch(), 2u);
  EXPECT_EQ(host.stats().batch_retunes, 1u);

  quota = 16.0;  // load swing up: round(16 * 4) = 64 (the adapt ceiling)
  clock.Advance(60);
  ASSERT_EQ(host.Poll(), 1u);
  EXPECT_EQ(wheel.max_batch(), 64u);
  EXPECT_EQ(host.stats().batch_retunes, 2u);

  clock.Advance(60);
  ASSERT_EQ(host.Poll(), 1u);  // same quota: no retune recorded
  EXPECT_EQ(wheel.max_batch(), 64u);
  EXPECT_EQ(host.stats().batch_retunes, 2u);

  quota = 0.05;  // load swing down: round(0.2) = 0, clamped to min_batch
  clock.Advance(60);
  ASSERT_EQ(host.Poll(), 1u);
  EXPECT_EQ(wheel.max_batch(), 1u);
  EXPECT_EQ(host.stats().batch_retunes, 3u);
}

}  // namespace
}  // namespace softtimer
