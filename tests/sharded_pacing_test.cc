// ShardedPacingRuntime: per-shard wheels over the sharded soft-timer
// runtime. Deterministic single-thread tests exercise the cross-core
// control protocol step by step (the runtime's threading contract only
// requires serialized owner/producer calls, which one thread satisfies);
// the final test runs real shard threads through ShardedRtHost with the
// wheel driven by the shard_setup/shard_tick hooks.

#include "src/pacing/sharded_pacing.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/sharded_soft_timer_runtime.h"
#include "src/rt/sharded_rt_host.h"

namespace softtimer {
namespace {

class ManualClock : public ClockSource {
 public:
  uint64_t NowTicks() const override { return now_; }
  uint64_t ResolutionHz() const override { return 1'000'000; }
  void Advance(uint64_t ticks) { now_ += ticks; }

 private:
  uint64_t now_ = 0;
};

class CountingSink : public PacingWheel::BatchSink {
 public:
  void OnPacedBatch(const PacedEmit* batch, size_t count,
                    uint64_t) override {
    for (size_t i = 0; i < count; ++i) {
      packets.fetch_add(batch[i].packets, std::memory_order_relaxed);
    }
    batches.fetch_add(1, std::memory_order_relaxed);
  }
  std::atomic<uint64_t> packets{0};
  std::atomic<uint64_t> batches{0};
};

ShardedSoftTimerRuntime::Config RtCfg(size_t shards) {
  ShardedSoftTimerRuntime::Config c;
  c.num_shards = shards;
  return c;
}

ShardedPacingRuntime::Config PacingCfg() {
  ShardedPacingRuntime::Config c;
  c.wheel.quantum_ticks = 8;
  c.wheel.num_slots = 1024;
  return c;
}

PacedFlowConfig Flow(uint64_t target, uint64_t min_burst) {
  PacedFlowConfig c;
  c.target_interval_ticks = target;
  c.min_burst_interval_ticks = min_burst;
  return c;
}

TEST(ShardedPacingTest, FlowIdsCarryShardByteAndRouteBack) {
  ManualClock clock;
  ShardedSoftTimerRuntime rt(&clock, RtCfg(4));
  ShardedPacingRuntime pacing(&rt, PacingCfg());
  ASSERT_EQ(pacing.num_shards(), 4u);
  PacedFlowId id = pacing.AddFlowOnShard(2, Flow(100, 10));
  ASSERT_TRUE(id.valid());
  EXPECT_EQ(ShardedPacingRuntime::ShardOf(id), 2u);
  // Routing is by the id alone: no shard argument on the *OnShard calls.
  EXPECT_TRUE(pacing.ActivateOnShard(id));
  EXPECT_TRUE(pacing.shard_wheel(2).queued_flows() == 1);
  EXPECT_EQ(pacing.shard_wheel(0).queued_flows(), 0u);
  EXPECT_TRUE(pacing.DeactivateOnShard(id));
  EXPECT_TRUE(pacing.RemoveFlowOnShard(id));
  // Stale and malformed ids are rejected, not misrouted.
  EXPECT_FALSE(pacing.ActivateOnShard(id));
  EXPECT_FALSE(pacing.ActivateOnShard(PacedFlowId{}));
}

TEST(ShardedPacingTest, PerShardWheelsDriveIndependently) {
  ManualClock clock;
  ShardedSoftTimerRuntime rt(&clock, RtCfg(2));
  ShardedPacingRuntime pacing(&rt, PacingCfg());
  CountingSink sink0, sink1;
  pacing.BindSink(0, &sink0);
  pacing.BindSink(1, &sink1);
  PacedFlowId f0 = pacing.AddFlowOnShard(0, Flow(50, 5));
  PacedFlowId f1 = pacing.AddFlowOnShard(1, Flow(200, 20));
  ASSERT_TRUE(pacing.ActivateOnShard(f0));
  ASSERT_TRUE(pacing.ActivateOnShard(f1));
  // One soft event per shard, regardless of flow count.
  EXPECT_EQ(rt.shard_facility(0).pending_count(), 1u);
  EXPECT_EQ(rt.shard_facility(1).pending_count(), 1u);
  for (int i = 0; i < 400; ++i) {
    clock.Advance(1);
    rt.OnTriggerState(0, TriggerSource::kSyscall);
    rt.OnTriggerState(1, TriggerSource::kSyscall);
  }
  // 400 ticks: shard 0's flow (interval 50) fires ~8x, shard 1's ~2x.
  EXPECT_GE(sink0.packets.load(), 7u);
  EXPECT_GE(sink1.packets.load(), 1u);
  EXPECT_LT(sink1.packets.load(), sink0.packets.load());
}

TEST(ShardedPacingTest, CrossCoreReRateAppliesAtTargetShardTriggerState) {
  ManualClock clock;
  ShardedSoftTimerRuntime rt(&clock, RtCfg(2));
  ShardedPacingRuntime pacing(&rt, PacingCfg());
  CountingSink sink;
  pacing.BindSink(1, &sink);
  PacedFlowId id = pacing.AddFlowOnShard(1, Flow(1000, 100));
  ASSERT_TRUE(pacing.ActivateOnShard(id));
  EXPECT_EQ(pacing.shard_wheel(1).next_due_tick(), 1u);
  clock.Advance(2);
  rt.OnTriggerState(1, TriggerSource::kSyscall);  // first emission
  EXPECT_EQ(sink.packets.load(), 1u);

  // A producer on another core re-rates the flow through the command ring.
  auto token = rt.RegisterProducer();
  ASSERT_TRUE(token.valid());
  ASSERT_TRUE(pacing.ReRateCrossCore(token, id, 50, 5));
  EXPECT_TRUE(rt.remote_pending(1));
  // Drained at the target shard's next trigger state, applied one tick
  // later (the command rides a delta-0 soft event, which fires at the
  // facility's schedule_tick + 1)...
  rt.OnTriggerState(1, TriggerSource::kIpIntr);
  clock.Advance(1);
  rt.OnTriggerState(1, TriggerSource::kIpIntr);
  EXPECT_EQ(pacing.shard_wheel(1).stats().re_rates, 1u);
  // ...and the new cadence is immediate: emissions every ~50 ticks instead
  // of 1000.
  uint64_t before = sink.packets.load();
  for (int i = 0; i < 500; ++i) {
    clock.Advance(1);
    rt.OnTriggerState(1, TriggerSource::kSyscall);
  }
  EXPECT_GE(sink.packets.load() - before, 9u);
}

TEST(ShardedPacingTest, CrossCoreActivateDeactivateAndBudget) {
  ManualClock clock;
  ShardedSoftTimerRuntime rt(&clock, RtCfg(2));
  ShardedPacingRuntime pacing(&rt, PacingCfg());
  CountingSink sink;
  pacing.BindSink(1, &sink);
  auto token = rt.RegisterProducer();
  PacedFlowId id = pacing.AddFlowOnShard(1, Flow(10, 5));

  // Each cross-core op drains at the shard's next trigger state and applies
  // one tick later (delta-0 soft event fires at schedule_tick + 1).
  auto step = [&] {
    rt.OnTriggerState(1, TriggerSource::kSyscall);  // drain the command
    clock.Advance(1);
    rt.OnTriggerState(1, TriggerSource::kSyscall);  // fire it
  };
  // Far initial delay: keeps the first emission outside this test's window,
  // so only the control-plane sequencing is observed.
  ASSERT_TRUE(pacing.ActivateCrossCore(token, id, /*initial_delay_ticks=*/500));
  step();
  EXPECT_TRUE(pacing.shard_wheel(1).active(
      PacedFlowId{StripTimerIdShard(id.value)}));

  ASSERT_TRUE(pacing.DeactivateCrossCore(token, id));
  step();
  EXPECT_FALSE(pacing.shard_wheel(1).active(
      PacedFlowId{StripTimerIdShard(id.value)}));

  // Budget top-up also routes: reactivation after exhaustion goes through
  // AddBudgetCrossCore (control plane), emission through the wheel (data
  // plane).
  ASSERT_TRUE(pacing.AddBudgetCrossCore(token, id, 3));
  step();
  // Unlimited flow: AddBudget is a no-op but must still succeed.
  EXPECT_EQ(sink.packets.load(), 0u);  // deactivated: no emissions yet
}

TEST(ShardedPacingTest, RtHostShardsPaceConcurrently) {
  // Real shard threads: each shard activates its own flows from the
  // shard_setup hook (the owner-thread-only API, run on the shard's loop
  // thread), the wheel event fires inside the shard loop, and this thread
  // re-rates a flow cross-core mid-run. The hooks capture a pointer that is
  // filled in before Start(), breaking the host-config / pacing-runtime
  // construction cycle.
  ShardedPacingRuntime* pacing_ptr = nullptr;
  CountingSink sinks[2];
  std::vector<PacedFlowId> ids[2];  // written by shard_setup, then published
  std::atomic<int> setup_done{0};

  ShardedRtHost::Config cfg;
  cfg.num_shards = 2;
  cfg.idle_strategy = ShardedRtHost::IdleStrategy::kBusyPoll;
  cfg.shard_setup = [&](size_t shard) {
    for (int i = 0; i < 16; ++i) {
      PacedFlowId id = pacing_ptr->AddFlowOnShard(
          shard, Flow(500 + 50 * static_cast<uint64_t>(i), 50));
      ids[shard].push_back(id);
      pacing_ptr->ActivateOnShard(id, static_cast<uint64_t>(i) * 30);
    }
    setup_done.fetch_add(1, std::memory_order_release);
  };
  cfg.shard_tick = [&](size_t shard) { pacing_ptr->PollShard(shard); };

  ShardedRtHost host(cfg);
  ShardedPacingRuntime pacing(&host.runtime(), PacingCfg());
  pacing_ptr = &pacing;
  pacing.BindSink(0, &sinks[0]);
  pacing.BindSink(1, &sinks[1]);
  host.Start();

  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  auto wait_for = [&](auto pred) {
    while (!pred() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return pred();
  };
  bool setup_ok =
      wait_for([&] { return setup_done.load(std::memory_order_acquire) == 2; });
  bool paced_ok = setup_ok && wait_for([&] {
    return sinks[0].packets.load() >= 100 && sinks[1].packets.load() >= 100;
  });
  bool rerate_sent = false;
  uint64_t shard1_before_rerate = 0;
  bool advanced_ok = false;
  if (paced_ok) {
    auto token = host.RegisterProducer();
    shard1_before_rerate = sinks[1].packets.load();
    rerate_sent = pacing.ReRateCrossCore(token, ids[1][0], 120, 12);
    advanced_ok = wait_for([&] {
      return sinks[1].packets.load() >= shard1_before_rerate + 50;
    });
  }
  host.Stop();  // join threads before inspecting shard-local state

  EXPECT_TRUE(setup_ok);
  EXPECT_TRUE(paced_ok) << "shard0=" << sinks[0].packets.load()
                        << " shard1=" << sinks[1].packets.load();
  EXPECT_TRUE(rerate_sent);
  EXPECT_TRUE(advanced_ok);
  EXPECT_EQ(pacing.shard_wheel(1).stats().re_rates, 1u);
  // Pacing ran on both shards with exactly one armed wheel event each.
  for (size_t s = 0; s < 2; ++s) {
    EXPECT_GE(pacing.shard_host(s).stats().wheel_events +
                  pacing.shard_host(s).stats().poll_drains,
              1u);
    EXPECT_LE(host.runtime().shard_facility(s).pending_count(), 1u);
  }
}

}  // namespace
}  // namespace softtimer
