// Determinism and equivalence properties of the simulation itself:
//
//  * Slicing invariance: driving a simulation in many small RunUntil slices
//    produces exactly the same event trace as one big run.
//  * Seed determinism: identical configurations produce identical traces.
//  * idle_poll_fast_forward: the optimization that skips no-op idle checks
//    must leave soft-event firing times statistically equivalent (same
//    deadline + U[0, poll) law), which is the justification for using it in
//    the WAN experiments.

#include <gtest/gtest.h>

#include <vector>

#include "src/machine/kernel.h"
#include "src/stats/summary_stats.h"

namespace softtimer {
namespace {

std::vector<uint64_t> RunSliced(SimDuration slice) {
  Simulator sim;
  Kernel::Config kc;
  kc.profile = MachineProfile::PentiumII300();
  Kernel k(&sim, kc);
  Rng rng(5);
  std::function<void()> churn = [&] {
    k.KernelOp(TriggerSource::kSyscall, rng.LogNormalDuration(SimDuration::Micros(15), 0.6),
               churn);
  };
  churn();
  std::vector<uint64_t> fires;
  std::function<void(const SoftTimerFacility::FireInfo&)> periodic =
      [&](const SoftTimerFacility::FireInfo& info) {
        fires.push_back(info.fired_tick);
        k.soft_timers().ScheduleSoftEvent(75, periodic);
      };
  k.soft_timers().ScheduleSoftEvent(75, periodic);

  SimTime end = SimTime::Zero() + SimDuration::Millis(50);
  while (sim.now() < end) {
    SimTime next = sim.now() + slice;
    sim.RunUntil(next < end ? next : end);
  }
  return fires;
}

TEST(DeterminismTest, RunSlicingDoesNotChangeTheTrace) {
  std::vector<uint64_t> big = RunSliced(SimDuration::Millis(50));
  std::vector<uint64_t> medium = RunSliced(SimDuration::Millis(1));
  std::vector<uint64_t> tiny = RunSliced(SimDuration::Micros(37));
  ASSERT_GT(big.size(), 500u);
  EXPECT_EQ(big, medium);
  EXPECT_EQ(big, tiny);
}

TEST(DeterminismTest, IdenticalSeedsIdenticalTraces) {
  std::vector<uint64_t> a = RunSliced(SimDuration::Millis(50));
  std::vector<uint64_t> b = RunSliced(SimDuration::Millis(50));
  EXPECT_EQ(a, b);
}

// Lateness distribution of paced events on an idle host, with and without
// the fast-forward idle loop.
SummaryStats PacedLateness(bool fast_forward, uint64_t seed) {
  Simulator sim;
  Kernel::Config kc;
  kc.profile = MachineProfile::PentiumII300();
  kc.idle_poll_fast_forward = fast_forward;
  kc.rng_seed = seed;
  Kernel k(&sim, kc);
  SummaryStats lateness;
  std::function<void(const SoftTimerFacility::FireInfo&)> periodic =
      [&](const SoftTimerFacility::FireInfo& info) {
        lateness.Add(static_cast<double>(info.lateness_ticks()));
        k.soft_timers().ScheduleSoftEvent(240, periodic);
      };
  k.soft_timers().ScheduleSoftEvent(240, periodic);
  sim.RunUntil(SimTime::Zero() + SimDuration::Seconds(2));
  return lateness;
}

TEST(DeterminismTest, IdleFastForwardPreservesFiringStatistics) {
  SummaryStats slow = PacedLateness(false, 1);
  SummaryStats fast = PacedLateness(true, 1);
  ASSERT_GT(slow.count(), 7'000u);
  ASSERT_GT(fast.count(), 7'000u);
  // Same law: lateness ~ 1 + U[0, poll interval) with log-normal poll
  // jitter; means within a fraction of a microsecond of each other.
  EXPECT_NEAR(fast.mean(), slow.mean(), 0.4);
  EXPECT_NEAR(fast.stddev(), slow.stddev(), 0.5);
  EXPECT_NEAR(static_cast<double>(fast.count()), static_cast<double>(slow.count()),
              0.005 * static_cast<double>(slow.count()));
}

}  // namespace
}  // namespace softtimer
