// Multi-CPU behaviour: per-CPU trigger-interval streams, dispatch cost
// charged to the CPU that hit the trigger state, and the Section 5.2
// idle-CPU arbitration under churn.

#include <gtest/gtest.h>

#include <vector>

#include "src/machine/kernel.h"

namespace softtimer {
namespace {

Kernel::Config TwoCpuCfg() {
  Kernel::Config c;
  c.profile = MachineProfile::PentiumII300();
  c.num_cpus = 2;
  c.idle_poll_jitter_sigma = 0;
  return c;
}

TEST(SmpTest, TriggerIntervalsArePerCpu) {
  Simulator sim;
  Kernel k(&sim, TwoCpuCfg());
  // CPU 0 triggers every 100 us; CPU 1 every 30 us, interleaved. Intervals
  // must reflect each CPU's own cadence, not the merged stream.
  std::vector<double> intervals;
  k.set_trigger_observer(
      [&](TriggerSource, SimTime, SimDuration d) { intervals.push_back(d.ToMicros()); });
  for (int i = 1; i <= 30; ++i) {
    sim.ScheduleAt(SimTime::FromNanos(i * 30'000),
                   [&k] { k.Trigger(TriggerSource::kSyscall, 1); });
  }
  for (int i = 1; i <= 9; ++i) {
    sim.ScheduleAt(SimTime::FromNanos(i * 100'000),
                   [&k] { k.Trigger(TriggerSource::kTrap, 0); });
  }
  sim.RunUntil(SimTime::FromNanos(950'000));
  int near30 = 0, near100 = 0, other = 0;
  for (double v : intervals) {
    if (v > 29 && v < 31) {
      ++near30;
    } else if (v > 99 && v < 101) {
      ++near100;
    } else {
      ++other;
    }
  }
  EXPECT_EQ(near30, 29);
  EXPECT_EQ(near100, 8);
  EXPECT_EQ(other, 0);  // no cross-CPU 30/100-mixture artifacts
}

TEST(SmpTest, DispatchCostChargedToTriggeringCpu) {
  Simulator sim;
  Kernel k(&sim, TwoCpuCfg());
  // Both CPUs busy; the soft event is dispatched from CPU 1's trigger state.
  k.cpu(0).Submit(SimDuration::Millis(10));
  k.cpu(1).Submit(SimDuration::Millis(10));
  k.soft_timers().ScheduleSoftEvent(5, [](const SoftTimerFacility::FireInfo&) {});
  SimDuration cpu0_before = k.cpu(0).stolen_time();
  SimDuration cpu1_before = k.cpu(1).stolen_time();
  sim.RunUntil(SimTime::FromNanos(20'000));
  k.Trigger(TriggerSource::kSyscall, 1);
  SimDuration cpu0_delta = k.cpu(0).stolen_time() - cpu0_before;
  SimDuration cpu1_delta = k.cpu(1).stolen_time() - cpu1_before;
  // CPU 1 paid check + dispatch; CPU 0 paid at most backup-tick noise (none
  // in 20 us).
  EXPECT_GT(cpu1_delta, k.profile().soft_dispatch_cost);
  EXPECT_EQ(cpu0_delta, SimDuration::Zero());
}

TEST(SmpTest, SecondIdleCpuTakesOverPollingWhenFirstGoesBusy) {
  Simulator sim;
  Kernel::Config cfg = TwoCpuCfg();
  cfg.idle_behavior = Kernel::IdleBehavior::kHaltPolicy;
  Kernel k(&sim, cfg);
  // A periodic soft event keeps polling permitted forever.
  std::function<void(const SoftTimerFacility::FireInfo&)> resched =
      [&](const SoftTimerFacility::FireInfo&) { k.soft_timers().ScheduleSoftEvent(40, resched); };
  k.soft_timers().ScheduleSoftEvent(40, resched);
  sim.RunUntil(SimTime::Zero() + SimDuration::Millis(2));
  uint64_t fired_before = k.soft_timers().stats().dispatches;
  EXPECT_GT(fired_before, 20u);

  // Occupy CPU 0 (the likely poller) with a long job; the other idle CPU
  // must pick up polling and events keep firing at the same pace.
  k.cpu(0).Submit(SimDuration::Millis(4));
  sim.RunUntil(SimTime::Zero() + SimDuration::Millis(6));
  uint64_t fired_during = k.soft_timers().stats().dispatches - fired_before;
  EXPECT_GT(fired_during, 60u);  // ~100 expected over 4 ms at 40 us cadence
}

TEST(SmpTest, TriggerStatsAttributePerCpu) {
  Simulator sim;
  Kernel k(&sim, TwoCpuCfg());
  k.Trigger(TriggerSource::kSyscall, 0);
  k.Trigger(TriggerSource::kSyscall, 1);
  k.Trigger(TriggerSource::kTrap, 1);
  const Kernel::Stats& s = k.stats();
  ASSERT_EQ(s.triggers_by_source_by_cpu.size(), 2u);
  auto src = [](TriggerSource t) { return static_cast<size_t>(t); };
  EXPECT_EQ(s.triggers_by_source_by_cpu[0][src(TriggerSource::kSyscall)], 1u);
  EXPECT_EQ(s.triggers_by_source_by_cpu[1][src(TriggerSource::kSyscall)], 1u);
  EXPECT_EQ(s.triggers_by_source_by_cpu[1][src(TriggerSource::kTrap)], 1u);
  // The per-CPU attribution partitions the global per-source counts.
  for (size_t i = 0; i < kNumTriggerSources; ++i) {
    uint64_t sum = 0;
    for (const auto& per_cpu : s.triggers_by_source_by_cpu) {
      sum += per_cpu[i];
    }
    EXPECT_EQ(sum, s.triggers_by_source[i]);
  }
  // Reset restores an empty (but correctly sized) attribution table.
  k.ResetTriggerStats();
  ASSERT_EQ(k.stats().triggers_by_source_by_cpu.size(), 2u);
  EXPECT_EQ(k.stats().triggers_by_source_by_cpu[1][src(TriggerSource::kTrap)], 0u);
}

TEST(SmpTest, ResetTriggerStatsClearsEveryCpu) {
  Simulator sim;
  Kernel k(&sim, TwoCpuCfg());
  std::vector<double> intervals;
  k.set_trigger_observer(
      [&](TriggerSource, SimTime, SimDuration d) { intervals.push_back(d.ToMicros()); });
  k.Trigger(TriggerSource::kSyscall, 0);
  k.Trigger(TriggerSource::kSyscall, 1);
  k.ResetTriggerStats();
  // The first post-reset trigger on each CPU must not report a stale
  // interval spanning the reset.
  sim.RunUntil(SimTime::FromNanos(500'000));
  k.Trigger(TriggerSource::kSyscall, 0);
  k.Trigger(TriggerSource::kSyscall, 1);
  EXPECT_TRUE(intervals.empty());
}

}  // namespace
}  // namespace softtimer
