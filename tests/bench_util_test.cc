#include "bench/bench_util.h"

#include <gtest/gtest.h>

namespace softtimer {
namespace {

TEST(FmtTest, FormatsLikePrintf) {
  EXPECT_EQ(Fmt("%.2f", 3.14159), "3.14");
  EXPECT_EQ(Fmt("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(Fmt("plain"), "plain");
}

TEST(ParseBenchOptionsTest, Defaults) {
  char prog[] = "bench";
  char* argv[] = {prog};
  BenchOptions opt = ParseBenchOptions(1, argv);
  EXPECT_DOUBLE_EQ(opt.scale, 1.0);
  EXPECT_FALSE(opt.full);
  EXPECT_TRUE(opt.dump_dir.empty());
}

TEST(ParseBenchOptionsTest, FastFullScaleAndDump) {
  char prog[] = "bench";
  char fast[] = "--fast";
  char* argv1[] = {prog, fast};
  EXPECT_DOUBLE_EQ(ParseBenchOptions(2, argv1).scale, 0.3);

  char full[] = "--full";
  char* argv2[] = {prog, full};
  BenchOptions f = ParseBenchOptions(2, argv2);
  EXPECT_TRUE(f.full);
  EXPECT_GT(f.scale, 1.0);

  char scale[] = "--scale=0.25";
  char dump[] = "--dump-dir=/tmp/x";
  char* argv3[] = {prog, scale, dump};
  BenchOptions s = ParseBenchOptions(3, argv3);
  EXPECT_DOUBLE_EQ(s.scale, 0.25);
  EXPECT_EQ(s.dump_dir, "/tmp/x");
}

TEST(TextTableTest, PrintsAlignedColumns) {
  // Smoke: must not crash with ragged rows and renders every cell.
  TextTable t({"a", "long-header"});
  t.AddRow({"1", "2"});
  t.AddRow({"wide-cell"});  // ragged: second cell missing
  ::testing::internal::CaptureStdout();
  t.Print();
  std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("wide-cell"), std::string::npos);
  EXPECT_NE(out.find("+--"), std::string::npos);
}

}  // namespace
}  // namespace softtimer
