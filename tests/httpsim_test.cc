// Integration tests for the LAN web-server testbed: throughput plausibility,
// saturation behaviour, P-HTTP, pacing disciplines, and the interactions the
// paper's experiments rely on (hardware timers slow the server down; soft
// timers do not; polling beats interrupts).

#include <gtest/gtest.h>

#include "src/httpsim/http_testbed.h"

namespace softtimer {
namespace {

HttpTestbed::Config BaseCfg() {
  HttpTestbed::Config cfg;
  cfg.profile = MachineProfile::PentiumII300();
  return cfg;
}

TEST(HttpTestbedTest, ApacheServesAtCalibratedRate) {
  HttpTestbed bed(BaseCfg());
  auto r = bed.Measure(SimDuration::Millis(200), SimDuration::Millis(800));
  // Calibrated against Table 3's 774 conn/s (PII-300); allow slack.
  EXPECT_GT(r.conn_per_sec, 650);
  EXPECT_LT(r.conn_per_sec, 900);
  EXPECT_EQ(r.req_per_sec, r.conn_per_sec);  // one request per connection
}

TEST(HttpTestbedTest, FlashOutpacesApache) {
  HttpTestbed apache(BaseCfg());
  HttpTestbed::Config fc = BaseCfg();
  fc.server.kind = HttpServerModel::ServerKind::kFlash;
  HttpTestbed flash(fc);
  double a = apache.Measure(SimDuration::Millis(200), SimDuration::Millis(800)).conn_per_sec;
  double f = flash.Measure(SimDuration::Millis(200), SimDuration::Millis(800)).conn_per_sec;
  EXPECT_GT(f, a * 1.4);
}

TEST(HttpTestbedTest, ServerIsSaturatedNotClientLimited) {
  // Doubling the client population must not raise throughput much.
  HttpTestbed::Config few = BaseCfg();
  few.clients_per_link = 8;
  HttpTestbed::Config many = BaseCfg();
  many.clients_per_link = 16;
  double x1 = HttpTestbed(few).Measure(SimDuration::Millis(200), SimDuration::Millis(800)).conn_per_sec;
  double x2 = HttpTestbed(many).Measure(SimDuration::Millis(200), SimDuration::Millis(800)).conn_per_sec;
  EXPECT_LT(x2, x1 * 1.1);
}

TEST(HttpTestbedTest, PersistentHttpRaisesRequestThroughput) {
  HttpTestbed::Config cfg = BaseCfg();
  cfg.workload.persistent = true;
  cfg.workload.requests_per_connection = 10;
  HttpTestbed phttp(cfg);
  HttpTestbed http(BaseCfg());
  auto rp = phttp.Measure(SimDuration::Millis(200), SimDuration::Millis(800));
  auto rh = http.Measure(SimDuration::Millis(200), SimDuration::Millis(800));
  EXPECT_GT(rp.req_per_sec, rh.req_per_sec * 1.3);
  // Roughly 10 requests per completed connection.
  EXPECT_NEAR(rp.req_per_sec / std::max(rp.conn_per_sec, 1.0), 10.0, 2.0);
}

TEST(HttpTestbedTest, ExtraHardwareTimerReducesThroughputLinearly) {
  HttpTestbed base(BaseCfg());
  double x0 = base.Measure(SimDuration::Millis(200), SimDuration::Millis(800)).conn_per_sec;
  HttpTestbed loaded(BaseCfg());
  loaded.kernel().AddPeriodicHardwareTimer(50'000, SimDuration::Zero());
  double x1 = loaded.Measure(SimDuration::Millis(200), SimDuration::Millis(800)).conn_per_sec;
  double overhead = 1.0 - x1 / x0;
  // 50 kHz * 4.45 us ~= 22%.
  EXPECT_GT(overhead, 0.15);
  EXPECT_LT(overhead, 0.30);
}

TEST(HttpTestbedTest, SoftPacingCostsLittleHardPacingCostsALot) {
  HttpTestbed::Config soft = BaseCfg();
  soft.server.tx = HttpServerModel::TxDiscipline::kSoftPaced;
  HttpTestbed::Config hard = BaseCfg();
  hard.server.tx = HttpServerModel::TxDiscipline::kHardPaced;
  double x0 = HttpTestbed(BaseCfg()).Measure(SimDuration::Millis(200), SimDuration::Millis(800)).conn_per_sec;
  double xs = HttpTestbed(soft).Measure(SimDuration::Millis(200), SimDuration::Millis(800)).conn_per_sec;
  double xh = HttpTestbed(hard).Measure(SimDuration::Millis(200), SimDuration::Millis(800)).conn_per_sec;
  EXPECT_GT(xs / x0, 0.93);  // soft: a few percent
  EXPECT_LT(xh / x0, 0.85);  // hard: tens of percent
}

TEST(HttpTestbedTest, SoftPollingBeatsInterrupts) {
  HttpTestbed::Config polled = BaseCfg();
  SoftTimerNetPoller::Config pc;
  pc.governor.aggregation_quota = 5;
  pc.governor.min_interval_ticks = 10;
  pc.governor.max_interval_ticks = 4000;
  pc.governor.initial_interval_ticks = 50;
  polled.polling = pc;
  double xi = HttpTestbed(BaseCfg()).Measure(SimDuration::Millis(200), SimDuration::Millis(800)).conn_per_sec;
  double xp = HttpTestbed(polled).Measure(SimDuration::Millis(200), SimDuration::Millis(800)).conn_per_sec;
  EXPECT_GT(xp, xi * 1.02);
}

TEST(HttpTestbedTest, XeonProfileScalesThroughputUp) {
  HttpTestbed::Config xeon = BaseCfg();
  xeon.profile = MachineProfile::PentiumIII500Xeon();
  double x300 = HttpTestbed(BaseCfg()).Measure(SimDuration::Millis(200), SimDuration::Millis(800)).conn_per_sec;
  double x500 = HttpTestbed(xeon).Measure(SimDuration::Millis(200), SimDuration::Millis(800)).conn_per_sec;
  EXPECT_GT(x500, x300 * 1.3);
  EXPECT_LT(x500, x300 * 1.8);
}

TEST(HttpTestbedTest, ResponseTimesAreMeasured) {
  HttpTestbed bed(BaseCfg());
  auto r = bed.Measure(SimDuration::Millis(200), SimDuration::Millis(800));
  // 6 KB over Fast Ethernet plus server time: sub-10ms under this load.
  EXPECT_GT(r.mean_response_us, 500);
  EXPECT_LT(r.mean_response_us, 50'000);
}

TEST(HttpTestbedTest, DeterministicForSameSeed) {
  HttpTestbed a(BaseCfg());
  HttpTestbed b(BaseCfg());
  auto ra = a.Measure(SimDuration::Millis(200), SimDuration::Millis(500));
  auto rb = b.Measure(SimDuration::Millis(200), SimDuration::Millis(500));
  EXPECT_EQ(ra.conn_per_sec, rb.conn_per_sec);
  EXPECT_EQ(ra.triggers, rb.triggers);
}

TEST(HttpTestbedTest, DifferentSeedsStayClose) {
  HttpTestbed::Config c2 = BaseCfg();
  c2.rng_seed = 9999;
  auto ra = HttpTestbed(BaseCfg()).Measure(SimDuration::Millis(200), SimDuration::Millis(800));
  auto rb = HttpTestbed(c2).Measure(SimDuration::Millis(200), SimDuration::Millis(800));
  EXPECT_NEAR(rb.conn_per_sec / ra.conn_per_sec, 1.0, 0.08);
}

}  // namespace
}  // namespace softtimer
