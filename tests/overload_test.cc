// Overload behaviour: open-loop client arrivals, listen-backlog shedding,
// and the interrupt-vs-polling goodput ordering behind the receiver-livelock
// experiment.

#include <gtest/gtest.h>

#include "src/httpsim/http_testbed.h"

namespace softtimer {
namespace {

HttpTestbed::Config OverloadCfg(double conn_per_sec_per_link, bool polled) {
  HttpTestbed::Config cfg;
  cfg.profile = MachineProfile::PentiumII300();
  cfg.server.kind = HttpServerModel::ServerKind::kFlash;
  cfg.num_links = 3;
  cfg.clients_per_link = 256;
  cfg.open_loop_conn_per_sec_per_link = conn_per_sec_per_link;
  cfg.server.max_connections = 96;
  if (polled) {
    SoftTimerNetPoller::Config pc;
    pc.governor.aggregation_quota = 5;
    pc.governor.min_interval_ticks = 10;
    pc.governor.max_interval_ticks = 4000;
    pc.governor.initial_interval_ticks = 50;
    cfg.polling = pc;
  }
  return cfg;
}

TEST(OverloadTest, OpenLoopOffersTheConfiguredRate) {
  // Below capacity, goodput tracks the offered rate.
  HttpTestbed bed(OverloadCfg(200, false));  // 600 conn/s offered, cap ~1400
  auto r = bed.Measure(SimDuration::Millis(400), SimDuration::Seconds(1));
  EXPECT_NEAR(r.req_per_sec, 600, 90);
}

TEST(OverloadTest, ListenBacklogShedsSyns) {
  HttpTestbed bed(OverloadCfg(2'000, false));  // 6000 conn/s offered
  bed.Measure(SimDuration::Millis(300), SimDuration::Seconds(1));
  EXPECT_GT(bed.server().stats().syns_rejected, 1'000u);
}

TEST(OverloadTest, NoBacklogMeansNoShedding) {
  HttpTestbed::Config cfg = OverloadCfg(300, false);
  cfg.server.max_connections = 0;
  HttpTestbed bed(cfg);
  bed.Measure(SimDuration::Millis(300), SimDuration::Seconds(1));
  EXPECT_EQ(bed.server().stats().syns_rejected, 0u);
}

TEST(OverloadTest, PollingOutperformsInterruptsPastSaturation) {
  double offered = 2'500;  // per link; ~5x capacity
  HttpTestbed intr(OverloadCfg(offered, false));
  HttpTestbed poll(OverloadCfg(offered, true));
  double gi = intr.Measure(SimDuration::Millis(400), SimDuration::Seconds(1)).req_per_sec;
  double gp = poll.Measure(SimDuration::Millis(400), SimDuration::Seconds(1)).req_per_sec;
  EXPECT_GT(gp, gi * 1.1);
  // And the polled server stays near its unloaded capacity (~1400 req/s).
  EXPECT_GT(gp, 1'150);
}

TEST(OverloadTest, InterruptGoodputDegradesWithOfferedLoad) {
  double g1 = HttpTestbed(OverloadCfg(700, false))
                  .Measure(SimDuration::Millis(400), SimDuration::Seconds(1))
                  .req_per_sec;
  double g2 = HttpTestbed(OverloadCfg(4'000, false))
                  .Measure(SimDuration::Millis(400), SimDuration::Seconds(1))
                  .req_per_sec;
  EXPECT_LT(g2, g1);  // more offered, less done: the livelock direction
}

}  // namespace
}  // namespace softtimer
