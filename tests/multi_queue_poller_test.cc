// MultiQueuePoller: M queues on N cores through the QueueClaim protocol.
// Single-thread tests pin the scan/claim/govern semantics deterministically;
// the real-thread suites (cross-thread label / tsan preset) check claim
// exclusivity, packet conservation, and busy-owner absorption; the final
// tests drive the poller through ShardedRtHost::Config::queue_work. The
// protocol's interleaving-level properties are proven separately by
// tests/model_check_test.cc.

#include "src/net/multi_queue_poller.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/rt/sharded_rt_host.h"

namespace softtimer {
namespace {

PollGovernor::Config TestGovernor() {
  PollGovernor::Config g;
  g.aggregation_quota = 2.0;
  g.min_interval_ticks = 10;
  g.max_interval_ticks = 1'000;
  g.initial_interval_ticks = 100;
  return g;
}

// Yields a fixed packet count per drain (claim-protected state only).
class FixedQueue : public MultiQueuePoller::Queue {
 public:
  explicit FixedQueue(size_t per_poll) : per_poll_(per_poll) {}
  size_t Drain(size_t max_packets, uint64_t /*now_tick*/) override {
    ++drains_;
    return std::min(per_poll_, max_packets);
  }
  uint64_t drains() const { return drains_; }

 private:
  size_t per_poll_;
  uint64_t drains_ = 0;
};

// Open-loop producer/consumer queue that also detects concurrent drains
// (which the claim protocol must make impossible).
class ProducerQueue : public MultiQueuePoller::Queue {
 public:
  void Produce(uint64_t n) {
    // ordering: producer-side counter; the drain side only needs the count,
    // not any payload publication (there is none).
    available_.fetch_add(n, std::memory_order_relaxed);
  }
  size_t Drain(size_t max_packets, uint64_t /*now_tick*/) override {
    if (in_drain_.fetch_add(1, std::memory_order_acq_rel) != 0) {
      overlap_.store(true, std::memory_order_relaxed);
    }
    // ordering: see Produce.
    uint64_t avail = available_.load(std::memory_order_relaxed);
    uint64_t take = std::min<uint64_t>(avail, max_packets);
    available_.fetch_sub(take, std::memory_order_relaxed);
    drained_ += take;  // claim-protected plain state
    in_drain_.fetch_sub(1, std::memory_order_acq_rel);
    return static_cast<size_t>(take);
  }
  uint64_t drained() const { return drained_; }
  uint64_t available() const {
    return available_.load(std::memory_order_relaxed);
  }
  bool overlapped() const { return overlap_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> available_{0};
  std::atomic<int> in_drain_{0};
  std::atomic<bool> overlap_{false};
  uint64_t drained_ = 0;
};

TEST(MultiQueuePollerTest, ServesMostOverdueQueueFirst) {
  MultiQueuePoller::Config cfg;
  cfg.governor = TestGovernor();
  MultiQueuePoller poller(cfg);
  FixedQueue q0(1), q1(1), q2(1);
  poller.AddQueue(&q0);
  poller.AddQueue(&q1);
  poller.AddQueue(&q2);
  // Stagger the deadlines: q1 most overdue, then q2, then q0.
  ASSERT_TRUE(poller.ClaimQueueForTest(0, 0));
  poller.ReleaseQueueForTest(0, 20);
  ASSERT_TRUE(poller.ClaimQueueForTest(1, 0));
  poller.ReleaseQueueForTest(1, 5);
  ASSERT_TRUE(poller.ClaimQueueForTest(2, 0));
  poller.ReleaseQueueForTest(2, 10);

  EXPECT_EQ(poller.PollOnce(0, 100), 1u);
  EXPECT_EQ(poller.queue_stats(1).polls, 1u);
  EXPECT_EQ(poller.PollOnce(0, 100), 1u);
  EXPECT_EQ(poller.queue_stats(2).polls, 1u);
  EXPECT_EQ(poller.PollOnce(0, 100), 1u);
  EXPECT_EQ(poller.queue_stats(0).polls, 1u);
  // Everything rescheduled into the future now.
  EXPECT_EQ(poller.PollOnce(0, 100), 0u);
}

TEST(MultiQueuePollerTest, GateSkipsScanWhenNothingDue) {
  MultiQueuePoller::Config cfg;
  cfg.governor = TestGovernor();
  MultiQueuePoller poller(cfg);
  FixedQueue q0(0), q1(0);
  poller.AddQueue(&q0);
  poller.AddQueue(&q1);
  // Serve both (found=0 pushes intervals up); then one scan miss advances
  // the gate, and the call after that never scans.
  poller.PollOnce(0, 1'000);
  poller.PollOnce(0, 1'000);
  EXPECT_EQ(poller.PollOnce(0, 1'000), 0u);
  EXPECT_EQ(poller.core_stats(0).scan_misses, 1u);
  uint64_t due = poller.next_due_tick();
  EXPECT_GT(due, 1'000u);
  EXPECT_EQ(poller.PollOnce(0, 1'001), 0u);
  EXPECT_EQ(poller.core_stats(0).gate_skips, 1u);
  EXPECT_EQ(poller.core_stats(0).scan_misses, 1u);  // unchanged: no scan
  // At the gate tick the queues are served again.
  EXPECT_GT(due, 0u);
  poller.PollOnce(0, due);
  EXPECT_EQ(poller.queue_stats(0).polls + poller.queue_stats(1).polls, 3u);
}

TEST(MultiQueuePollerTest, ClaimedQueueIsSkippedThenAbsorbedAfterRelease) {
  MultiQueuePoller::Config cfg;
  cfg.governor = TestGovernor();
  MultiQueuePoller poller(cfg);
  FixedQueue q0(1), q1(1);
  poller.AddQueue(&q0);
  poller.AddQueue(&q1);
  // A "busy owner" (core 7) holds queue 0.
  ASSERT_TRUE(poller.ClaimQueueForTest(0, 7));
  // Core 0 can only serve queue 1, and a second call finds nothing
  // claimable even though queue 0 is due.
  EXPECT_EQ(poller.PollOnce(0, 50), 1u);
  EXPECT_EQ(poller.queue_stats(1).polls, 1u);
  EXPECT_EQ(poller.queue_stats(0).polls, 0u);
  EXPECT_EQ(poller.PollOnce(0, 50), 0u);
  // The gate must NOT have advanced past the claimed-but-due queue's
  // deadline (its stale deadline word holds 0, keeping the gate conservative).
  EXPECT_LE(poller.next_due_tick(), 50u);
  // Owner releases it still-due; core 0 absorbs it with no handoff message.
  poller.ReleaseQueueForTest(0, 0);
  EXPECT_EQ(poller.PollOnce(0, 50), 1u);
  EXPECT_EQ(poller.queue_stats(0).polls, 1u);
  EXPECT_EQ(poller.queue_stats(0).last_owner, 1u);  // core 0 = owner word 1
}

TEST(MultiQueuePollerTest, GovernorAdaptationStaysPerQueue) {
  MultiQueuePoller::Config cfg;
  cfg.governor = TestGovernor();
  cfg.max_per_poll = 64;
  MultiQueuePoller poller(cfg);
  FixedQueue busy(32), quiet(0);
  poller.AddQueue(&busy);
  poller.AddQueue(&quiet);
  uint64_t now = 0;
  for (int i = 0; i < 200; ++i) {
    now += 10;
    while (poller.PollOnce(0, now) != 0) {
    }
  }
  // The busy queue's interval collapses toward min (quota long exceeded);
  // the quiet queue's stretches toward max. One shared governor would
  // average them; per-queue governors must diverge.
  EXPECT_LT(poller.queue_stats(0).current_interval_ticks,
            poller.queue_stats(1).current_interval_ticks);
  EXPECT_EQ(poller.queue_stats(0).current_interval_ticks,
            cfg.governor.min_interval_ticks);
  EXPECT_GT(poller.queue_stats(1).current_interval_ticks,
            cfg.governor.initial_interval_ticks);
  // achieved_quota reflects the mix (busy queue found ~32/poll).
  EXPECT_GT(poller.achieved_quota(), 1.0);
}

TEST(MultiQueuePollerTest, ThreadsNeverOverlapAndConservePackets) {
  constexpr size_t kQueues = 8;
  constexpr size_t kCores = 3;
  MultiQueuePoller::Config cfg;
  cfg.governor = TestGovernor();
  cfg.governor.min_interval_ticks = 1;
  cfg.max_cores = kCores;
  MultiQueuePoller poller(cfg);
  std::vector<std::unique_ptr<ProducerQueue>> queues;
  for (size_t i = 0; i < kQueues; ++i) {
    queues.push_back(std::make_unique<ProducerQueue>());
    poller.AddQueue(queues.back().get());
  }
  std::atomic<uint64_t> tick{1};
  std::atomic<bool> stop{false};
  std::thread producer([&] {
    uint64_t produced = 0;
    while (!stop.load(std::memory_order_relaxed) && produced < 200'000) {
      for (auto& q : queues) {
        q->Produce(25);
        produced += 25;
      }
      tick.fetch_add(50, std::memory_order_relaxed);
      std::this_thread::yield();
    }
    stop.store(true, std::memory_order_relaxed);
  });
  std::vector<std::thread> cores;
  for (size_t c = 0; c < kCores; ++c) {
    cores.emplace_back([&, c] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (poller.PollOnce(static_cast<uint32_t>(c),
                            tick.load(std::memory_order_relaxed)) == 0) {
          std::this_thread::yield();
        }
      }
    });
  }
  producer.join();
  for (auto& t : cores) {
    t.join();
  }
  uint64_t drained = 0;
  uint64_t leftover = 0;
  for (size_t i = 0; i < kQueues; ++i) {
    EXPECT_FALSE(queues[i]->overlapped()) << "queue " << i << " double-polled";
    EXPECT_GT(poller.queue_stats(i).polls, 0u) << "queue " << i << " starved";
    drained += queues[i]->drained();
    leftover += queues[i]->available();
  }
  EXPECT_EQ(drained + leftover, 200'000u);
  EXPECT_EQ(poller.total_packets(), drained);
  uint64_t core_polls = 0;
  for (uint32_t c = 0; c < kCores; ++c) {
    core_polls += poller.core_stats(c).polls;
  }
  uint64_t queue_polls = 0;
  for (size_t i = 0; i < kQueues; ++i) {
    queue_polls += poller.queue_stats(i).polls;
  }
  EXPECT_EQ(core_polls, queue_polls);
}

TEST(MultiQueuePollerTest, IdleCoresAbsorbQueuesFromBusyOwner) {
  MultiQueuePoller::Config cfg;
  cfg.governor = TestGovernor();
  cfg.governor.min_interval_ticks = 1;
  cfg.max_cores = 2;
  MultiQueuePoller poller(cfg);
  ProducerQueue q0, q1, q2;
  poller.AddQueue(&q0);
  poller.AddQueue(&q1);
  poller.AddQueue(&q2);
  q0.Produce(1'000);
  q1.Produce(1'000);
  q2.Produce(1'000);
  // Core 1 "wedges" holding queue 0 (e.g. its shard got preempted mid-poll).
  ASSERT_TRUE(poller.ClaimQueueForTest(0, 1));
  // Core 0 alone drains the other two dry.
  uint64_t now = 1;
  for (int i = 0; i < 2'000 && (q1.available() || q2.available()); ++i) {
    poller.PollOnce(0, now);
    now += 2;
  }
  EXPECT_EQ(q1.available(), 0u);
  EXPECT_EQ(q2.available(), 0u);
  EXPECT_EQ(q0.drained(), 0u);
  // The wedged owner recovers and releases; core 0 absorbs queue 0 too.
  poller.ReleaseQueueForTest(0, 0);
  for (int i = 0; i < 2'000 && q0.available(); ++i) {
    poller.PollOnce(0, now);
    now += 2;
  }
  EXPECT_EQ(q0.available(), 0u);
  EXPECT_GT(poller.queue_stats(0).polls, 0u);
}

// --- ShardedRtHost integration ------------------------------------------

TEST(MultiQueuePollerHostTest, ShardsServeQueuesAndBoundSleepsByGate) {
  constexpr size_t kQueues = 6;
  MultiQueuePoller::Config pcfg;
  pcfg.governor = TestGovernor();
  pcfg.governor.min_interval_ticks = 50;       // 50 us at 1 MHz measure
  pcfg.governor.max_interval_ticks = 2'000;    // 2 ms
  pcfg.governor.initial_interval_ticks = 200;
  pcfg.max_cores = 4;
  MultiQueuePoller poller(pcfg);
  std::vector<std::unique_ptr<ProducerQueue>> queues;
  for (size_t i = 0; i < kQueues; ++i) {
    queues.push_back(std::make_unique<ProducerQueue>());
    poller.AddQueue(queues.back().get());
  }

  ShardedRtHost::Config cfg;
  cfg.num_shards = 2;
  cfg.interrupt_clock_hz = 50;  // 20 ms backup: queue service must not wait
                                // for it (the gate bounds the sleeps)
  cfg.queue_work.poll = [&](size_t shard, uint64_t now) {
    return poller.PollOnce(static_cast<uint32_t>(shard), now);
  };
  cfg.queue_work.next_due = [&] { return poller.next_due_tick(); };
  ShardedRtHost host(cfg);
  host.Start();

  std::atomic<bool> stop{false};
  std::thread producer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (auto& q : queues) {
        q->Produce(10);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true, std::memory_order_relaxed);
  producer.join();
  // Give the shards one more beat to drain the tail, then stop.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  host.Stop();

  uint64_t produced = 0;
  uint64_t drained = 0;
  for (size_t i = 0; i < kQueues; ++i) {
    EXPECT_FALSE(queues[i]->overlapped()) << "queue " << i;
    EXPECT_GT(poller.queue_stats(i).polls, 0u) << "queue " << i << " starved";
    drained += queues[i]->drained();
    produced += queues[i]->drained() + queues[i]->available();
  }
  EXPECT_GT(drained, 0u);
  // The 20 ms backup alone would allow ~15 service rounds in 300 ms; the
  // gate-bounded sleeps must do far better for 6 governed queues. Loose
  // bound for loaded CI: at least double the backup-only rate.
  uint64_t host_queue_polls = 0;
  for (size_t s = 0; s < host.num_shards(); ++s) {
    host_queue_polls += host.shard_loop_stats(s).queue_polls;
  }
  EXPECT_GT(host_queue_polls, 30u);
  // The shards kept up with the offered load (loose: CI shares one core
  // between producer, shards, and the test thread).
  EXPECT_GE(drained * 2, produced);
}

TEST(MultiQueuePollerHostTest, QuietQueuesDoNotBusySpinTheShards) {
  MultiQueuePoller::Config pcfg;
  pcfg.governor = TestGovernor();
  pcfg.governor.min_interval_ticks = 100;
  pcfg.governor.max_interval_ticks = 5'000;  // 5 ms cap at 1 MHz
  MultiQueuePoller poller(pcfg);
  FixedQueue q0(0), q1(0);
  poller.AddQueue(&q0);
  poller.AddQueue(&q1);

  ShardedRtHost::Config cfg;
  cfg.num_shards = 2;
  cfg.interrupt_clock_hz = 100;
  cfg.queue_work.poll = [&](size_t shard, uint64_t now) {
    return poller.PollOnce(static_cast<uint32_t>(shard), now);
  };
  cfg.queue_work.next_due = [&] { return poller.next_due_tick(); };
  ShardedRtHost host(cfg);
  host.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  host.Stop();
  // With no packets the governors stretch toward max_interval and the
  // shards sleep between queue deadlines: the loops must have parked (sleeps
  // accrue) instead of degenerating into a busy spin.
  uint64_t sleeps = 0;
  for (size_t s = 0; s < host.num_shards(); ++s) {
    sleeps += host.shard_loop_stats(s).sleeps;
  }
  EXPECT_GT(sleeps, 0u);
  EXPECT_GT(q0.drains(), 0u);  // still served, at the governed cadence
  EXPECT_GT(q1.drains(), 0u);
}

}  // namespace
}  // namespace softtimer
