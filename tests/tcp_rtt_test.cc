// Tests for the sender's Jacobson/Karn RTT estimation and adaptive RTO.

#include <gtest/gtest.h>

#include "src/machine/kernel.h"
#include "src/net/wan_path.h"
#include "src/tcp/tcp_receiver.h"
#include "src/tcp/tcp_sender.h"

namespace softtimer {
namespace {

struct RttHarness {
  explicit RttHarness(TcpSender::Config scfg, SimDuration one_way)
      : kernel(&sim, KernelCfg()), sender(&kernel, scfg), wan(&sim, WanCfg(one_way)),
        receiver(&sim, TcpReceiver::Config{}) {
    sender.set_packet_sender([this](Packet p) { wan.forward().Send(p); });
    wan.forward().set_receiver([this](const Packet& p) { receiver.OnSegment(p); });
    receiver.set_ack_sender([this](Packet p) { wan.reverse().Send(p); });
    wan.reverse().set_receiver([this](const Packet& p) { sender.OnAck(p); });
  }
  static Kernel::Config KernelCfg() {
    Kernel::Config kc;
    kc.profile = MachineProfile::PentiumII300();
    kc.idle_poll_fast_forward = true;
    return kc;
  }
  static WanPath::Config WanCfg(SimDuration one_way) {
    WanPath::Config wc;
    wc.bottleneck_bps = 100e6;
    wc.one_way_delay = one_way;
    return wc;
  }
  Simulator sim;
  Kernel kernel;
  TcpSender sender;
  WanPath wan;
  TcpReceiver receiver;
};

TEST(TcpRttTest, SrttConvergesToPathRtt) {
  TcpSender::Config cfg;
  cfg.initial_cwnd_segments = 2;
  RttHarness h(cfg, SimDuration::Millis(20));  // RTT = 40 ms
  h.sender.StartTransfer(500 * kDefaultMss);
  h.sim.RunUntil(SimTime::Zero() + SimDuration::Seconds(10));
  ASSERT_TRUE(h.sender.transfer_complete());
  EXPECT_NEAR(h.sender.srtt().ToMillis(), 40.0, 8.0);
  // RTO = SRTT + 4*RTTVAR, clamped at rto_min; on a jitter-free path it sits
  // near the clamp or slightly above SRTT.
  EXPECT_GE(h.sender.current_rto(), cfg.rto_min);
  EXPECT_LT(h.sender.current_rto(), SimDuration::Millis(400));
}

TEST(TcpRttTest, RtoScalesWithLongPaths) {
  TcpSender::Config cfg;
  cfg.initial_cwnd_segments = 2;
  RttHarness h(cfg, SimDuration::Millis(200));  // RTT = 400 ms
  h.sender.StartTransfer(100 * kDefaultMss);
  h.sim.RunUntil(SimTime::Zero() + SimDuration::Seconds(30));
  ASSERT_TRUE(h.sender.transfer_complete());
  EXPECT_NEAR(h.sender.srtt().ToMillis(), 400.0, 60.0);
  EXPECT_GT(h.sender.current_rto(), SimDuration::Millis(400));
}

TEST(TcpRttTest, DisabledAdaptiveRtoKeepsInitialValue) {
  TcpSender::Config cfg;
  cfg.adaptive_rto = false;
  cfg.rto_initial = SimDuration::Seconds(3);
  RttHarness h(cfg, SimDuration::Millis(20));
  h.sender.StartTransfer(50 * kDefaultMss);
  h.sim.RunUntil(SimTime::Zero() + SimDuration::Seconds(10));
  ASSERT_TRUE(h.sender.transfer_complete());
  EXPECT_EQ(h.sender.srtt(), SimDuration::Zero());
  EXPECT_EQ(h.sender.current_rto(), SimDuration::Seconds(3));
}

TEST(TcpRttTest, KarnRuleSkipsRetransmittedSamples) {
  // Drop one mid-transfer segment: the retransmission invalidates the probe,
  // and the estimator never absorbs the (RTT + recovery)-long ambiguity.
  TcpSender::Config cfg;
  cfg.initial_cwnd_segments = 4;
  cfg.rto_initial = SimDuration::Millis(500);
  RttHarness h(cfg, SimDuration::Millis(20));
  uint64_t sent = 0;
  h.sender.set_packet_sender([&](Packet p) {
    if (++sent == 20) {
      return;  // drop
    }
    h.wan.forward().Send(p);
  });
  h.sender.StartTransfer(200 * kDefaultMss);
  h.sim.RunUntil(SimTime::Zero() + SimDuration::Seconds(30));
  ASSERT_TRUE(h.sender.transfer_complete());
  EXPECT_GT(h.sender.stats().retransmits, 0u);
  // The estimate still tracks the true 40 ms RTT (no loss-inflated samples).
  EXPECT_NEAR(h.sender.srtt().ToMillis(), 40.0, 10.0);
}

TEST(TcpRttTest, AdaptiveRtoRecoversFasterThanConservativeInitial) {
  // Tail loss (the very last segment): only the RTO can recover it. With an
  // adaptive RTO near the 40 ms RTT, recovery is far quicker than the 1.5 s
  // initial value would allow.
  TcpSender::Config cfg;
  cfg.initial_cwnd_segments = 2;
  RttHarness h(cfg, SimDuration::Millis(20));
  uint64_t sent = 0;
  bool dropped = false;
  h.sender.set_packet_sender([&](Packet p) {
    ++sent;
    if (p.fin && !dropped) {
      dropped = true;
      return;  // drop the final segment once
    }
    h.wan.forward().Send(p);
  });
  SimTime done_at;
  h.sender.StartTransfer(100 * kDefaultMss, [&] { done_at = h.sim.now(); });
  h.sim.RunUntil(SimTime::Zero() + SimDuration::Seconds(30));
  ASSERT_TRUE(h.sender.transfer_complete());
  EXPECT_GE(h.sender.stats().timeouts, 1u);
  // Lossless transfer of 100 segs from cwnd 1 takes ~0.5 s here; the tail
  // RTO adds one adaptive timeout (~0.2-0.4 s), nowhere near +1.5 s.
  EXPECT_LT(done_at.ToSeconds(), 1.6);
}

}  // namespace
}  // namespace softtimer
