#include "src/machine/cpu.h"

#include <gtest/gtest.h>

#include <vector>

namespace softtimer {
namespace {

TEST(CpuTest, JobsRunFifoWithStatedDurations) {
  Simulator sim;
  Cpu cpu(&sim, 0);
  std::vector<int64_t> done_at;
  cpu.Submit(SimDuration::Micros(10), [&] { done_at.push_back(sim.now().nanos_since_origin()); });
  cpu.Submit(SimDuration::Micros(5), [&] { done_at.push_back(sim.now().nanos_since_origin()); });
  sim.RunUntilIdle();
  EXPECT_EQ(done_at, (std::vector<int64_t>{10'000, 15'000}));
  EXPECT_EQ(cpu.jobs_completed(), 2u);
  EXPECT_EQ(cpu.work_time().nanos(), 15'000);
}

TEST(CpuTest, OnStartRunsAtExecutionStart) {
  Simulator sim;
  Cpu cpu(&sim, 0);
  std::vector<int64_t> started_at;
  auto record_start = [&] { started_at.push_back(sim.now().nanos_since_origin()); };
  cpu.Submit(SimDuration::Micros(10), {}, record_start);
  cpu.Submit(SimDuration::Micros(10), {}, record_start);
  sim.RunUntilIdle();
  EXPECT_EQ(started_at, (std::vector<int64_t>{0, 10'000}));
}

TEST(CpuTest, StealPostponesCurrentJob) {
  Simulator sim;
  Cpu cpu(&sim, 0);
  SimTime done;
  cpu.Submit(SimDuration::Micros(10), [&] { done = sim.now(); });
  sim.RunUntil(SimTime::FromNanos(4'000));
  cpu.Steal(SimDuration::Micros(3));  // interrupt mid-job
  sim.RunUntilIdle();
  EXPECT_EQ(done.nanos_since_origin(), 13'000);
  EXPECT_EQ(cpu.stolen_time().nanos(), 3'000);
}

TEST(CpuTest, StealWhileIdleOnlyAccounts) {
  Simulator sim;
  Cpu cpu(&sim, 0);
  cpu.Steal(SimDuration::Micros(5));
  EXPECT_FALSE(cpu.busy());
  EXPECT_EQ(cpu.stolen_time().nanos(), 5'000);
  // A job submitted afterwards is not delayed.
  SimTime done;
  cpu.Submit(SimDuration::Micros(2), [&] { done = sim.now(); });
  sim.RunUntilIdle();
  EXPECT_EQ(done.nanos_since_origin(), 2'000);
}

TEST(CpuTest, MultipleStealsAccumulate) {
  Simulator sim;
  Cpu cpu(&sim, 0);
  SimTime done;
  cpu.Submit(SimDuration::Micros(10), [&] { done = sim.now(); });
  sim.RunUntil(SimTime::FromNanos(1'000));
  cpu.Steal(SimDuration::Micros(1));
  sim.RunUntil(SimTime::FromNanos(2'000));
  cpu.Steal(SimDuration::Micros(1));
  sim.RunUntilIdle();
  EXPECT_EQ(done.nanos_since_origin(), 12'000);
}

TEST(CpuTest, BusyTransitionsObserved) {
  Simulator sim;
  Cpu cpu(&sim, 0);
  std::vector<bool> transitions;
  cpu.set_state_observer([&](bool busy) { transitions.push_back(busy); });
  cpu.Submit(SimDuration::Micros(1));
  cpu.Submit(SimDuration::Micros(1));  // no extra transition while busy
  sim.RunUntilIdle();
  EXPECT_EQ(transitions, (std::vector<bool>{true, false}));
}

TEST(CpuTest, OnDoneMaySubmitMoreWorkWithoutIdleBlip) {
  Simulator sim;
  Cpu cpu(&sim, 0);
  std::vector<bool> transitions;
  cpu.set_state_observer([&](bool busy) { transitions.push_back(busy); });
  int chained = 0;
  cpu.Submit(SimDuration::Micros(1), [&] {
    if (++chained < 3) {
      cpu.Submit(SimDuration::Micros(1));
    }
  });
  sim.RunUntilIdle();
  // One busy at the start, one idle at the very end; no flapping between.
  EXPECT_EQ(transitions, (std::vector<bool>{true, false}));
}

TEST(CpuTest, ZeroLengthJobCompletes) {
  Simulator sim;
  Cpu cpu(&sim, 0);
  bool ran = false;
  cpu.Submit(SimDuration::Zero(), [&] { ran = true; });
  sim.RunUntilIdle();
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace softtimer
