// Exhaustive-interleaving verification of the repo's lock-free protocols
// (src/check/), in two directions:
//
//  1. The shipped ordering policies pass every explored schedule - SpscRing,
//     RemotePendingFlag (the DrainRemote publish/drain protocol), and
//     SleeperGate (the eventcount sleep/wake protocol) are instantiated
//     against ModelCheckerTraits exactly as production instantiates them
//     against StdAtomicsTraits, and the checker explores the bounded
//     schedule space to exhaustion.
//
//  2. Mutation self-checks - weakening one shipped ordering at a time must
//     make the checker reproduce the corresponding historical race. This is
//     what makes the green runs in (1) trustworthy: the harness provably
//     has the teeth to catch the bug classes it guards against. The
//     headline mutation is the PR 3 review fix: demoting the DrainRemote
//     seq_cst fence back to a plain release strands a published command.
//
// Which mutations are detectable and why (TSO + happens-before lens) is
// documented in DESIGN.md section 11. Notably, fence weakenings surface as
// value-level invariant failures (a stranded command, a lost wakeup), while
// acquire/release weakenings on the ring surface as happens-before data
// races on the slot bytes.

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/check/model_atomic.h"
#include "src/check/model_runtime.h"
#include "src/core/queue_claim.h"
#include "src/core/remote_pending.h"
#include "src/core/spsc_ring.h"
#include "src/rt/eventcount.h"

namespace softtimer {
namespace {

using check::Explore;
using check::ExploreResult;
using check::ModelAtomic;
using check::ModelCheckerTraits;
using check::ModelConfig;
using check::ModelExecution;

// --- seeded ordering mutations (never shipped) --------------------------
//
// Each derives from the shipped policy and weakens exactly one member; the
// primitive's protocol code is byte-for-byte the same.

struct WeakTailStoreOrdering : SpscRingOrdering {
  // Publish without release: the consumer can observe the counter bump
  // without the slot bytes it is supposed to cover.
  static constexpr std::memory_order kTailStore = std::memory_order_relaxed;
};

struct WeakHeadLoadOrdering : SpscRingOrdering {
  // Recycle without acquire: the producer can reuse a slot without being
  // ordered after the pop that freed it.
  static constexpr std::memory_order kHeadLoad = std::memory_order_relaxed;
};

struct WeakDrainFenceOrdering : RemotePendingOrdering {
  // The PR 3 bug, reintroduced: without the store-load fence the owner's
  // flag clear sits in its store buffer while the ring sweep runs ahead.
  static constexpr std::memory_order kDrainFence = std::memory_order_release;
};

struct WeakClaimReleaseOrdering : QueueClaimOrdering {
  // Claim handback without release: the next claimant's acquire CAS sees
  // claim==0 but inherits none of the owner's governor/drain-state writes.
  static constexpr std::memory_order kReleaseStore = std::memory_order_relaxed;
};

struct WeakSleepFenceOrdering : SleeperGateOrdering {
  // Sleeper announces sleep but the flag can stay buffered past its
  // pending recheck.
  static constexpr std::memory_order kSleepFence = std::memory_order_relaxed;
};

struct WeakWakeFenceOrdering : SleeperGateOrdering {
  // Waker publishes work but the publish can stay buffered past its
  // sleeping-flag read.
  static constexpr std::memory_order kWakeFence = std::memory_order_relaxed;
};

// --- SpscRing: publish direction (tail store / tail load pairing) -------
//
// One push, consumer attempts two pops. Tiny on purpose: the interesting
// schedules are "pop sees the counter bump before/after the slot write
// commits", and the weak-tail-store mutation must turn the latter into a
// detected race on the slot bytes.

template <typename Ordering>
ExploreResult ExploreRingPublish() {
  ModelConfig cfg;
  cfg.preemption_bound = 3;
  return Explore(cfg, [](ModelExecution& ex) {
    struct State {
      SpscRing<int, ModelCheckerTraits, Ordering> ring{4};
      std::vector<int> popped;
    };
    auto st = std::make_shared<State>();
    ex.Thread([st] {
      int v = 7;
      MODEL_CHECK(st->ring.TryPush(std::move(v)));
    });
    ex.Thread([st] {
      int out = 0;
      for (int attempt = 0; attempt < 2; ++attempt) {
        if (st->ring.TryPop(out)) {
          st->popped.push_back(out);
        }
      }
    });
    ex.Finally([st] {
      for (int v : st->popped) {
        MODEL_CHECK(v == 7);
      }
      MODEL_CHECK(st->popped.size() <= 1);
    });
  });
}

TEST(SpscRingModel, ShippedPublishOrderingPassesAllSchedules) {
  ExploreResult r = ExploreRingPublish<SpscRingOrdering>();
  EXPECT_TRUE(r.ok) << r.Summary();
  EXPECT_TRUE(r.exhausted) << r.Summary();
  EXPECT_EQ(r.horizon_hits, 0u) << r.Summary();
}

TEST(SpscRingModel, MutationWeakTailStoreIsCaughtAsSlotRace) {
  ExploreResult r = ExploreRingPublish<WeakTailStoreOrdering>();
  ASSERT_FALSE(r.ok) << r.Summary();
  EXPECT_NE(r.failure.find("data race"), std::string::npos) << r.Summary();
}

// --- SpscRing: recycle direction (head store / head load pairing) -------
//
// Capacity-1 ring so the second push must reuse the slot the pop just
// freed; the weak-head-load mutation lets that reuse race the pop.

template <typename Ordering>
ExploreResult ExploreRingRecycle() {
  ModelConfig cfg;
  cfg.preemption_bound = 3;
  return Explore(cfg, [](ModelExecution& ex) {
    struct State {
      SpscRing<int, ModelCheckerTraits, Ordering> ring{1};
      std::vector<int> popped;
      int pushed = 0;
    };
    auto st = std::make_shared<State>();
    ex.Thread([st] {
      int a = 1;
      MODEL_CHECK(st->ring.TryPush(std::move(a)));
      st->pushed = 1;
      int b = 2;
      if (st->ring.TryPush(std::move(b))) {  // needs the pop to have landed
        st->pushed = 2;
      }
    });
    ex.Thread([st] {
      int out = 0;
      for (int attempt = 0; attempt < 2; ++attempt) {
        if (st->ring.TryPop(out)) {
          st->popped.push_back(out);
        }
      }
    });
    ex.Finally([st] {
      MODEL_CHECK(st->popped.size() <= static_cast<size_t>(st->pushed));
      for (size_t i = 0; i < st->popped.size(); ++i) {
        MODEL_CHECK(st->popped[i] == static_cast<int>(i) + 1);  // FIFO
      }
    });
  });
}

TEST(SpscRingModel, ShippedRecycleOrderingPassesAllSchedules) {
  ExploreResult r = ExploreRingRecycle<SpscRingOrdering>();
  EXPECT_TRUE(r.ok) << r.Summary();
  EXPECT_TRUE(r.exhausted) << r.Summary();
}

TEST(SpscRingModel, MutationWeakHeadLoadIsCaughtAsSlotReuseRace) {
  ExploreResult r = ExploreRingRecycle<WeakHeadLoadOrdering>();
  ASSERT_FALSE(r.ok) << r.Summary();
  EXPECT_NE(r.failure.find("data race"), std::string::npos) << r.Summary();
}

// Wraparound under a full schedule sweep: capacity-2 ring, three pushes, so
// the third push laps the buffer and reuses slot 0. Shipped orderings only;
// verifies FIFO order and per-slot race-freedom across the wrap.
TEST(SpscRingModel, ShippedWraparoundKeepsFifoUnderAllSchedules) {
  ModelConfig cfg;
  cfg.preemption_bound = 2;  // three pushes x three pops: keep it tractable
  ExploreResult r = Explore(cfg, [](ModelExecution& ex) {
    struct State {
      SpscRing<int, ModelCheckerTraits> ring{2};
      std::vector<int> popped;
      int pushed = 0;
    };
    auto st = std::make_shared<State>();
    ex.Thread([st] {
      for (int v = 1; v <= 3; ++v) {
        int tmp = v;
        if (!st->ring.TryPush(std::move(tmp))) {
          break;  // full is a legal outcome; FIFO of what landed still holds
        }
        st->pushed = v;
      }
    });
    ex.Thread([st] {
      int out = 0;
      for (int attempt = 0; attempt < 3; ++attempt) {
        if (st->ring.TryPop(out)) {
          st->popped.push_back(out);
        }
      }
    });
    ex.Finally([st] {
      MODEL_CHECK(st->popped.size() <= static_cast<size_t>(st->pushed));
      for (size_t i = 0; i < st->popped.size(); ++i) {
        MODEL_CHECK(st->popped[i] == static_cast<int>(i) + 1);
      }
    });
  });
  EXPECT_TRUE(r.ok) << r.Summary();
  EXPECT_TRUE(r.exhausted) << r.Summary();
}

// --- RemotePendingFlag: the DrainRemote publish/drain protocol ----------
//
// Mirrors ShardedSoftTimerRuntime: a producer pushes two commands into its
// ring, raising the flag after each; the shard owner runs one trigger-check
// drain pass (poll, clear+fence, bounded sweep, re-raise on leftovers).
// Liveness handoff invariant: afterwards, either every command was consumed
// or the flag is still raised so the next check will drain the rest. The
// weak-fence mutation reintroduces the PR 3 stranding: the sweep misses a
// command AND the owner's buffered clear overwrites the producer's publish.

template <typename Ordering>
ExploreResult ExploreRemotePending() {
  ModelConfig cfg;
  cfg.preemption_bound = 2;  // the stranding needs only one preemption
  return Explore(cfg, [](ModelExecution& ex) {
    struct State {
      SpscRing<int, ModelCheckerTraits> ring{2};
      RemotePendingFlag<ModelCheckerTraits, Ordering> pending;
      int consumed = 0;
    };
    auto st = std::make_shared<State>();
    ex.Thread([st] {  // producer: two push+publish rounds
      for (int v = 1; v <= 2; ++v) {
        int cmd = v;
        MODEL_CHECK(st->ring.TryPush(std::move(cmd)));
        st->pending.Publish();
      }
    });
    ex.Thread([st] {  // shard owner: one DrainRemote-shaped pass
      if (!st->pending.AnyPendingRelaxed()) {
        return;  // nothing observed; producer's publish stays pending
      }
      st->pending.BeginDrain();
      int cmd = 0;
      size_t budget = st->ring.capacity();
      while (budget-- > 0 && st->ring.TryPop(cmd)) {
        ++st->consumed;
      }
      if (!st->ring.EmptyRelaxed()) {
        st->pending.Reraise();
      }
    });
    ex.Finally([st] {
      // Every published command is either consumed or still flagged for the
      // next drain - a stranded command (in the ring, flag down) is the bug.
      MODEL_CHECK(st->consumed == 2 || st->pending.AnyPendingRelaxed());
    });
  });
}

TEST(RemotePendingModel, ShippedOrderingNeverStrandsACommand) {
  ExploreResult r = ExploreRemotePending<RemotePendingOrdering>();
  EXPECT_TRUE(r.ok) << r.Summary();
  EXPECT_TRUE(r.exhausted) << r.Summary();
}

TEST(RemotePendingModel, MutationWeakDrainFenceStrandsACommand) {
  ExploreResult r = ExploreRemotePending<WeakDrainFenceOrdering>();
  ASSERT_FALSE(r.ok) << r.Summary();
  EXPECT_NE(r.failure.find("MODEL_CHECK"), std::string::npos) << r.Summary();
}

// A reported failing schedule must replay deterministically to the same
// violation - that is what makes a checker failure debuggable.
TEST(RemotePendingModel, FailingScheduleReplaysDeterministically) {
  ExploreResult first = ExploreRemotePending<WeakDrainFenceOrdering>();
  ASSERT_FALSE(first.ok) << first.Summary();

  ModelConfig cfg;
  cfg.preemption_bound = 2;
  cfg.replay = first.failing_schedule;
  // Re-run only the failing schedule: one execution, same violation.
  ExploreResult replayed = Explore(cfg, [](ModelExecution& ex) {
    struct State {
      SpscRing<int, ModelCheckerTraits> ring{2};
      RemotePendingFlag<ModelCheckerTraits, WeakDrainFenceOrdering> pending;
      int consumed = 0;
    };
    auto st = std::make_shared<State>();
    ex.Thread([st] {
      for (int v = 1; v <= 2; ++v) {
        int cmd = v;
        MODEL_CHECK(st->ring.TryPush(std::move(cmd)));
        st->pending.Publish();
      }
    });
    ex.Thread([st] {
      if (!st->pending.AnyPendingRelaxed()) {
        return;
      }
      st->pending.BeginDrain();
      int cmd = 0;
      size_t budget = st->ring.capacity();
      while (budget-- > 0 && st->ring.TryPop(cmd)) {
        ++st->consumed;
      }
      if (!st->ring.EmptyRelaxed()) {
        st->pending.Reraise();
      }
    });
    ex.Finally([st] {
      MODEL_CHECK(st->consumed == 2 || st->pending.AnyPendingRelaxed());
    });
  });
  EXPECT_FALSE(replayed.ok) << replayed.Summary();
  EXPECT_EQ(replayed.executions, 1u) << replayed.Summary();
  EXPECT_EQ(replayed.failure, first.failure);
}

// --- SleeperGate: the eventcount sleep/wake protocol --------------------
//
// Mirrors ShardedRtHost: the sleeper announces sleep then rechecks the
// pending flag; the waker publishes work (a relaxed store - the gate's own
// fence must order it) then checks whether a sleeper needs a notify.
// Invariant: a sleeper that decided to block was notified; "would sleep
// unnotified" is the lost-wakeup the fences exist to prevent.

template <typename Ordering>
ExploreResult ExploreSleeperGate() {
  ModelConfig cfg;
  cfg.preemption_bound = 3;
  return Explore(cfg, [](ModelExecution& ex) {
    struct State {
      SleeperGate<ModelCheckerTraits, Ordering> gate;
      ModelAtomic<uint32_t> pending{0};
      bool would_sleep = false;
      bool notified = false;
    };
    auto st = std::make_shared<State>();
    ex.Thread([st] {  // sleeper (shard loop entering SleepAndDispatch)
      st->gate.PrepareSleep();
      // ordering: the recheck itself is relaxed in production too - the
      // gate's kSleepFence is what orders it after the sleeping store.
      if (st->pending.load(std::memory_order_relaxed) == 0) {
        // Enters cv.wait: the flag stays up until a notify (or the backup
        // timeout) ends the wait, so FinishSleep belongs to a later instant
        // than any waker this execution models - eliding it is what keeps
        // "waker saw sleeping==1" equivalent to "notify delivered".
        st->would_sleep = true;
      } else {
        st->gate.FinishSleep();  // decided not to block after all
      }
    });
    ex.Thread([st] {  // waker (producer after a cross-core publish)
      st->pending.store(1, std::memory_order_relaxed);
      if (st->gate.SleeperVisible()) {
        st->notified = true;  // would take the mutex and notify here
      }
    });
    ex.Finally([st] {
      MODEL_CHECK(!(st->would_sleep && !st->notified));  // no lost wakeup
    });
  });
}

TEST(SleeperGateModel, ShippedOrderingNeverLosesAWakeup) {
  ExploreResult r = ExploreSleeperGate<SleeperGateOrdering>();
  EXPECT_TRUE(r.ok) << r.Summary();
  EXPECT_TRUE(r.exhausted) << r.Summary();
}

TEST(SleeperGateModel, MutationWeakSleepFenceLosesAWakeup) {
  ExploreResult r = ExploreSleeperGate<WeakSleepFenceOrdering>();
  ASSERT_FALSE(r.ok) << r.Summary();
  EXPECT_NE(r.failure.find("MODEL_CHECK"), std::string::npos) << r.Summary();
}

TEST(SleeperGateModel, MutationWeakWakeFenceLosesAWakeup) {
  ExploreResult r = ExploreSleeperGate<WeakWakeFenceOrdering>();
  ASSERT_FALSE(r.ok) << r.Summary();
  EXPECT_NE(r.failure.find("MODEL_CHECK"), std::string::npos) << r.Summary();
}

// --- QueueClaim / NextDueGate: the M-on-N queue claim protocol ----------
//
// Mirrors MultiQueuePoller::PollOnce: two cores race a claim/poll/release
// cycle on one queue. The claim word is the queue's lock - its release
// store / acquire CAS pairing must publish the owner's plain governor-state
// writes (modeled as one instrumented non-atomic counter) to the next
// claimant. Exclusivity plus publication together are "no queue is ever
// double-polled": the checker's race detector proves no two cycles touch
// the governor bytes concurrently, and the final count proves every
// successful claim ran exactly one poll.

template <typename Ordering>
ExploreResult ExploreQueueClaimCycle() {
  ModelConfig cfg;
  cfg.preemption_bound = 3;
  return Explore(cfg, [](ModelExecution& ex) {
    struct State {
      QueueClaim<ModelCheckerTraits, Ordering> q;
      uint32_t governor_state = 0;  // claim-protected plain state
      int claims = 0;               // per-thread tallies, summed in Finally
      int claims2 = 0;
    };
    auto st = std::make_shared<State>();
    auto cycle = [st](uint32_t core, int* claims) {
      if (st->q.TryClaim(core)) {
        // The poll: mutate claim-protected state exactly like PollOnce
        // mutates the queue's governor and last-poll tick.
        ModelCheckerTraits::OnNonAtomicRead(&st->governor_state);
        uint32_t v = st->governor_state;
        ModelCheckerTraits::OnNonAtomicWrite(&st->governor_state);
        st->governor_state = v + 1;
        ++*claims;
        st->q.Release(/*next_due_tick=*/10 + core);
      }
    };
    ex.Thread([st, cycle] { cycle(0, &st->claims); });
    ex.Thread([st, cycle] { cycle(1, &st->claims2); });
    ex.Finally([st] {
      // Every successful claim polled exactly once (and the race detector
      // vouches that none of those polls overlapped).
      MODEL_CHECK(st->governor_state ==
                  static_cast<uint32_t>(st->claims + st->claims2));
      MODEL_CHECK(st->claims + st->claims2 >= 1);  // someone always wins
    });
  });
}

TEST(QueueClaimModel, ShippedOrderingNeverDoublePollsAQueue) {
  ExploreResult r = ExploreQueueClaimCycle<QueueClaimOrdering>();
  EXPECT_TRUE(r.ok) << r.Summary();
  EXPECT_TRUE(r.exhausted) << r.Summary();
}

TEST(QueueClaimModel, MutationWeakReleaseStoreIsCaughtAsGovernorRace) {
  ExploreResult r = ExploreQueueClaimCycle<WeakClaimReleaseOrdering>();
  ASSERT_FALSE(r.ok) << r.Summary();
  EXPECT_NE(r.failure.find("data race"), std::string::npos) << r.Summary();
}

// --- NextDueGate: the no-stranded-queue invariant ------------------------
//
// The gate may only advance to a value that is <= every queue's true
// next-due tick, else a due queue sleeps behind a future gate until the
// backup interrupt (stranded). The shipped scan rule folds EVERY queue's
// peeked deadline into the advance min - claimed queues included, because
// their stale deadline word undershoots whatever the owner will publish.
// The "weakened" variant here is the tempting wrong rule (skip claimed
// queues: "the owner will fold its own deadline in when it releases"),
// which strands the queue whenever the owner's release does NOT lower the
// gate - e.g. MultiQueuePoller's stale-claim handback, modeled by thread A.

template <bool kIncludeClaimedInAdvanceMin>
ExploreResult ExploreGateAdvance() {
  ModelConfig cfg;
  cfg.preemption_bound = 3;
  return Explore(cfg, [](ModelExecution& ex) {
    struct State {
      QueueClaim<ModelCheckerTraits> q;
      NextDueGate<ModelCheckerTraits> gate;
    };
    auto st = std::make_shared<State>();
    // Setup (controller, pre-execution): the queue was served earlier and
    // its next poll is due at tick 10; the gate never rose above 0.
    st->q.Release(10);
    constexpr uint64_t kNow = 5;
    ex.Thread([st] {  // core A: claims, finds the deadline in the future
                      // (stale claim), hands back untouched - NO gate fold.
      if (st->q.TryClaim(0)) {
        uint64_t exact = st->q.deadline_owned();
        if (exact > kNow) {
          st->q.Release(exact);
        } else {
          st->q.Release(30);
          st->gate.Lower(30);
        }
      }
    });
    ex.Thread([st] {  // core B: scan-miss path of PollOnce
      uint64_t observed = st->gate.Load();
      if (observed > kNow) {
        return;  // gate skip
      }
      uint64_t d = st->q.deadline_peek();
      bool claimed = st->q.claimed_peek();
      if (d <= kNow && !claimed) {
        return;  // would claim+poll; not this model's concern
      }
      uint64_t min_seen = d;
      if (claimed && !kIncludeClaimedInAdvanceMin) {
        min_seen = UINT64_MAX;  // the weakened rule: ignore claimed queues
      }
      st->gate.TryAdvance(observed, min_seen);
    });
    ex.Finally([st] {
      // gate <= the queue's next-due tick, in every interleaving.
      MODEL_CHECK(st->gate.Load() <= st->q.deadline_peek());
    });
  });
}

TEST(NextDueGateModel, ShippedAdvanceRuleNeverStrandsADueQueue) {
  ExploreResult r = ExploreGateAdvance<true>();
  EXPECT_TRUE(r.ok) << r.Summary();
  EXPECT_TRUE(r.exhausted) << r.Summary();
}

TEST(NextDueGateModel, SkippingClaimedQueuesInAdvanceMinStrandsAQueue) {
  ExploreResult r = ExploreGateAdvance<false>();
  ASSERT_FALSE(r.ok) << r.Summary();
  EXPECT_NE(r.failure.find("MODEL_CHECK"), std::string::npos) << r.Summary();
}

// --- checker self-diagnostics -------------------------------------------

// Store buffering is actually modeled: the textbook Dekker litmus (two
// relaxed stores, two relaxed loads) must exhibit the r1==0 && r2==0
// outcome that no interleaving-only scheduler can produce.
TEST(ModelRuntimeSelf, StoreBufferingLitmusIsObservable) {
  ModelConfig cfg;
  cfg.preemption_bound = 3;
  ExploreResult r = Explore(cfg, [](ModelExecution& ex) {
    struct State {
      ModelAtomic<uint32_t> x{0};
      ModelAtomic<uint32_t> y{0};
      uint32_t r1 = 1;
      uint32_t r2 = 1;
    };
    auto st = std::make_shared<State>();
    ex.Thread([st] {
      st->x.store(1, std::memory_order_relaxed);
      st->r1 = st->y.load(std::memory_order_relaxed);
    });
    ex.Thread([st] {
      st->y.store(1, std::memory_order_relaxed);
      st->r2 = st->x.load(std::memory_order_relaxed);
    });
    ex.Finally([st] {
      // Fail on the weak outcome so the search surfaces it as a violation;
      // the test asserts the "failure" IS reachable.
      MODEL_CHECK(!(st->r1 == 0 && st->r2 == 0));
    });
  });
  ASSERT_FALSE(r.ok) << "store-buffering outcome was never explored: "
                     << r.Summary();
}

// ...and seq_cst fences forbid it, so the same litmus with fences between
// store and load passes exhaustively.
TEST(ModelRuntimeSelf, SeqCstFencesForbidStoreBufferingOutcome) {
  ModelConfig cfg;
  cfg.preemption_bound = 3;
  ExploreResult r = Explore(cfg, [](ModelExecution& ex) {
    struct State {
      ModelAtomic<uint32_t> x{0};
      ModelAtomic<uint32_t> y{0};
      uint32_t r1 = 1;
      uint32_t r2 = 1;
    };
    auto st = std::make_shared<State>();
    ex.Thread([st] {
      st->x.store(1, std::memory_order_relaxed);
      ModelCheckerTraits::ThreadFence(std::memory_order_seq_cst);
      st->r1 = st->y.load(std::memory_order_relaxed);
    });
    ex.Thread([st] {
      st->y.store(1, std::memory_order_relaxed);
      ModelCheckerTraits::ThreadFence(std::memory_order_seq_cst);
      st->r2 = st->x.load(std::memory_order_relaxed);
    });
    ex.Finally([st] {
      MODEL_CHECK(!(st->r1 == 0 && st->r2 == 0));
    });
  });
  EXPECT_TRUE(r.ok) << r.Summary();
  EXPECT_TRUE(r.exhausted) << r.Summary();
}

}  // namespace
}  // namespace softtimer
