// Edge-case coverage for SpscRing (src/core/spsc_ring.h): capacity
// rounding, index wraparound across the counter/mask boundary, the
// full-ring rejection contract (the value must be left intact for the
// caller to retry or destroy), slot-recycling resource drops, and
// destruction with undrained elements. The cross-thread protocol itself is
// verified exhaustively by tests/model_check_test.cc; this file pins the
// single-threaded semantics those model tests assume.

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/spsc_ring.h"

namespace softtimer {
namespace {

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
}

TEST(SpscRingTest, FifoAcrossManyWraparounds) {
  SpscRing<int> ring(4);
  int out = 0;
  int next_push = 0;
  int next_pop = 0;
  // Interleave bursts so head/tail lap the 4-slot buffer many times and
  // every slot index gets reused in both roles.
  for (int round = 0; round < 64; ++round) {
    int burst = (round % 4) + 1;
    for (int i = 0; i < burst; ++i) {
      int v = next_push;
      ASSERT_TRUE(ring.TryPush(std::move(v)));
      ++next_push;
    }
    for (int i = 0; i < burst; ++i) {
      ASSERT_TRUE(ring.TryPop(out));
      EXPECT_EQ(out, next_pop);
      ++next_pop;
    }
  }
  EXPECT_TRUE(ring.EmptyRelaxed());
  EXPECT_FALSE(ring.TryPop(out));
}

TEST(SpscRingTest, FullRingRejectsAndLeavesValueIntact) {
  SpscRing<std::vector<int>> ring(2);
  ASSERT_TRUE(ring.TryPush(std::vector<int>{1}));
  ASSERT_TRUE(ring.TryPush(std::vector<int>{2}));
  // The rejected value must not be consumed: the caller still owns it and
  // may retry, reroute, or destroy it (ShardedSoftTimerRuntime counts the
  // reject and returns the handler to the producer).
  std::vector<int> v{3, 4, 5};
  EXPECT_FALSE(ring.TryPush(std::move(v)));
  EXPECT_EQ(v.size(), 3u);

  std::vector<int> out;
  ASSERT_TRUE(ring.TryPop(out));
  EXPECT_EQ(out, (std::vector<int>{1}));
  EXPECT_TRUE(ring.TryPush(std::move(v)));
  EXPECT_TRUE(v.empty());  // accepted push consumes the value
}

TEST(SpscRingTest, PopResetsSlotSoResourcesDropEagerly) {
  // A popped slot must not keep the moved-from payload's resources alive
  // until the slot is overwritten a lap later: TryPop reassigns T{}.
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> watch = token;
  SpscRing<std::shared_ptr<int>> ring(4);
  ASSERT_TRUE(ring.TryPush(std::move(token)));
  {
    std::shared_ptr<int> out;
    ASSERT_TRUE(ring.TryPop(out));
    ASSERT_TRUE(out);
    EXPECT_EQ(*out, 42);
  }
  // `out` died and the slot was reset: nothing references the payload.
  EXPECT_TRUE(watch.expired());
}

TEST(SpscRingTest, DestructionDestroysUndrainedElements) {
  // Undrained commands die with their ring (the runtime's documented
  // shutdown contract): destruction runs, nothing leaks, nothing "fires".
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  {
    SpscRing<std::shared_ptr<int>> ring(2);
    ASSERT_TRUE(ring.TryPush(std::move(token)));
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(SpscRingTest, EmptyRelaxedTracksOccupancy) {
  SpscRing<int> ring(2);
  EXPECT_TRUE(ring.EmptyRelaxed());
  ASSERT_TRUE(ring.TryPush(1));
  EXPECT_FALSE(ring.EmptyRelaxed());
  int out = 0;
  ASSERT_TRUE(ring.TryPop(out));
  EXPECT_TRUE(ring.EmptyRelaxed());
}

TEST(SpscRingTest, CapacityOneRingAlternatesPushPop) {
  SpscRing<int> ring(1);
  int out = 0;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.TryPush(int{i}));
    EXPECT_FALSE(ring.TryPush(int{99}));  // full at one element
    ASSERT_TRUE(ring.TryPop(out));
    EXPECT_EQ(out, i);
    EXPECT_FALSE(ring.TryPop(out));  // empty again
  }
}

}  // namespace
}  // namespace softtimer
