#include "src/stats/csv_writer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace softtimer {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(CsvWriterTest, WritesHeaderAndRows) {
  std::string path = TempPath("basic.csv");
  {
    CsvWriter w(path);
    ASSERT_TRUE(w.ok());
    w.WriteHeader({"a", "b"});
    w.WriteRow(std::vector<double>{1.5, 2.0});
    w.WriteRow(std::vector<std::string>{"x", "y"});
  }
  EXPECT_EQ(ReadAll(path), "a,b\n1.5,2\nx,y\n");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, UnopenableFileReportsNotOk) {
  CsvWriter w("/nonexistent-dir-zzz/file.csv");
  EXPECT_FALSE(w.ok());
  w.WriteRow(std::vector<double>{1.0});  // must not crash
}

TEST(CsvWriterTest, CdfDumpIsMonotone) {
  SampleSet s;
  for (int i = 0; i < 500; ++i) {
    s.Add((i * 31) % 97);
  }
  std::string path = TempPath("cdf.csv");
  ASSERT_TRUE(WriteCdfCsv(path, s, 50));
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "x,fraction");
  double prev_x = -1, prev_f = -1;
  std::string line;
  int rows = 0;
  while (std::getline(in, line)) {
    double x, f;
    ASSERT_EQ(std::sscanf(line.c_str(), "%lf,%lf", &x, &f), 2);
    EXPECT_GE(x, prev_x);
    EXPECT_GT(f, prev_f);
    prev_x = x;
    prev_f = f;
    ++rows;
  }
  EXPECT_EQ(rows, 50);
  EXPECT_DOUBLE_EQ(prev_f, 1.0);
  std::remove(path.c_str());
}

TEST(CsvWriterTest, WindowedMediansDump) {
  WindowedMedian w(SimTime::Zero(), SimDuration::Millis(1));
  w.Add(SimTime::FromNanos(100'000), 5);
  w.Add(SimTime::FromNanos(1'200'000), 9);
  std::string path = TempPath("win.csv");
  ASSERT_TRUE(WriteWindowedMediansCsv(path, w.Finish()));
  std::string content = ReadAll(path);
  EXPECT_EQ(content, "window_start_us,median_us,samples\n0,5,1\n1000,9,1\n");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace softtimer
