// Cross-backend equivalence: the soft-timer facility's observable behaviour
// (which events fire, when, from which trigger source) must be identical for
// every TimerQueue implementation, because the data structure is an
// implementation detail. Runs the same deterministic workload + event load
// on each backend and compares the full dispatch trace.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/machine/kernel.h"
#include "src/workload/trigger_workload.h"

namespace softtimer {
namespace {

struct Dispatch {
  uint64_t scheduled;
  uint64_t fired;
  TriggerSource source;
  bool operator==(const Dispatch&) const = default;
};

std::vector<Dispatch> RunBackend(TimerQueueKind kind) {
  Simulator sim;
  Kernel::Config kc;
  kc.profile = MachineProfile::PentiumII300();
  kc.queue_kind = kind;
  Kernel kernel(&sim, kc);

  // Deterministic trigger-state churn.
  Rng rng(11);
  std::function<void()> churn = [&] {
    kernel.KernelOp(TriggerSource::kSyscall,
                    rng.LogNormalDuration(SimDuration::Micros(20), 0.7), churn);
  };
  churn();

  std::vector<Dispatch> trace;
  // Deterministic scheduling load: periodic rescheduling events at several
  // cadences plus randomized one-shots.
  Rng sched_rng(23);
  std::function<void()> one_shots = [&] {
    uint64_t t = sched_rng.UniformU64(1'500);
    kernel.soft_timers().ScheduleSoftEvent(t, [&](const SoftTimerFacility::FireInfo& info) {
      trace.push_back({info.scheduled_tick, info.fired_tick, info.source});
    });
    sim.ScheduleAfter(SimDuration::Micros(90), one_shots);
  };
  one_shots();
  // `keep` owns the recurring handlers; the lambdas capture a raw pointer to
  // their own std::function (capturing the shared_ptr would be a refcount
  // cycle and leak).
  std::vector<std::shared_ptr<std::function<void(const SoftTimerFacility::FireInfo&)>>> keep;
  for (uint64_t cadence : {50ULL, 333ULL, 2'000ULL}) {
    auto periodic = std::make_shared<std::function<void(const SoftTimerFacility::FireInfo&)>>();
    auto* fn = periodic.get();
    *periodic = [&trace, &kernel, cadence, fn](const SoftTimerFacility::FireInfo& info) {
      trace.push_back({info.scheduled_tick, info.fired_tick, info.source});
      kernel.soft_timers().ScheduleSoftEvent(cadence, *fn);
    };
    keep.push_back(periodic);
    kernel.soft_timers().ScheduleSoftEvent(cadence, *periodic);
  }

  sim.RunUntil(SimTime::Zero() + SimDuration::Millis(200));
  return trace;
}

TEST(BackendEquivalenceTest, IdenticalDispatchTracesAcrossAllTimerQueues) {
  std::vector<Dispatch> reference = RunBackend(TimerQueueKind::kHeap);
  ASSERT_GT(reference.size(), 3'000u);
  for (TimerQueueKind kind : {TimerQueueKind::kHashedWheel,
                              TimerQueueKind::kHierarchicalWheel,
                              TimerQueueKind::kCalloutList,
                              TimerQueueKind::kGroupedSorting}) {
    std::vector<Dispatch> trace = RunBackend(kind);
    EXPECT_EQ(trace.size(), reference.size()) << TimerQueueKindName(kind);
    ASSERT_EQ(trace, reference) << TimerQueueKindName(kind);
  }
}

}  // namespace
}  // namespace softtimer
