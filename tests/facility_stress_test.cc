// Randomized stress/property tests for SoftTimerFacility across all timer
// backends: exactly-once dispatch, no lost or duplicated events under mixed
// schedule/cancel churn, monotone fire ticks, and correct behaviour when
// handlers schedule and cancel their peers.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/core/clock_source.h"
#include "src/core/soft_timer_facility.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"

namespace softtimer {
namespace {

class FacilityStress : public ::testing::TestWithParam<TimerQueueKind> {};

TEST_P(FacilityStress, ExactlyOnceDispatchUnderChurn) {
  Simulator sim;
  SimClockSource clock(&sim, 1'000'000);
  SoftTimerFacility::Config cfg;
  cfg.queue_kind = GetParam();
  SoftTimerFacility facility(&clock, cfg);
  Rng rng(2024);

  std::set<uint64_t> expected;   // keys that must eventually fire
  std::set<uint64_t> fired;      // keys that did fire
  std::vector<std::pair<uint64_t, SoftEventId>> cancellable;
  uint64_t next_key = 1;
  uint64_t last_fire_tick = 0;

  for (int step = 0; step < 30'000; ++step) {
    double dice = rng.NextDouble();
    if (dice < 0.45) {
      uint64_t key = next_key++;
      uint64_t t = rng.UniformU64(2'500);
      SoftEventId id = facility.ScheduleSoftEvent(
          t, [&, key](const SoftTimerFacility::FireInfo& info) {
            EXPECT_TRUE(fired.insert(key).second) << "double dispatch of " << key;
            EXPECT_GE(info.fired_tick, last_fire_tick);
            last_fire_tick = info.fired_tick;
          });
      expected.insert(key);
      cancellable.emplace_back(key, id);
    } else if (dice < 0.55 && !cancellable.empty()) {
      size_t idx = rng.UniformU64(cancellable.size());
      auto [key, id] = cancellable[idx];
      if (facility.CancelSoftEvent(id)) {
        EXPECT_EQ(fired.count(key), 0u) << "cancelled an already-fired event";
        expected.erase(key);
      }
      cancellable.erase(cancellable.begin() + static_cast<long>(idx));
    } else {
      sim.RunFor(rng.ExpDuration(SimDuration::Micros(25)));
      facility.OnTriggerState(TriggerSource::kSyscall);
    }
    // Periodic backup so nothing waits forever.
    if (step % 100 == 99) {
      sim.RunFor(SimDuration::Millis(1));
      facility.OnBackupInterrupt();
    }
  }
  // Drain.
  sim.RunFor(SimDuration::Seconds(1));
  facility.OnBackupInterrupt();
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(facility.pending_count(), 0u);
  EXPECT_EQ(facility.stats().dispatches, expected.size());
}

TEST_P(FacilityStress, HandlersSchedulingAndCancellingPeers) {
  Simulator sim;
  SimClockSource clock(&sim, 1'000'000);
  SoftTimerFacility::Config cfg;
  cfg.queue_kind = GetParam();
  SoftTimerFacility facility(&clock, cfg);
  Rng rng(7);

  int fires = 0;
  std::vector<SoftEventId> victims;
  std::function<void(const SoftTimerFacility::FireInfo&)> chaotic =
      [&](const SoftTimerFacility::FireInfo&) {
        ++fires;
        // Cancel a random earlier victim (may already be gone).
        if (!victims.empty()) {
          facility.CancelSoftEvent(victims[rng.UniformU64(victims.size())]);
        }
        // Schedule a victim and a successor.
        victims.push_back(
            facility.ScheduleSoftEvent(rng.UniformU64(500) + 1,
                                       [](const SoftTimerFacility::FireInfo&) {}));
        if (fires < 2'000) {
          facility.ScheduleSoftEvent(rng.UniformU64(50) + 1, chaotic);
        }
      };
  facility.ScheduleSoftEvent(1, chaotic);

  for (int i = 0; i < 400'000 && fires < 2'000; ++i) {
    sim.RunFor(SimDuration::Micros(7));
    facility.OnTriggerState(TriggerSource::kTrap);
  }
  EXPECT_EQ(fires, 2'000);
}

INSTANTIATE_TEST_SUITE_P(Backends, FacilityStress,
                         ::testing::Values(TimerQueueKind::kHeap,
                                           TimerQueueKind::kHashedWheel,
                                           TimerQueueKind::kHierarchicalWheel,
                                           TimerQueueKind::kCalloutList,
                                           TimerQueueKind::kGroupedSorting),
                         [](const ::testing::TestParamInfo<TimerQueueKind>& info) {
                           std::string n = TimerQueueKindName(info.param);
                           std::string out;
                           for (char c : n) {
                             if (c != '-') {
                               out += c;
                             }
                           }
                           return out;
                         });

}  // namespace
}  // namespace softtimer
