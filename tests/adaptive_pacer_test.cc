#include "src/core/adaptive_pacer.h"

#include <gtest/gtest.h>

#include "src/sim/random.h"
#include "src/stats/summary_stats.h"

namespace softtimer {
namespace {

TEST(AdaptivePacerTest, OnScheduleUsesTargetInterval) {
  AdaptivePacer p({40, 12});
  p.StartTrain(1000);
  // First packet leaves exactly at the train start: on schedule.
  EXPECT_EQ(p.OnPacketSent(1000), 40u);
  // Second packet on time at 1040.
  EXPECT_EQ(p.OnPacketSent(1040), 40u);
  EXPECT_EQ(p.packets_sent(), 2u);
  EXPECT_EQ(p.catchup_decisions(), 0u);
}

TEST(AdaptivePacerTest, FallingBehindTriggersBurstInterval) {
  AdaptivePacer p({40, 12});
  p.StartTrain(0);
  EXPECT_EQ(p.OnPacketSent(0), 40u);
  // Packet 2 is 30 ticks late (should have left at 40, left at 70).
  EXPECT_EQ(p.OnPacketSent(70), 12u);
  EXPECT_EQ(p.catchup_decisions(), 1u);
  // Packet 3 at 82: schedule says 2*40 = 80 -> still behind.
  EXPECT_EQ(p.OnPacketSent(82), 12u);
  // Packet 4 at 94: schedule says 120 -> caught up, back to target.
  EXPECT_EQ(p.OnPacketSent(94), 40u);
}

TEST(AdaptivePacerTest, CatchupConvergesToTargetRate) {
  // Simulate soft-timer fire delays: each scheduled delta is realized with a
  // random extra delay; the adaptive rule must keep the average interval at
  // the target as long as the burst rate has headroom.
  AdaptivePacer p({40, 12});
  Rng rng(7);
  uint64_t now = 0;
  p.StartTrain(now);
  SummaryStats intervals;
  uint64_t prev = now;
  uint64_t delta = p.OnPacketSent(now);
  for (int i = 0; i < 20'000; ++i) {
    uint64_t delay = static_cast<uint64_t>(rng.Exponential(12.0));  // soft-timer lateness
    now += delta + 1 + delay;
    intervals.Add(static_cast<double>(now - prev));
    prev = now;
    delta = p.OnPacketSent(now);
  }
  EXPECT_NEAR(intervals.mean(), 40.0, 1.0);
}

TEST(AdaptivePacerTest, SaturatesWhenBurstRateInsufficient) {
  // With lateness whose mean exceeds the headroom, the achieved interval
  // degrades toward min_burst + lateness (the Table 4 "65.9 us at min
  // interval 35" regime).
  AdaptivePacer p({40, 35});
  Rng rng(7);
  uint64_t now = 0;
  p.StartTrain(now);
  SummaryStats intervals;
  uint64_t prev = now;
  uint64_t delta = p.OnPacketSent(now);
  for (int i = 0; i < 20'000; ++i) {
    uint64_t delay = static_cast<uint64_t>(rng.Exponential(25.0));
    now += delta + 1 + delay;
    intervals.Add(static_cast<double>(now - prev));
    prev = now;
    delta = p.OnPacketSent(now);
  }
  // Mean must exceed the target (pacer cannot keep up) but stay near
  // min_burst + mean delay + 1.
  EXPECT_GT(intervals.mean(), 55.0);
  EXPECT_NEAR(intervals.mean(), 35 + 25 + 1, 3.0);
}

TEST(AdaptivePacerTest, FirstPacketCatchupClampsAtMinBurstInterval) {
  // Regression for the first-packet burst: right after StartTrain the
  // achieved-rate history is empty (reads as zero), and packet 1's
  // on-schedule time is the train start itself — so a first send that is
  // even one tick late (soft-timer lateness is always >= 1) takes the
  // catch-up branch. The returned interval must clamp at
  // min_burst_interval_ticks, not collapse below it into an unbounded
  // back-to-back burst.
  AdaptivePacer p({40, 12});
  p.StartTrain(1000);
  // First packet dispatched 1 tick late: catch-up, clamped at min_burst.
  EXPECT_EQ(p.OnPacketSent(1001), 12u);
  EXPECT_EQ(p.catchup_decisions(), 1u);
  // Arbitrarily late first packet still clamps at exactly min_burst.
  AdaptivePacer q({40, 12});
  q.StartTrain(1000);
  EXPECT_EQ(q.OnPacketSent(1000 + 100 * 40), 12u);
  // The clamp holds whenever the train is behind (every decision returns
  // >= min_burst, never less), and min-burst catch-up CLOSES the deficit:
  // actual time advances min_burst+1 per packet while the schedule advances
  // target, so the train converges back to the target cadence instead of
  // bursting forever.
  uint64_t now = 1001;
  AdaptivePacer r({40, 12});
  r.StartTrain(1000);
  for (int i = 0; i < 64; ++i) {
    uint64_t delta = r.OnPacketSent(now);
    EXPECT_GE(delta, 12u);
    now += delta + 1;  // every dispatch lands 1 tick late
  }
  EXPECT_GE(r.catchup_decisions(), 1u);
  EXPECT_LT(r.catchup_decisions(), 16u);  // converged, not perpetual
}

TEST(PacedTrainTest, BurstAccountingMatchesSequentialSends) {
  // A wheel drain that emits k packets at one wakeup must land the train in
  // exactly the state k sequential per-packet sends at the same now would.
  PacedTrain burst, seq;
  burst.Start(500);
  seq.Start(500);
  uint64_t now = 700;
  PacedTrain::SendDecision d_burst = burst.OnBurstSent(now, 3, 40, 12);
  PacedTrain::SendDecision d_seq{};
  for (int i = 0; i < 3; ++i) {
    d_seq = seq.OnBurstSent(now, 1, 40, 12);
  }
  EXPECT_EQ(burst.packets, seq.packets);
  EXPECT_EQ(d_burst.next_delay_ticks, d_seq.next_delay_ticks);
  EXPECT_EQ(d_burst.catch_up, d_seq.catch_up);
  // BurstBudget is pure and bounded by max_coalesced.
  EXPECT_EQ(burst.BurstBudget(now, 40, 0), 1u);
  EXPECT_EQ(burst.BurstBudget(now + 400, 40, 4), 4u);
  // Next packet is on schedule at 500 + 3*40 = 620; at now = 700 the train
  // is two whole intervals behind -> budget 3.
  EXPECT_EQ(burst.BurstBudget(now, 40, 8), 3u);
}

TEST(AdaptivePacerTest, StartTrainResetsSchedule) {
  AdaptivePacer p({40, 12});
  p.StartTrain(0);
  p.OnPacketSent(0);
  p.OnPacketSent(500);  // far behind
  EXPECT_GT(p.catchup_decisions(), 0u);
  p.StartTrain(10'000);
  EXPECT_EQ(p.packets_sent(), 0u);
  // Fresh train: on schedule again.
  EXPECT_EQ(p.OnPacketSent(10'000), 40u);
}

TEST(FixedPacerTest, AlwaysTargetInterval) {
  FixedPacer p(40);
  p.StartTrain(0);
  EXPECT_EQ(p.OnPacketSent(0), 40u);
  EXPECT_EQ(p.OnPacketSent(500), 40u);  // no catch-up, ever
  EXPECT_EQ(p.packets_sent(), 2u);
}

}  // namespace
}  // namespace softtimer
