#include "src/core/adaptive_pacer.h"

#include <gtest/gtest.h>

#include "src/sim/random.h"
#include "src/stats/summary_stats.h"

namespace softtimer {
namespace {

TEST(AdaptivePacerTest, OnScheduleUsesTargetInterval) {
  AdaptivePacer p({40, 12});
  p.StartTrain(1000);
  // First packet leaves exactly at the train start: on schedule.
  EXPECT_EQ(p.OnPacketSent(1000), 40u);
  // Second packet on time at 1040.
  EXPECT_EQ(p.OnPacketSent(1040), 40u);
  EXPECT_EQ(p.packets_sent(), 2u);
  EXPECT_EQ(p.catchup_decisions(), 0u);
}

TEST(AdaptivePacerTest, FallingBehindTriggersBurstInterval) {
  AdaptivePacer p({40, 12});
  p.StartTrain(0);
  EXPECT_EQ(p.OnPacketSent(0), 40u);
  // Packet 2 is 30 ticks late (should have left at 40, left at 70).
  EXPECT_EQ(p.OnPacketSent(70), 12u);
  EXPECT_EQ(p.catchup_decisions(), 1u);
  // Packet 3 at 82: schedule says 2*40 = 80 -> still behind.
  EXPECT_EQ(p.OnPacketSent(82), 12u);
  // Packet 4 at 94: schedule says 120 -> caught up, back to target.
  EXPECT_EQ(p.OnPacketSent(94), 40u);
}

TEST(AdaptivePacerTest, CatchupConvergesToTargetRate) {
  // Simulate soft-timer fire delays: each scheduled delta is realized with a
  // random extra delay; the adaptive rule must keep the average interval at
  // the target as long as the burst rate has headroom.
  AdaptivePacer p({40, 12});
  Rng rng(7);
  uint64_t now = 0;
  p.StartTrain(now);
  SummaryStats intervals;
  uint64_t prev = now;
  uint64_t delta = p.OnPacketSent(now);
  for (int i = 0; i < 20'000; ++i) {
    uint64_t delay = static_cast<uint64_t>(rng.Exponential(12.0));  // soft-timer lateness
    now += delta + 1 + delay;
    intervals.Add(static_cast<double>(now - prev));
    prev = now;
    delta = p.OnPacketSent(now);
  }
  EXPECT_NEAR(intervals.mean(), 40.0, 1.0);
}

TEST(AdaptivePacerTest, SaturatesWhenBurstRateInsufficient) {
  // With lateness whose mean exceeds the headroom, the achieved interval
  // degrades toward min_burst + lateness (the Table 4 "65.9 us at min
  // interval 35" regime).
  AdaptivePacer p({40, 35});
  Rng rng(7);
  uint64_t now = 0;
  p.StartTrain(now);
  SummaryStats intervals;
  uint64_t prev = now;
  uint64_t delta = p.OnPacketSent(now);
  for (int i = 0; i < 20'000; ++i) {
    uint64_t delay = static_cast<uint64_t>(rng.Exponential(25.0));
    now += delta + 1 + delay;
    intervals.Add(static_cast<double>(now - prev));
    prev = now;
    delta = p.OnPacketSent(now);
  }
  // Mean must exceed the target (pacer cannot keep up) but stay near
  // min_burst + mean delay + 1.
  EXPECT_GT(intervals.mean(), 55.0);
  EXPECT_NEAR(intervals.mean(), 35 + 25 + 1, 3.0);
}

TEST(AdaptivePacerTest, StartTrainResetsSchedule) {
  AdaptivePacer p({40, 12});
  p.StartTrain(0);
  p.OnPacketSent(0);
  p.OnPacketSent(500);  // far behind
  EXPECT_GT(p.catchup_decisions(), 0u);
  p.StartTrain(10'000);
  EXPECT_EQ(p.packets_sent(), 0u);
  // Fresh train: on schedule again.
  EXPECT_EQ(p.OnPacketSent(10'000), 40u);
}

TEST(FixedPacerTest, AlwaysTargetInterval) {
  FixedPacer p(40);
  p.StartTrain(0);
  EXPECT_EQ(p.OnPacketSent(0), 40u);
  EXPECT_EQ(p.OnPacketSent(500), 40u);  // no catch-up, ever
  EXPECT_EQ(p.packets_sent(), 2u);
}

}  // namespace
}  // namespace softtimer
