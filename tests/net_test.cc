// Tests for the network substrate: Link (serialization, propagation,
// drop-tail), WanPath, Nic (interrupt vs polled rx, tx-complete coalescing),
// and the SoftTimerNetPoller's mode switching.

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "src/core/clock_source.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/machine/kernel.h"
#include "src/net/link.h"
#include "src/net/nic.h"
#include "src/net/soft_timer_net_poller.h"
#include "src/net/wan_path.h"

namespace softtimer {
namespace {

Packet DataPacket(uint64_t id, uint32_t bytes) {
  Packet p;
  p.id = id;
  p.kind = Packet::Kind::kData;
  p.size_bytes = bytes;
  return p;
}

TEST(LinkTest, SerializationPlusPropagation) {
  Simulator sim;
  Link::Config cfg;
  cfg.bandwidth_bps = 100e6;  // 1500 B = 120 us
  cfg.propagation_delay = SimDuration::Micros(5);
  Link link(&sim, cfg);
  SimTime arrival;
  link.set_receiver([&](const Packet&) { arrival = sim.now(); });
  link.Send(DataPacket(1, 1500));
  sim.RunUntilIdle();
  EXPECT_EQ(arrival.nanos_since_origin(), 125'000);
  EXPECT_EQ(link.stats().sent, 1u);
  EXPECT_EQ(link.stats().bytes_sent, 1500u);
}

TEST(LinkTest, BackToBackPacketsQueueBehindSerializer) {
  Simulator sim;
  Link::Config cfg;
  cfg.bandwidth_bps = 100e6;
  cfg.propagation_delay = SimDuration::Zero();
  Link link(&sim, cfg);
  std::vector<int64_t> arrivals;
  link.set_receiver([&](const Packet&) { arrivals.push_back(sim.now().nanos_since_origin()); });
  link.Send(DataPacket(1, 1500));
  link.Send(DataPacket(2, 1500));
  link.Send(DataPacket(3, 1500));
  sim.RunUntilIdle();
  EXPECT_EQ(arrivals, (std::vector<int64_t>{120'000, 240'000, 360'000}));
}

TEST(LinkTest, DropTailWhenQueueFull) {
  Simulator sim;
  Link::Config cfg;
  cfg.bandwidth_bps = 100e6;
  cfg.queue_limit_packets = 2;
  Link link(&sim, cfg);
  int received = 0;
  link.set_receiver([&](const Packet&) { ++received; });
  EXPECT_TRUE(link.Send(DataPacket(1, 1500)));
  EXPECT_TRUE(link.Send(DataPacket(2, 1500)));
  EXPECT_FALSE(link.Send(DataPacket(3, 1500)));  // dropped
  sim.RunUntilIdle();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(link.stats().dropped, 1u);
  // Queue drained: sending works again.
  EXPECT_TRUE(link.Send(DataPacket(4, 1500)));
  sim.RunUntilIdle();
  EXPECT_EQ(received, 3);
}

TEST(WanPathTest, BothDirectionsDelay) {
  Simulator sim;
  WanPath::Config cfg;
  cfg.bottleneck_bps = 50e6;
  cfg.one_way_delay = SimDuration::Millis(50);
  WanPath wan(&sim, cfg);
  SimTime fwd_arrival, rev_arrival;
  wan.forward().set_receiver([&](const Packet&) { fwd_arrival = sim.now(); });
  wan.reverse().set_receiver([&](const Packet&) { rev_arrival = sim.now(); });
  wan.forward().Send(DataPacket(1, 1500));  // 240 us serialization
  wan.reverse().Send(DataPacket(2, 40));
  sim.RunUntilIdle();
  EXPECT_EQ(fwd_arrival.nanos_since_origin(), 50'240'000);
  EXPECT_NEAR(static_cast<double>(rev_arrival.nanos_since_origin()), 50'006'400, 100);
}

class NicFixture : public ::testing::Test {
 protected:
  NicFixture() {
    Kernel::Config kc;
    kc.profile = MachineProfile::PentiumII300();
    kc.idle_poll_jitter_sigma = 0;
    kernel_ = std::make_unique<Kernel>(&sim_, kc);
    Link::Config lc;
    tx_link_ = std::make_unique<Link>(&sim_, lc);
    nic_ = std::make_unique<Nic>(&sim_, kernel_.get(), tx_link_.get(), Nic::Config{});
    nic_->set_rx_handler([this](const Packet& p) { delivered_.push_back(p.id); });
    // Keep the CPU busy so steals/interrupts are measurable against it.
    kernel_->cpu(0).Submit(SimDuration::Seconds(10));
  }

  Simulator sim_;
  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<Link> tx_link_;
  std::unique_ptr<Nic> nic_;
  std::vector<uint64_t> delivered_;
};

TEST_F(NicFixture, InterruptModeDeliversImmediatelyWithIpIntrTrigger) {
  uint64_t before = kernel_->stats().triggers_by_source[static_cast<size_t>(TriggerSource::kIpIntr)];
  nic_->OnWireRx(DataPacket(7, 1500));
  EXPECT_EQ(delivered_, (std::vector<uint64_t>{7}));
  EXPECT_EQ(nic_->stats().rx_interrupts, 1u);
  EXPECT_EQ(
      kernel_->stats().triggers_by_source[static_cast<size_t>(TriggerSource::kIpIntr)],
      before + 1);
}

TEST_F(NicFixture, PolledModeBuffersUntilPoll) {
  nic_->SetMode(Nic::Mode::kPolled);
  nic_->OnWireRx(DataPacket(1, 1500));
  nic_->OnWireRx(DataPacket(2, 1500));
  EXPECT_TRUE(delivered_.empty());
  EXPECT_EQ(nic_->rx_ring_depth(), 2u);
  EXPECT_EQ(nic_->Poll(64), 2u);
  EXPECT_EQ(delivered_, (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(nic_->stats().rx_interrupts, 0u);
  EXPECT_EQ(nic_->stats().polled_packets, 2u);
}

TEST_F(NicFixture, PollRespectsMaxPackets) {
  nic_->SetMode(Nic::Mode::kPolled);
  for (int i = 0; i < 5; ++i) {
    nic_->OnWireRx(DataPacket(static_cast<uint64_t>(i), 1500));
  }
  EXPECT_EQ(nic_->Poll(3), 3u);
  EXPECT_EQ(nic_->rx_ring_depth(), 2u);
}

TEST_F(NicFixture, RingOverflowDrops) {
  nic_->SetMode(Nic::Mode::kPolled);
  for (int i = 0; i < 300; ++i) {
    nic_->OnWireRx(DataPacket(static_cast<uint64_t>(i), 60));
  }
  EXPECT_EQ(nic_->rx_ring_depth(), 256u);  // default ring size
  EXPECT_EQ(nic_->stats().rx_dropped, 44u);
}

TEST_F(NicFixture, SwitchingToInterruptModeFlushesRing) {
  nic_->SetMode(Nic::Mode::kPolled);
  nic_->OnWireRx(DataPacket(9, 1500));
  EXPECT_TRUE(delivered_.empty());
  nic_->SetMode(Nic::Mode::kInterrupt);
  EXPECT_EQ(delivered_, (std::vector<uint64_t>{9}));
}

TEST_F(NicFixture, PolledBatchCostsLessThanInterrupts) {
  // Process the same 8 packets both ways and compare stolen CPU time.
  SimDuration before = kernel_->cpu(0).stolen_time();
  for (int i = 0; i < 8; ++i) {
    nic_->OnWireRx(DataPacket(static_cast<uint64_t>(i), 1500));
  }
  SimDuration interrupt_cost = kernel_->cpu(0).stolen_time() - before;

  nic_->SetMode(Nic::Mode::kPolled);
  for (int i = 0; i < 8; ++i) {
    nic_->OnWireRx(DataPacket(static_cast<uint64_t>(100 + i), 1500));
  }
  before = kernel_->cpu(0).stolen_time();
  nic_->Poll(64);
  SimDuration poll_cost = kernel_->cpu(0).stolen_time() - before;
  EXPECT_LT(poll_cost.nanos(), interrupt_cost.nanos() / 2);
}

TEST_F(NicFixture, AckProcessingCheaperThanData) {
  SimDuration before = kernel_->cpu(0).stolen_time();
  nic_->OnWireRx(DataPacket(1, 1500));
  SimDuration data_cost = kernel_->cpu(0).stolen_time() - before;

  Packet ack;
  ack.id = 2;
  ack.kind = Packet::Kind::kAck;
  ack.size_bytes = 40;
  before = kernel_->cpu(0).stolen_time();
  nic_->OnWireRx(ack);
  SimDuration ack_cost = kernel_->cpu(0).stolen_time() - before;
  EXPECT_LT(ack_cost, data_cost);
}

TEST_F(NicFixture, TxCompletionsCoalesceIntoOneInterrupt) {
  for (int i = 0; i < 5; ++i) {
    nic_->Transmit(DataPacket(static_cast<uint64_t>(i), 1500));
  }
  sim_.RunUntil(SimTime::Zero() + SimDuration::Millis(3));
  EXPECT_EQ(nic_->stats().tx_packets, 5u);
  EXPECT_EQ(nic_->stats().tx_complete_interrupts, 1u);
}

TEST_F(NicFixture, EnqueueBurstSendsAllUnderOneCompletionArm) {
  // The pacing wheel's batched tx path: the whole burst queues back-to-back
  // on the link and is covered by a single coalesced completion interrupt
  // (Section 4.2's burst-completion signalling, by construction).
  std::vector<Packet> burst;
  for (int i = 0; i < 8; ++i) {
    burst.push_back(DataPacket(static_cast<uint64_t>(i), 1500));
  }
  nic_->EnqueueBurst(burst.data(), burst.size());
  sim_.RunUntil(SimTime::Zero() + SimDuration::Millis(5));
  EXPECT_EQ(nic_->stats().tx_packets, 8u);
  EXPECT_EQ(tx_link_->stats().sent, 8u);
  EXPECT_EQ(nic_->stats().tx_complete_interrupts, 1u);
  // Zero-length bursts are a no-op.
  nic_->EnqueueBurst(burst.data(), 0);
  EXPECT_EQ(nic_->stats().tx_packets, 8u);
}

TEST(SoftTimerNetPollerTest, DrainsNicUnderBusyCpuAndTracksQuota) {
  Simulator sim;
  Kernel::Config kc;
  kc.profile = MachineProfile::PentiumII300();
  Kernel kernel(&sim, kc);
  Link::Config lc;
  Link tx(&sim, lc);
  Nic nic(&sim, &kernel, &tx, Nic::Config{});
  int delivered = 0;
  nic.set_rx_handler([&](const Packet&) { ++delivered; });

  SoftTimerNetPoller::Config pc;
  pc.governor.aggregation_quota = 2.0;
  pc.governor.min_interval_ticks = 10;
  pc.governor.max_interval_ticks = 2000;
  pc.governor.initial_interval_ticks = 50;
  SoftTimerNetPoller poller(&kernel, {&nic}, pc);
  poller.Start();

  // Busy CPU with steady kernel entries (trigger states for the poll
  // events), plus packet arrivals every 60 us.
  std::function<void()> churn = [&] {
    kernel.KernelOp(TriggerSource::kSyscall, SimDuration::Micros(18), churn);
  };
  churn();
  std::function<void()> arrivals = [&] {
    nic.OnWireRx(DataPacket(1, 1500));
    sim.ScheduleAfter(SimDuration::Micros(60), arrivals);
  };
  sim.ScheduleAfter(SimDuration::Micros(60), arrivals);

  sim.RunUntil(SimTime::Zero() + SimDuration::Millis(200));
  EXPECT_EQ(nic.mode(), Nic::Mode::kPolled);
  EXPECT_GT(delivered, 3000);
  EXPECT_EQ(nic.stats().rx_interrupts, 0u);
  // The governor steers found-per-poll toward the quota.
  double found_per_poll = static_cast<double>(poller.stats().packets) /
                          static_cast<double>(poller.stats().polls);
  EXPECT_NEAR(found_per_poll, 2.0, 0.8);
}

TEST(SoftTimerNetPollerTest, DroughtResetReclampsGovernorInterval) {
  // Pin for the drought-recovery path: a quiet NIC walks the governor out to
  // its (large) max interval; a trigger drought then starves the poll stream.
  // When the drought ends the poller must re-engage at the *re-clamped*
  // interval - min(current, initial) within the Config bounds - not resume
  // one full stale max-interval later. Regression: the old listener only
  // called ResetRate() and left both the stale interval and the stale
  // pending event in place.
  Simulator sim;
  Kernel::Config kc;
  kc.profile = MachineProfile::PentiumII300();
  kc.idle_poll_jitter_sigma = 0;
  kc.degradation.enabled = true;
  kc.degradation.density_floor_checks_per_interval = 4;
  Kernel kernel(&sim, kc);
  kernel.cpu(0).Submit(SimDuration::Seconds(10));  // busy: polling stays engaged

  Link::Config lc;
  Link tx(&sim, lc);
  Nic nic(&sim, &kernel, &tx, Nic::Config{});
  nic.set_rx_handler([](const Packet&) {});

  SoftTimerNetPoller::Config pc;
  pc.governor.aggregation_quota = 2.0;
  pc.governor.min_interval_ticks = 10;
  pc.governor.max_interval_ticks = 20'000;  // 20 backup periods: very stale
  pc.governor.initial_interval_ticks = 50;
  SoftTimerNetPoller poller(&kernel, {&nic}, pc);
  poller.Start();

  // Record the measure tick at which the drought ends, the poll count at
  // that instant, and the governor interval right after the poller's own
  // drought listener ran (Start() registered it first, so it has already
  // re-engaged by the time this one fires).
  uint64_t end_tick = 0;
  uint64_t polls_at_end = 0;
  uint64_t interval_at_reset = 0;
  kernel.soft_timers().AddDroughtListener([&](bool entering) {
    if (!entering && end_tick == 0) {
      end_tick = kernel.soft_timers().MeasureTime();
      polls_at_end = poller.stats().polls;
      interval_at_reset = poller.governor().current_interval_ticks();
    }
  });

  // Dense syscall trigger churn (well above the density floor); no packets
  // ever arrive, so every poll finds nothing and the interval doubles out to
  // the max.
  std::function<void()> churn = [&] {
    kernel.Trigger(TriggerSource::kSyscall);
    sim.ScheduleAfter(SimDuration::Micros(40), churn);
  };
  sim.ScheduleAfter(SimDuration::Micros(40), churn);

  // 10-backup-period trigger drought at t = 250 ms.
  fault::FaultPlan plan;
  plan.trigger_droughts.push_back({250'000, 10'000});
  SimClockSource true_clock(&sim, kc.measure_hz);
  fault::FaultInjector inj(&true_clock, plan, /*seed=*/11);
  inj.InstallOn(&kernel);

  // Probe for the first poll after the drought ends.
  uint64_t first_poll_tick = 0;
  std::function<void()> probe = [&] {
    if (end_tick != 0 && first_poll_tick == 0 &&
        poller.stats().polls > polls_at_end) {
      first_poll_tick = kernel.soft_timers().MeasureTime();
    }
    sim.ScheduleAfter(SimDuration::Micros(20), probe);
  };
  sim.ScheduleAfter(SimDuration::Micros(20), probe);

  sim.RunUntil(SimTime::Zero() + SimDuration::Millis(240));
  // Quiet traffic pegged the interval at the stale maximum.
  EXPECT_EQ(poller.governor().current_interval_ticks(), 20'000u);

  sim.RunUntil(SimTime::Zero() + SimDuration::Millis(300));
  ASSERT_GE(poller.stats().drought_resets, 1u);
  ASSERT_NE(end_tick, 0u);
  // The reset re-clamped to min(current, initial) = the initial interval.
  EXPECT_EQ(interval_at_reset, 50u);
  // And the stream actually re-engaged promptly: the first post-drought poll
  // lands within a small multiple of the initial interval, not one stale
  // 20'000-tick max interval later.
  ASSERT_NE(first_poll_tick, 0u);
  EXPECT_LT(first_poll_tick - end_tick, 2'000u);
}

TEST(SoftTimerNetPollerTest, IdleCpuReenablesInterrupts) {
  Simulator sim;
  Kernel::Config kc;
  kc.profile = MachineProfile::PentiumII300();
  Kernel kernel(&sim, kc);
  Link::Config lc;
  Link tx(&sim, lc);
  Nic nic(&sim, &kernel, &tx, Nic::Config{});
  int delivered = 0;
  nic.set_rx_handler([&](const Packet&) { ++delivered; });

  SoftTimerNetPoller::Config pc;
  SoftTimerNetPoller poller(&kernel, {&nic}, pc);
  poller.Start();

  // CPU busy for 1 ms, then idle.
  kernel.cpu(0).Submit(SimDuration::Millis(1));
  sim.RunUntil(SimTime::Zero() + SimDuration::Micros(500));
  EXPECT_EQ(nic.mode(), Nic::Mode::kPolled);
  sim.RunUntil(SimTime::Zero() + SimDuration::Millis(2));
  EXPECT_EQ(nic.mode(), Nic::Mode::kInterrupt);
  // A packet arriving while idle is processed immediately via interrupt.
  nic.OnWireRx(DataPacket(5, 1500));
  EXPECT_EQ(delivered, 1);
}

}  // namespace
}  // namespace softtimer
