// Unit tests for HttpServerModel: connection scripting, packet actions,
// response segmentation, pacing disciplines, and per-kind calibrated
// defaults. Uses a minimal hand-wired NIC/link rather than the full testbed.

#include "src/httpsim/http_server_model.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/net/nic.h"

namespace softtimer {
namespace {

// Plain harness (not a gtest fixture) so tests can spin up several models.
struct ModelHarness {
  explicit ModelHarness(HttpServerModel::Config cfg = {}) {
    Kernel::Config kc;
    kc.profile = MachineProfile::PentiumII300();
    kernel_ = std::make_unique<Kernel>(&sim_, kc);
    Link::Config lc;
    lc.bandwidth_bps = 100e6;
    link_ = std::make_unique<Link>(&sim_, lc);
    link_->set_receiver([this](const Packet& p) { to_client_.push_back(p); });
    server_ = std::make_unique<HttpServerModel>(kernel_.get(), cfg);
    nic_ = std::make_unique<Nic>(&sim_, kernel_.get(), link_.get(), Nic::Config{});
    nic_idx_ = server_->AttachNic(nic_.get());
  }

  void Deliver(Packet::Kind kind, uint64_t flow) {
    Packet p;
    p.kind = kind;
    p.flow_id = flow;
    p.size_bytes = kind == Packet::Kind::kRequest ? 300 : 40;
    server_->OnPacket(nic_idx_, p);
  }

  // Runs a full HTTP/1.0 exchange for `flow` and returns packets the client
  // saw (client ACK turnarounds are not simulated - the server script does
  // not need them to deliver the response).
  void RunExchange(uint64_t flow) {
    Deliver(Packet::Kind::kSyn, flow);
    sim_.RunFor(SimDuration::Millis(5));
    Deliver(Packet::Kind::kRequest, flow);
    sim_.RunFor(SimDuration::Millis(20));
    Deliver(Packet::Kind::kFin, flow);
    sim_.RunFor(SimDuration::Millis(5));
  }

  Simulator sim_;
  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<Link> link_;
  std::unique_ptr<Nic> nic_;
  std::unique_ptr<HttpServerModel> server_;
  int nic_idx_ = 0;
  std::vector<Packet> to_client_;
};

class ApacheModel : public ::testing::Test, public ModelHarness {};

TEST_F(ApacheModel, SynProducesSynAck) {
  Deliver(Packet::Kind::kSyn, 1);
  sim_.RunFor(SimDuration::Millis(5));
  ASSERT_FALSE(to_client_.empty());
  EXPECT_EQ(to_client_[0].kind, Packet::Kind::kSynAck);
  EXPECT_EQ(to_client_[0].flow_id, 1u);
}

TEST_F(ApacheModel, ResponseSegmentationCoversHeaderPlusFile) {
  RunExchange(1);
  uint32_t data_bytes = 0;
  int data_packets = 0;
  bool saw_end_marker = false;
  for (const Packet& p : to_client_) {
    if (p.kind == Packet::Kind::kData) {
      ++data_packets;
      data_bytes += p.payload;
      saw_end_marker |= p.fin;
      EXPECT_LE(p.payload, kDefaultMss);
    }
  }
  // 6144 B file + 250 B headers = 6394 B -> 5 MSS-sized segments.
  EXPECT_EQ(data_packets, 5);
  EXPECT_EQ(data_bytes, 6394u);
  EXPECT_TRUE(saw_end_marker);
  EXPECT_EQ(server_->stats().responses_completed, 1u);
}

TEST_F(ApacheModel, FinRunsTeardownAndFreesConnection) {
  RunExchange(1);
  EXPECT_EQ(server_->stats().connections_completed, 1u);
  // A stray packet for the dead flow is ignored without crashing.
  Deliver(Packet::Kind::kRequest, 1);
  sim_.RunFor(SimDuration::Millis(5));
  EXPECT_EQ(server_->stats().responses_completed, 1u);
}

TEST_F(ApacheModel, ConcurrentConnectionsInterleave) {
  for (uint64_t f = 1; f <= 4; ++f) {
    Deliver(Packet::Kind::kSyn, f);
  }
  sim_.RunFor(SimDuration::Millis(10));
  for (uint64_t f = 1; f <= 4; ++f) {
    Deliver(Packet::Kind::kRequest, f);
  }
  sim_.RunFor(SimDuration::Millis(60));
  EXPECT_EQ(server_->stats().responses_completed, 4u);
}

TEST_F(ApacheModel, TriggerSourcesCoverAllTable2Categories) {
  RunExchange(1);
  const auto& by = kernel_->stats().triggers_by_source;
  EXPECT_GT(by[static_cast<size_t>(TriggerSource::kSyscall)], 10u);
  EXPECT_GT(by[static_cast<size_t>(TriggerSource::kIpOutput)], 5u);
  EXPECT_GT(by[static_cast<size_t>(TriggerSource::kTcpIpOthers)], 1u);
  EXPECT_GE(by[static_cast<size_t>(TriggerSource::kTrap)], 1u);
}

TEST_F(ApacheModel, PerKindDefaultsResolved) {
  // The ctor fills sigma/cap/scale/extras from the calibrated per-kind
  // defaults; sanity-check the resulting behaviour is jittered (two
  // connections take different amounts of simulated time).
  SimTime t0 = sim_.now();
  RunExchange(1);
  SimDuration first = sim_.now() - t0;
  (void)first;
  EXPECT_GT(kernel_->cpu(0).work_time(), SimDuration::Micros(300));
}

class FlashModel : public ::testing::Test, public ModelHarness {
 protected:
  FlashModel() : ModelHarness(FlashCfg()) {}
  static HttpServerModel::Config FlashCfg() {
    HttpServerModel::Config cfg;
    cfg.kind = HttpServerModel::ServerKind::kFlash;
    return cfg;
  }
};

TEST_F(FlashModel, FlashUsesLessCpuPerConnectionThanApache) {
  RunExchange(1);
  SimDuration flash_work = kernel_->cpu(0).work_time();

  ModelHarness apache;
  apache.RunExchange(1);
  SimDuration apache_work = apache.kernel_->cpu(0).work_time();
  EXPECT_LT(flash_work.nanos(), apache_work.nanos());
}

class SoftPacedModel : public ::testing::Test, public ModelHarness {
 protected:
  SoftPacedModel() : ModelHarness(Cfg()) {}
  static HttpServerModel::Config Cfg() {
    HttpServerModel::Config cfg;
    cfg.tx = HttpServerModel::TxDiscipline::kSoftPaced;
    return cfg;
  }
};

TEST_F(SoftPacedModel, DataLeavesOnePacketPerTriggerState) {
  Deliver(Packet::Kind::kSyn, 1);
  sim_.RunFor(SimDuration::Millis(5));
  Deliver(Packet::Kind::kRequest, 1);
  // Data packets are queued, then released one per trigger state. With the
  // connection script itself supplying trigger states, everything drains.
  sim_.RunFor(SimDuration::Millis(30));
  EXPECT_EQ(server_->stats().paced_packets, 5u);
  EXPECT_EQ(server_->paced_queue_depth(), 0u);
  int data = 0;
  std::vector<SimTime> send_times;
  for (const Packet& p : to_client_) {
    if (p.kind == Packet::Kind::kData) {
      ++data;
      send_times.push_back(p.sent_at);
    }
  }
  EXPECT_EQ(data, 5);
  // Paced sends are spread out, never same-instant.
  for (size_t i = 1; i < send_times.size(); ++i) {
    EXPECT_GT(send_times[i], send_times[i - 1]);
  }
}

class HardPacedModel : public ::testing::Test, public ModelHarness {
 protected:
  HardPacedModel() : ModelHarness(Cfg()) {}
  static HttpServerModel::Config Cfg() {
    HttpServerModel::Config cfg;
    cfg.tx = HttpServerModel::TxDiscipline::kHardPaced;
    cfg.hard_pace_hz = 50'000;
    return cfg;
  }
};

TEST_F(HardPacedModel, DataLeavesAtTimerRate) {
  Deliver(Packet::Kind::kSyn, 1);
  sim_.RunFor(SimDuration::Millis(5));
  Deliver(Packet::Kind::kRequest, 1);
  sim_.RunFor(SimDuration::Millis(30));
  EXPECT_EQ(server_->stats().paced_packets, 5u);
  // ~20 us between sends (the 8253 period), within interrupt jitter.
  EXPECT_GT(server_->paced_intervals().mean(), 15.0);
  EXPECT_LT(server_->paced_intervals().mean(), 40.0);
}

}  // namespace
}  // namespace softtimer
