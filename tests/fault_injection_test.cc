// Integration tests for the fault-injection harness (src/fault) and the
// graceful-degradation layer it exercises.
//
// The acceptance scenario: a 10-backup-period trigger drought combined with
// backup-interrupt loss. With the degradation policy off, the plan provably
// violates the paper's T + X + 1 bound; with it on, the escalated backup
// rate still dispatches every event and cuts the latency tail. The same
// (plan, seed) pair must also reproduce bit-identical statistics across
// runs, which is what makes fault campaigns regression-testable.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "src/core/soft_timer_facility.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/fault/faulty_clock_source.h"
#include "src/machine/kernel.h"
#include "src/machine/machine_profile.h"
#include "src/net/link.h"
#include "src/sim/simulator.h"

namespace softtimer {
namespace {

constexpr uint64_t kMeasureHz = 1'000'000;
constexpr uint64_t kX = 1000;  // ticks per backup interval at 1 kHz

// --- Drought + backup loss: the acceptance scenario -------------------------

struct RunResult {
  uint64_t scheduled = 0;
  uint64_t dispatched = 0;
  uint64_t max_lateness = 0;
  double lateness_sum = 0;
  bool in_drought_at_end = false;
  // Policy stats (zero when degradation is off).
  uint64_t escalations = 0;
  uint64_t deescalations = 0;
  uint64_t droughts_detected = 0;
  uint64_t droughts_ended = 0;
  // Kernel stats.
  uint64_t triggers = 0;
  uint64_t triggers_suppressed = 0;
  uint64_t backup_ticks = 0;
  uint64_t backup_ticks_lost = 0;
  // Injector stats.
  uint64_t inj_triggers_suppressed = 0;
  uint64_t inj_backups_dropped = 0;

  double mean_lateness() const {
    return dispatched ? lateness_sum / static_cast<double>(dispatched) : 0.0;
  }
};

// 10-backup-period trigger drought over [5000, 15000) ticks with 60% backup
// loss in the same window, against a dense syscall trigger stream and a
// steady feed of short-delay soft events.
RunResult RunDroughtScenario(bool degradation_on, uint64_t seed) {
  Simulator sim;
  Kernel::Config kc;
  kc.profile = MachineProfile::PentiumII300();
  kc.idle_poll_jitter_sigma = 0;
  kc.degradation.enabled = degradation_on;
  kc.degradation.density_floor_checks_per_interval = 4;
  kc.degradation.max_backup_rate_multiplier = 8;
  kc.degradation.deescalate_after_healthy_intervals = 4;
  Kernel kernel(&sim, kc);
  kernel.cpu(0).Submit(SimDuration::Seconds(10));  // busy: no idle-loop rescue

  fault::FaultPlan plan;
  plan.trigger_droughts.push_back({5'000, 10 * kX});
  plan.backup_loss.push_back({{5'000, 10 * kX}, 0.6});
  SimClockSource true_clock(&sim, kMeasureHz);
  fault::FaultInjector inj(&true_clock, plan, seed);
  inj.InstallOn(&kernel);

  RunResult r;

  std::function<void()> trig = [&] {
    kernel.Trigger(TriggerSource::kSyscall);
    sim.ScheduleAfter(SimDuration::Micros(40), trig);
  };
  sim.ScheduleAfter(SimDuration::Micros(40), trig);

  std::function<void()> sched = [&] {
    if (kernel.soft_timers().MeasureTime() >= 16'000) {
      return;
    }
    ++r.scheduled;
    kernel.soft_timers().ScheduleSoftEvent(
        100, [&](const SoftTimerFacility::FireInfo& info) {
          ++r.dispatched;
          r.max_lateness = std::max(r.max_lateness, info.lateness_ticks());
          r.lateness_sum += static_cast<double>(info.lateness_ticks());
        });
    sim.ScheduleAfter(SimDuration::Micros(500), sched);
  };
  sim.ScheduleAt(SimTime::Zero() + SimDuration::Micros(4'500), sched);

  sim.RunUntil(SimTime::Zero() + SimDuration::Millis(30));

  if (const DegradationPolicy* p = kernel.soft_timers().degradation()) {
    r.in_drought_at_end = p->in_drought();
    r.escalations = p->stats().escalations;
    r.deescalations = p->stats().deescalations;
    r.droughts_detected = p->stats().droughts_detected;
    r.droughts_ended = p->stats().droughts_ended;
  }
  r.triggers = kernel.stats().triggers;
  r.triggers_suppressed = kernel.stats().triggers_suppressed;
  r.backup_ticks = kernel.stats().backup_ticks;
  r.backup_ticks_lost = kernel.stats().backup_ticks_lost;
  r.inj_triggers_suppressed = inj.stats().triggers_suppressed;
  r.inj_backups_dropped = inj.stats().backups_dropped;
  return r;
}

TEST(FaultInjectionTest, DroughtWithBackupLossNeedsDegradationToHoldUp) {
  RunResult off = RunDroughtScenario(/*degradation_on=*/false, /*seed=*/7);
  RunResult on = RunDroughtScenario(/*degradation_on=*/true, /*seed=*/7);

  ASSERT_EQ(on.scheduled, off.scheduled);
  ASSERT_GT(on.scheduled, 15u);

  // Off side: the plan provably breaks the paper's bound - some event's
  // lateness exceeds X + 1 ticks (lateness = actual - T, so the bound says
  // lateness <= X + 1).
  EXPECT_GT(off.max_lateness, kX + 1);
  EXPECT_EQ(off.dispatched, off.scheduled);  // everything does fire eventually

  // On side: every event dispatched, the drought was detected, the backup
  // rate escalated (more backup ticks ran), and the system returned to
  // nominal after the fault cleared.
  EXPECT_EQ(on.dispatched, on.scheduled);
  EXPECT_GE(on.escalations, 2u);
  EXPECT_GE(on.droughts_detected, 1u);
  EXPECT_GE(on.droughts_ended, 1u);
  EXPECT_FALSE(on.in_drought_at_end);
  EXPECT_GT(on.backup_ticks, off.backup_ticks);

  // The escalated rate cuts the latency tail the fault opened.
  EXPECT_LE(on.max_lateness, off.max_lateness);
  EXPECT_LT(on.mean_lateness(), off.mean_lateness());

  // The drought actually suppressed triggers, and the kernel's loss
  // accounting agrees with the injector's.
  EXPECT_GT(on.triggers_suppressed, 100u);
  EXPECT_EQ(on.triggers_suppressed, on.inj_triggers_suppressed);
  EXPECT_EQ(on.backup_ticks_lost, on.inj_backups_dropped);
}

TEST(FaultInjectionTest, SamePlanAndSeedReproduceIdenticalStats) {
  RunResult a = RunDroughtScenario(/*degradation_on=*/true, /*seed=*/21);
  RunResult b = RunDroughtScenario(/*degradation_on=*/true, /*seed=*/21);
  EXPECT_EQ(a.scheduled, b.scheduled);
  EXPECT_EQ(a.dispatched, b.dispatched);
  EXPECT_EQ(a.max_lateness, b.max_lateness);
  EXPECT_EQ(a.lateness_sum, b.lateness_sum);
  EXPECT_EQ(a.escalations, b.escalations);
  EXPECT_EQ(a.deescalations, b.deescalations);
  EXPECT_EQ(a.droughts_detected, b.droughts_detected);
  EXPECT_EQ(a.droughts_ended, b.droughts_ended);
  EXPECT_EQ(a.triggers, b.triggers);
  EXPECT_EQ(a.triggers_suppressed, b.triggers_suppressed);
  EXPECT_EQ(a.backup_ticks, b.backup_ticks);
  EXPECT_EQ(a.backup_ticks_lost, b.backup_ticks_lost);
  EXPECT_EQ(a.inj_triggers_suppressed, b.inj_triggers_suppressed);
  EXPECT_EQ(a.inj_backups_dropped, b.inj_backups_dropped);
  // And a different seed perturbs the run (the loss pattern moves).
  RunResult c = RunDroughtScenario(/*degradation_on=*/true, /*seed=*/22);
  EXPECT_NE(a.inj_backups_dropped, c.inj_backups_dropped);
}

// --- Handler overrun -> quarantine ------------------------------------------

TEST(FaultInjectionTest, QuarantineBoundsCollateralDamage) {
  Simulator sim;
  Kernel::Config kc;
  kc.profile = MachineProfile::PentiumII300();
  kc.idle_poll_jitter_sigma = 0;
  kc.degradation.enabled = true;
  kc.degradation.handler_budget_ticks = 50;
  kc.degradation.quarantine_after_strikes = 2;
  kc.degradation.quarantine_release_after_clean = 1'000'000;  // no release here
  Kernel kernel(&sim, kc);
  kernel.cpu(0).Submit(SimDuration::Seconds(10));

  constexpr uint32_t kRogueTag = 9;
  fault::FaultPlan plan;
  plan.handler_overruns.push_back(
      {{0, 40'000}, kRogueTag, SimDuration::Micros(500)});
  SimClockSource true_clock(&sim, kMeasureHz);
  fault::FaultInjector inj(&true_clock, plan, 3);
  inj.InstallOn(&kernel);

  std::function<void()> trig = [&] {
    kernel.Trigger(TriggerSource::kSyscall);
    sim.ScheduleAfter(SimDuration::Micros(40), trig);
  };
  sim.ScheduleAfter(SimDuration::Micros(40), trig);

  // The rogue handler reschedules itself forever.
  uint64_t rogue_fires = 0;
  std::function<void(const SoftTimerFacility::FireInfo&)> rogue =
      [&](const SoftTimerFacility::FireInfo&) {
        ++rogue_fires;
        kernel.soft_timers().ScheduleSoftEvent(200, rogue, kRogueTag);
      };
  kernel.soft_timers().ScheduleSoftEvent(200, rogue, kRogueTag);

  // Innocent short-delay events; their lateness is the collateral damage.
  uint64_t victim_max_late_after_quarantine = 0;
  uint64_t victims_after_quarantine = 0;
  std::function<void()> victim = [&] {
    if (kernel.soft_timers().MeasureTime() >= 18'000) {
      return;
    }
    uint64_t born = kernel.soft_timers().MeasureTime();
    kernel.soft_timers().ScheduleSoftEvent(
        50, [&, born](const SoftTimerFacility::FireInfo& info) {
          // Skip the pre-quarantine warmup: the first two rogue dispatches
          // legitimately stall the kernel for 500 us each.
          if (born >= 3'000) {
            ++victims_after_quarantine;
            victim_max_late_after_quarantine =
                std::max(victim_max_late_after_quarantine, info.lateness_ticks());
          }
        });
    sim.ScheduleAfter(SimDuration::Micros(300), victim);
  };
  sim.ScheduleAfter(SimDuration::Micros(10), victim);

  sim.RunUntil(SimTime::Zero() + SimDuration::Millis(20));

  const DegradationPolicy* p = kernel.soft_timers().degradation();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->stats().quarantines, 1u);
  EXPECT_TRUE(p->IsQuarantined(kRogueTag));
  EXPECT_GT(p->stats().deferred_quarantine, 0u);
  // The rogue still makes progress - via backup-interrupt dispatches, with
  // its overrun capped at the budget by the host watchdog.
  EXPECT_GT(rogue_fires, 5u);
  // Collateral damage bound: once the rogue is quarantined, no innocent
  // event is delayed by more than one backup period.
  ASSERT_GT(victims_after_quarantine, 20u);
  EXPECT_LE(victim_max_late_after_quarantine, kX);
}

// --- Batch cap ---------------------------------------------------------------

TEST(FaultInjectionTest, BatchCapBoundsDispatchesPerCheck) {
  Simulator sim;
  SimClockSource clock(&sim, kMeasureHz);
  SoftTimerFacility::Config cfg;
  cfg.degradation.enabled = true;
  cfg.degradation.max_dispatches_per_check = 4;
  SoftTimerFacility fac(&clock, cfg);

  int fired = 0;
  for (int i = 0; i < 20; ++i) {
    fac.ScheduleSoftEvent(10, [&](const SoftTimerFacility::FireInfo&) { ++fired; });
  }
  sim.RunUntil(SimTime::Zero() + SimDuration::Micros(100));
  // Each check dispatches at most 4 handlers and carries the rest forward.
  for (int check = 1; check <= 5; ++check) {
    EXPECT_EQ(fac.OnTriggerState(TriggerSource::kSyscall), 4u)
        << "check " << check;
    EXPECT_EQ(fired, 4 * check);
    sim.RunUntil(SimTime::Zero() + SimDuration::Micros(100 + check));
  }
  EXPECT_EQ(fac.OnTriggerState(TriggerSource::kSyscall), 0u);
  EXPECT_EQ(fac.degradation()->stats().deferred_batch_cap, 16u + 12u + 8u + 4u);
}

TEST(FaultInjectionTest, QuarantinedEventsDeferToBackupAndStayCancellable) {
  Simulator sim;
  SimClockSource clock(&sim, kMeasureHz);
  SoftTimerFacility::Config cfg;
  cfg.degradation.enabled = true;
  cfg.degradation.handler_budget_ticks = 10;
  cfg.degradation.quarantine_after_strikes = 1;
  SoftTimerFacility fac(&clock, cfg);
  // The host reports a huge cost for tag 9 dispatches.
  fac.set_dispatch_cost_probe([](const SoftTimerFacility::FireInfo& info) {
    return info.handler_tag == 9 ? uint64_t{100} : uint64_t{0};
  });

  int fired = 0;
  fac.ScheduleSoftEvent(5, [&](const SoftTimerFacility::FireInfo&) { ++fired; }, 9);
  sim.RunUntil(SimTime::Zero() + SimDuration::Micros(10));
  EXPECT_EQ(fac.OnTriggerState(TriggerSource::kSyscall), 1u);  // first strike
  EXPECT_EQ(fired, 1);
  ASSERT_TRUE(fac.degradation()->IsQuarantined(9));

  // A new tag-9 event is deferred at ordinary trigger states...
  int fired2 = 0;
  fac.ScheduleSoftEvent(5, [&](const SoftTimerFacility::FireInfo& info) {
    ++fired2;
    EXPECT_EQ(info.source, TriggerSource::kBackupIntr);
  }, 9);
  sim.RunUntil(SimTime::Zero() + SimDuration::Micros(20));
  EXPECT_EQ(fac.OnTriggerState(TriggerSource::kSyscall), 0u);
  sim.RunUntil(SimTime::Zero() + SimDuration::Micros(25));
  EXPECT_EQ(fac.OnTriggerState(TriggerSource::kIpOutput), 0u);
  EXPECT_EQ(fired2, 0);
  // ...but fires at the backup interrupt.
  sim.RunUntil(SimTime::Zero() + SimDuration::Micros(30));
  EXPECT_EQ(fac.OnBackupInterrupt(), 1u);
  EXPECT_EQ(fired2, 1);

  // A deferred event's public id keeps working for cancellation.
  int fired3 = 0;
  SoftEventId id = fac.ScheduleSoftEvent(
      5, [&](const SoftTimerFacility::FireInfo&) { ++fired3; }, 9);
  sim.RunUntil(SimTime::Zero() + SimDuration::Micros(40));
  EXPECT_EQ(fac.OnTriggerState(TriggerSource::kSyscall), 0u);  // deferred
  EXPECT_TRUE(fac.CancelSoftEvent(id));
  sim.RunUntil(SimTime::Zero() + SimDuration::Micros(50));
  fac.OnBackupInterrupt();
  EXPECT_EQ(fired3, 0);
}

// --- Clock anomalies ---------------------------------------------------------

TEST(FaultyClockSourceTest, StallFreezesThenLagsAndJumpLeaps) {
  Simulator sim;
  SimClockSource base(&sim, kMeasureHz);
  fault::FaultyClockSource fc(&base, {{1'000, 500}}, {{3'000, 300}});
  uint64_t prev = 0;
  auto at = [&](int64_t us) {
    sim.RunUntil(SimTime::Zero() + SimDuration::Micros(static_cast<double>(us)));
    uint64_t t = fc.NowTicks();
    EXPECT_GE(t, prev) << "monotonicity at true tick " << us;
    prev = t;
    return t;
  };
  EXPECT_EQ(at(999), 999u);
  EXPECT_EQ(at(1'200), 1'000u);  // frozen
  EXPECT_EQ(at(1'500), 1'000u);  // stall ends: lost exactly 500
  EXPECT_EQ(at(1'600), 1'100u);  // running again, lagging by 500
  EXPECT_EQ(at(2'999), 2'499u);
  EXPECT_EQ(at(3'000), 2'800u);  // jump: -500 + 300
  EXPECT_EQ(fc.ResolutionHz(), kMeasureHz);
}

TEST(FaultInjectionTest, FacilityToleratesClockStall) {
  Simulator sim;
  SimClockSource base(&sim, kMeasureHz);
  fault::FaultyClockSource fc(&base, {{100, 400}}, {});
  SoftTimerFacility::Config cfg;
  SoftTimerFacility fac(&fc, cfg);

  // Schedule while the clock is frozen at tick 100 (true time 150 us).
  sim.RunUntil(SimTime::Zero() + SimDuration::Micros(150));
  ASSERT_EQ(fac.MeasureTime(), 100u);
  int fired = 0;
  fac.ScheduleSoftEvent(20, [&](const SoftTimerFacility::FireInfo& info) {
    ++fired;
    // The anomaly must not wrap lateness into a huge value.
    EXPECT_LT(info.lateness_ticks(), 1'000u);
  });
  // Checks during the stall see no progress, so nothing fires.
  for (int us = 200; us <= 500; us += 100) {
    sim.RunUntil(SimTime::Zero() + SimDuration::Micros(static_cast<double>(us)));
    fac.OnTriggerState(TriggerSource::kSyscall);
  }
  EXPECT_EQ(fired, 0);
  // 525 us true time = tick 125 >= deadline 121: fires, 375 us of true time
  // late but only a few ticks late on the measured clock.
  sim.RunUntil(SimTime::Zero() + SimDuration::Micros(525));
  fac.OnTriggerState(TriggerSource::kSyscall);
  EXPECT_EQ(fired, 1);
  EXPECT_LT(fac.stats().lateness_ticks.max(), 1'000.0);
}

// --- Link faults -------------------------------------------------------------

TEST(FaultInjectionTest, LinkBurstLossDropsOnTheWire) {
  Simulator sim;
  Link link(&sim, Link::Config{});
  uint64_t received = 0;
  link.set_receiver([&](const Packet&) { ++received; });

  SimClockSource clock(&sim, kMeasureHz);
  fault::FaultPlan plan;
  plan.link_faults.push_back({{0, 10'000'000}, 0.5, 0.0});
  fault::FaultInjector inj(&clock, plan, 42);
  inj.InstallOn(&link);

  const int kPackets = 200;
  for (int i = 0; i < kPackets; ++i) {
    sim.ScheduleAt(SimTime::Zero() + SimDuration::Micros(20.0 * (i + 1)), [&] {
      Packet p;
      p.size_bytes = 125;
      ASSERT_TRUE(link.Send(p));
    });
  }
  sim.RunUntil(SimTime::Zero() + SimDuration::Millis(100));

  EXPECT_EQ(link.stats().sent, static_cast<uint64_t>(kPackets));
  EXPECT_EQ(received + inj.stats().packets_dropped, static_cast<uint64_t>(kPackets));
  EXPECT_EQ(link.stats().fault_dropped, inj.stats().packets_dropped);
  // p = 0.5 over 200 trials: loss should be in a broad central range.
  EXPECT_GT(inj.stats().packets_dropped, 60u);
  EXPECT_LT(inj.stats().packets_dropped, 140u);
}

TEST(FaultInjectionTest, PacketLossDistinguishesDataFromAcks) {
  Simulator sim;
  SimClockSource clock(&sim, kMeasureHz);
  fault::FaultPlan plan;
  // Drop every data segment, no ACKs, inside the window.
  fault::FaultPlan::PacketLoss loss;
  loss.window = {0, 10'000'000};
  loss.data_drop_probability = 1.0;
  loss.ack_drop_probability = 0.0;
  plan.packet_loss.push_back(loss);
  fault::FaultInjector inj(&clock, plan, 7);

  Packet data;
  data.kind = Packet::Kind::kData;
  Packet ack;
  ack.kind = Packet::Kind::kAck;
  Packet syn;
  syn.kind = Packet::Kind::kSyn;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(inj.LinkAction(data), Link::FaultAction::kDrop);
    EXPECT_EQ(inj.LinkAction(ack), Link::FaultAction::kNone);
    // Kinds outside data/ack pass through a PacketLoss-only plan.
    EXPECT_EQ(inj.LinkAction(syn), Link::FaultAction::kNone);
  }
  EXPECT_EQ(inj.stats().data_dropped, 10u);
  EXPECT_EQ(inj.stats().acks_dropped, 0u);

  // The convenience queries agree with LinkAction.
  EXPECT_TRUE(inj.DropDataSegment());
  EXPECT_FALSE(inj.DropAck());
}

TEST(FaultInjectionTest, AckLossIsProbabilisticAndSeedStable) {
  Simulator sim;
  SimClockSource clock(&sim, kMeasureHz);
  fault::FaultPlan plan;
  fault::FaultPlan::PacketLoss loss;
  loss.window = {0, 10'000'000};
  loss.ack_drop_probability = 0.3;
  plan.packet_loss.push_back(loss);

  auto run = [&](uint64_t seed) {
    fault::FaultInjector inj(&clock, plan, seed);
    uint64_t dropped = 0;
    for (int i = 0; i < 1000; ++i) {
      if (inj.DropAck()) {
        ++dropped;
      }
    }
    return dropped;
  };
  uint64_t a = run(42);
  // p = 0.3 over 1000 trials: broad central range.
  EXPECT_GT(a, 200u);
  EXPECT_LT(a, 400u);
  // Same (plan, seed) reproduces the exact verdict count.
  EXPECT_EQ(a, run(42));
}

TEST(FaultInjectionTest, BurstLossDropsExactlyCountThenStops) {
  Simulator sim;
  SimClockSource clock(&sim, kMeasureHz);
  fault::FaultPlan plan;
  fault::FaultPlan::BurstLoss burst;
  burst.window = {0, 10'000'000};
  burst.count = 5;
  burst.match_data = true;
  burst.match_acks = false;
  plan.burst_loss.push_back(burst);
  fault::FaultInjector inj(&clock, plan, 1);

  Packet data;
  data.kind = Packet::Kind::kData;
  Packet ack;
  ack.kind = Packet::Kind::kAck;
  uint64_t dropped = 0;
  for (int i = 0; i < 20; ++i) {
    // ACKs never match this burst and never consume its budget.
    EXPECT_EQ(inj.LinkAction(ack), Link::FaultAction::kNone);
    if (inj.LinkAction(data) == Link::FaultAction::kDrop) {
      ++dropped;
    }
  }
  // Deterministic: exactly the first `count` data packets, regardless of
  // seed or interleaving.
  EXPECT_EQ(dropped, 5u);
  EXPECT_EQ(inj.stats().burst_dropped, 5u);
  EXPECT_EQ(inj.stats().data_dropped, 0u);
}

TEST(FaultInjectionTest, BurstLossOnTheWireForcesRetransmissionWindow) {
  // Wire-level integration: a Link with a burst plan delivers everything
  // except the burst, matching the injector's own accounting.
  Simulator sim;
  Link link(&sim, Link::Config{});
  uint64_t received = 0;
  link.set_receiver([&](const Packet&) { ++received; });

  SimClockSource clock(&sim, kMeasureHz);
  fault::FaultPlan plan;
  fault::FaultPlan::BurstLoss burst;
  burst.window = {0, 10'000'000};
  burst.count = 7;
  plan.burst_loss.push_back(burst);
  fault::FaultInjector inj(&clock, plan, 42);
  inj.InstallOn(&link);

  const int kPackets = 50;
  for (int i = 0; i < kPackets; ++i) {
    sim.ScheduleAt(SimTime::Zero() + SimDuration::Micros(20.0 * (i + 1)), [&] {
      Packet p;
      p.kind = Packet::Kind::kData;
      p.size_bytes = 125;
      ASSERT_TRUE(link.Send(p));
    });
  }
  sim.RunUntil(SimTime::Zero() + SimDuration::Millis(100));

  EXPECT_EQ(received, static_cast<uint64_t>(kPackets) - 7u);
  EXPECT_EQ(link.stats().fault_dropped, 7u);
  EXPECT_EQ(inj.stats().burst_dropped, 7u);
}

TEST(FaultInjectionTest, LinkDuplicationDeliversTwice) {
  Simulator sim;
  Link link(&sim, Link::Config{});
  uint64_t received = 0;
  link.set_receiver([&](const Packet&) { ++received; });

  SimClockSource clock(&sim, kMeasureHz);
  fault::FaultPlan plan;
  plan.link_faults.push_back({{0, 10'000'000}, 0.0, 1.0});
  fault::FaultInjector inj(&clock, plan, 42);
  inj.InstallOn(&link);

  const int kPackets = 50;
  for (int i = 0; i < kPackets; ++i) {
    sim.ScheduleAt(SimTime::Zero() + SimDuration::Micros(20.0 * (i + 1)), [&] {
      Packet p;
      p.size_bytes = 125;
      ASSERT_TRUE(link.Send(p));
    });
  }
  sim.RunUntil(SimTime::Zero() + SimDuration::Millis(100));

  EXPECT_EQ(received, static_cast<uint64_t>(2 * kPackets));
  EXPECT_EQ(link.stats().fault_duplicated, static_cast<uint64_t>(kPackets));
  EXPECT_EQ(inj.stats().packets_duplicated, static_cast<uint64_t>(kPackets));
}

}  // namespace
}  // namespace softtimer
