// Workload-shape variations through the HTTP testbed: response size scaling,
// request pipelining depth, and NIC/link parameter sensitivity - the knobs a
// downstream user of the library will turn first.

#include <gtest/gtest.h>

#include "src/httpsim/http_testbed.h"

namespace softtimer {
namespace {

double Throughput(HttpTestbed::Config cfg) {
  HttpTestbed bed(cfg);
  return bed.Measure(SimDuration::Millis(200), SimDuration::Millis(800)).conn_per_sec;
}

HttpTestbed::Config Base() {
  HttpTestbed::Config cfg;
  cfg.profile = MachineProfile::PentiumII300();
  return cfg;
}

TEST(HttpVariantsTest, LargerFilesLowerConnectionThroughput) {
  HttpTestbed::Config small = Base();
  small.workload.file_bytes = 1024;
  HttpTestbed::Config big = Base();
  big.workload.file_bytes = 64 * 1024;
  double xs = Throughput(small);
  double xb = Throughput(big);
  EXPECT_GT(xs, xb * 1.5);
}

TEST(HttpVariantsTest, ResponseBytesMatchConfiguredFileSize) {
  for (uint32_t bytes : {512u, 6144u, 20'000u}) {
    HttpTestbed::Config cfg = Base();
    cfg.workload.file_bytes = bytes;
    HttpTestbed bed(cfg);
    bed.Measure(SimDuration::Millis(200), SimDuration::Millis(400));
    uint64_t expected_packets =
        (bytes + cfg.workload.response_header_bytes + kDefaultMss - 1) / kDefaultMss;
    double per_resp = static_cast<double>(bed.server().stats().data_packets_sent) /
                      static_cast<double>(bed.server().stats().responses_completed);
    // Allow for responses still in flight at the window edges.
    EXPECT_NEAR(per_resp, static_cast<double>(expected_packets),
                0.1 * static_cast<double>(expected_packets) + 0.1)
        << bytes;
  }
}

TEST(HttpVariantsTest, DeeperPipeliningAmortizesMore) {
  HttpTestbed::Config shallow = Base();
  shallow.workload.persistent = true;
  shallow.workload.requests_per_connection = 2;
  HttpTestbed::Config deep = Base();
  deep.workload.persistent = true;
  deep.workload.requests_per_connection = 20;
  HttpTestbed bs(shallow), bd(deep);
  double rs = bs.Measure(SimDuration::Millis(200), SimDuration::Millis(800)).req_per_sec;
  double rd = bd.Measure(SimDuration::Millis(200), SimDuration::Millis(800)).req_per_sec;
  EXPECT_GT(rd, rs * 1.15);
}

TEST(HttpVariantsTest, MoreLinksRaiseAggregateDeliveryNotCpuBoundThroughput) {
  // The server CPU is the bottleneck: going 3 -> 6 links must not change
  // throughput much (the paper's testbeds were CPU-saturated).
  HttpTestbed::Config three = Base();
  three.num_links = 3;
  HttpTestbed::Config six = Base();
  six.num_links = 6;
  double x3 = Throughput(three);
  double x6 = Throughput(six);
  EXPECT_NEAR(x6 / x3, 1.0, 0.15);
}

TEST(HttpVariantsTest, SlowerLanBecomesTheBottleneck) {
  HttpTestbed::Config slow = Base();
  slow.num_links = 1;
  slow.lan_bandwidth_bps = 5e6;  // 5 Mbps: ~1.5 ms serialization per response
  double x = Throughput(slow);
  // 5 Mbps / (6.4 KB + overhead) ~= 90 conn/s tops.
  EXPECT_LT(x, 120);
}

TEST(HttpVariantsTest, FasterMachineScalesAllServerKinds) {
  for (auto kind : {HttpServerModel::ServerKind::kApache, HttpServerModel::ServerKind::kFlash}) {
    HttpTestbed::Config slow = Base();
    slow.server.kind = kind;
    HttpTestbed::Config fast = Base();
    fast.server.kind = kind;
    fast.profile = MachineProfile::PentiumIII500Xeon();
    double r = Throughput(fast) / Throughput(slow);
    EXPECT_GT(r, 1.3);
    EXPECT_LT(r, 1.9);
  }
}

}  // namespace
}  // namespace softtimer
