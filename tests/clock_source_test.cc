#include "src/core/clock_source.h"

#include <gtest/gtest.h>

namespace softtimer {
namespace {

TEST(SimClockSourceTest, TickComputation) {
  Simulator sim;
  SimClockSource clock(&sim, 1'000'000);  // 1 MHz: 1 tick = 1 us
  EXPECT_EQ(clock.NowTicks(), 0u);
  sim.RunUntil(SimTime::FromNanos(999));
  EXPECT_EQ(clock.NowTicks(), 0u);  // floor
  sim.RunUntil(SimTime::FromNanos(1000));
  EXPECT_EQ(clock.NowTicks(), 1u);
  sim.RunUntil(SimTime::FromNanos(123'456'789));
  EXPECT_EQ(clock.NowTicks(), 123'456u);
}

TEST(SimClockSourceTest, HighResolutionClock) {
  Simulator sim;
  SimClockSource clock(&sim, 100'000'000);  // 100 MHz: 1 tick = 10 ns
  sim.RunUntil(SimTime::FromNanos(25));
  EXPECT_EQ(clock.NowTicks(), 2u);
  EXPECT_EQ(clock.TickPeriod().nanos(), 10);
}

TEST(SimClockSourceTest, TimeOfTickIsInverseOfNowTicks) {
  Simulator sim;
  SimClockSource clock(&sim, 1'000'000);
  for (uint64_t tick : {0ULL, 1ULL, 17ULL, 1000ULL, 123'456ULL}) {
    SimTime t = clock.TimeOfTick(tick);
    // At exactly t, NowTicks() >= tick; one nanosecond earlier it is < tick.
    Simulator sim2;
    SimClockSource c2(&sim2, 1'000'000);
    sim2.RunUntil(t);
    EXPECT_GE(c2.NowTicks(), tick);
    if (t > SimTime::Zero()) {
      Simulator sim3;
      SimClockSource c3(&sim3, 1'000'000);
      sim3.RunUntil(t - SimDuration::Nanos(1));
      EXPECT_LT(c3.NowTicks(), tick);
    }
  }
}

TEST(SimClockSourceTest, ResolutionHz) {
  Simulator sim;
  SimClockSource clock(&sim, 44'100);
  EXPECT_EQ(clock.ResolutionHz(), 44'100u);
}

}  // namespace
}  // namespace softtimer
