// Real-time host tests. These use actual wall-clock sleeps; delays are kept
// in the hundreds-of-microseconds range and assertions are loose upper
// bounds so the suite stays robust on loaded machines.

#include "src/rt/rt_soft_timer_host.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace softtimer {
namespace {

TEST(MonotonicClockSourceTest, TicksAdvanceWithWallTime) {
  MonotonicClockSource clock(1'000'000);
  uint64_t t0 = clock.NowTicks();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  uint64_t t1 = clock.NowTicks();
  EXPECT_GE(t1 - t0, 2'000u);   // at least 2 ms of 1 us ticks
  EXPECT_LT(t1 - t0, 500'000u);  // and not absurdly more
}

TEST(MonotonicClockSourceTest, UntilTickIsZeroForPast) {
  MonotonicClockSource clock(1'000'000);
  EXPECT_EQ(clock.UntilTick(0).count(), 0);
  uint64_t future = clock.NowTicks() + 10'000;
  auto wait = clock.UntilTick(future);
  EXPECT_GT(wait.count(), 5'000'000);   // > 5 ms
  EXPECT_LE(wait.count(), 10'100'000);  // <= ~10 ms
}

TEST(RtHostTest, EventFiresFromApplicationPolls) {
  RtSoftTimerHost host;
  bool fired = false;
  auto start = std::chrono::steady_clock::now();
  host.facility().ScheduleSoftEvent(500,  // 500 us
                                    [&](const SoftTimerFacility::FireInfo&) { fired = true; });
  while (!fired &&
         std::chrono::steady_clock::now() - start < std::chrono::milliseconds(200)) {
    // A busy event loop passing through its trigger point.
    host.PollTriggerState();
  }
  EXPECT_TRUE(fired);
  auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_GE(elapsed, 500);
}

TEST(RtHostTest, SleepAndDispatchHonorsDeadline) {
  RtSoftTimerHost host;
  bool fired = false;
  host.facility().ScheduleSoftEvent(1'000,
                                    [&](const SoftTimerFacility::FireInfo&) { fired = true; });
  auto start = std::chrono::steady_clock::now();
  while (!fired &&
         std::chrono::steady_clock::now() - start < std::chrono::milliseconds(500)) {
    host.SleepAndDispatch();
  }
  EXPECT_TRUE(fired);
  auto elapsed_us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  EXPECT_GE(elapsed_us, 1'000);
  // Generous bound: scheduler jitter, but nowhere near the 500 ms cap.
  EXPECT_LT(elapsed_us, 300'000);
}

TEST(RtHostTest, SleepWithoutEventsBoundsAtBackupPeriod) {
  RtSoftTimerHost::Config cfg;
  cfg.interrupt_clock_hz = 1'000;  // 1 ms backup
  RtSoftTimerHost host(cfg);
  auto start = std::chrono::steady_clock::now();
  host.SleepAndDispatch();
  auto elapsed_us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  EXPECT_GE(elapsed_us, 900);
  EXPECT_LT(elapsed_us, 100'000);
  EXPECT_EQ(host.stats().backup_checks, 1u);
}

TEST(RtHostTest, RunForDispatchesPeriodicWork) {
  RtSoftTimerHost host;
  int fires = 0;
  std::function<void(const SoftTimerFacility::FireInfo&)> periodic =
      [&](const SoftTimerFacility::FireInfo&) {
        ++fires;
        host.facility().ScheduleSoftEvent(1'000, periodic);  // every ~1 ms
      };
  host.facility().ScheduleSoftEvent(1'000, periodic);
  host.RunFor(std::chrono::milliseconds(30));
  // ~30 fires expected; accept a broad band for loaded CI machines.
  EXPECT_GE(fires, 10);
  EXPECT_LE(fires, 40);
}

TEST(RtHostTest, LatenessStaysWithinPaperBoundUnderSleepLoop) {
  RtSoftTimerHost host;
  uint64_t x = host.facility().ticks_per_backup_interval();
  SummaryStats lateness;
  std::function<void(const SoftTimerFacility::FireInfo&)> handler =
      [&](const SoftTimerFacility::FireInfo& info) {
        lateness.Add(static_cast<double>(info.lateness_ticks()));
        if (lateness.count() < 20) {
          host.facility().ScheduleSoftEvent(700, handler);
        }
      };
  host.facility().ScheduleSoftEvent(700, handler);
  host.RunFor(std::chrono::milliseconds(60));
  ASSERT_GE(lateness.count(), 10u);
  // T < actual: lateness >= 1 always. The upper bound holds as long as the
  // OS wakes us near the requested time; allow generous scheduler slop for
  // loaded CI machines.
  EXPECT_GE(lateness.min(), 1.0);
  EXPECT_LT(lateness.max(), static_cast<double>(6 * x));
}

}  // namespace
}  // namespace softtimer
