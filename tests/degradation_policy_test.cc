// Unit tests for DegradationPolicy: drought detection via check density and
// backlog age, backup-rate escalation with per-interval rate limiting and
// hysteresis de-escalation, and the handler budget / quarantine machinery.

#include "src/core/degradation_policy.h"

#include <gtest/gtest.h>

#include <vector>

namespace softtimer {
namespace {

constexpr uint64_t kX = 1000;  // ticks per backup interval

DegradationPolicy::Config BaseConfig() {
  DegradationPolicy::Config c;
  c.enabled = true;
  c.density_floor_checks_per_interval = 4;
  c.backlog_age_factor = 2.0;
  c.max_backup_rate_multiplier = 8;
  c.deescalate_after_healthy_intervals = 4;
  return c;
}

// One sparse check per interval, with events pending.
void SparseInterval(DegradationPolicy& p, uint64_t interval_index) {
  p.OnCheck(interval_index * kX + 500, TriggerSource::kSyscall, std::nullopt, 1);
}

// Plenty of checks in an interval (>= floor), nothing pending.
void HealthyInterval(DegradationPolicy& p, uint64_t interval_index) {
  for (uint64_t i = 0; i < 8; ++i) {
    p.OnCheck(interval_index * kX + 100 + i * 100, TriggerSource::kSyscall,
              std::nullopt, 0);
  }
}

TEST(DegradationPolicyTest, SparseIntervalsWithPendingWorkEscalate) {
  DegradationPolicy p(BaseConfig(), kX);
  EXPECT_EQ(p.backup_rate_multiplier(), 1u);
  SparseInterval(p, 0);
  EXPECT_EQ(p.backup_rate_multiplier(), 1u);  // density judged at transition
  SparseInterval(p, 1);
  EXPECT_EQ(p.backup_rate_multiplier(), 2u);
  EXPECT_TRUE(p.in_drought());
  EXPECT_EQ(p.stats().escalations, 1u);
  EXPECT_EQ(p.stats().droughts_detected, 1u);
}

TEST(DegradationPolicyTest, SparseIntervalsWithoutPendingWorkDoNotEscalate) {
  DegradationPolicy p(BaseConfig(), kX);
  for (uint64_t i = 0; i < 10; ++i) {
    p.OnCheck(i * kX + 500, TriggerSource::kSyscall, std::nullopt, 0);
  }
  EXPECT_EQ(p.backup_rate_multiplier(), 1u);
  EXPECT_EQ(p.stats().escalations, 0u);
}

TEST(DegradationPolicyTest, DenseIntervalsStayNominal) {
  DegradationPolicy p(BaseConfig(), kX);
  for (uint64_t i = 0; i < 10; ++i) {
    for (uint64_t c = 0; c < 8; ++c) {
      p.OnCheck(i * kX + 100 + c * 100, TriggerSource::kSyscall, std::nullopt, 3);
    }
  }
  EXPECT_EQ(p.backup_rate_multiplier(), 1u);
}

TEST(DegradationPolicyTest, SkippedIntervalsEscalateEvenWithOneFatBurst) {
  // 8 checks land in interval 0, then nothing until interval 5: the skipped
  // span means no check of any kind ran for whole backup periods.
  DegradationPolicy p(BaseConfig(), kX);
  HealthyInterval(p, 0);
  p.OnCheck(5 * kX + 10, TriggerSource::kBackupIntr, std::nullopt, 2);
  EXPECT_EQ(p.backup_rate_multiplier(), 2u);
}

TEST(DegradationPolicyTest, OverdueBacklogEscalatesRegardlessOfDensity) {
  DegradationPolicy p(BaseConfig(), kX);
  // Earliest deadline 2 * X + 1 ticks overdue -> escalate on the spot.
  uint64_t now = 10'000;
  p.OnCheck(now, TriggerSource::kSyscall, now - (2 * kX + 1), 5);
  EXPECT_EQ(p.backup_rate_multiplier(), 2u);
  EXPECT_EQ(p.stats().escalations, 1u);
}

TEST(DegradationPolicyTest, FreshBacklogDoesNotEscalate) {
  DegradationPolicy p(BaseConfig(), kX);
  uint64_t now = 10'000;
  p.OnCheck(now, TriggerSource::kSyscall, now - kX, 5);  // only X overdue
  EXPECT_EQ(p.backup_rate_multiplier(), 1u);
}

TEST(DegradationPolicyTest, EscalationRateLimitedToOneStepPerInterval) {
  DegradationPolicy p(BaseConfig(), kX);
  uint64_t now = 10'000;
  // A burst of unhealthy checks within one backup interval: one step only.
  for (uint64_t i = 0; i < 20; ++i) {
    p.OnCheck(now + i, TriggerSource::kSyscall, now - 3 * kX, 5);
  }
  EXPECT_EQ(p.backup_rate_multiplier(), 2u);
  EXPECT_EQ(p.stats().escalations, 1u);
  // A full interval later the next step is allowed.
  p.OnCheck(now + kX, TriggerSource::kSyscall, now - 3 * kX, 5);
  EXPECT_EQ(p.backup_rate_multiplier(), 4u);
}

TEST(DegradationPolicyTest, MultiplierCapsAtConfiguredMax) {
  DegradationPolicy p(BaseConfig(), kX);
  for (uint64_t i = 0; i < 10; ++i) {
    p.OnCheck(10'000 + i * kX, TriggerSource::kSyscall, 1'000, 5);
  }
  EXPECT_EQ(p.backup_rate_multiplier(), 8u);
  EXPECT_EQ(p.stats().escalations, 3u);  // 2, 4, 8
}

TEST(DegradationPolicyTest, DeescalationNeedsHealthyStreak) {
  DegradationPolicy p(BaseConfig(), kX);
  SparseInterval(p, 0);
  SparseInterval(p, 1);
  ASSERT_EQ(p.backup_rate_multiplier(), 2u);
  // Three healthy-interval transitions: not enough (hysteresis wants 4).
  for (uint64_t i = 2; i <= 3; ++i) {
    HealthyInterval(p, i);
  }
  SparseInterval(p, 4);  // closes interval 3 (healthy): streak hits 3
  EXPECT_EQ(p.backup_rate_multiplier(), 2u);

  DegradationPolicy q(BaseConfig(), kX);
  SparseInterval(q, 0);
  SparseInterval(q, 1);
  ASSERT_EQ(q.backup_rate_multiplier(), 2u);
  for (uint64_t i = 2; i <= 6; ++i) {
    HealthyInterval(q, i);  // 5 transitions observed: streak reaches 4
  }
  EXPECT_EQ(q.backup_rate_multiplier(), 1u);
  EXPECT_FALSE(q.in_drought());
  EXPECT_EQ(q.stats().deescalations, 1u);
  EXPECT_EQ(q.stats().droughts_ended, 1u);
}

TEST(DegradationPolicyTest, DroughtListenersFireOnTransitions) {
  DegradationPolicy p(BaseConfig(), kX);
  std::vector<bool> events;
  p.AddDroughtListener([&](bool entering) { events.push_back(entering); });
  SparseInterval(p, 0);
  SparseInterval(p, 1);  // enter drought
  SparseInterval(p, 3);  // further escalation: no new transition event
  ASSERT_EQ(p.backup_rate_multiplier(), 4u);
  for (uint64_t i = 4; i < 20; ++i) {
    HealthyInterval(p, i);  // decay 4 -> 2 -> 1
  }
  ASSERT_EQ(p.backup_rate_multiplier(), 1u);
  EXPECT_EQ(events, (std::vector<bool>{true, false}));
}

// --- Handler budget / quarantine -------------------------------------------

DegradationPolicy::Config BudgetConfig() {
  DegradationPolicy::Config c = BaseConfig();
  c.handler_budget_ticks = 100;
  c.quarantine_after_strikes = 3;
  c.quarantine_release_after_clean = 4;
  return c;
}

TEST(DegradationPolicyTest, ConsecutiveOverrunsQuarantine) {
  DegradationPolicy p(BudgetConfig(), kX);
  p.OnDispatchCost(7, 150);
  p.OnDispatchCost(7, 150);
  EXPECT_FALSE(p.IsQuarantined(7));
  p.OnDispatchCost(7, 150);
  EXPECT_TRUE(p.IsQuarantined(7));
  EXPECT_EQ(p.stats().budget_overruns, 3u);
  EXPECT_EQ(p.stats().quarantines, 1u);
  EXPECT_EQ(p.quarantined_count(), 1u);
}

TEST(DegradationPolicyTest, CleanDispatchResetsStrikes) {
  DegradationPolicy p(BudgetConfig(), kX);
  p.OnDispatchCost(7, 150);
  p.OnDispatchCost(7, 150);
  p.OnDispatchCost(7, 10);  // in budget: strikes reset
  p.OnDispatchCost(7, 150);
  p.OnDispatchCost(7, 150);
  EXPECT_FALSE(p.IsQuarantined(7));
}

TEST(DegradationPolicyTest, CostAtBudgetCountsAsOverrun) {
  // A host watchdog caps a quarantined handler's runtime *at* the budget, so
  // cost == budget must keep the tag quarantined rather than read as clean.
  DegradationPolicy p(BudgetConfig(), kX);
  for (int i = 0; i < 3; ++i) {
    p.OnDispatchCost(7, 100);
  }
  EXPECT_TRUE(p.IsQuarantined(7));
  p.OnDispatchCost(7, 100);
  EXPECT_TRUE(p.IsQuarantined(7));
}

TEST(DegradationPolicyTest, CleanStreakReleasesQuarantine) {
  DegradationPolicy p(BudgetConfig(), kX);
  for (int i = 0; i < 3; ++i) {
    p.OnDispatchCost(7, 200);
  }
  ASSERT_TRUE(p.IsQuarantined(7));
  for (int i = 0; i < 3; ++i) {
    p.OnDispatchCost(7, 10);
  }
  EXPECT_TRUE(p.IsQuarantined(7));  // 3 clean < release_after_clean
  p.OnDispatchCost(7, 10);
  EXPECT_FALSE(p.IsQuarantined(7));
  EXPECT_EQ(p.stats().releases, 1u);
  EXPECT_EQ(p.quarantined_count(), 0u);
}

TEST(DegradationPolicyTest, ManualReleaseClearsHistory) {
  DegradationPolicy p(BudgetConfig(), kX);
  for (int i = 0; i < 3; ++i) {
    p.OnDispatchCost(7, 200);
  }
  ASSERT_TRUE(p.IsQuarantined(7));
  p.Release(7);
  EXPECT_FALSE(p.IsQuarantined(7));
  EXPECT_EQ(p.stats().releases, 1u);
  p.Release(7);  // idempotent
  EXPECT_EQ(p.stats().releases, 1u);
}

TEST(DegradationPolicyTest, AnonymousTagExemptFromBudget) {
  DegradationPolicy p(BudgetConfig(), kX);
  for (int i = 0; i < 10; ++i) {
    p.OnDispatchCost(0, 1'000'000);
  }
  EXPECT_FALSE(p.IsQuarantined(0));
  EXPECT_EQ(p.stats().budget_overruns, 0u);
}

TEST(DegradationPolicyTest, ZeroBudgetDisablesEnforcement) {
  DegradationPolicy::Config c = BudgetConfig();
  c.handler_budget_ticks = 0;
  DegradationPolicy p(c, kX);
  for (int i = 0; i < 10; ++i) {
    p.OnDispatchCost(7, 1'000'000);
  }
  EXPECT_FALSE(p.IsQuarantined(7));
}

TEST(DegradationPolicyTest, DeferralAccounting) {
  DegradationPolicy p(BaseConfig(), kX);
  p.NoteDeferred(true);
  p.NoteDeferred(false);
  p.NoteDeferred(false);
  EXPECT_EQ(p.stats().deferred_quarantine, 1u);
  EXPECT_EQ(p.stats().deferred_batch_cap, 2u);
}

}  // namespace
}  // namespace softtimer
