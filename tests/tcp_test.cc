// TCP endpoint tests: receiver ACK policy (delayed ACKs, big ACKs,
// out-of-order dup ACKs) and sender behaviour (slow start, window limits,
// fast retransmit, RTO, rate-based pacing), plus full sender<->receiver
// integration over a WanPath including loss.

#include <gtest/gtest.h>

#include <vector>

#include "src/machine/kernel.h"
#include "src/net/wan_path.h"
#include "src/tcp/tcp_receiver.h"
#include "src/tcp/tcp_sender.h"

namespace softtimer {
namespace {

Packet Segment(uint64_t seq, uint32_t payload, bool fin = false) {
  Packet p;
  p.kind = Packet::Kind::kData;
  p.seq = seq;
  p.payload = payload;
  p.size_bytes = payload + kTcpIpHeaderBytes;
  p.fin = fin;
  return p;
}

// --- Receiver ---------------------------------------------------------------

TEST(TcpReceiverTest, AcksEveryOtherSegment) {
  Simulator sim;
  TcpReceiver rx(&sim, TcpReceiver::Config{});
  std::vector<uint64_t> acks;
  rx.set_ack_sender([&](Packet p) { acks.push_back(p.ack_seq); });
  rx.OnSegment(Segment(0, 1448));
  EXPECT_TRUE(acks.empty());  // first segment: delayed
  rx.OnSegment(Segment(1448, 1448));
  EXPECT_EQ(acks, (std::vector<uint64_t>{2896}));
  rx.Shutdown();
}

TEST(TcpReceiverTest, LoneSegmentWaitsForDelackSweep) {
  Simulator sim;
  TcpReceiver::Config cfg;
  cfg.delack_sweep_phase = SimDuration::Millis(100);
  TcpReceiver rx(&sim, cfg);
  std::vector<int64_t> ack_times;
  rx.set_ack_sender([&](Packet) { ack_times.push_back(sim.now().nanos_since_origin()); });
  sim.RunUntil(SimTime::Zero() + SimDuration::Millis(150));
  rx.OnSegment(Segment(0, 1448));
  sim.RunUntil(SimTime::Zero() + SimDuration::Millis(400));
  // Sweeps run at 100, 300, 500 ms; the 150 ms segment is ACKed at 300 ms.
  ASSERT_EQ(ack_times.size(), 1u);
  EXPECT_EQ(ack_times[0], 300'000'000);
  EXPECT_EQ(rx.stats().delack_fires, 1u);
  rx.Shutdown();
}

TEST(TcpReceiverTest, FinAckedImmediately) {
  Simulator sim;
  TcpReceiver rx(&sim, TcpReceiver::Config{});
  std::vector<uint64_t> acks;
  rx.set_ack_sender([&](Packet p) { acks.push_back(p.ack_seq); });
  rx.OnSegment(Segment(0, 500, /*fin=*/true));
  EXPECT_EQ(acks, (std::vector<uint64_t>{500}));
  rx.Shutdown();
}

TEST(TcpReceiverTest, OutOfOrderGeneratesDupAcksAndReassembles) {
  Simulator sim;
  TcpReceiver rx(&sim, TcpReceiver::Config{});
  std::vector<uint64_t> acks;
  rx.set_ack_sender([&](Packet p) { acks.push_back(p.ack_seq); });
  rx.OnSegment(Segment(0, 1448));
  rx.OnSegment(Segment(2896, 1448));  // hole at 1448
  rx.OnSegment(Segment(4344, 1448));
  // Each out-of-order segment produced a dup ACK at the hole.
  EXPECT_EQ(acks, (std::vector<uint64_t>{1448, 1448}));
  EXPECT_EQ(rx.stats().out_of_order, 2u);
  // Filling the hole delivers everything.
  rx.OnSegment(Segment(1448, 1448));
  EXPECT_EQ(rx.bytes_received(), 5792u);
  rx.Shutdown();
}

TEST(TcpReceiverTest, SpuriousRetransmissionReAcked) {
  Simulator sim;
  TcpReceiver rx(&sim, TcpReceiver::Config{});
  std::vector<uint64_t> acks;
  rx.set_ack_sender([&](Packet p) { acks.push_back(p.ack_seq); });
  rx.OnSegment(Segment(0, 1448));
  rx.OnSegment(Segment(1448, 1448));
  rx.OnSegment(Segment(0, 1448));  // old data again
  EXPECT_EQ(acks, (std::vector<uint64_t>{2896, 2896}));
  rx.Shutdown();
}

TEST(TcpReceiverTest, SlowApplicationProducesBigAcks) {
  // Appendix A.3: ACKs wait for the application read; a burst arriving
  // before the read is covered by one big ACK.
  Simulator sim;
  TcpReceiver::Config cfg;
  cfg.app_read_delay = SimDuration::Millis(5);
  TcpReceiver rx(&sim, cfg);
  std::vector<uint64_t> acks;
  rx.set_ack_sender([&](Packet p) { acks.push_back(p.ack_seq); });
  for (int i = 0; i < 8; ++i) {
    rx.OnSegment(Segment(static_cast<uint64_t>(i) * 1448, 1448));
  }
  EXPECT_TRUE(acks.empty());
  sim.RunUntil(SimTime::Zero() + SimDuration::Millis(10));
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0], 8u * 1448u);
  EXPECT_EQ(rx.stats().max_segments_per_ack, 8u);
  rx.Shutdown();
}

TEST(TcpReceiverTest, NotifyWhenReceivedFires) {
  Simulator sim;
  TcpReceiver rx(&sim, TcpReceiver::Config{});
  bool notified = false;
  rx.NotifyWhenReceived(2896, [&] { notified = true; });
  rx.OnSegment(Segment(0, 1448));
  EXPECT_FALSE(notified);
  rx.OnSegment(Segment(1448, 1448));
  EXPECT_TRUE(notified);
  rx.Shutdown();
}

// --- Sender -----------------------------------------------------------------

struct SenderHarness {
  SenderHarness(TcpSender::Config cfg) : kernel(&sim, KernelCfg()), sender(&kernel, cfg) {
    sender.set_packet_sender([this](Packet p) { sent.push_back(p); });
  }
  static Kernel::Config KernelCfg() {
    Kernel::Config kc;
    kc.profile = MachineProfile::PentiumII300();
    kc.idle_poll_fast_forward = true;
    return kc;
  }
  void AckThrough(uint64_t seq) {
    Packet ack;
    ack.kind = Packet::Kind::kAck;
    ack.ack_seq = seq;
    sender.OnAck(ack);
  }
  Simulator sim;
  Kernel kernel;
  TcpSender sender;
  std::vector<Packet> sent;
};

TEST(TcpSenderTest, SlowStartDoublesPerRoundWithPerAckGrowth) {
  TcpSender::Config cfg;
  cfg.initial_cwnd_segments = 1;
  SenderHarness h(cfg);
  h.sender.StartTransfer(100 * 1448);
  ASSERT_EQ(h.sent.size(), 1u);  // initial window: 1 segment
  h.AckThrough(1448);
  // cwnd 2: two more segments in flight.
  EXPECT_EQ(h.sent.size(), 3u);
  h.AckThrough(3 * 1448);
  // One cumulative ACK covering two segments grows cwnd by one MSS (growth
  // is per ACK received, which is why delayed ACKs slow slow-start): cwnd 3,
  // nothing in flight -> 3 new segments.
  EXPECT_EQ(h.sent.size(), 6u);
}

TEST(TcpSenderTest, RespectsReceiverWindow) {
  TcpSender::Config cfg;
  cfg.initial_cwnd_segments = 100;
  cfg.rwnd_bytes = 4 * 1448;
  SenderHarness h(cfg);
  h.sender.StartTransfer(100 * 1448);
  EXPECT_EQ(h.sent.size(), 4u);  // window-limited despite huge cwnd
}

TEST(TcpSenderTest, MaxBurstLimitsPerAckReleases) {
  TcpSender::Config cfg;
  cfg.initial_cwnd_segments = 1;
  cfg.max_burst_segments = 2;
  SenderHarness h(cfg);
  h.sender.StartTransfer(100 * 1448);
  EXPECT_EQ(h.sent.size(), 1u);
  h.AckThrough(1448);
  h.AckThrough(1448 * 2);  // would open a bigger window...
  // ...but each ACK releases at most 2 segments.
  EXPECT_LE(h.sent.size(), 5u);
}

TEST(TcpSenderTest, FastRetransmitOnTripleDupAck) {
  TcpSender::Config cfg;
  cfg.initial_cwnd_segments = 8;
  SenderHarness h(cfg);
  h.sender.StartTransfer(20 * 1448);
  ASSERT_GE(h.sent.size(), 8u);
  size_t before = h.sent.size();
  h.AckThrough(1448);  // segment 2 lost, later ones arrive:
  for (int i = 0; i < 3; ++i) {
    h.AckThrough(1448);  // dup acks
  }
  EXPECT_EQ(h.sender.stats().fast_retransmits, 1u);
  // The retransmitted segment is the hole (seq 1448).
  bool found = false;
  for (size_t i = before; i < h.sent.size(); ++i) {
    if (h.sent[i].seq == 1448) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(TcpSenderTest, RtoRetransmitsFromHole) {
  TcpSender::Config cfg;
  cfg.initial_cwnd_segments = 2;
  cfg.rto_initial = SimDuration::Millis(100);
  SenderHarness h(cfg);
  h.sender.StartTransfer(4 * 1448);
  size_t before = h.sent.size();
  // No ACKs at all: the RTO fires and resends from seq 0.
  h.sim.RunUntil(SimTime::Zero() + SimDuration::Millis(300));
  EXPECT_GE(h.sender.stats().timeouts, 1u);
  EXPECT_GT(h.sent.size(), before);
  EXPECT_EQ(h.sent[before].seq, 0u);
}

TEST(TcpSenderTest, CompletionFiresWhenFullyAcked) {
  TcpSender::Config cfg;
  cfg.initial_cwnd_segments = 4;
  SenderHarness h(cfg);
  bool complete = false;
  h.sender.StartTransfer(2 * 1448, [&] { complete = true; });
  EXPECT_FALSE(complete);
  h.AckThrough(2 * 1448);
  EXPECT_TRUE(complete);
  EXPECT_TRUE(h.sender.transfer_complete());
}

TEST(TcpSenderTest, RateBasedPacesAtTargetInterval) {
  TcpSender::Config cfg;
  cfg.mode = TcpSender::Mode::kRateBased;
  cfg.pace_target_interval_ticks = 120;
  cfg.pace_min_burst_interval_ticks = 12;
  SenderHarness h(cfg);
  h.sender.StartTransfer(50 * 1448);
  h.sim.RunUntil(SimTime::Zero() + SimDuration::Millis(20));
  ASSERT_EQ(h.sent.size(), 50u);
  // Average spacing ~= 120 us (soft-timer jitter compensated by catch-up).
  double total_us = (h.sent.back().sent_at - h.sent.front().sent_at).ToMicros();
  EXPECT_NEAR(total_us / 49.0, 120.0, 8.0);
  // Last segment carries FIN.
  EXPECT_TRUE(h.sent.back().fin);
}

TEST(TcpSenderTest, RateBasedIgnoresAckClocking) {
  TcpSender::Config cfg;
  cfg.mode = TcpSender::Mode::kRateBased;
  cfg.pace_target_interval_ticks = 100;
  cfg.pace_min_burst_interval_ticks = 12;
  SenderHarness h(cfg);
  h.sender.StartTransfer(10 * 1448);
  // No ACKs arrive at all; everything is still transmitted.
  h.sim.RunUntil(SimTime::Zero() + SimDuration::Millis(5));
  EXPECT_EQ(h.sent.size(), 10u);
}

// --- End-to-end over the WAN -------------------------------------------------

struct E2E {
  explicit E2E(TcpSender::Config scfg, double loss_every_n = 0) : kernel(&sim, KernelCfg()),
        sender(&kernel, scfg), wan(&sim, WanCfg()), receiver(&sim, TcpReceiver::Config{}) {
    sender.set_packet_sender([this, loss_every_n](Packet p) {
      ++tx_count;
      if (loss_every_n > 0 && (tx_count % static_cast<uint64_t>(loss_every_n)) == 0) {
        return;  // drop deterministically
      }
      wan.forward().Send(p);
    });
    wan.forward().set_receiver([this](const Packet& p) { receiver.OnSegment(p); });
    receiver.set_ack_sender([this](Packet p) { wan.reverse().Send(p); });
    wan.reverse().set_receiver([this](const Packet& p) { sender.OnAck(p); });
  }
  static Kernel::Config KernelCfg() {
    Kernel::Config kc;
    kc.profile = MachineProfile::PentiumII300();
    kc.idle_poll_fast_forward = true;
    return kc;
  }
  static WanPath::Config WanCfg() {
    WanPath::Config wc;
    wc.bottleneck_bps = 50e6;
    wc.one_way_delay = SimDuration::Millis(10);
    return wc;
  }
  Simulator sim;
  Kernel kernel;
  TcpSender sender;
  WanPath wan;
  TcpReceiver receiver;
  uint64_t tx_count = 0;
};

TEST(TcpEndToEndTest, LosslessTransferDeliversAllBytesInOrder) {
  TcpSender::Config cfg;
  cfg.initial_cwnd_segments = 2;
  E2E e(cfg);
  bool done = false;
  e.receiver.NotifyWhenReceived(200 * 1448, [&] { done = true; });
  e.sender.StartTransfer(200 * 1448);
  e.sim.RunUntil(SimTime::Zero() + SimDuration::Seconds(10));
  EXPECT_TRUE(done);
  EXPECT_EQ(e.receiver.bytes_received(), 200u * 1448u);
  EXPECT_EQ(e.sender.stats().retransmits, 0u);
}

TEST(TcpEndToEndTest, RecoversFromPeriodicLoss) {
  TcpSender::Config cfg;
  cfg.initial_cwnd_segments = 2;
  cfg.rto_initial = SimDuration::Millis(200);
  E2E e(cfg, /*loss_every_n=*/37);
  bool done = false;
  e.receiver.NotifyWhenReceived(300 * 1448, [&] { done = true; });
  e.sender.StartTransfer(300 * 1448);
  e.sim.RunUntil(SimTime::Zero() + SimDuration::Seconds(60));
  EXPECT_TRUE(done);
  EXPECT_EQ(e.receiver.bytes_received(), 300u * 1448u);
  EXPECT_GT(e.sender.stats().retransmits, 0u);
}

TEST(TcpEndToEndTest, RateBasedTransferCompletesUnderLoss) {
  TcpSender::Config cfg;
  cfg.mode = TcpSender::Mode::kRateBased;
  cfg.pace_target_interval_ticks = 240;
  cfg.pace_min_burst_interval_ticks = 240;
  cfg.rto_initial = SimDuration::Millis(200);
  E2E e(cfg, /*loss_every_n=*/53);
  bool done = false;
  e.receiver.NotifyWhenReceived(150 * 1448, [&] { done = true; });
  e.sender.StartTransfer(150 * 1448);
  e.sim.RunUntil(SimTime::Zero() + SimDuration::Seconds(60));
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace softtimer
