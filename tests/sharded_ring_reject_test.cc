// Full-ring rejection semantics of the cross-core producer API: the
// distinguishable invalid-id return, the per-producer ring_full_rejects /
// retry_exhausted counters, the handler-preserving TryScheduleCrossCore
// contract, and the bounded retry helper. The single-thread tests pin the
// exact counter arithmetic; the threaded test (run under the tsan preset via
// the `cross-thread` label) proves the retry helper rides out real ring
// contention without dropping timers.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/core/sharded_soft_timer_runtime.h"
#include "src/timer/timer_slab.h"

namespace softtimer {
namespace {

class ManualClock : public ClockSource {
 public:
  uint64_t NowTicks() const override {
    return now_.load(std::memory_order_relaxed);
  }
  uint64_t ResolutionHz() const override { return 1'000'000; }
  void Advance(uint64_t ticks) {
    now_.fetch_add(ticks, std::memory_order_relaxed);
  }

 private:
  // Atomic: producer threads read the clock inside ScheduleCrossCore while
  // the consumer advances it.
  std::atomic<uint64_t> now_{0};
};

ShardedSoftTimerRuntime::Config Cfg(size_t ring_capacity) {
  ShardedSoftTimerRuntime::Config c;
  c.num_shards = 1;
  c.ring_capacity = ring_capacity;
  return c;
}

TEST(ShardedRingRejectTest, TryschedulePreservesHandlerOnFullRing) {
  ManualClock clock;
  ShardedSoftTimerRuntime rt(&clock, Cfg(4));
  auto token = rt.RegisterProducer();
  ASSERT_TRUE(token.valid());

  auto fired = std::make_shared<int>(0);
  SoftTimerFacility::Handler handler =
      [fired](const SoftTimerFacility::FireInfo&) { ++*fired; };
  ASSERT_EQ(fired.use_count(), 2);

  // Fill the ring (capacity rounds to a power of two; stop at rejection).
  int pushed = 0;
  while (true) {
    SoftTimerFacility::Handler filler =
        [fired](const SoftTimerFacility::FireInfo&) { ++*fired; };
    SoftEventId id = rt.TryScheduleCrossCore(token, 0, 0, filler);
    if (!id.valid()) {
      // Rejection must hand the closure back intact and be counted.
      EXPECT_TRUE(static_cast<bool>(filler));
      break;
    }
    ++pushed;
    ASSERT_LT(pushed, 64) << "ring never filled";
  }
  EXPECT_EQ(token.ring_full_rejects(), 1u);
  EXPECT_EQ(token.retry_exhausted(), 0u);

  // The original handler was never consumed; once the shard drains the ring
  // it pushes fine and fires. Draining and firing are separate sweeps: a
  // freshly drained command lands at a quantum-rounded future deadline, so
  // advance past it before expecting the dispatch.
  rt.OnTriggerState(0, TriggerSource::kSyscall);  // drains the ring
  clock.Advance(64);
  EXPECT_GT(rt.OnTriggerState(0, TriggerSource::kSyscall), 0u);
  SoftEventId id = rt.TryScheduleCrossCore(token, 0, 0, handler);
  EXPECT_TRUE(id.valid());
  rt.OnTriggerState(0, TriggerSource::kSyscall);  // drain
  clock.Advance(64);
  rt.OnTriggerState(0, TriggerSource::kSyscall);  // fire
  EXPECT_EQ(*fired, pushed + 1);
}

TEST(ShardedRingRejectTest, RetryHelperGivesUpAndCountsExhaustion) {
  ManualClock clock;
  ShardedSoftTimerRuntime rt(&clock, Cfg(2));
  auto token = rt.RegisterProducer();
  ASSERT_TRUE(token.valid());

  // Saturate the ring with the consuming path; nobody drains.
  int pushed = 0;
  while (rt.ScheduleCrossCore(token, 0, 0,
                              [](const SoftTimerFacility::FireInfo&) {})
             .valid()) {
    ++pushed;
    ASSERT_LT(pushed, 64);
  }
  uint64_t rejects_before = token.ring_full_rejects();
  EXPECT_EQ(rejects_before, 1u);  // the consuming probe above

  CrossCoreRetry retry;
  retry.max_attempts = 3;
  retry.spin_base = 4;  // keep the give-up path fast
  retry.spin_cap = 8;
  SoftEventId id = rt.ScheduleCrossCoreWithRetry(
      token, 0, 0, [](const SoftTimerFacility::FireInfo&) {}, 0, retry);
  EXPECT_FALSE(id.valid());
  // Every attempt is visible in ring_full_rejects; the give-up in
  // retry_exhausted.
  EXPECT_EQ(token.ring_full_rejects(), rejects_before + 3);
  EXPECT_EQ(token.retry_exhausted(), 1u);

  // Invalid-target calls report failure without touching the full-ring
  // counters (there was no ring to reject from).
  EXPECT_FALSE(rt.ScheduleCrossCoreWithRetry(
                     token, /*shard=*/7, 0,
                     [](const SoftTimerFacility::FireInfo&) {}, 0, retry)
                   .valid());
  EXPECT_EQ(token.ring_full_rejects(), rejects_before + 3);
  EXPECT_EQ(token.retry_exhausted(), 1u);
}

// The payload test: a producer blasts schedules through the retry helper at
// a ring far too small for the burst while the consumer thread drains at
// trigger states. Every push must either land (and eventually fire) or be
// accounted in retry_exhausted - no timer may vanish silently.
TEST(ShardedRingRejectTest, RetryHelperSurvivesContendedRingCrossThread) {
  constexpr int kOps = 10'000;
  ManualClock clock;
  ShardedSoftTimerRuntime rt(&clock, Cfg(16));

  std::atomic<uint64_t> fired{0};
  std::atomic<bool> producer_done{false};
  uint64_t landed = 0;

  std::thread producer([&] {
    auto token = rt.RegisterProducer();
    ASSERT_TRUE(token.valid());
    CrossCoreRetry retry;
    retry.max_attempts = 64;  // generous: the consumer is actively draining
    for (int op = 0; op < kOps; ++op) {
      SoftEventId id = rt.ScheduleCrossCoreWithRetry(
          token, 0, /*delta_ticks=*/0,
          [&fired](const SoftTimerFacility::FireInfo&) {
            fired.fetch_add(1, std::memory_order_relaxed);
          },
          /*handler_tag=*/0, retry);
      if (id.valid()) {
        ++landed;
      }
    }
    // Conservation: every op either landed or is counted as a give-up.
    EXPECT_EQ(landed + token.retry_exhausted(),
              static_cast<uint64_t>(kOps));
    // A 16-slot ring against a 20k burst must have seen backpressure.
    EXPECT_GT(token.ring_full_rejects(), 0u);
    producer_done.store(true, std::memory_order_release);
  });

  // Consumer: the shard owner drains at trigger states until the producer
  // finishes, then a final drain sweeps the tail.
  while (!producer_done.load(std::memory_order_acquire)) {
    clock.Advance(1);
    rt.OnTriggerState(0, TriggerSource::kSyscall);
  }
  producer.join();
  // Settle: drain the tail commands, then advance past their (quantum-
  // rounded) deadlines and sweep again.
  rt.OnTriggerState(0, TriggerSource::kSyscall);
  clock.Advance(64);
  rt.OnTriggerState(0, TriggerSource::kSyscall);

  EXPECT_EQ(fired.load(), landed);
}

}  // namespace
}  // namespace softtimer
