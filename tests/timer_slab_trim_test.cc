// TimerSlab Trim(): releasing fully-free chunks must shrink capacity, keep
// live timers untouched, and preserve generation/ABA safety for stale
// TimerIds across a release / re-materialize cycle - on every queue backend.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/soft_timer_facility.h"
#include "src/timer/timer_queue.h"
#include "src/timer/timer_slab.h"

namespace softtimer {
namespace {

class SlabTrimTest : public ::testing::TestWithParam<TimerQueueKind> {
 protected:
  std::unique_ptr<TimerQueue> MakeQueue() { return MakeTimerQueue(GetParam()); }
};

constexpr uint32_t kChunk = 256;  // TimerSlab chunk size

TEST_P(SlabTrimTest, TrimReleasesFullyFreeChunks) {
  auto q = MakeQueue();
  std::vector<TimerId> ids;
  for (uint32_t i = 0; i < 4 * kChunk; ++i) {
    ids.push_back(q->Schedule(1'000'000 + i, [] {}));
  }
  TimerSlabStats before = q->slab_stats();
  EXPECT_GE(before.capacity, 4 * kChunk);
  EXPECT_EQ(before.live, 4 * kChunk);
  EXPECT_EQ(before.released_chunks, 0u);

  for (TimerId id : ids) {
    EXPECT_TRUE(q->Cancel(id));
  }
  size_t released = q->TrimSlab();
  EXPECT_GE(released, 4u);
  TimerSlabStats after = q->slab_stats();
  EXPECT_EQ(after.live, 0u);
  EXPECT_EQ(after.capacity, before.capacity - released * kChunk);
  EXPECT_EQ(after.released_chunks, released);

  // The slab regrows on demand, preferring released chunks.
  TimerId id = q->Schedule(10, [] {});
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(q->slab_stats().released_chunks, released - 1);
  EXPECT_TRUE(q->Cancel(id));
}

TEST_P(SlabTrimTest, TrimKeepsChunksWithLiveTimers) {
  auto q = MakeQueue();
  std::vector<TimerId> ids;
  for (uint32_t i = 0; i < 3 * kChunk; ++i) {
    ids.push_back(q->Schedule(1'000'000 + i, [] {}));
  }
  // Free everything except one timer per chunk: no chunk is fully free.
  for (uint32_t i = 0; i < ids.size(); ++i) {
    if (TimerIdIndex(ids[i].value) % kChunk != 0) {
      ASSERT_TRUE(q->Cancel(ids[i]));
    }
  }
  EXPECT_EQ(q->TrimSlab(), 0u);
  EXPECT_EQ(q->slab_stats().live, 3u);
  // The survivors are still cancellable (links and ids intact).
  for (uint32_t i = 0; i < ids.size(); ++i) {
    if (TimerIdIndex(ids[i].value) % kChunk == 0) {
      EXPECT_TRUE(q->Cancel(ids[i]));
    }
  }
}

TEST_P(SlabTrimTest, StaleIdStaysStaleAcrossRematerialize) {
  auto q = MakeQueue();
  // Mint an id, retire it, trim its chunk away, then regrow the chunk: the
  // old id must not cancel (or alias) the new occupant of the same slot,
  // even though the chunk's storage was rebuilt from scratch.
  TimerId stale = q->Schedule(100, [] {});
  ASSERT_TRUE(q->Cancel(stale));
  ASSERT_GE(q->TrimSlab(), 1u);
  EXPECT_FALSE(q->Cancel(stale));  // chunk gone: stale by construction

  int fired = 0;
  TimerId fresh = q->Schedule(50, [&] { ++fired; });
  // Same slot as before (the re-materialized chunk hands out low indices
  // first), but a generation at or past the floor the release recorded.
  EXPECT_EQ(TimerIdIndex(fresh.value), TimerIdIndex(stale.value));
  EXPECT_NE(TimerIdGeneration(fresh.value), TimerIdGeneration(stale.value));
  EXPECT_FALSE(q->Cancel(stale));  // must not hit the new timer
  EXPECT_EQ(q->ExpireUpTo(60), 1u);
  EXPECT_EQ(fired, 1);
}

TEST_P(SlabTrimTest, FacilityExposesSlabOccupancyAndTrim) {
  SoftTimerFacility::Config cfg;
  cfg.queue_kind = GetParam();
  // A fixed manual clock is unnecessary: we never advance time.
  class ZeroClock : public ClockSource {
   public:
    uint64_t NowTicks() const override { return 0; }
    uint64_t ResolutionHz() const override { return 1'000'000; }
  } clock;
  SoftTimerFacility facility(&clock, cfg);

  std::vector<SoftEventId> ids;
  for (uint32_t i = 0; i < 2 * kChunk; ++i) {
    ids.push_back(facility.ScheduleSoftEvent(
        1'000, [](const SoftTimerFacility::FireInfo&) {}));
  }
  EXPECT_EQ(facility.stats().slab_live, 2 * kChunk);
  EXPECT_GE(facility.stats().slab_capacity, 2 * kChunk);
  for (SoftEventId id : ids) {
    ASSERT_TRUE(facility.CancelSoftEvent(id));
  }
  EXPECT_EQ(facility.stats().slab_live, 0u);
  EXPECT_GE(facility.TrimSlabStorage(), 2u);
  EXPECT_LT(facility.stats().slab_capacity, 2 * kChunk);
}

std::string KindTestName(const ::testing::TestParamInfo<TimerQueueKind>& info) {
  switch (info.param) {
    case TimerQueueKind::kHeap:
      return "Heap";
    case TimerQueueKind::kHashedWheel:
      return "HashedWheel";
    case TimerQueueKind::kHierarchicalWheel:
      return "HierWheel";
    case TimerQueueKind::kCalloutList:
      return "CalloutList";
    case TimerQueueKind::kGroupedSorting:
      return "GroupedSorting";
  }
  return "Unknown";
}

INSTANTIATE_TEST_SUITE_P(AllBackends, SlabTrimTest,
                         ::testing::Values(TimerQueueKind::kHeap,
                                           TimerQueueKind::kHashedWheel,
                                           TimerQueueKind::kHierarchicalWheel,
                                           TimerQueueKind::kCalloutList,
                                           TimerQueueKind::kGroupedSorting),
                         KindTestName);

}  // namespace
}  // namespace softtimer
