#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.h"

namespace softtimer {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Push(SimTime::FromNanos(30), [&] { order.push_back(3); });
  q.Push(SimTime::FromNanos(10), [&] { order.push_back(1); });
  q.Push(SimTime::FromNanos(20), [&] { order.push_back(2); });
  while (!q.empty()) {
    q.Pop().cb();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoAmongEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Push(SimTime::FromNanos(100), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    q.Pop().cb();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CancelDropsEvent) {
  EventQueue q;
  int ran = 0;
  EventHandle h = q.Push(SimTime::FromNanos(10), [&] { ++ran; });
  q.Push(SimTime::FromNanos(20), [&] { ++ran; });
  EXPECT_TRUE(q.Cancel(h));
  EXPECT_FALSE(q.Cancel(h));  // second cancel fails
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) {
    q.Pop().cb();
  }
  EXPECT_EQ(ran, 1);
}

TEST(EventQueueTest, CancelInvalidHandleIsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(EventHandle{}));
}

TEST(SimulatorTest, TimeAdvancesToEventTimes) {
  Simulator sim;
  std::vector<int64_t> times;
  sim.ScheduleAt(SimTime::FromNanos(50), [&] { times.push_back(sim.now().nanos_since_origin()); });
  sim.ScheduleAfter(SimDuration::Nanos(10), [&] { times.push_back(sim.now().nanos_since_origin()); });
  sim.RunUntilIdle();
  EXPECT_EQ(times, (std::vector<int64_t>{10, 50}));
}

TEST(SimulatorTest, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.RunUntil(SimTime::FromNanos(1000));
  EXPECT_EQ(sim.now().nanos_since_origin(), 1000);
}

TEST(SimulatorTest, RunUntilDoesNotRunLaterEvents) {
  Simulator sim;
  int ran = 0;
  sim.ScheduleAt(SimTime::FromNanos(100), [&] { ++ran; });
  sim.ScheduleAt(SimTime::FromNanos(300), [&] { ++ran; });
  sim.RunUntil(SimTime::FromNanos(200));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.now().nanos_since_origin(), 200);
  sim.RunUntil(SimTime::FromNanos(400));
  EXPECT_EQ(ran, 2);
}

TEST(SimulatorTest, PastScheduleClampsToNow) {
  Simulator sim;
  sim.RunUntil(SimTime::FromNanos(500));
  bool ran = false;
  sim.ScheduleAt(SimTime::FromNanos(100), [&] {
    ran = true;
    EXPECT_EQ(sim.now().nanos_since_origin(), 500);
  });
  sim.RunUntilIdle();
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, HandlersCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) {
      sim.ScheduleAfter(SimDuration::Nanos(5), chain);
    }
  };
  sim.ScheduleAfter(SimDuration::Nanos(5), chain);
  sim.RunUntilIdle();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.now().nanos_since_origin(), 50);
}

TEST(SimulatorTest, RequestStopEndsRun) {
  Simulator sim;
  int ran = 0;
  sim.ScheduleAt(SimTime::FromNanos(10), [&] {
    ++ran;
    sim.RequestStop();
  });
  sim.ScheduleAt(SimTime::FromNanos(20), [&] { ++ran; });
  sim.RunUntilIdle();
  EXPECT_EQ(ran, 1);
  sim.RunUntilIdle();  // resumes
  EXPECT_EQ(ran, 2);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  int ran = 0;
  EventHandle h = sim.ScheduleAfter(SimDuration::Nanos(10), [&] { ++ran; });
  EXPECT_TRUE(sim.Cancel(h));
  sim.RunUntilIdle();
  EXPECT_EQ(ran, 0);
}

TEST(SimulatorTest, EventsProcessedCounts) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) {
    sim.ScheduleAfter(SimDuration::Nanos(i), [] {});
  }
  sim.RunUntilIdle();
  EXPECT_EQ(sim.events_processed(), 7u);
}

TEST(SimulatorTest, StepRunsExactlyOneEvent) {
  Simulator sim;
  int ran = 0;
  sim.ScheduleAfter(SimDuration::Nanos(1), [&] { ++ran; });
  sim.ScheduleAfter(SimDuration::Nanos(2), [&] { ++ran; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(ran, 2);
  EXPECT_FALSE(sim.Step());
}

}  // namespace
}  // namespace softtimer
