#include "src/core/poll_governor.h"

#include <gtest/gtest.h>

#include "src/sim/random.h"

namespace softtimer {
namespace {

PollGovernor::Config BaseConfig() {
  PollGovernor::Config c;
  c.aggregation_quota = 1.0;
  c.min_interval_ticks = 10;
  c.max_interval_ticks = 4000;
  c.initial_interval_ticks = 50;
  return c;
}

TEST(PollGovernorTest, ConvergesToQuotaUnderPoissonArrivals) {
  for (double quota : {1.0, 2.0, 5.0, 10.0}) {
    PollGovernor::Config c = BaseConfig();
    c.aggregation_quota = quota;
    PollGovernor g(c);
    Rng rng(17);
    const double rate = 0.008;  // packets per tick (8k pkts/s at 1 MHz)
    uint64_t interval = c.initial_interval_ticks;
    double carry = 0.0;
    double found_sum = 0;
    int polls = 0;
    for (int i = 0; i < 3000; ++i) {
      carry += static_cast<double>(interval) * rate;
      size_t found = static_cast<size_t>(carry);
      carry -= static_cast<double>(found);
      // Settle first, then measure.
      if (i > 500) {
        found_sum += static_cast<double>(found);
        ++polls;
      }
      interval = g.OnPoll(found, interval);
    }
    EXPECT_NEAR(found_sum / polls, quota, quota * 0.2) << "quota " << quota;
  }
}

TEST(PollGovernorTest, RespectsIntervalClamp) {
  PollGovernor::Config c = BaseConfig();
  PollGovernor g(c);
  // A flood of packets drives the interval to the floor.
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(g.OnPoll(1000, g.current_interval_ticks()), c.min_interval_ticks);
  }
  EXPECT_EQ(g.current_interval_ticks(), c.min_interval_ticks);
  // Silence drives it to the ceiling.
  for (int i = 0; i < 100; ++i) {
    EXPECT_LE(g.OnPoll(0, g.current_interval_ticks()), c.max_interval_ticks);
  }
  EXPECT_EQ(g.current_interval_ticks(), c.max_interval_ticks);
}

TEST(PollGovernorTest, StepFactorBoundsChangeRate) {
  PollGovernor::Config c = BaseConfig();
  c.max_step_factor = 2.0;
  PollGovernor g(c);
  uint64_t before = g.current_interval_ticks();
  g.OnPoll(10'000, before);  // enormous convoy
  EXPECT_GE(g.current_interval_ticks(), before / 2);
  before = g.current_interval_ticks();
  g.OnPoll(0, before);
  EXPECT_LE(g.current_interval_ticks(), before * 2);
}

TEST(PollGovernorTest, RatioOfSumsHandlesBurstyArrivals) {
  // Convoys: most polls find nothing, every 8th finds a burst of 8. A
  // correct rate estimate is still 1 packet/interval on average.
  PollGovernor::Config c = BaseConfig();
  PollGovernor g(c);
  uint64_t interval = c.initial_interval_ticks;
  for (int i = 0; i < 2000; ++i) {
    size_t found = (i % 8 == 7) ? 8 : 0;
    interval = g.OnPoll(found, 125);  // elapsed fixed: rate = 1/125 per tick
  }
  EXPECT_NEAR(g.rate_estimate(), 1.0 / 125.0, 0.25 / 125.0);
}

TEST(PollGovernorTest, ResetRateForgetsHistory) {
  PollGovernor g(BaseConfig());
  for (int i = 0; i < 50; ++i) {
    g.OnPoll(0, 1000);  // long silence
  }
  g.ResetRate();
  EXPECT_EQ(g.rate_estimate(), 0.0);
  g.OnPoll(10, 100);
  EXPECT_NEAR(g.rate_estimate(), 0.1, 1e-9);
}

TEST(PollGovernorTest, ZeroElapsedIsTolerated) {
  PollGovernor g(BaseConfig());
  EXPECT_GE(g.OnPoll(5, 0), BaseConfig().min_interval_ticks);
}

TEST(PollGovernorTest, Counters) {
  PollGovernor g(BaseConfig());
  g.OnPoll(3, 100);
  g.OnPoll(2, 100);
  EXPECT_EQ(g.polls(), 2u);
  EXPECT_EQ(g.packets_found_total(), 5u);
}

}  // namespace
}  // namespace softtimer
