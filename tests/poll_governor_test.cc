#include "src/core/poll_governor.h"

#include <gtest/gtest.h>

#include "src/sim/random.h"

namespace softtimer {
namespace {

PollGovernor::Config BaseConfig() {
  PollGovernor::Config c;
  c.aggregation_quota = 1.0;
  c.min_interval_ticks = 10;
  c.max_interval_ticks = 4000;
  c.initial_interval_ticks = 50;
  return c;
}

TEST(PollGovernorTest, ConvergesToQuotaUnderPoissonArrivals) {
  for (double quota : {1.0, 2.0, 5.0, 10.0}) {
    PollGovernor::Config c = BaseConfig();
    c.aggregation_quota = quota;
    PollGovernor g(c);
    Rng rng(17);
    const double rate = 0.008;  // packets per tick (8k pkts/s at 1 MHz)
    uint64_t interval = c.initial_interval_ticks;
    double carry = 0.0;
    double found_sum = 0;
    int polls = 0;
    for (int i = 0; i < 3000; ++i) {
      carry += static_cast<double>(interval) * rate;
      size_t found = static_cast<size_t>(carry);
      carry -= static_cast<double>(found);
      // Settle first, then measure.
      if (i > 500) {
        found_sum += static_cast<double>(found);
        ++polls;
      }
      interval = g.OnPoll(found, interval);
    }
    EXPECT_NEAR(found_sum / polls, quota, quota * 0.2) << "quota " << quota;
  }
}

TEST(PollGovernorTest, RespectsIntervalClamp) {
  PollGovernor::Config c = BaseConfig();
  PollGovernor g(c);
  // A flood of packets drives the interval to the floor.
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(g.OnPoll(1000, g.current_interval_ticks()), c.min_interval_ticks);
  }
  EXPECT_EQ(g.current_interval_ticks(), c.min_interval_ticks);
  // Silence drives it to the ceiling.
  for (int i = 0; i < 100; ++i) {
    EXPECT_LE(g.OnPoll(0, g.current_interval_ticks()), c.max_interval_ticks);
  }
  EXPECT_EQ(g.current_interval_ticks(), c.max_interval_ticks);
}

TEST(PollGovernorTest, StepFactorBoundsChangeRate) {
  PollGovernor::Config c = BaseConfig();
  c.max_step_factor = 2.0;
  PollGovernor g(c);
  uint64_t before = g.current_interval_ticks();
  g.OnPoll(10'000, before);  // enormous convoy
  EXPECT_GE(g.current_interval_ticks(), before / 2);
  before = g.current_interval_ticks();
  g.OnPoll(0, before);
  EXPECT_LE(g.current_interval_ticks(), before * 2);
}

TEST(PollGovernorTest, RatioOfSumsHandlesBurstyArrivals) {
  // Convoys: most polls find nothing, every 8th finds a burst of 8. A
  // correct rate estimate is still 1 packet/interval on average.
  PollGovernor::Config c = BaseConfig();
  PollGovernor g(c);
  uint64_t interval = c.initial_interval_ticks;
  for (int i = 0; i < 2000; ++i) {
    size_t found = (i % 8 == 7) ? 8 : 0;
    interval = g.OnPoll(found, 125);  // elapsed fixed: rate = 1/125 per tick
  }
  EXPECT_NEAR(g.rate_estimate(), 1.0 / 125.0, 0.25 / 125.0);
}

TEST(PollGovernorTest, ResetRateForgetsHistory) {
  PollGovernor g(BaseConfig());
  for (int i = 0; i < 50; ++i) {
    g.OnPoll(0, 1000);  // long silence
  }
  g.ResetRate();
  EXPECT_EQ(g.rate_estimate(), 0.0);
  g.OnPoll(10, 100);
  EXPECT_NEAR(g.rate_estimate(), 0.1, 1e-9);
}

TEST(PollGovernorTest, FirstPollAfterResetIgnoresIdleGap) {
  // Converge to a steady interval under a healthy load, pause (drought or
  // interrupt-mode spell), then resume: the first poll reports the whole
  // pause as its elapsed time. After ResetRate that gap must not enter the
  // rate estimate, so the interval stays within one step of its pre-pause
  // value instead of being slammed toward the maximum.
  PollGovernor::Config c = BaseConfig();
  PollGovernor g(c);
  uint64_t interval = c.initial_interval_ticks;
  for (int i = 0; i < 500; ++i) {
    interval = g.OnPoll(1, interval);  // exactly quota: steady state
  }
  uint64_t steady = g.current_interval_ticks();
  g.ResetRate();
  const uint64_t idle_gap = 500'000;  // half a second of no polling
  uint64_t after = g.OnPoll(1, idle_gap);
  EXPECT_LE(after, static_cast<uint64_t>(
                       static_cast<double>(steady) * c.max_step_factor + 1));
  // One genuine-gap datapoint must not dominate the estimate either.
  EXPECT_GE(g.rate_estimate(), 1.0 / static_cast<double>(steady) / c.max_step_factor);

  // Control: the same gap without ResetRate poisons the estimate and drives
  // the interval up (this is the failure mode the reset exists to prevent).
  PollGovernor bad(c);
  uint64_t bad_interval = c.initial_interval_ticks;
  for (int i = 0; i < 500; ++i) {
    bad_interval = bad.OnPoll(1, bad_interval);
  }
  uint64_t bad_after = bad.OnPoll(1, idle_gap);
  EXPECT_GT(bad_after, after);
}

TEST(PollGovernorTest, ReEngageReclampsStaleInterval) {
  // After a pause (drought, interrupt-mode spell) the interval left behind by
  // quiet traffic is stale. ReEngage restarts at min(current, initial),
  // re-clamped to the Config bounds, and forgets the rate history.
  PollGovernor::Config c = BaseConfig();
  PollGovernor g(c);
  for (int i = 0; i < 100; ++i) {
    g.OnPoll(0, g.current_interval_ticks());  // silence: walk out to max
  }
  ASSERT_EQ(g.current_interval_ticks(), c.max_interval_ticks);
  g.ReEngage();
  EXPECT_EQ(g.current_interval_ticks(), c.initial_interval_ticks);
  EXPECT_EQ(g.rate_estimate(), 0.0);

  // An interval already below the initial survives the re-engage: resuming
  // under heavy load must not slow the stream down.
  for (int i = 0; i < 100; ++i) {
    g.OnPoll(1000, g.current_interval_ticks());  // flood: walk down to min
  }
  ASSERT_EQ(g.current_interval_ticks(), c.min_interval_ticks);
  g.ReEngage();
  EXPECT_EQ(g.current_interval_ticks(), c.min_interval_ticks);

  // The first post-ReEngage poll reports the whole pause as elapsed; with the
  // history forgotten it must not slam the interval toward the maximum.
  uint64_t after = g.OnPoll(1, 500'000);
  EXPECT_LE(after, static_cast<uint64_t>(
                       static_cast<double>(c.min_interval_ticks) *
                           c.max_step_factor +
                       1));
}

TEST(PollGovernorTest, ZeroElapsedIsTolerated) {
  PollGovernor g(BaseConfig());
  EXPECT_GE(g.OnPoll(5, 0), BaseConfig().min_interval_ticks);
}

TEST(PollGovernorTest, Counters) {
  PollGovernor g(BaseConfig());
  g.OnPoll(3, 100);
  g.OnPoll(2, 100);
  EXPECT_EQ(g.polls(), 2u);
  EXPECT_EQ(g.packets_found_total(), 5u);
}

}  // namespace
}  // namespace softtimer
