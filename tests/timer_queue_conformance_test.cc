// Conformance suite shared by every TimerQueue implementation (heap, hashed
// wheel, hierarchical wheel, callout list, grouped sorting queue): the
// semantics documented in src/timer/timer_queue.h, exercised identically via
// TEST_P, plus a randomized differential test that replays the same
// operation stream (including Update re-arms) against a trivially-correct
// reference model. The Update tests deliberately only ever act through the
// id *returned* by Update: that is the portable contract (the native grouped
// path returns the input id unchanged, the emulated path a fresh one).

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "src/sim/random.h"
#include "src/timer/grouped_sorting_queue.h"
#include "src/timer/timer_queue.h"

namespace softtimer {
namespace {

class TimerQueueConformanceTest : public ::testing::TestWithParam<TimerQueueKind> {
 protected:
  std::unique_ptr<TimerQueue> Make(uint64_t granularity = 1) {
    return MakeTimerQueue(GetParam(), granularity);
  }
};

TEST_P(TimerQueueConformanceTest, FiresAtOrAfterDeadline) {
  auto q = Make();
  int fired = 0;
  q->Schedule(100, [&] { ++fired; });
  EXPECT_EQ(q->ExpireUpTo(99), 0u);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(q->ExpireUpTo(100), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q->size(), 0u);
}

TEST_P(TimerQueueConformanceTest, FiresInDeadlineOrder) {
  auto q = Make();
  std::vector<int> order;
  q->Schedule(300, [&] { order.push_back(3); });
  q->Schedule(100, [&] { order.push_back(1); });
  q->Schedule(200, [&] { order.push_back(2); });
  EXPECT_EQ(q->ExpireUpTo(1000), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_P(TimerQueueConformanceTest, FifoAmongEqualDeadlines) {
  auto q = Make();
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    q->Schedule(500, [&order, i] { order.push_back(i); });
  }
  q->ExpireUpTo(500);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST_P(TimerQueueConformanceTest, PastDeadlineFiresOnNextExpire) {
  auto q = Make();
  q->ExpireUpTo(1000);
  int fired = 0;
  q->Schedule(50, [&] { ++fired; });  // already in the past
  EXPECT_EQ(q->ExpireUpTo(1001), 1u);
  EXPECT_EQ(fired, 1);
}

TEST_P(TimerQueueConformanceTest, CancelSemantics) {
  auto q = Make();
  int fired = 0;
  TimerId a = q->Schedule(100, [&] { ++fired; });
  TimerId b = q->Schedule(100, [&] { ++fired; });
  EXPECT_TRUE(q->Cancel(a));
  EXPECT_FALSE(q->Cancel(a));          // double cancel
  EXPECT_FALSE(q->Cancel(TimerId{}));  // invalid id
  EXPECT_EQ(q->size(), 1u);
  q->ExpireUpTo(200);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(q->Cancel(b));  // already fired
}

// --- ABA / id-reuse semantics: the slab recycles node slots, so a stale
// TimerId must never be honoured against the timer that reuses its slot.

TEST_P(TimerQueueConformanceTest, CancelAfterFireCannotHitSlotReuser) {
  auto q = Make();
  int fired_a = 0;
  int fired_b = 0;
  TimerId a = q->Schedule(10, [&] { ++fired_a; });
  EXPECT_EQ(q->ExpireUpTo(10), 1u);
  // b very likely recycles a's slab slot; a's id must stay dead either way.
  TimerId b = q->Schedule(20, [&] { ++fired_b; });
  EXPECT_FALSE(q->Cancel(a));
  EXPECT_EQ(q->size(), 1u);
  EXPECT_EQ(q->ExpireUpTo(20), 1u);
  EXPECT_EQ(fired_a, 1);
  EXPECT_EQ(fired_b, 1);
}

TEST_P(TimerQueueConformanceTest, CancelAfterCancelCannotHitSlotReuser) {
  auto q = Make();
  int fired_b = 0;
  TimerId a = q->Schedule(10, [] {});
  EXPECT_TRUE(q->Cancel(a));
  TimerId b = q->Schedule(20, [&] { ++fired_b; });
  EXPECT_FALSE(q->Cancel(a));  // stale: the slot now belongs to b
  EXPECT_EQ(q->size(), 1u);
  EXPECT_EQ(q->ExpireUpTo(20), 1u);
  EXPECT_EQ(fired_b, 1);
}

TEST_P(TimerQueueConformanceTest, StaleIdsStayDeadAcrossManySlotGenerations) {
  auto q = Make();
  uint64_t now = 0;
  std::vector<TimerId> stale;
  int fired = 0;
  // Each round recycles the same small pool of slab slots, so the stale ids
  // accumulate many generations of reuse over identical slot indices.
  for (int round = 0; round < 50; ++round) {
    TimerId cancelled = q->Schedule(now + 5, [&] { ++fired; });
    TimerId fires = q->Schedule(now + 6, [&] { ++fired; });
    EXPECT_TRUE(q->Cancel(cancelled));
    now += 10;
    EXPECT_EQ(q->ExpireUpTo(now), 1u);
    stale.push_back(cancelled);
    stale.push_back(fires);
  }
  EXPECT_EQ(fired, 50);
  int live = 0;
  TimerId pending = q->Schedule(now + 100, [&] { ++live; });
  for (TimerId id : stale) {
    EXPECT_FALSE(q->Cancel(id));
  }
  EXPECT_EQ(q->size(), 1u);  // the pending timer survived every stale cancel
  EXPECT_TRUE(q->Cancel(pending));
  EXPECT_EQ(q->ExpireUpTo(now + 200), 0u);
  EXPECT_EQ(live, 0);
}

// --- PeekUserData: the facility's cancel path reads the cookie *before*
// Cancel destroys the payload, so the peek must track liveness exactly -
// in particular across the cancel-after-fire window where the slab slot
// has been recycled by an unrelated timer carrying its own cookie.

TimerId ScheduleWithUserData(TimerQueue& q, uint64_t deadline,
                             uint64_t user_data, int* fired = nullptr) {
  struct CountThunk {
    int* fired;
    void operator()(const TimerFired&) {
      if (fired != nullptr) {
        ++*fired;
      }
    }
  };
  TimerPayload payload;
  payload.user_data = user_data;
  payload.handler.emplace(CountThunk{fired});
  return q.Schedule(deadline, std::move(payload));
}

TEST_P(TimerQueueConformanceTest, PeekUserDataTracksLiveness) {
  auto q = Make();
  EXPECT_EQ(q->PeekUserData(TimerId{}), 0u);  // invalid id
  int fired = 0;
  TimerId a = ScheduleWithUserData(*q, 100, 0xA1, &fired);
  TimerId b = ScheduleWithUserData(*q, 100, 0, &fired);  // cookie-less
  EXPECT_EQ(q->PeekUserData(a), 0xA1u);
  EXPECT_EQ(q->PeekUserData(b), 0u);
  EXPECT_TRUE(q->Cancel(a));
  EXPECT_EQ(q->PeekUserData(a), 0u);  // cancelled: cookie is gone
  EXPECT_EQ(q->ExpireUpTo(100), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q->PeekUserData(b), 0u);  // fired: cookie is gone
}

TEST_P(TimerQueueConformanceTest, PeekUserDataCannotLeakSlotReusersCookie) {
  // The cancel-after-fire race window: a's event fired, b recycled its slab
  // slot with a different cookie. A stale peek through a's id must read 0,
  // not b's cookie - otherwise the facility would retire b's cookie on a's
  // stale cancel and the owner's tracking table would drop a live event.
  auto q = Make();
  int fired_a = 0;
  TimerId a = ScheduleWithUserData(*q, 10, 0xA1, &fired_a);
  EXPECT_EQ(q->ExpireUpTo(10), 1u);
  EXPECT_EQ(fired_a, 1);
  TimerId b = ScheduleWithUserData(*q, 20, 0xB2);
  EXPECT_EQ(q->PeekUserData(a), 0u);
  EXPECT_FALSE(q->Cancel(a));
  EXPECT_EQ(q->PeekUserData(b), 0xB2u);  // b is untouched by the stale probe
  EXPECT_EQ(q->size(), 1u);
}

TEST_P(TimerQueueConformanceTest, PeekThenCancelWorksOnDueBatchPeer) {
  // Mid-expiry window: a handler peeks and cancels a peer that is due in the
  // same batch but has not fired yet (the wheels hold such peers in a
  // detached kDue state). The peek must still see the peer's cookie and the
  // cancel must suppress its dispatch - this is exactly the sequence
  // SoftTimerFacility::CancelSoftEvent runs from inside a handler.
  auto q = Make();
  int peer_fired = 0;
  TimerId peer{};
  uint64_t peeked = UINT64_MAX;
  bool cancel_ok = false;
  q->Schedule(10, [&] {
    peeked = q->PeekUserData(peer);
    cancel_ok = q->Cancel(peer);
  });
  peer = ScheduleWithUserData(*q, 10, 0xC3, &peer_fired);
  q->ExpireUpTo(10);
  EXPECT_EQ(peeked, 0xC3u);
  EXPECT_TRUE(cancel_ok);
  EXPECT_EQ(peer_fired, 0);
  EXPECT_EQ(q->size(), 0u);
  // The cancelled peer's id is fully dead afterwards.
  EXPECT_EQ(q->PeekUserData(peer), 0u);
  EXPECT_FALSE(q->Cancel(peer));
}

// --- Update(id, new_deadline): observable cancel+reschedule, whether the
// backend relinks natively (grouped sorting queue) or emulates.

TEST_P(TimerQueueConformanceTest, UpdateMovesDeadlineBothDirections) {
  auto q = Make();
  int fired = 0;
  TimerId id = q->Schedule(100, [&] { ++fired; });
  id = q->Update(id, 500);  // push later
  ASSERT_TRUE(id.valid());
  EXPECT_EQ(q->ExpireUpTo(100), 0u);
  EXPECT_EQ(fired, 0);
  id = q->Update(id, 200);  // pull earlier
  ASSERT_TRUE(id.valid());
  EXPECT_EQ(q->EarliestDeadline(), 200u);
  EXPECT_EQ(q->ExpireUpTo(200), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q->size(), 0u);
}

TEST_P(TimerQueueConformanceTest, UpdatePreservesPayloadAndCookie) {
  auto q = Make();
  int fired = 0;
  TimerId id = ScheduleWithUserData(*q, 100, 0xD4, &fired);
  id = q->Update(id, 300);
  ASSERT_TRUE(id.valid());
  EXPECT_EQ(q->PeekUserData(id), 0xD4u);  // cookie survived the move
  EXPECT_EQ(q->ExpireUpTo(300), 1u);
  EXPECT_EQ(fired, 1);
}

TEST_P(TimerQueueConformanceTest, UpdateToPastDeadlineClampsLikeSchedule) {
  auto q = Make();
  q->ExpireUpTo(1000);  // cursor is now 1001
  int fired = 0;
  TimerId id = q->Schedule(2000, [&] { ++fired; });
  id = q->Update(id, 50);  // past: clamps to the cursor
  ASSERT_TRUE(id.valid());
  EXPECT_EQ(q->ExpireUpTo(1001), 1u);
  EXPECT_EQ(fired, 1);
}

TEST_P(TimerQueueConformanceTest, UpdatedTimerJoinsEqualDeadlineFifoAtTail) {
  // Parity pin for schedule order: a moved timer fires after timers already
  // sitting at its new deadline, exactly as a cancel+reschedule would.
  auto q = Make();
  std::vector<int> order;
  TimerId moved = q->Schedule(100, [&] { order.push_back(0); });
  q->Schedule(500, [&] { order.push_back(1); });
  q->Schedule(500, [&] { order.push_back(2); });
  moved = q->Update(moved, 500);
  ASSERT_TRUE(moved.valid());
  q->ExpireUpTo(500);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 0}));
}

TEST_P(TimerQueueConformanceTest, UpdateReturnedIdCancelsExactlyOnce) {
  auto q = Make();
  int fired = 0;
  TimerId id = q->Schedule(100, [&] { ++fired; });
  id = q->Update(id, 200);
  ASSERT_TRUE(id.valid());
  EXPECT_TRUE(q->Cancel(id));
  EXPECT_FALSE(q->Cancel(id));
  EXPECT_EQ(q->size(), 0u);
  EXPECT_EQ(q->ExpireUpTo(1000), 0u);
  EXPECT_EQ(fired, 0);
}

// --- Generation staleness / ABA: Update on a dead id must fail and must
// not disturb whatever timer reuses the slot.

TEST_P(TimerQueueConformanceTest, UpdateOnCancelledIdFailsAndSparesReuser) {
  auto q = Make();
  int fired_b = 0;
  TimerId a = q->Schedule(10, [] {});
  EXPECT_TRUE(q->Cancel(a));
  // b very likely recycles a's slab slot; a's id must stay dead either way.
  TimerId b = ScheduleWithUserData(*q, 20, 0xB2, &fired_b);
  EXPECT_FALSE(q->Update(a, 5000).valid());
  EXPECT_EQ(q->PeekUserData(b), 0xB2u);  // b is untouched by the stale probe
  EXPECT_EQ(q->EarliestDeadline(), 20u);
  EXPECT_EQ(q->ExpireUpTo(20), 1u);
  EXPECT_EQ(fired_b, 1);
}

TEST_P(TimerQueueConformanceTest, UpdateOnFiredIdFailsAndSparesReuser) {
  auto q = Make();
  int fired_a = 0;
  int fired_b = 0;
  TimerId a = q->Schedule(10, [&] { ++fired_a; });
  EXPECT_EQ(q->ExpireUpTo(10), 1u);
  TimerId b = ScheduleWithUserData(*q, 20, 0xB2, &fired_b);
  EXPECT_FALSE(q->Update(a, 5000).valid());
  EXPECT_EQ(q->PeekUserData(b), 0xB2u);
  EXPECT_EQ(q->size(), 1u);
  EXPECT_EQ(q->ExpireUpTo(20), 1u);
  EXPECT_EQ(fired_a, 1);
  EXPECT_EQ(fired_b, 1);
}

TEST_P(TimerQueueConformanceTest, UpdateStaleIdsStayDeadAcrossGenerations) {
  auto q = Make();
  uint64_t now = 0;
  std::vector<TimerId> stale;
  int fired = 0;
  for (int round = 0; round < 50; ++round) {
    TimerId cancelled = q->Schedule(now + 5, [&] { ++fired; });
    TimerId fires = q->Schedule(now + 6, [&] { ++fired; });
    EXPECT_TRUE(q->Cancel(cancelled));
    now += 10;
    EXPECT_EQ(q->ExpireUpTo(now), 1u);
    stale.push_back(cancelled);
    stale.push_back(fires);
  }
  EXPECT_EQ(fired, 50);
  int live = 0;
  TimerId pending = q->Schedule(now + 100, [&] { ++live; });
  for (TimerId id : stale) {
    EXPECT_FALSE(q->Update(id, now + 50).valid());
  }
  EXPECT_EQ(q->size(), 1u);  // the pending timer survived every stale update
  EXPECT_EQ(q->EarliestDeadline(), now + 100);
  EXPECT_TRUE(q->Cancel(pending));
  EXPECT_EQ(q->ExpireUpTo(now + 200), 0u);
  EXPECT_EQ(live, 0);
}

// --- Update-while-due: a handler re-arms a peer that is due in the same
// expiry batch but has not fired yet. The peer must not fire under its old
// deadline; it fires once, at the new one.

TEST_P(TimerQueueConformanceTest, UpdateWhileDueDefersPeerToNewDeadline) {
  auto q = Make();
  int peer_fired = 0;
  TimerId peer{};
  bool update_ok = false;
  q->Schedule(10, [&] {
    TimerId moved = q->Update(peer, 50);
    update_ok = moved.valid();
    peer = moved;
  });
  peer = ScheduleWithUserData(*q, 10, 0xC3, &peer_fired);
  EXPECT_EQ(q->ExpireUpTo(10), 1u);  // only the updater fired
  EXPECT_TRUE(update_ok);
  EXPECT_EQ(peer_fired, 0);
  EXPECT_EQ(q->size(), 1u);
  EXPECT_EQ(q->PeekUserData(peer), 0xC3u);
  EXPECT_EQ(q->ExpireUpTo(49), 0u);
  EXPECT_EQ(q->ExpireUpTo(50), 1u);
  EXPECT_EQ(peer_fired, 1);
  EXPECT_EQ(q->size(), 0u);
}

TEST_P(TimerQueueConformanceTest, UpdateWhileDueThenCancelSuppressesPeer) {
  // Re-arm a due peer, then cancel it through the returned id, all from
  // inside the same batch: the peer must never fire, its slot must recycle
  // cleanly, and a timer reusing the slot must be unaffected.
  auto q = Make();
  int peer_fired = 0;
  int reuser_fired = 0;
  TimerId peer{};
  bool cancel_ok = false;
  q->Schedule(10, [&] {
    TimerId moved = q->Update(peer, 50);
    ASSERT_TRUE(moved.valid());
    cancel_ok = q->Cancel(moved);
  });
  peer = ScheduleWithUserData(*q, 10, 0xC3, &peer_fired);
  EXPECT_EQ(q->ExpireUpTo(10), 1u);
  EXPECT_TRUE(cancel_ok);
  EXPECT_EQ(peer_fired, 0);
  EXPECT_EQ(q->size(), 0u);
  TimerId reuser = q->Schedule(60, [&] { ++reuser_fired; });
  EXPECT_FALSE(q->Cancel(peer));  // stale whichever id convention applies
  EXPECT_EQ(q->ExpireUpTo(60), 1u);
  EXPECT_EQ(reuser_fired, 1);
  (void)reuser;
}

TEST_P(TimerQueueConformanceTest, UpdateWhileDueToStillDueDeadlineClamps) {
  // Re-arming a due peer to a deadline that is *also* already due clamps to
  // the cursor (one past the current expiry time), so it fires on the next
  // ExpireUpTo that reaches it - never inside the current batch under its
  // old deadline.
  auto q = Make();
  int peer_fired = 0;
  TimerId peer{};
  q->Schedule(10, [&] { peer = q->Update(peer, 3); });
  peer = q->Schedule(10, [&] { ++peer_fired; });
  EXPECT_EQ(q->ExpireUpTo(10), 1u);
  EXPECT_EQ(peer_fired, 0);
  EXPECT_EQ(q->size(), 1u);
  EXPECT_EQ(q->ExpireUpTo(11), 1u);
  EXPECT_EQ(peer_fired, 1);
}

TEST_P(TimerQueueConformanceTest, UpdateUnchangedDeadlineStillFiresOnce) {
  // A no-op re-arm (RFC 6298 restart recomputing the same RTO) must leave
  // the event firing exactly once at its deadline, and the returned id is
  // the one portable handle afterwards.
  auto q = Make();
  int fired = 0;
  TimerId id = q->Schedule(100, [&] { ++fired; });
  id = q->Update(id, 100);
  ASSERT_TRUE(id.valid());
  EXPECT_EQ(q->size(), 1u);
  EXPECT_EQ(q->EarliestDeadline(), 100u);
  EXPECT_EQ(q->ExpireUpTo(99), 0u);
  EXPECT_EQ(q->ExpireUpTo(100), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(q->Cancel(id));  // already fired, id is dead
}

TEST_P(TimerQueueConformanceTest, EarliestDeadlineTracksMin) {
  auto q = Make();
  EXPECT_FALSE(q->EarliestDeadline().has_value());
  q->Schedule(300, [] {});
  EXPECT_EQ(q->EarliestDeadline(), 300u);
  TimerId early = q->Schedule(100, [] {});
  EXPECT_EQ(q->EarliestDeadline(), 100u);
  q->Cancel(early);
  EXPECT_EQ(q->EarliestDeadline(), 300u);
  q->ExpireUpTo(300);
  EXPECT_FALSE(q->EarliestDeadline().has_value());
}

TEST_P(TimerQueueConformanceTest, CallbackMayScheduleFutureTimer) {
  auto q = Make();
  std::vector<uint64_t> fired_at;
  q->Schedule(10, [&] {
    fired_at.push_back(10);
    q->Schedule(20, [&] { fired_at.push_back(20); });
  });
  q->ExpireUpTo(15);
  EXPECT_EQ(fired_at, (std::vector<uint64_t>{10}));
  q->ExpireUpTo(25);
  EXPECT_EQ(fired_at, (std::vector<uint64_t>{10, 20}));
}

TEST_P(TimerQueueConformanceTest, CallbackSchedulingDueTimerFiresByNextExpire) {
  auto q = Make();
  int chained = 0;
  q->Schedule(10, [&] {
    q->Schedule(5, [&] { ++chained; });  // already due
  });
  q->ExpireUpTo(10);
  // The past deadline clamps to the cursor (11); it fires as soon as time
  // passes that point.
  q->ExpireUpTo(11);
  EXPECT_EQ(chained, 1);
}

TEST_P(TimerQueueConformanceTest, CallbackMayCancelPeer) {
  auto q = Make();
  int fired = 0;
  TimerId victim{};
  q->Schedule(10, [&] { q->Cancel(victim); });
  victim = q->Schedule(10, [&] { ++fired; });
  q->ExpireUpTo(100);
  EXPECT_EQ(fired, 0);
}

TEST_P(TimerQueueConformanceTest, SelfReschedulingTicker) {
  auto q = Make();
  std::vector<uint64_t> fires;
  uint64_t next = 10;
  std::function<void()> tick = [&] {
    fires.push_back(next);
    next += 10;
    if (next <= 100) {
      q->Schedule(next, tick);
    }
  };
  q->Schedule(next, tick);
  for (uint64_t t = 0; t <= 120; ++t) {
    q->ExpireUpTo(t);
  }
  EXPECT_EQ(fires.size(), 10u);
  EXPECT_EQ(fires.front(), 10u);
  EXPECT_EQ(fires.back(), 100u);
}

TEST_P(TimerQueueConformanceTest, LongHorizonDeadlines) {
  // Deadlines far beyond any wheel horizon must still fire correctly.
  auto q = Make();
  std::vector<int> order;
  q->Schedule(5, [&] { order.push_back(0); });
  q->Schedule(100'000'000, [&] { order.push_back(2); });
  q->Schedule(70'000, [&] { order.push_back(1); });
  q->ExpireUpTo(10);
  q->ExpireUpTo(80'000);
  q->ExpireUpTo(200'000'000);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST_P(TimerQueueConformanceTest, WheelRoundCollisions) {
  // Two timers that hash to the same bucket in different rounds (for a
  // 1024-slot wheel at granularity 1, deadlines d and d + 1024).
  auto q = Make();
  std::vector<uint64_t> fires;
  q->Schedule(100, [&] { fires.push_back(100); });
  q->Schedule(100 + 1024, [&] { fires.push_back(1124); });
  q->Schedule(100 + 2 * 1024, [&] { fires.push_back(2148); });
  q->ExpireUpTo(100);
  EXPECT_EQ(fires, (std::vector<uint64_t>{100}));
  q->ExpireUpTo(1124);
  EXPECT_EQ(fires, (std::vector<uint64_t>{100, 1124}));
  q->ExpireUpTo(5000);
  EXPECT_EQ(fires, (std::vector<uint64_t>{100, 1124, 2148}));
}

TEST_P(TimerQueueConformanceTest, RandomizedDifferentialAgainstReference) {
  auto q = Make();
  Rng rng(GetParam() == TimerQueueKind::kHeap ? 1 : 2);

  // Reference model: multimap deadline -> (seq, id).
  struct RefEntry {
    uint64_t seq;
    uint64_t key;
  };
  std::multimap<uint64_t, RefEntry> ref;
  std::map<uint64_t, TimerId> live_ids;  // key -> impl id
  uint64_t now = 0;
  uint64_t cursor = 0;  // reference clamp point (mirrors the impls)
  uint64_t seq = 0;
  uint64_t next_key = 1;
  std::vector<uint64_t> fired_impl;
  std::vector<uint64_t> fired_ref;

  for (int step = 0; step < 4000; ++step) {
    double dice = rng.NextDouble();
    if (dice < 0.55) {
      // Schedule with a mix of short, long, and past deadlines.
      uint64_t delta = 0;
      double kind = rng.NextDouble();
      if (kind < 0.6) {
        delta = rng.UniformU64(64);
      } else if (kind < 0.9) {
        delta = rng.UniformU64(8192);
      } else {
        delta = rng.UniformU64(3'000'000);
      }
      uint64_t deadline = now + delta;
      uint64_t key = next_key++;
      live_ids[key] = q->Schedule(deadline, [&fired_impl, key] { fired_impl.push_back(key); });
      // Past deadlines clamp up to the implementations' cursor.
      ref.emplace(deadline < cursor ? cursor : deadline, RefEntry{seq++, key});
    } else if (dice < 0.7 && !live_ids.empty()) {
      // Cancel a random live timer.
      auto it = live_ids.begin();
      std::advance(it, static_cast<long>(rng.UniformU64(live_ids.size())));
      EXPECT_TRUE(q->Cancel(it->second));
      for (auto r = ref.begin(); r != ref.end(); ++r) {
        if (r->second.key == it->first) {
          ref.erase(r);
          break;
        }
      }
      live_ids.erase(it);
    } else if (dice < 0.82 && !live_ids.empty()) {
      // Update a random live timer to a new deadline (the RTO re-arm mix):
      // observably a cancel+reschedule, so the reference re-keys the entry
      // with a fresh seq at the clamped deadline.
      auto it = live_ids.begin();
      std::advance(it, static_cast<long>(rng.UniformU64(live_ids.size())));
      uint64_t delta = rng.NextDouble() < 0.8 ? rng.UniformU64(8192)
                                              : rng.UniformU64(3'000'000);
      uint64_t deadline = now + delta;
      TimerId moved = q->Update(it->second, deadline);
      ASSERT_TRUE(moved.valid()) << "live id went stale at step " << step;
      it->second = moved;
      for (auto r = ref.begin(); r != ref.end(); ++r) {
        if (r->second.key == it->first) {
          uint64_t key = r->second.key;
          ref.erase(r);
          ref.emplace(deadline < cursor ? cursor : deadline,
                      RefEntry{seq++, key});
          break;
        }
      }
    } else {
      // Advance time and expire.
      now += rng.UniformU64(300);
      q->ExpireUpTo(now);
      cursor = now + 1;
      while (!ref.empty() && ref.begin()->first <= now) {
        // Fire in (deadline, seq) order; multimap preserves insertion order
        // among equal keys.
        uint64_t key = ref.begin()->second.key;
        fired_ref.push_back(key);
        live_ids.erase(key);
        ref.erase(ref.begin());
      }
      ASSERT_EQ(fired_impl, fired_ref) << "diverged at step " << step;
      EXPECT_EQ(q->size(), ref.size());
    }
  }
  // Drain everything.
  now += 10'000'000;
  q->ExpireUpTo(now);
  while (!ref.empty() && ref.begin()->first <= now) {
    fired_ref.push_back(ref.begin()->second.key);
    ref.erase(ref.begin());
  }
  EXPECT_EQ(fired_impl, fired_ref);
  EXPECT_EQ(q->size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, TimerQueueConformanceTest,
                         ::testing::Values(TimerQueueKind::kHeap,
                                           TimerQueueKind::kHashedWheel,
                                           TimerQueueKind::kHierarchicalWheel,
                                           TimerQueueKind::kCalloutList,
                                           TimerQueueKind::kGroupedSorting),
                         [](const ::testing::TestParamInfo<TimerQueueKind>& info) {
                           switch (info.param) {
                             case TimerQueueKind::kHeap:
                               return "Heap";
                             case TimerQueueKind::kHashedWheel:
                               return "HashedWheel";
                             case TimerQueueKind::kHierarchicalWheel:
                               return "HierarchicalWheel";
                             case TimerQueueKind::kCalloutList:
                               return "CalloutList";
                             case TimerQueueKind::kGroupedSorting:
                               return "GroupedSorting";
                           }
                           return "Unknown";
                         });

// --- Emulated-vs-native Update parity: replay one fixed update-heavy script
// on every backend and require byte-identical fire sequences. The four
// emulating backends and the native grouped path must be indistinguishable.

TEST(TimerQueueUpdateParityTest, AllBackendsProduceIdenticalFireSequences) {
  const TimerQueueKind kKinds[] = {
      TimerQueueKind::kHeap, TimerQueueKind::kHashedWheel,
      TimerQueueKind::kHierarchicalWheel, TimerQueueKind::kCalloutList,
      TimerQueueKind::kGroupedSorting};
  std::vector<std::vector<uint64_t>> sequences;
  for (TimerQueueKind kind : kKinds) {
    auto q = MakeTimerQueue(kind);
    std::vector<uint64_t> fires;
    Rng rng(7);  // same stream for every backend
    std::map<uint64_t, TimerId> live;
    uint64_t now = 0;
    uint64_t key = 1;
    size_t pruned = 0;  // fires consumed from the log so far
    for (int step = 0; step < 1500; ++step) {
      double dice = rng.NextDouble();
      uint64_t delta = rng.UniformU64(4096);
      if (dice < 0.35 || live.empty()) {
        uint64_t k = key++;
        live[k] = q->Schedule(now + delta,
                              [&fires, k] { fires.push_back(k); });
      } else if (dice < 0.8) {
        // Update-heavy: re-arm an existing timer (the RTO ACK pattern).
        auto it = live.begin();
        std::advance(it, static_cast<long>(rng.UniformU64(live.size())));
        TimerId moved = q->Update(it->second, now + delta);
        ASSERT_TRUE(moved.valid());
        it->second = moved;
      } else if (dice < 0.9) {
        auto it = live.begin();
        std::advance(it, static_cast<long>(rng.UniformU64(live.size())));
        EXPECT_TRUE(q->Cancel(it->second));
        live.erase(it);
      } else {
        now += rng.UniformU64(512);
        q->ExpireUpTo(now);
        // Prune fired keys from the live pool via the fire log, so later
        // update/cancel picks only touch genuinely live timers.
        for (; pruned < fires.size(); ++pruned) {
          live.erase(fires[pruned]);
        }
      }
    }
    q->ExpireUpTo(now + 10'000'000);
    sequences.push_back(std::move(fires));
  }
  for (size_t i = 1; i < sequences.size(); ++i) {
    EXPECT_EQ(sequences[i], sequences[0])
        << "backend " << TimerQueueKindName(kKinds[i])
        << " diverged from " << TimerQueueKindName(kKinds[0]);
  }
}

// --- Window-migration stress for the grouped queue: a tiny group count
// forces constant coarse->fine migration and far-list refills, and updates
// hop nodes across all three tiers in both directions.

TEST(GroupedSortingQueueTest, TinyGroupCountMigrationAndCrossTierUpdates) {
  GroupedSortingQueue q(/*granularity=*/1, /*group_count=*/4);
  // Tiers: fine width 1 (4 groups), coarse width 4 (4 groups, 16-tick span),
  // far beyond. Drive the same differential harness shape by hand.
  std::vector<uint64_t> fires;
  std::map<uint64_t, TimerId> live;
  Rng rng(11);
  uint64_t now = 0;
  uint64_t key = 1;
  std::multimap<uint64_t, uint64_t> ref;  // clamped deadline -> key
  uint64_t cursor = 0;
  std::vector<uint64_t> ref_fires;
  for (int step = 0; step < 6000; ++step) {
    double dice = rng.NextDouble();
    // Deltas straddle every tier boundary of this tiny geometry.
    uint64_t delta = rng.UniformU64(64);
    if (dice < 0.4 || live.empty()) {
      uint64_t k = key++;
      live[k] = q.Schedule(now + delta, [&fires, k] { fires.push_back(k); });
      ref.emplace(now + delta < cursor ? cursor : now + delta, k);
    } else if (dice < 0.75) {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.UniformU64(live.size())));
      TimerId moved = q.Update(it->second, now + delta);
      ASSERT_TRUE(moved.valid());
      EXPECT_EQ(moved.value, it->second.value);  // native: id is stable
      for (auto r = ref.begin(); r != ref.end(); ++r) {
        if (r->second == it->first) {
          uint64_t k = r->second;
          ref.erase(r);
          ref.emplace(now + delta < cursor ? cursor : now + delta, k);
          break;
        }
      }
    } else if (dice < 0.85) {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.UniformU64(live.size())));
      EXPECT_TRUE(q.Cancel(it->second));
      for (auto r = ref.begin(); r != ref.end(); ++r) {
        if (r->second == it->first) {
          ref.erase(r);
          break;
        }
      }
      live.erase(it);
    } else {
      now += rng.UniformU64(24);
      q.ExpireUpTo(now);
      cursor = now + 1;
      while (!ref.empty() && ref.begin()->first <= now) {
        uint64_t k = ref.begin()->second;
        ref_fires.push_back(k);
        live.erase(k);
        ref.erase(ref.begin());
      }
      ASSERT_EQ(fires, ref_fires) << "diverged at step " << step;
      EXPECT_EQ(q.size(), ref.size());
    }
  }
  now += 1'000'000;
  q.ExpireUpTo(now);
  while (!ref.empty()) {
    ref_fires.push_back(ref.begin()->second);
    ref.erase(ref.begin());
  }
  EXPECT_EQ(fires, ref_fires);
  EXPECT_EQ(q.size(), 0u);
}

TEST(GroupedSortingQueueTest, UpdateUnchangedDeadlineNeverRenamesId) {
  GroupedSortingQueue q(/*granularity=*/1, /*group_count=*/4);
  int fired = 0;
  TimerId id = q.Schedule(100, [&] { ++fired; });
  // The native O(1) Update relinks the node in place, so an unchanged
  // deadline MUST return the id verbatim - callers cache ids across no-op
  // re-arms and the stability guarantee is what lets them skip the remap.
  for (int i = 0; i < 3; ++i) {
    TimerId moved = q.Update(id, 100);
    ASSERT_TRUE(moved.valid());
    EXPECT_EQ(moved.value, id.value);
  }
  // A changed deadline keeps the id too on the native path, and the
  // ORIGINAL handle - not just the returned one - still cancels the event.
  TimerId moved = q.Update(id, 250);
  ASSERT_TRUE(moved.valid());
  EXPECT_EQ(moved.value, id.value);
  EXPECT_EQ(q.EarliestDeadline(), 250u);
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(fired, 0);
}

// Granularity > 1 wheels (not part of the heap's parameter space).
TEST(HashedWheelGranularityTest, CoarseGranularityStillFiresCorrectly) {
  for (TimerQueueKind kind : {TimerQueueKind::kHashedWheel, TimerQueueKind::kHierarchicalWheel}) {
    auto q = MakeTimerQueue(kind, /*tick_granularity=*/8);
    std::vector<uint64_t> fires;
    q->Schedule(5, [&] { fires.push_back(5); });
    q->Schedule(9, [&] { fires.push_back(9); });
    q->Schedule(64, [&] { fires.push_back(64); });
    q->ExpireUpTo(4);
    EXPECT_TRUE(fires.empty());
    q->ExpireUpTo(7);  // mid-bucket: only the due timer fires
    EXPECT_EQ(fires, (std::vector<uint64_t>{5}));
    q->ExpireUpTo(63);
    EXPECT_EQ(fires, (std::vector<uint64_t>{5, 9}));
    q->ExpireUpTo(64);
    EXPECT_EQ(fires, (std::vector<uint64_t>{5, 9, 64}));
  }
}

}  // namespace
}  // namespace softtimer
