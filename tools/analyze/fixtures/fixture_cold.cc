// SOFTTIMER_COLD must prune traversal: the error path allocates, but it is
// runtime-guarded off the hot loop, so the closure check stops at the call.

// SOFTTIMER_COLD: error path behind a branch the steady-state loop never
// takes; allocation here is acceptable.
int* ColdErrorPath() { return new int(42); }

// SOFTTIMER_HOT
int HotWithColdBranch(int err) {
  if (err != 0) {
    return *ColdErrorPath();
  }
  return 0;
}
