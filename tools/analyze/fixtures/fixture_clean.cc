// A clean hot closure: arithmetic only, plus a placement new (which does not
// allocate and must not be classified as hot-alloc).

#include <new>

// SOFTTIMER_HOT
long CleanHotSum(long a, long b) { return a * 31 + b; }

namespace {
alignas(long) char g_clean_slot[sizeof(long)];
}  // namespace

// SOFTTIMER_HOT
long* CleanHotPlacement(long v) { return new (g_clean_slot) long(v); }
