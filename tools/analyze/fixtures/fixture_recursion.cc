// Seeded violation: a mutual-recursion cycle inside the hot closure -
// unbounded stack depth inside a borrowed trigger state.

int PingPongB(int n);

int PingPongA(int n) { return n <= 0 ? 0 : PingPongB(n - 1); }

int PingPongB(int n) { return PingPongA(n); }

// SOFTTIMER_HOT
int HotRecursionEntry(int n) { return PingPongA(n); }
