// Seeded violation: the throw hides behind a helper; the marked body itself
// contains no `throw` token for the regex lint to catch.

void ThrowingHelper(int v) {
  if (v < 0) throw v;
}

// SOFTTIMER_HOT
void HotThrowEntry(int v) { ThrowingHelper(v); }
