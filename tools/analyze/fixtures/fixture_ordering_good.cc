// A well-formed pairing: the release store names kAcqLoad, whose definition
// line carries the opposite polarity, so the pairing graph resolves.

#include <atomic>

// ordering: acquire for the reader side; pairs with the release store below.
inline constexpr auto kAcqLoad = std::memory_order_acquire;

namespace {
std::atomic<int> g_ready{0};
}  // namespace

void PublishGood() {
  // ordering: publishes the payload; pairs with kAcqLoad on the reader.
  g_ready.store(1, std::memory_order_release);
}

int ReadGood() {
  // ordering: kAcqLoad observes the release publish in PublishGood.
  return g_ready.load(kAcqLoad);
}
