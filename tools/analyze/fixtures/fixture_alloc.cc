// Seeded violation: the allocation sits two calls below the marked entry,
// where the body-only regex lint cannot see it.

int* TransitiveAllocInner() { return new int(7); }

int* TransitiveAlloc() { return TransitiveAllocInner(); }

// SOFTTIMER_HOT
int* HotAllocEntry() { return TransitiveAlloc(); }
