// Seeded violation: the ordering rationale names a pairing site that does not
// exist anywhere in the analyzed tree.

#include <atomic>

namespace {
std::atomic<int> g_flag{0};
}  // namespace

void PublishBroken() {
  // ordering: pairs with kNoSuchAcquire on the consumer side.
  g_flag.store(1, std::memory_order_release);
}
