// Seeded violations: (a) a std::mutex lock two calls below the marked entry,
// (b) a callee explicitly declared blocking via SOFTTIMER_BLOCKING whose body
// alone would look harmless.

#include <mutex>

namespace {
std::mutex g_mu;
}  // namespace

void DeepLock() {
  g_mu.lock();
  g_mu.unlock();
}

void MidLayer() { DeepLock(); }

// SOFTTIMER_HOT
void HotBlockingEntry() { MidLayer(); }

// SOFTTIMER_BLOCKING: parks the caller until an operator pokes the config
// reload eventfd; the body below is a stand-in, the annotation is
// authoritative.
void WaitForConfigReload() {
  volatile int spin = 0;
  (void)spin;
}

// SOFTTIMER_HOT
void HotCallsDeclaredBlocking() { WaitForConfigReload(); }
