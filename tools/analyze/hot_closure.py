#!/usr/bin/env python3
"""Trigger-context safety analyzer: transitive hot-closure verification.

The soft-timer premise (paper Section 3) is that handlers run in *borrowed*
kernel trigger states: they must be short, non-blocking, allocation-free, and
exception-free. tools/lint_hotpath.py enforces a fast regex approximation of
that contract on directly-marked function bodies; this analyzer enforces it
over the real call graph, so an allocation or a mutex N calls deep is just as
visible as one in the marked body.

It computes the transitive call closure of every entry point and statically
verifies five rule classes across the whole closure:

  hot-alloc              no heap allocation reachable (operator new/delete,
                         malloc family, allocating std containers,
                         std::function spill, __cxa_allocate_exception).
  hot-blocking           no blocking call reachable (mutex/condvar/sleep/
                         syscall/stream I/O/static-init guards), and no call
                         into a function marked `// SOFTTIMER_BLOCKING`.
  hot-throw              no `throw` (or std::__throw_* helper) reachable.
  hot-recursion          no recursion cycle inside the closure (unbounded
                         stack depth inside a borrowed trigger state).
  ordering-pair-missing  every non-relaxed weakened atomic's `// ordering:`
                         rationale must name (or fuzzily imply) a pairing
                         site of the opposite polarity that actually exists.

Entry points are (a) every function preceded by a standalone
`// SOFTTIMER_HOT` marker line and (b) the handler-dispatch contexts named in
DISPATCH_CONTEXTS (facility dispatch, multi-queue poll, isolated-shard
trigger loop, pacing-wheel drain).

Annotation vocabulary (all standalone comment lines, optional `: reason`):

  // SOFTTIMER_HOT            entry point; closure must satisfy all rules.
  // SOFTTIMER_COLD: why      traversal boundary: the function is runtime-
                              guarded off the hot path (error/teardown/
                              startup); its body is not part of the closure.
  // SOFTTIMER_BLOCKING: why  declares the function blocking; reaching it
                              from any hot closure is a hot-blocking finding
                              regardless of what its body looks like.

Residual violations that are justified (e.g. std::function's empty-call
throw on a slot the schedule path proves non-empty) are waived *per edge* in
tools/analyze/waivers.json - every waiver names caller, callee, rule, and
reason, and unused waivers are reported so the database cannot rot.

Frontends:
  clang   libclang cindex over an exported compile_commands.json (preferred;
          what CI installs).
  gcc     re-runs each TU's compile command with `-fcallgraph-info -O0
          -fno-inline` and merges the emitted VCG .ci call graphs. Keeps the
          analyzer fully functional on toolchains without libclang (the dev
          container ships only GCC).
  auto    clang if importable+loadable, else gcc, else skip (exit SKIP_CODE
          so `ctest -L lint` reports SKIPPED, not FAILED).

Exit status: 0 clean, 1 unwaived findings, 2 internal/self-test failure,
77 (SKIP_CODE) when no frontend is available.

`--self-test` runs the whole pipeline against the seeded-violation corpus in
tools/analyze/fixtures/, proving every rule class fires and that the
annotations and waivers silence them.
"""

import argparse
import concurrent.futures
import json
import os
import re
import shlex
import subprocess
import sys
import tempfile

SKIP_CODE = 77

HOT_MARKER = "SOFTTIMER_HOT"
COLD_MARKER = "SOFTTIMER_COLD"
BLOCKING_MARKER = "SOFTTIMER_BLOCKING"

# A marker must be a standalone comment line (`// SOFTTIMER_COLD: reason`),
# not a prose mention inside a longer comment.
MARKER_RE = re.compile(
    r"^\s*//\s*(SOFTTIMER_HOT|SOFTTIMER_COLD|SOFTTIMER_BLOCKING)"
    r"\s*(?::\s*(.*))?\s*$")

# A marker precedes the function whose definition starts within this many
# lines (signatures may span several lines).
MARKER_WINDOW = 10

INDIRECT = "__indirect_call"

# Handler-dispatch contexts: every one of these runs inside a borrowed
# trigger state (or the spinning stand-in for one), so their whole closure is
# subject to the trigger-context rules even without a SOFTTIMER_HOT marker.
# Matched as substrings of the demangled/qualified function name.
DISPATCH_CONTEXTS = (
    ("facility-dispatch", "softtimer::SoftTimerFacility::DispatchFired("),
    ("multi-queue-poll", "softtimer::MultiQueuePoller::PollOnce("),
    ("isolated-shard-loop", "softtimer::ShardedRtHost::RunShardIsolated("),
    ("pacing-wheel-drain", "softtimer::PacingWheel::Drain("),
)

# --- Sink classification ----------------------------------------------------

ALLOC_C = {
    "malloc", "calloc", "realloc", "free", "aligned_alloc", "posix_memalign",
    "memalign", "valloc", "pvalloc", "strdup", "strndup", "asprintf",
    "reallocarray", "__cxa_allocate_exception", "__cxa_free_exception",
    "__libc_malloc", "__libc_free",
}

BLOCKING_C = {
    "pthread_mutex_lock", "pthread_cond_wait", "pthread_cond_timedwait",
    "pthread_join", "pthread_rwlock_rdlock", "pthread_rwlock_wrlock",
    "pthread_barrier_wait", "sem_wait", "sem_timedwait",
    "sleep", "usleep", "nanosleep", "clock_nanosleep", "syscall",
    "poll", "ppoll", "select", "pselect", "epoll_wait", "epoll_pwait",
    "accept", "accept4", "connect", "recv", "recvfrom", "recvmsg",
    "send", "sendto", "sendmsg", "read", "write", "pread", "pwrite",
    "open", "openat", "close", "fsync", "fdatasync", "msync",
    "fopen", "fclose", "fread", "fwrite", "fflush", "fprintf", "printf",
    "puts", "putchar", "fputs", "fputc", "vfprintf", "vprintf",
    "getchar", "fgets", "scanf", "fscanf",
    # Static-local initialization guard: may block on another thread's
    # in-progress initialization - hidden one-time work inside a hot path.
    "__cxa_guard_acquire",
}

THROW_C = {"__cxa_throw", "__cxa_rethrow"}

# Syscall-shaped names that are NOT blocking (vDSO / trivial kernel reads).
NONBLOCKING_C = {"clock_gettime", "gettimeofday", "time", "getpid",
                 "sched_getcpu"}

# Demangled-name patterns (C++ library surface). Each entry is
# (substring, rule, human label).
CXX_SINK_PATTERNS = (
    ("std::this_thread::sleep", "hot-blocking", "std::this_thread sleep"),
    ("std::mutex::lock(", "hot-blocking", "std::mutex::lock"),
    ("std::timed_mutex::", "hot-blocking", "std::timed_mutex"),
    ("std::recursive_mutex::lock(", "hot-blocking", "std::recursive_mutex"),
    ("std::shared_mutex::lock", "hot-blocking", "std::shared_mutex"),
    ("std::condition_variable::wait", "hot-blocking", "condition_variable"),
    ("std::thread::join(", "hot-blocking", "std::thread::join"),
    ("std::basic_ostream", "hot-blocking", "stream I/O"),
    ("std::basic_istream", "hot-blocking", "stream I/O"),
    ("std::__ostream_insert", "hot-blocking", "stream I/O"),
    ("std::basic_filebuf", "hot-blocking", "file stream"),
)


def classify_sink(key, demangled):
    """Returns (rule, label) if the node is a forbidden sink, else None."""
    name = demangled or key
    plain = key.split(":")[-1]
    if not plain.startswith("_Z"):
        # External C symbol: classify by exact name.
        base = plain
        if base in NONBLOCKING_C:
            return None
        if base in ALLOC_C:
            return ("hot-alloc", base)
        if base in BLOCKING_C:
            return ("hot-blocking", base)
        if base in THROW_C:
            return ("hot-throw", base)
    if name:
        # operator new/delete: placement forms (trailing void* argument) do
        # not allocate; everything else does.
        m = re.match(r"(?:void\*? )?operator (new|delete)(\[\])?\((.*)\)$",
                     name)
        if m:
            args = m.group(3)
            if not re.search(r",\s*void\*\s*$", args):
                return ("hot-alloc", f"operator {m.group(1)}{m.group(2) or ''}")
            return None
        if "::__throw_" in name or name.startswith("std::__throw_"):
            return ("hot-throw", name.split("(")[0])
        for pat, rule, label in CXX_SINK_PATTERNS:
            if pat in name:
                return (rule, label)
    return None


# --- Source annotations -----------------------------------------------------

class Annotations:
    def __init__(self):
        self.hot = []       # (relpath, line)
        self.cold = []      # (relpath, line, reason)
        self.blocking = []  # (relpath, line, reason)

    def scan_file(self, relpath, lines):
        for idx, line in enumerate(lines):
            m = MARKER_RE.match(line)
            if not m:
                continue
            kind, reason = m.group(1), (m.group(2) or "").strip()
            if kind == HOT_MARKER:
                self.hot.append((relpath, idx + 1))
            elif kind == COLD_MARKER:
                self.cold.append((relpath, idx + 1, reason))
            else:
                self.blocking.append((relpath, idx + 1, reason))


def scan_annotations(root, subdirs):
    ann = Annotations()
    for sub in subdirs:
        base = os.path.join(root, sub)
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if not name.endswith((".h", ".cc", ".cpp")):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root).replace(os.sep, "/")
                with open(path, encoding="utf-8") as f:
                    ann.scan_file(rel, f.read().splitlines())
    return ann


# --- Call graph -------------------------------------------------------------

class Node:
    __slots__ = ("key", "demangled", "file", "line", "locations")

    def __init__(self, key, demangled, file, line):
        self.key = key
        self.demangled = demangled
        self.file = file
        self.line = line
        # All (file, line) locations any TU reported for this symbol. A TU
        # that only *declares* a function records the declaration site (often
        # a header), so marker matching must consider every location, not
        # just whichever TU was parsed first.
        self.locations = [(file, line)] if file else []

    def display(self):
        if self.demangled:
            return self.demangled
        return self.key


class CallGraph:
    def __init__(self):
        self.nodes = {}      # key -> Node
        self.edges = {}      # key -> {callee_key: (site_file, site_line)}

    def add_node(self, key, demangled, file, line):
        existing = self.nodes.get(key)
        if existing is None:
            self.nodes[key] = Node(key, demangled, file, line)
        else:
            if not existing.demangled and demangled:
                existing.demangled = demangled
            if file:
                if not existing.file:
                    existing.file = file
                    existing.line = line
                if (file, line) not in existing.locations:
                    existing.locations.append((file, line))

    def add_edge(self, src, dst, site_file, site_line):
        self.edges.setdefault(src, {}).setdefault(dst, (site_file, site_line))

    def node(self, key):
        n = self.nodes.get(key)
        if n is None:
            n = Node(key, "", "", 0)
            self.nodes[key] = n
        return n


class FrontendUnavailable(Exception):
    pass


# --- GCC -fcallgraph-info frontend ------------------------------------------

CI_NODE_RE = re.compile(
    r'^node:\s*\{\s*title:\s*"((?:[^"\\]|\\.)*)"\s*label:\s*'
    r'"((?:[^"\\]|\\.)*)"')
CI_EDGE_RE = re.compile(
    r'^edge:\s*\{\s*sourcename:\s*"((?:[^"\\]|\\.)*)"\s*targetname:\s*'
    r'"((?:[^"\\]|\\.)*)"(?:\s*label:\s*"((?:[^"\\]|\\.)*)")?')
CI_GRAPH_RE = re.compile(r'^graph:\s*\{\s*title:\s*"((?:[^"\\]|\\.)*)"')
LOC_RE = re.compile(r"^(.*):(\d+):(\d+)$")


class GccFrontend:
    name = "gcc"

    def __init__(self, root, jobs=0):
        self.root = root
        self.jobs = jobs or (os.cpu_count() or 4)
        self.cxx = None
        # Probe from a scratch directory: -fcallgraph-info drops its .ci aux
        # file in the cwd even under -fsyntax-only.
        with tempfile.TemporaryDirectory(prefix="hot_closure_probe_") as tmp:
            for cand in ("g++", "c++"):
                try:
                    probe = subprocess.run(
                        [cand, "-fcallgraph-info", "-fsyntax-only", "-x",
                         "c++", "-", "-o", os.devnull],
                        input="", capture_output=True, text=True, timeout=30,
                        cwd=tmp)
                except (OSError, subprocess.TimeoutExpired):
                    continue
                if "unrecognized command" not in probe.stderr:
                    self.cxx = cand
                    break
        if self.cxx is None:
            raise FrontendUnavailable(
                "no g++ with -fcallgraph-info support found")

    @staticmethod
    def _rewrite_command(argv, out_obj):
        """Original compile command -> callgraph-dump command."""
        out = []
        skip = False
        for arg in argv:
            if skip:
                skip = False
                continue
            if arg == "-o":
                skip = True
                continue
            if arg.startswith("-o") and len(arg) > 2 and arg != "-o":
                continue
            if re.match(r"-O[0-9sz]?$|-Ofast$", arg):
                continue
            if arg.startswith("-fcallgraph-info"):
                continue
            if arg in ("-flto", "-fno-fat-lto-objects"):
                continue
            out.append(arg)
        out += ["-O0", "-fno-inline", "-w", "-fcallgraph-info", "-o", out_obj]
        return out

    def _run_tu(self, entry, tmpdir, idx):
        argv = (entry.get("arguments")
                or shlex.split(entry["command"]))
        # Force our probed compiler: the recorded one may be clang-shaped.
        argv = [self.cxx] + argv[1:]
        out_obj = os.path.join(tmpdir, f"tu{idx}.o")
        argv = self._rewrite_command(argv, out_obj)
        proc = subprocess.run(argv, cwd=entry.get("directory", self.root),
                              capture_output=True, text=True)
        ci_path = os.path.join(tmpdir, f"tu{idx}.ci")
        if proc.returncode != 0 or not os.path.exists(ci_path):
            return (entry["file"], proc.stderr.strip()[:2000], None)
        with open(ci_path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        return (entry["file"], None, text)

    @staticmethod
    def _unescape(s):
        return s.replace('\\"', '"')

    def _canon_key(self, title, tu_title):
        """VCG node title -> stable cross-TU key.

        Vague-linkage (inline/template) definitions are emitted per-TU as
        "<tu>:<mangled>"; the mangled name alone identifies the function.
        Internal-linkage symbols (_ZL...) genuinely differ per TU, so they
        keep the TU qualifier.
        """
        if title.startswith(tu_title + ":"):
            mangled = title[len(tu_title) + 1:]
            if mangled.startswith("_ZL") or not mangled.startswith("_Z"):
                return title
            return mangled
        return title

    def _canon_loc(self, path):
        if not path:
            return ""
        ap = os.path.realpath(path) if not os.path.isabs(path) \
            else os.path.realpath(path)
        if ap.startswith(self.root + os.sep):
            return os.path.relpath(ap, self.root).replace(os.sep, "/")
        return ap

    def _parse_ci(self, text, graph, entry_dir):
        tu_title = ""
        for line in text.splitlines():
            gm = CI_GRAPH_RE.match(line)
            if gm:
                tu_title = self._unescape(gm.group(1))
                continue
            nm = CI_NODE_RE.match(line)
            if nm:
                title = self._canon_key(self._unescape(nm.group(1)), tu_title)
                label = self._unescape(nm.group(2))
                parts = label.split("\\n")
                demangled = parts[0] if parts else ""
                file, lineno = "", 0
                if len(parts) > 1:
                    lm = LOC_RE.match(parts[-1])
                    if lm:
                        raw = lm.group(1)
                        if not os.path.isabs(raw):
                            raw = os.path.join(entry_dir, raw)
                        file = self._canon_loc(raw)
                        lineno = int(lm.group(2))
                # GCC sometimes truncates the label to ") [with ...]"; those
                # names are recovered via c++filt later.
                if demangled.startswith(")"):
                    demangled = ""
                graph.add_node(title, demangled, file, lineno)
                continue
            em = CI_EDGE_RE.match(line)
            if em:
                src = self._canon_key(self._unescape(em.group(1)), tu_title)
                dst = self._canon_key(self._unescape(em.group(2)), tu_title)
                site_file, site_line = "", 0
                if em.group(3):
                    lm = LOC_RE.match(self._unescape(em.group(3)))
                    if lm:
                        raw = lm.group(1)
                        if not os.path.isabs(raw):
                            raw = os.path.join(entry_dir, raw)
                        site_file = self._canon_loc(raw)
                        site_line = int(lm.group(2))
                graph.add_edge(src, dst, site_file, site_line)

    def _demangle_missing(self, graph):
        keys = [k for k, n in graph.nodes.items() if not n.demangled]
        mangled = []
        for k in keys:
            m = k.split(":")[-1]
            mangled.append(m if m.startswith("_Z") else m)
        if not mangled:
            return
        for tool in ("c++filt", "llvm-cxxfilt"):
            try:
                proc = subprocess.run([tool], input="\n".join(mangled) + "\n",
                                      capture_output=True, text=True,
                                      timeout=60)
            except (OSError, subprocess.TimeoutExpired):
                continue
            if proc.returncode == 0:
                out = proc.stdout.splitlines()
                if len(out) == len(keys):
                    for k, d in zip(keys, out):
                        if d and d != k.split(":")[-1]:
                            graph.nodes[k].demangled = d
                return

    def build(self, entries):
        graph = CallGraph()
        errors = []
        with tempfile.TemporaryDirectory(prefix="hot_closure_") as tmpdir:
            with concurrent.futures.ThreadPoolExecutor(self.jobs) as pool:
                futures = [pool.submit(self._run_tu, e, tmpdir, i)
                           for i, e in enumerate(entries)]
                results = []
                for fut, entry in zip(futures, entries):
                    results.append((fut.result(), entry))
            for (file, err, text), entry in results:
                if err is not None:
                    errors.append((file, err))
                    continue
                self._parse_ci(text, graph,
                               entry.get("directory", self.root))
        self._demangle_missing(graph)
        return graph, errors


# --- libclang cindex frontend -----------------------------------------------

class ClangFrontend:
    name = "clang"

    def __init__(self, root, jobs=0):
        self.root = root
        try:
            from clang import cindex  # noqa: F401
        except ImportError as e:
            raise FrontendUnavailable(f"python clang bindings missing: {e}")
        self.cindex = __import__("clang.cindex", fromlist=["cindex"])
        try:
            self.index = self.cindex.Index.create()
        except Exception as e:  # LibclangError: shared library missing
            raise FrontendUnavailable(f"libclang unavailable: {e}")

    def _canon_loc(self, path):
        if not path:
            return ""
        ap = os.path.realpath(path)
        if ap.startswith(self.root + os.sep):
            return os.path.relpath(ap, self.root).replace(os.sep, "/")
        return ap

    @staticmethod
    def _filter_args(argv):
        """Compile command -> cindex parse args (flags only, no in/out)."""
        args = []
        skip = False
        for arg in argv[1:]:
            if skip:
                skip = False
                continue
            if arg in ("-o", "-c"):
                skip = (arg == "-o")
                continue
            if arg.endswith((".cc", ".cpp", ".o")):
                continue
            args.append(arg)
        return args

    def _qualname(self, cursor):
        parts = []
        c = cursor
        ck = self.cindex.CursorKind
        while c is not None and c.kind != ck.TRANSLATION_UNIT:
            if c.kind in (ck.NAMESPACE, ck.CLASS_DECL, ck.STRUCT_DECL,
                          ck.CLASS_TEMPLATE, ck.UNION_DECL) or \
                    c == cursor:
                name = c.displayname if c == cursor else c.spelling
                if name:
                    parts.append(name)
            c = c.semantic_parent
        return "::".join(reversed(parts))

    def _key(self, cursor):
        return cursor.get_usr() or self._qualname(cursor)

    def build(self, entries):
        ck = self.cindex.CursorKind
        func_kinds = {ck.FUNCTION_DECL, ck.CXX_METHOD, ck.CONSTRUCTOR,
                      ck.DESTRUCTOR, ck.CONVERSION_FUNCTION,
                      ck.FUNCTION_TEMPLATE, ck.LAMBDA_EXPR}
        graph = CallGraph()
        errors = []

        def visit(cursor, current):
            kind = cursor.kind
            if kind in func_kinds and kind != ck.LAMBDA_EXPR and \
                    cursor.is_definition():
                key = self._key(cursor)
                loc = cursor.location
                graph.add_node(
                    key, self._qualname(cursor),
                    self._canon_loc(loc.file.name if loc.file else ""),
                    loc.line)
                current = key
            elif current is not None:
                loc = cursor.location
                site = (self._canon_loc(loc.file.name if loc.file else ""),
                        loc.line)
                if kind == ck.CALL_EXPR:
                    ref = cursor.referenced
                    if ref is None:
                        graph.add_edge(current, INDIRECT, *site)
                        graph.node(INDIRECT)
                    else:
                        rkey = self._key(ref)
                        rloc = ref.location
                        graph.add_node(
                            rkey, self._qualname(ref),
                            self._canon_loc(
                                rloc.file.name if rloc.file else ""),
                            rloc.line)
                        graph.add_edge(current, rkey, *site)
                elif kind == ck.CXX_NEW_EXPR:
                    placement = False
                    try:
                        toks = list(cursor.get_tokens())
                        for i, t in enumerate(toks):
                            if t.spelling == "new":
                                placement = (i + 1 < len(toks) and
                                             toks[i + 1].spelling == "(")
                                break
                    except Exception:
                        pass
                    if not placement:
                        graph.add_node("operator new",
                                       "operator new(unsigned long)", "", 0)
                        graph.add_edge(current, "operator new", *site)
                elif kind == ck.CXX_DELETE_EXPR:
                    graph.add_node("operator delete",
                                   "operator delete(void*)", "", 0)
                    graph.add_edge(current, "operator delete", *site)
                elif kind == ck.CXX_THROW_EXPR:
                    graph.add_node("__cxa_throw", "", "", 0)
                    graph.add_edge(current, "__cxa_throw", *site)
            for child in cursor.get_children():
                visit(child, current)

        sys.setrecursionlimit(100000)
        for entry in entries:
            argv = entry.get("arguments") or shlex.split(entry["command"])
            args = self._filter_args(argv)
            try:
                tu = self.index.parse(entry["file"], args=args)
            except Exception as e:
                errors.append((entry["file"], str(e)))
                continue
            fatal = [d for d in tu.diagnostics if d.severity >= 4]
            if fatal:
                errors.append((entry["file"], str(fatal[0])))
                continue
            visit(tu.cursor, None)
        return graph, errors


# --- Waivers ----------------------------------------------------------------

class Waiver:
    def __init__(self, rule, caller, callee, reason, index):
        self.rule = rule
        self.caller = caller
        self.callee = callee
        self.reason = reason
        self.index = index
        self.used = False

    def matches(self, rule, caller_name, callee_name):
        if self.rule != "*" and self.rule != rule:
            return False
        if self.caller != "*" and self.caller not in caller_name:
            return False
        if self.callee != "*" and self.callee not in callee_name:
            return False
        return True


def load_waivers(path):
    if not os.path.exists(path):
        return []
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    waivers = []
    for i, w in enumerate(data.get("waivers", [])):
        for field in ("rule", "caller", "callee", "reason"):
            if field not in w:
                raise ValueError(f"waiver #{i} missing '{field}'")
        if len(w["reason"].strip()) < 10:
            raise ValueError(f"waiver #{i}: reason too short to be a "
                             "justification")
        waivers.append(Waiver(w["rule"], w["caller"], w["callee"],
                              w["reason"], i))
    return waivers


# --- Closure analysis -------------------------------------------------------

class Finding:
    def __init__(self, rule, entry_name, message, path_desc=""):
        self.rule = rule
        self.entry = entry_name
        self.message = message
        self.path = path_desc

    def render(self):
        s = f"[{self.rule}] entry '{self.entry}': {self.message}"
        if self.path:
            s += f"\n    via {self.path}"
        return s


class Entry:
    def __init__(self, key, name, kind):
        self.key = key
        self.name = name
        self.kind = kind  # "hot" | "dispatch"


def match_markers_to_nodes(graph, marked, window=MARKER_WINDOW):
    """(file,line) markers -> node keys whose definition follows the marker."""
    by_file = {}
    for key, node in graph.nodes.items():
        for file, line in node.locations:
            by_file.setdefault(file, []).append((line, key))
    for lst in by_file.values():
        lst.sort()
    matched = {}
    unmatched = []
    for item in marked:
        relpath, line = item[0], item[1]
        cands = [(ln, key) for ln, key in by_file.get(relpath, ())
                 if line < ln <= line + window]
        if not cands:
            unmatched.append((relpath, line))
            continue
        best_line = min(ln for ln, _ in cands)
        matched[(relpath, line)] = [key for ln, key in cands
                                    if ln == best_line]
    return matched, unmatched


class ClosureAnalyzer:
    def __init__(self, graph, annotations, waivers, strict_indirect=False):
        self.graph = graph
        self.waivers = waivers
        self.strict_indirect = strict_indirect
        self.findings = []
        self.notes = []
        hot_matched, hot_unmatched = match_markers_to_nodes(
            graph, annotations.hot)
        cold_matched, cold_unmatched = match_markers_to_nodes(
            graph, [(f, l) for f, l, _ in annotations.cold])
        blk_matched, blk_unmatched = match_markers_to_nodes(
            graph, [(f, l) for f, l, _ in annotations.blocking])
        self.hot_matched = hot_matched
        self.unmatched_markers = hot_unmatched
        self.cold_keys = {k for keys in cold_matched.values() for k in keys}
        self.blocking_keys = {k for keys in blk_matched.values()
                              for k in keys}
        for f, l in cold_unmatched:
            self.notes.append(f"note: SOFTTIMER_COLD marker at {f}:{l} "
                              "matches no analyzed function")
        for f, l in blk_unmatched:
            self.notes.append(f"note: SOFTTIMER_BLOCKING marker at {f}:{l} "
                              "matches no analyzed function")

    def entries(self):
        out = []
        seen = set()
        for (relpath, line), keys in sorted(self.hot_matched.items()):
            for key in keys:
                if key in seen:
                    continue
                seen.add(key)
                node = self.graph.nodes[key]
                name = node.display().split(" [with")[0]
                out.append(Entry(key, f"{name} ({relpath}:{line})", "hot"))
        for ctx_name, pattern in DISPATCH_CONTEXTS:
            matched = False
            coincident = False
            for key, node in self.graph.nodes.items():
                if node.demangled and pattern in node.demangled:
                    matched = True
                    if key in seen:
                        # Already verified under its SOFTTIMER_HOT marker;
                        # don't analyze the same closure twice.
                        coincident = True
                        continue
                    seen.add(key)
                    out.append(Entry(key, f"{ctx_name}: {pattern[:-1]}",
                                     "dispatch"))
            if coincident:
                self.notes.append(
                    f"note: dispatch context '{ctx_name}' is also "
                    "SOFTTIMER_HOT-marked; its closure is verified under "
                    "the HOT entry of the same name")
            elif not matched:
                self.notes.append(
                    f"warning: dispatch context '{ctx_name}' matched no "
                    f"node (pattern '{pattern}') - context list stale?")
        return out

    def _edge_waived(self, rule, src, dst):
        src_name = self.graph.node(src).display() + " " + src
        dst_name = self.graph.node(dst).display() + " " + dst
        for w in self.waivers:
            if w.matches(rule, src_name, dst_name):
                w.used = True
                return True
        return False

    def _closure(self, entry_key, rule):
        """BFS respecting COLD boundaries and rule-specific edge waivers.

        Returns (visited_set, parents dict for path reconstruction).
        """
        parents = {entry_key: None}
        queue = [entry_key]
        while queue:
            cur = queue.pop(0)
            for callee in self.graph.edges.get(cur, {}):
                if callee in parents:
                    continue
                if callee in self.cold_keys:
                    continue
                if self._edge_waived(rule, cur, callee):
                    continue
                parents[callee] = cur
                # Sinks and declared-blocking functions are boundaries: we
                # report reaching them, never what is inside them.
                node = self.graph.nodes.get(callee)
                dem = node.demangled if node else ""
                if callee in self.blocking_keys or \
                        classify_sink(callee, dem) or callee == INDIRECT:
                    continue
                queue.append(callee)
        return parents

    def _path(self, parents, key):
        chain = []
        cur = key
        while cur is not None:
            node = self.graph.node(cur)
            name = node.display().split(" [with")[0]
            parent = parents.get(cur)
            if parent is not None:
                site = self.graph.edges.get(parent, {}).get(cur, ("", 0))
                loc = f" ({site[0]}:{site[1]})" if site[0] else ""
                chain.append(name + loc)
            else:
                chain.append(name)
            cur = parent
        return " -> ".join(reversed(chain))

    def _check_entry(self, entry):
        stats = {"nodes": 0, "indirect": 0}
        for rule in ("hot-alloc", "hot-blocking", "hot-throw"):
            parents = self._closure(entry.key, rule)
            if rule == "hot-alloc":
                stats["nodes"] = len(parents)
                stats["indirect"] = sum(1 for k in parents if k == INDIRECT)
            reported = set()
            for key in parents:
                if key == entry.key:
                    continue
                node = self.graph.node(key)
                if key == INDIRECT:
                    if self.strict_indirect and rule == "hot-blocking":
                        src = parents[key]
                        self.findings.append(Finding(
                            "hot-indirect", entry.name,
                            "unwaived indirect call inside hot closure "
                            "(strict mode)", self._path(parents, key)))
                    continue
                hit = None
                if rule == "hot-blocking" and key in self.blocking_keys:
                    hit = (rule, f"SOFTTIMER_BLOCKING function "
                                 f"{node.display().split(' [with')[0]}")
                else:
                    cls = classify_sink(key, node.demangled)
                    if cls and cls[0] == rule:
                        hit = cls
                if hit and hit[1] not in reported:
                    reported.add(hit[1])
                    self.findings.append(Finding(
                        rule, entry.name, f"reaches {hit[1]}",
                        self._path(parents, key)))
        self._check_recursion(entry)
        return stats

    def _check_recursion(self, entry):
        parents = self._closure(entry.key, "hot-recursion")
        visited = set(parents)
        # Iterative Tarjan SCC over the closure subgraph.
        index_of, low, on_stack = {}, {}, set()
        stack, sccs, counter = [], [], [0]
        for root in visited:
            if root in index_of:
                continue
            work = [(root, iter(sorted(self.graph.edges.get(root, {}))))]
            index_of[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                v, it = work[-1]
                advanced = False
                for w in it:
                    if w not in visited:
                        continue
                    if w not in index_of:
                        index_of[w] = low[w] = counter[0]
                        counter[0] += 1
                        stack.append(w)
                        on_stack.add(w)
                        work.append(
                            (w, iter(sorted(self.graph.edges.get(w, {})))))
                        advanced = True
                        break
                    if w in on_stack:
                        low[v] = min(low[v], index_of[w])
                if advanced:
                    continue
                work.pop()
                if low[v] == index_of[v]:
                    scc = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        scc.append(w)
                        if w == v:
                            break
                    if len(scc) > 1 or v in self.graph.edges.get(v, {}):
                        sccs.append(scc)
                if work:
                    pv = work[-1][0]
                    low[pv] = min(low[pv], low[v])
        for scc in sccs:
            names = sorted(self.graph.node(k).display().split(" [with")[0]
                           for k in scc)
            self.findings.append(Finding(
                "hot-recursion", entry.name,
                f"recursion cycle inside hot closure: {' <-> '.join(names)}"))

    def run(self):
        entry_list = self.entries()
        stats = []
        seen_finding = set()
        for entry in entry_list:
            before = len(self.findings)
            st = self._check_entry(entry)
            # Dedupe identical (rule, message, path) across entries that share
            # sub-closures, keeping the first entry that reported it.
            kept = []
            for f in self.findings[before:]:
                sig = (f.rule, f.message, f.path)
                if sig in seen_finding:
                    continue
                seen_finding.add(sig)
                kept.append(f)
            del self.findings[before:]
            self.findings.extend(kept)
            stats.append((entry, st))
        return stats


# --- Ordering-pairing pass (rule 5, pure source) ----------------------------

WEAK_ORDER_RE = re.compile(
    r"memory_order_(relaxed|acquire|release|acq_rel|consume)")
ORDERING_TAG = "ordering:"
ANNOTATION_LOOKBACK = 6
PAIR_REF_RE = re.compile(
    r"pairs?\s+w(?:ith|/)?\s+(?:the\s+)?((?:\w+\s+){0,4}\w+)",
    re.IGNORECASE)
SEE_REF_RE = re.compile(r"see\s+(k[A-Z]\w+|\w+\(\)|[A-Z]\w+(?:::\w+)*)")
IDENT_RE = re.compile(r"\b(k[A-Z]\w+)\b|\b([A-Za-z_]\w*)\(\)")

# Annotation phrases that declare the site synchronization-free or paired
# through a non-atomic mechanism (fence, thread launch/join, lock).
EXEMPT_PHRASES = (
    "fence", "no ordering", "no synchronization", "diagnostic",
    "counter", "best-effort", "staleness", "stale", "monotonic",
    "coherence", "self-check", "thread launch", "thread creation", "join",
    "quiesced", "heuristic", "mutex", "serializes", "single-threaded",
)

POLARITY = {"release": "rel", "acq_rel": "both", "acquire": "acq",
            "consume": "acq", "relaxed": "rlx"}


def strip_comment_and_strings(line):
    line = re.sub(r'"(\\.|[^"\\])*"', '""', line)
    cut = line.find("//")
    return line[:cut] if cut >= 0 else line


class OrderingSite:
    def __init__(self, relpath, lineno, orders, code, annotation):
        self.relpath = relpath
        self.lineno = lineno
        self.orders = orders          # set of order spellings on the line
        self.code = code
        self.annotation = annotation  # rationale text ("" if none)

    @property
    def polarities(self):
        return {POLARITY[o] for o in self.orders}


def collect_ordering_sites(root, subdirs):
    sites = []
    for sub in subdirs:
        base = os.path.join(root, sub)
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if not name.endswith((".h", ".cc", ".cpp")):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root).replace(os.sep, "/")
                with open(path, encoding="utf-8") as f:
                    lines = f.read().splitlines()
                for idx, line in enumerate(lines):
                    code = strip_comment_and_strings(line)
                    orders = set(WEAK_ORDER_RE.findall(code))
                    if not orders:
                        continue
                    annotation = ""
                    start = None
                    for back in range(idx, max(-1, idx - 1 - ANNOTATION_LOOKBACK), -1):
                        if ORDERING_TAG in lines[back]:
                            start = back
                            break
                    if start is not None:
                        parts = []
                        for li in range(start, idx + 1):
                            text = lines[li]
                            cut = text.find("//")
                            comment = text[cut + 2:] if cut >= 0 else ""
                            parts.append(comment.strip())
                        annotation = " ".join(p for p in parts if p)
                        annotation = annotation.split(ORDERING_TAG, 1)[-1]
                    sites.append(OrderingSite(rel, idx + 1, orders, code,
                                              annotation))
    return sites


def _opposite_ok(polarity, other):
    if polarity == "rel":
        return other & {"acq", "both"}
    if polarity == "acq":
        return other & {"rel", "both"}
    if polarity == "both":
        return other & {"rel", "acq", "both"}
    return True


def check_ordering_pairing(sites, findings):
    by_file = {}
    for s in sites:
        by_file.setdefault(s.relpath, []).append(s)

    def ident_resolves(ident, polarity, site):
        """An identifier resolves when an opposite-polarity site mentions or
        defines it - same file first, then the whole analyzed tree."""
        scopes = [by_file.get(site.relpath, ()), sites]
        for scope in scopes:
            for other in scope:
                if other is site:
                    continue
                if ident not in other.code and ident not in other.annotation:
                    continue
                if _opposite_ok(polarity, other.polarities):
                    return True
        return False

    for site in sites:
        strong = {p for p in site.polarities if p in ("rel", "acq", "both")}
        if not strong:
            continue  # relaxed-only: the lint already demands a rationale
        text = site.annotation
        low = text.lower()
        pair_refs = PAIR_REF_RE.findall(text)
        idents = []
        for phrase in pair_refs:
            for m in IDENT_RE.finditer(phrase):
                idents.append(m.group(1) or m.group(2))
        for m in SEE_REF_RE.finditer(text):
            idents.append(m.group(1).rstrip("()"))
        polarity = "both" if "both" in strong or len(strong) > 1 \
            else next(iter(strong))
        if idents:
            if any(ident_resolves(i, polarity, site) for i in idents):
                continue
            findings.append(Finding(
                "ordering-pair-missing",
                f"{site.relpath}:{site.lineno}",
                f"rationale names pairing site(s) {sorted(set(idents))} but "
                f"no opposite-polarity weakened-atomic site defines or "
                f"mentions them"))
            continue
        if any(p in low for p in EXEMPT_PHRASES):
            continue
        if pair_refs:
            # Phrase-level pairing claim ("pairs with the release handback"):
            # accept when the same file has an opposite-polarity site.
            others = [o for o in by_file.get(site.relpath, ()) if o is not site]
            if any(_opposite_ok(polarity, o.polarities) for o in others):
                continue
            findings.append(Finding(
                "ordering-pair-missing",
                f"{site.relpath}:{site.lineno}",
                "rationale claims a pairing but the file has no "
                "opposite-polarity weakened-atomic site"))
            continue
        others = [o for o in by_file.get(site.relpath, ()) if o is not site]
        if any(_opposite_ok(polarity, o.polarities) for o in others):
            continue
        findings.append(Finding(
            "ordering-pair-missing",
            f"{site.relpath}:{site.lineno}",
            f"{'/'.join(sorted(site.orders))} site has no pairing "
            "rationale (`pairs with <site>`), no exempting rationale, and "
            "no opposite-polarity site in the file"))


# --- Driver -----------------------------------------------------------------

def load_compile_db(build_dir, root, subdirs):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        return None, db_path
    with open(db_path, encoding="utf-8") as f:
        entries = json.load(f)
    wanted = []
    prefixes = tuple(os.path.join(root, s) + os.sep for s in subdirs)
    for e in entries:
        f = e["file"]
        if not os.path.isabs(f):
            f = os.path.join(e.get("directory", root), f)
        f = os.path.realpath(f)
        if f.startswith(prefixes):
            e = dict(e)
            e["file"] = f
            wanted.append(e)
    return wanted, db_path


def make_frontend(kind, root, jobs):
    if kind in ("clang", "auto"):
        try:
            return ClangFrontend(root, jobs)
        except FrontendUnavailable as e:
            if kind == "clang":
                raise
            clang_reason = str(e)
    if kind in ("gcc", "auto"):
        try:
            return GccFrontend(root, jobs)
        except FrontendUnavailable:
            if kind == "gcc":
                raise
    raise FrontendUnavailable(
        f"clang frontend: {clang_reason}; gcc -fcallgraph-info also "
        "unavailable")


def run_analysis(root, entries, annotations, waivers, frontend,
                 ordering_subdirs, strict_indirect=False, verbose=False):
    """Returns (findings, notes, entry_stats, errors)."""
    graph, errors = frontend.build(entries)
    analyzer = ClosureAnalyzer(graph, annotations, waivers, strict_indirect)
    entry_stats = analyzer.run()
    findings = analyzer.findings
    notes = analyzer.notes
    for relpath, line in analyzer.unmatched_markers:
        notes.append(
            f"note: SOFTTIMER_HOT marker at {relpath}:{line} matched no "
            "function definition in the analyzed TUs (template never "
            "instantiated under src/, or marker adrift)")
    sites = collect_ordering_sites(root, ordering_subdirs)
    check_ordering_pairing(sites, findings)
    return findings, notes, entry_stats, errors, len(sites)


def report(findings, notes, entry_stats, errors, n_sites, waivers,
           verbose=False):
    out = []
    hot = [e for e, _ in entry_stats if e.kind == "hot"]
    dispatch = [e for e, _ in entry_stats if e.kind == "dispatch"]
    total_nodes = sum(st["nodes"] for _, st in entry_stats)
    indirect = sum(st["indirect"] for _, st in entry_stats)
    out.append(f"hot_closure: verified {len(hot)} SOFTTIMER_HOT entry "
               f"point(s) + {len(dispatch)} additional dispatch "
               "context(s); "
               f"{total_nodes} closure nodes traversed, "
               f"{indirect} indirect-call boundary(ies), "
               f"{n_sites} weakened-atomic site(s) checked for pairing")
    if verbose:
        for e, st in entry_stats:
            out.append(f"  [{e.kind}] {e.name}: {st['nodes']} nodes, "
                       f"{st['indirect']} indirect")
    for f, err in errors:
        out.append(f"warning: failed to analyze TU {f}: {err.splitlines()[0] if err else ''}")
    for n in notes:
        out.append(n)
    used = [w for w in waivers if w.used]
    unused = [w for w in waivers if not w.used]
    if used:
        out.append(f"{len(used)} waiver(s) applied")
        if verbose:
            for w in used:
                out.append(f"  waiver #{w.index} [{w.rule}] "
                           f"{w.caller} -> {w.callee}: {w.reason}")
    for w in unused:
        out.append(f"warning: unused waiver #{w.index} [{w.rule}] "
                   f"{w.caller} -> {w.callee} (remove it or fix the match)")
    for f in findings:
        out.append(f.render())
    if findings:
        out.append(f"{len(findings)} unwaived finding(s)")
    else:
        out.append("hot_closure: clean (zero unwaived findings)")
    return "\n".join(out)


# --- Self-test --------------------------------------------------------------

def fixture_compile_db(fixtures_dir, tmpdir):
    entries = []
    for name in sorted(os.listdir(fixtures_dir)):
        if not name.endswith(".cc"):
            continue
        path = os.path.join(fixtures_dir, name)
        entries.append({
            "directory": fixtures_dir,
            "command": f"c++ -std=c++20 -c {shlex.quote(path)} -o "
                       f"{shlex.quote(os.path.join(tmpdir, name + '.o'))}",
            "file": path,
        })
    return entries


def self_test(root, frontend_kind, jobs):
    fixtures = os.path.join(root, "tools", "analyze", "fixtures")
    if not os.path.isdir(fixtures):
        print(f"self-test FAILED: fixture corpus missing at {fixtures}",
              file=sys.stderr)
        return 2
    try:
        frontend = make_frontend(frontend_kind, fixtures, jobs)
    except FrontendUnavailable as e:
        print(f"hot_closure self-test SKIPPED: {e}")
        return SKIP_CODE

    annotations = scan_annotations(fixtures, ["."])
    annotations.hot = [(f, l) for f, l in annotations.hot]
    with tempfile.TemporaryDirectory(prefix="hot_closure_st_") as tmpdir:
        entries = fixture_compile_db(fixtures, tmpdir)
        failures = []

        def run(waivers):
            findings, notes, stats, errors, _ = run_analysis(
                fixtures, entries, annotations, waivers, frontend, ["."])
            return findings, notes, stats, errors

        findings, notes, stats, errors = run([])
        for f, err in errors:
            failures.append(f"fixture TU failed to compile: {f}: {err}")
        rules = {f.rule for f in findings}
        expected = {"hot-alloc", "hot-blocking", "hot-throw",
                    "hot-recursion", "ordering-pair-missing"}
        for rule in sorted(expected):
            if rule not in rules:
                failures.append(f"rule {rule} did not fire on the seeded "
                                "fixture corpus")

        def fired(rule, needle):
            return any(f.rule == rule and needle in (f.message + f.path +
                                                     f.entry)
                       for f in findings)

        # Rule 1: allocation one call deep (the regex lint cannot see it).
        if not fired("hot-alloc", "TransitiveAlloc"):
            failures.append("hot-alloc did not fire through the transitive "
                            "helper chain")
        # Rule 2: blocking two calls deep + declared-blocking function.
        if not fired("hot-blocking", "DeepLock"):
            failures.append("hot-blocking did not fire through the nested "
                            "mutex helper")
        if not fired("hot-blocking", "SOFTTIMER_BLOCKING"):
            failures.append("SOFTTIMER_BLOCKING annotation did not flag the "
                            "declared-blocking callee")
        # Rule 3: throw behind a helper.
        if not fired("hot-throw", "ThrowingHelper") and \
                not fired("hot-throw", "__cxa_throw"):
            failures.append("hot-throw did not fire through the helper")
        # Rule 4: mutual recursion inside the closure.
        if not fired("hot-recursion", "PingPongA") and \
                not fired("hot-recursion", "recursion cycle"):
            failures.append("hot-recursion did not fire on the seeded cycle")
        # SOFTTIMER_COLD prunes: the cold error path allocates, but must not
        # produce a finding against its caller.
        if fired("hot-alloc", "ColdErrorPath"):
            failures.append("SOFTTIMER_COLD did not prune the cold error "
                            "path from the closure")
        # The clean fixture must contribute no findings.
        if any("CleanHot" in (f.message + f.path + f.entry)
               for f in findings):
            failures.append("clean fixture produced findings")
        # Ordering: the broken pairing fires, the good pairing stays silent.
        if not any(f.rule == "ordering-pair-missing" and
                   "fixture_ordering" in f.entry for f in findings):
            failures.append("ordering-pair-missing did not fire on the "
                            "dangling pairing reference")
        bad_ordering = [f for f in findings
                        if f.rule == "ordering-pair-missing" and
                        "good" in f.entry]
        if bad_ordering:
            failures.append(f"well-paired ordering site misflagged: "
                            f"{bad_ordering[0].entry}")

        # Waivers silence, per edge: waive every seeded graph violation and
        # verify only ordering findings remain.
        waive_all = [
            Waiver("hot-alloc", "*", "*", "self-test: waive the seeded "
                   "allocations", 0),
            Waiver("hot-blocking", "*", "*", "self-test: waive the seeded "
                   "blocking calls", 1),
            Waiver("hot-throw", "*", "*", "self-test: waive the seeded "
                   "throws", 2),
            Waiver("hot-recursion", "PingPongA", "PingPongB",
                   "self-test: break the seeded cycle at one edge", 3),
        ]
        findings2, _, _, _ = run(waive_all)
        graph_rules = {f.rule for f in findings2} - {"ordering-pair-missing"}
        if graph_rules:
            failures.append(f"waivers did not silence the seeded graph "
                            f"violations; still firing: {sorted(graph_rules)}")
        if not all(w.used for w in waive_all):
            failures.append("some self-test waivers were never applied")

        # Targeted per-edge waiver: waiving ONE edge must not silence an
        # unrelated rule.
        one_edge = [Waiver("hot-alloc", "HotAllocEntry", "operator new",
                           "self-test: targeted single-edge waiver", 0)]
        findings3, _, _, _ = run(one_edge)
        if not any(f.rule == "hot-blocking" for f in findings3):
            failures.append("a hot-alloc waiver suppressed hot-blocking "
                            "findings (waivers must be per-rule)")

    if failures:
        for f in failures:
            print(f"hot_closure self-test FAILED: {f}", file=sys.stderr)
        return 2
    print(f"hot_closure self-test ({frontend.name} frontend): all 5 rule "
          "classes fire on the seeded corpus; COLD prunes, BLOCKING flags, "
          "waivers silence per-edge, clean fixture stays clean")
    return 0


# --- main -------------------------------------------------------------------

def main():
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    default_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    parser.add_argument("--root", default=default_root,
                        help="repository root (default: ../../ from tools/"
                             "analyze/)")
    parser.add_argument("-p", "--build-dir", default=None,
                        help="directory containing compile_commands.json "
                             "(default: <root>/build)")
    parser.add_argument("--frontend", choices=("auto", "clang", "gcc"),
                        default="auto")
    parser.add_argument("--jobs", type=int, default=0,
                        help="parallel TU analyses (default: cpu count)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify all rule classes against the seeded "
                             "fixture corpus")
    parser.add_argument("--strict-indirect", action="store_true",
                        help="also flag unwaived indirect-call edges inside "
                             "hot closures")
    parser.add_argument("--verbose", "-v", action="store_true")
    args = parser.parse_args()

    root = os.path.realpath(args.root)
    if args.self_test:
        return self_test(root, args.frontend, args.jobs)

    build_dir = args.build_dir or os.path.join(root, "build")
    subdirs = ["src"]
    entries, db_path = load_compile_db(build_dir, root, subdirs)
    if entries is None:
        print(f"hot_closure: no compile_commands.json at {db_path}; "
              "configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON "
              "(the shipped CMake presets do)", file=sys.stderr)
        return SKIP_CODE
    if not entries:
        print("hot_closure: compile_commands.json has no src/ TUs",
              file=sys.stderr)
        return 2
    try:
        frontend = make_frontend(args.frontend, root, args.jobs)
    except FrontendUnavailable as e:
        # Graceful skip: the ordering pass needs no compiler, so still run it
        # before skipping the graph rules.
        print(f"hot_closure: call-graph frontends unavailable ({e}); "
              "running the source-level ordering-pairing pass only")
        findings = []
        sites = collect_ordering_sites(root, subdirs)
        check_ordering_pairing(sites, findings)
        for f in findings:
            print(f.render())
        if findings:
            print(f"{len(findings)} unwaived finding(s)", file=sys.stderr)
            return 1
        print(f"ordering-pairing: {len(sites)} weakened-atomic site(s) "
              "clean; graph rules SKIPPED")
        return SKIP_CODE

    annotations = scan_annotations(root, subdirs)
    waiver_path = os.path.join(root, "tools", "analyze", "waivers.json")
    try:
        waivers = load_waivers(waiver_path)
    except ValueError as e:
        print(f"hot_closure: invalid waiver database: {e}", file=sys.stderr)
        return 2

    findings, notes, entry_stats, errors, n_sites = run_analysis(
        root, entries, annotations, waivers, frontend, subdirs,
        args.strict_indirect, args.verbose)
    print(report(findings, notes, entry_stats, errors, n_sites, waivers,
                 args.verbose))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
