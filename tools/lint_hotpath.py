#!/usr/bin/env python3
"""Hot-path and memory-ordering lint for the soft-timer tree.

Three rules, all enforced as a CI gate (and locally via `ctest -L lint`):

1. hot-path-alloc: a function definition preceded by a `// SOFTTIMER_HOT`
   marker line (the marker must be a standalone comment line, optionally
   with a `: rationale` tail - prose that merely mentions the word does not
   mark) must not allocate, type-erase, or throw. Forbidden inside the
   marked body: operator new, make_unique/make_shared, malloc, calloc,
   realloc, aligned_alloc, strdup, throw, std::function<, push_back(,
   emplace_back(, .resize(, .reserve(. A line carrying `// lint:allow-alloc`
   is waived - reserved for amortized growth paths that sit at capacity in
   steady state (document why next to the waiver).

2. raw-atomic-in-shim: files templated on the atomics-traits shim
   (TRAITS_SHIM_FILES below) must not name std::atomic< or
   std::atomic_thread_fence directly; everything routes through
   Traits::Atomic / Traits::ThreadFence so tests/model_check_test.cc can
   substitute the model checker's instrumented types.
   src/core/atomics_traits.h is the single place allowed to touch both.

3. unannotated-ordering: every non-seq_cst std::memory_order_* site under
   src/ needs an `// ordering:` rationale on the same line or within the
   ANNOTATION_LOOKBACK lines above it, so each weakened ordering carries its
   pairing argument in-tree. src/check/ is exempt (the model checker
   manipulates orderings as data, it does not choose them).

Exit status: 0 clean, 1 findings, 2 internal/self-test failure.
`--self-test` runs every rule against synthetic violations and verifies
both that they fire and that the waivers/annotations silence them.
"""

import argparse
import os
import re
import sys

# Standalone marker line, optionally carrying a rationale tail. Kept in sync
# with tools/analyze/hot_closure.py's MARKER_RE so both tools mark the same
# functions; prose mentioning the word (e.g. "marked SOFTTIMER_HOT at the
# definition") is not a marker.
HOT_MARKER_RE = re.compile(r"^\s*//\s*SOFTTIMER_HOT\b\s*(?::.*)?$")
ALLOW_ALLOC = "lint:allow-alloc"
ANNOTATION_LOOKBACK = 6

# Files whose concurrency primitives are templated on the atomics-traits
# shim. Keep in sync with DESIGN.md section 11.
TRAITS_SHIM_FILES = (
    "src/core/spsc_ring.h",
    "src/core/remote_pending.h",
    "src/core/queue_claim.h",
    "src/rt/eventcount.h",
)

FORBIDDEN_IN_HOT = (
    (re.compile(r"\bnew\b"), "operator new"),
    (re.compile(r"\bmake_unique\b"), "make_unique"),
    (re.compile(r"\bmake_shared\b"), "make_shared"),
    (re.compile(r"\bmalloc\s*\("), "malloc"),
    (re.compile(r"\bcalloc\s*\("), "calloc"),
    (re.compile(r"\brealloc\s*\("), "realloc"),
    (re.compile(r"\baligned_alloc\s*\("), "aligned_alloc"),
    (re.compile(r"\bstrdup\s*\("), "strdup"),
    (re.compile(r"\bthrow\b"), "throw"),
    (re.compile(r"std::function<"), "std::function"),
    (re.compile(r"\bpush_back\s*\("), "push_back"),
    (re.compile(r"\bemplace_back\s*\("), "emplace_back"),
    (re.compile(r"\.resize\s*\("), "resize"),
    (re.compile(r"\.reserve\s*\("), "reserve"),
)

WEAK_ORDER_RE = re.compile(
    r"memory_order_(relaxed|acquire|release|acq_rel|consume)")
RAW_ATOMIC_RE = re.compile(r"std::atomic(<|_thread_fence)")


def strip_comment_and_strings(line):
    """Code-only view of a line: string literals blanked, // tail removed."""
    line = re.sub(r'"(\\.|[^"\\])*"', '""', line)
    cut = line.find("//")
    return line[:cut] if cut >= 0 else line


class Findings:
    def __init__(self):
        self.items = []

    def add(self, rule, path, lineno, message):
        self.items.append((rule, path, lineno, message))


def check_hot_functions(path, lines, findings):
    i = 0
    n = len(lines)
    while i < n:
        if not HOT_MARKER_RE.match(lines[i]):
            i += 1
            continue
        marker_line = i + 1  # 1-indexed, for messages
        # Find the body: first '{' at or after the line following the marker.
        j = i + 1
        depth = 0
        entered = False
        while j < n:
            code = strip_comment_and_strings(lines[j])
            for ch in code:
                if ch == "{":
                    depth += 1
                    entered = True
                elif ch == "}":
                    depth -= 1
            if entered:
                raw = lines[j]
                if ALLOW_ALLOC not in raw:
                    code_only = strip_comment_and_strings(raw)
                    for regex, label in FORBIDDEN_IN_HOT:
                        if regex.search(code_only):
                            findings.add(
                                "hot-path-alloc", path, j + 1,
                                f"{label} in SOFTTIMER_HOT function "
                                f"(marker at line {marker_line}); move it off "
                                f"the hot path or waive with // {ALLOW_ALLOC}")
                if depth <= 0:
                    break
            j += 1
        i = j + 1


def check_raw_atomics(path, lines, findings):
    for idx, line in enumerate(lines):
        code = strip_comment_and_strings(line)
        if RAW_ATOMIC_RE.search(code):
            findings.add(
                "raw-atomic-in-shim", path, idx + 1,
                "std::atomic used directly in traits-templated code; go "
                "through Traits::Atomic / Traits::ThreadFence "
                "(src/core/atomics_traits.h)")


def check_ordering_annotations(path, lines, findings):
    for idx, line in enumerate(lines):
        code = strip_comment_and_strings(line)
        if not WEAK_ORDER_RE.search(code):
            continue
        window = lines[max(0, idx - ANNOTATION_LOOKBACK):idx + 1]
        if any("ordering:" in w for w in window):
            continue
        findings.add(
            "unannotated-ordering", path, idx + 1,
            "non-seq_cst memory order without an `// ordering:` rationale "
            f"on the same line or the {ANNOTATION_LOOKBACK} lines above")


def lint_tree(root):
    findings = Findings()
    src = os.path.join(root, "src")
    for dirpath, _, filenames in os.walk(src):
        for name in sorted(filenames):
            if not name.endswith((".h", ".cc")):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            with open(path, encoding="utf-8") as f:
                lines = f.read().splitlines()
            check_hot_functions(rel, lines, findings)
            if rel in TRAITS_SHIM_FILES:
                check_raw_atomics(rel, lines, findings)
            if not rel.startswith("src/check/"):
                check_ordering_annotations(rel, lines, findings)
    return findings


def self_test():
    failures = []

    def run(name, lines, checker, rel, expect_rules):
        findings = Findings()
        checker(rel, lines, findings)
        got = sorted({f[0] for f in findings.items})
        if got != sorted(expect_rules):
            failures.append(f"{name}: expected {expect_rules}, got "
                            f"{[f'{f[0]}:{f[2]}' for f in findings.items]}")

    hot_alloc = [
        "// SOFTTIMER_HOT",
        "void Hot() {",
        "  v.push_back(1);",
        "}",
    ]
    run("hot alloc fires", hot_alloc, check_hot_functions, "x.cc",
        ["hot-path-alloc"])

    hot_waived = [
        "// SOFTTIMER_HOT",
        "void Hot() {",
        "  v.push_back(1);  // lint:allow-alloc",
        "}",
    ]
    run("waiver silences", hot_waived, check_hot_functions, "x.cc", [])

    hot_comment_only = [
        "// SOFTTIMER_HOT",
        "void Hot() {",
        "  x = 1;  // a new chunk would reserve here, but we do not",
        "}",
    ]
    run("comment tokens ignored", hot_comment_only, check_hot_functions,
        "x.cc", [])

    hot_ends = [
        "// SOFTTIMER_HOT",
        "void Hot() { x = 1; }",
        "void Cold() { v.push_back(1); }",
    ]
    run("marker scope ends at body", hot_ends, check_hot_functions, "x.cc", [])

    for token, stmt in (
        ("calloc", "p = calloc(4, 16);"),
        ("realloc", "p = realloc(p, 32);"),
        ("aligned_alloc", "p = aligned_alloc(64, 256);"),
        ("strdup", "s = strdup(name);"),
        ("throw", "throw std::runtime_error(\"late\");"),
    ):
        body = ["// SOFTTIMER_HOT", "void Hot() {", f"  {stmt}", "}"]
        run(f"{token} fires", body, check_hot_functions, "x.cc",
            ["hot-path-alloc"])

    hot_multiline_sig = [
        "// SOFTTIMER_HOT",
        "void Hot(int first,",
        "         int second,",
        "         int third) {",
        "  v.push_back(first);",
        "}",
    ]
    run("multi-line signature after marker", hot_multiline_sig,
        check_hot_functions, "x.cc", ["hot-path-alloc"])

    hot_nested = [
        "// SOFTTIMER_HOT",
        "void Hot() {",
        "  if (cond) {",
        "    for (int i = 0; i < n; ++i) {",
        "      x += i;",
        "    }",
        "  }",
        "}",
        "void Cold() { v.push_back(1); }",
    ]
    run("nested braces terminate scope correctly", hot_nested,
        check_hot_functions, "x.cc", [])

    hot_nested_violation = [
        "// SOFTTIMER_HOT",
        "void Hot() {",
        "  if (cond) {",
        "    v.push_back(1);",
        "  }",
        "}",
    ]
    run("violation inside nested scope fires", hot_nested_violation,
        check_hot_functions, "x.cc", ["hot-path-alloc"])

    marker_prose = [
        "// Hot path - marked SOFTTIMER_HOT at the definition.",
        "void NotMarkedHere() { v.push_back(1); }",
    ]
    run("prose mention is not a marker", marker_prose, check_hot_functions,
        "x.cc", [])

    marker_rationale = [
        "// SOFTTIMER_HOT: per-packet fast path",
        "void Hot() { v.push_back(1); }",
    ]
    run("marker with rationale tail still marks", marker_rationale,
        check_hot_functions, "x.cc", ["hot-path-alloc"])

    raw_atomic = ["std::atomic<int> x;"]
    run("raw atomic fires", raw_atomic, check_raw_atomics,
        "src/core/spsc_ring.h", ["raw-atomic-in-shim"])

    shimmed = ["typename Traits::template Atomic<int> x;"]
    run("shimmed atomic clean", shimmed, check_raw_atomics,
        "src/core/spsc_ring.h", [])

    unannotated = ["x.store(1, std::memory_order_release);"]
    run("unannotated ordering fires", unannotated,
        check_ordering_annotations, "x.cc", ["unannotated-ordering"])

    annotated = [
        "// ordering: publishes the slot write (pairs with the pop acquire).",
        "x.store(1, std::memory_order_release);",
    ]
    run("annotation silences", annotated, check_ordering_annotations,
        "x.cc", [])

    seq_cst = ["x.store(1, std::memory_order_seq_cst);"]
    run("seq_cst needs no annotation", seq_cst, check_ordering_annotations,
        "x.cc", [])

    if failures:
        for f in failures:
            print(f"lint self-test FAILED: {f}", file=sys.stderr)
        return 2
    print("lint self-test: all rules fire and all waivers silence")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of tools/)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the rules against synthetic violations")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    findings = lint_tree(args.root)
    if findings.items:
        for rule, path, lineno, message in findings.items:
            print(f"{path}:{lineno}: [{rule}] {message}")
        print(f"\n{len(findings.items)} finding(s)", file=sys.stderr)
        return 1
    print("lint_hotpath: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
