// Example: soft-timer network polling on a busy web server.
//
// Runs the Flash-style server testbed twice - conventional per-packet
// interrupts vs soft-timer polling with an aggregation quota of 5 - and
// prints throughput, interrupt counts, and poll statistics; a miniature of
// Table 8. Note how the polled run takes (almost) no rx interrupts while the
// CPU is busy, and how the poll governor settles near its quota.

#include <cstdio>

#include "src/httpsim/http_testbed.h"

using namespace softtimer;

namespace {

void Report(const char* label, HttpTestbed& bed, const HttpTestbed::RunResult& r) {
  uint64_t rx_intr = 0, rx_packets = 0, polled = 0;
  for (int i = 0; i < bed.num_links(); ++i) {
    rx_intr += bed.nic(i).stats().rx_interrupts;
    rx_packets += bed.nic(i).stats().rx_packets;
    polled += bed.nic(i).stats().polled_packets;
  }
  std::printf("\n%s\n", label);
  std::printf("  throughput:        %.0f req/s\n", r.req_per_sec);
  std::printf("  rx packets:        %llu (%llu via interrupts, %llu via polls)\n",
              (unsigned long long)rx_packets, (unsigned long long)rx_intr,
              (unsigned long long)polled);
  if (bed.poller() != nullptr) {
    const auto& ps = bed.poller()->stats();
    std::printf("  polls:             %llu (%.2f packets/poll; quota was 5)\n",
                (unsigned long long)ps.polls,
                ps.polls ? static_cast<double>(ps.packets) / static_cast<double>(ps.polls) : 0.0);
    std::printf("  idle mode flips:   %llu\n", (unsigned long long)ps.idle_switches);
  }
  std::printf("  mean response:     %.0f us\n", r.mean_response_us);
}

}  // namespace

int main() {
  std::printf("Flash web server, 4 Fast Ethernet NICs, 6 KB responses (PII-333)\n");

  HttpTestbed::Config base;
  base.profile = MachineProfile::PentiumII333();
  base.num_links = 4;
  base.server.kind = HttpServerModel::ServerKind::kFlash;

  HttpTestbed interrupt_bed(base);
  HttpTestbed::RunResult ri = interrupt_bed.Measure(SimDuration::Millis(300), SimDuration::Seconds(2));
  Report("conventional interrupts", interrupt_bed, ri);

  HttpTestbed::Config polled_cfg = base;
  SoftTimerNetPoller::Config pc;
  pc.governor.aggregation_quota = 5;
  pc.governor.min_interval_ticks = 10;
  pc.governor.max_interval_ticks = 4000;
  pc.governor.initial_interval_ticks = 50;
  polled_cfg.polling = pc;
  HttpTestbed polled_bed(polled_cfg);
  HttpTestbed::RunResult rp = polled_bed.Measure(SimDuration::Millis(300), SimDuration::Seconds(2));
  Report("soft-timer polling (quota 5)", polled_bed, rp);

  std::printf("\npolling improved throughput by %.1f%%\n",
              100.0 * (rp.req_per_sec / ri.req_per_sec - 1.0));
  return 0;
}
