// Example: rate-based clocking over a high bandwidth-delay-product path.
//
// Transfers the same 200 KB response across an emulated WAN (100 ms RTT,
// 50 Mbps bottleneck) twice: once with classic self-clocked TCP (slow start
// from one segment, delayed ACKs) and once with the paper's rate-based
// clocking (soft-timer paced at the known bottleneck rate, no slow start).
// Prints a second-by-second progress timeline and the final response times -
// a miniature of Tables 6/7.

#include <cstdio>

#include "src/machine/kernel.h"
#include "src/net/wan_path.h"
#include "src/sim/simulator.h"
#include "src/tcp/tcp_receiver.h"
#include "src/tcp/tcp_sender.h"

using namespace softtimer;

namespace {

double RunOnce(bool rate_based) {
  Simulator sim;
  Kernel::Config kc;
  kc.profile = MachineProfile::PentiumII300();
  kc.idle_poll_fast_forward = true;
  Kernel kernel(&sim, kc);

  WanPath::Config wc;
  wc.bottleneck_bps = 50e6;
  wc.one_way_delay = SimDuration::Millis(50);
  WanPath wan(&sim, wc);

  TcpSender::Config sc;
  sc.mode = rate_based ? TcpSender::Mode::kRateBased : TcpSender::Mode::kSelfClocked;
  sc.rwnd_bytes = 1 << 20;
  sc.pace_target_interval_ticks = 240;  // 1500 B at 50 Mbps
  sc.pace_min_burst_interval_ticks = 240;
  TcpSender sender(&kernel, sc);
  TcpReceiver receiver(&sim, TcpReceiver::Config{});

  sender.set_packet_sender([&](Packet p) { wan.forward().Send(p); });
  wan.forward().set_receiver([&](const Packet& p) { receiver.OnSegment(p); });
  receiver.set_ack_sender([&](Packet p) { wan.reverse().Send(p); });
  wan.reverse().set_receiver([&](const Packet& p) { sender.OnAck(p); });

  const uint64_t kBytes = 200 * 1024;
  SimTime done_at;
  receiver.NotifyWhenReceived(kBytes, [&] { done_at = sim.now(); });
  sim.ScheduleAt(SimTime::Zero() + wc.one_way_delay, [&] { sender.StartTransfer(kBytes); });

  std::printf("\n%s:\n", rate_based ? "rate-based clocking (soft timers)" : "regular TCP");
  for (int ms = 100; ms <= 1500; ms += 100) {
    sim.RunUntil(SimTime::Zero() + SimDuration::Millis(ms));
    std::printf("  t=%4d ms: received %6.1f KB\n", ms,
                static_cast<double>(receiver.bytes_received()) / 1024.0);
    if (receiver.bytes_received() >= kBytes) {
      break;
    }
  }
  sim.RunUntil(SimTime::Zero() + SimDuration::Seconds(30));
  double resp_ms = (done_at - SimTime::Zero()).ToMillis();
  std::printf("  response time: %.1f ms\n", resp_ms);
  return resp_ms;
}

}  // namespace

int main() {
  std::printf("200 KB transfer over an emulated WAN: 50 Mbps bottleneck, 100 ms RTT\n");
  double regular = RunOnce(/*rate_based=*/false);
  double paced = RunOnce(/*rate_based=*/true);
  std::printf("\nrate-based clocking cut the response time by %.0f%% (%.0f -> %.0f ms)\n",
              100.0 * (1.0 - paced / regular), regular, paced);
  return 0;
}
