// Example: the soft-timer facility on real wall-clock time.
//
// Everything else in this repository runs on the simulator; this example
// runs the same SoftTimerFacility against std::chrono::steady_clock inside
// an ordinary user-space loop - the shape a DPDK-style stack would use.
// A synthetic "event loop" does small work bursts and polls for due soft
// events at its natural check point; a paced stream targets one event per
// 500 us and we report the achieved intervals and lateness distribution.

#include <chrono>
#include <cstdio>
#include <functional>

#include "src/core/adaptive_pacer.h"
#include "src/rt/rt_soft_timer_host.h"
#include "src/stats/summary_stats.h"

using namespace softtimer;

int main() {
  RtSoftTimerHost host;
  std::printf("real-time soft timers: measure %llu Hz, backup %llu Hz (X = %llu)\n\n",
              (unsigned long long)host.facility().MeasureResolution(),
              (unsigned long long)host.facility().InterruptClockResolution(),
              (unsigned long long)host.facility().ticks_per_backup_interval());

  AdaptivePacer pacer({500, 100});  // target 500 us, burst floor 100 us
  SummaryStats intervals_us;
  SummaryStats lateness_ticks;
  uint64_t last_fire = 0;

  std::function<void(const SoftTimerFacility::FireInfo&)> stream =
      [&](const SoftTimerFacility::FireInfo& info) {
        if (last_fire != 0) {
          intervals_us.Add(static_cast<double>(info.fired_tick - last_fire));
        }
        last_fire = info.fired_tick;
        lateness_ticks.Add(static_cast<double>(info.lateness_ticks()));
        host.facility().ScheduleSoftEvent(pacer.OnPacketSent(info.fired_tick), stream);
      };
  pacer.StartTrain(host.facility().MeasureTime());
  host.facility().ScheduleSoftEvent(500, stream);

  // A busy loop doing ~20 us work bursts between trigger-state polls.
  volatile uint64_t sink = 0;
  host.RunFor(std::chrono::milliseconds(400), [&] {
    for (int i = 0; i < 2'000; ++i) {
      sink += static_cast<uint64_t>(i) * 2654435761u;
    }
  });

  std::printf("paced stream over 400 ms of wall time:\n");
  std::printf("  events fired:        %llu\n", (unsigned long long)lateness_ticks.count());
  std::printf("  achieved interval:   %.1f us mean (target 500), stddev %.1f\n",
              intervals_us.mean(), intervals_us.stddev());
  std::printf("  lateness:            mean %.1f us, max %.0f us\n", lateness_ticks.mean(),
              lateness_ticks.max());
  std::printf("  trigger-state polls: %llu\n", (unsigned long long)host.stats().polls);
  return 0;
}
