// wan_explorer: a command-line knob-turner for the Tables 6/7 experiment.
//
// Compare regular TCP vs soft-timer rate-based clocking for any path you
// like:
//
//   wan_explorer [--bw-mbps=N] [--rtt-ms=N] [--packets=N] [--loss-every=N]
//
// Prints response time, throughput, and sender statistics for both modes.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/machine/kernel.h"
#include "src/net/wan_path.h"
#include "src/sim/simulator.h"
#include "src/tcp/tcp_receiver.h"
#include "src/tcp/tcp_sender.h"

using namespace softtimer;

namespace {

struct Options {
  double bw_mbps = 50;
  double rtt_ms = 100;
  uint64_t packets = 1000;
  uint64_t loss_every = 0;  // 0 = lossless
};

Options Parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--bw-mbps=", 10) == 0) {
      o.bw_mbps = std::atof(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--rtt-ms=", 9) == 0) {
      o.rtt_ms = std::atof(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--packets=", 10) == 0) {
      o.packets = static_cast<uint64_t>(std::atoll(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--loss-every=", 13) == 0) {
      o.loss_every = static_cast<uint64_t>(std::atoll(argv[i] + 13));
    } else {
      std::fprintf(stderr,
                   "usage: wan_explorer [--bw-mbps=N] [--rtt-ms=N] [--packets=N] "
                   "[--loss-every=N]\n");
      std::exit(2);
    }
  }
  return o;
}

void RunMode(const Options& o, bool rate_based) {
  Simulator sim;
  Kernel::Config kc;
  kc.profile = MachineProfile::PentiumII300();
  kc.idle_poll_fast_forward = true;
  Kernel kernel(&sim, kc);

  WanPath::Config wc;
  wc.bottleneck_bps = o.bw_mbps * 1e6;
  wc.one_way_delay = SimDuration::Millis(o.rtt_ms / 2);
  WanPath wan(&sim, wc);

  TcpSender::Config sc;
  sc.mode = rate_based ? TcpSender::Mode::kRateBased : TcpSender::Mode::kSelfClocked;
  sc.rwnd_bytes = 1 << 20;
  double wire_bits = (kDefaultMss + kTcpIpHeaderBytes) * 8.0;
  sc.pace_target_interval_ticks =
      static_cast<uint64_t>(wire_bits / (o.bw_mbps * 1e6) * 1e6 + 0.5);
  sc.pace_min_burst_interval_ticks = sc.pace_target_interval_ticks;
  TcpSender sender(&kernel, sc);
  TcpReceiver receiver(&sim, TcpReceiver::Config{});

  uint64_t tx = 0;
  sender.set_packet_sender([&](Packet p) {
    ++tx;
    if (o.loss_every > 0 && tx % o.loss_every == 0) {
      return;  // dropped by the path
    }
    wan.forward().Send(p);
  });
  wan.forward().set_receiver([&](const Packet& p) { receiver.OnSegment(p); });
  receiver.set_ack_sender([&](Packet p) { wan.reverse().Send(p); });
  wan.reverse().set_receiver([&](const Packet& p) { sender.OnAck(p); });

  uint64_t bytes = o.packets * kDefaultMss;
  SimTime done_at;
  bool done = false;
  receiver.NotifyWhenReceived(bytes, [&] {
    done = true;
    done_at = sim.now();
  });
  sim.ScheduleAt(SimTime::Zero() + wc.one_way_delay, [&] { sender.StartTransfer(bytes); });
  sim.RunUntil(SimTime::Zero() + SimDuration::Seconds(300));

  std::printf("\n%s:\n", rate_based ? "rate-based clocking (soft timers)" : "regular TCP");
  if (!done) {
    std::printf("  transfer did not complete within 300 s of simulated time\n");
    return;
  }
  double resp_ms = done_at.ToSeconds() * 1e3;
  std::printf("  response time:   %.1f ms\n", resp_ms);
  std::printf("  throughput:      %.2f Mbps\n",
              static_cast<double>(bytes) * 8.0 / (resp_ms / 1e3) / 1e6);
  std::printf("  segments sent:   %llu (%llu retransmits, %llu fast rtx, %llu timeouts)\n",
              (unsigned long long)sender.stats().segments_sent,
              (unsigned long long)sender.stats().retransmits,
              (unsigned long long)sender.stats().fast_retransmits,
              (unsigned long long)sender.stats().timeouts);
  std::printf("  srtt estimate:   %.1f ms\n", sender.srtt().ToMillis());
}

}  // namespace

int main(int argc, char** argv) {
  Options o = Parse(argc, argv);
  std::printf("path: %.0f Mbps bottleneck, %.0f ms RTT, %llu x %u B packets%s\n", o.bw_mbps,
              o.rtt_ms, (unsigned long long)o.packets, kDefaultMss,
              o.loss_every ? ", periodic loss" : "");
  RunMode(o, /*rate_based=*/false);
  RunMode(o, /*rate_based=*/true);
  return 0;
}
