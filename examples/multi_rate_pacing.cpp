// Example: clocking several flows at different rates simultaneously.
//
// Section 5.7 observes that "only a single hardware timer device is
// available in most systems. It is impossible, therefore, to use a hardware
// timer to simultaneously clock multiple transmissions at different rates,
// unless one rate is a multiple of the other." Soft timers have no such
// limit: this example paces three flows at 25 / 60 / 140 us target intervals
// on one busy server, each with its own AdaptivePacer, and shows every flow
// holding its own rate.

#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "src/core/adaptive_pacer.h"
#include "src/stats/summary_stats.h"
#include "src/workload/trigger_workload.h"

using namespace softtimer;

namespace {

struct Flow {
  Flow(uint64_t target, uint64_t burst) : pacer({target, burst}), target_us(target) {}
  AdaptivePacer pacer;
  uint64_t target_us;
  SummaryStats intervals;
  SimTime last_send;
  bool have_last = false;
};

}  // namespace

int main() {
  std::printf("three flows paced on one ST-Apache machine (soft timers only)\n\n");

  auto wl = MakeTriggerWorkload(WorkloadKind::kApache, MachineProfile::PentiumII300(), 42);
  wl->Start();
  wl->sim().RunFor(SimDuration::Millis(300));
  SoftTimerFacility& st = wl->kernel().soft_timers();

  std::vector<std::unique_ptr<Flow>> flows;
  flows.push_back(std::make_unique<Flow>(25, 12));
  flows.push_back(std::make_unique<Flow>(60, 12));
  flows.push_back(std::make_unique<Flow>(140, 12));

  std::function<void(Flow*)> send = [&](Flow* f) {
    SimTime now = wl->sim().now();
    if (f->have_last) {
      f->intervals.Add((now - f->last_send).ToMicros());
    }
    f->last_send = now;
    f->have_last = true;
    uint64_t delta = f->pacer.OnPacketSent(st.MeasureTime());
    st.ScheduleSoftEvent(delta, [&, f](const SoftTimerFacility::FireInfo&) { send(f); });
  };
  for (auto& f : flows) {
    f->pacer.StartTrain(st.MeasureTime());
    send(f.get());
  }

  wl->sim().RunFor(SimDuration::Seconds(2));

  std::printf("%-12s %-14s %-14s %-10s %s\n", "target (us)", "achieved (us)", "stddev (us)",
              "packets", "catch-up decisions");
  for (auto& f : flows) {
    std::printf("%-12llu %-14.1f %-14.1f %-10llu %llu\n",
                (unsigned long long)f->target_us, f->intervals.mean(), f->intervals.stddev(),
                (unsigned long long)f->pacer.packets_sent(),
                (unsigned long long)f->pacer.catchup_decisions());
  }
  std::printf(
      "\nA single 8253 cannot produce 25/60/140 us periods at once; the soft-timer\n"
      "facility schedules all three against the same trigger-state stream.\n");
  return 0;
}
