// Quickstart: schedule soft-timer events on a simulated server and watch
// when they fire.
//
// Builds a machine (Kernel) whose workload makes frequent kernel entries
// (trigger states), schedules events through the paper's API
// (ScheduleSoftEvent), and prints each event's requested delay vs its actual
// firing delay - illustrating the probabilistic-but-bounded semantics:
//
//     T  <  actual  <  T + X + 1
//
// where X is the measurement-ticks-per-backup-interrupt ratio (1000 here).
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart

#include <cstdio>
#include <functional>

#include "src/machine/kernel.h"
#include "src/sim/simulator.h"

using namespace softtimer;

int main() {
  Simulator sim;

  Kernel::Config cfg;
  cfg.profile = MachineProfile::PentiumII300();
  Kernel kernel(&sim, cfg);

  std::printf("measure_resolution()         = %llu Hz\n",
              (unsigned long long)kernel.soft_timers().MeasureResolution());
  std::printf("interrupt_clock_resolution() = %llu Hz\n",
              (unsigned long long)kernel.soft_timers().InterruptClockResolution());
  std::printf("X (ticks per backup tick)    = %llu\n\n",
              (unsigned long long)kernel.soft_timers().ticks_per_backup_interval());

  // A synthetic workload: a process making a syscall every ~25 us. Each
  // syscall entry is a trigger state where due soft events get dispatched.
  Rng rng(7);
  std::function<void()> churn = [&] {
    kernel.KernelOp(TriggerSource::kSyscall, rng.LogNormalDuration(SimDuration::Micros(18), 0.8),
                    churn);
  };
  churn();

  // Schedule a handful of events with different delays; print what happens.
  std::printf("%-14s %-14s %-14s %s\n", "requested T", "actual delay", "lateness",
              "dispatched from");
  for (uint64_t t : {10, 50, 100, 500, 2000}) {
    uint64_t scheduled_tick = kernel.soft_timers().MeasureTime();
    kernel.soft_timers().ScheduleSoftEvent(
        t, [t, scheduled_tick](const SoftTimerFacility::FireInfo& info) {
          std::printf("%-14llu %-14llu %-14llu %s\n", (unsigned long long)t,
                      (unsigned long long)(info.fired_tick - scheduled_tick),
                      (unsigned long long)info.lateness_ticks(),
                      TriggerSourceName(info.source));
        });
    sim.RunFor(SimDuration::Millis(5));
  }

  // A periodic soft event: reschedules itself every 100 us, 50 times.
  int fires = 0;
  SummaryStats lateness;
  std::function<void(const SoftTimerFacility::FireInfo&)> periodic =
      [&](const SoftTimerFacility::FireInfo& info) {
        lateness.Add(static_cast<double>(info.lateness_ticks()));
        if (++fires < 50) {
          kernel.soft_timers().ScheduleSoftEvent(100, periodic);
        }
      };
  kernel.soft_timers().ScheduleSoftEvent(100, periodic);
  sim.RunFor(SimDuration::Millis(50));

  std::printf("\nperiodic event: %d fires, mean lateness %.1f ticks (max %.0f)\n", fires,
              lateness.mean(), lateness.max());
  std::printf("facility stats: %llu checks, %llu dispatches\n",
              (unsigned long long)kernel.soft_timers().stats().checks,
              (unsigned long long)kernel.soft_timers().stats().dispatches);
  return 0;
}
