// Appendix A: big ACKs and the sender bursts they cause.
//
// Appendix A.3 shows how a receiver whose application drains the socket
// buffer slowly (e.g. a browser rendering while data arrives) acknowledges
// many segments at once; a self-clocked sender answers such a "big ACK" with
// a back-to-back burst at link speed, which is exactly what rate-based
// clocking avoids ("the sender may choose to pace the transmission of the
// corresponding new data packets at the measured average ACK arrival rate").
//
// Setup: a 200-segment transfer over a 10 ms (one-way) path whose receiver
// reads the socket buffer only every `read_delay`. Compared: self-clocked
// TCP, self-clocked TCP with Fall & Floyd's maxburst limiter, and rate-based
// clocking. Reported: the biggest ACK seen (segments covered), the largest
// same-instant transmission burst, and the transfer time.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/machine/kernel.h"
#include "src/net/wan_path.h"
#include "src/tcp/tcp_receiver.h"
#include "src/tcp/tcp_sender.h"

namespace softtimer {
namespace {

struct Out {
  uint64_t biggest_ack = 0;
  uint64_t max_burst = 0;
  double transfer_ms = 0;
};

Out Run(SimDuration read_delay, bool rate_based, uint32_t max_burst_limit) {
  Simulator sim;
  Kernel::Config kc;
  kc.profile = MachineProfile::PentiumII300();
  kc.idle_poll_fast_forward = true;
  Kernel kernel(&sim, kc);

  WanPath::Config wc;
  wc.bottleneck_bps = 100e6;
  wc.one_way_delay = SimDuration::Millis(10);
  WanPath wan(&sim, wc);

  TcpSender::Config sc;
  sc.mode = rate_based ? TcpSender::Mode::kRateBased : TcpSender::Mode::kSelfClocked;
  sc.initial_cwnd_segments = 2;
  sc.max_burst_segments = max_burst_limit;
  sc.pace_target_interval_ticks = 120;  // pace at the 100 Mbps line rate
  sc.pace_min_burst_interval_ticks = 120;
  TcpSender sender(&kernel, sc);

  TcpReceiver::Config rc;
  rc.app_read_delay = read_delay;
  TcpReceiver receiver(&sim, rc);

  Out out;
  SimTime last_send;
  uint64_t burst = 1;
  sender.set_packet_sender([&](Packet p) {
    SimTime now = sim.now();
    if (now == last_send) {
      ++burst;
      if (burst > out.max_burst) {
        out.max_burst = burst;
      }
    } else {
      burst = 1;
      if (out.max_burst == 0) {
        out.max_burst = 1;
      }
    }
    last_send = now;
    wan.forward().Send(p);
  });
  wan.forward().set_receiver([&](const Packet& p) { receiver.OnSegment(p); });
  receiver.set_ack_sender([&](Packet p) { wan.reverse().Send(p); });
  wan.reverse().set_receiver([&](const Packet& p) { sender.OnAck(p); });

  const uint64_t kBytes = 200 * kDefaultMss;
  SimTime done_at;
  receiver.NotifyWhenReceived(kBytes, [&] { done_at = sim.now(); });
  sender.StartTransfer(kBytes);
  sim.RunUntil(SimTime::Zero() + SimDuration::Seconds(60));

  out.biggest_ack = receiver.stats().max_segments_per_ack;
  out.transfer_ms = (done_at - SimTime::Zero()).ToMillis();
  return out;
}

int Main(int argc, char** argv) {
  (void)ParseBenchOptions(argc, argv);
  PrintBanner("Big ACKs and sender burstiness", "Appendix A (A.1/A.3)");

  TextTable t({"Receiver app read", "Sender", "biggest ACK (segs)",
               "max send burst (pkts)", "transfer (ms)"});
  struct Case {
    const char* label;
    bool rate_based;
    uint32_t maxburst;
  };
  const Case senders[] = {
      {"self-clocked", false, 0},
      {"self-clocked + maxburst 4", false, 4},
      {"rate-based (soft timers)", true, 0},
  };
  for (double read_ms : {0.0, 5.0, 50.0}) {
    for (const Case& c : senders) {
      Out o = Run(SimDuration::Millis(read_ms), c.rate_based, c.maxburst);
      t.AddRow({read_ms == 0 ? "immediate" : Fmt("%.0f ms", read_ms), c.label,
                Fmt("%llu", (unsigned long long)o.biggest_ack),
                Fmt("%llu", (unsigned long long)o.max_burst),
                Fmt("%.0f", o.transfer_ms)});
    }
  }
  t.Print();
  std::printf(
      "\nSlow application reads produce big ACKs; the self-clocked sender answers\n"
      "them with same-instant bursts (growing with the read delay), maxburst caps\n"
      "the burst at the cost of draining the pipe, and rate-based clocking never\n"
      "bursts regardless of the ACK pattern - the Appendix A argument.\n");
  return 0;
}

}  // namespace
}  // namespace softtimer

int main(int argc, char** argv) { return softtimer::Main(argc, argv); }
