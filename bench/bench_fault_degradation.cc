// Measures what the graceful-degradation layer costs when nothing is wrong:
// every facility hot path runs twice, once with the seed configuration (no
// DegradationPolicy instantiated) and once with degradation enabled but zero
// faults injected. The delta is the price of the per-check policy
// bookkeeping (density bucketing, backlog-age test) and the per-dispatch
// budget accounting on an entirely healthy host.

#include <benchmark/benchmark.h>

#include "src/core/clock_source.h"
#include "src/core/soft_timer_facility.h"
#include "src/sim/simulator.h"

namespace softtimer {
namespace {

struct Env {
  explicit Env(bool degradation)
      : clock(&sim, 1'000'000), facility(&clock, MakeConfig(degradation)) {}

  static SoftTimerFacility::Config MakeConfig(bool degradation) {
    SoftTimerFacility::Config cfg;
    cfg.degradation.enabled = degradation;
    cfg.degradation.handler_budget_ticks = 1'000;
    return cfg;
  }

  Simulator sim;
  SimClockSource clock;
  SoftTimerFacility facility;
};

void TriggerCheckEmpty(benchmark::State& state, bool degradation) {
  Env env(degradation);
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.facility.OnTriggerState(TriggerSource::kSyscall));
  }
}

void TriggerCheckEventPendingFarOut(benchmark::State& state, bool degradation) {
  Env env(degradation);
  env.facility.ScheduleSoftEvent(1'000'000'000,
                                 [](const SoftTimerFacility::FireInfo&) {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.facility.OnTriggerState(TriggerSource::kSyscall));
  }
}

void ScheduleDispatchCycle(benchmark::State& state, bool degradation) {
  Env env(degradation);
  for (auto _ : state) {
    env.facility.ScheduleSoftEvent(1, [](const SoftTimerFacility::FireInfo&) {},
                                   /*handler_tag=*/7);
    env.sim.RunUntil(env.sim.now() + SimDuration::Micros(2));
    benchmark::DoNotOptimize(env.facility.OnTriggerState(TriggerSource::kSyscall));
  }
}

BENCHMARK_CAPTURE(TriggerCheckEmpty, seed_baseline, false);
BENCHMARK_CAPTURE(TriggerCheckEmpty, degradation_on, true);
BENCHMARK_CAPTURE(TriggerCheckEventPendingFarOut, seed_baseline, false);
BENCHMARK_CAPTURE(TriggerCheckEventPendingFarOut, degradation_on, true);
BENCHMARK_CAPTURE(ScheduleDispatchCycle, seed_baseline, false);
BENCHMARK_CAPTURE(ScheduleDispatchCycle, degradation_on, true);

}  // namespace
}  // namespace softtimer

BENCHMARK_MAIN();
