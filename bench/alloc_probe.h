// Heap-allocation probe: linking the companion alloc_probe.cc into a binary
// replaces global operator new/delete with counting wrappers over malloc and
// free. The zero-allocation hot-path claims in DESIGN.md are enforced with
// this probe (tests/hotpath_alloc_test.cc) and reported per benchmark op in
// bench_micro_facility's "allocs/op" counter and BENCH_hotpath.json.
//
// Only binaries that link the st_alloc_probe library get the interposer;
// everything else keeps the toolchain's operator new (and, in sanitizer
// builds, the sanitizer's).

#ifndef SOFTTIMER_BENCH_ALLOC_PROBE_H_
#define SOFTTIMER_BENCH_ALLOC_PROBE_H_

#include <cstdint>

namespace softtimer {

// Number of operator new / new[] calls since process start. Monotonic;
// sample before and after a region and subtract.
uint64_t AllocProbeAllocCount();

// Number of non-null operator delete / delete[] calls since process start.
uint64_t AllocProbeFreeCount();

// Total bytes requested from operator new since process start.
uint64_t AllocProbeAllocBytes();

}  // namespace softtimer

#endif  // SOFTTIMER_BENCH_ALLOC_PROBE_H_
