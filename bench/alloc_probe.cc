#include "bench/alloc_probe.h"

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

namespace softtimer {
namespace {

// Relaxed is enough: callers only ever diff snapshots taken on the same
// thread around a single-threaded region.
std::atomic<uint64_t> g_allocs{0};
std::atomic<uint64_t> g_frees{0};
std::atomic<uint64_t> g_bytes{0};

void* CountedAlloc(size_t size, size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  if (align > alignof(std::max_align_t)) {
    // aligned_alloc requires size to be a multiple of the alignment.
    size_t rounded = (size + align - 1) / align * align;
    return std::aligned_alloc(align, rounded);
  }
  return std::malloc(size == 0 ? 1 : size);
}

void CountedFree(void* p) {
  if (p != nullptr) {
    g_frees.fetch_add(1, std::memory_order_relaxed);
    std::free(p);
  }
}

}  // namespace

uint64_t AllocProbeAllocCount() { return g_allocs.load(std::memory_order_relaxed); }
uint64_t AllocProbeFreeCount() { return g_frees.load(std::memory_order_relaxed); }
uint64_t AllocProbeAllocBytes() { return g_bytes.load(std::memory_order_relaxed); }

}  // namespace softtimer

// --- Global interposers -----------------------------------------------
// Defining these in a linked object overrides the toolchain's weak
// definitions for the whole binary.

void* operator new(size_t size) {
  void* p = softtimer::CountedAlloc(size, 0);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](size_t size) { return ::operator new(size); }

void* operator new(size_t size, const std::nothrow_t&) noexcept {
  return softtimer::CountedAlloc(size, 0);
}

void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  return softtimer::CountedAlloc(size, 0);
}

void* operator new(size_t size, std::align_val_t align) {
  void* p = softtimer::CountedAlloc(size, static_cast<size_t>(align));
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void* operator new(size_t size, std::align_val_t align, const std::nothrow_t&) noexcept {
  return softtimer::CountedAlloc(size, static_cast<size_t>(align));
}

void* operator new[](size_t size, std::align_val_t align, const std::nothrow_t&) noexcept {
  return softtimer::CountedAlloc(size, static_cast<size_t>(align));
}

void operator delete(void* p) noexcept { softtimer::CountedFree(p); }
void operator delete[](void* p) noexcept { softtimer::CountedFree(p); }
void operator delete(void* p, size_t) noexcept { softtimer::CountedFree(p); }
void operator delete[](void* p, size_t) noexcept { softtimer::CountedFree(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { softtimer::CountedFree(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { softtimer::CountedFree(p); }
void operator delete(void* p, std::align_val_t) noexcept { softtimer::CountedFree(p); }
void operator delete[](void* p, std::align_val_t) noexcept { softtimer::CountedFree(p); }
void operator delete(void* p, size_t, std::align_val_t) noexcept { softtimer::CountedFree(p); }
void operator delete[](void* p, size_t, std::align_val_t) noexcept { softtimer::CountedFree(p); }
