// Million-connection RTO benchmark: the retransmission-timer workload the
// paper motivates soft timers with (Section 5, Tables 6/7) driven end to
// end through RtoEngine + ShardedSoftTimerRuntime, with FaultInjector
// supplying the loss that makes retransmission timers actually fire.
//
// Phases (each self-checks its acceptance gate; any failure exits 1):
//
//   churn       N concurrent connections, no loss: every segment's RTO
//               timer is scheduled and then cancelled by the cumulative
//               ACK. Gates: >= 95% of timers cancelled before firing
//               (here: all of them), 0 allocs/op on the schedule->cancel
//               path, and zero fires across the whole phase.
//   rearm       Full 4-segment windows under partial ACKs: every ACK
//               retires the head and restarts the three survivors (RFC
//               6298 5.3) through RescheduleOnShard. Run twice - on the
//               grouped sorting queue (native O(1) Update) and on the
//               hashed wheel (inherited cancel+reschedule emulation) - to
//               price the native path at connection scale. Gates: every
//               round restarts 3 survivors/conn on both backends, 0
//               allocs/op, zero fires, exact conservation.
//   loss        Same engine under a FaultInjector plan (probabilistic
//               data/ACK loss plus a deterministic burst episode): timers
//               fire, retransmissions back off exponentially, some
//               connections give up. The engine's fire probe records
//               per-dispatch lateness (p50/p99) and proves no timer ever
//               fired before its exact deadline.
//   wheel       PacingWheel under backoff: flows re-rated through doubling
//               intervals until the interval exceeds the inner horizon, so
//               deadlines park in the hierarchical overflow ring. Gates:
//               horizon_clamps == 0, overflow parks/cascades observed, and
//               no flow emitted earlier than its interval (minus dispatch
//               slack).
//   slowstart   Tables 6/7 shape at connection scale: an 8-segment
//               transfer per connection, window 4, driven once
//               self-clocked (slow-start rounds 1,2,4,...) and once
//               rate-based (full window immediately, the soft-timer-paced
//               mode). Every segment runs over real RTO timers. Gate:
//               rate-based completes the transfer in fewer RTTs.
//
// Methodology matches bench_pacing_scale/bench_shard_scaling: virtual time
// is a manual tick counter (1 tick = 1 us nominal), cost is thread CPU time
// (CLOCK_THREAD_CPUTIME_ID), allocations come from the operator-new probe.
// Dispatch lateness is measured against the trigger-state cadence the bench
// itself provides (one sweep per 128 virtual ticks in the loss phase), i.e.
// it is the paper's trigger-arrival delay, not queue error.
//
// Flags:
//   --json=PATH   write the JSON report (schema softtimer-rto-v1)
//   --smoke       20k connections, small wheel (the bench-smoke CI entry)
//   --conns=N     override the connection count
//
// Full run writes BENCH_rto.json for the repo root (see EXPERIMENTS.md).

#include <time.h>

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <queue>
#include <string>
#include <vector>

#include "bench/alloc_probe.h"
#include "src/core/sharded_soft_timer_runtime.h"
#include "src/stats/latency_histogram.h"
#include "src/fault/fault_injector.h"
#include "src/pacing/pacing_wheel.h"
#include "src/sim/random.h"
#include "src/tcp/rto_engine.h"

namespace softtimer {
namespace {

uint64_t ThreadCpuNs() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

// Manual virtual clock: the bench owns time, the runtime only reads it.
class TickClock : public ClockSource {
 public:
  uint64_t NowTicks() const override { return now_; }
  uint64_t ResolutionHz() const override { return 1'000'000; }
  void Advance(uint64_t ticks) { now_ += ticks; }

 private:
  uint64_t now_ = 0;
};

// ---------------------------------------------------------------------------
// Phase 1: no-loss churn - the 95%-cancelled hot path at full scale.
// ---------------------------------------------------------------------------

struct ChurnResult {
  size_t conns = 0;
  int measured_rounds = 0;
  uint64_t schedules = 0;  // per measured round
  uint64_t cancels = 0;    // per measured round
  uint64_t cpu_ns = 0;     // best measured round
  uint64_t allocs = 0;     // worst measured round
  uint64_t total_scheduled = 0;
  uint64_t total_cancelled = 0;
  uint64_t total_fired = 0;
  bool conserved = false;
  double ns_per_op() const {
    uint64_t ops = schedules + cancels;
    return ops == 0 ? 0.0
                    : static_cast<double>(cpu_ns) / static_cast<double>(ops);
  }
  double allocs_per_op() const {
    uint64_t ops = schedules + cancels;
    return ops == 0 ? 0.0
                    : static_cast<double>(allocs) / static_cast<double>(ops);
  }
  double cancelled_ratio() const {
    return total_scheduled == 0 ? 0.0
                                : static_cast<double>(total_cancelled) /
                                      static_cast<double>(total_scheduled);
  }
  double ops_per_sec() const {
    uint64_t ops = schedules + cancels;
    return cpu_ns == 0 ? 0.0
                       : static_cast<double>(ops) * 1e9 /
                             static_cast<double>(cpu_ns);
  }
};

ChurnResult RunChurn(size_t conns) {
  TickClock clock;
  ShardedSoftTimerRuntime::Config rc;
  rc.num_shards = 1;
  ShardedSoftTimerRuntime rt(&clock, rc);
  RtoEngine::Config ec;
  ec.rto_initial_ticks = 2'000;  // RTT is 500: ACKs win by 4x
  ec.rto_min_ticks = 1'000;
  ec.rto_max_ticks = 64'000;
  RtoEngine engine(&rt, nullptr, ec);

  std::vector<uint64_t> ids(conns);
  for (size_t i = 0; i < conns; ++i) {
    ids[i] = engine.OpenConnection(nullptr);
  }

  uint64_t seq = 1'000;
  auto round = [&] {
    for (size_t i = 0; i < conns; ++i) {
      engine.OnSegmentSent(ids[i], seq);
    }
    clock.Advance(500);
    rt.OnTriggerState(0, TriggerSource::kSyscall);
    for (size_t i = 0; i < conns; ++i) {
      engine.OnCumulativeAck(ids[i], seq);
    }
    seq += 1'000;
  };

  // Warmup round: grows the connection table, the facility slab, and the
  // wheel slot vectors to their high-water marks. Everything after must be
  // allocation-free.
  round();

  constexpr int kReps = 3;
  ChurnResult r;
  r.conns = conns;
  r.measured_rounds = kReps;
  r.schedules = conns;
  r.cancels = conns;
  uint64_t best_cpu = UINT64_MAX;
  uint64_t worst_allocs = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    uint64_t a0 = AllocProbeAllocCount();
    uint64_t t0 = ThreadCpuNs();
    round();
    uint64_t cpu = ThreadCpuNs() - t0;
    uint64_t allocs = AllocProbeAllocCount() - a0;
    best_cpu = cpu < best_cpu ? cpu : best_cpu;
    worst_allocs = allocs > worst_allocs ? allocs : worst_allocs;
  }
  r.cpu_ns = best_cpu;
  r.allocs = worst_allocs;

  // Sweep far past every scheduled deadline: cancelled timers must stay
  // dead (fired count frozen), and the wheel reclaims their tombstones.
  for (int i = 0; i < 64; ++i) {
    clock.Advance(ec.rto_max_ticks / 16);
    rt.OnTriggerState(0, TriggerSource::kSyscall);
  }
  for (size_t i = 0; i < conns; ++i) {
    engine.CloseConnection(ids[i]);
  }
  const RtoEngine::Stats& st = engine.stats();
  r.total_scheduled = st.timers_scheduled;
  r.total_cancelled = st.timers_cancelled;
  r.total_fired = st.timers_fired;
  r.conserved = st.timers_scheduled == st.timers_cancelled + st.timers_fired &&
                st.stale_fires == 0;
  return r;
}

// ---------------------------------------------------------------------------
// Phase 1b: partial-ACK re-arm - the RFC 6298 5.3 restart at scale, native
// update vs emulated cancel+reschedule.
// ---------------------------------------------------------------------------

struct RearmResult {
  size_t conns = 0;
  const char* queue = "";
  int measured_rounds = 0;
  uint64_t reschedules = 0;  // per measured round
  uint64_t cpu_ns = 0;       // best measured round
  uint64_t allocs = 0;       // worst measured round
  uint64_t total_rescheduled = 0;
  uint64_t total_fired = 0;
  bool conserved = false;
  // The measured round is one partial ACK + one fresh send per connection:
  // 3 survivor restarts, 1 cancel, 1 schedule. The restarts dominate and
  // are the only part that differs between backends, so normalize on them.
  double ns_per_reschedule() const {
    return reschedules == 0 ? 0.0
                            : static_cast<double>(cpu_ns) /
                                  static_cast<double>(reschedules);
  }
  double allocs_per_op() const {
    return reschedules == 0 ? 0.0
                            : static_cast<double>(allocs) /
                                  static_cast<double>(reschedules);
  }
};

RearmResult RunRearm(size_t conns, TimerQueueKind kind) {
  TickClock clock;
  ShardedSoftTimerRuntime::Config rc;
  rc.num_shards = 1;
  rc.facility.queue_kind = kind;
  ShardedSoftTimerRuntime rt(&clock, rc);
  RtoEngine::Config ec;
  ec.rto_initial_ticks = 8'000;  // ACK cadence is 500: restarts always win
  ec.rto_min_ticks = 4'000;
  ec.rto_max_ticks = 64'000;
  RtoEngine engine(&rt, nullptr, ec);

  std::vector<uint64_t> ids(conns);
  for (size_t i = 0; i < conns; ++i) {
    ids[i] = engine.OpenConnection(nullptr);
  }
  // Fill every window: 4 segments in flight per connection.
  for (uint32_t s = 1; s <= kRtoWindowSegments; ++s) {
    for (size_t i = 0; i < conns; ++i) {
      engine.OnSegmentSent(ids[i], s * 1'000ull);
    }
  }

  uint64_t round_idx = 0;
  auto round = [&] {
    clock.Advance(500);
    rt.OnTriggerState(0, TriggerSource::kSyscall);
    uint64_t ack = (round_idx + 1) * 1'000ull;
    uint64_t next_send = (kRtoWindowSegments + round_idx + 1) * 1'000ull;
    for (size_t i = 0; i < conns; ++i) {
      engine.OnCumulativeAck(ids[i], ack);  // retires head, restarts 3
      engine.OnSegmentSent(ids[i], next_send);
    }
    ++round_idx;
  };

  round();  // warmup: slab / window bookkeeping high-water marks

  constexpr int kReps = 3;
  RearmResult r;
  r.conns = conns;
  r.queue = TimerQueueKindName(kind);
  r.measured_rounds = kReps;
  r.reschedules = static_cast<uint64_t>(conns) * (kRtoWindowSegments - 1);
  uint64_t best_cpu = UINT64_MAX;
  uint64_t worst_allocs = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    uint64_t a0 = AllocProbeAllocCount();
    uint64_t t0 = ThreadCpuNs();
    round();
    uint64_t cpu = ThreadCpuNs() - t0;
    uint64_t allocs = AllocProbeAllocCount() - a0;
    best_cpu = cpu < best_cpu ? cpu : best_cpu;
    worst_allocs = allocs > worst_allocs ? allocs : worst_allocs;
  }
  r.cpu_ns = best_cpu;
  r.allocs = worst_allocs;

  for (size_t i = 0; i < conns; ++i) {
    engine.CloseConnection(ids[i]);
  }
  const RtoEngine::Stats& st = engine.stats();
  r.total_rescheduled = st.timers_rescheduled;
  r.total_fired = st.timers_fired;
  r.conserved = st.timers_scheduled == st.timers_cancelled + st.timers_fired &&
                st.stale_fires == 0;
  return r;
}

// ---------------------------------------------------------------------------
// Phase 2: fault-injected loss - timers fire, back off, and never fire
// early; the probe collects per-dispatch lateness.
// ---------------------------------------------------------------------------

struct AckEvent {
  uint64_t due = 0;
  uint32_t idx = 0;
  uint64_t seq = 0;
  bool operator>(const AckEvent& o) const { return due > o.due; }
};

struct LossWorld {
  fault::FaultInjector* inj = nullptr;
  TickClock* clock = nullptr;
  Rng* rng = nullptr;
  std::priority_queue<AckEvent, std::vector<AckEvent>, std::greater<AckEvent>>*
      acks = nullptr;
  std::vector<uint8_t>* done = nullptr;
  size_t done_count = 0;
  uint64_t aborted = 0;
  uint64_t retx_copies_dropped = 0;
  // Fire-probe accumulators. The histogram is the shared metric definition
  // with bench_shard_scaling's isolated-SLO phase (src/stats); its reported
  // percentiles are bucket upper bounds (conservative), max is exact.
  LatencyHistogram lateness;
  uint64_t early_fires = 0;

  uint64_t AckDelay() { return 300 + rng->UniformU64(400); }
};

void LossRetransmit(void* ctx, void* conn_ctx, uint64_t seq_end, uint32_t) {
  LossWorld* w = static_cast<LossWorld*>(ctx);
  uint32_t idx = static_cast<uint32_t>(reinterpret_cast<uintptr_t>(conn_ctx));
  if (w->inj->DropDataSegment()) {
    ++w->retx_copies_dropped;
    return;
  }
  w->acks->push({w->clock->NowTicks() + w->AckDelay(), idx, seq_end});
}

void LossAbort(void* ctx, void* conn_ctx) {
  LossWorld* w = static_cast<LossWorld*>(ctx);
  uint32_t idx = static_cast<uint32_t>(reinterpret_cast<uintptr_t>(conn_ctx));
  if (!(*w->done)[idx]) {
    (*w->done)[idx] = 1;
    ++w->done_count;
  }
  ++w->aborted;
}

void LossFireProbe(void* ctx, const SoftTimerFacility::FireInfo& info) {
  LossWorld* w = static_cast<LossWorld*>(ctx);
  w->lateness.Record(info.lateness_ticks());
  if (info.fired_tick < info.scheduled_tick + info.delta_ticks) {
    ++w->early_fires;
  }
}

struct LossResult {
  size_t conns = 0;
  bool completed = false;  // every connection retired or gave up
  uint64_t fires = 0;
  uint64_t retransmits = 0;
  uint64_t give_ups = 0;
  uint64_t backoff_capped = 0;
  uint64_t karn_suppressed = 0;
  uint64_t data_dropped = 0;
  uint64_t acks_dropped = 0;
  uint64_t burst_dropped = 0;
  uint64_t early_fires = 0;
  uint64_t samples = 0;
  uint64_t lateness_p50 = 0;
  uint64_t lateness_p99 = 0;
  uint64_t lateness_max = 0;
  bool conserved = false;
};

LossResult RunLoss(size_t conns) {
  TickClock clock;
  ShardedSoftTimerRuntime::Config rc;
  rc.num_shards = 1;
  ShardedSoftTimerRuntime rt(&clock, rc);
  RtoEngine::Config ec;
  ec.rto_initial_ticks = 4'000;
  ec.rto_min_ticks = 1'000;
  ec.rto_max_ticks = 64'000;
  ec.max_retransmits = 6;
  RtoEngine engine(&rt, nullptr, ec);

  // The chaos plan: 2% data loss and 1% ACK loss for the whole phase, plus
  // a deterministic burst that eats the first conns/100 data segments (a
  // routing flap right as the phase opens).
  fault::FaultPlan plan;
  fault::FaultPlan::PacketLoss loss;
  loss.window = {0, UINT64_MAX / 2};
  loss.data_drop_probability = 0.02;
  loss.ack_drop_probability = 0.01;
  plan.packet_loss.push_back(loss);
  fault::FaultPlan::BurstLoss burst;
  burst.window = {0, UINT64_MAX / 2};
  burst.count = static_cast<uint32_t>(conns / 100);
  burst.match_data = true;
  plan.burst_loss.push_back(burst);
  fault::FaultInjector inj(&clock, plan, /*seed=*/0x5eed);

  Rng delay_rng(0x7075);
  std::priority_queue<AckEvent, std::vector<AckEvent>, std::greater<AckEvent>>
      acks;
  std::vector<uint8_t> done(conns, 0);
  LossWorld world;
  world.inj = &inj;
  world.clock = &clock;
  world.rng = &delay_rng;
  world.acks = &acks;
  world.done = &done;
  engine.set_retransmit_hook(&LossRetransmit, &world);
  engine.set_abort_hook(&LossAbort, &world);
  engine.set_fire_probe(&LossFireProbe, &world);

  std::vector<uint64_t> ids(conns);
  for (size_t i = 0; i < conns; ++i) {
    ids[i] = engine.OpenConnection(
        reinterpret_cast<void*>(static_cast<uintptr_t>(i)));
  }

  // One segment per connection, sends staggered across the early steps;
  // the phase ends when every connection has either retired its segment
  // (ACK delivered, possibly after retransmissions) or given up.
  //
  // Trigger states arrive every ~128 ticks with jitter, the way real
  // trigger opportunities (syscall returns, exception returns) do - the
  // lateness distribution below is exactly that arrival delay.
  constexpr uint64_t kStep = 128;  // mean trigger-state cadence (ticks)
  size_t send_cursor = 0;
  size_t sends_per_step = conns / 1'000 + 1;
  LossResult r;
  r.conns = conns;
  uint64_t iterations = 0;
  while (world.done_count < conns) {
    if (++iterations > 4'000'000) {
      break;  // fail loudly below instead of hanging CI
    }
    clock.Advance(kStep / 2 + delay_rng.UniformU64(kStep));
    rt.OnTriggerState(0, TriggerSource::kSyscall);
    for (size_t k = 0; k < sends_per_step && send_cursor < conns;
         ++k, ++send_cursor) {
      size_t i = send_cursor;
      engine.OnSegmentSent(ids[i], 1'000);
      if (!inj.DropDataSegment()) {
        acks.push({clock.NowTicks() + world.AckDelay(),
                   static_cast<uint32_t>(i), 1'000});
      }
    }
    uint64_t now = clock.NowTicks();
    while (!acks.empty() && acks.top().due <= now) {
      AckEvent ev = acks.top();
      acks.pop();
      if (inj.DropAck()) {
        continue;
      }
      if (engine.OnCumulativeAck(ids[ev.idx], ev.seq) > 0 && !done[ev.idx]) {
        done[ev.idx] = 1;
        ++world.done_count;
      }
    }
  }
  r.completed = world.done_count == conns;
  for (size_t i = 0; i < conns; ++i) {
    if (engine.IsOpen(ids[i])) {
      engine.CloseConnection(ids[i]);
    }
  }

  const RtoEngine::Stats& st = engine.stats();
  r.fires = st.timers_fired;
  r.retransmits = st.retransmits;
  r.give_ups = st.give_ups;
  r.backoff_capped = st.backoff_capped;
  r.karn_suppressed = st.karn_suppressed;
  r.data_dropped = inj.stats().data_dropped;
  r.acks_dropped = inj.stats().acks_dropped;
  r.burst_dropped = inj.stats().burst_dropped;
  r.early_fires = world.early_fires;
  r.samples = world.lateness.count();
  if (r.samples != 0) {
    r.lateness_p50 = world.lateness.Percentile(50.0);
    r.lateness_p99 = world.lateness.Percentile(99.0);
    r.lateness_max = world.lateness.max();
  }
  r.conserved = st.timers_scheduled == st.timers_cancelled + st.timers_fired &&
                st.stale_fires == 0;
  return r;
}

// ---------------------------------------------------------------------------
// Phase 3: PacingWheel under exponential backoff - far deadlines park in
// the overflow ring instead of clamping, and nothing emits early.
// ---------------------------------------------------------------------------

class GapCheckSink : public PacingWheel::BatchSink {
 public:
  GapCheckSink(std::vector<uint64_t>* last_emit,
               std::vector<uint64_t>* interval)
      : last_emit_(last_emit), interval_(interval) {}

  void OnPacedBatch(const PacedEmit* batch, size_t count,
                    uint64_t now_tick) override {
    for (size_t i = 0; i < count; ++i) {
      size_t idx = static_cast<size_t>(batch[i].user_data);
      emits += batch[i].packets;
      uint64_t last = (*last_emit_)[idx];
      // Dispatch lateness of the PREVIOUS emit can eat into the observed
      // gap (deadlines are exact, drain arrival is not), so allow the
      // drain cadence as slack. Anything beyond that is a genuine early
      // fire.
      if (last != 0 && now_tick - last + kDrainSlackTicks < (*interval_)[idx]) {
        ++gap_violations;
      }
      (*last_emit_)[idx] = now_tick;
    }
  }

  static constexpr uint64_t kDrainSlackTicks = 16;
  uint64_t emits = 0;
  uint64_t gap_violations = 0;

 private:
  std::vector<uint64_t>* last_emit_;
  std::vector<uint64_t>* interval_;
};

struct WheelResult {
  size_t flows = 0;
  uint64_t emits = 0;
  uint64_t gap_violations = 0;
  uint64_t horizon_clamps = 0;
  uint64_t overflow_parks = 0;
  uint64_t overflow_cascades = 0;
  uint64_t overflow_reparks = 0;
};

WheelResult RunWheelBackoff(size_t flows) {
  PacingWheel::Config wc;
  wc.quantum_ticks = 8;
  wc.num_slots = 512;  // horizon 4096: the backed-off intervals overflow it
  PacingWheel wheel(wc);
  std::vector<uint64_t> last_emit(flows, 0);
  std::vector<uint64_t> interval(flows, 512);
  GapCheckSink sink(&last_emit, &interval);
  Rng rng(0xca5cade);

  std::vector<PacedFlowId> ids(flows);
  for (size_t i = 0; i < flows; ++i) {
    PacedFlowConfig fc;
    fc.target_interval_ticks = 512;
    fc.min_burst_interval_ticks = 512;  // no catch-up bursts: gaps are clean
    fc.max_coalesced_burst_packets = 1;
    fc.user_data = i;
    ids[i] = wheel.AddFlow(fc);
    wheel.Activate(ids[i], 0, rng.UniformU64(512));
  }

  uint64_t now = 0;
  auto drive = [&](uint64_t span) {
    uint64_t end = now + span;
    while (now < end) {
      now += wc.quantum_ticks + rng.UniformU64(wc.quantum_ticks / 2);
      wheel.Drain(now, &sink);
    }
  };

  drive(2 * 4096);  // steady state at the base rate

  // Backoff ladder: 1024 -> 32768 ticks. From 8192 up the interval exceeds
  // the 4096-tick horizon, so every requeue parks in the overflow ring and
  // cascades back in as the drain cursor reaches its window.
  for (int k = 1; k <= 6; ++k) {
    uint64_t next = 512ull << k;
    for (size_t i = 0; i < flows; ++i) {
      wheel.ReRate(ids[i], now, next, next);
      interval[i] = next;
      last_emit[i] = 0;  // re-rate restarts the train: reset the gap base
    }
    drive(2 * next);
  }

  // Recovery: back to the base rate (loss episode over).
  for (size_t i = 0; i < flows; ++i) {
    wheel.ReRate(ids[i], now, 512, 512);
    interval[i] = 512;
    last_emit[i] = 0;
  }
  drive(2 * 4096);

  WheelResult r;
  r.flows = flows;
  r.emits = sink.emits;
  r.gap_violations = sink.gap_violations;
  r.horizon_clamps = wheel.stats().horizon_clamps;
  r.overflow_parks = wheel.stats().overflow_parks;
  r.overflow_cascades = wheel.stats().overflow_cascades;
  r.overflow_reparks = wheel.stats().overflow_reparks;
  return r;
}

// ---------------------------------------------------------------------------
// Phase 4: Tables 6/7 at connection scale - slow-start avoidance on the
// RTO substrate.
// ---------------------------------------------------------------------------

struct TransferResult {
  int rounds = 0;
  uint64_t completion_ticks = 0;
  uint64_t timer_ops = 0;
  uint64_t cpu_ns = 0;
  bool clean = false;  // no fires, exact conservation
  double ns_per_op() const {
    return timer_ops == 0
               ? 0.0
               : static_cast<double>(cpu_ns) / static_cast<double>(timer_ops);
  }
};

TransferResult RunTransfer(size_t conns, bool rate_based) {
  constexpr uint32_t kSegments = 8;  // per-connection transfer length
  constexpr uint64_t kRttTicks = 400;
  TickClock clock;
  ShardedSoftTimerRuntime::Config rc;
  rc.num_shards = 1;
  ShardedSoftTimerRuntime rt(&clock, rc);
  RtoEngine::Config ec;
  ec.rto_initial_ticks = 4'000;  // >> kSegments/window * RTT: no spurious RTO
  ec.rto_min_ticks = 1'000;
  ec.rto_max_ticks = 64'000;
  RtoEngine engine(&rt, nullptr, ec);

  std::vector<uint64_t> ids(conns);
  for (size_t i = 0; i < conns; ++i) {
    ids[i] = engine.OpenConnection(nullptr);
  }

  TransferResult r;
  uint64_t t0 = ThreadCpuNs();
  uint32_t remaining = kSegments;
  uint32_t cwnd = rate_based ? kRtoWindowSegments : 1;
  uint32_t sent_base = 0;
  while (remaining > 0) {
    uint32_t k = cwnd < remaining ? cwnd : remaining;
    if (k > kRtoWindowSegments) {
      k = kRtoWindowSegments;
    }
    for (size_t i = 0; i < conns; ++i) {
      for (uint32_t s = 0; s < k; ++s) {
        engine.OnSegmentSent(ids[i], (sent_base + s + 1) * 1'000ull);
      }
    }
    clock.Advance(kRttTicks);
    rt.OnTriggerState(0, TriggerSource::kSyscall);
    uint64_t ack = (sent_base + k) * 1'000ull;
    for (size_t i = 0; i < conns; ++i) {
      engine.OnCumulativeAck(ids[i], ack);
    }
    sent_base += k;
    remaining -= k;
    cwnd = cwnd * 2 < kRtoWindowSegments ? cwnd * 2 : kRtoWindowSegments;
    ++r.rounds;
  }
  r.cpu_ns = ThreadCpuNs() - t0;
  r.completion_ticks = static_cast<uint64_t>(r.rounds) * kRttTicks;
  for (size_t i = 0; i < conns; ++i) {
    engine.CloseConnection(ids[i]);
  }
  const RtoEngine::Stats& st = engine.stats();
  r.timer_ops = st.timers_scheduled + st.timers_cancelled;
  r.clean = st.timers_fired == 0 &&
            st.timers_scheduled == st.timers_cancelled + st.timers_fired;
  return r;
}

// ---------------------------------------------------------------------------

int Run(const std::string& json_path, bool smoke, size_t conns_override) {
  size_t conns = smoke ? 20'000 : 1'000'000;
  if (conns_override > 0) {
    conns = conns_override;
  }
  size_t wheel_flows = smoke ? 2'000 : 50'000;

  std::printf("rto churn: %zu connections...\n", conns);
  ChurnResult churn = RunChurn(conns);
  std::printf(
      "  %.1f ns/op  %.1fM ops/sec  allocs/op %.6f  cancelled %.4f  fired "
      "%" PRIu64 "\n",
      churn.ns_per_op(), churn.ops_per_sec() / 1e6, churn.allocs_per_op(),
      churn.cancelled_ratio(), churn.total_fired);

  // Re-arm phase is quadratic-ish in window depth, not conns, but a full
  // million-conn run is still heavy; a quarter of the churn population keeps
  // it proportionate while staying way past cache sizes.
  size_t rearm_conns = conns / 4 > 0 ? conns / 4 : 1;
  std::printf("rto rearm: %zu connections x %u-segment windows...\n",
              rearm_conns, kRtoWindowSegments);
  RearmResult rearm_native =
      RunRearm(rearm_conns, TimerQueueKind::kGroupedSorting);
  RearmResult rearm_emulated =
      RunRearm(rearm_conns, TimerQueueKind::kHashedWheel);
  double rearm_speedup =
      rearm_native.cpu_ns == 0
          ? 0.0
          : static_cast<double>(rearm_emulated.cpu_ns) /
                static_cast<double>(rearm_native.cpu_ns);
  std::printf(
      "  native (%s)   %.1f ns/reschedule  allocs/op %.6f  fired %" PRIu64
      "\n",
      rearm_native.queue, rearm_native.ns_per_reschedule(),
      rearm_native.allocs_per_op(), rearm_native.total_fired);
  std::printf(
      "  emulated (%s) %.1f ns/reschedule  allocs/op %.6f  fired %" PRIu64
      "  native speedup %.2fx\n",
      rearm_emulated.queue, rearm_emulated.ns_per_reschedule(),
      rearm_emulated.allocs_per_op(), rearm_emulated.total_fired,
      rearm_speedup);

  std::printf("rto loss: %zu connections under chaos plan...\n", conns);
  LossResult loss = RunLoss(conns);
  std::printf(
      "  fires %" PRIu64 "  retransmits %" PRIu64 "  give_ups %" PRIu64
      "  lateness p50/p99/max %" PRIu64 "/%" PRIu64 "/%" PRIu64
      " ticks  early %" PRIu64 "\n",
      loss.fires, loss.retransmits, loss.give_ups, loss.lateness_p50,
      loss.lateness_p99, loss.lateness_max, loss.early_fires);

  std::printf("wheel backoff: %zu flows...\n", wheel_flows);
  WheelResult wheel = RunWheelBackoff(wheel_flows);
  std::printf(
      "  emits %" PRIu64 "  parks %" PRIu64 "  cascades %" PRIu64
      "  reparks %" PRIu64 "  clamps %" PRIu64 "  gap violations %" PRIu64
      "\n",
      wheel.emits, wheel.overflow_parks, wheel.overflow_cascades,
      wheel.overflow_reparks, wheel.horizon_clamps, wheel.gap_violations);

  std::printf("slow-start avoidance: %zu transfers x 8 segments...\n", conns);
  TransferResult self_clocked = RunTransfer(conns, /*rate_based=*/false);
  TransferResult rate_based = RunTransfer(conns, /*rate_based=*/true);
  double speedup =
      rate_based.completion_ticks == 0
          ? 0.0
          : static_cast<double>(self_clocked.completion_ticks) /
                static_cast<double>(rate_based.completion_ticks);
  std::printf(
      "  self-clocked %d rounds (%" PRIu64 " ticks)  rate-based %d rounds "
      "(%" PRIu64 " ticks)  speedup %.2fx\n",
      self_clocked.rounds, self_clocked.completion_ticks, rate_based.rounds,
      rate_based.completion_ticks, speedup);

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"schema\": \"softtimer-rto-v1\",\n");
    std::fprintf(
        f,
        "  \"note\": \"RtoEngine (per-segment RFC 6298 retransmission "
        "timers) on ShardedSoftTimerRuntime; 1 tick = 1 us nominal. churn: "
        "send+cumulative-ACK rounds, cost is thread CPU "
        "(CLOCK_THREAD_CPUTIME_ID) over schedule+cancel ops (best of 3 "
        "rounds), allocs from the operator-new probe (worst of 3). rearm: "
        "4-segment windows under partial ACKs, every ACK restarts the 3 "
        "survivors (RFC 6298 5.3); native Update on the grouped sorting "
        "queue vs the emulated cancel+reschedule on the hashed wheel, cost "
        "normalized per survivor restart. loss: "
        "FaultInjector plan (2%% data, 1%% ACK, burst=conns/100), lateness "
        "from the engine fire probe against a 128-tick trigger cadence. "
        "wheel: PacingWheel flows re-rated through doubling intervals past "
        "the 4096-tick horizon. slowstart: 8-segment transfers, window 4, "
        "RTT 400 ticks, self-clocked vs rate-based rounds (Tables 6/7 "
        "shape)\",\n");
    std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(
        f,
        "  \"churn\": {\"conns\": %zu, \"schedules_per_round\": %" PRIu64
        ", \"cancels_per_round\": %" PRIu64 ", \"cpu_ns\": %" PRIu64
        ", \"ns_per_op\": %.2f, \"ops_per_sec\": %.0f, \"allocs_per_op\": "
        "%.6f, \"cancelled_ratio\": %.6f, \"timers_fired\": %" PRIu64
        ", \"conserved\": %s},\n",
        churn.conns, churn.schedules, churn.cancels, churn.cpu_ns,
        churn.ns_per_op(), churn.ops_per_sec(), churn.allocs_per_op(),
        churn.cancelled_ratio(), churn.total_fired,
        churn.conserved ? "true" : "false");
    auto write_rearm = [&](const char* key, const RearmResult& r,
                           const char* trailer) {
      std::fprintf(
          f,
          "  \"%s\": {\"conns\": %zu, \"queue\": \"%s\", "
          "\"reschedules_per_round\": %" PRIu64 ", \"cpu_ns\": %" PRIu64
          ", \"ns_per_reschedule\": %.2f, \"allocs_per_op\": %.6f, "
          "\"timers_rescheduled\": %" PRIu64 ", \"timers_fired\": %" PRIu64
          ", \"conserved\": %s}%s\n",
          key, r.conns, r.queue, r.reschedules, r.cpu_ns,
          r.ns_per_reschedule(), r.allocs_per_op(), r.total_rescheduled,
          r.total_fired, r.conserved ? "true" : "false", trailer);
    };
    write_rearm("rearm_native", rearm_native, ",");
    write_rearm("rearm_emulated", rearm_emulated, ",");
    std::fprintf(f, "  \"rearm_native_speedup\": %.3f,\n", rearm_speedup);
    std::fprintf(
        f,
        "  \"loss\": {\"conns\": %zu, \"completed\": %s, \"fires\": %" PRIu64
        ", \"retransmits\": %" PRIu64 ", \"give_ups\": %" PRIu64
        ", \"backoff_capped\": %" PRIu64 ", \"karn_suppressed\": %" PRIu64
        ", \"data_dropped\": %" PRIu64 ", \"acks_dropped\": %" PRIu64
        ", \"burst_dropped\": %" PRIu64 ", \"lateness_samples\": %" PRIu64
        ", \"lateness_p50_ticks\": %" PRIu64 ", \"lateness_p99_ticks\": %" PRIu64
        ", \"lateness_max_ticks\": %" PRIu64 ", \"early_fires\": %" PRIu64
        ", \"conserved\": %s},\n",
        loss.conns, loss.completed ? "true" : "false", loss.fires,
        loss.retransmits, loss.give_ups, loss.backoff_capped,
        loss.karn_suppressed, loss.data_dropped, loss.acks_dropped,
        loss.burst_dropped, loss.samples, loss.lateness_p50, loss.lateness_p99,
        loss.lateness_max, loss.early_fires, loss.conserved ? "true" : "false");
    std::fprintf(
        f,
        "  \"wheel_backoff\": {\"flows\": %zu, \"emits\": %" PRIu64
        ", \"gap_violations\": %" PRIu64 ", \"horizon_clamps\": %" PRIu64
        ", \"overflow_parks\": %" PRIu64 ", \"overflow_cascades\": %" PRIu64
        ", \"overflow_reparks\": %" PRIu64 "},\n",
        wheel.flows, wheel.emits, wheel.gap_violations, wheel.horizon_clamps,
        wheel.overflow_parks, wheel.overflow_cascades, wheel.overflow_reparks);
    std::fprintf(
        f,
        "  \"slowstart\": {\"conns\": %zu, \"segments_per_transfer\": 8, "
        "\"self_clocked_rounds\": %d, \"self_clocked_completion_ticks\": "
        "%" PRIu64 ", \"rate_based_rounds\": %d, "
        "\"rate_based_completion_ticks\": %" PRIu64
        ", \"speedup\": %.3f, \"self_clocked_ns_per_op\": %.2f, "
        "\"rate_based_ns_per_op\": %.2f}\n",
        conns, self_clocked.rounds, self_clocked.completion_ticks,
        rate_based.rounds, rate_based.completion_ticks, speedup,
        self_clocked.ns_per_op(), rate_based.ns_per_op());
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  // Acceptance gates (see ISSUE/EXPERIMENTS): fail loudly so the smoke CI
  // entry catches regressions instead of committing a rotten artifact.
  int rc = 0;
  if (churn.cancelled_ratio() < 0.95) {
    std::fprintf(stderr, "FAIL: churn cancelled ratio %.4f < 0.95\n",
                 churn.cancelled_ratio());
    rc = 1;
  }
  if (churn.allocs_per_op() > 1e-6) {
    std::fprintf(stderr, "FAIL: churn allocs/op %.6f != 0\n",
                 churn.allocs_per_op());
    rc = 1;
  }
  if (churn.total_fired != 0) {
    std::fprintf(stderr, "FAIL: churn fired %" PRIu64 " timers (no loss!)\n",
                 churn.total_fired);
    rc = 1;
  }
  if (!churn.conserved) {
    std::fprintf(stderr, "FAIL: churn timer accounting not conserved\n");
    rc = 1;
  }
  for (const RearmResult* r : {&rearm_native, &rearm_emulated}) {
    // warmup + measured rounds, 3 survivors restarted per connection each.
    uint64_t expected =
        static_cast<uint64_t>(1 + r->measured_rounds) * r->reschedules;
    if (r->total_rescheduled != expected) {
      std::fprintf(stderr,
                   "FAIL: rearm (%s) restarted %" PRIu64 " timers, want %" PRIu64
                   "\n",
                   r->queue, r->total_rescheduled, expected);
      rc = 1;
    }
    if (r->allocs_per_op() > 1e-6) {
      std::fprintf(stderr, "FAIL: rearm (%s) allocs/op %.6f != 0\n", r->queue,
                   r->allocs_per_op());
      rc = 1;
    }
    if (r->total_fired != 0) {
      std::fprintf(stderr,
                   "FAIL: rearm (%s) fired %" PRIu64 " timers (restarts "
                   "should always win)\n",
                   r->queue, r->total_fired);
      rc = 1;
    }
    if (!r->conserved) {
      std::fprintf(stderr, "FAIL: rearm (%s) timer accounting not conserved\n",
                   r->queue);
      rc = 1;
    }
  }
  if (!loss.completed) {
    std::fprintf(stderr, "FAIL: loss phase did not drain every connection\n");
    rc = 1;
  }
  if (loss.fires == 0 || loss.retransmits == 0) {
    std::fprintf(stderr, "FAIL: loss phase fired no RTOs (chaos inert)\n");
    rc = 1;
  }
  if (loss.early_fires != 0) {
    std::fprintf(stderr, "FAIL: %" PRIu64 " RTO timers fired early\n",
                 loss.early_fires);
    rc = 1;
  }
  if (!loss.conserved) {
    std::fprintf(stderr, "FAIL: loss timer accounting not conserved\n");
    rc = 1;
  }
  if (wheel.horizon_clamps != 0) {
    std::fprintf(stderr, "FAIL: wheel clamped %" PRIu64 " deadlines\n",
                 wheel.horizon_clamps);
    rc = 1;
  }
  if (wheel.overflow_parks == 0 || wheel.overflow_cascades == 0) {
    std::fprintf(stderr, "FAIL: backoff never reached the overflow ring\n");
    rc = 1;
  }
  if (wheel.gap_violations != 0) {
    std::fprintf(stderr, "FAIL: %" PRIu64 " paced emits arrived early\n",
                 wheel.gap_violations);
    rc = 1;
  }
  if (speedup < 1.2 || !self_clocked.clean || !rate_based.clean) {
    std::fprintf(stderr,
                 "FAIL: slow-start avoidance speedup %.2f < 1.2 or unclean\n",
                 speedup);
    rc = 1;
  }
  return rc;
}

}  // namespace
}  // namespace softtimer

int main(int argc, char** argv) {
  std::string json_path;
  bool smoke = false;
  size_t conns = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--conns=", 8) == 0) {
      conns = static_cast<size_t>(std::strtoull(argv[i] + 8, nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  return softtimer::Run(json_path, smoke, conns);
}
