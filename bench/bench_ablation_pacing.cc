// Ablation: adaptive pacing (Section 4.1) vs the fixed-interval strawman.
//
// The paper argues: "Scheduling a series of transmission events at fixed
// intervals results in the correct average transmission rate. However, this
// approach can lead to occasional bursty transmissions when several
// transmission events are all due at the end of a long interval during which
// the system did not enter a trigger state. A better approach is to schedule
// only one transmission event at a time [adaptively]."
//
// Both schemes run against the same ST-Apache trigger process at a 40 us
// target. The fixed scheme pre-schedules every event at k * 40 us; the
// adaptive scheme schedules one at a time with a 12 us minimum burst
// interval. Reported: achieved average, standard deviation, the largest
// burst dispatched in a single trigger state, and the fraction of
// back-to-back (same-instant) transmissions.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/adaptive_pacer.h"
#include "src/stats/summary_stats.h"
#include "src/workload/trigger_workload.h"

namespace softtimer {
namespace {

struct Result {
  SummaryStats intervals;
  uint64_t max_burst = 0;
  uint64_t same_instant = 0;
  uint64_t packets = 0;
};

Result RunFixed(uint64_t target_us, SimDuration run) {
  auto wl = MakeTriggerWorkload(WorkloadKind::kApache, MachineProfile::PentiumII300(), 42);
  wl->Start();
  wl->sim().RunFor(SimDuration::Millis(300));

  SoftTimerFacility& st = wl->kernel().soft_timers();
  Result r;
  SimTime last_send;
  bool have_last = false;
  SimTime last_instant;
  uint64_t burst = 0;

  // Pre-schedule the whole train at fixed intervals.
  uint64_t n_events = static_cast<uint64_t>(run.ToMicros() / static_cast<double>(target_us));
  for (uint64_t k = 0; k < n_events; ++k) {
    st.ScheduleSoftEvent(target_us * (k + 1), [&](const SoftTimerFacility::FireInfo&) {
      SimTime now = wl->kernel().sim()->now();
      ++r.packets;
      if (have_last) {
        r.intervals.Add((now - last_send).ToMicros());
        if (now == last_instant) {
          ++burst;
          ++r.same_instant;
          if (burst + 1 > r.max_burst) {
            r.max_burst = burst + 1;
          }
        } else {
          burst = 0;
        }
      } else {
        r.max_burst = 1;
      }
      last_send = now;
      last_instant = now;
      have_last = true;
    });
  }
  wl->sim().RunFor(run + SimDuration::Millis(5));
  return r;
}

Result RunAdaptive(uint64_t target_us, uint64_t min_burst_us, SimDuration run) {
  auto wl = MakeTriggerWorkload(WorkloadKind::kApache, MachineProfile::PentiumII300(), 42);
  wl->Start();
  wl->sim().RunFor(SimDuration::Millis(300));

  SoftTimerFacility& st = wl->kernel().soft_timers();
  AdaptivePacer pacer({target_us, min_burst_us});
  Result r;
  SimTime last_send;
  bool have_last = false;

  std::function<void()> send = [&] {
    SimTime now = wl->kernel().sim()->now();
    ++r.packets;
    if (have_last) {
      SimDuration gap = now - last_send;
      r.intervals.Add(gap.ToMicros());
      if (gap == SimDuration::Zero()) {
        ++r.same_instant;
      }
    }
    r.max_burst = 1;  // one transmission per event, by construction
    last_send = now;
    have_last = true;
    uint64_t delta = pacer.OnPacketSent(st.MeasureTime());
    st.ScheduleSoftEvent(delta, [&](const SoftTimerFacility::FireInfo&) { send(); });
  };
  pacer.StartTrain(st.MeasureTime());
  send();
  wl->sim().RunFor(run);
  return r;
}

int Main(int argc, char** argv) {
  BenchOptions opt = ParseBenchOptions(argc, argv);
  SimDuration run = SimDuration::Seconds(1.0 * opt.scale);

  PrintBanner("Ablation: adaptive vs fixed-interval transmission scheduling",
              "Section 4.1 design argument");

  Result fixed = RunFixed(40, run);
  Result adaptive = RunAdaptive(40, 12, run);

  TextTable t({"Scheme", "avg intvl (us)", "stddev", "max burst (pkts)",
               "same-instant sends (%)"});
  auto row = [&](const char* name, const Result& r) {
    t.AddRow({name, Fmt("%.1f", r.intervals.mean()), Fmt("%.1f", r.intervals.stddev()),
              Fmt("%llu", static_cast<unsigned long long>(r.max_burst)),
              Fmt("%.2f", 100.0 * static_cast<double>(r.same_instant) /
                              static_cast<double>(r.packets))});
  };
  row("fixed pre-scheduled", fixed);
  row("adaptive (paper)", adaptive);
  t.Print();
  std::printf(
      "\nThe fixed scheme fires whole backlogs in one trigger state after a long\n"
      "gap (bursts), defeating the purpose of pacing; the adaptive scheme never\n"
      "dispatches more than one packet per event and catches up smoothly.\n");
  return 0;
}

}  // namespace
}  // namespace softtimer

int main(int argc, char** argv) { return softtimer::Main(argc, argv); }
