// Microbenchmarks of the timer-queue data structures (google-benchmark).
//
// The paper keeps soft-timer events in "a modified form of timing wheels";
// these benchmarks compare the hashed wheel, the hierarchical wheel, the
// callout list, the grouped sorting queue, and the binary-heap baseline on
// the operations the facility performs: schedule, cancel, the
// per-trigger-state check (EarliestDeadline + no-op expire), steady
// fire/reschedule churn, and deadline-update churn at various pending-set
// sizes.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/timer/timer_queue.h"

namespace softtimer {
namespace {

TimerQueueKind KindFromArg(int64_t a) {
  switch (a) {
    case 0:
      return TimerQueueKind::kHeap;
    case 1:
      return TimerQueueKind::kHashedWheel;
    case 2:
      return TimerQueueKind::kHierarchicalWheel;
    case 3:
      return TimerQueueKind::kCalloutList;
    default:
      return TimerQueueKind::kGroupedSorting;
  }
}

void BM_Schedule(benchmark::State& state) {
  auto q = MakeTimerQueue(KindFromArg(state.range(0)));
  uint64_t deadline = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q->Schedule(deadline, [] {}));
    deadline += 7;
    if (q->size() > 100'000) {
      state.PauseTiming();
      q->ExpireUpTo(deadline);
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_Schedule)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_ScheduleCancel(benchmark::State& state) {
  auto q = MakeTimerQueue(KindFromArg(state.range(0)));
  for (auto _ : state) {
    TimerId id = q->Schedule(1'000'000, [] {});
    benchmark::DoNotOptimize(q->Cancel(id));
  }
}
BENCHMARK(BM_ScheduleCancel)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

// The facility's hot path: nothing due, check and move on.
void BM_TriggerCheckNothingDue(benchmark::State& state) {
  auto q = MakeTimerQueue(KindFromArg(state.range(0)));
  size_t pending = static_cast<size_t>(state.range(1));
  for (size_t i = 0; i < pending; ++i) {
    q->Schedule(1'000'000'000 + i, [] {});
  }
  uint64_t now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q->EarliestDeadline());
    benchmark::DoNotOptimize(q->ExpireUpTo(now));
    ++now;
  }
}
BENCHMARK(BM_TriggerCheckNothingDue)
    ->Args({0, 4})
    ->Args({1, 4})
    ->Args({2, 4})
    ->Args({3, 4})
    ->Args({4, 4})
    ->Args({0, 1024})
    ->Args({1, 1024})
    ->Args({2, 1024})
    ->Args({3, 1024})
    ->Args({4, 1024});

// Steady-state churn: one event fires and is rescheduled per step, with a
// standing population of `range(1)` pending timers.
void BM_FireRescheduleChurn(benchmark::State& state) {
  auto q = MakeTimerQueue(KindFromArg(state.range(0)));
  size_t population = static_cast<size_t>(state.range(1));
  uint64_t now = 0;
  for (size_t i = 0; i < population; ++i) {
    q->Schedule(now + 10 + i * 13 % 1000, [] {});
  }
  uint64_t next = now + 5;
  for (auto _ : state) {
    q->Schedule(next, [] {});
    now = next;
    benchmark::DoNotOptimize(q->ExpireUpTo(now));
    next = now + 5;
    // Refill what fired from the standing population.
    while (q->size() < population) {
      q->Schedule(now + 10 + (now * 13) % 1000, [] {});
    }
  }
}
BENCHMARK(BM_FireRescheduleChurn)
    ->Args({0, 16})->Args({1, 16})->Args({2, 16})->Args({3, 16})->Args({4, 16})
    ->Args({0, 4096})->Args({1, 4096})->Args({2, 4096})->Args({3, 4096})
    ->Args({4, 4096});

// Deadline update churn: every step moves one live timer of a standing
// population to a new deadline. Arg 0 selects the backend; native O(1)
// Update (grouped sorting queue) against the emulated cancel+reschedule the
// other backends inherit.
void BM_UpdateChurn(benchmark::State& state) {
  auto q = MakeTimerQueue(KindFromArg(state.range(0)));
  size_t population = static_cast<size_t>(state.range(1));
  std::vector<TimerId> ids(population);
  for (size_t i = 0; i < population; ++i) {
    ids[i] = q->Schedule(1'000'000 + i * 13 % 100'000, [] {});
  }
  uint64_t step = 0;
  for (auto _ : state) {
    size_t slot = step % population;
    ids[slot] = q->Update(ids[slot], 1'000'000 + (step * 7) % 100'000);
    benchmark::DoNotOptimize(ids[slot]);
    ++step;
  }
}
BENCHMARK(BM_UpdateChurn)
    ->Args({0, 4096})->Args({1, 4096})->Args({2, 4096})->Args({3, 4096})
    ->Args({4, 4096});

}  // namespace
}  // namespace softtimer

BENCHMARK_MAIN();
