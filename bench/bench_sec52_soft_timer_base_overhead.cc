// Section 5.2: base overhead of soft timers.
//
// A null-handler soft event is scheduled at the maximal possible frequency
// (T = 0, rescheduled from its own handler, so it fires at every trigger
// state) on the saturated Apache testbed. The paper: "The soft timer handler
// invocations caused no observable difference in the Web server's
// throughput", with the handler called every 31.5 us on average - while a
// hardware timer at that rate (~33.3 kHz) would cost ~15%.

#include <cstdio>
#include <functional>

#include "bench/bench_util.h"
#include "src/httpsim/http_testbed.h"

namespace softtimer {
namespace {

int Main(int argc, char** argv) {
  BenchOptions opt = ParseBenchOptions(argc, argv);
  SimDuration warmup = SimDuration::Millis(300);
  SimDuration window = SimDuration::Seconds(2.0 * opt.scale);

  PrintBanner("Base overhead of soft timers (null handler at max frequency)",
              "Section 5.2");

  // Baseline.
  HttpTestbed::Config cfg;
  cfg.profile = MachineProfile::PentiumII300();
  HttpTestbed base(cfg);
  double base_xput = base.Measure(warmup, window).conn_per_sec;

  // Soft timer fired at every trigger state.
  HttpTestbed soft(cfg);
  uint64_t fires = 0;
  SoftTimerFacility& st = soft.kernel().soft_timers();
  std::function<void(const SoftTimerFacility::FireInfo&)> null_handler =
      [&](const SoftTimerFacility::FireInfo&) {
        ++fires;
        st.ScheduleSoftEvent(0, null_handler);
      };
  st.ScheduleSoftEvent(0, null_handler);
  HttpTestbed::RunResult rs = soft.Measure(warmup, window);
  // Fires accumulate over warmup + window.
  double fire_interval_us = (warmup + window).ToMicros() / static_cast<double>(fires);

  // Hardware timer at roughly the same rate, for contrast.
  HttpTestbed hw(cfg);
  hw.kernel().AddPeriodicHardwareTimer(33'333, SimDuration::Zero());
  double hw_xput = hw.Measure(warmup, window).conn_per_sec;

  TextTable t({"Configuration", "Xput (conn/s)", "Overhead (%)"});
  t.AddRow({"baseline", Fmt("%.0f", base_xput), "0.0"});
  t.AddRow({"soft timer, every trigger state", Fmt("%.0f", rs.conn_per_sec),
            Fmt("%.1f  (paper: ~0)", 100.0 * (1.0 - rs.conn_per_sec / base_xput))});
  t.AddRow({"hardware timer @ 33.3 kHz", Fmt("%.0f", hw_xput),
            Fmt("%.1f  (paper: ~15)", 100.0 * (1.0 - hw_xput / base_xput))});
  t.Print();
  std::printf("\nsoft handler fired every %.1f us on average (paper: 31.5 us)\n",
              fire_interval_us);
  return 0;
}

}  // namespace
}  // namespace softtimer

int main(int argc, char** argv) { return softtimer::Main(argc, argv); }
