// Figure 5: trigger-interval medians over 1 ms and 10 ms windows.
//
// The ST-Apache-compute workload runs for 10 seconds; the median trigger
// interval is computed per 1 ms and per 10 ms window. The paper's findings:
// with 1 ms windows, the bulk of medians sit in 14-26 us and fewer than
// 1.13% exceed 40 us; with 10 ms windows (one FreeBSD timeslice) almost all
// fall in a narrow 17-19 us band.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/stats/csv_writer.h"
#include "src/stats/sample_set.h"
#include "src/stats/windowed_median.h"
#include "src/workload/trigger_workload.h"

namespace softtimer {
namespace {

void Summarize(const char* label, const std::vector<WindowedMedian::WindowStat>& windows,
               double band_lo, double band_hi, double paper_band_pct, double outlier,
               double paper_outlier_pct) {
  SampleSet medians;
  for (const auto& w : windows) {
    medians.Add(w.median);
  }
  double in_band = 0;
  double above = 0;
  for (const auto& w : windows) {
    if (w.median >= band_lo && w.median <= band_hi) {
      ++in_band;
    }
    if (w.median > outlier) {
      ++above;
    }
  }
  double n = static_cast<double>(windows.size());
  std::printf("\n%s: %zu windows\n", label, windows.size());
  TextTable t({"", "measured", "paper"});
  t.AddRow({Fmt("median of window-medians (us)"), Fmt("%.1f", medians.Median()), "17-19"});
  t.AddRow({Fmt("windows in [%g, %g] us (%%)", band_lo, band_hi), Fmt("%.1f", 100 * in_band / n),
            Fmt("%.1f", paper_band_pct)});
  t.AddRow({Fmt("windows above %g us (%%)", outlier), Fmt("%.2f", 100 * above / n),
            Fmt("%.2f", paper_outlier_pct)});
  t.AddRow({"min / max window median (us)",
            Fmt("%.0f / %.0f", medians.min(), medians.max()), "-"});
  t.Print();
}

int Main(int argc, char** argv) {
  BenchOptions opt = ParseBenchOptions(argc, argv);
  SimDuration run = SimDuration::Seconds(std::max(1.0, 10.0 * opt.scale));

  PrintBanner("Trigger-interval medians over time (ST-Apache-compute)", "Figure 5, Section 5.4");
  std::printf("run length: %.1f s (paper: 10 s)\n", run.ToSeconds());

  auto wl = MakeTriggerWorkload(WorkloadKind::kApacheCompute,
                                MachineProfile::PentiumII300(), /*seed=*/42);
  // Warm the testbed before sampling.
  wl->Start();
  wl->sim().RunFor(SimDuration::Millis(300));

  WindowedMedian w1(wl->sim().now(), SimDuration::Millis(1));
  WindowedMedian w10(wl->sim().now(), SimDuration::Millis(10));
  wl->kernel().set_trigger_observer(
      [&](TriggerSource, SimTime now, SimDuration interval) {
        w1.Add(now, interval.ToMicros());
        w10.Add(now, interval.ToMicros());
      });
  wl->sim().RunFor(run);

  auto w1_stats = w1.Finish();
  auto w10_stats = w10.Finish();
  Summarize("1 ms windows", w1_stats, 14, 26, 80, 40, 1.13);
  Summarize("10 ms windows", w10_stats, 14, 26, 98, 40, 0.0);
  if (!opt.dump_dir.empty()) {
    WriteWindowedMediansCsv(opt.dump_dir + "/fig5_1ms.csv", w1_stats);
    WriteWindowedMediansCsv(opt.dump_dir + "/fig5_10ms.csv", w10_stats);
    std::printf("\nwrote %s/fig5_{1ms,10ms}.csv\n", opt.dump_dir.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace softtimer

int main(int argc, char** argv) { return softtimer::Main(argc, argv); }
