// Section 6 comparison: three network-processing designs.
//
//   "Traw and Smith use periodic hardware timer interrupts to initiate
//    polling... This approach involves a tradeoff between interrupt overhead
//    and communication delay. With soft timer based network polling, on the
//    other hand, one can obtain both low delay and low overhead."
//
// The Flash testbed runs under (a) per-packet interrupts, (b) hardware-
// timer-initiated polling at 1/2/10 kHz (the Traw & Smith design: pay
// interrupt overhead at the poll rate, pay delay at its inverse), and
// (c) soft-timer polling with an aggregation quota. Reported: throughput and
// mean response time - design (b) can optimize one or the other; (c) gets
// both.

#include <cstdio>
#include <optional>

#include "bench/bench_util.h"
#include "src/httpsim/http_testbed.h"

namespace softtimer {
namespace {

struct Out {
  double req_per_sec;
  double resp_us;
};

HttpTestbed::Config BaseCfg() {
  HttpTestbed::Config cfg;
  cfg.profile = MachineProfile::PentiumII333();
  cfg.num_links = 4;
  cfg.server.kind = HttpServerModel::ServerKind::kFlash;
  return cfg;
}

Out RunInterrupts(SimDuration warmup, SimDuration window) {
  HttpTestbed bed(BaseCfg());
  auto r = bed.Measure(warmup, window);
  return {r.req_per_sec, r.mean_response_us};
}

Out RunTrawSmith(uint64_t poll_hz, SimDuration warmup, SimDuration window) {
  HttpTestbed bed(BaseCfg());
  // NICs never interrupt; a periodic hardware timer initiates the poll.
  for (int i = 0; i < bed.num_links(); ++i) {
    bed.nic(i).SetMode(Nic::Mode::kPolled);
  }
  bed.kernel().AddPeriodicHardwareTimer(poll_hz, SimDuration::Zero(), [&bed] {
    for (int i = 0; i < bed.num_links(); ++i) {
      bed.nic(i).Poll(64);
    }
  });
  auto r = bed.Measure(warmup, window);
  return {r.req_per_sec, r.mean_response_us};
}

Out RunSoftPolling(SimDuration warmup, SimDuration window) {
  HttpTestbed::Config cfg = BaseCfg();
  SoftTimerNetPoller::Config pc;
  pc.governor.aggregation_quota = 2;
  pc.governor.min_interval_ticks = 10;
  pc.governor.max_interval_ticks = 4000;
  pc.governor.initial_interval_ticks = 50;
  cfg.polling = pc;
  HttpTestbed bed(cfg);
  auto r = bed.Measure(warmup, window);
  return {r.req_per_sec, r.mean_response_us};
}

int Main(int argc, char** argv) {
  BenchOptions opt = ParseBenchOptions(argc, argv);
  SimDuration warmup = SimDuration::Millis(300);
  SimDuration window = SimDuration::Seconds(2.0 * opt.scale);

  PrintBanner("Polling designs: interrupts vs HW-timer polling vs soft timers",
              "Section 6 (Traw & Smith comparison)");

  TextTable t({"Design", "req/s", "mean resp (us)"});
  Out intr = RunInterrupts(warmup, window);
  t.AddRow({"per-packet interrupts", Fmt("%.0f", intr.req_per_sec), Fmt("%.0f", intr.resp_us)});
  for (uint64_t hz : {1'000ULL, 2'000ULL, 10'000ULL}) {
    Out o = RunTrawSmith(hz, warmup, window);
    t.AddRow({Fmt("HW-timer polling @ %llu kHz", (unsigned long long)(hz / 1000)),
              Fmt("%.0f", o.req_per_sec), Fmt("%.0f", o.resp_us)});
  }
  Out soft = RunSoftPolling(warmup, window);
  t.AddRow({"soft-timer polling (quota 2)", Fmt("%.0f", soft.req_per_sec),
            Fmt("%.0f", soft.resp_us)});
  t.Print();
  std::printf(
      "\nHW-timer polling trades the two metrics against each other through its\n"
      "rate: slow polls hurt delay, fast polls hurt throughput (interrupt\n"
      "overhead returns). Soft-timer polling matches the best of both columns\n"
      "at once - the Section 6 claim.\n");
  return 0;
}

}  // namespace
}  // namespace softtimer

int main(int argc, char** argv) { return softtimer::Main(argc, argv); }
