// Figure 4 + Table 1: trigger-state interval distribution across workloads.
//
// For each workload, runs the simulated machine until a target number of
// interval samples has been collected and reports max / mean / median /
// stddev / %>100us / %>150us next to the paper's measured values, plus a CDF
// (Figure 4) printed as fraction-below at a fixed grid of interval values.
// The final row repeats ST-Apache on the 500 MHz Pentium III Xeon profile
// (Table 1's last row).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/stats/csv_writer.h"
#include "src/stats/sample_set.h"
#include "src/workload/trigger_workload.h"

namespace softtimer {
namespace {

struct PaperRow {
  double max_us, mean_us, median_us, stddev_us, over100_pct, over150_pct;
};

struct Case {
  WorkloadKind kind;
  MachineProfile profile;
  const char* label;
  PaperRow paper;
};

struct MeasuredRow {
  std::string label;
  SampleSet samples{2'200'000};
};

void RunCase(const Case& c, uint64_t target_samples, SampleSet* out,
             std::vector<double>* cdf_grid_out, const std::vector<double>& grid) {
  auto wl = MakeTriggerWorkload(c.kind, c.profile, /*seed=*/42);
  wl->kernel().set_trigger_observer(
      [out](TriggerSource, SimTime, SimDuration interval) {
        out->Add(interval.ToMicros());
      });
  wl->Start();
  // Run in 100 ms slices until enough samples arrived (cap at 300 s sim).
  SimTime cap = SimTime::Zero() + SimDuration::Seconds(300);
  while (out->count() < target_samples && wl->sim().now() < cap) {
    wl->sim().RunFor(SimDuration::Millis(100));
  }
  *cdf_grid_out = out->CdfAt(grid);
}

int Main(int argc, char** argv) {
  BenchOptions opt = ParseBenchOptions(argc, argv);
  // The paper takes 2M samples per workload; the default here is smaller to
  // keep the sweep quick (use --full for 2M).
  uint64_t target = static_cast<uint64_t>(500'000 * opt.scale);
  if (opt.full) {
    target = 2'000'000;
  }

  PrintBanner("Trigger-state interval distributions", "Figure 4 and Table 1");
  std::printf("samples per workload: %llu (paper: 2,000,000)\n",
              static_cast<unsigned long long>(target));

  MachineProfile pii300 = MachineProfile::PentiumII300();
  MachineProfile xeon = MachineProfile::PentiumIII500Xeon();

  const std::vector<Case> cases = {
      {WorkloadKind::kApache, pii300, "ST-Apache", {476, 31.52, 18, 32, 5.3, 0.39}},
      {WorkloadKind::kApacheCompute, pii300, "ST-Apache-compute", {585, 31.59, 18, 32.1, 5.3, 0.43}},
      {WorkloadKind::kFlash, pii300, "ST-Flash", {1000, 22.53, 17, 20.8, 1.09, 0.013}},
      {WorkloadKind::kRealAudio, pii300, "ST-real-audio", {1000, 8.47, 6, 13.2, 0.025, 0.013}},
      {WorkloadKind::kNfs, pii300, "ST-nfs", {910, 2.13, 2, 3.3, 0.021, 0.011}},
      {WorkloadKind::kKernelBuild, pii300, "ST-kernel-build", {1000, 5.63, 2, 47.9, 0.038, 0.033}},
      {WorkloadKind::kApache, xeon, "ST-Apache (Xeon)", {1000, 19.41, 11, 23, 0.44, 0.13}},
  };

  const std::vector<double> grid = {5, 10, 20, 30, 50, 75, 100, 150};

  TextTable table({"Workload", "Max(us)", "Mean(us)", "Median(us)", "StdDev(us)",
                   ">100us(%)", ">150us(%)"});
  std::vector<std::pair<std::string, std::vector<double>>> cdfs;

  for (const auto& c : cases) {
    SampleSet samples(2'200'000);
    std::vector<double> cdf;
    RunCase(c, target, &samples, &cdf, grid);
    cdfs.emplace_back(c.label, cdf);
    if (!opt.dump_dir.empty()) {
      std::string path = opt.dump_dir + "/fig4_" + c.label + ".csv";
      if (WriteCdfCsv(path, samples)) {
        std::printf("wrote %s\n", path.c_str());
      }
    }
    table.AddRow({c.label,
                  Fmt("%.0f (paper %.0f)", samples.max(), c.paper.max_us),
                  Fmt("%.2f (paper %.2f)", samples.mean(), c.paper.mean_us),
                  Fmt("%.0f (paper %.0f)", samples.Median(), c.paper.median_us),
                  Fmt("%.1f (paper %.1f)", samples.stddev(), c.paper.stddev_us),
                  Fmt("%.3f (paper %.3f)", samples.FractionAbove(100) * 100, c.paper.over100_pct),
                  Fmt("%.3f (paper %.3f)", samples.FractionAbove(150) * 100, c.paper.over150_pct)});
  }

  std::printf("\nTable 1: trigger-state interval distribution (measured vs paper)\n");
  table.Print();

  std::printf("\nFigure 4: cumulative fraction of samples at interval <= x\n");
  TextTable cdft([&] {
    std::vector<std::string> h{"Workload"};
    for (double g : grid) {
      h.push_back(Fmt("<=%gus", g));
    }
    return h;
  }());
  for (const auto& [label, cdf] : cdfs) {
    std::vector<std::string> row{label};
    for (double v : cdf) {
      row.push_back(Fmt("%.1f%%", v * 100));
    }
    cdft.AddRow(row);
  }
  cdft.Print();
  return 0;
}

}  // namespace
}  // namespace softtimer

int main(int argc, char** argv) { return softtimer::Main(argc, argv); }
