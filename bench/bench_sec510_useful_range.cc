// Section 5.10: the "useful range" of soft timers widens as CPUs get faster.
//
//   "the useful range of soft timer event granularities appears to widen as
//    CPUs get faster. Our measurements on two generations of Pentium CPUs
//    indicate that the soft timer event granularity increases approximately
//    linearly with CPU speed, but that the interrupt overhead (which limits
//    hardware timer granularity) is almost constant."
//
// Sweeps hypothetical machines at 1x..4x the PII-300's speed, keeping the
// paper's (speed-independent) interrupt overhead, and reports both ends of
// the range: the achievable soft-timer granularity (mean ST-Apache trigger
// interval) and the hardware-timer granularity that costs 10% of the CPU.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/stats/summary_stats.h"
#include "src/workload/trigger_workload.h"

namespace softtimer {
namespace {

int Main(int argc, char** argv) {
  BenchOptions opt = ParseBenchOptions(argc, argv);
  SimDuration run = SimDuration::Seconds(1.0 * opt.scale);

  PrintBanner("The useful range of soft timers vs CPU speed", "Section 5.10");

  TextTable t({"CPU speed", "soft granularity (us)", "HW granularity @10% ovhd (us)",
               "useful range ratio"});
  for (double speed : {1.0, 1.5, 2.0, 3.0, 4.0}) {
    MachineProfile prof = MachineProfile::PentiumII300();
    prof.relative_speed = speed;
    prof.name = Fmt("PII-300 x%.1f", speed);
    // Section 5.1: interrupt overhead does not scale with CPU speed.
    prof.hard_interrupt_overhead = SimDuration::Micros(4.45);

    auto wl = MakeTriggerWorkload(WorkloadKind::kApache, prof, /*seed=*/42);
    SummaryStats intervals;
    wl->kernel().set_trigger_observer(
        [&](TriggerSource, SimTime, SimDuration d) { intervals.Add(d.ToMicros()); });
    wl->Start();
    wl->sim().RunFor(run);

    double soft_gran_us = intervals.mean();
    // A hardware timer at frequency f costs f * 4.45 us/s; 10% of the CPU
    // allows f = 0.10 / 4.45e-6 Hz -> one interrupt per 44.5 us, regardless
    // of CPU speed.
    double hw_gran_us = prof.hard_interrupt_overhead.ToMicros() / 0.10;
    t.AddRow({Fmt("x%.1f", speed), Fmt("%.1f", soft_gran_us), Fmt("%.1f", hw_gran_us),
              Fmt("%.1f", hw_gran_us / soft_gran_us)});
  }
  t.Print();
  std::printf(
      "\nThe soft granularity tracks CPU speed (trigger states come faster) while\n"
      "the hardware bound stays fixed: the range where only soft timers work\n"
      "grows with every CPU generation - the paper's closing argument.\n");
  return 0;
}

}  // namespace
}  // namespace softtimer

int main(int argc, char** argv) { return softtimer::Main(argc, argv); }
