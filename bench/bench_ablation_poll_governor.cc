// Ablation: adaptive poll-interval governor vs static poll intervals.
//
// Section 4.2's governor "dynamically chooses [the interval] so as to
// attempt to find a certain number of packets per poll". A static interval
// must be hand-tuned per load level: too short wastes CPU on empty polls,
// too long batches more than intended and adds delay. The adaptive governor
// tracks the quota across load levels without retuning. The Flash testbed
// runs at two load levels (2 and 8 clients per link); for each polling
// configuration we report throughput, achieved packets-per-poll, and mean
// response time.

#include <cstdio>
#include <optional>

#include "bench/bench_util.h"
#include "src/httpsim/http_testbed.h"

namespace softtimer {
namespace {

struct Out {
  double req_per_sec;
  double found_per_poll;
  double resp_us;
};

Out Run(int clients, std::optional<double> quota, std::optional<uint64_t> static_interval,
        SimDuration warmup, SimDuration window) {
  HttpTestbed::Config cfg;
  cfg.profile = MachineProfile::PentiumII333();
  cfg.num_links = 4;
  cfg.clients_per_link = clients;
  cfg.server.kind = HttpServerModel::ServerKind::kFlash;
  SoftTimerNetPoller::Config pc;
  pc.governor.min_interval_ticks = 10;
  pc.governor.max_interval_ticks = 4000;
  pc.governor.initial_interval_ticks = 50;
  if (quota) {
    pc.governor.aggregation_quota = *quota;
  } else {
    // Static interval: pin min == max == initial.
    pc.governor.aggregation_quota = 1;  // irrelevant
    pc.governor.min_interval_ticks = *static_interval;
    pc.governor.max_interval_ticks = *static_interval;
    pc.governor.initial_interval_ticks = *static_interval;
  }
  cfg.polling = pc;
  HttpTestbed bed(cfg);
  auto r = bed.Measure(warmup, window);
  Out out;
  out.req_per_sec = r.req_per_sec;
  const auto& ps = bed.poller()->stats();
  out.found_per_poll =
      ps.polls ? static_cast<double>(ps.packets) / static_cast<double>(ps.polls) : 0;
  out.resp_us = r.mean_response_us;
  return out;
}

int Main(int argc, char** argv) {
  BenchOptions opt = ParseBenchOptions(argc, argv);
  SimDuration warmup = SimDuration::Millis(300);
  SimDuration window = SimDuration::Seconds(2.0 * opt.scale);

  PrintBanner("Ablation: adaptive poll governor vs static poll intervals",
              "Section 4.2 design argument");

  TextTable t({"Config", "load", "req/s", "pkts/poll", "mean resp (us)"});
  struct Case {
    const char* name;
    std::optional<double> quota;
    std::optional<uint64_t> stat;
  };
  const Case cases[] = {
      {"adaptive, quota 5", 5.0, std::nullopt},
      {"static 50 us", std::nullopt, 50},
      {"static 500 us", std::nullopt, 500},
      {"static 2000 us", std::nullopt, 2000},
  };
  for (const Case& c : cases) {
    for (int clients : {2, 8}) {
      Out o = Run(clients, c.quota, c.stat, warmup, window);
      t.AddRow({c.name, clients == 2 ? "light" : "heavy", Fmt("%.0f", o.req_per_sec),
                Fmt("%.2f", o.found_per_poll), Fmt("%.0f", o.resp_us)});
    }
  }
  t.Print();
  std::printf(
      "\nThe adaptive governor holds packets-per-poll near its quota at both load\n"
      "levels; every static interval is tuned for at most one of them.\n");
  return 0;
}

}  // namespace
}  // namespace softtimer

int main(int argc, char** argv) { return softtimer::Main(argc, argv); }
