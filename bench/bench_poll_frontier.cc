// Poll-frontier benchmark: M synthetic NIC queues served three ways -
// per-queue interrupts, dedicated spin cores, and M-on-N claimed polling
// (MultiQueuePoller on a ShardedRtHost) - across an open-loop load sweep.
// The Metronome-style frontier (arXiv 2103.13263 vs the paper's Section
// 5.9): packets per second vs busy-CPU time per packet, with poll-interval
// adaptation per queue and service capacity pooled across cores. Writes
// machine-readable JSON (BENCH_poll.json schema) with --json=PATH.
//
// Methodology (recorded in the JSON): CI containers for this repo often pin
// the build to one CPU, so wall throughput alone cannot separate the
// designs. The efficiency signal is process CPU time
// (CLOCK_PROCESS_CPUTIME_ID) per delivered packet over the measured window:
// dedicated spin burns a core per queue whether or not packets arrive,
// per-queue interrupts pay a per-packet overhead, and M-on-N claimed
// polling sleeps until the next-due gate - its CPU tracks load, not
// capacity. The orchestrating main thread sleeps through the window, so the
// delta is attributable to the serving threads of the mode under test.
//
// Self-checking gates (exit nonzero after bounded retries):
//   - at mid load, M-on-N throughput within 10% of dedicated spin;
//   - at mid load, spin busy-CPU/packet >= 2x the M-on-N value;
//   - zero allocations across the M-on-N measured window (claim+poll path);
//   - every queue was served by the M-on-N run at every load;
//   - governor->pacer coupling: PacingWheel max_batch retargeted from the
//     poller's achieved quota is strictly larger after the high-load run
//     than after the low-load run (load swing observably moves the batch).
//
// Flags:
//   --smoke       short windows (bench-smoke CI entry)
//   --scale=F     scale window lengths by F
//   --json=PATH   write the JSON report to PATH

#include <time.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/alloc_probe.h"
#include "src/core/clock_source.h"
#include "src/core/soft_timer_facility.h"
#include "src/net/multi_queue_poller.h"
#include "src/pacing/pacing_wheel.h"
#include "src/pacing/pacing_wheel_host.h"
#include "src/rt/monotonic_clock_source.h"
#include "src/rt/sharded_rt_host.h"

namespace softtimer {
namespace {

constexpr size_t kQueues = 8;       // M
constexpr size_t kServingCores = 2; // N (M-on-N mode)
constexpr uint64_t kServiceNs = 150;   // per-packet processing cost
constexpr uint64_t kIntrExtraNs = 1'000;  // per-packet interrupt overhead

uint64_t ProcessCpuNs() {
  timespec ts;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

// Calibrated wall-clock spin: stands in for per-packet protocol work. The
// 1 GHz tick clock makes ticks == nanoseconds.
void BurnTicks(const ClockSource& clock, uint64_t ticks) {
  uint64_t end = clock.NowTicks() + ticks;
  while (clock.NowTicks() < end) {
  }
}

// One open-loop synthetic rx queue: packets arrive at a fixed rate whether
// or not anyone is serving (the receive-livelock setup), and serving a
// packet costs kServiceNs of spin. `consumed` is claim-protected under the
// M-on-N mode and thread-local in the other modes; it is atomic only so the
// orchestrator can snapshot it while the serving threads run.
struct SynthQueue {
  double pkts_per_sec = 0;
  uint64_t start_tick = 0;
  std::atomic<uint64_t> consumed{0};

  uint64_t Arrived(uint64_t now_tick) const {
    if (now_tick <= start_tick) {
      return 0;
    }
    return static_cast<uint64_t>(static_cast<double>(now_tick - start_tick) *
                                 pkts_per_sec / 1e9);
  }
  uint64_t Backlog(uint64_t now_tick) const {
    // ordering: single-writer counter; the snapshot only needs monotonicity.
    return Arrived(now_tick) - consumed.load(std::memory_order_relaxed);
  }
};

// MultiQueuePoller adapter: Drain() runs under the queue's claim.
class ClaimedSynthQueue : public MultiQueuePoller::Queue {
 public:
  explicit ClaimedSynthQueue(SynthQueue* q) : q_(q) {}

  // Setup-time only (before the serving host starts).
  void set_clock(const ClockSource* clock) { clock_ = clock; }

  size_t Drain(size_t max_packets, uint64_t now_tick) override {
    uint64_t backlog = q_->Backlog(now_tick);
    size_t take = static_cast<size_t>(
        std::min<uint64_t>(backlog, static_cast<uint64_t>(max_packets)));
    if (take > 0) {
      BurnTicks(*clock_, static_cast<uint64_t>(take) * kServiceNs);
      // ordering: claim-protected writer; release publication happens via
      // the QueueClaim release store, not this counter.
      q_->consumed.fetch_add(take, std::memory_order_relaxed);
    }
    return take;
  }

 private:
  SynthQueue* q_;
  const ClockSource* clock_ = nullptr;
};

struct ModeResult {
  uint64_t packets = 0;       // delivered inside the measured window
  double wall_s = 0;
  double cpu_s = 0;           // process CPU over the window
  double pkts_per_sec = 0;
  double cpu_us_per_pkt = 0;
  uint64_t allocs = 0;        // probe delta over the window
  bool all_queues_served = true;
};

void FinishResult(ModeResult* r, const std::vector<SynthQueue>& queues,
                  const std::vector<uint64_t>& consumed_before) {
  for (size_t i = 0; i < queues.size(); ++i) {
    uint64_t c = queues[i].consumed.load(std::memory_order_relaxed);
    r->packets += c - consumed_before[i];
    if (c == consumed_before[i]) {
      r->all_queues_served = false;
    }
  }
  r->pkts_per_sec = static_cast<double>(r->packets) / r->wall_s;
  r->cpu_us_per_pkt =
      r->packets > 0 ? r->cpu_s * 1e6 / static_cast<double>(r->packets) : 0;
}

// --- mode 1: per-queue interrupts ------------------------------------------
// One thread per queue; every packet pays kIntrExtraNs of interrupt entry /
// exit / context on top of its service cost, processed one at a time (no
// aggregation). Between bursts the thread blocks (interrupt-driven).
ModeResult RunInterruptMode(std::vector<SynthQueue>* queues, double warmup_s,
                            double window_s) {
  MonotonicClockSource clock(1'000'000'000);
  uint64_t start = clock.NowTicks();
  for (auto& q : *queues) {
    q.start_tick = start;
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (size_t i = 0; i < queues->size(); ++i) {
    SynthQueue* q = &(*queues)[i];
    threads.emplace_back([q, &clock, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (q->Backlog(clock.NowTicks()) > 0) {
          BurnTicks(clock, kServiceNs + kIntrExtraNs);
          q->consumed.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(20));
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(warmup_s));
  std::vector<uint64_t> before;
  for (auto& q : *queues) {
    before.push_back(q.consumed.load(std::memory_order_relaxed));
  }
  uint64_t cpu0 = ProcessCpuNs();
  uint64_t wall0 = clock.NowTicks();
  std::this_thread::sleep_for(std::chrono::duration<double>(window_s));
  uint64_t wall1 = clock.NowTicks();
  uint64_t cpu1 = ProcessCpuNs();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) {
    t.join();
  }
  ModeResult r;
  r.wall_s = static_cast<double>(wall1 - wall0) / 1e9;
  r.cpu_s = static_cast<double>(cpu1 - cpu0) / 1e9;
  FinishResult(&r, *queues, before);
  return r;
}

// --- mode 2: dedicated spin ------------------------------------------------
// One busy-polling thread per queue (the DPDK-style baseline): best-case
// latency and batching, but every core burns whether packets arrive or not.
ModeResult RunSpinMode(std::vector<SynthQueue>* queues, double warmup_s,
                       double window_s) {
  MonotonicClockSource clock(1'000'000'000);
  uint64_t start = clock.NowTicks();
  for (auto& q : *queues) {
    q.start_tick = start;
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (size_t i = 0; i < queues->size(); ++i) {
    SynthQueue* q = &(*queues)[i];
    threads.emplace_back([q, &clock, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        uint64_t backlog = q->Backlog(clock.NowTicks());
        uint64_t take = std::min<uint64_t>(backlog, 64);
        if (take > 0) {
          BurnTicks(clock, take * kServiceNs);
          q->consumed.fetch_add(take, std::memory_order_relaxed);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(warmup_s));
  std::vector<uint64_t> before;
  for (auto& q : *queues) {
    before.push_back(q.consumed.load(std::memory_order_relaxed));
  }
  uint64_t cpu0 = ProcessCpuNs();
  uint64_t wall0 = clock.NowTicks();
  std::this_thread::sleep_for(std::chrono::duration<double>(window_s));
  uint64_t wall1 = clock.NowTicks();
  uint64_t cpu1 = ProcessCpuNs();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) {
    t.join();
  }
  ModeResult r;
  r.wall_s = static_cast<double>(wall1 - wall0) / 1e9;
  r.cpu_s = static_cast<double>(cpu1 - cpu0) / 1e9;
  FinishResult(&r, *queues, before);
  return r;
}

// --- mode 3: M-on-N claimed polling ----------------------------------------
// MultiQueuePoller (per-queue governors, QueueClaim protocol, next-due gate)
// served by an N-shard ShardedRtHost through Config::queue_work: every shard
// polls between trigger checks and bounds its sleep by the gate.
struct MonNResult {
  ModeResult mode;
  double achieved_quota = 0;
  size_t coupled_max_batch = 0;  // PacingWheel max_batch after the run
  uint64_t queue_polls = 0;
  uint64_t gate_skips = 0;
  uint64_t scan_misses = 0;
  uint64_t claim_conflicts = 0;
};

// Null sink for the coupling check's wheel.
class NullSink : public PacingWheel::BatchSink {
 public:
  void OnPacedBatch(const PacedEmit*, size_t count, uint64_t) override {
    packets += count;
  }
  uint64_t packets = 0;
};

// Demonstrates the governor->pacer coupling against the live poller: a
// PacingWheelHost whose BatchAdapt reads poller.achieved_quota() retargets
// its wheel's max_batch on the next drain.
size_t CoupledMaxBatch(const MultiQueuePoller& poller) {
  struct ManualClock : ClockSource {
    uint64_t NowTicks() const override { return now; }
    uint64_t ResolutionHz() const override { return 1'000'000; }
    uint64_t now = 0;
  } clock;
  SoftTimerFacility facility(&clock, {});
  PacingWheel::Config wc;
  wc.quantum_ticks = 8;
  wc.num_slots = 1024;
  wc.max_batch = 16;
  PacingWheel wheel(wc);
  PacingWheelHost host(&facility, &wheel);
  NullSink sink;
  host.set_sink(&sink);
  PacingWheelHost::BatchAdapt adapt;
  adapt.achieved_quota = [&poller] { return poller.achieved_quota(); };
  adapt.min_batch = 1;
  adapt.max_batch = 256;
  adapt.gain = 4.0;
  host.set_batch_adapt(adapt);
  PacedFlowConfig fc;
  fc.target_interval_ticks = 100;
  fc.min_burst_interval_ticks = 10;
  PacedFlowId id = host.AddFlow(fc);
  host.Activate(id);
  clock.now += 10;
  host.Poll();  // due: drain applies AdaptBatch from the live quota
  return wheel.max_batch();
}

MonNResult RunMonNMode(std::vector<SynthQueue>* queues, double warmup_s,
                       double window_s) {
  MultiQueuePoller::Config pc;
  pc.governor.aggregation_quota = 2.0;
  pc.governor.min_interval_ticks = 50'000;       // 50 us floor
  pc.governor.max_interval_ticks = 2'000'000;    // 2 ms ceiling
  pc.governor.initial_interval_ticks = 200'000;  // 200 us
  pc.max_per_poll = 64;
  pc.max_cores = kServingCores;
  MultiQueuePoller poller(pc);

  std::vector<std::unique_ptr<ClaimedSynthQueue>> adapters;
  for (auto& q : *queues) {
    adapters.push_back(std::make_unique<ClaimedSynthQueue>(&q));
    poller.AddQueue(adapters.back().get());
  }

  ShardedRtHost::Config hc;
  hc.num_shards = kServingCores;
  hc.measure_hz = 1'000'000'000;
  hc.interrupt_clock_hz = 1'000;  // 1 ms backup bound
  hc.queue_kind = TimerQueueKind::kHeap;
  // Every shard polls between trigger checks and bounds its sleep by the
  // poller's next-due gate; per-queue exclusivity is the claim protocol's.
  hc.queue_work.poll = [&poller](size_t shard, uint64_t now_tick) {
    return poller.PollOnce(static_cast<uint32_t>(shard), now_tick);
  };
  hc.queue_work.next_due = [&poller] { return poller.next_due_tick(); };
  ShardedRtHost serving_host(hc);
  // Anchor arrivals and the queues' service-burn clock to the host's clock,
  // whose ticks PollOnce receives as now_tick.
  uint64_t start = serving_host.clock().NowTicks();
  for (auto& q : *queues) {
    q.start_tick = start;
  }
  for (auto& a : adapters) {
    a->set_clock(&serving_host.clock());
  }
  serving_host.Start();

  std::this_thread::sleep_for(std::chrono::duration<double>(warmup_s));
  std::vector<uint64_t> before;
  for (auto& q : *queues) {
    before.push_back(q.consumed.load(std::memory_order_relaxed));
  }
  uint64_t alloc0 = AllocProbeAllocCount();
  uint64_t cpu0 = ProcessCpuNs();
  uint64_t wall0 = serving_host.clock().NowTicks();
  std::this_thread::sleep_for(std::chrono::duration<double>(window_s));
  uint64_t wall1 = serving_host.clock().NowTicks();
  uint64_t cpu1 = ProcessCpuNs();
  uint64_t alloc1 = AllocProbeAllocCount();
  serving_host.Stop();

  MonNResult r;
  r.mode.wall_s = static_cast<double>(wall1 - wall0) / 1e9;
  r.mode.cpu_s = static_cast<double>(cpu1 - cpu0) / 1e9;
  r.mode.allocs = alloc1 - alloc0;
  FinishResult(&r.mode, *queues, before);
  r.achieved_quota = poller.achieved_quota();
  for (uint32_t c = 0; c < kServingCores; ++c) {
    MultiQueuePoller::CoreStats cs = poller.core_stats(c);
    r.queue_polls += cs.polls;
    r.gate_skips += cs.gate_skips;
    r.scan_misses += cs.scan_misses;
    r.claim_conflicts += cs.claim_conflicts;
  }
  r.coupled_max_batch = CoupledMaxBatch(poller);
  return r;
}

// ---------------------------------------------------------------------------

struct LoadPoint {
  const char* name;
  double pkts_per_sec_per_queue;
  ModeResult intr;
  ModeResult spin;
  MonNResult mon;
};

std::vector<SynthQueue> MakeQueues(double rate) {
  std::vector<SynthQueue> queues(kQueues);
  for (auto& q : queues) {
    q.pkts_per_sec = rate;
    q.consumed.store(0, std::memory_order_relaxed);
  }
  return queues;
}

struct GateOutcome {
  double tput_ratio = 0;       // mon / spin, mid load
  double efficiency_ratio = 0; // spin cpu/pkt over mon cpu/pkt, mid load
  uint64_t mon_allocs = 0;     // mid-load M-on-N window
  size_t batch_low = 0;
  size_t batch_high = 0;
  bool pass_tput = false;
  bool pass_efficiency = false;
  bool pass_zero_alloc = false;
  bool pass_all_served = false;
  bool pass_batch_swing = false;
  bool passed = false;
  int attempts = 0;
};

int Run(const std::string& json_path, double scale) {
  const double warmup_s = 0.08 * scale < 0.02 ? 0.02 : 0.08 * scale;
  const double window_s = 0.5 * scale < 0.1 ? 0.1 : 0.5 * scale;

  LoadPoint loads[] = {
      {"low", 2'000, {}, {}, {}},
      {"mid", 50'000, {}, {}, {}},
      {"high", 200'000, {}, {}, {}},
  };

  GateOutcome gate;
  constexpr int kMaxAttempts = 3;
  for (int attempt = 1; attempt <= kMaxAttempts; ++attempt) {
    gate = GateOutcome{};
    gate.attempts = attempt;
    for (LoadPoint& lp : loads) {
      std::vector<SynthQueue> q1 = MakeQueues(lp.pkts_per_sec_per_queue);
      lp.intr = RunInterruptMode(&q1, warmup_s, window_s);
      std::vector<SynthQueue> q2 = MakeQueues(lp.pkts_per_sec_per_queue);
      lp.spin = RunSpinMode(&q2, warmup_s, window_s);
      std::vector<SynthQueue> q3 = MakeQueues(lp.pkts_per_sec_per_queue);
      lp.mon = RunMonNMode(&q3, warmup_s, window_s);
      std::printf(
          "load=%-4s (%.0f pkts/s/queue x %zu queues)\n"
          "  intr : %9.0f pkts/s  cpu %7.3f us/pkt\n"
          "  spin : %9.0f pkts/s  cpu %7.3f us/pkt  (%zu dedicated cores)\n"
          "  M-on-N: %8.0f pkts/s  cpu %7.3f us/pkt  (%zu cores, quota %.2f, "
          "max_batch %zu, allocs %llu)\n",
          lp.name, lp.pkts_per_sec_per_queue, kQueues, lp.intr.pkts_per_sec,
          lp.intr.cpu_us_per_pkt, lp.spin.pkts_per_sec, lp.spin.cpu_us_per_pkt,
          kQueues, lp.mon.mode.pkts_per_sec, lp.mon.mode.cpu_us_per_pkt,
          kServingCores, lp.mon.achieved_quota, lp.mon.coupled_max_batch,
          static_cast<unsigned long long>(lp.mon.mode.allocs));
    }

    const LoadPoint& mid = loads[1];
    gate.tput_ratio = mid.spin.pkts_per_sec > 0
                          ? mid.mon.mode.pkts_per_sec / mid.spin.pkts_per_sec
                          : 0;
    gate.efficiency_ratio =
        mid.mon.mode.cpu_us_per_pkt > 0
            ? mid.spin.cpu_us_per_pkt / mid.mon.mode.cpu_us_per_pkt
            : 0;
    gate.mon_allocs = mid.mon.mode.allocs;
    gate.batch_low = loads[0].mon.coupled_max_batch;
    gate.batch_high = loads[2].mon.coupled_max_batch;
    gate.pass_tput = gate.tput_ratio >= 0.90;
    gate.pass_efficiency = gate.efficiency_ratio >= 2.0;
    gate.pass_zero_alloc = gate.mon_allocs == 0;
    gate.pass_all_served = loads[0].mon.mode.all_queues_served &&
                           loads[1].mon.mode.all_queues_served &&
                           loads[2].mon.mode.all_queues_served;
    gate.pass_batch_swing = gate.batch_high > gate.batch_low;
    gate.passed = gate.pass_tput && gate.pass_efficiency &&
                  gate.pass_zero_alloc && gate.pass_all_served &&
                  gate.pass_batch_swing;
    std::printf(
        "gates: tput %.3f (>=0.90 %s)  efficiency %.1fx (>=2.0 %s)  "
        "allocs %llu (%s)  served %s  batch %zu->%zu (%s)\n",
        gate.tput_ratio, gate.pass_tput ? "ok" : "FAIL",
        gate.efficiency_ratio, gate.pass_efficiency ? "ok" : "FAIL",
        static_cast<unsigned long long>(gate.mon_allocs),
        gate.pass_zero_alloc ? "ok" : "FAIL",
        gate.pass_all_served ? "ok" : "FAIL", gate.batch_low, gate.batch_high,
        gate.pass_batch_swing ? "ok" : "FAIL");
    if (gate.passed) {
      break;
    }
    std::fprintf(stderr, "poll-frontier attempt %d failed its gates%s\n",
                 attempt, attempt < kMaxAttempts ? ", retrying" : "");
  }

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"schema\": \"softtimer-poll-frontier-v1\",\n");
    std::fprintf(f, "  \"host_cores\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(
        f,
        "  \"note\": \"M=%zu open-loop synthetic queues served by per-queue "
        "interrupt threads, per-queue dedicated spin threads, and M-on-N "
        "claimed polling (MultiQueuePoller on a %zu-shard ShardedRtHost). "
        "cpu_us_per_pkt is process CPU (CLOCK_PROCESS_CPUTIME_ID) over the "
        "measured window per delivered packet - the efficiency signal on "
        "1-core CI hosts where wall throughput saturates identically. "
        "coupled_max_batch is the PacingWheel max_batch after one "
        "PacingWheelHost drain with BatchAdapt reading the live poller's "
        "achieved quota (gain 4).\",\n",
        kQueues, kServingCores);
    std::fprintf(f,
                 "  \"config\": {\"queues\": %zu, \"serving_cores\": %zu, "
                 "\"service_ns\": %llu, \"intr_extra_ns\": %llu, "
                 "\"window_s\": %.3f},\n",
                 kQueues, kServingCores,
                 static_cast<unsigned long long>(kServiceNs),
                 static_cast<unsigned long long>(kIntrExtraNs), window_s);
    std::fprintf(f, "  \"loads\": [\n");
    for (size_t i = 0; i < 3; ++i) {
      const LoadPoint& lp = loads[i];
      std::fprintf(
          f,
          "    {\"load\": \"%s\", \"offered_pkts_per_sec\": %.0f,\n"
          "     \"interrupt\": {\"pkts_per_sec\": %.0f, \"cpu_us_per_pkt\": "
          "%.4f},\n"
          "     \"spin\": {\"pkts_per_sec\": %.0f, \"cpu_us_per_pkt\": "
          "%.4f},\n"
          "     \"mon_n\": {\"pkts_per_sec\": %.0f, \"cpu_us_per_pkt\": %.4f, "
          "\"achieved_quota\": %.3f, \"coupled_max_batch\": %zu, "
          "\"queue_polls\": %llu, \"gate_skips\": %llu, \"scan_misses\": "
          "%llu, \"claim_conflicts\": %llu, \"allocs\": %llu, "
          "\"all_queues_served\": %s}}%s\n",
          lp.name, lp.pkts_per_sec_per_queue * static_cast<double>(kQueues),
          lp.intr.pkts_per_sec, lp.intr.cpu_us_per_pkt, lp.spin.pkts_per_sec,
          lp.spin.cpu_us_per_pkt, lp.mon.mode.pkts_per_sec,
          lp.mon.mode.cpu_us_per_pkt, lp.mon.achieved_quota,
          lp.mon.coupled_max_batch,
          static_cast<unsigned long long>(lp.mon.queue_polls),
          static_cast<unsigned long long>(lp.mon.gate_skips),
          static_cast<unsigned long long>(lp.mon.scan_misses),
          static_cast<unsigned long long>(lp.mon.claim_conflicts),
          static_cast<unsigned long long>(lp.mon.mode.allocs),
          lp.mon.mode.all_queues_served ? "true" : "false",
          i + 1 < 3 ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(
        f,
        "  \"gates\": {\"tput_ratio_mid\": %.4f, \"efficiency_ratio_mid\": "
        "%.2f, \"mon_allocs_mid\": %llu, \"coupled_max_batch_low\": %zu, "
        "\"coupled_max_batch_high\": %zu, \"attempts\": %d, \"passed\": "
        "%s}\n}\n",
        gate.tput_ratio, gate.efficiency_ratio,
        static_cast<unsigned long long>(gate.mon_allocs), gate.batch_low,
        gate.batch_high, gate.attempts, gate.passed ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return gate.passed ? 0 : 1;
}

}  // namespace
}  // namespace softtimer

int main(int argc, char** argv) {
  std::string json_path;
  double scale = 1.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      scale = std::strtod(argv[i] + 8, nullptr);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      scale = 0.3;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 1;
    }
  }
  return softtimer::Run(json_path, scale <= 0 ? 1.0 : scale);
}
