// Tables 4 and 5: statistics of the rate-based transmission process.
//
// The adaptive pacer (Section 4.1) clocks a packet stream via soft timers on
// a machine running the busy-Web-server workload (ST-Apache - the worst of
// the two web workloads by mean trigger interval), with a target interval of
// 40 us (Table 4) or 60 us (Table 5) and a minimum allowable burst interval
// swept from 12 us (1500 B at 1 Gbps line rate) to 35 us. A hardware timer
// programmed at the target rate is the comparator; it falls short of the
// target because ticks are lost while interrupts are disabled.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/adaptive_pacer.h"
#include "src/stats/summary_stats.h"
#include "src/workload/trigger_workload.h"

namespace softtimer {
namespace {

struct PaperEntry {
  double avg, stddev;
};

SummaryStats RunSoft(uint64_t target_us, uint64_t min_burst_us, SimDuration run) {
  auto wl = MakeTriggerWorkload(WorkloadKind::kApache, MachineProfile::PentiumII300(),
                                /*seed=*/42);
  wl->Start();
  wl->sim().RunFor(SimDuration::Millis(300));

  SoftTimerFacility& st = wl->kernel().soft_timers();
  AdaptivePacer pacer({target_us, min_burst_us});
  SummaryStats intervals;
  SimTime last_send;
  bool have_last = false;

  std::function<void()> send = [&] {
    SimTime now = wl->sim().now();
    if (have_last) {
      intervals.Add((now - last_send).ToMicros());
    }
    last_send = now;
    have_last = true;
    // Driver handoff for the transmitted packet.
    wl->kernel().cpu(0).Steal(wl->kernel().profile().Work(SimDuration::Micros(2)));
    uint64_t delta = pacer.OnPacketSent(st.MeasureTime());
    st.ScheduleSoftEvent(delta, [&](const SoftTimerFacility::FireInfo&) { send(); });
  };
  pacer.StartTrain(st.MeasureTime());
  send();
  wl->sim().RunFor(run);
  return intervals;
}

SummaryStats RunHard(uint64_t target_us, SimDuration run) {
  auto wl = MakeTriggerWorkload(WorkloadKind::kApache, MachineProfile::PentiumII300(),
                                /*seed=*/42);
  wl->Start();
  wl->sim().RunFor(SimDuration::Millis(300));

  SummaryStats intervals;
  SimTime last_send;
  bool have_last = false;
  wl->kernel().AddPeriodicHardwareTimer(1'000'000 / target_us, SimDuration::Micros(2), [&] {
    SimTime now = wl->sim().now();
    if (have_last) {
      intervals.Add((now - last_send).ToMicros());
    }
    last_send = now;
    have_last = true;
  });
  wl->sim().RunFor(run);
  return intervals;
}

void RunTable(uint64_t target_us, const PaperEntry* paper_soft, PaperEntry paper_hard,
              SimDuration run) {
  std::printf("\nTarget transmission interval = %llu us (workload: ST-Apache)\n",
              static_cast<unsigned long long>(target_us));
  TextTable t({"Min intvl (us)", "Soft avg (us)", "Soft stddev", "paper avg", "paper sd"});
  const uint64_t bursts[] = {12, 15, 20, 25, 30, 35};
  for (size_t i = 0; i < 6; ++i) {
    SummaryStats s = RunSoft(target_us, bursts[i], run);
    t.AddRow({bursts[i] == 12 ? "12 (line speed)" : Fmt("%llu", (unsigned long long)bursts[i]),
              Fmt("%.1f", s.mean()), Fmt("%.1f", s.stddev()),
              Fmt("%.1f", paper_soft[i].avg), Fmt("%.1f", paper_soft[i].stddev)});
  }
  SummaryStats h = RunHard(target_us, run);
  t.AddRow({"hardware timer", Fmt("%.1f", h.mean()), Fmt("%.1f", h.stddev()),
            Fmt("%.1f", paper_hard.avg), Fmt("%.1f", paper_hard.stddev)});
  t.Print();
}

int Main(int argc, char** argv) {
  BenchOptions opt = ParseBenchOptions(argc, argv);
  SimDuration run = SimDuration::Seconds(1.0 * opt.scale);

  PrintBanner("Rate-based clocking: transmission process statistics",
              "Tables 4 and 5, Section 5.7");

  const PaperEntry paper40[] = {{40, 34.5}, {48, 31.6}, {51.9, 30.9},
                                {57.5, 30.9}, {61, 30.5}, {65.9, 30.1}};
  const PaperEntry paper60[] = {{60, 35.9}, {60, 33.2}, {60, 32.3},
                                {60, 31.2}, {61, 30.5}, {65.9, 30}};
  RunTable(40, paper40, {43.6, 26.8}, run);
  RunTable(60, paper60, {63, 27.7}, run);
  return 0;
}

}  // namespace
}  // namespace softtimer

int main(int argc, char** argv) { return softtimer::Main(argc, argv); }
