// Table 2 + Figure 6: trigger-state sources and their impact.
//
// Runs the ST-Apache workload, accounts each trigger state to its source
// (Table 2), and recomputes the interval distribution with each source
// removed in turn (Figure 6) - removing a source merges the intervals on
// either side of its trigger states. The paper: syscalls (47.7%) and
// ip-output (28%) dominate, and removing either degrades the distribution
// the most.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/stats/sample_set.h"
#include "src/workload/trigger_workload.h"

namespace softtimer {
namespace {

int Main(int argc, char** argv) {
  BenchOptions opt = ParseBenchOptions(argc, argv);
  SimDuration run = SimDuration::Seconds(2.0 * opt.scale);

  PrintBanner("Trigger-state sources (ST-Apache)", "Table 2 and Figure 6, Section 5.5");

  auto wl = MakeTriggerWorkload(WorkloadKind::kApache, MachineProfile::PentiumII300(),
                                /*seed=*/42);
  wl->Start();
  wl->sim().RunFor(SimDuration::Millis(300));
  wl->kernel().ResetTriggerStats();

  // "All" plus one leave-one-out interval stream per Table 2 source.
  struct Stream {
    TriggerSource excluded;
    bool exclude_any = false;
    SimTime last;
    bool have_last = false;
    SampleSet samples{1'500'000};
  };
  std::vector<Stream> streams(kTable2Sources.size() + 1);
  streams[0].exclude_any = false;
  for (size_t i = 0; i < kTable2Sources.size(); ++i) {
    streams[i + 1].exclude_any = true;
    streams[i + 1].excluded = kTable2Sources[i];
  }

  wl->kernel().set_trigger_observer([&](TriggerSource src, SimTime now, SimDuration) {
    for (auto& st : streams) {
      if (st.exclude_any && src == st.excluded) {
        continue;  // this source's trigger states do not exist in this view
      }
      if (st.have_last) {
        st.samples.Add((now - st.last).ToMicros());
      }
      st.last = now;
      st.have_last = true;
    }
  });

  wl->sim().RunFor(run);

  // Table 2: source mix over the five accounted sources.
  const auto& by_source = wl->kernel().stats().triggers_by_source;
  uint64_t total5 = 0;
  for (TriggerSource s : kTable2Sources) {
    total5 += by_source[static_cast<size_t>(s)];
  }
  const double paper_pct[] = {47.7, 28.0, 16.4, 5.4, 2.5};
  std::printf("\nTable 2: fraction of trigger-state samples by source\n");
  TextTable t2({"Source", "measured (%)", "paper (%)"});
  for (size_t i = 0; i < kTable2Sources.size(); ++i) {
    uint64_t n = by_source[static_cast<size_t>(kTable2Sources[i])];
    t2.AddRow({TriggerSourceName(kTable2Sources[i]),
               Fmt("%.1f", 100.0 * static_cast<double>(n) / static_cast<double>(total5)),
               Fmt("%.1f", paper_pct[i])});
  }
  t2.Print();

  // Figure 6: CDFs with one source removed.
  const std::vector<double> grid = {10, 20, 30, 50, 75, 100, 150};
  std::printf("\nFigure 6: interval CDF with one trigger source removed\n");
  TextTable t6([&] {
    std::vector<std::string> h{"Stream", "mean(us)"};
    for (double g : grid) {
      h.push_back(Fmt("<=%gus", g));
    }
    return h;
  }());
  for (size_t i = 0; i < streams.size(); ++i) {
    std::vector<std::string> row;
    row.push_back(i == 0 ? "All" : Fmt("no %s", TriggerSourceName(streams[i].excluded)));
    row.push_back(Fmt("%.1f", streams[i].samples.mean()));
    for (double f : streams[i].samples.CdfAt(grid)) {
      row.push_back(Fmt("%.1f%%", f * 100));
    }
    t6.AddRow(row);
  }
  t6.Print();
  std::printf("\nPaper: removing syscalls or ip-output degrades the distribution most.\n");
  return 0;
}

}  // namespace
}  // namespace softtimer

int main(int argc, char** argv) { return softtimer::Main(argc, argv); }
