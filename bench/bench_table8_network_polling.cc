// Table 8: Web-server throughput with soft-timer network polling.
//
// A 333 MHz Pentium II server with 4 Fast Ethernet NICs serves 6 KB files
// under HTTP and persistent-connection HTTP (P-HTTP), either with
// conventional per-packet network interrupts or with soft-timer-based
// polling at aggregation quotas 1, 2, 5, 10 and 15. The paper's result:
// 3-25% higher throughput with polling, gains growing with the quota and
// larger for the leaner Flash server.

#include <cstdio>
#include <optional>

#include "bench/bench_util.h"
#include "src/httpsim/http_testbed.h"

namespace softtimer {
namespace {

double RunOne(HttpServerModel::ServerKind kind, bool persistent,
              std::optional<double> quota, SimDuration warmup, SimDuration window) {
  HttpTestbed::Config cfg;
  cfg.profile = MachineProfile::PentiumII333();
  cfg.num_links = 4;
  cfg.server.kind = kind;
  cfg.workload.persistent = persistent;
  if (quota) {
    SoftTimerNetPoller::Config pc;
    pc.governor.aggregation_quota = *quota;
    pc.governor.min_interval_ticks = 10;    // ~aggregate line-rate interval
    pc.governor.max_interval_ticks = 4000;  // soft events may outlive a backup period
    pc.governor.initial_interval_ticks = 50;
    cfg.polling = pc;
  }
  HttpTestbed bed(cfg);
  HttpTestbed::RunResult r = bed.Measure(warmup, window);
  if (quota && getenv("ST_DEBUG")) {
    uint64_t polled = 0, intr = 0, rx = 0;
    for (int i = 0; i < bed.num_links(); ++i) {
      polled += bed.nic(i).stats().polled_packets;
      intr += bed.nic(i).stats().rx_interrupts;
      rx += bed.nic(i).stats().rx_packets;
    }
    for (int i = 0; i < bed.num_links(); ++i) {
      std::printf("  [nic %d] mode=%d rx=%llu rxintr=%llu polled=%llu\n", i,
                  (int)bed.nic(i).mode(), (unsigned long long)bed.nic(i).stats().rx_packets,
                  (unsigned long long)bed.nic(i).stats().rx_interrupts,
                  (unsigned long long)bed.nic(i).stats().polled_packets);
    }
    std::printf("[debug q=%.0f] polls=%llu pollpkts=%llu found/poll=%.2f idle_sw=%llu eng=%llu rx=%llu rxintr=%llu gov_intvl=%llu\n",
                *quota, (unsigned long long)bed.poller()->stats().polls,
                (unsigned long long)bed.poller()->stats().packets,
                bed.poller()->stats().polls ? (double)bed.poller()->stats().packets/bed.poller()->stats().polls : 0.0,
                (unsigned long long)bed.poller()->stats().idle_switches,
                (unsigned long long)bed.poller()->stats().engages,
                (unsigned long long)rx, (unsigned long long)intr,
                (unsigned long long)bed.poller()->governor().current_interval_ticks());
  }
  return r.req_per_sec;
}

int Main(int argc, char** argv) {
  BenchOptions opt = ParseBenchOptions(argc, argv);
  SimDuration warmup = SimDuration::Millis(300);
  SimDuration window = SimDuration::Seconds(3.0 * opt.scale);

  PrintBanner("Soft-timer network polling: server throughput", "Table 8, Section 5.9");

  struct Row {
    HttpServerModel::ServerKind kind;
    bool persistent;
    const char* label;
    double paper_intr;
    double paper_quota[5];
  };
  const Row rows[] = {
      {HttpServerModel::ServerKind::kApache, false, "HTTP  Apache", 854, {915, 933, 939, 944, 945}},
      {HttpServerModel::ServerKind::kFlash, false, "HTTP  Flash", 1376, {1568, 1620, 1690, 1702, 1719}},
      {HttpServerModel::ServerKind::kApache, true, "P-HTTP Apache", 1346, {1380, 1395, 1421, 1439, 1440}},
      {HttpServerModel::ServerKind::kFlash, true, "P-HTTP Flash", 4439, {4816, 5071, 5271, 5376, 5498}},
  };
  const double quotas[] = {1, 2, 5, 10, 15};

  TextTable t({"Workload", "Interrupt", "q=1", "q=2", "q=5", "q=10", "q=15"});
  for (const Row& row : rows) {
    double base = RunOne(row.kind, row.persistent, std::nullopt, warmup, window);
    std::vector<std::string> cells{row.label,
                                   Fmt("%.0f (paper %.0f)", base, row.paper_intr)};
    for (int qi = 0; qi < 5; ++qi) {
      double x = RunOne(row.kind, row.persistent, quotas[qi], warmup, window);
      cells.push_back(Fmt("%.0f (%.2f; paper %.2f)", x, x / base,
                          row.paper_quota[qi] / row.paper_intr));
    }
    t.AddRow(cells);
  }
  std::printf("\nThroughput in req/s; parenthesized: speedup over interrupt mode.\n");
  t.Print();
  return 0;
}

}  // namespace
}  // namespace softtimer

int main(int argc, char** argv) { return softtimer::Main(argc, argv); }
