// Table 8: Web-server throughput with soft-timer network polling.
//
// A 333 MHz Pentium II server with 4 Fast Ethernet NICs serves 6 KB files
// under HTTP and persistent-connection HTTP (P-HTTP), either with
// conventional per-packet network interrupts or with soft-timer-based
// polling at aggregation quotas 1, 2, 5, 10 and 15. The paper's result:
// 3-25% higher throughput with polling, gains growing with the quota and
// larger for the leaner Flash server.
//
// Beyond the paper's req/s, every cell also reports busy-CPU microseconds
// per received packet (CPU work+steal time over the window divided by rx
// packets) - the per-packet cost axis the poll-frontier bench sweeps, here
// measured on the full web-server testbed. Polling's win is visible as a
// lower busy-CPU cost for the same packet stream. --json=PATH writes a
// machine-readable report (BENCH_table8.json schema).

#include <cstdio>
#include <optional>

#include "bench/bench_util.h"
#include "src/httpsim/http_testbed.h"

namespace softtimer {
namespace {

HttpTestbed::RunResult RunOne(HttpServerModel::ServerKind kind, bool persistent,
                              std::optional<double> quota, SimDuration warmup,
                              SimDuration window) {
  HttpTestbed::Config cfg;
  cfg.profile = MachineProfile::PentiumII333();
  cfg.num_links = 4;
  cfg.server.kind = kind;
  cfg.workload.persistent = persistent;
  if (quota) {
    SoftTimerNetPoller::Config pc;
    pc.governor.aggregation_quota = *quota;
    pc.governor.min_interval_ticks = 10;    // ~aggregate line-rate interval
    pc.governor.max_interval_ticks = 4000;  // soft events may outlive a backup period
    pc.governor.initial_interval_ticks = 50;
    cfg.polling = pc;
  }
  HttpTestbed bed(cfg);
  HttpTestbed::RunResult r = bed.Measure(warmup, window);
  if (quota && getenv("ST_DEBUG")) {
    uint64_t polled = 0, intr = 0, rx = 0;
    for (int i = 0; i < bed.num_links(); ++i) {
      polled += bed.nic(i).stats().polled_packets;
      intr += bed.nic(i).stats().rx_interrupts;
      rx += bed.nic(i).stats().rx_packets;
    }
    for (int i = 0; i < bed.num_links(); ++i) {
      std::printf("  [nic %d] mode=%d rx=%llu rxintr=%llu polled=%llu\n", i,
                  (int)bed.nic(i).mode(), (unsigned long long)bed.nic(i).stats().rx_packets,
                  (unsigned long long)bed.nic(i).stats().rx_interrupts,
                  (unsigned long long)bed.nic(i).stats().polled_packets);
    }
    std::printf("[debug q=%.0f] polls=%llu pollpkts=%llu found/poll=%.2f idle_sw=%llu eng=%llu rx=%llu rxintr=%llu gov_intvl=%llu\n",
                *quota, (unsigned long long)bed.poller()->stats().polls,
                (unsigned long long)bed.poller()->stats().packets,
                bed.poller()->stats().polls ? (double)bed.poller()->stats().packets/bed.poller()->stats().polls : 0.0,
                (unsigned long long)bed.poller()->stats().idle_switches,
                (unsigned long long)bed.poller()->stats().engages,
                (unsigned long long)rx, (unsigned long long)intr,
                (unsigned long long)bed.poller()->governor().current_interval_ticks());
  }
  return r;
}

int Main(int argc, char** argv) {
  BenchOptions opt = ParseBenchOptions(argc, argv);
  SimDuration warmup = SimDuration::Millis(300);
  SimDuration window = SimDuration::Seconds(3.0 * opt.scale);

  PrintBanner("Soft-timer network polling: server throughput", "Table 8, Section 5.9");

  struct Row {
    HttpServerModel::ServerKind kind;
    bool persistent;
    const char* label;
    double paper_intr;
    double paper_quota[5];
  };
  const Row rows[] = {
      {HttpServerModel::ServerKind::kApache, false, "HTTP  Apache", 854, {915, 933, 939, 944, 945}},
      {HttpServerModel::ServerKind::kFlash, false, "HTTP  Flash", 1376, {1568, 1620, 1690, 1702, 1719}},
      {HttpServerModel::ServerKind::kApache, true, "P-HTTP Apache", 1346, {1380, 1395, 1421, 1439, 1440}},
      {HttpServerModel::ServerKind::kFlash, true, "P-HTTP Flash", 4439, {4816, 5071, 5271, 5376, 5498}},
  };
  const double quotas[] = {1, 2, 5, 10, 15};

  // results[row][0] = interrupt mode, results[row][1 + qi] = quota qi.
  HttpTestbed::RunResult results[4][6];
  TextTable t({"Workload", "Interrupt", "q=1", "q=2", "q=5", "q=10", "q=15"});
  TextTable cpu({"Workload (busy-CPU us/pkt)", "Interrupt", "q=1", "q=2",
                 "q=5", "q=10", "q=15"});
  for (size_t ri = 0; ri < 4; ++ri) {
    const Row& row = rows[ri];
    results[ri][0] =
        RunOne(row.kind, row.persistent, std::nullopt, warmup, window);
    double base = results[ri][0].req_per_sec;
    std::vector<std::string> cells{row.label,
                                   Fmt("%.0f (paper %.0f)", base, row.paper_intr)};
    std::vector<std::string> cpu_cells{
        row.label, Fmt("%.2f", results[ri][0].busy_cpu_us_per_packet)};
    for (int qi = 0; qi < 5; ++qi) {
      results[ri][1 + qi] =
          RunOne(row.kind, row.persistent, quotas[qi], warmup, window);
      double x = results[ri][1 + qi].req_per_sec;
      cells.push_back(Fmt("%.0f (%.2f; paper %.2f)", x, x / base,
                          row.paper_quota[qi] / row.paper_intr));
      cpu_cells.push_back(
          Fmt("%.2f (%.2fx)", results[ri][1 + qi].busy_cpu_us_per_packet,
              results[ri][1 + qi].busy_cpu_us_per_packet /
                  results[ri][0].busy_cpu_us_per_packet));
    }
    t.AddRow(cells);
    cpu.AddRow(cpu_cells);
  }
  std::printf("\nThroughput in req/s; parenthesized: speedup over interrupt mode.\n");
  t.Print();
  std::printf(
      "\nBusy-CPU us per received packet (work + interrupt steal over the\n"
      "window / rx packets); parenthesized: ratio vs interrupt mode.\n");
  cpu.Print();

  if (!opt.json_path.empty()) {
    FILE* f = std::fopen(opt.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", opt.json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"schema\": \"softtimer-table8-v1\",\n");
    std::fprintf(
        f,
        "  \"note\": \"PII-333 web-server testbed, 4 NICs. req_per_sec is "
        "the paper's Table 8 metric; busy_cpu_us_per_packet is CPU work + "
        "interrupt steal time over the measurement window divided by rx "
        "packets - the per-packet efficiency axis of BENCH_poll.json, "
        "measured on the full server model.\",\n");
    std::fprintf(f, "  \"rows\": [\n");
    const char* mode_names[6] = {"interrupt", "q1", "q2", "q5", "q10", "q15"};
    for (size_t ri = 0; ri < 4; ++ri) {
      std::fprintf(f, "    {\"workload\": \"%s\",\n", rows[ri].label);
      for (size_t mi = 0; mi < 6; ++mi) {
        const HttpTestbed::RunResult& r = results[ri][mi];
        std::fprintf(
            f,
            "     \"%s\": {\"req_per_sec\": %.1f, \"rx_packets\": %llu, "
            "\"busy_cpu_us_per_packet\": %.4f}%s\n",
            mode_names[mi], r.req_per_sec,
            static_cast<unsigned long long>(r.rx_packets),
            r.busy_cpu_us_per_packet, mi + 1 < 6 ? "," : "}");
      }
      std::fprintf(f, "%s\n", ri + 1 < 4 ? "    ," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", opt.json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace softtimer

int main(int argc, char** argv) { return softtimer::Main(argc, argv); }
