#include "bench/bench_util.h"

#include <cstdarg>
#include <cstdlib>
#include <cstring>

namespace softtimer {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::Print() const {
  std::vector<size_t> width(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) {
    width[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < width.size(); ++i) {
      if (row[i].size() > width[i]) {
        width[i] = row[i].size();
      }
    }
  }
  auto print_rule = [&] {
    for (size_t i = 0; i < width.size(); ++i) {
      std::printf("+");
      for (size_t k = 0; k < width[i] + 2; ++k) {
        std::printf("-");
      }
    }
    std::printf("+\n");
  };
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < width.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      std::printf("| %-*s ", static_cast<int>(width[i]), c.c_str());
    }
    std::printf("|\n");
  };
  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) {
    print_row(row);
  }
  print_rule();
}

std::string Fmt(const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  return buf;
}

BenchOptions ParseBenchOptions(int argc, char** argv) {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      opt.scale = 0.3;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      opt.scale = 4.0;
      opt.full = true;
    } else if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      opt.scale = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--dump-dir=", 11) == 0) {
      opt.dump_dir = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      opt.json_path = argv[i] + 7;
    }
  }
  return opt;
}

void PrintBanner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s  (Aron & Druschel, \"Soft Timers\", SOSP '99)\n", paper_ref.c_str());
  std::printf("================================================================================\n");
}

}  // namespace softtimer
