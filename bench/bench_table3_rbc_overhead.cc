// Table 3: overhead of rate-based clocking, soft timers vs hardware timers.
//
// The Web server (Apache and Flash) transmits every response packet through
// a pacing queue. With soft timers, a T=0 soft event sends one pending
// packet per trigger state; with hardware timers, an 8253 programmed at
// 50 kHz (one interrupt per 20 us) sends one pending packet per interrupt.
// The paper's result: 2-6% overhead with soft timers vs 28-36% with the
// hardware timer, and an average transmission interval near the trigger
// interval (soft) / the programmed period plus lost ticks (hard).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/httpsim/http_testbed.h"

namespace softtimer {
namespace {

struct PaperCol {
  double base, hw_xput, hw_ovhd, hw_intvl, soft_xput, soft_ovhd, soft_intvl;
};

void RunServer(HttpServerModel::ServerKind kind, const char* label, const PaperCol& paper,
               SimDuration warmup, SimDuration window) {
  auto make = [&](HttpServerModel::TxDiscipline tx) {
    HttpTestbed::Config cfg;
    cfg.profile = MachineProfile::PentiumII300();
    cfg.server.kind = kind;
    cfg.server.tx = tx;
    return cfg;
  };

  HttpTestbed base(make(HttpServerModel::TxDiscipline::kImmediate));
  HttpTestbed::RunResult rb = base.Measure(warmup, window);

  HttpTestbed hw(make(HttpServerModel::TxDiscipline::kHardPaced));
  HttpTestbed::RunResult rh = hw.Measure(warmup, window);

  HttpTestbed soft(make(HttpServerModel::TxDiscipline::kSoftPaced));
  HttpTestbed::RunResult rs = soft.Measure(warmup, window);

  double hw_ovhd = 100.0 * (1.0 - rh.conn_per_sec / rb.conn_per_sec);
  double soft_ovhd = 100.0 * (1.0 - rs.conn_per_sec / rb.conn_per_sec);

  std::printf("\n%s:\n", label);
  TextTable t({"", "measured", "paper"});
  t.AddRow({"Base throughput (conn/s)", Fmt("%.0f", rb.conn_per_sec), Fmt("%.0f", paper.base)});
  t.AddRow({"HW timer throughput (conn/s)", Fmt("%.0f", rh.conn_per_sec), Fmt("%.0f", paper.hw_xput)});
  t.AddRow({"HW timer overhead (%)", Fmt("%.0f", hw_ovhd), Fmt("%.0f", paper.hw_ovhd)});
  t.AddRow({"HW timer avg xmit intvl (us)", Fmt("%.0f", rh.paced_interval_mean_us),
            Fmt("%.0f", paper.hw_intvl)});
  t.AddRow({"Soft timer throughput (conn/s)", Fmt("%.0f", rs.conn_per_sec), Fmt("%.0f", paper.soft_xput)});
  t.AddRow({"Soft timer overhead (%)", Fmt("%.0f", soft_ovhd), Fmt("%.0f", paper.soft_ovhd)});
  t.AddRow({"Soft timer avg xmit intvl (us)", Fmt("%.0f", rs.paced_interval_mean_us),
            Fmt("%.0f", paper.soft_intvl)});
  t.Print();
}

int Main(int argc, char** argv) {
  BenchOptions opt = ParseBenchOptions(argc, argv);
  SimDuration warmup = SimDuration::Millis(300);
  SimDuration window = SimDuration::Seconds(2.0 * opt.scale);

  PrintBanner("Rate-based clocking: timer overhead", "Table 3, Section 5.6");
  RunServer(HttpServerModel::ServerKind::kApache, "Apache", {774, 560, 28, 31, 756, 2, 34},
            warmup, window);
  RunServer(HttpServerModel::ServerKind::kFlash, "Flash", {1303, 827, 36, 35, 1224, 6, 24},
            warmup, window);
  return 0;
}

}  // namespace
}  // namespace softtimer

int main(int argc, char** argv) { return softtimer::Main(argc, argv); }
