// Restarting an idle persistent-HTTP connection (Section 6 / related work).
//
//   "The use of rate-based clocking has been proposed in the context of TCP
//    slow-start, when an idle persistent HTTP (P-HTTP) connection becomes
//    active [19, 16, 12]. Visweswaraiah et al. observe that an idle P-HTTP
//    connection causes TCP to close its congestion window and the ensuing
//    slow-start phase tends to defeat P-HTTP's attempt to utilize the network
//    more effectively... Soft timers can be used to efficiently clock the
//    transmission of packets upon restart of an idle P-HTTP connection."
//
// A persistent connection over the 100 ms-RTT WAN serves three 100-packet
// responses separated by think-time idle gaps. Regular TCP re-enters slow
// start on every restart; the soft-timer alternative paces the restart at
// the bottleneck rate estimated from the previous busy period with the
// packet-pair technique (Keshav, cited in Section 6: back-to-back segments
// arrive spaced by the bottleneck serialization time). Reported:
// per-response latency.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/machine/kernel.h"
#include "src/net/wan_path.h"
#include "src/tcp/tcp_receiver.h"
#include "src/tcp/tcp_sender.h"

namespace softtimer {
namespace {

struct Harness {
  Harness() : kernel(&sim, KernelCfg()), wan(&sim, WanCfg()), receiver(&sim, TcpReceiver::Config{}) {}
  static Kernel::Config KernelCfg() {
    Kernel::Config kc;
    kc.profile = MachineProfile::PentiumII300();
    kc.idle_poll_fast_forward = true;
    return kc;
  }
  static WanPath::Config WanCfg() {
    WanPath::Config wc;
    wc.bottleneck_bps = 100e6;
    wc.one_way_delay = SimDuration::Millis(50);
    return wc;
  }
  void Wire(TcpSender* sender) {
    sender->set_packet_sender([this](Packet p) { wan.forward().Send(p); });
    wan.forward().set_receiver([this](const Packet& p) {
      // Packet-pair capacity estimation at the receiver: back-to-back
      // segments arrive spaced by the bottleneck serialization time.
      if (p.kind == Packet::Kind::kData) {
        if (have_last_arrival) {
          double gap_us = (sim.now() - last_arrival).ToMicros();
          if (gap_us > 1.0 && gap_us < min_gap_us) {
            min_gap_us = gap_us;
          }
        }
        last_arrival = sim.now();
        have_last_arrival = true;
      }
      receiver.OnSegment(p);
    });
    receiver.set_ack_sender([this](Packet p) { wan.reverse().Send(p); });
    wan.reverse().set_receiver([sender](const Packet& p) { sender->OnAck(p); });
  }
  SimTime last_arrival;
  bool have_last_arrival = false;
  double min_gap_us = 1e9;
  Simulator sim;
  Kernel kernel;
  WanPath wan;
  TcpReceiver receiver;
};

constexpr uint64_t kBurstPackets = 100;
constexpr uint64_t kBurstBytes = kBurstPackets * kDefaultMss;

// Runs three bursts; `paced_restarts` switches bursts 2 and 3 to rate-based
// clocking at the rate achieved during the previous burst.
std::vector<double> RunBursts(bool paced_restarts) {
  Harness h;
  std::vector<double> latencies_ms;
  uint64_t pace_ticks = 0;  // learned inter-packet interval

  for (int burst = 0; burst < 3; ++burst) {
    TcpSender::Config sc;
    sc.rwnd_bytes = 1 << 20;
    if (paced_restarts && burst > 0) {
      sc.mode = TcpSender::Mode::kRateBased;
      sc.pace_target_interval_ticks = pace_ticks;
      sc.pace_min_burst_interval_ticks = pace_ticks;
    }
    TcpSender sender(&h.kernel, sc);
    h.Wire(&sender);

    // Each response is an independent byte stream on the persistent
    // connection.
    h.receiver.ResetStream();
    SimTime start = h.sim.now();
    bool done = false;
    SimTime done_at;
    h.receiver.NotifyWhenReceived(kBurstBytes, [&] {
      done = true;
      done_at = h.sim.now();
    });
    // The request for this response crosses the WAN first.
    h.sim.ScheduleAfter(SimDuration::Millis(50), [&] { sender.StartTransfer(kBurstBytes); });
    h.sim.RunUntil(h.sim.now() + SimDuration::Seconds(30));
    if (!done) {
      latencies_ms.push_back(-1);
      break;
    }
    latencies_ms.push_back((done_at - start).ToMillis());
    // The packet-pair estimate from this burst paces the next restart.
    pace_ticks = static_cast<uint64_t>(h.min_gap_us + 0.5);
    if (pace_ticks < 120) {
      pace_ticks = 120;  // never exceed the 100 Mbps line rate
    }
    // Idle think time before the next request; TCP's cwnd would decay.
    h.sim.RunFor(SimDuration::Seconds(5));
  }
  return latencies_ms;
}

int Main(int argc, char** argv) {
  (void)ParseBenchOptions(argc, argv);
  PrintBanner("Restarting an idle persistent connection", "Section 6 (related work)");

  std::vector<double> regular = RunBursts(false);
  std::vector<double> paced = RunBursts(true);

  TextTable t({"Response #", "regular TCP (ms)", "paced restart (ms)", "reduction (%)"});
  for (size_t i = 0; i < regular.size() && i < paced.size(); ++i) {
    t.AddRow({Fmt("%zu", i + 1), Fmt("%.0f", regular[i]), Fmt("%.0f", paced[i]),
              Fmt("%.0f", 100.0 * (1.0 - paced[i] / regular[i]))});
  }
  t.Print();
  std::printf(
      "\nResponse 1 pays slow start either way (nothing is known about the path\n"
      "yet). Responses 2 and 3 restart after idle: regular TCP slow-starts from\n"
      "scratch; soft-timer pacing at the previously-achieved rate delivers in\n"
      "about one RTT plus the transmission time.\n");
  return 0;
}

}  // namespace
}  // namespace softtimer

int main(int argc, char** argv) { return softtimer::Main(argc, argv); }
