// Receiver livelock under open-loop overload (Section 6, Mogul &
// Ramakrishnan).
//
// With per-packet interrupts, offered load beyond the server's capacity
// spends the whole CPU in interrupt context: packets are received and
// discarded before the application can finish any request, and goodput
// collapses - the classic receiver-livelock curve. Soft-timer polling keeps
// interrupts off while the CPU is busy, so the server keeps completing
// requests at its capacity no matter the offered load. (Mogul &
// Ramakrishnan's own fix switches to polling only at saturation; the paper
// notes soft-timer polling subsumes it while also aggregating.)
//
// Offered load sweeps from below to several times capacity (open-loop
// Poisson connection arrivals); reported: goodput (completed requests/s).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/httpsim/http_testbed.h"

namespace softtimer {
namespace {

double RunAt(double conn_per_sec_per_link, bool soft_polling, SimDuration warmup,
             SimDuration window) {
  HttpTestbed::Config cfg;
  cfg.profile = MachineProfile::PentiumII300();
  cfg.server.kind = HttpServerModel::ServerKind::kFlash;
  cfg.num_links = 3;
  cfg.clients_per_link = 512;  // open-loop slots; abandoned when overrun
  cfg.open_loop_conn_per_sec_per_link = conn_per_sec_per_link;
  cfg.server.max_connections = 96;  // listen backlog: shed excess SYNs early
  if (soft_polling) {
    SoftTimerNetPoller::Config pc;
    pc.governor.aggregation_quota = 5;
    pc.governor.min_interval_ticks = 10;
    pc.governor.max_interval_ticks = 4000;
    pc.governor.initial_interval_ticks = 50;
    cfg.polling = pc;
  }
  HttpTestbed bed(cfg);
  auto r = bed.Measure(warmup, window);
  return r.req_per_sec;
}

int Main(int argc, char** argv) {
  BenchOptions opt = ParseBenchOptions(argc, argv);
  SimDuration warmup = SimDuration::Millis(400);
  SimDuration window = SimDuration::Seconds(1.5 * opt.scale);

  PrintBanner("Receiver livelock under overload",
              "Section 6 (Mogul & Ramakrishnan comparison)");

  TextTable t({"Offered (conn/s)", "interrupts: goodput", "soft polling: goodput"});
  const double loads[] = {300, 500, 700, 1000, 1500, 2500, 4000};
  for (double per_link : loads) {
    double offered = 3 * per_link;
    double gi = RunAt(per_link, /*soft_polling=*/false, warmup, window);
    double gs = RunAt(per_link, /*soft_polling=*/true, warmup, window);
    t.AddRow({Fmt("%.0f", offered), Fmt("%.0f", gi), Fmt("%.0f", gs)});
  }
  t.Print();
  std::printf(
      "\nPast saturation the interrupt-driven server's goodput keeps eroding: every\n"
      "shed SYN still costs a full rx interrupt, so overload eats growing slices\n"
      "of the CPU. The polled server holds its capacity flat - excess packets die\n"
      "in the rx ring without costing a cycle while the CPU is busy. (Without the\n"
      "listen backlog, both curves collapse outright as work is wasted on\n"
      "connections that can never complete - set max_connections = 0 to see the\n"
      "classic full-livelock cliff.)\n");
  return 0;
}

}  // namespace
}  // namespace softtimer

int main(int argc, char** argv) { return softtimer::Main(argc, argv); }
