// Tables 6 and 7: rate-based clocking's effect on network performance over
// a high bandwidth-delay-product path.
//
// A server host transfers 5 / 100 / 1,000 / 10,000 / 100,000 packets of
// 1448 B over an emulated WAN (100 ms RTT; 50 or 100 Mbps bottleneck),
// either with regular TCP (slow start from one segment, FreeBSD-style
// delayed ACKs) or with rate-based clocking at the known bottleneck rate
// using soft timers (slow start skipped). Response time runs from the
// client's request to the arrival of the last byte. Paper headline: up to
// 89% lower response time for medium transfers, shrinking as the transfer
// grows.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/machine/kernel.h"
#include "src/net/wan_path.h"
#include "src/sim/simulator.h"
#include "src/tcp/tcp_receiver.h"
#include "src/tcp/tcp_sender.h"

namespace softtimer {
namespace {

struct RunOut {
  double response_ms = 0;
  double xput_mbps = 0;
};

RunOut RunTransfer(double bottleneck_bps, uint64_t packets, bool rate_based) {
  Simulator sim;

  Kernel::Config kc;
  kc.profile = MachineProfile::PentiumII300();
  // The sender is otherwise unloaded (Section 5.8): the idle loop supplies
  // the trigger states that dispatch pacing events.
  kc.idle_behavior = Kernel::IdleBehavior::kHaltPolicy;
  kc.idle_poll_fast_forward = true;
  Kernel kernel(&sim, kc);

  WanPath::Config wc;
  wc.bottleneck_bps = bottleneck_bps;
  wc.one_way_delay = SimDuration::Millis(50);
  WanPath wan(&sim, wc);

  TcpSender::Config sc;
  sc.mode = rate_based ? TcpSender::Mode::kRateBased : TcpSender::Mode::kSelfClocked;
  sc.initial_cwnd_segments = 1;  // FreeBSD 2.2.6 WAN behaviour
  // Tuned socket buffers (window scaling): the paper's regular-TCP
  // throughput of 81.37 Mbps on the 100 Mbps path is a ~1 MB receiver-window
  // limit over the 100 ms RTT.
  sc.rwnd_bytes = 1 << 20;
  // Pace at the known bottleneck capacity: one wire-sized packet per
  // serialization time (1500 B incl. headers).
  double wire_bits = (kDefaultMss + kTcpIpHeaderBytes) * 8.0;
  sc.pace_target_interval_ticks =
      static_cast<uint64_t>(wire_bits / bottleneck_bps * 1e6 + 0.5);
  sc.pace_min_burst_interval_ticks = sc.pace_target_interval_ticks;
  TcpSender sender(&kernel, sc);

  TcpReceiver::Config rc;
  TcpReceiver receiver(&sim, rc);

  sender.set_packet_sender([&](Packet p) { wan.forward().Send(p); });
  wan.forward().set_receiver([&](const Packet& p) { receiver.OnSegment(p); });
  receiver.set_ack_sender([&](Packet p) { wan.reverse().Send(p); });
  wan.reverse().set_receiver([&](const Packet& p) { sender.OnAck(p); });

  uint64_t total_bytes = packets * kDefaultMss;
  SimTime done_at;
  bool done = false;
  receiver.NotifyWhenReceived(total_bytes, [&] {
    done_at = sim.now();
    done = true;
  });

  // The request leaves the client at t=0 and reaches the server one one-way
  // delay later.
  sim.ScheduleAt(SimTime::Zero() + wc.one_way_delay,
                 [&] { sender.StartTransfer(total_bytes); });

  sim.RunUntil(SimTime::Zero() + SimDuration::Seconds(120));
  RunOut out;
  if (!done) {
    std::fprintf(stderr, "transfer did not complete!\n");
    return out;
  }
  out.response_ms = (done_at - SimTime::Zero()).ToMillis();
  out.xput_mbps = static_cast<double>(total_bytes) * 8.0 / (out.response_ms / 1e3) / 1e6;
  return out;
}

struct PaperRow {
  double reg_xput, reg_resp, rbc_xput, rbc_resp, reduction;
};

void RunTable(double bw_mbps, const PaperRow* paper) {
  std::printf("\nBottleneck = %.0f Mbps, RTT = 100 ms\n", bw_mbps);
  TextTable t({"Transfer (pkts)", "regular resp (ms)", "rate-based resp (ms)",
               "resp reduction (%)", "paper reduction (%)", "regular Mbps", "rate-based Mbps"});
  const uint64_t sizes[] = {5, 100, 1'000, 10'000, 100'000};
  for (size_t i = 0; i < 5; ++i) {
    RunOut reg = RunTransfer(bw_mbps * 1e6, sizes[i], /*rate_based=*/false);
    RunOut rbc = RunTransfer(bw_mbps * 1e6, sizes[i], /*rate_based=*/true);
    double red = 100.0 * (1.0 - rbc.response_ms / reg.response_ms);
    t.AddRow({Fmt("%llu", static_cast<unsigned long long>(sizes[i])),
              Fmt("%.1f (paper %.0f)", reg.response_ms, paper[i].reg_resp),
              Fmt("%.1f (paper %.1f)", rbc.response_ms, paper[i].rbc_resp),
              Fmt("%.0f", red), Fmt("%.0f", paper[i].reduction),
              Fmt("%.2f (paper %.2f)", reg.xput_mbps, paper[i].reg_xput),
              Fmt("%.2f (paper %.2f)", rbc.xput_mbps, paper[i].rbc_xput)});
  }
  t.Print();
}

int Main(int argc, char** argv) {
  (void)ParseBenchOptions(argc, argv);
  PrintBanner("Rate-based clocking: WAN network performance",
              "Tables 6 and 7, Section 5.8");

  const PaperRow paper50[] = {
      {0.12, 496, 0.57, 101.2, 79},   {1.01, 1145, 9.36, 123.7, 89},
      {6.75, 1714, 34.07, 340, 80},   {29.95, 3867, 46.33, 2500, 35},
      {45.54, 25432, 46.60, 24863, 2},
  };
  const PaperRow paper100[] = {
      {0.16, 350, 0.58, 100.6, 71},   {1.09, 1056, 10.34, 112, 89},
      {6.38, 1815, 51.94, 223, 87},   {38.46, 3012, 86.77, 1335, 55},
      {81.37, 14235, 91.92, 12601, 11},
  };
  RunTable(50, paper50);
  RunTable(100, paper100);
  return 0;
}

}  // namespace
}  // namespace softtimer

int main(int argc, char** argv) { return softtimer::Main(argc, argv); }
