// Microbenchmarks of the SoftTimerFacility hot paths (google-benchmark):
// the per-trigger-state check with nothing due (the cost the paper argues is
// negligible - "reading the clock and a comparison"), dispatching due
// events, and schedule/cancel round-trips.

#include <benchmark/benchmark.h>

#include "src/core/clock_source.h"
#include "src/core/soft_timer_facility.h"
#include "src/sim/simulator.h"

namespace softtimer {
namespace {

struct Env {
  Env() : clock(&sim, 1'000'000), facility(&clock, SoftTimerFacility::Config{}) {}
  Simulator sim;
  SimClockSource clock;
  SoftTimerFacility facility;
};

void BM_TriggerCheckEmpty(benchmark::State& state) {
  Env env;
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.facility.OnTriggerState(TriggerSource::kSyscall));
  }
}
BENCHMARK(BM_TriggerCheckEmpty);

void BM_TriggerCheckEventPendingFarOut(benchmark::State& state) {
  Env env;
  env.facility.ScheduleSoftEvent(1'000'000'000, [](const SoftTimerFacility::FireInfo&) {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.facility.OnTriggerState(TriggerSource::kSyscall));
  }
}
BENCHMARK(BM_TriggerCheckEventPendingFarOut);

void BM_ScheduleCancelRoundTrip(benchmark::State& state) {
  Env env;
  for (auto _ : state) {
    SoftEventId id =
        env.facility.ScheduleSoftEvent(1000, [](const SoftTimerFacility::FireInfo&) {});
    benchmark::DoNotOptimize(env.facility.CancelSoftEvent(id));
  }
}
BENCHMARK(BM_ScheduleCancelRoundTrip);

void BM_ScheduleDispatchCycle(benchmark::State& state) {
  Env env;
  uint64_t advance_ns = 2'000;  // 2 us of simulated time per cycle
  for (auto _ : state) {
    env.facility.ScheduleSoftEvent(1, [](const SoftTimerFacility::FireInfo&) {});
    env.sim.RunUntil(env.sim.now() + SimDuration::Nanos(static_cast<int64_t>(advance_ns)));
    benchmark::DoNotOptimize(env.facility.OnTriggerState(TriggerSource::kSyscall));
  }
}
BENCHMARK(BM_ScheduleDispatchCycle);

}  // namespace
}  // namespace softtimer

BENCHMARK_MAIN();
