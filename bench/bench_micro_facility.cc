// Microbenchmarks of the SoftTimerFacility hot paths (google-benchmark):
// the per-trigger-state check with nothing due (the cost the paper argues is
// negligible - "reading the clock and a comparison"), dispatching due
// events, and schedule/cancel round-trips. Every benchmark also reports
// "allocs/op" from the linked alloc probe (bench/alloc_probe.h): the
// schedule and nothing-due-check paths must stay at 0.
//
// Extra flags (consumed before google-benchmark sees the command line):
//
//   --hotpath-json=PATH   instead of running google-benchmark, measure the
//                         hot-path operations (schedule, cancel, nothing-due
//                         check, dispatch cycle, burst drains, and the
//                         update-heavy re-arm mix) across all five
//                         TimerQueue kinds and write machine-readable JSON
//                         (ns/op and allocs/op) to PATH, alongside the
//                         facility-level numbers recorded from the tree
//                         before the zero-allocation rework.
//   --hotpath-iters=N     iterations per measured operation (default 200000).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/alloc_probe.h"
#include "src/core/clock_source.h"
#include "src/core/soft_timer_facility.h"
#include "src/sim/simulator.h"

namespace softtimer {
namespace {

struct Env {
  explicit Env(TimerQueueKind kind = TimerQueueKind::kHashedWheel,
               uint32_t max_dispatches_per_clock_read = 0)
      : clock(&sim, 1'000'000),
        facility(&clock, MakeConfig(kind, max_dispatches_per_clock_read)) {}
  static SoftTimerFacility::Config MakeConfig(TimerQueueKind kind,
                                              uint32_t max_reads) {
    SoftTimerFacility::Config config;
    config.queue_kind = kind;
    if (max_reads > 0) {
      config.max_dispatches_per_clock_read = max_reads;
    }
    return config;
  }
  Simulator sim;
  SimClockSource clock;
  SoftTimerFacility facility;
};

// Attaches the alloc probe's delta as an "allocs/op" counter.
class AllocCounter {
 public:
  explicit AllocCounter(benchmark::State& state)
      : state_(state), start_(AllocProbeAllocCount()) {}
  ~AllocCounter() {
    state_.counters["allocs/op"] = benchmark::Counter(
        static_cast<double>(AllocProbeAllocCount() - start_) /
        static_cast<double>(state_.iterations()));
  }

 private:
  benchmark::State& state_;
  uint64_t start_;
};

void BM_TriggerCheckEmpty(benchmark::State& state) {
  Env env;
  AllocCounter allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.facility.OnTriggerState(TriggerSource::kSyscall));
  }
}
BENCHMARK(BM_TriggerCheckEmpty);

void BM_TriggerCheckEventPendingFarOut(benchmark::State& state) {
  Env env;
  env.facility.ScheduleSoftEvent(1'000'000'000, [](const SoftTimerFacility::FireInfo&) {});
  AllocCounter allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.facility.OnTriggerState(TriggerSource::kSyscall));
  }
}
BENCHMARK(BM_TriggerCheckEventPendingFarOut);

void BM_ScheduleCancelRoundTrip(benchmark::State& state) {
  Env env;
  AllocCounter allocs(state);
  for (auto _ : state) {
    SoftEventId id =
        env.facility.ScheduleSoftEvent(1000, [](const SoftTimerFacility::FireInfo&) {});
    benchmark::DoNotOptimize(env.facility.CancelSoftEvent(id));
  }
}
BENCHMARK(BM_ScheduleCancelRoundTrip);

void BM_ScheduleDispatchCycle(benchmark::State& state) {
  Env env;
  uint64_t advance_ns = 2'000;  // 2 us of simulated time per cycle
  AllocCounter allocs(state);
  for (auto _ : state) {
    env.facility.ScheduleSoftEvent(1, [](const SoftTimerFacility::FireInfo&) {});
    env.sim.RunUntil(env.sim.now() + SimDuration::Nanos(static_cast<int64_t>(advance_ns)));
    benchmark::DoNotOptimize(env.facility.OnTriggerState(TriggerSource::kSyscall));
  }
}
BENCHMARK(BM_ScheduleDispatchCycle);

// --- --hotpath-json harness -------------------------------------------

struct OpSample {
  double ns_per_op = 0;
  double allocs_per_op = 0;
};

struct HotpathSample {
  OpSample schedule;
  OpSample cancel;
  OpSample nothing_due_check;
  OpSample dispatch_cycle;
  // Batched drain with many events due at once, normalized per event:
  // one clock read per dispatched event (max_dispatches_per_clock_read=1)
  // vs the amortized default (one read per batch of 64).
  OpSample burst_dispatch_read_every_event;
  OpSample burst_dispatch_amortized_reads;
  // Re-arm churn over a pool of live events (the RTO-restart shape):
  // `update` is RescheduleSoftEvent (native in-place relink on the grouped
  // sorting queue, the inherited cancel+reschedule elsewhere);
  // `update_emulated` is the portable CancelSoftEvent+ScheduleSoftEvent
  // pair every pre-update caller had to write.
  OpSample update;
  OpSample update_emulated;
};

// Times `iters` runs of `body`, returning wall ns/op and probe allocs/op.
template <typename F>
OpSample Measure(size_t iters, F&& body) {
  uint64_t alloc_start = AllocProbeAllocCount();
  auto t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < iters; ++i) {
    body(i);
  }
  auto t1 = std::chrono::steady_clock::now();
  OpSample s;
  double total_ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  s.ns_per_op = total_ns / static_cast<double>(iters);
  s.allocs_per_op = static_cast<double>(AllocProbeAllocCount() - alloc_start) /
                    static_cast<double>(iters);
  return s;
}

HotpathSample MeasureHotpath(TimerQueueKind kind, size_t iters) {
  HotpathSample out;

  // Nothing-due trigger check: one far-out pending event, steady state.
  {
    Env env(kind);
    env.facility.ScheduleSoftEvent(1'000'000'000,
                                   [](const SoftTimerFacility::FireInfo&) {});
    for (size_t i = 0; i < 1000; ++i) {
      env.facility.OnTriggerState(TriggerSource::kSyscall);  // warmup
    }
    out.nothing_due_check = Measure(iters, [&](size_t) {
      benchmark::DoNotOptimize(env.facility.OnTriggerState(TriggerSource::kSyscall));
    });
  }

  // Schedule and cancel, measured separately over batches so each op is
  // timed in isolation. One untimed warmup round grows the slab and the
  // ids vector to their high-water marks first.
  {
    Env env(kind);
    constexpr size_t kBatch = 512;
    size_t rounds = iters / kBatch + 1;
    std::vector<SoftEventId> ids(kBatch);
    auto run_round = [&](bool timed) {
      auto sched = Measure(kBatch, [&](size_t i) {
        ids[i] = env.facility.ScheduleSoftEvent(
            1000 + i, [](const SoftTimerFacility::FireInfo&) {});
      });
      auto canc = Measure(kBatch, [&](size_t i) {
        benchmark::DoNotOptimize(env.facility.CancelSoftEvent(ids[i]));
      });
      if (timed) {
        out.schedule.ns_per_op += sched.ns_per_op;
        out.schedule.allocs_per_op += sched.allocs_per_op;
        out.cancel.ns_per_op += canc.ns_per_op;
        out.cancel.allocs_per_op += canc.allocs_per_op;
      }
    };
    run_round(false);
    for (size_t r = 0; r < rounds; ++r) {
      run_round(true);
    }
    out.schedule.ns_per_op /= static_cast<double>(rounds);
    out.schedule.allocs_per_op /= static_cast<double>(rounds);
    out.cancel.ns_per_op /= static_cast<double>(rounds);
    out.cancel.allocs_per_op /= static_cast<double>(rounds);
  }

  // Full schedule -> clock advance -> dispatch cycle.
  {
    Env env(kind);
    auto cycle = [&](size_t) {
      env.facility.ScheduleSoftEvent(1, [](const SoftTimerFacility::FireInfo&) {});
      env.sim.RunUntil(env.sim.now() + SimDuration::Nanos(2'000));
      benchmark::DoNotOptimize(env.facility.OnTriggerState(TriggerSource::kSyscall));
    };
    for (size_t i = 0; i < 1000; ++i) {
      cycle(i);  // warmup
    }
    out.dispatch_cycle = Measure(iters, cycle);
  }

  // Burst dispatch: 128 events all due at the same trigger state, the shape
  // a pacing-wheel drain or an ack storm produces. Normalized per event, so
  // the delta against dispatch_cycle is the marginal cost of one extra due
  // event, and the 1-vs-64 max_dispatches_per_clock_read split isolates
  // what the amortized batch clock read saves.
  constexpr size_t kBurst = 128;
  auto measure_burst = [&](uint32_t max_reads) {
    Env env(kind, max_reads);
    auto round = [&](size_t) {
      for (size_t e = 0; e < kBurst; ++e) {
        env.facility.ScheduleSoftEvent(1, [](const SoftTimerFacility::FireInfo&) {});
      }
      env.sim.RunUntil(env.sim.now() + SimDuration::Nanos(2'000));
      benchmark::DoNotOptimize(env.facility.OnTriggerState(TriggerSource::kSyscall));
    };
    for (size_t i = 0; i < 64; ++i) {
      round(i);  // warmup
    }
    size_t rounds = iters / kBurst > 0 ? iters / kBurst : 1;
    OpSample s = Measure(rounds, round);
    s.ns_per_op /= static_cast<double>(kBurst);
    s.allocs_per_op /= static_cast<double>(kBurst);
    return s;
  };
  out.burst_dispatch_read_every_event = measure_burst(1);
  out.burst_dispatch_amortized_reads = measure_burst(64);

  // Update-heavy mix: a pool of live far-out events whose deadlines keep
  // moving, one re-arm per measured op. The pool never drains, so this is
  // pure relink cost - the dominant write pattern of an RTO engine
  // restarting survivor timers on every partial ACK.
  constexpr size_t kPool = 4096;
  auto measure_rearm = [&](bool native) {
    Env env(kind);
    std::vector<SoftEventId> ids(kPool);
    for (size_t i = 0; i < kPool; ++i) {
      ids[i] = env.facility.ScheduleSoftEvent(
          1'000'000 + i, [](const SoftTimerFacility::FireInfo&) {});
    }
    auto rearm = [&](size_t i) {
      size_t slot = i % kPool;
      uint64_t delta = 1'000'000 + ((i * 7) & 4095);
      if (native) {
        ids[slot] = env.facility.RescheduleSoftEvent(ids[slot], delta);
      } else {
        env.facility.CancelSoftEvent(ids[slot]);
        ids[slot] = env.facility.ScheduleSoftEvent(
            delta, [](const SoftTimerFacility::FireInfo&) {});
      }
    };
    for (size_t i = 0; i < kPool; ++i) {
      rearm(i);  // warmup: slab and (heap backend) entry vector high-water
    }
    return Measure(iters, rearm);
  };
  out.update = measure_rearm(true);
  out.update_emulated = measure_rearm(false);

  return out;
}

void WriteOp(FILE* f, const char* name, const OpSample& s, const char* trailer) {
  std::fprintf(f,
               "      \"%s_ns\": %.2f,\n"
               "      \"%s_allocs_per_op\": %.3f%s\n",
               name, s.ns_per_op, name, s.allocs_per_op, trailer);
}

int WriteHotpathJson(const std::string& path, size_t iters) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"schema\": \"softtimer-hotpath-v1\",\n");
  std::fprintf(f,
               "  \"note\": \"facility-level hot-path costs; sim clock at 1 MHz; "
               "ns/op is wall time on the build machine, allocs/op from the "
               "operator-new probe; burst_dispatch_* is a 128-due-event drain "
               "normalized per event, with one clock read per event vs the "
               "amortized default (one per 64 dispatches); update is one "
               "RescheduleSoftEvent over a 4096-event live pool, "
               "update_emulated the equivalent cancel+schedule pair\",\n");
  // Facility-level numbers measured on this machine immediately before the
  // typed-node / slab / fast-gate rework (default hashed-wheel queue), kept
  // for comparison: the nothing-due check must stay >= 2x faster than this.
  std::fprintf(f,
               "  \"baseline_pre_pr\": {\n"
               "    \"queue\": \"hashed-wheel\",\n"
               "    \"trigger_check_empty_ns\": 10.5,\n"
               "    \"trigger_check_nothing_due_ns\": 10.8,\n"
               "    \"schedule_cancel_pair_ns\": 127.0,\n"
               "    \"schedule_cancel_pair_allocs_per_op\": 2.000,\n"
               "    \"schedule_dispatch_cycle_ns\": 204.0,\n"
               "    \"schedule_dispatch_cycle_allocs_per_op\": 3.005,\n"
               "    \"trigger_check_nothing_due_allocs_per_op\": 0.000\n"
               "  },\n");
  std::fprintf(f, "  \"current\": {\n");
  const TimerQueueKind kKinds[] = {
      TimerQueueKind::kHeap, TimerQueueKind::kHashedWheel,
      TimerQueueKind::kHierarchicalWheel, TimerQueueKind::kCalloutList,
      TimerQueueKind::kGroupedSorting};
  constexpr size_t kNumKinds = sizeof(kKinds) / sizeof(kKinds[0]);
  for (size_t k = 0; k < kNumKinds; ++k) {
    HotpathSample s = MeasureHotpath(kKinds[k], iters);
    std::fprintf(f, "    \"%s\": {\n", TimerQueueKindName(kKinds[k]));
    WriteOp(f, "schedule", s.schedule, ",");
    WriteOp(f, "cancel", s.cancel, ",");
    WriteOp(f, "nothing_due_check", s.nothing_due_check, ",");
    WriteOp(f, "dispatch_cycle", s.dispatch_cycle, ",");
    WriteOp(f, "burst_dispatch_read_every_event",
            s.burst_dispatch_read_every_event, ",");
    WriteOp(f, "burst_dispatch_amortized_reads",
            s.burst_dispatch_amortized_reads, ",");
    WriteOp(f, "update", s.update, ",");
    WriteOp(f, "update_emulated", s.update_emulated, "");
    std::fprintf(f, "    }%s\n", k + 1 < kNumKinds ? "," : "");
    std::printf("%-12s schedule %6.1f ns  cancel %6.1f ns  nothing-due %5.2f ns "
                "(allocs/op %.3f)  dispatch-cycle %6.1f ns  "
                "burst/event %5.1f -> %5.1f ns  "
                "update %5.1f ns vs pair %5.1f ns\n",
                TimerQueueKindName(kKinds[k]), s.schedule.ns_per_op,
                s.cancel.ns_per_op, s.nothing_due_check.ns_per_op,
                s.nothing_due_check.allocs_per_op, s.dispatch_cycle.ns_per_op,
                s.burst_dispatch_read_every_event.ns_per_op,
                s.burst_dispatch_amortized_reads.ns_per_op,
                s.update.ns_per_op, s.update_emulated.ns_per_op);
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace softtimer

int main(int argc, char** argv) {
  std::string json_path;
  size_t iters = 200'000;
  // Strip our flags before google-benchmark (which rejects unknown ones).
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--hotpath-json=", 15) == 0) {
      json_path = argv[i] + 15;
    } else if (std::strncmp(argv[i], "--hotpath-iters=", 16) == 0) {
      iters = static_cast<size_t>(std::strtoull(argv[i] + 16, nullptr, 10));
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) {
    return softtimer::WriteHotpathJson(json_path, iters == 0 ? 1 : iters);
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
