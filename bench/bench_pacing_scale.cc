// Pacing-wheel scale benchmark: the PR-headline claim that per-packet
// pacing cost stays flat from 1k to 1M concurrent paced flows. The
// per-flow soft-event design of Section 4.1 pays one ScheduleSoftEvent and
// one timer dispatch per packet, so its cost per packet grows with the
// timer population; the wheel's drain is a dense slot sweep whose cost per
// packet is a slot-vector append plus a batch append regardless of how
// many other flows are queued.
//
// Methodology (same discipline as bench_shard_scaling): virtual pacing
// time is a manual tick counter advanced one quantum (plus a little
// deterministic jitter, so drains land late the way real trigger states
// do) per drain round -- the wheel never sees wall time. Cost is real CPU
// time of the driving thread (CLOCK_THREAD_CPUTIME_ID) divided by packets
// granted. The alloc probe counts operator-new calls across the measured
// phase: steady state must stay at zero.
//
// Flags:
//   --json=PATH   write the JSON report (schema softtimer-pacing-v1)
//   --smoke       run the 1k/10k points only, with shorter phases
//   --flows=N     run a single extra flow-count point
//
// Full run writes BENCH_pacing.json for the repo root (see EXPERIMENTS.md).

#include <time.h>

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/alloc_probe.h"
#include "src/pacing/pacing_wheel.h"
#include "src/sim/random.h"

namespace softtimer {
namespace {

uint64_t ThreadCpuNs() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

// Counts grants; deliberately does no per-packet work, so the number is the
// wheel's own cost, not the sink's.
class CountingSink : public PacingWheel::BatchSink {
 public:
  void OnPacedBatch(const PacedEmit* batch, size_t count, uint64_t) override {
    for (size_t i = 0; i < count; ++i) {
      packets += batch[i].packets;
    }
    ++flushes;
  }
  uint64_t packets = 0;
  uint64_t flushes = 0;
};

// Heterogeneous interval mix cycling eight octaves, 64..8192 ticks
// (64 us .. ~8 ms at a 1 MHz measurement clock): fast flows dominate the
// packet count, slow flows dominate the resident wheel population.
constexpr uint64_t kIntervals[] = {64, 128, 256, 512, 1024, 2048, 4096, 8192};
constexpr size_t kIntervalCount = sizeof(kIntervals) / sizeof(kIntervals[0]);

struct PointResult {
  size_t flows = 0;
  uint64_t packets = 0;
  uint64_t drains = 0;
  uint64_t cpu_ns = 0;
  uint64_t allocs = 0;
  uint64_t virtual_ticks = 0;
  double expected_packets = 0;
  double ns_per_packet() const {
    return packets == 0 ? 0.0
                        : static_cast<double>(cpu_ns) / static_cast<double>(packets);
  }
  double allocs_per_packet() const {
    return packets == 0 ? 0.0
                        : static_cast<double>(allocs) / static_cast<double>(packets);
  }
  double rate_accuracy() const {
    return expected_packets == 0
               ? 1.0
               : static_cast<double>(packets) / expected_packets;
  }
};

PointResult RunPoint(size_t flows, uint64_t measure_ticks) {
  PacingWheel::Config wc;
  wc.quantum_ticks = 8;
  wc.num_slots = 4096;  // horizon 32768 ticks: covers the 8192 mix
  PacingWheel wheel(wc);
  CountingSink sink;
  Rng rng(0x9e3779b9u ^ static_cast<uint64_t>(flows));

  std::vector<PacedFlowId> ids;
  ids.reserve(flows);
  for (size_t i = 0; i < flows; ++i) {
    uint64_t interval = kIntervals[i % kIntervalCount];
    PacedFlowConfig fc;
    fc.target_interval_ticks = interval;
    fc.min_burst_interval_ticks = interval / 2;
    fc.max_coalesced_burst_packets = 4;
    PacedFlowId id = wheel.AddFlow(fc);
    ids.push_back(id);
    // Stagger starts across one interval so a class does not arrive as a
    // single thundering slot.
    wheel.Activate(id, /*now_tick=*/0,
                   /*initial_delay_ticks=*/rng.UniformU64(interval));
  }

  uint64_t now = 0;
  auto spin = [&](uint64_t ticks) {
    uint64_t end = now + ticks;
    while (now < end) {
      // Drains land one quantum apart give or take the jitter of a real
      // trigger-state arrival; the wheel reads this "clock" exactly once
      // per drain.
      now += wc.quantum_ticks + rng.UniformU64(wc.quantum_ticks / 2);
      wheel.Drain(now, &sink);
    }
  };

  // Warmup: two full wheel laps, so every slot has been touched and the
  // slot vectors, drain scratch, and emit batch are at their high-water
  // marks. Allocations after this are amortized-zero: jittered drains
  // occasionally sweep two quantum slots at once, merging same-interval
  // flows into a shared future slot, so per-slot occupancy records still
  // break (and double a vector) at a slowly decaying rate.
  spin(2 * wc.quantum_ticks * wc.num_slots);

  // Best-of-N timing: the per-point CPU window is short enough (tens of ms
  // at the small points) that scheduler preemption or a frequency dip can
  // inflate a single shot by 1.5x. Each rep measures an identical
  // steady-state window; take the minimum time (the least-perturbed run)
  // and the MAXIMUM allocation count (the alloc gate must hold for every
  // rep, not just the lucky one).
  constexpr int kMeasureReps = 3;
  PointResult best;
  uint64_t worst_allocs = 0;
  for (int rep = 0; rep < kMeasureReps; ++rep) {
    PointResult r;
    r.flows = flows;
    uint64_t packets0 = sink.packets;
    uint64_t drains0 = wheel.stats().drains;
    uint64_t allocs0 = AllocProbeAllocCount();
    uint64_t t0 = ThreadCpuNs();
    uint64_t now0 = now;
    spin(measure_ticks);
    r.cpu_ns = ThreadCpuNs() - t0;
    r.allocs = AllocProbeAllocCount() - allocs0;
    r.packets = sink.packets - packets0;
    r.drains = wheel.stats().drains - drains0;
    r.virtual_ticks = now - now0;
    for (size_t i = 0; i < flows; ++i) {
      r.expected_packets += static_cast<double>(r.virtual_ticks) /
                            static_cast<double>(kIntervals[i % kIntervalCount]);
    }
    worst_allocs = r.allocs > worst_allocs ? r.allocs : worst_allocs;
    if (rep == 0 || r.ns_per_packet() < best.ns_per_packet()) {
      best = r;
    }
  }
  best.allocs = worst_allocs;
  return best;
}

int Run(const std::string& json_path, bool smoke, size_t extra_flows) {
  std::vector<size_t> points;
  if (smoke) {
    points = {1'000, 10'000};
  } else {
    points = {1'000, 10'000, 100'000, 1'000'000};
  }
  if (extra_flows > 0) {
    points.push_back(extra_flows);
  }

  std::vector<PointResult> results;
  for (size_t flows : points) {
    // Measure at least one full wheel lap, and extend the virtual span at
    // the small points so every point measures a comparable PACKET count:
    // per-packet cost at 1k flows over a single lap is a ~5 ms CPU window,
    // which scheduler noise can swing by 1.5x, and the flatness ratio
    // divides by it. Rate accuracy normalizes by each point's own virtual
    // span, so unequal spans stay comparable.
    uint64_t measure_ticks = 32'768;
    if (flows < 100'000) {
      measure_ticks *= 100'000 / flows;
    }
    PointResult r = RunPoint(flows, measure_ticks);
    results.push_back(r);
    std::printf(
        "flows %8zu  packets %10" PRIu64 "  %6.1f ns/packet  "
        "allocs/packet %.6f  rate accuracy %.4f  (%" PRIu64 " drains)\n",
        r.flows, r.packets, r.ns_per_packet(), r.allocs_per_packet(),
        r.rate_accuracy(), r.drains);
  }

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"schema\": \"softtimer-pacing-v1\",\n");
    std::fprintf(f,
                 "  \"note\": \"PacingWheel drain cost vs concurrent flow "
                 "count; quantum 8 ticks, 4096 slots, interval mix 64..8192 "
                 "ticks, min_burst=interval/2, coalesce cap 4; ns/packet is "
                 "thread CPU time (CLOCK_THREAD_CPUTIME_ID) over packets "
                 "granted (best of 3 identical windows), allocs from the "
                 "operator-new probe (worst of 3), rate_accuracy is packets "
                 "granted over the mix's ideal packet count for the measured "
                 "virtual span\",\n");
    std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(f, "  \"points\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
      const PointResult& r = results[i];
      std::fprintf(f,
                   "    {\"flows\": %zu, \"packets\": %" PRIu64
                   ", \"drains\": %" PRIu64 ", \"virtual_ticks\": %" PRIu64
                   ", \"cpu_ns\": %" PRIu64
                   ", \"ns_per_packet\": %.2f, \"allocs_per_packet\": %.6f, "
                   "\"rate_accuracy\": %.4f}%s\n",
                   r.flows, r.packets, r.drains, r.virtual_ticks, r.cpu_ns,
                   r.ns_per_packet(), r.allocs_per_packet(), r.rate_accuracy(),
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    double first = results.front().ns_per_packet();
    double last = results.back().ns_per_packet();
    std::fprintf(f, "  \"flatness_ratio_last_over_first\": %.3f\n",
                 first > 0 ? last / first : 0.0);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  // Self-check the acceptance gates so the smoke entry fails loudly in CI
  // instead of silently writing a regressed artifact.
  int rc = 0;
  for (const PointResult& r : results) {
    if (r.rate_accuracy() < 0.95 || r.rate_accuracy() > 1.05) {
      std::fprintf(stderr,
                   "FAIL: flows %zu achieved/expected packets %.4f outside "
                   "[0.95, 1.05]\n",
                   r.flows, r.rate_accuracy());
      rc = 1;
    }
    if (r.allocs_per_packet() > 0.001) {
      // Steady state must amortize to zero; a fraction above this gate
      // means a per-packet allocation crept into the drain path.
      std::fprintf(stderr, "FAIL: flows %zu allocs/packet %.6f > 0.001\n",
                   r.flows, r.allocs_per_packet());
      rc = 1;
    }
  }
  return rc;
}

}  // namespace
}  // namespace softtimer

int main(int argc, char** argv) {
  std::string json_path;
  bool smoke = false;
  size_t extra_flows = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--flows=", 8) == 0) {
      extra_flows = static_cast<size_t>(std::strtoull(argv[i] + 8, nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  return softtimer::Run(json_path, smoke, extra_flows);
}
