// Figures 2 and 3: base overhead of hardware interrupt timers.
//
// The Apache testbed is saturated while an additional hardware timer fires a
// null handler at 0..100 kHz. Figure 2 plots throughput vs frequency;
// Figure 3 the percentage reduction. The paper's headline: overhead grows
// linearly and reaches ~45% at 100 kHz, i.e. ~4.45 us per interrupt on the
// 300 MHz Pentium II. The same sweep on the PIII-500 Xeon and Alpha 21164
// profiles reproduces Section 5.1's per-interrupt overheads (4.36 us and
// 8.64 us).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/httpsim/http_testbed.h"

namespace softtimer {
namespace {

struct Sweep {
  MachineProfile profile;
  double paper_per_interrupt_us;
};

void RunSweep(const Sweep& sweep, SimDuration warmup, SimDuration window) {
  std::printf("\nMachine: %s (paper: %.2f us per interrupt)\n", sweep.profile.name.c_str(),
              sweep.paper_per_interrupt_us);
  TextTable table({"Freq(kHz)", "Xput(conn/s)", "Overhead(%)", "us/interrupt"});

  double base = 0;
  const uint64_t freqs[] = {0, 10'000, 20'000, 40'000, 60'000, 80'000, 100'000};
  for (uint64_t f : freqs) {
    HttpTestbed::Config cfg;
    cfg.profile = sweep.profile;
    cfg.server.kind = HttpServerModel::ServerKind::kApache;
    HttpTestbed bed(cfg);
    if (f > 0) {
      // Null handler: isolate the cost of the timer facility alone.
      bed.kernel().AddPeriodicHardwareTimer(f, SimDuration::Zero());
    }
    HttpTestbed::RunResult r = bed.Measure(warmup, window);
    if (f == 0) {
      base = r.conn_per_sec;
      table.AddRow({"0", Fmt("%.0f", r.conn_per_sec), "0.0", "-"});
      continue;
    }
    double overhead = 100.0 * (1.0 - r.conn_per_sec / base);
    // overhead% = freq * per_interrupt_cost => cost = overhead / freq.
    double per_intr_us = overhead / 100.0 / static_cast<double>(f) * 1e6;
    table.AddRow({Fmt("%.0f", static_cast<double>(f) / 1000.0), Fmt("%.0f", r.conn_per_sec),
                  Fmt("%.1f", overhead), Fmt("%.2f", per_intr_us)});
  }
  table.Print();
}

int Main(int argc, char** argv) {
  BenchOptions opt = ParseBenchOptions(argc, argv);
  SimDuration warmup = SimDuration::Millis(300);
  SimDuration window = SimDuration::Seconds(2.0 * opt.scale);

  PrintBanner("Hardware interrupt timer overhead vs frequency", "Figures 2 and 3, Section 5.1");
  std::printf("Paper: throughput falls ~linearly, ~45%% overhead at 100 kHz on the PII-300.\n");

  RunSweep({MachineProfile::PentiumII300(), 4.45}, warmup, window);
  if (opt.scale >= 1.0) {
    RunSweep({MachineProfile::PentiumIII500Xeon(), 4.36}, warmup, window);
    RunSweep({MachineProfile::Alpha21164_500(), 8.64}, warmup, window);
  }
  return 0;
}

}  // namespace
}  // namespace softtimer

int main(int argc, char** argv) { return softtimer::Main(argc, argv); }
