// Shared helpers for the reproduction benchmarks: fixed-width table printing
// in the style of the paper's tables, paper-vs-measured annotation, and a
// tiny command-line parser (--fast / --full / --seconds=N) so the default
// `for b in build/bench/*; do $b; done` sweep stays quick while full-fidelity
// runs remain one flag away.

#ifndef SOFTTIMER_BENCH_BENCH_UTIL_H_
#define SOFTTIMER_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace softtimer {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// printf-style float formatting into std::string.
std::string Fmt(const char* fmt, ...);

// Benchmark scale options.
struct BenchOptions {
  // Multiplier on run lengths / sample targets. --fast = 0.3, --full = 4.0.
  double scale = 1.0;
  bool full = false;
  // --dump-dir=PATH: benches with plottable outputs write CSVs there.
  std::string dump_dir;
  // --json=PATH: benches with machine-readable reports write JSON there.
  std::string json_path;
};

BenchOptions ParseBenchOptions(int argc, char** argv);

// Standard banner naming the experiment and the paper artifact it
// regenerates.
void PrintBanner(const std::string& title, const std::string& paper_ref);

}  // namespace softtimer

#endif  // SOFTTIMER_BENCH_BENCH_UTIL_H_
