// Shard-scaling benchmark for ShardedSoftTimerRuntime: schedule+dispatch
// throughput at 1/2/4/8 shard threads, steady-state allocations per op, and
// cross-core scheduling costs. Writes machine-readable JSON (BENCH_shard.json
// schema) with --json=PATH.
//
// Methodology note (recorded in the JSON too): CI containers for this repo
// often pin the build to a single CPU, where wall-clock throughput cannot
// scale no matter how good the software is. Each worker therefore measures
// its own CPU time (CLOCK_THREAD_CPUTIME_ID) per operation - the honest
// scalability signal: software serialization (a shared lock, cache-line
// ping-pong) shows up as CPU ns/op growing with the thread count, while a
// contention-free design keeps it flat. The derived throughput for N threads
// is N / cpu_ns_per_op (what N real cores would sustain); wall metrics are
// reported alongside for machines with enough cores to check directly.
//
// Flags:
//   --json=PATH   write the JSON report to PATH
//   --scale=F     scale op counts by F (bench-smoke uses 0.01)

#include <pthread.h>
#include <time.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/alloc_probe.h"
#include "src/core/sharded_soft_timer_runtime.h"
#include "src/rt/monotonic_clock_source.h"

namespace softtimer {
namespace {

uint64_t ThreadCpuNs() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

// Spin barrier: keeps the measurement phases aligned across workers without
// futex sleeps distorting per-thread CPU time at the boundaries.
class SpinBarrier {
 public:
  explicit SpinBarrier(size_t parties) : parties_(parties) {}
  void Arrive() {
    uint64_t phase = phase_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      phase_.fetch_add(1, std::memory_order_release);
    } else {
      while (phase_.load(std::memory_order_acquire) == phase) {
        std::this_thread::yield();
      }
    }
  }

 private:
  const size_t parties_;
  std::atomic<size_t> arrived_{0};
  std::atomic<uint64_t> phase_{0};
};

struct ThreadResult {
  uint64_t ops = 0;
  uint64_t dispatched = 0;
  uint64_t cpu_ns = 0;
};

struct ScalePoint {
  size_t threads = 0;
  uint64_t total_ops = 0;
  double wall_s = 0;
  double wall_ns_per_op = 0;       // aggregate: wall / total ops
  double cpu_ns_per_op_mean = 0;   // mean over threads of cpu_ns / ops
  double cpu_ns_per_op_max = 0;    // slowest thread (the scaling limiter)
  double allocs_per_op = 0;        // global probe delta across the phase
  double derived_throughput_mops = 0;  // threads / cpu_ns_per_op_mean * 1e3
};

// Each worker owns one shard and runs local schedule -> trigger-check cycles.
// 1 GHz measurement clock so a 1-tick delay is due by the next check and
// every cycle dispatches (no idle clock-waiting in the measured loop).
ScalePoint RunLocalScaling(size_t threads, uint64_t ops_per_thread) {
  MonotonicClockSource clock(1'000'000'000);
  ShardedSoftTimerRuntime::Config cfg;
  cfg.num_shards = threads;
  cfg.facility.interrupt_clock_hz = 1'000;
  // Heap backend: check cost is independent of how many ticks elapsed, which
  // matters at 1 GHz where a wheel would walk thousands of empty slots per
  // check (this bench measures the runtime, not wheel-advance amortization).
  cfg.facility.queue_kind = TimerQueueKind::kHeap;
  ShardedSoftTimerRuntime rt(&clock, cfg);

  SpinBarrier barrier(threads + 1);
  std::vector<ThreadResult> results(threads);
  std::vector<std::thread> workers;
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ThreadResult& r = results[t];
      auto* dispatched = &r.dispatched;
      auto handler = [dispatched](const SoftTimerFacility::FireInfo&) {
        ++*dispatched;
      };
      auto cycle = [&] {
        rt.ScheduleOnShard(t, 1, handler);
        rt.OnTriggerState(t, TriggerSource::kSyscall);
      };
      for (uint64_t i = 0; i < 2'000; ++i) {
        cycle();  // warmup: slab + wheel to high-water mark
      }
      barrier.Arrive();  // [1] warmup done everywhere
      barrier.Arrive();  // [2] alloc snapshot taken; measurement begins
      uint64_t cpu0 = ThreadCpuNs();
      for (uint64_t i = 0; i < ops_per_thread; ++i) {
        cycle();
      }
      // Flush stragglers (a cycle's event can slip to the next check).
      rt.OnTriggerState(t, TriggerSource::kSyscall);
      r.cpu_ns = ThreadCpuNs() - cpu0;
      r.ops = ops_per_thread;
      barrier.Arrive();  // [3] measurement done
    });
  }

  barrier.Arrive();  // [1]
  uint64_t alloc0 = AllocProbeAllocCount();
  auto wall0 = std::chrono::steady_clock::now();
  barrier.Arrive();  // [2]
  barrier.Arrive();  // [3]
  auto wall1 = std::chrono::steady_clock::now();
  uint64_t alloc1 = AllocProbeAllocCount();
  for (auto& w : workers) {
    w.join();
  }

  ScalePoint p;
  p.threads = threads;
  double cpu_sum = 0;
  for (const ThreadResult& r : results) {
    p.total_ops += r.ops;
    double per_op = static_cast<double>(r.cpu_ns) / static_cast<double>(r.ops);
    cpu_sum += per_op;
    p.cpu_ns_per_op_max = std::max(p.cpu_ns_per_op_max, per_op);
  }
  p.cpu_ns_per_op_mean = cpu_sum / static_cast<double>(threads);
  p.wall_s = std::chrono::duration<double>(wall1 - wall0).count();
  p.wall_ns_per_op = p.wall_s * 1e9 / static_cast<double>(p.total_ops);
  p.allocs_per_op = static_cast<double>(alloc1 - alloc0) /
                    static_cast<double>(p.total_ops);
  p.derived_throughput_mops =
      static_cast<double>(threads) / p.cpu_ns_per_op_mean * 1e3;
  return p;
}

struct CrossCoreResult {
  double push_ns_per_op = 0;       // producer-side SPSC push + publish
  double push_allocs_per_op = 0;
  double apply_ns_per_op = 0;      // owner-side drain + schedule + dispatch
  double latency_p50_us = 0;       // publish -> handler, across threads
  double latency_p99_us = 0;
};

// Producer-side cost, single-threaded: push a ring-full, drain as the owner,
// repeat. Separates the costs from scheduler noise.
void MeasureCrossCoreCosts(CrossCoreResult* out, double scale) {
  MonotonicClockSource clock(1'000'000'000);
  ShardedSoftTimerRuntime::Config cfg;
  cfg.num_shards = 1;
  cfg.ring_capacity = 1024;
  cfg.facility.queue_kind = TimerQueueKind::kHeap;
  ShardedSoftTimerRuntime rt(&clock, cfg);
  auto token = rt.RegisterProducer();
  uint64_t fired = 0;
  auto* fired_p = &fired;
  auto handler = [fired_p](const SoftTimerFacility::FireInfo&) { ++*fired_p; };

  size_t rounds = std::max<size_t>(1, static_cast<size_t>(200 * scale));
  constexpr size_t kBatch = 1024;
  // Warmup round materializes slab, remote-id table, and ring slots.
  for (size_t i = 0; i < kBatch; ++i) {
    rt.ScheduleCrossCore(token, 0, 0, handler);
  }
  rt.OnTriggerState(0, TriggerSource::kSyscall);
  rt.OnTriggerState(0, TriggerSource::kSyscall);

  uint64_t push_ns = 0, apply_ns = 0, pushes = 0;
  uint64_t alloc0 = AllocProbeAllocCount();
  for (size_t r = 0; r < rounds; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < kBatch; ++i) {
      rt.ScheduleCrossCore(token, 0, 0, handler);
    }
    auto t1 = std::chrono::steady_clock::now();
    // Two checks: the first drains and fires everything already past its
    // clamped deadline, the second catches the tail.
    rt.OnTriggerState(0, TriggerSource::kSyscall);
    rt.OnTriggerState(0, TriggerSource::kSyscall);
    auto t2 = std::chrono::steady_clock::now();
    push_ns += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    apply_ns += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t2 - t1).count());
    pushes += kBatch;
  }
  uint64_t alloc1 = AllocProbeAllocCount();
  out->push_ns_per_op = static_cast<double>(push_ns) / static_cast<double>(pushes);
  out->apply_ns_per_op = static_cast<double>(apply_ns) / static_cast<double>(pushes);
  out->push_allocs_per_op =
      static_cast<double>(alloc1 - alloc0) / static_cast<double>(pushes);
}

// End-to-end publish -> dispatch latency with a busy-polling owner thread.
void MeasureCrossCoreLatency(CrossCoreResult* out, double scale) {
  MonotonicClockSource clock(1'000'000'000);
  ShardedSoftTimerRuntime::Config cfg;
  cfg.num_shards = 1;
  cfg.facility.queue_kind = TimerQueueKind::kHeap;
  ShardedSoftTimerRuntime rt(&clock, cfg);
  auto token = rt.RegisterProducer();

  std::atomic<bool> stop{false};
  std::thread owner([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      rt.OnTriggerState(0, TriggerSource::kIdleLoop);
    }
  });

  // The handler stamps the dispatch tick itself (1 GHz clock: 1 tick = 1 ns)
  // and the producer SLEEPS between samples instead of spinning, so on hosts
  // with fewer cores than threads the owner still gets the CPU immediately
  // and the sample measures publish -> dispatch, not a scheduler quantum.
  size_t samples = std::max<size_t>(50, static_cast<size_t>(2'000 * scale));
  std::vector<double> latency_us;
  latency_us.reserve(samples);
  std::atomic<uint64_t> fired_at{0};
  for (size_t i = 0; i < samples; ++i) {
    fired_at.store(0, std::memory_order_relaxed);
    auto* slot = &fired_at;
    uint64_t t0 = clock.NowTicks();
    SoftEventId id = rt.ScheduleCrossCore(
        token, 0, 0, [slot](const SoftTimerFacility::FireInfo& info) {
          slot->store(info.fired_tick, std::memory_order_release);
        });
    if (!id.valid()) {
      continue;  // ring full (owner starved): skip the sample
    }
    auto wait_deadline = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(100);
    while (fired_at.load(std::memory_order_acquire) == 0 &&
           std::chrono::steady_clock::now() < wait_deadline) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    uint64_t fired = fired_at.load(std::memory_order_acquire);
    if (fired != 0) {
      latency_us.push_back(static_cast<double>(fired - t0) / 1e3);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  owner.join();

  std::sort(latency_us.begin(), latency_us.end());
  if (!latency_us.empty()) {
    out->latency_p50_us = latency_us[latency_us.size() / 2];
    out->latency_p99_us = latency_us[latency_us.size() * 99 / 100];
  }
}

int Run(const std::string& json_path, double scale) {
  const size_t kThreadCounts[] = {1, 2, 4, 8};
  uint64_t ops = static_cast<uint64_t>(1'000'000 * scale);
  ops = std::max<uint64_t>(ops, 10'000);

  std::vector<ScalePoint> points;
  for (size_t threads : kThreadCounts) {
    points.push_back(RunLocalScaling(threads, ops));
    const ScalePoint& p = points.back();
    std::printf(
        "threads=%zu  cpu %6.1f ns/op (max %6.1f)  wall %7.1f ns/op agg  "
        "allocs/op %.4f  derived %7.2f Mops/s\n",
        p.threads, p.cpu_ns_per_op_mean, p.cpu_ns_per_op_max, p.wall_ns_per_op,
        p.allocs_per_op, p.derived_throughput_mops);
  }

  CrossCoreResult cross;
  MeasureCrossCoreCosts(&cross, scale);
  MeasureCrossCoreLatency(&cross, scale);
  std::printf(
      "cross-core: push %5.1f ns/op (allocs/op %.4f)  apply %6.1f ns/op  "
      "latency p50 %.2f us  p99 %.2f us\n",
      cross.push_ns_per_op, cross.push_allocs_per_op, cross.apply_ns_per_op,
      cross.latency_p50_us, cross.latency_p99_us);

  const ScalePoint& base = points[0];
  if (json_path.empty()) {
    return 0;
  }
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"schema\": \"softtimer-shard-v1\",\n");
  std::fprintf(f, "  \"host_cores\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(
      f,
      "  \"note\": \"per-worker CPU time (CLOCK_THREAD_CPUTIME_ID) is the "
      "scalability signal: contention-free shards keep cpu_ns_per_op flat as "
      "threads grow, software serialization would inflate it. "
      "derived_throughput_mops = threads / cpu_ns_per_op_mean assumes one "
      "core per thread; wall metrics depend on host_cores. allocs_per_op is "
      "the global operator-new probe delta over the measured phase.\",\n");
  std::fprintf(f, "  \"local_schedule_dispatch\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const ScalePoint& p = points[i];
    std::fprintf(
        f,
        "    {\"threads\": %zu, \"ops\": %llu, \"cpu_ns_per_op_mean\": %.2f, "
        "\"cpu_ns_per_op_max\": %.2f, \"wall_ns_per_op_agg\": %.2f, "
        "\"allocs_per_op\": %.4f, \"derived_throughput_mops\": %.2f, "
        "\"scaling_efficiency_vs_1\": %.3f, \"derived_speedup_vs_1\": %.2f}%s\n",
        p.threads, static_cast<unsigned long long>(p.total_ops),
        p.cpu_ns_per_op_mean, p.cpu_ns_per_op_max, p.wall_ns_per_op,
        p.allocs_per_op, p.derived_throughput_mops,
        base.cpu_ns_per_op_mean / p.cpu_ns_per_op_mean,
        p.derived_throughput_mops / base.derived_throughput_mops,
        i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"cross_core\": {\n"
               "    \"push_ns_per_op\": %.2f,\n"
               "    \"push_allocs_per_op\": %.4f,\n"
               "    \"apply_ns_per_op\": %.2f,\n"
               "    \"latency_p50_us\": %.2f,\n"
               "    \"latency_p99_us\": %.2f\n"
               "  }\n}\n",
               cross.push_ns_per_op, cross.push_allocs_per_op,
               cross.apply_ns_per_op, cross.latency_p50_us,
               cross.latency_p99_us);
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace softtimer

int main(int argc, char** argv) {
  std::string json_path;
  double scale = 1.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      scale = std::strtod(argv[i] + 8, nullptr);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 1;
    }
  }
  return softtimer::Run(json_path, scale <= 0 ? 1.0 : scale);
}
