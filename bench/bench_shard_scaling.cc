// Shard-scaling benchmark for ShardedSoftTimerRuntime: schedule+dispatch
// throughput at 1/2/4/8 shard threads, steady-state allocations per op, and
// cross-core scheduling costs. Writes machine-readable JSON (BENCH_shard.json
// schema) with --json=PATH.
//
// Methodology note (recorded in the JSON too): CI containers for this repo
// often pin the build to a single CPU, where wall-clock throughput cannot
// scale no matter how good the software is. Each worker therefore measures
// its own CPU time (CLOCK_THREAD_CPUTIME_ID) per operation - the honest
// scalability signal: software serialization (a shared lock, cache-line
// ping-pong) shows up as CPU ns/op growing with the thread count, while a
// contention-free design keeps it flat. The derived throughput for N threads
// is N / cpu_ns_per_op (what N real cores would sustain); wall metrics are
// reported alongside for machines with enough cores to check directly.
//
// Flags:
//   --json=PATH   write the JSON report to PATH
//   --scale=F     scale op counts by F (bench-smoke uses 0.01)

#include <pthread.h>
#include <time.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/alloc_probe.h"
#include "src/core/sharded_soft_timer_runtime.h"
#include "src/rt/monotonic_clock_source.h"
#include "src/rt/sharded_rt_host.h"
#include "src/stats/latency_histogram.h"

namespace softtimer {
namespace {

uint64_t ThreadCpuNs() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

// Spin barrier: keeps the measurement phases aligned across workers without
// futex sleeps distorting per-thread CPU time at the boundaries.
class SpinBarrier {
 public:
  explicit SpinBarrier(size_t parties) : parties_(parties) {}
  void Arrive() {
    uint64_t phase = phase_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      phase_.fetch_add(1, std::memory_order_release);
    } else {
      while (phase_.load(std::memory_order_acquire) == phase) {
        std::this_thread::yield();
      }
    }
  }

 private:
  const size_t parties_;
  std::atomic<size_t> arrived_{0};
  std::atomic<uint64_t> phase_{0};
};

struct ThreadResult {
  uint64_t ops = 0;
  uint64_t dispatched = 0;
  uint64_t cpu_ns = 0;
};

struct ScalePoint {
  size_t threads = 0;
  uint64_t total_ops = 0;
  double wall_s = 0;
  double wall_ns_per_op = 0;       // aggregate: wall / total ops
  double cpu_ns_per_op_mean = 0;   // mean over threads of cpu_ns / ops
  double cpu_ns_per_op_max = 0;    // slowest thread (the scaling limiter)
  double allocs_per_op = 0;        // global probe delta across the phase
  double derived_throughput_mops = 0;  // threads / cpu_ns_per_op_mean * 1e3
};

// Each worker owns one shard and runs local schedule -> trigger-check cycles.
// 1 GHz measurement clock so a 1-tick delay is due by the next check and
// every cycle dispatches (no idle clock-waiting in the measured loop).
ScalePoint RunLocalScaling(size_t threads, uint64_t ops_per_thread) {
  MonotonicClockSource clock(1'000'000'000);
  ShardedSoftTimerRuntime::Config cfg;
  cfg.num_shards = threads;
  cfg.facility.interrupt_clock_hz = 1'000;
  // Heap backend: check cost is independent of how many ticks elapsed, which
  // matters at 1 GHz where a wheel would walk thousands of empty slots per
  // check (this bench measures the runtime, not wheel-advance amortization).
  cfg.facility.queue_kind = TimerQueueKind::kHeap;
  ShardedSoftTimerRuntime rt(&clock, cfg);

  SpinBarrier barrier(threads + 1);
  std::vector<ThreadResult> results(threads);
  std::vector<std::thread> workers;
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ThreadResult& r = results[t];
      auto* dispatched = &r.dispatched;
      auto handler = [dispatched](const SoftTimerFacility::FireInfo&) {
        ++*dispatched;
      };
      auto cycle = [&] {
        rt.ScheduleOnShard(t, 1, handler);
        rt.OnTriggerState(t, TriggerSource::kSyscall);
      };
      for (uint64_t i = 0; i < 2'000; ++i) {
        cycle();  // warmup: slab + wheel to high-water mark
      }
      barrier.Arrive();  // [1] warmup done everywhere
      barrier.Arrive();  // [2] alloc snapshot taken; measurement begins
      uint64_t cpu0 = ThreadCpuNs();
      for (uint64_t i = 0; i < ops_per_thread; ++i) {
        cycle();
      }
      // Flush stragglers (a cycle's event can slip to the next check).
      rt.OnTriggerState(t, TriggerSource::kSyscall);
      r.cpu_ns = ThreadCpuNs() - cpu0;
      r.ops = ops_per_thread;
      barrier.Arrive();  // [3] measurement done
    });
  }

  barrier.Arrive();  // [1]
  uint64_t alloc0 = AllocProbeAllocCount();
  auto wall0 = std::chrono::steady_clock::now();
  barrier.Arrive();  // [2]
  barrier.Arrive();  // [3]
  auto wall1 = std::chrono::steady_clock::now();
  uint64_t alloc1 = AllocProbeAllocCount();
  for (auto& w : workers) {
    w.join();
  }

  ScalePoint p;
  p.threads = threads;
  double cpu_sum = 0;
  for (const ThreadResult& r : results) {
    p.total_ops += r.ops;
    double per_op = static_cast<double>(r.cpu_ns) / static_cast<double>(r.ops);
    cpu_sum += per_op;
    p.cpu_ns_per_op_max = std::max(p.cpu_ns_per_op_max, per_op);
  }
  p.cpu_ns_per_op_mean = cpu_sum / static_cast<double>(threads);
  p.wall_s = std::chrono::duration<double>(wall1 - wall0).count();
  p.wall_ns_per_op = p.wall_s * 1e9 / static_cast<double>(p.total_ops);
  p.allocs_per_op = static_cast<double>(alloc1 - alloc0) /
                    static_cast<double>(p.total_ops);
  p.derived_throughput_mops =
      static_cast<double>(threads) / p.cpu_ns_per_op_mean * 1e3;
  return p;
}

struct CrossCoreResult {
  double push_ns_per_op = 0;       // producer-side SPSC push + publish
  double push_allocs_per_op = 0;
  double apply_ns_per_op = 0;      // owner-side drain + schedule + dispatch
  double latency_p50_us = 0;       // publish -> handler, across threads
  double latency_p99_us = 0;
};

// Producer-side cost, single-threaded: push a ring-full, drain as the owner,
// repeat. Separates the costs from scheduler noise.
void MeasureCrossCoreCosts(CrossCoreResult* out, double scale) {
  MonotonicClockSource clock(1'000'000'000);
  ShardedSoftTimerRuntime::Config cfg;
  cfg.num_shards = 1;
  cfg.ring_capacity = 1024;
  cfg.facility.queue_kind = TimerQueueKind::kHeap;
  ShardedSoftTimerRuntime rt(&clock, cfg);
  auto token = rt.RegisterProducer();
  uint64_t fired = 0;
  auto* fired_p = &fired;
  auto handler = [fired_p](const SoftTimerFacility::FireInfo&) { ++*fired_p; };

  size_t rounds = std::max<size_t>(1, static_cast<size_t>(200 * scale));
  constexpr size_t kBatch = 1024;
  // Warmup round materializes slab, remote-id table, and ring slots.
  for (size_t i = 0; i < kBatch; ++i) {
    rt.ScheduleCrossCore(token, 0, 0, handler);
  }
  rt.OnTriggerState(0, TriggerSource::kSyscall);
  rt.OnTriggerState(0, TriggerSource::kSyscall);

  uint64_t push_ns = 0, apply_ns = 0, pushes = 0;
  uint64_t alloc0 = AllocProbeAllocCount();
  for (size_t r = 0; r < rounds; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < kBatch; ++i) {
      rt.ScheduleCrossCore(token, 0, 0, handler);
    }
    auto t1 = std::chrono::steady_clock::now();
    // Two checks: the first drains and fires everything already past its
    // clamped deadline, the second catches the tail.
    rt.OnTriggerState(0, TriggerSource::kSyscall);
    rt.OnTriggerState(0, TriggerSource::kSyscall);
    auto t2 = std::chrono::steady_clock::now();
    push_ns += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    apply_ns += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t2 - t1).count());
    pushes += kBatch;
  }
  uint64_t alloc1 = AllocProbeAllocCount();
  out->push_ns_per_op = static_cast<double>(push_ns) / static_cast<double>(pushes);
  out->apply_ns_per_op = static_cast<double>(apply_ns) / static_cast<double>(pushes);
  out->push_allocs_per_op =
      static_cast<double>(alloc1 - alloc0) / static_cast<double>(pushes);
}

// End-to-end publish -> dispatch latency with a busy-polling owner thread.
void MeasureCrossCoreLatency(CrossCoreResult* out, double scale) {
  MonotonicClockSource clock(1'000'000'000);
  ShardedSoftTimerRuntime::Config cfg;
  cfg.num_shards = 1;
  cfg.facility.queue_kind = TimerQueueKind::kHeap;
  ShardedSoftTimerRuntime rt(&clock, cfg);
  auto token = rt.RegisterProducer();

  std::atomic<bool> stop{false};
  std::thread owner([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      rt.OnTriggerState(0, TriggerSource::kIdleLoop);
    }
  });

  // The handler stamps the dispatch tick itself (1 GHz clock: 1 tick = 1 ns)
  // and the producer SLEEPS between samples instead of spinning, so on hosts
  // with fewer cores than threads the owner still gets the CPU immediately
  // and the sample measures publish -> dispatch, not a scheduler quantum.
  size_t samples = std::max<size_t>(50, static_cast<size_t>(2'000 * scale));
  std::vector<double> latency_us;
  latency_us.reserve(samples);
  std::atomic<uint64_t> fired_at{0};
  for (size_t i = 0; i < samples; ++i) {
    fired_at.store(0, std::memory_order_relaxed);
    auto* slot = &fired_at;
    uint64_t t0 = clock.NowTicks();
    SoftEventId id = rt.ScheduleCrossCore(
        token, 0, 0, [slot](const SoftTimerFacility::FireInfo& info) {
          slot->store(info.fired_tick, std::memory_order_release);
        });
    if (!id.valid()) {
      continue;  // ring full (owner starved): skip the sample
    }
    auto wait_deadline = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(100);
    while (fired_at.load(std::memory_order_acquire) == 0 &&
           std::chrono::steady_clock::now() < wait_deadline) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    uint64_t fired = fired_at.load(std::memory_order_acquire);
    if (fired != 0) {
      latency_us.push_back(static_cast<double>(fired - t0) / 1e3);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  owner.join();

  std::sort(latency_us.begin(), latency_us.end());
  if (!latency_us.empty()) {
    out->latency_p50_us = latency_us[latency_us.size() / 2];
    out->latency_p99_us = latency_us[latency_us.size() * 99 / 100];
  }
}

// ---------------------------------------------------------------------------
// Isolated-shard latency-SLO phase (DESIGN.md section 14).
//
// A 2-shard ShardedRtHost: shard 0 runs the kIsolated profile (dedicated
// spinning trigger loop, compensated software backup, 1 us lateness SLO at
// the 1 GHz measure clock) under a 100-tick self-re-arm chain; shard 1 runs
// the normal profile under a 400 us chain, demonstrating - simultaneously -
// that its dispatches piggyback on trigger states (kIdleLoop source) rather
// than costing backup interrupts. A second, shorter run flips the isolated
// backup to kUncompensated as the CHRONOS-style contrast: arming at the
// deadline instead of deadline-minus-overhead makes every backup fire late
// by one check gap.
//
// Self-checking gates (the bench exits nonzero if they fail after retries):
//   - clean p99.9 dispatch lateness on the isolated shard < the SLO budget
//     (1000 ticks = 1 us), with a minimum clean sample count;
//   - zero backup_true_late on the compensated run (late fires with a
//     detected hypervisor steal are classified, reported, and excluded);
//   - backup fires actually happened on both isolated runs;
//   - the uncompensated contrast run fired its backups late;
//   - the sibling normal shard dispatched via trigger piggybacking.
// "Clean" excludes dispatches adjacent to a detected preemption gap - the
// same shared-CI-host honesty rule as the CPU-time-per-op methodology above;
// raw percentiles are reported next to clean in the JSON.
// ---------------------------------------------------------------------------

struct ChainCtx {
  ShardedSoftTimerRuntime* rt = nullptr;
  size_t shard = 0;
  uint64_t delta = 0;
  uint64_t fires = 0;
};

void ChainFire(ChainCtx* c) {
  c->rt->ScheduleOnShard(c->shard, c->delta,
                         [c](const SoftTimerFacility::FireInfo&) {
                           ++c->fires;
                           ChainFire(c);
                         });
}

struct IsolatedSloResult {
  // Compensated (primary) run, isolated shard 0.
  uint64_t slo_budget_ticks = 0;
  uint64_t clean_samples = 0;
  uint64_t clean_p50 = 0, clean_p99 = 0, clean_p999 = 0, clean_max = 0;
  uint64_t raw_samples = 0;
  uint64_t raw_p50 = 0, raw_p99 = 0, raw_p999 = 0, raw_max = 0;
  ShardedRtHost::IsolatedShardStats iso;
  // Sibling normal shard 1.
  uint64_t normal_dispatches = 0;
  uint64_t normal_piggyback_dispatches = 0;  // TriggerSource::kIdleLoop
  uint64_t normal_backup_dispatches = 0;     // TriggerSource::kBackupIntr
  // Uncompensated contrast run.
  uint64_t uncomp_backup_fires = 0;
  uint64_t uncomp_backup_on_time = 0;
  uint64_t uncomp_backup_late = 0;  // true_late + steal_late
  // Gate outcomes.
  bool pass_clean_p999 = false;
  bool pass_min_samples = false;
  bool pass_zero_true_late = false;
  bool pass_backup_exercised = false;
  bool pass_uncomp_late = false;
  bool pass_normal_piggyback = false;
  bool passed = false;
  int attempts = 0;
  // Clean-histogram snapshot for the JSON bucket dump.
  LatencyHistogram clean_hist;
};

IsolatedSloResult RunIsolatedSloOnce(double scale) {
  constexpr uint64_t kSloTicks = 1'000;       // 1 us at the 1 GHz clock
  constexpr uint64_t kMinCleanSamples = 1'000;
  const auto comp_ms =
      std::chrono::milliseconds(std::max<int64_t>(40, int64_t(600 * scale)));
  const auto uncomp_ms =
      std::chrono::milliseconds(std::max<int64_t>(20, int64_t(150 * scale)));

  IsolatedSloResult r;
  r.slo_budget_ticks = kSloTicks;

  ChainCtx iso_chain, normal_chain;
  {
    ShardedRtHost::Config hc;
    hc.num_shards = 2;
    hc.measure_hz = 1'000'000'000;
    hc.interrupt_clock_hz = 1'000;  // 1 ms backup period
    hc.queue_kind = TimerQueueKind::kHeap;
    hc.shard_profiles.resize(2);
    hc.shard_profiles[0].profile = ShardedRtHost::ShardProfile::kIsolated;
    hc.shard_profiles[0].backup = ShardedRtHost::IsolatedBackup::kCompensated;
    hc.shard_profiles[0].slo_lateness_ticks = kSloTicks;
    hc.shard_setup = [&](size_t shard) {
      ChainFire(shard == 0 ? &iso_chain : &normal_chain);
    };
    ShardedRtHost host(hc);
    iso_chain = {&host.runtime(), 0, 100, 0};       // 100 ns re-arm chain
    normal_chain = {&host.runtime(), 1, 400'000, 0};  // 400 us chain
    host.Start();
    std::this_thread::sleep_for(comp_ms);
    host.Stop();

    r.iso = host.isolated_shard_stats(0);
    const LatencyHistogram& clean = host.shard_lateness_clean(0);
    const LatencyHistogram& raw = host.shard_lateness_raw(0);
    r.clean_samples = clean.count();
    r.clean_p50 = clean.Percentile(50.0);
    r.clean_p99 = clean.Percentile(99.0);
    r.clean_p999 = clean.Percentile(99.9);
    r.clean_max = clean.max();
    r.raw_samples = raw.count();
    r.raw_p50 = raw.Percentile(50.0);
    r.raw_p99 = raw.Percentile(99.0);
    r.raw_p999 = raw.Percentile(99.9);
    r.raw_max = raw.max();
    r.clean_hist = clean;
    const SoftTimerFacility::Stats& fs = host.runtime().shard_facility(1).stats();
    r.normal_dispatches = fs.dispatches;
    r.normal_piggyback_dispatches =
        fs.dispatches_by_source[static_cast<size_t>(TriggerSource::kIdleLoop)];
    r.normal_backup_dispatches =
        fs.dispatches_by_source[static_cast<size_t>(TriggerSource::kBackupIntr)];
  }

  {
    ShardedRtHost::Config hc;
    hc.num_shards = 1;
    hc.measure_hz = 1'000'000'000;
    hc.interrupt_clock_hz = 1'000;
    hc.queue_kind = TimerQueueKind::kHeap;
    hc.shard_profiles.resize(1);
    hc.shard_profiles[0].profile = ShardedRtHost::ShardProfile::kIsolated;
    hc.shard_profiles[0].backup =
        ShardedRtHost::IsolatedBackup::kUncompensated;
    ChainCtx chain;
    hc.shard_setup = [&](size_t) { ChainFire(&chain); };
    ShardedRtHost host(hc);
    chain = {&host.runtime(), 0, 100, 0};
    host.Start();
    std::this_thread::sleep_for(uncomp_ms);
    host.Stop();
    ShardedRtHost::IsolatedShardStats u = host.isolated_shard_stats(0);
    r.uncomp_backup_fires = u.backup_fires;
    r.uncomp_backup_on_time = u.backup_on_time;
    r.uncomp_backup_late = u.backup_true_late + u.backup_steal_late;
  }

  r.pass_clean_p999 = r.clean_p999 < kSloTicks;
  r.pass_min_samples = r.clean_samples >= kMinCleanSamples;
  r.pass_zero_true_late = r.iso.backup_true_late == 0;
  r.pass_backup_exercised =
      r.iso.backup_fires > 0 && r.uncomp_backup_fires > 0;
  r.pass_uncomp_late = r.uncomp_backup_late > 0;
  r.pass_normal_piggyback = r.normal_piggyback_dispatches > 0;
  r.passed = r.pass_clean_p999 && r.pass_min_samples &&
             r.pass_zero_true_late && r.pass_backup_exercised &&
             r.pass_uncomp_late && r.pass_normal_piggyback;
  return r;
}

IsolatedSloResult RunIsolatedSlo(double scale) {
  // A hypervisor steal storm on a shared CI host can defeat any single run
  // (it also taints the calibration); retry a bounded number of times before
  // declaring failure.
  constexpr int kMaxAttempts = 3;
  IsolatedSloResult r;
  for (int attempt = 1; attempt <= kMaxAttempts; ++attempt) {
    r = RunIsolatedSloOnce(scale);
    r.attempts = attempt;
    if (r.passed) {
      break;
    }
    std::fprintf(stderr, "isolated-slo attempt %d failed its gates%s\n",
                 attempt, attempt < kMaxAttempts ? ", retrying" : "");
  }
  return r;
}

int Run(const std::string& json_path, double scale) {
  const size_t kThreadCounts[] = {1, 2, 4, 8};
  uint64_t ops = static_cast<uint64_t>(1'000'000 * scale);
  ops = std::max<uint64_t>(ops, 10'000);

  std::vector<ScalePoint> points;
  for (size_t threads : kThreadCounts) {
    points.push_back(RunLocalScaling(threads, ops));
    const ScalePoint& p = points.back();
    std::printf(
        "threads=%zu  cpu %6.1f ns/op (max %6.1f)  wall %7.1f ns/op agg  "
        "allocs/op %.4f  derived %7.2f Mops/s\n",
        p.threads, p.cpu_ns_per_op_mean, p.cpu_ns_per_op_max, p.wall_ns_per_op,
        p.allocs_per_op, p.derived_throughput_mops);
  }

  CrossCoreResult cross;
  MeasureCrossCoreCosts(&cross, scale);
  MeasureCrossCoreLatency(&cross, scale);
  std::printf(
      "cross-core: push %5.1f ns/op (allocs/op %.4f)  apply %6.1f ns/op  "
      "latency p50 %.2f us  p99 %.2f us\n",
      cross.push_ns_per_op, cross.push_allocs_per_op, cross.apply_ns_per_op,
      cross.latency_p50_us, cross.latency_p99_us);

  IsolatedSloResult slo = RunIsolatedSlo(scale);
  std::printf(
      "isolated-slo: clean lateness p50/p99/p99.9/max %llu/%llu/%llu/%llu "
      "ticks (%llu samples)  raw p99.9 %llu (%llu)\n",
      static_cast<unsigned long long>(slo.clean_p50),
      static_cast<unsigned long long>(slo.clean_p99),
      static_cast<unsigned long long>(slo.clean_p999),
      static_cast<unsigned long long>(slo.clean_max),
      static_cast<unsigned long long>(slo.clean_samples),
      static_cast<unsigned long long>(slo.raw_p999),
      static_cast<unsigned long long>(slo.raw_samples));
  std::printf(
      "  steals %llu (%llu ticks, max gap %llu)  threshold %llu  "
      "compensation %llu  calibrated gap %llu\n",
      static_cast<unsigned long long>(slo.iso.steal_events),
      static_cast<unsigned long long>(slo.iso.stolen_ticks),
      static_cast<unsigned long long>(slo.iso.max_gap_ticks),
      static_cast<unsigned long long>(slo.iso.steal_threshold_ticks),
      static_cast<unsigned long long>(slo.iso.compensation_ticks),
      static_cast<unsigned long long>(slo.iso.calibrated_gap_ticks));
  std::printf(
      "  backup compensated: fires %llu on_time %llu true_late %llu "
      "steal_late %llu | uncompensated: fires %llu late %llu\n",
      static_cast<unsigned long long>(slo.iso.backup_fires),
      static_cast<unsigned long long>(slo.iso.backup_on_time),
      static_cast<unsigned long long>(slo.iso.backup_true_late),
      static_cast<unsigned long long>(slo.iso.backup_steal_late),
      static_cast<unsigned long long>(slo.uncomp_backup_fires),
      static_cast<unsigned long long>(slo.uncomp_backup_late));
  std::printf(
      "  normal sibling: dispatches %llu, piggybacked on trigger states %llu, "
      "via backup %llu\n",
      static_cast<unsigned long long>(slo.normal_dispatches),
      static_cast<unsigned long long>(slo.normal_piggyback_dispatches),
      static_cast<unsigned long long>(slo.normal_backup_dispatches));
  std::printf("  gates: %s (attempts %d)\n",
              slo.passed ? "PASS" : "FAIL", slo.attempts);

  const ScalePoint& base = points[0];
  if (json_path.empty()) {
    return slo.passed ? 0 : 1;
  }
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"schema\": \"softtimer-shard-v1\",\n");
  std::fprintf(f, "  \"host_cores\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(
      f,
      "  \"note\": \"per-worker CPU time (CLOCK_THREAD_CPUTIME_ID) is the "
      "scalability signal: contention-free shards keep cpu_ns_per_op flat as "
      "threads grow, software serialization would inflate it. "
      "derived_throughput_mops = threads / cpu_ns_per_op_mean assumes one "
      "core per thread; wall metrics depend on host_cores. allocs_per_op is "
      "the global operator-new probe delta over the measured phase.\",\n");
  std::fprintf(f, "  \"local_schedule_dispatch\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const ScalePoint& p = points[i];
    std::fprintf(
        f,
        "    {\"threads\": %zu, \"ops\": %llu, \"cpu_ns_per_op_mean\": %.2f, "
        "\"cpu_ns_per_op_max\": %.2f, \"wall_ns_per_op_agg\": %.2f, "
        "\"allocs_per_op\": %.4f, \"derived_throughput_mops\": %.2f, "
        "\"scaling_efficiency_vs_1\": %.3f, \"derived_speedup_vs_1\": %.2f}%s\n",
        p.threads, static_cast<unsigned long long>(p.total_ops),
        p.cpu_ns_per_op_mean, p.cpu_ns_per_op_max, p.wall_ns_per_op,
        p.allocs_per_op, p.derived_throughput_mops,
        base.cpu_ns_per_op_mean / p.cpu_ns_per_op_mean,
        p.derived_throughput_mops / base.derived_throughput_mops,
        i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"cross_core\": {\n"
               "    \"push_ns_per_op\": %.2f,\n"
               "    \"push_allocs_per_op\": %.4f,\n"
               "    \"apply_ns_per_op\": %.2f,\n"
               "    \"latency_p50_us\": %.2f,\n"
               "    \"latency_p99_us\": %.2f\n"
               "  },\n",
               cross.push_ns_per_op, cross.push_allocs_per_op,
               cross.apply_ns_per_op, cross.latency_p50_us,
               cross.latency_p99_us);
  std::fprintf(
      f,
      "  \"isolated_slo\": {\n"
      "    \"note\": \"2-shard ShardedRtHost at 1 GHz: shard 0 isolated "
      "(spinning trigger loop, compensated software backup, 100-tick re-arm "
      "chain), shard 1 normal (400 us chain). 'clean' excludes dispatches "
      "adjacent to a detected hypervisor-steal gap (> steal_threshold_ticks "
      "between consecutive clock reads) - same honesty rule as the CPU-time "
      "methodology; 'raw' keeps everything. Percentiles are bucket upper "
      "bounds (LatencyHistogram, <=6%% relative error), max exact. The "
      "uncompensated contrast arms the backup at the deadline instead of "
      "deadline-minus-compensation, so its fires trail by one check gap.\",\n");
  std::fprintf(
      f,
      "    \"slo_budget_ticks\": %llu,\n"
      "    \"clean\": {\"samples\": %llu, \"p50_ticks\": %llu, "
      "\"p99_ticks\": %llu, \"p999_ticks\": %llu, \"max_ticks\": %llu},\n"
      "    \"raw\": {\"samples\": %llu, \"p50_ticks\": %llu, "
      "\"p99_ticks\": %llu, \"p999_ticks\": %llu, \"max_ticks\": %llu},\n",
      static_cast<unsigned long long>(slo.slo_budget_ticks),
      static_cast<unsigned long long>(slo.clean_samples),
      static_cast<unsigned long long>(slo.clean_p50),
      static_cast<unsigned long long>(slo.clean_p99),
      static_cast<unsigned long long>(slo.clean_p999),
      static_cast<unsigned long long>(slo.clean_max),
      static_cast<unsigned long long>(slo.raw_samples),
      static_cast<unsigned long long>(slo.raw_p50),
      static_cast<unsigned long long>(slo.raw_p99),
      static_cast<unsigned long long>(slo.raw_p999),
      static_cast<unsigned long long>(slo.raw_max));
  std::fprintf(
      f,
      "    \"spin\": {\"checks\": %llu, \"calibrated_gap_ticks\": %llu, "
      "\"steal_threshold_ticks\": %llu, \"steal_events\": %llu, "
      "\"stolen_ticks\": %llu, \"max_gap_ticks\": %llu, "
      "\"steal_suppressed_dispatches\": %llu, \"slo_violations\": %llu},\n",
      static_cast<unsigned long long>(slo.iso.spin_checks),
      static_cast<unsigned long long>(slo.iso.calibrated_gap_ticks),
      static_cast<unsigned long long>(slo.iso.steal_threshold_ticks),
      static_cast<unsigned long long>(slo.iso.steal_events),
      static_cast<unsigned long long>(slo.iso.stolen_ticks),
      static_cast<unsigned long long>(slo.iso.max_gap_ticks),
      static_cast<unsigned long long>(slo.iso.steal_suppressed_dispatches),
      static_cast<unsigned long long>(slo.iso.slo_violations));
  std::fprintf(
      f,
      "    \"backup_compensated\": {\"compensation_ticks\": %llu, "
      "\"fires\": %llu, \"on_time\": %llu, \"true_late\": %llu, "
      "\"steal_late\": %llu},\n"
      "    \"backup_uncompensated\": {\"fires\": %llu, \"on_time\": %llu, "
      "\"late\": %llu},\n"
      "    \"normal_sibling\": {\"dispatches\": %llu, "
      "\"trigger_piggyback_dispatches\": %llu, \"backup_dispatches\": "
      "%llu},\n",
      static_cast<unsigned long long>(slo.iso.compensation_ticks),
      static_cast<unsigned long long>(slo.iso.backup_fires),
      static_cast<unsigned long long>(slo.iso.backup_on_time),
      static_cast<unsigned long long>(slo.iso.backup_true_late),
      static_cast<unsigned long long>(slo.iso.backup_steal_late),
      static_cast<unsigned long long>(slo.uncomp_backup_fires),
      static_cast<unsigned long long>(slo.uncomp_backup_on_time),
      static_cast<unsigned long long>(slo.uncomp_backup_late),
      static_cast<unsigned long long>(slo.normal_dispatches),
      static_cast<unsigned long long>(slo.normal_piggyback_dispatches),
      static_cast<unsigned long long>(slo.normal_backup_dispatches));
  std::fprintf(f, "    \"clean_histogram\": [");
  {
    bool first = true;
    slo.clean_hist.ForEachNonZero(
        [&](uint64_t lo, uint64_t hi, uint64_t n) {
          std::fprintf(f, "%s\n      {\"lo\": %llu, \"hi\": %llu, \"n\": %llu}",
                       first ? "" : ",", static_cast<unsigned long long>(lo),
                       static_cast<unsigned long long>(hi),
                       static_cast<unsigned long long>(n));
          first = false;
        });
  }
  std::fprintf(f, "\n    ],\n");
  std::fprintf(f, "    \"attempts\": %d,\n    \"passed\": %s\n  }\n}\n",
               slo.attempts, slo.passed ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return slo.passed ? 0 : 1;
}

}  // namespace
}  // namespace softtimer

int main(int argc, char** argv) {
  std::string json_path;
  double scale = 1.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      scale = std::strtod(argv[i] + 8, nullptr);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 1;
    }
  }
  return softtimer::Run(json_path, scale <= 0 ? 1.0 : scale);
}
