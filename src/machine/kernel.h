// The simulated OS kernel of a server host.
//
// Kernel is the integration point the paper's FreeBSD patch occupies: it owns
// the soft-timer facility, fires the periodic backup interrupt, charges CPU
// costs for trigger-state checks / soft dispatches / hardware interrupts,
// runs the idle loop with the paper's halt policy (Section 5.2), and accounts
// every trigger state so the Table 1/2 and Figure 4/5/6 experiments can
// observe the interval stream.
//
// Subsystems (the network stack, the web-server models, workload generators)
// report kernel entries via Trigger()/KernelOp() and raise device interrupts
// via RaiseInterrupt(). The comparison hardware-timer facility of Sections
// 5.1/5.6 is AddPeriodicHardwareTimer(), which models per-interrupt overhead
// and tick loss while interrupts are disabled.

#ifndef SOFTTIMER_SRC_MACHINE_KERNEL_H_
#define SOFTTIMER_SRC_MACHINE_KERNEL_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/core/clock_source.h"
#include "src/core/soft_timer_facility.h"
#include "src/core/trigger.h"
#include "src/machine/cpu.h"
#include "src/machine/machine_profile.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"

namespace softtimer {

class Kernel {
 public:
  enum class IdleBehavior {
    // Section 5.2: an idle CPU polls for soft events but halts when (a) no
    // event is due before the next backup interrupt or (b) another idle CPU
    // is already polling.
    kHaltPolicy,
    // The idle loop spins and checks unconditionally (used when measuring
    // trigger-state interval distributions on mostly-idle workloads).
    kSpin,
  };

  struct Config {
    MachineProfile profile;
    // Measurement clock (the paper's typical value is 1 MHz -> 1 us ticks).
    uint64_t measure_hz = 1'000'000;
    // Backup periodic interrupt (the paper's typical value is 1 kHz).
    uint64_t interrupt_clock_hz = 1'000;
    TimerQueueKind queue_kind = TimerQueueKind::kHashedWheel;
    // Graceful-degradation policy for the facility (disabled by default).
    // When enabled, the kernel additionally escalates its backup-interrupt
    // rate to the policy's multiplier and enforces the handler budget by
    // capping a quarantined handler's injected overrun (watchdog preemption).
    DegradationPolicy::Config degradation;
    int num_cpus = 1;
    IdleBehavior idle_behavior = IdleBehavior::kHaltPolicy;
    // Log-normal sigma applied to the idle poll interval (0 = deterministic).
    double idle_poll_jitter_sigma = 0.25;
    // Measurement clock handed to the soft-timer facility instead of the
    // kernel's own SimClockSource (e.g. a fault::FaultyClockSource modelling
    // TSC stalls/jumps). The kernel itself keeps true time; only the
    // facility's MeasureTime() view is affected, which is exactly the
    // anomaly a bad cycle counter produces. Must outlive the kernel.
    const ClockSource* measure_clock_override = nullptr;
    // Simulation speedup: skip the idle loop's no-op checks and jump the
    // poll straight to just past the earliest soft-timer deadline. Firing
    // times are statistically identical (deadline + U[0, poll interval]);
    // only the stream of no-op idle-loop trigger samples is suppressed, so
    // leave this off when measuring trigger-interval distributions.
    bool idle_poll_fast_forward = false;
    uint64_t rng_seed = 1;
  };

  Kernel(Simulator* sim, Config config);

  // --- Fault injection ----------------------------------------------------
  // Hook points a fault harness (src/fault) installs to perturb the kernel
  // deterministically. All optional; unset hooks cost nothing.
  struct FaultHooks {
    // Trigger drought: true suppresses this (non-backup) trigger state, as
    // if the kernel never passed through it.
    std::function<bool(TriggerSource source)> suppress_trigger;
    // Backup-interrupt loss: true drops this backup tick (masked/lost).
    std::function<bool()> drop_backup;
    // Extra delay, in measurement ticks, applied to the next backup tick.
    std::function<uint64_t()> backup_jitter_ticks;
    // Handler overrun: extra runtime charged to a dispatch of this handler
    // tag. A non-zero overrun also models a long non-preemptible section:
    // trigger states and backup ticks are suppressed until it ends.
    std::function<SimDuration(uint32_t handler_tag)> handler_overrun;
  };
  void set_fault_hooks(FaultHooks hooks) { fault_hooks_ = std::move(hooks); }

  // --- Kernel entries (trigger states) ----------------------------------
  // Records a trigger state of `source` on `cpu`: charges the trigger-check
  // cost and polls the soft-timer facility.
  void Trigger(TriggerSource source, int cpu = 0);

  // Trigger + submit `work` (scaled by the machine profile) to `cpu`.
  void KernelOp(TriggerSource source, SimDuration work,
                std::function<void()> on_done = {}, int cpu = 0);

  // --- Interrupts --------------------------------------------------------
  // Raises a device interrupt on `cpu`: steals the hardware interrupt
  // overhead plus `handler_work`, extends the interrupts-disabled window,
  // invokes `handler`, and records a trigger state of `tail_source` at the
  // handler tail.
  void RaiseInterrupt(TriggerSource tail_source, SimDuration handler_work,
                      std::function<void()> handler = {}, int cpu = 0);

  // True while an interrupt service window is in progress (new periodic
  // timer ticks arriving now are lost, per Section 5.7's observation that
  // "some timer interrupts are lost during periods when interrupts are
  // disabled in FreeBSD").
  bool interrupts_disabled() const { return sim_->now() < intr_disabled_until_; }

  // Installs a periodic hardware interrupt timer (the 8253 model used by the
  // Figure 2/3 overhead experiment and the hardware-paced comparators).
  // Returns a handle for RemovePeriodicHardwareTimer / TimerTickStats.
  int AddPeriodicHardwareTimer(uint64_t hz, SimDuration handler_work,
                               std::function<void()> handler = {}, int cpu = 0);
  void RemovePeriodicHardwareTimer(int id);

  struct TimerTickStats {
    uint64_t fired = 0;
    uint64_t lost = 0;
  };
  TimerTickStats periodic_timer_stats(int id) const;

  // --- Accessors ---------------------------------------------------------
  SoftTimerFacility& soft_timers() { return *facility_; }
  const SoftTimerFacility& soft_timers() const { return *facility_; }
  Cpu& cpu(int i = 0) { return *cpus_[static_cast<size_t>(i)]; }
  const MachineProfile& profile() const { return config_.profile; }
  const SimClockSource& clock() const { return clock_; }
  Simulator* sim() { return sim_; }
  Rng& rng() { return rng_; }

  // --- Observation ---------------------------------------------------------
  // Called on every trigger state after a CPU's first, with the interval
  // since the previous trigger state *on the same CPU* (the quantity plotted
  // in Figures 4/5/6; the paper measures per-CPU streams).
  using TriggerObserver =
      std::function<void(TriggerSource source, SimTime now, SimDuration interval)>;
  void set_trigger_observer(TriggerObserver obs) { trigger_observer_ = std::move(obs); }

  // CPU idle/busy transition listeners (e.g. the NIC re-enables interrupts
  // whenever a CPU idles, Section 5.9).
  void AddCpuIdleListener(std::function<void(int cpu, bool idle)> fn);

  struct Stats {
    uint64_t triggers = 0;
    std::array<uint64_t, kNumTriggerSources> triggers_by_source{};
    // The same stream attributed per CPU (indexed [cpu][source], sized to
    // Config::num_cpus). The paper measures trigger streams per CPU; the
    // sharded runtime relies on this attribution to validate that each
    // shard's dispatches come from its own core's trigger states.
    std::vector<std::array<uint64_t, kNumTriggerSources>> triggers_by_source_by_cpu;
    uint64_t backup_ticks = 0;
    // Fault-injection visibility: trigger states swallowed by a drought or a
    // stalled handler, and backup ticks lost to injected masking.
    uint64_t triggers_suppressed = 0;
    uint64_t backup_ticks_lost = 0;
  };
  const Stats& stats() const { return stats_; }
  void ResetTriggerStats();

 private:
  struct PeriodicTimer {
    uint64_t id;
    SimDuration period;
    SimDuration handler_work;
    std::function<void()> handler;
    int cpu;
    EventHandle next;
    TimerTickStats ticks;
    bool removed = false;
    bool deferred = false;  // a latched tick is waiting for interrupts on
  };

  void OnBackupTick();
  void OnPeriodicTick(PeriodicTimer* t);
  void DeferTick(PeriodicTimer* t);
  void OnCpuStateChange(int cpu, bool busy);
  // Starts idle polling on `cpu` if the idle behavior allows it right now.
  void MaybeStartIdlePoll(int cpu);
  void IdlePollStep(int cpu);
  bool IdlePollPermitted(int cpu) const;
  void SchedulePeriodicTick(PeriodicTimer* t);

  Simulator* sim_;
  Config config_;
  SimClockSource clock_;
  std::unique_ptr<SoftTimerFacility> facility_;
  std::vector<std::unique_ptr<Cpu>> cpus_;
  Rng rng_;
  FaultHooks fault_hooks_;

  SimTime intr_disabled_until_;
  // End of an injected handler-overrun stall (a long non-preemptible
  // section): trigger states and backup ticks are suppressed until then.
  SimTime handler_stall_until_;
  // Backup-rate multiplier in effect (reprogrammed from the degradation
  // policy's value at trigger states - i.e. when software actually runs).
  uint32_t backup_multiplier_ = 1;
  // Dispatch cost charged for the handler currently firing, reported back
  // to the facility's budget probe (ticks).
  uint64_t last_dispatch_cost_ticks_ = 0;
  // Per-CPU previous-trigger timestamps.
  std::vector<SimTime> last_trigger_;
  std::vector<bool> have_last_trigger_;
  int current_trigger_cpu_ = 0;
  TriggerObserver trigger_observer_;
  std::vector<std::function<void(int, bool)>> idle_listeners_;

  // Idle-poll state per CPU.
  struct IdlePollState {
    bool polling = false;
    EventHandle next;
  };
  std::vector<IdlePollState> idle_poll_;
  SimTime next_backup_tick_;

  std::map<uint64_t, std::unique_ptr<PeriodicTimer>> periodic_timers_;
  uint64_t next_timer_id_ = 1;

  Stats stats_;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_MACHINE_KERNEL_H_
