// Calibrated cost constants for the simulated server machines.
//
// Every constant that comes from a measurement in the paper cites the section
// it is taken from. Work costs (syscalls, packet processing, application
// compute) scale inversely with `relative_speed`; interrupt overhead does
// NOT, reflecting the paper's finding that "interrupt overhead does not scale
// with CPU speed" (Section 5.1: 4.45 us on a 300 MHz PII vs 4.36 us on a
// 500 MHz PIII).

#ifndef SOFTTIMER_SRC_MACHINE_MACHINE_PROFILE_H_
#define SOFTTIMER_SRC_MACHINE_MACHINE_PROFILE_H_

#include <string>

#include "src/sim/time.h"

namespace softtimer {

struct MachineProfile {
  std::string name;

  // CPU speed relative to the 300 MHz Pentium II reference machine.
  double relative_speed = 1.0;

  // Total cost of taking one hardware interrupt: state save/restore plus the
  // secondary cache/TLB pollution measured on a busy server (Section 5.1).
  SimDuration hard_interrupt_overhead = SimDuration::Micros(4.45);

  // Reading the clock and comparing against the earliest soft-timer deadline
  // (Section 3: "very efficient ... a CPU register read and a comparison").
  SimDuration trigger_check_cost = SimDuration::Micros(0.05);

  // Invoking a (null) soft-timer handler from a trigger state: "costs no
  // more than a function call" (Section 3); Section 5.2 measured no
  // observable throughput impact at one dispatch per 31.5 us.
  SimDuration soft_dispatch_cost = SimDuration::Micros(0.15);

  // One iteration of the idle loop's poll (read NIC/clock state and loop).
  // Calibrated from the ST-nfs trigger interval (Table 1: median 2 us on a
  // 90%-idle machine, where the idle loop is the dominant trigger source).
  SimDuration idle_poll_interval = SimDuration::Micros(2.0);

  // Process context switch, including the locality shift (mid-1990s
  // measurements put this at several microseconds on x86).
  SimDuration context_switch_cost = SimDuration::Micros(6.0);

  // Kernel protocol processing for one received packet (device interrupt
  // handler body + IP/TCP input). Appendix A.3 notes "packet processing time
  // can take more than 100 us" end-to-end on a PII-300; the in-kernel
  // portion modeled here is a fraction of that.
  SimDuration rx_packet_service = SimDuration::Micros(13.0);

  // Protocol processing for a pure ACK (no payload, no socket-buffer work).
  SimDuration rx_ack_service = SimDuration::Micros(5.0);

  // Driver + IP output path for one transmitted packet.
  SimDuration tx_packet_service = SimDuration::Micros(6.0);

  // Fraction of rx_packet_service saved when the packet is processed from a
  // poll at a trigger state rather than an asynchronous interrupt (improved
  // memory access locality; Section 4.2).
  double poll_locality_discount = 0.45;

  // Additional per-packet discount for the 2nd..Nth packet processed in one
  // poll batch (aggregation of packet processing; Section 4.2).
  double batch_locality_discount = 0.60;

  // Returns `base` scaled to this machine's speed (work costs only).
  SimDuration Work(SimDuration base) const { return base * (1.0 / relative_speed); }

  // --- The machines of the paper's evaluation --------------------------
  // 300 MHz Pentium II, FreeBSD 2.2.6 (Sections 5.1-5.8).
  static MachineProfile PentiumII300();
  // 333 MHz Pentium II with 4 Fast Ethernet NICs (Section 5.9, Table 8).
  static MachineProfile PentiumII333();
  // 500 MHz Pentium III Xeon, FreeBSD 3.3 (Sections 5.1, 5.3).
  static MachineProfile PentiumIII500Xeon();
  // 500 MHz Alpha 21164 (AlphaStation 500au), FreeBSD 4.0-beta (Section 5.1).
  static MachineProfile Alpha21164_500();
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_MACHINE_MACHINE_PROFILE_H_
