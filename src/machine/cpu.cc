#include "src/machine/cpu.h"

#include <utility>

namespace softtimer {

Cpu::Cpu(Simulator* sim, int index) : sim_(sim), index_(index) {}

void Cpu::SetBusy(bool b) {
  if (busy_ == b) {
    return;
  }
  busy_ = b;
  if (state_observer_) {
    state_observer_(b);
  }
}

void Cpu::Submit(SimDuration work, std::function<void()> on_done,
                 std::function<void()> on_start) {
  if (work < SimDuration::Zero()) {
    work = SimDuration::Zero();
  }
  queue_.push_back(Job{work, std::move(on_done), std::move(on_start)});
  SetBusy(true);
  if (!running_current_) {
    StartNext();
  }
}

void Cpu::StartNext() {
  Job j = std::move(queue_.front());
  queue_.pop_front();
  running_current_ = true;
  work_accum_ += j.work;
  current_done_ = std::move(j.on_done);
  current_end_ = sim_->now() + j.work;
  completion_ = sim_->ScheduleAt(current_end_, [this] { FinishCurrent(); });
  if (j.on_start) {
    // May Steal() (e.g. a trigger-state check), which postpones current_end_.
    j.on_start();
  }
}

void Cpu::FinishCurrent() {
  running_current_ = false;
  ++jobs_completed_;
  std::function<void()> done = std::move(current_done_);
  current_done_ = nullptr;
  if (done) {
    done();  // may Submit() more work re-entrantly
  }
  if (!running_current_) {
    if (!queue_.empty()) {
      StartNext();
    } else {
      SetBusy(false);
    }
  }
}

void Cpu::Steal(SimDuration d) {
  if (d <= SimDuration::Zero()) {
    return;
  }
  stolen_accum_ += d;
  if (running_current_) {
    sim_->Cancel(completion_);
    current_end_ += d;
    completion_ = sim_->ScheduleAt(current_end_, [this] { FinishCurrent(); });
  }
}

}  // namespace softtimer
