#include "src/machine/kernel.h"

#include <cassert>
#include <utility>

namespace softtimer {

Kernel::Kernel(Simulator* sim, Config config)
    : sim_(sim),
      config_(std::move(config)),
      clock_(sim, config_.measure_hz),
      rng_(config_.rng_seed) {
  assert(config_.num_cpus >= 1);

  SoftTimerFacility::Config fc;
  fc.interrupt_clock_hz = config_.interrupt_clock_hz;
  fc.queue_kind = config_.queue_kind;
  fc.degradation = config_.degradation;
  const ClockSource* measure_clock =
      config_.measure_clock_override ? config_.measure_clock_override : &clock_;
  facility_ = std::make_unique<SoftTimerFacility>(measure_clock, fc);

  // Each dispatched handler costs one procedure call on the CPU that hit the
  // trigger state, plus any fault-injected overrun. An overrun also models a
  // long non-preemptible section: trigger states and backup ticks are
  // suppressed until it ends, which is how a runaway handler starves the
  // facility. Once the degradation policy quarantines the tag, the host
  // bounds the overrun at the handler budget (watchdog preemption), so a
  // quarantined handler can no longer open long stall windows.
  facility_->set_dispatch_observer([this](const SoftTimerFacility::FireInfo& info) {
    SimDuration cost = config_.profile.soft_dispatch_cost;
    if (fault_hooks_.handler_overrun) {
      SimDuration extra = fault_hooks_.handler_overrun(info.handler_tag);
      if (extra > SimDuration::Zero()) {
        const DegradationPolicy* policy = facility_->degradation();
        if (policy && policy->handler_budget_ticks() > 0 &&
            policy->IsQuarantined(info.handler_tag)) {
          SimDuration budget =
              clock_.TickPeriod() * static_cast<int64_t>(policy->handler_budget_ticks());
          extra = std::min(extra, budget);
        }
        cost += extra;
        SimTime stall_end = sim_->now() + extra;
        if (stall_end > handler_stall_until_) {
          handler_stall_until_ = stall_end;
        }
      }
    }
    cpu(current_trigger_cpu_).Steal(cost);
    last_dispatch_cost_ticks_ = static_cast<uint64_t>(cost / clock_.TickPeriod());
  });
  facility_->set_dispatch_cost_probe(
      [this](const SoftTimerFacility::FireInfo&) { return last_dispatch_cost_ticks_; });
  // A freshly scheduled event may make idle polling worthwhile again
  // (Section 5.2 halt condition (a)).
  facility_->set_schedule_observer([this] {
    for (int c = 0; c < config_.num_cpus; ++c) {
      if (!cpu(c).busy() && !idle_poll_[static_cast<size_t>(c)].polling) {
        MaybeStartIdlePoll(c);
      }
    }
  });

  for (int i = 0; i < config_.num_cpus; ++i) {
    cpus_.push_back(std::make_unique<Cpu>(sim_, i));
    idle_poll_.push_back(IdlePollState{});
    last_trigger_.push_back(SimTime::Zero());
    have_last_trigger_.push_back(false);
    cpus_.back()->set_state_observer([this, i](bool busy) { OnCpuStateChange(i, busy); });
  }
  stats_.triggers_by_source_by_cpu.resize(static_cast<size_t>(config_.num_cpus));

  // Periodic backup interrupt. It exists in stock kernels too (time slicing),
  // so its cost is charged in every configuration.
  SimDuration backup_period = SimDuration::Seconds(1.0 / static_cast<double>(config_.interrupt_clock_hz));
  next_backup_tick_ = sim_->now() + backup_period;
  sim_->ScheduleAt(next_backup_tick_, [this] { OnBackupTick(); });

  // All CPUs start idle.
  for (int i = 0; i < config_.num_cpus; ++i) {
    MaybeStartIdlePoll(i);
  }
}

void Kernel::OnBackupTick() {
  ++stats_.backup_ticks;
  // The degradation policy may have escalated the backup rate; jitter faults
  // may delay the next tick.
  double hz = static_cast<double>(config_.interrupt_clock_hz) *
              static_cast<double>(backup_multiplier_);
  SimDuration backup_period = SimDuration::Seconds(1.0 / hz);
  if (fault_hooks_.backup_jitter_ticks) {
    uint64_t jitter = fault_hooks_.backup_jitter_ticks();
    if (jitter > 0) {
      backup_period = backup_period + clock_.TickPeriod() * static_cast<int64_t>(jitter);
    }
  }
  next_backup_tick_ = sim_->now() + backup_period;
  sim_->ScheduleAt(next_backup_tick_, [this] { OnBackupTick(); });

  // The tick is a hardware interrupt: overhead + interrupts-disabled window,
  // and its handler tail is a trigger state, which is where overdue soft
  // events get dispatched. A tick is lost when a fault masks it or a stalled
  // handler has interrupts off.
  SimTime now = sim_->now();
  bool lost = now < handler_stall_until_;
  if (!lost && fault_hooks_.drop_backup && fault_hooks_.drop_backup()) {
    lost = true;
  }
  if (lost) {
    ++stats_.backup_ticks_lost;
    return;
  }
  SimDuration total = config_.profile.hard_interrupt_overhead;
  if (intr_disabled_until_ < now + total) {
    intr_disabled_until_ = now + total;
  }
  cpu(0).Steal(total);
  Trigger(TriggerSource::kBackupIntr, 0);

  // The halt window moved: idle CPUs re-evaluate.
  for (int c = 0; c < config_.num_cpus; ++c) {
    if (!cpu(c).busy() && !idle_poll_[static_cast<size_t>(c)].polling) {
      MaybeStartIdlePoll(c);
    }
  }
}

void Kernel::Trigger(TriggerSource source, int cpu_index) {
  SimTime now = sim_->now();
  if (source != TriggerSource::kBackupIntr) {
    // A trigger drought swallows the check; a stalled handler (injected
    // overrun) means the kernel never reaches a trigger state either.
    if (now < handler_stall_until_ ||
        (fault_hooks_.suppress_trigger && fault_hooks_.suppress_trigger(source))) {
      ++stats_.triggers_suppressed;
      return;
    }
  }
  size_t c = static_cast<size_t>(cpu_index);
  ++stats_.triggers;
  ++stats_.triggers_by_source[static_cast<size_t>(source)];
  ++stats_.triggers_by_source_by_cpu[c][static_cast<size_t>(source)];
  if (trigger_observer_ && have_last_trigger_[c]) {
    trigger_observer_(source, now, now - last_trigger_[c]);
  }
  last_trigger_[c] = now;
  have_last_trigger_[c] = true;

  cpu(cpu_index).Steal(config_.profile.trigger_check_cost);
  current_trigger_cpu_ = cpu_index;
  facility_->OnTriggerState(source);
  // Trigger states are where software runs, so this is where the escalated
  // (or relaxed) backup rate gets programmed into the "hardware" timer.
  backup_multiplier_ = facility_->backup_rate_multiplier();
}

void Kernel::KernelOp(TriggerSource source, SimDuration work,
                      std::function<void()> on_done, int cpu_index) {
  // The trigger state fires when the op starts executing (kernel entry), not
  // when it is enqueued behind other work.
  cpu(cpu_index).Submit(config_.profile.Work(work), std::move(on_done),
                        [this, source, cpu_index] { Trigger(source, cpu_index); });
}

void Kernel::RaiseInterrupt(TriggerSource tail_source, SimDuration handler_work,
                            std::function<void()> handler, int cpu_index) {
  SimTime now = sim_->now();
  SimDuration total = config_.profile.hard_interrupt_overhead + handler_work;
  SimTime start = intr_disabled_until_ > now ? intr_disabled_until_ : now;
  intr_disabled_until_ = start + total;
  cpu(cpu_index).Steal(total);
  if (handler) {
    handler();
  }
  Trigger(tail_source, cpu_index);
}

int Kernel::AddPeriodicHardwareTimer(uint64_t hz, SimDuration handler_work,
                                     std::function<void()> handler, int cpu_index) {
  assert(hz > 0);
  auto t = std::make_unique<PeriodicTimer>();
  t->id = next_timer_id_++;
  t->period = SimDuration::Nanos(static_cast<int64_t>(1'000'000'000ULL / hz));
  t->handler_work = handler_work;
  t->handler = std::move(handler);
  t->cpu = cpu_index;
  PeriodicTimer* raw = t.get();
  periodic_timers_.emplace(t->id, std::move(t));
  SchedulePeriodicTick(raw);
  return static_cast<int>(raw->id);
}

void Kernel::SchedulePeriodicTick(PeriodicTimer* t) {
  t->next = sim_->ScheduleAfter(t->period, [this, t] { OnPeriodicTick(t); });
}

void Kernel::OnPeriodicTick(PeriodicTimer* t) {
  if (t->removed) {
    return;
  }
  if (interrupts_disabled()) {
    // The 8253 latches the interrupt: it fires as soon as interrupts are
    // re-enabled. Only a second tick arriving while one is already pending
    // merges into it and is lost (Section 5.7: "some timer interrupts are
    // lost during periods when interrupts are disabled").
    if (t->deferred) {
      ++t->ticks.lost;
    } else {
      t->deferred = true;
      DeferTick(t);
    }
  } else {
    ++t->ticks.fired;
    RaiseInterrupt(TriggerSource::kOtherIntr, t->handler_work, t->handler, t->cpu);
  }
  SchedulePeriodicTick(t);
}

void Kernel::DeferTick(PeriodicTimer* t) {
  sim_->ScheduleAt(intr_disabled_until_, [this, t] {
    if (t->removed) {
      t->deferred = false;
      return;
    }
    if (interrupts_disabled()) {
      DeferTick(t);  // the disabled window grew while this tick waited
      return;
    }
    t->deferred = false;
    ++t->ticks.fired;
    RaiseInterrupt(TriggerSource::kOtherIntr, t->handler_work, t->handler, t->cpu);
  });
}

void Kernel::RemovePeriodicHardwareTimer(int id) {
  auto it = periodic_timers_.find(static_cast<uint64_t>(id));
  if (it == periodic_timers_.end()) {
    return;
  }
  // Keep the entry alive (its stats stay readable and an in-flight tick
  // event may still hold a pointer); just stop it.
  it->second->removed = true;
  sim_->Cancel(it->second->next);
}

Kernel::TimerTickStats Kernel::periodic_timer_stats(int id) const {
  auto it = periodic_timers_.find(static_cast<uint64_t>(id));
  if (it == periodic_timers_.end()) {
    return TimerTickStats{};
  }
  return it->second->ticks;
}

void Kernel::AddCpuIdleListener(std::function<void(int, bool)> fn) {
  idle_listeners_.push_back(std::move(fn));
}

void Kernel::OnCpuStateChange(int cpu_index, bool busy) {
  IdlePollState& st = idle_poll_[static_cast<size_t>(cpu_index)];
  if (busy) {
    if (st.polling) {
      sim_->Cancel(st.next);
      st.polling = false;
    }
  } else {
    MaybeStartIdlePoll(cpu_index);
  }
  for (auto& fn : idle_listeners_) {
    fn(cpu_index, !busy);
  }
}

bool Kernel::IdlePollPermitted(int cpu_index) const {
  if (config_.idle_behavior == IdleBehavior::kSpin) {
    return true;
  }
  // Halt condition (b): another idle CPU already polls.
  for (int c = 0; c < config_.num_cpus; ++c) {
    if (c != cpu_index && idle_poll_[static_cast<size_t>(c)].polling) {
      return false;
    }
  }
  // Halt condition (a): nothing due before the next backup interrupt.
  std::optional<uint64_t> next_deadline = facility_->NextDeadlineTick();
  if (!next_deadline) {
    return false;
  }
  SimTime deadline_time = clock_.TimeOfTick(*next_deadline);
  return deadline_time < next_backup_tick_;
}

void Kernel::MaybeStartIdlePoll(int cpu_index) {
  IdlePollState& st = idle_poll_[static_cast<size_t>(cpu_index)];
  if (st.polling || cpu(cpu_index).busy()) {
    return;
  }
  if (!IdlePollPermitted(cpu_index)) {
    return;
  }
  st.polling = true;
  SimDuration step = config_.profile.idle_poll_interval;
  if (config_.idle_poll_jitter_sigma > 0) {
    step = rng_.LogNormalDuration(step, config_.idle_poll_jitter_sigma);
  }
  SimTime poll_at = sim_->now() + step;
  if (config_.idle_poll_fast_forward) {
    std::optional<uint64_t> deadline = facility_->NextDeadlineTick();
    if (deadline) {
      SimTime due = clock_.TimeOfTick(*deadline);
      if (due > poll_at) {
        // The spinning idle loop would reach its check at due + U[0, step];
        // jump there directly instead of simulating every no-op iteration.
        poll_at = due + SimDuration::Nanos(static_cast<int64_t>(
                            rng_.NextDouble() * static_cast<double>(step.nanos())));
      }
    }
  }
  st.next = sim_->ScheduleAt(poll_at, [this, cpu_index] { IdlePollStep(cpu_index); });
}

void Kernel::IdlePollStep(int cpu_index) {
  IdlePollState& st = idle_poll_[static_cast<size_t>(cpu_index)];
  st.polling = false;
  if (cpu(cpu_index).busy()) {
    return;
  }
  Trigger(TriggerSource::kIdleLoop, cpu_index);
  // The trigger may have dispatched a handler that made the CPU busy.
  MaybeStartIdlePoll(cpu_index);
}

void Kernel::ResetTriggerStats() {
  stats_ = Stats{};
  stats_.triggers_by_source_by_cpu.resize(static_cast<size_t>(config_.num_cpus));
  for (size_t c = 0; c < have_last_trigger_.size(); ++c) {
    have_last_trigger_[c] = false;
  }
  facility_->ResetStats();
}

}  // namespace softtimer
