// Single-CPU time accounting for the simulated server.
//
// The CPU executes submitted work items FIFO, one at a time; each completes
// after its stated duration of CPU time. Interrupt handling "steals" time,
// postponing the completion of whatever is executing - which is exactly how
// hardware-timer overhead erodes web-server throughput in the paper's
// Figure 2/3 experiment: the server is saturated, every stolen microsecond
// lengthens per-connection service time, and throughput drops accordingly.
//
// Steal() while the CPU is idle only accumulates accounting (the cycles were
// free); this matches the paper's note that interrupt overhead "can be lower
// ... when the machine is idle".

#ifndef SOFTTIMER_SRC_MACHINE_CPU_H_
#define SOFTTIMER_SRC_MACHINE_CPU_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "src/sim/simulator.h"

namespace softtimer {

class Cpu {
 public:
  Cpu(Simulator* sim, int index);
  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  // Enqueues `work` of CPU time; `on_start` (optional) runs when the item
  // begins executing, `on_done` (optional) at completion. Kernel entries are
  // reported from on_start so trigger states line up with execution, not
  // with enqueueing.
  void Submit(SimDuration work, std::function<void()> on_done = {},
              std::function<void()> on_start = {});

  // Consumes CPU time immediately (interrupt context). If a work item is
  // executing, its completion (and everything queued behind it) is pushed
  // back by `d`.
  void Steal(SimDuration d);

  // True while work items are queued or executing (steals alone do not make
  // the CPU "busy" for scheduling purposes).
  bool busy() const { return busy_; }

  int index() const { return index_; }

  // Cumulative CPU time spent on work items (excludes stolen time).
  SimDuration work_time() const { return work_accum_; }
  // Cumulative CPU time consumed by Steal().
  SimDuration stolen_time() const { return stolen_accum_; }
  // Total CPU time the machine was not idle (work + stolen): the numerator
  // of every busy-CPU-time-per-packet efficiency metric, matching the
  // per-thread CLOCK_THREAD_CPUTIME_ID accounting the real-thread benches
  // use (bench_poll_frontier, bench_shard_scaling).
  SimDuration busy_time() const { return work_accum_ + stolen_accum_; }
  // Jobs completed.
  uint64_t jobs_completed() const { return jobs_completed_; }

  // Notified on idle->busy (true) and busy->idle (false) transitions.
  void set_state_observer(std::function<void(bool busy)> obs) {
    state_observer_ = std::move(obs);
  }

 private:
  struct Job {
    SimDuration work;
    std::function<void()> on_done;
    std::function<void()> on_start;
  };

  void StartNext();
  void FinishCurrent();
  void SetBusy(bool b);

  Simulator* sim_;
  int index_;
  std::deque<Job> queue_;
  bool busy_ = false;
  bool running_current_ = false;
  SimTime current_end_;
  std::function<void()> current_done_;
  EventHandle completion_;
  SimDuration work_accum_;
  SimDuration stolen_accum_;
  uint64_t jobs_completed_ = 0;
  std::function<void(bool)> state_observer_;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_MACHINE_CPU_H_
