#include "src/machine/machine_profile.h"

namespace softtimer {

MachineProfile MachineProfile::PentiumII300() {
  MachineProfile p;
  p.name = "PII-300";
  p.relative_speed = 1.0;
  p.hard_interrupt_overhead = SimDuration::Micros(4.45);  // Section 5.1
  return p;
}

MachineProfile MachineProfile::PentiumII333() {
  MachineProfile p;
  p.name = "PII-333";
  p.relative_speed = 333.0 / 300.0;
  p.hard_interrupt_overhead = SimDuration::Micros(4.45);  // same core as PII-300
  return p;
}

MachineProfile MachineProfile::PentiumIII500Xeon() {
  MachineProfile p;
  p.name = "PIII-500-Xeon";
  // Table 1: the ST-Apache trigger interval mean drops from 31.52 us to
  // 19.41 us, "a factor that roughly reflects the CPU clock speed ratio".
  p.relative_speed = 500.0 / 300.0;
  p.hard_interrupt_overhead = SimDuration::Micros(4.36);  // Section 5.1
  return p;
}

MachineProfile MachineProfile::Alpha21164_500() {
  MachineProfile p;
  p.name = "Alpha-21164-500";
  p.relative_speed = 500.0 / 300.0;
  p.hard_interrupt_overhead = SimDuration::Micros(8.64);  // Section 5.1
  return p;
}

}  // namespace softtimer
