// ModelAtomic / ModelCheckerTraits: the model checker's drop-in atomics.
//
// ModelCheckerTraits satisfies the atomics-traits contract documented in
// src/core/atomics_traits.h, so any primitive templated on a Traits
// parameter (SpscRing, RemotePendingFlag, SleeperGate) can be instantiated
// against the checker with zero changes to the protocol code:
//
//   SpscRing<int, ModelCheckerTraits> ring(4);  // inside a model test
//
// Each operation routes into the active ModelRuntime, which simulates a
// per-thread store buffer and tracks happens-before clocks; outside an
// execution (or on the controller during setup/finally closures) the
// operations degrade to direct single-threaded accesses, so fixtures can
// freely construct and inspect state.
//
// ModelAtomic models integral flags and counters only - that is all the
// shipped protocols use, and a 64-bit committed-value slot keeps the
// runtime's store-buffer entries trivially copyable.

#ifndef SOFTTIMER_SRC_CHECK_MODEL_ATOMIC_H_
#define SOFTTIMER_SRC_CHECK_MODEL_ATOMIC_H_

#include <atomic>
#include <cstdint>
#include <type_traits>

#include "src/check/model_runtime.h"

namespace softtimer::check {

template <typename T>
class ModelAtomic {
  static_assert(std::is_integral_v<T> && !std::is_same_v<T, bool>,
                "ModelAtomic models integral flags/counters (use uint32_t "
                "instead of bool)");
  static_assert(sizeof(T) <= sizeof(uint64_t));

 public:
  ModelAtomic() noexcept = default;
  // Implicit, like std::atomic, so `Atomic<uint64_t> pos{0}` member
  // initializers compile against either traits type.
  ModelAtomic(T v) noexcept { meta_.committed = Encode(v); }  // NOLINT
  ModelAtomic(const ModelAtomic&) = delete;
  ModelAtomic& operator=(const ModelAtomic&) = delete;

  T load(std::memory_order order = std::memory_order_seq_cst) const {
    if (ModelRuntime* rt = ModelRuntime::Active()) {
      return Decode(rt->AtomicLoad(&meta_, order));
    }
    return Decode(meta_.committed);
  }

  void store(T v, std::memory_order order = std::memory_order_seq_cst) {
    if (ModelRuntime* rt = ModelRuntime::Active()) {
      rt->AtomicStore(&meta_, Encode(v), order);
      return;
    }
    meta_.committed = Encode(v);
  }

  T fetch_add(T add, std::memory_order order = std::memory_order_seq_cst) {
    if (ModelRuntime* rt = ModelRuntime::Active()) {
      return Decode(rt->AtomicFetchAdd(&meta_, Encode(add), order));
    }
    uint64_t old = meta_.committed;
    meta_.committed = old + Encode(add);
    return Decode(old);
  }

  bool compare_exchange_strong(
      T& expected, T desired,
      std::memory_order order = std::memory_order_seq_cst) {
    uint64_t exp = Encode(expected);
    bool ok;
    if (ModelRuntime* rt = ModelRuntime::Active()) {
      ok = rt->AtomicCas(&meta_, exp, Encode(desired), order);
    } else if (meta_.committed == exp) {
      meta_.committed = Encode(desired);
      ok = true;
    } else {
      exp = meta_.committed;
      ok = false;
    }
    if (!ok) {
      expected = Decode(exp);
    }
    return ok;
  }

 private:
  static uint64_t Encode(T v) {
    return static_cast<uint64_t>(static_cast<std::make_unsigned_t<T>>(v));
  }
  static T Decode(uint64_t v) {
    return static_cast<T>(
        static_cast<std::make_unsigned_t<T>>(v & Mask()));
  }
  static constexpr uint64_t Mask() {
    return sizeof(T) == sizeof(uint64_t)
               ? ~uint64_t{0}
               : (uint64_t{1} << (sizeof(T) * 8)) - 1;
  }

  ModelAtomicMeta meta_;
};

struct ModelCheckerTraits {
  template <typename T>
  using Atomic = ModelAtomic<T>;

  static void ThreadFence(std::memory_order order) {
    if (ModelRuntime* rt = ModelRuntime::Active()) {
      rt->Fence(order);
      return;
    }
    std::atomic_thread_fence(order);
  }

  static void OnNonAtomicRead(const volatile void* addr) {
    if (ModelRuntime* rt = ModelRuntime::Active()) {
      rt->NonAtomicAccess(addr, /*is_write=*/false);
    }
  }

  static void OnNonAtomicWrite(const volatile void* addr) {
    if (ModelRuntime* rt = ModelRuntime::Active()) {
      rt->NonAtomicAccess(addr, /*is_write=*/true);
    }
  }

  static void Yield() {
    if (ModelRuntime* rt = ModelRuntime::Active()) {
      rt->Yield();
    }
  }
};

}  // namespace softtimer::check

#endif  // SOFTTIMER_SRC_CHECK_MODEL_ATOMIC_H_
