// ModelRuntime: an in-repo exhaustive-interleaving model checker for the
// lock-free primitives (relacy / CDSChecker-lite).
//
// A model test describes a tiny concurrent program: a setup closure that
// constructs fresh shared state, 2..kMaxModelThreads thread bodies, and a
// final invariant check. Explore() then runs the program over and over,
// enumerating thread interleavings with a depth-first search over scheduling
// decisions, until the (bounded) schedule space is exhausted or a violation
// is found. Failures replay deterministically: the failing decision string
// is reported and can be pinned via ModelConfig::replay.
//
// Memory model (see DESIGN.md section 11 for the full contract):
//
//  * Interleaving + store buffering (x86-TSO shape). Every atomic store
//    that is weaker than seq_cst enters the storing thread's FIFO buffer
//    and becomes globally visible only when committed - at a seq_cst store
//    or fence by that thread, or at a nondeterministic flush point chosen
//    by the scheduler. Loads snoop the thread's own buffer (store-to-load
//    forwarding) and otherwise read the last committed value. This is what
//    catches Dekker/store-buffering bugs like the PR 3 DrainRemote race.
//  * Happens-before race detection (FastTrack-style vector clocks) over the
//    non-atomic accesses instrumented through Traits::OnNonAtomicRead /
//    OnNonAtomicWrite. Acquire loads join the clock attached by release
//    stores; relaxed loads do not - so demoting an acquire/release pair to
//    relaxed surfaces as a reported data race on the payload it published,
//    regardless of whether TSO hardware would reorder it. This is what
//    catches e.g. a relaxed ring-head load in SpscRing::TryPush.
//  * Not modeled: IRIW / non-multi-copy-atomic effects, release sequences,
//    reading stores older than the latest committed one, and compiler
//    reorderings that TSO forbids but C++ allows (noted per-primitive in
//    the ordering structs).
//
// Scheduling: DPOR-lite - a bounded-preemption depth-first search (CHESS
// style). Only shared operations (atomic ops, fences, instrumented
// non-atomic accesses, yields) are scheduling points; switching away from a
// still-runnable thread costs one preemption against
// ModelConfig::preemption_bound, while switches at yields or thread exit
// are free. Store-buffer flushes are explored as zero-cost scheduler
// actions. Seeded-mutation tests in tests/model_check_test.cc prove the
// bound is deep enough to reproduce the bug classes we care about.

#ifndef SOFTTIMER_SRC_CHECK_MODEL_RUNTIME_H_
#define SOFTTIMER_SRC_CHECK_MODEL_RUNTIME_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace softtimer::check {

inline constexpr size_t kMaxModelThreads = 8;

// Per-thread logical clocks for happens-before tracking.
using VectorClock = std::array<uint32_t, kMaxModelThreads>;

inline void ClockJoin(VectorClock& into, const VectorClock& from) {
  for (size_t i = 0; i < kMaxModelThreads; ++i) {
    if (from[i] > into[i]) {
      into[i] = from[i];
    }
  }
}

// The model-side storage behind one ModelAtomic<T>: the last committed
// value plus the release clock attached by the store that committed it.
struct ModelAtomicMeta {
  uint64_t committed = 0;
  VectorClock commit_clock{};
};

struct ModelConfig {
  // Maximum context switches away from a still-runnable thread per
  // execution. 3 reproduces every bug class seeded in the mutation suite
  // with comfortable margin; raise for deeper protocols.
  int preemption_bound = 3;
  // Horizon: per-thread shared-operation budget. An execution that exceeds
  // it is pruned (counted in ExploreResult::horizon_hits), bounding
  // retry-loop livelocks instead of hanging the search.
  size_t max_steps_per_thread = 300;
  // Safety valve on the number of executions; the search reports
  // exhausted=false when it trips.
  size_t max_executions = 200'000;
  // When non-empty, run exactly this decision string (from a previous
  // failure report) instead of searching.
  std::vector<uint32_t> replay;
};

struct ExploreResult {
  bool ok = true;             // no violation found
  bool exhausted = false;     // the whole bounded schedule space was covered
  size_t executions = 0;      // complete executions explored
  size_t horizon_hits = 0;    // executions pruned by max_steps_per_thread
  std::string failure;        // description of the first violation
  std::vector<uint32_t> failing_schedule;  // decision string for replay

  // Gtest-friendly summary.
  std::string Summary() const;
};

// Thrown by MODEL_CHECK / race detection inside a model execution. Never
// escapes Explore().
struct ModelViolation : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// Internal: unwinds a worker when the execution is being abandoned.
struct ModelAbort {};
// Internal: unwinds a worker that exceeded the step horizon.
struct ModelHorizon {};

#define MODEL_CHECK(cond)                                             \
  do {                                                                \
    if (!(cond)) {                                                    \
      throw ::softtimer::check::ModelViolation("MODEL_CHECK failed: " \
                                               #cond);               \
    }                                                                 \
  } while (0)

class ModelRuntime;

// Handle passed to the per-execution setup closure.
class ModelExecution {
 public:
  // Registers a thread body. At most kMaxModelThreads per execution.
  void Thread(std::function<void()> body);
  // Registers the end-of-execution invariant check, run on the controller
  // after every thread finished and every store buffer drained. Use
  // MODEL_CHECK inside it.
  void Finally(std::function<void()> check);

 private:
  friend class ModelRuntime;
  explicit ModelExecution(ModelRuntime* rt) : rt_(rt) {}
  ModelRuntime* rt_;
};

using ModelSetupFn = std::function<void(ModelExecution&)>;

// Runs the bounded exhaustive search. The setup closure is invoked once per
// execution and must construct fresh shared state (capture it in the thread
// bodies via shared_ptr).
ExploreResult Explore(const ModelConfig& config, const ModelSetupFn& setup);

// The engine. Tests use Explore(); ModelAtomic/ModelCheckerTraits call the
// instrumentation entry points below.
class ModelRuntime {
 public:
  // Non-null on any thread currently participating in a model execution
  // (workers and, during setup/finally, the controller).
  static ModelRuntime* Active();

  // --- Instrumentation entry points (model_atomic.h) -------------------
  uint64_t AtomicLoad(const ModelAtomicMeta* loc, std::memory_order order);
  void AtomicStore(ModelAtomicMeta* loc, uint64_t value,
                   std::memory_order order);
  uint64_t AtomicFetchAdd(ModelAtomicMeta* loc, uint64_t add,
                          std::memory_order order);
  bool AtomicCas(ModelAtomicMeta* loc, uint64_t& expected, uint64_t desired,
                 std::memory_order order);
  void Fence(std::memory_order order);
  void NonAtomicAccess(const volatile void* addr, bool is_write);
  void Yield();

 private:
  friend ExploreResult Explore(const ModelConfig& config,
                               const ModelSetupFn& setup);
  friend class ModelExecution;

  explicit ModelRuntime(ModelConfig config);
  ~ModelRuntime();

  ModelRuntime(const ModelRuntime&) = delete;
  ModelRuntime& operator=(const ModelRuntime&) = delete;

  enum class WorkerStatus : uint8_t {
    kIdle,      // no task assigned (parked at top of trampoline)
    kAssigned,  // task assigned, never scheduled yet
    kAtPoint,   // blocked inside a scheduling point
    kRunning,   // owns the turn, executing toward its next point
    kFinished,  // body returned / unwound this execution
  };

  struct BufferedStore {
    ModelAtomicMeta* loc;
    uint64_t value;
    VectorClock clock;  // release clock carried by this store (may be zero)
  };

  // One pooled worker thread; reused across executions.
  struct Worker {
    std::thread thread;
    std::function<void()> task;
    // Binary-semaphore handoff implemented with mutex+cv for portability.
    std::mutex m;
    std::condition_variable cv;
    bool resume_token = false;

    WorkerStatus status = WorkerStatus::kIdle;
    std::deque<BufferedStore> buffer;  // TSO store buffer, FIFO
    VectorClock clock{};               // happens-before clock
    VectorClock fence_release{};       // clock pinned by last release fence
    VectorClock acq_pending{};         // joined at the next acquire fence
    size_t steps = 0;
    bool yielded = false;
  };

  // FastTrack-lite record for one instrumented non-atomic address.
  struct AccessRecord {
    int last_writer = -1;
    uint32_t write_epoch = 0;
    VectorClock read_epochs{};
  };

  ExploreResult Run(const ModelSetupFn& setup);
  // Runs one execution following/extending the decision stack. Returns true
  // if a violation was found.
  bool RunOneExecution(const ModelSetupFn& setup);
  // Enumerates the deterministic action list for the current state.
  // Encoding: action id = thread index (step), or kFlushBase + thread index
  // (commit the oldest entry of that thread's store buffer).
  void EnumerateActions(std::vector<uint32_t>& out) const;
  void ApplyAction(uint32_t action);
  void StepWorker(size_t tid);
  void FlushOne(size_t tid);
  void CommitStore(const BufferedStore& s);
  void DrainBuffer(size_t tid);
  void AbortStragglers();
  void ResetExecutionState();

  // Worker-side helpers. WorkerLoop takes its Worker directly: workers_ may
  // still be growing (vector reallocation) while a fresh thread starts up.
  void WorkerLoop(size_t tid, Worker* w);
  void SchedulePoint();
  void RecordViolation(const std::string& what);

  static constexpr uint32_t kFlushBase = 16;

  ModelConfig config_;
  std::vector<std::unique_ptr<Worker>> workers_;
  size_t threads_this_execution_ = 0;
  std::function<void()> finally_;

  // Controller <- worker handoff.
  std::mutex ctl_m_;
  std::condition_variable ctl_cv_;
  bool ctl_token_ = false;
  void ControlWait();
  void ControlSignal();
  void ResumeWorker(size_t tid);
  // Takes the Worker directly, not an index: a freshly spawned thread waits
  // here while workers_ may still be reallocating under the controller.
  void WorkerWait(Worker& w);

  bool shutdown_ = false;
  bool abort_execution_ = false;
  bool horizon_hit_ = false;
  bool violation_ = false;
  std::string violation_text_;

  int current_thread_ = -1;
  int preemptions_used_ = 0;

  std::unordered_map<const volatile void*, AccessRecord> na_records_;

  // DFS state. Each decision records the chosen index into the enumerated
  // action list and the number of alternatives that existed.
  struct Decision {
    uint32_t chosen;
    uint32_t num_actions;
  };
  std::vector<Decision> stack_;
  size_t replay_depth_ = 0;  // decisions consumed from stack_ this execution
  std::vector<uint32_t> trace_;  // action ids taken this execution
};

}  // namespace softtimer::check

#endif  // SOFTTIMER_SRC_CHECK_MODEL_RUNTIME_H_
