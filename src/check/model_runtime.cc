#include "src/check/model_runtime.h"

#include <cassert>
#include <sstream>
#include <utility>

namespace softtimer::check {

namespace {

// Identity of the calling thread within the active runtime: -1 on the
// controller (and on threads that never joined an execution), otherwise the
// model thread index. The controller routes instrumentation calls to direct
// uninstrumented behavior, which is what setup/finally closures need.
thread_local ModelRuntime* g_active = nullptr;
thread_local int g_tid = -1;

bool IsAcquire(std::memory_order o) {
  return o == std::memory_order_acquire || o == std::memory_order_consume ||
         o == std::memory_order_acq_rel || o == std::memory_order_seq_cst;
}

bool IsRelease(std::memory_order o) {
  return o == std::memory_order_release || o == std::memory_order_acq_rel ||
         o == std::memory_order_seq_cst;
}

}  // namespace

std::string ExploreResult::Summary() const {
  std::ostringstream os;
  os << (ok ? "ok" : "FAILED") << ", executions=" << executions
     << ", exhausted=" << (exhausted ? "yes" : "no")
     << ", horizon_hits=" << horizon_hits;
  if (!ok) {
    os << "\n  failure: " << failure << "\n  replay schedule:";
    for (uint32_t c : failing_schedule) {
      os << ' ' << c;
    }
  }
  return os.str();
}

ModelRuntime* ModelRuntime::Active() { return g_active; }

ModelRuntime::ModelRuntime(ModelConfig config) : config_(std::move(config)) {}

ModelRuntime::~ModelRuntime() {
  // All workers are parked at the top of their trampoline by the time Run()
  // returns (every execution ends with AbortStragglers or clean finishes).
  shutdown_ = true;
  for (size_t i = 0; i < workers_.size(); ++i) {
    ResumeWorker(i);
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) {
      w->thread.join();
    }
  }
}

// --- controller <-> worker handoff -------------------------------------
//
// Exactly one thread (controller or a single worker) runs at any moment, so
// every piece of model state is plain memory; the mutexes below carry the
// happens-before between turns.

void ModelRuntime::ControlWait() {
  std::unique_lock<std::mutex> lock(ctl_m_);
  ctl_cv_.wait(lock, [this] { return ctl_token_; });
  ctl_token_ = false;
}

void ModelRuntime::ControlSignal() {
  {
    std::lock_guard<std::mutex> lock(ctl_m_);
    ctl_token_ = true;
  }
  ctl_cv_.notify_one();
}

void ModelRuntime::ResumeWorker(size_t tid) {
  Worker& w = *workers_[tid];
  {
    std::lock_guard<std::mutex> lock(w.m);
    w.resume_token = true;
  }
  w.cv.notify_one();
}

void ModelRuntime::WorkerWait(Worker& w) {
  std::unique_lock<std::mutex> lock(w.m);
  w.cv.wait(lock, [&w] { return w.resume_token; });
  w.resume_token = false;
}

// --- ModelExecution ----------------------------------------------------

void ModelExecution::Thread(std::function<void()> body) {
  ModelRuntime* rt = rt_;
  size_t idx = rt->threads_this_execution_;
  assert(idx < kMaxModelThreads && "too many model threads");
  if (idx >= rt->workers_.size()) {
    auto owned = std::make_unique<ModelRuntime::Worker>();
    ModelRuntime::Worker* w = owned.get();
    rt->workers_.push_back(std::move(owned));
    w->thread = std::thread([rt, idx, w] { rt->WorkerLoop(idx, w); });
  }
  ModelRuntime::Worker& w = *rt->workers_[idx];
  w.task = std::move(body);
  w.status = ModelRuntime::WorkerStatus::kAssigned;
  ++rt->threads_this_execution_;
}

void ModelExecution::Finally(std::function<void()> check) {
  rt_->finally_ = std::move(check);
}

// --- worker side -------------------------------------------------------

void ModelRuntime::WorkerLoop(size_t tid, Worker* worker) {
  g_active = this;
  g_tid = static_cast<int>(tid);
  Worker& w = *worker;
  while (true) {
    WorkerWait(w);
    if (shutdown_) {
      return;
    }
    w.status = WorkerStatus::kRunning;
    try {
      w.task();
    } catch (const ModelViolation& v) {
      RecordViolation(v.what());
    } catch (const ModelAbort&) {
    } catch (const ModelHorizon&) {
    }
    w.status = WorkerStatus::kFinished;
    w.task = nullptr;
    ControlSignal();
  }
}

void ModelRuntime::SchedulePoint() {
  Worker& w = *workers_[g_tid];
  if (abort_execution_) {
    throw ModelAbort{};
  }
  ++w.steps;
  if (w.steps > config_.max_steps_per_thread) {
    horizon_hit_ = true;
    throw ModelHorizon{};
  }
  w.status = WorkerStatus::kAtPoint;
  ControlSignal();
  WorkerWait(w);
  w.status = WorkerStatus::kRunning;
  if (abort_execution_) {
    throw ModelAbort{};
  }
}

void ModelRuntime::RecordViolation(const std::string& what) {
  if (!violation_) {
    violation_ = true;
    violation_text_ = what;
  }
  abort_execution_ = true;
}

// --- instrumentation entry points --------------------------------------
//
// Every entry blocks at a scheduling point *before* performing its effect,
// so the effect lands when the scheduler grants the turn - that is the unit
// of interleaving. Calls from the controller (setup/finally, g_tid < 0) and
// from foreign threads fall through to direct uninstrumented behavior.

uint64_t ModelRuntime::AtomicLoad(const ModelAtomicMeta* loc,
                                  std::memory_order order) {
  if (g_active != this || g_tid < 0) {
    return loc->committed;
  }
  SchedulePoint();
  Worker& w = *workers_[g_tid];
  ++w.clock[g_tid];
  // TSO store-to-load forwarding: a thread always observes its own latest
  // buffered store to the location, with no synchronization implied.
  for (auto it = w.buffer.rbegin(); it != w.buffer.rend(); ++it) {
    if (it->loc == loc) {
      return it->value;
    }
  }
  if (IsAcquire(order)) {
    ClockJoin(w.clock, loc->commit_clock);
  } else {
    // A relaxed read does not synchronize by itself, but a later acquire
    // fence can retroactively turn it into one (C11 fence semantics).
    ClockJoin(w.acq_pending, loc->commit_clock);
  }
  return loc->committed;
}

void ModelRuntime::AtomicStore(ModelAtomicMeta* loc, uint64_t value,
                               std::memory_order order) {
  if (g_active != this || g_tid < 0) {
    loc->committed = value;
    loc->commit_clock = VectorClock{};
    return;
  }
  SchedulePoint();
  Worker& w = *workers_[g_tid];
  ++w.clock[g_tid];
  if (order == std::memory_order_seq_cst) {
    // x86 mapping: MOV + MFENCE. The buffer drains, then the store commits.
    DrainBuffer(static_cast<size_t>(g_tid));
    loc->committed = value;
    loc->commit_clock = w.clock;
    return;
  }
  // Anything weaker sits in the FIFO store buffer until this thread issues
  // a seq_cst store/fence or the scheduler picks a flush action. A release
  // store carries the thread's clock; a relaxed store carries only what a
  // prior release fence pinned (possibly nothing).
  w.buffer.push_back(
      BufferedStore{loc, value, IsRelease(order) ? w.clock : w.fence_release});
}

uint64_t ModelRuntime::AtomicFetchAdd(ModelAtomicMeta* loc, uint64_t add,
                                      std::memory_order order) {
  (void)order;  // modeled conservatively: locked RMW = drain + acq_rel
  if (g_active != this || g_tid < 0) {
    uint64_t old = loc->committed;
    loc->committed = old + add;
    return old;
  }
  SchedulePoint();
  Worker& w = *workers_[g_tid];
  ++w.clock[g_tid];
  DrainBuffer(static_cast<size_t>(g_tid));
  uint64_t old = loc->committed;
  ClockJoin(w.clock, loc->commit_clock);
  loc->committed = old + add;
  loc->commit_clock = w.clock;
  return old;
}

bool ModelRuntime::AtomicCas(ModelAtomicMeta* loc, uint64_t& expected,
                             uint64_t desired, std::memory_order order) {
  (void)order;  // modeled conservatively: locked RMW = drain + acq_rel
  if (g_active != this || g_tid < 0) {
    if (loc->committed == expected) {
      loc->committed = desired;
      return true;
    }
    expected = loc->committed;
    return false;
  }
  SchedulePoint();
  Worker& w = *workers_[g_tid];
  ++w.clock[g_tid];
  DrainBuffer(static_cast<size_t>(g_tid));
  ClockJoin(w.clock, loc->commit_clock);
  if (loc->committed == expected) {
    loc->committed = desired;
    loc->commit_clock = w.clock;
    return true;
  }
  expected = loc->committed;
  return false;
}

void ModelRuntime::Fence(std::memory_order order) {
  if (g_active != this || g_tid < 0) {
    return;
  }
  SchedulePoint();
  Worker& w = *workers_[g_tid];
  ++w.clock[g_tid];
  if (order == std::memory_order_seq_cst) {
    // The store-load barrier: this is what closes Dekker/store-buffering
    // shapes, and what the seeded fence-weakening mutations remove.
    DrainBuffer(static_cast<size_t>(g_tid));
  }
  if (IsAcquire(order)) {
    ClockJoin(w.clock, w.acq_pending);
    w.acq_pending = VectorClock{};
  }
  if (IsRelease(order)) {
    w.fence_release = w.clock;
  }
}

void ModelRuntime::NonAtomicAccess(const volatile void* addr, bool is_write) {
  if (g_active != this || g_tid < 0) {
    return;
  }
  SchedulePoint();
  Worker& w = *workers_[g_tid];
  const int t = g_tid;
  ++w.clock[t];
  AccessRecord& rec = na_records_[addr];
  const void* plain_addr = const_cast<const void*>(addr);
  if (rec.last_writer >= 0 && rec.last_writer != t &&
      rec.write_epoch > w.clock[rec.last_writer]) {
    std::ostringstream os;
    os << "data race: " << (is_write ? "write" : "read") << " by thread " << t
       << " at " << plain_addr << " is unordered with the write by thread "
       << rec.last_writer;
    throw ModelViolation(os.str());
  }
  if (is_write) {
    for (size_t u = 0; u < kMaxModelThreads; ++u) {
      if (static_cast<int>(u) != t && rec.read_epochs[u] > w.clock[u]) {
        std::ostringstream os;
        os << "data race: write by thread " << t << " at " << plain_addr
           << " is unordered with the read by thread " << u;
        throw ModelViolation(os.str());
      }
    }
    rec.last_writer = t;
    rec.write_epoch = w.clock[t];
    // Prior reads happen-before this write (just checked), so the write
    // epoch alone now guards the location.
    rec.read_epochs = VectorClock{};
  } else {
    rec.read_epochs[t] = w.clock[t];
  }
}

void ModelRuntime::Yield() {
  if (g_active != this || g_tid < 0) {
    return;
  }
  Worker& w = *workers_[g_tid];
  w.yielded = true;  // switching away from us is preemption-free
  SchedulePoint();
  w.yielded = false;
}

// --- controller side ---------------------------------------------------

void ModelRuntime::StepWorker(size_t tid) {
  current_thread_ = static_cast<int>(tid);
  ResumeWorker(tid);
  ControlWait();
}

void ModelRuntime::CommitStore(const BufferedStore& s) {
  s.loc->committed = s.value;
  s.loc->commit_clock = s.clock;
}

void ModelRuntime::FlushOne(size_t tid) {
  Worker& w = *workers_[tid];
  CommitStore(w.buffer.front());
  w.buffer.pop_front();
}

void ModelRuntime::DrainBuffer(size_t tid) {
  Worker& w = *workers_[tid];
  while (!w.buffer.empty()) {
    CommitStore(w.buffer.front());
    w.buffer.pop_front();
  }
}

void ModelRuntime::EnumerateActions(std::vector<uint32_t>& out) const {
  out.clear();
  const bool budget_spent = preemptions_used_ >= config_.preemption_bound;
  bool cur_runnable = false;
  if (current_thread_ >= 0) {
    const Worker& cur = *workers_[current_thread_];
    cur_runnable = cur.status == WorkerStatus::kAtPoint && !cur.yielded;
  }
  for (size_t t = 0; t < threads_this_execution_; ++t) {
    if (workers_[t]->status != WorkerStatus::kAtPoint) {
      continue;
    }
    // CHESS-style bounding: once the preemption budget is spent, a thread
    // runs until it blocks, yields, or finishes; only then may another run.
    if (budget_spent && cur_runnable &&
        static_cast<int>(t) != current_thread_) {
      continue;
    }
    out.push_back(static_cast<uint32_t>(t));
  }
  for (size_t t = 0; t < threads_this_execution_; ++t) {
    const Worker& w = *workers_[t];
    if (w.buffer.empty()) {
      continue;
    }
    // Flushing the current thread's own buffer between two of its ops is
    // invisible (it forwards from the buffer); skip unless it finished.
    if (static_cast<int>(t) == current_thread_ &&
        w.status != WorkerStatus::kFinished) {
      continue;
    }
    out.push_back(kFlushBase + static_cast<uint32_t>(t));
  }
}

void ModelRuntime::ApplyAction(uint32_t action) {
  trace_.push_back(action);
  if (action >= kFlushBase) {
    FlushOne(action - kFlushBase);
    return;
  }
  const size_t tid = action;
  if (current_thread_ >= 0 && static_cast<int>(tid) != current_thread_) {
    const Worker& cur = *workers_[current_thread_];
    if (cur.status == WorkerStatus::kAtPoint && !cur.yielded) {
      ++preemptions_used_;  // switched away from a thread that could run
    }
  }
  StepWorker(tid);
}

void ModelRuntime::AbortStragglers() {
  abort_execution_ = true;
  for (size_t t = 0; t < threads_this_execution_; ++t) {
    Worker& w = *workers_[t];
    while (w.status == WorkerStatus::kAtPoint ||
           w.status == WorkerStatus::kAssigned) {
      StepWorker(t);  // resumed worker observes the abort flag and unwinds
    }
    w.buffer.clear();
  }
}

void ModelRuntime::ResetExecutionState() {
  for (auto& wp : workers_) {
    Worker& w = *wp;
    w.status = WorkerStatus::kIdle;
    w.task = nullptr;
    w.buffer.clear();
    w.clock = VectorClock{};
    w.fence_release = VectorClock{};
    w.acq_pending = VectorClock{};
    w.steps = 0;
    w.yielded = false;
  }
  threads_this_execution_ = 0;
  finally_ = nullptr;
  abort_execution_ = false;
  horizon_hit_ = false;
  violation_ = false;
  violation_text_.clear();
  current_thread_ = -1;
  preemptions_used_ = 0;
  na_records_.clear();
  replay_depth_ = 0;
  trace_.clear();
}

bool ModelRuntime::RunOneExecution(const ModelSetupFn& setup) {
  ResetExecutionState();
  ModelExecution ex(this);
  setup(ex);
  // Prologue: run every thread up to its first scheduling point. No shared
  // operation executes here (entries block *before* their effect), so the
  // prologue order is not a scheduling decision.
  for (size_t t = 0; t < threads_this_execution_; ++t) {
    if (violation_ || horizon_hit_) {
      break;
    }
    if (workers_[t]->status == WorkerStatus::kAssigned) {
      StepWorker(t);
    }
  }
  current_thread_ = -1;  // the first real switch is free
  std::vector<uint32_t> acts;
  while (!violation_ && !horizon_hit_) {
    bool done = true;
    for (size_t t = 0; t < threads_this_execution_; ++t) {
      if (workers_[t]->status != WorkerStatus::kFinished ||
          !workers_[t]->buffer.empty()) {
        done = false;
        break;
      }
    }
    if (done) {
      break;
    }
    EnumerateActions(acts);
    if (acts.empty()) {
      RecordViolation("model scheduler deadlock: no enabled actions");
      break;
    }
    uint32_t idx = 0;
    if (acts.size() > 1) {
      // Only genuine choice points are decisions; single-action stretches
      // replay identically for free.
      if (replay_depth_ < stack_.size()) {
        idx = stack_[replay_depth_].chosen;
        assert(idx < acts.size() && "non-deterministic model execution");
      } else {
        stack_.push_back(Decision{0, static_cast<uint32_t>(acts.size())});
      }
      ++replay_depth_;
    }
    ApplyAction(acts[idx]);
  }
  if (!violation_ && !horizon_hit_ && finally_) {
    current_thread_ = -1;
    try {
      finally_();
    } catch (const ModelViolation& v) {
      violation_ = true;
      violation_text_ = v.what();
    }
  }
  if (violation_ || horizon_hit_) {
    AbortStragglers();
  }
  return violation_;
}

ExploreResult ModelRuntime::Run(const ModelSetupFn& setup) {
  ModelRuntime* prev_active = g_active;
  int prev_tid = g_tid;
  g_active = this;
  g_tid = -1;
  ExploreResult res;
  const bool replay_mode = !config_.replay.empty();
  if (replay_mode) {
    for (uint32_t c : config_.replay) {
      stack_.push_back(Decision{c, c + 1});
    }
  }
  size_t horizon_total = 0;
  while (res.executions < config_.max_executions) {
    const bool bad = RunOneExecution(setup);
    ++res.executions;
    if (horizon_hit_) {
      ++horizon_total;
    }
    if (bad) {
      res.ok = false;
      res.failure = violation_text_;
      res.failing_schedule.clear();
      for (size_t i = 0; i < replay_depth_ && i < stack_.size(); ++i) {
        res.failing_schedule.push_back(stack_[i].chosen);
      }
      break;
    }
    if (replay_mode) {
      res.exhausted = true;
      break;
    }
    // Depth-first backtrack: advance the deepest decision that still has an
    // untried alternative; drop exhausted tails.
    while (!stack_.empty() &&
           stack_.back().chosen + 1 >= stack_.back().num_actions) {
      stack_.pop_back();
    }
    if (stack_.empty()) {
      res.exhausted = true;
      break;
    }
    ++stack_.back().chosen;
  }
  res.horizon_hits = horizon_total;
  g_active = prev_active;
  g_tid = prev_tid;
  return res;
}

ExploreResult Explore(const ModelConfig& config, const ModelSetupFn& setup) {
  ModelRuntime rt(config);
  return rt.Run(setup);
}

}  // namespace softtimer::check
