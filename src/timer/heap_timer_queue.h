// Binary-heap TimerQueue. O(log n) schedule, O(1) earliest-deadline,
// lazy-deletion cancel. The baseline the timing wheels are compared against
// in bench/bench_micro_timer_wheel.cc.
//
// Payloads live in slab-recycled nodes (timer_slab.h); the heap itself holds
// only {deadline, seq, slot, generation} entries, so a cancelled timer's
// entry goes stale (its generation no longer matches the slot) and is
// skimmed lazily at the top. When stale entries outnumber live ones the heap
// compacts in place (remove_if + make_heap, no allocation), so a
// schedule/cancel-only workload cannot grow the vector unboundedly.
// Steady-state schedule/cancel/fire performs zero heap allocations once the
// slab and the heap vector reach the workload's high-water mark.

#ifndef SOFTTIMER_SRC_TIMER_HEAP_TIMER_QUEUE_H_
#define SOFTTIMER_SRC_TIMER_HEAP_TIMER_QUEUE_H_

#include <vector>

#include "src/timer/timer_queue.h"
#include "src/timer/timer_slab.h"

namespace softtimer {

class HeapTimerQueue : public TimerQueue {
 public:
  HeapTimerQueue() = default;

  using TimerQueue::Schedule;
  TimerId Schedule(uint64_t deadline_tick, TimerPayload payload) override;
  bool Cancel(TimerId id) override;
  size_t ExpireUpTo(uint64_t now_tick) override;
  std::optional<uint64_t> EarliestDeadline() const override;
  size_t size() const override { return live_count_; }
  std::string name() const override { return "heap"; }
  TimerSlabStats slab_stats() const override { return slab_.stats(); }
  // Lazily-deleted heap entries may reference freed slots, so compact (drop
  // every stale entry) before releasing chunks out from under them.
  size_t TrimSlab() override {
    Compact();
    return slab_.Trim();
  }
  uint64_t PeekUserData(TimerId id) const override {
    return slab_.IsCurrent(id.value)
               ? slab_.at(TimerIdIndex(id.value)).payload.user_data
               : 0;
  }
  TimerPayload* MutablePayload(TimerId id) override {
    return slab_.IsCurrent(id.value)
               ? &slab_.at(TimerIdIndex(id.value)).payload
               : nullptr;
  }

 private:
  struct Node {
    TimerPayload payload;
    uint64_t deadline = 0;
    uint32_t generation = 1;         // slab convention (see timer_slab.h)
    uint32_t next = kNilTimerIndex;  // free-list link
    TimerNodeState state = TimerNodeState::kFree;
  };

  struct HeapEntry {
    uint64_t deadline;
    uint64_t seq;
    uint32_t slot;
    uint32_t generation;
  };
  // Min-heap order on (deadline, seq).
  struct EntryAfter {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.deadline != b.deadline) {
        return a.deadline > b.deadline;
      }
      return a.seq > b.seq;
    }
  };

  // True when the entry still refers to the live timer it was pushed for.
  bool EntryCurrent(const HeapEntry& e) const {
    return slab_.at(e.slot).generation == e.generation;
  }
  void SkimCancelled() const;
  // Drops every stale entry and re-heapifies, in place.
  void Compact() const;
  // Capacity growth for heap_, split out so Schedule's push_back never takes
  // the reallocating branch (see the SOFTTIMER_COLD marker on the definition).
  void GrowHeap();

  // Deadlines below this are clamped up to it (same semantics as the
  // wheels): a past deadline fires on the next ExpireUpTo.
  uint64_t cursor_ = 0;
  mutable std::vector<HeapEntry> heap_;
  mutable size_t stale_count_ = 0;
  TimerSlab<Node> slab_;
  uint64_t next_seq_ = 0;
  size_t live_count_ = 0;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_TIMER_HEAP_TIMER_QUEUE_H_
