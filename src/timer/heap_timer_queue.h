// Binary-heap TimerQueue. O(log n) schedule, O(1) earliest-deadline,
// lazy-deletion cancel. The baseline the timing wheels are compared against
// in bench/bench_micro_timer_wheel.cc.

#ifndef SOFTTIMER_SRC_TIMER_HEAP_TIMER_QUEUE_H_
#define SOFTTIMER_SRC_TIMER_HEAP_TIMER_QUEUE_H_

#include <queue>
#include <unordered_map>
#include <vector>

#include "src/timer/timer_queue.h"

namespace softtimer {

class HeapTimerQueue : public TimerQueue {
 public:
  HeapTimerQueue() = default;

  TimerId Schedule(uint64_t deadline_tick, Callback cb) override;
  bool Cancel(TimerId id) override;
  size_t ExpireUpTo(uint64_t now_tick) override;
  std::optional<uint64_t> EarliestDeadline() const override;
  size_t size() const override { return live_.size(); }
  std::string name() const override { return "heap"; }

 private:
  struct HeapEntry {
    uint64_t deadline;
    uint64_t seq;
    uint64_t id;
    bool operator>(const HeapEntry& o) const {
      if (deadline != o.deadline) {
        return deadline > o.deadline;
      }
      return seq > o.seq;
    }
  };

  void SkimCancelled() const;

  // Deadlines below this are clamped up to it (same semantics as the
  // wheels): a past deadline fires on the next ExpireUpTo.
  uint64_t cursor_ = 0;
  mutable std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  std::unordered_map<uint64_t, Callback> live_;
  uint64_t next_id_ = 1;
  uint64_t next_seq_ = 0;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_TIMER_HEAP_TIMER_QUEUE_H_
