#include "src/timer/grouped_sorting_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace softtimer {

GroupedSortingQueue::GroupedSortingQueue(uint64_t granularity,
                                         size_t group_count)
    : fine_width_(granularity),
      coarse_width_(granularity * group_count),
      group_count_(group_count),
      fine_limit_(coarse_width_),
      coarse_limit_(coarse_width_),
      fine_heads_(group_count, kNilTimerIndex),
      coarse_heads_(group_count, kNilTimerIndex) {
  assert(fine_width_ >= 1);
  assert(group_count_ >= 2);
}

// SOFTTIMER_HOT
void GroupedSortingQueue::Link(uint32_t index) {
  Node& n = slab_.at(index);
  uint32_t* head;
  if (n.deadline < fine_limit_) {
    n.level = kLevelFine;
    n.group = static_cast<uint32_t>((n.deadline / fine_width_) % group_count_);
    head = &fine_heads_[n.group];
    ++ring_count_;
  } else if (n.deadline < coarse_limit_) {
    n.level = kLevelCoarse;
    n.group =
        static_cast<uint32_t>((n.deadline / coarse_width_) % group_count_);
    head = &coarse_heads_[n.group];
    ++ring_count_;
  } else {
    n.level = kLevelFar;
    head = &far_head_;
    ++far_count_;
  }
  n.prev = kNilTimerIndex;
  n.next = *head;
  if (n.next != kNilTimerIndex) {
    slab_.at(n.next).prev = index;
  }
  *head = index;
}

// SOFTTIMER_HOT
void GroupedSortingQueue::Unlink(uint32_t index) {
  Node& n = slab_.at(index);
  uint32_t* head;
  if (n.level == kLevelFine) {
    head = &fine_heads_[n.group];
    --ring_count_;
  } else if (n.level == kLevelCoarse) {
    head = &coarse_heads_[n.group];
    --ring_count_;
  } else {
    head = &far_head_;
    --far_count_;
  }
  if (n.prev != kNilTimerIndex) {
    slab_.at(n.prev).next = n.next;
  } else {
    *head = n.next;
  }
  if (n.next != kNilTimerIndex) {
    slab_.at(n.next).prev = n.prev;
  }
  n.prev = kNilTimerIndex;
  n.next = kNilTimerIndex;
}

// SOFTTIMER_HOT
void GroupedSortingQueue::FreeNode(uint32_t index) {
  Node& n = slab_.at(index);
  n.payload.handler.reset();
  slab_.Free(index);
}

void GroupedSortingQueue::PlaceOrBatch(uint32_t index, uint64_t now_tick,
                                       std::vector<uint32_t>* batch) {
  Node& n = slab_.at(index);
  if (batch != nullptr && n.deadline <= now_tick) {
    n.state = TimerNodeState::kDue;
    batch->push_back(index);
    return;
  }
  Link(index);
}

void GroupedSortingQueue::MigrateCoarseGroup(uint64_t now_tick,
                                             std::vector<uint32_t>* batch) {
  size_t group = (fine_limit_ / coarse_width_) % group_count_;
  uint32_t it = coarse_heads_[group];
  coarse_heads_[group] = kNilTimerIndex;
  // Advance the window edge before redistributing, so Link routes the
  // detached nodes (all with deadline < the new fine_limit_) into fine
  // groups instead of straight back into this coarse group.
  fine_limit_ += coarse_width_;
  while (it != kNilTimerIndex) {
    Node& n = slab_.at(it);
    uint32_t next = n.next;
    n.prev = kNilTimerIndex;
    n.next = kNilTimerIndex;
    --ring_count_;
    PlaceOrBatch(it, now_tick, batch);
    it = next;
  }
}

void GroupedSortingQueue::RefillCoarseFromFar(uint64_t now_tick,
                                              std::vector<uint32_t>* batch) {
  assert(fine_limit_ == coarse_limit_);
  coarse_limit_ += coarse_width_ * group_count_;
  uint32_t it = far_head_;
  while (it != kNilTimerIndex) {
    Node& n = slab_.at(it);
    uint32_t next = n.next;
    if (n.deadline < coarse_limit_) {
      Unlink(it);
      PlaceOrBatch(it, now_tick, batch);
    }
    it = next;
  }
}

void GroupedSortingQueue::AdvanceWindows(uint64_t now_tick,
                                         std::vector<uint32_t>* batch) {
  while (fine_limit_ <= now_tick) {
    if (ring_count_ == 0) {
      // Both rings empty: jump the windows wholesale instead of detaching
      // empty groups one by one across the gap.
      fine_limit_ = RoundUpMultiple(now_tick + 1, coarse_width_);
      if (coarse_limit_ < fine_limit_) {
        coarse_limit_ = fine_limit_;
      }
      if (fine_limit_ == coarse_limit_ && far_count_ > 0) {
        RefillCoarseFromFar(now_tick, batch);
      }
      continue;  // fine_limit_ > now_tick now; loop exits
    }
    if (fine_limit_ == coarse_limit_) {
      RefillCoarseFromFar(now_tick, batch);
    }
    MigrateCoarseGroup(now_tick, batch);
  }
}

// SOFTTIMER_HOT
TimerId GroupedSortingQueue::Schedule(uint64_t deadline_tick,
                                      TimerPayload payload) {
  if (deadline_tick < cursor_) {
    deadline_tick = cursor_;
  }
  uint32_t index = slab_.Allocate();
  Node& n = slab_.at(index);
  n.payload = std::move(payload);
  n.deadline = deadline_tick;
  n.seq = next_seq_++;
  Link(index);
  ++live_count_;
  if (earliest_known_) {
    if (!earliest_cache_ || deadline_tick < *earliest_cache_) {
      earliest_cache_ = deadline_tick;
    }
  }
  return TimerId{PackTimerIdValue(index, n.generation)};
}

// SOFTTIMER_HOT
bool GroupedSortingQueue::Cancel(TimerId id) {
  if (!slab_.IsCurrent(id.value)) {
    return false;
  }
  uint32_t index = TimerIdIndex(id.value);
  Node& n = slab_.at(index);
  if (n.state == TimerNodeState::kCancelledDue) {
    return false;  // already cancelled (while sitting in an expiry batch)
  }
  if (n.state == TimerNodeState::kDue) {
    // In an in-progress expiry batch: mark it; the fire loop reaps it.
    n.state = TimerNodeState::kCancelledDue;
    --live_count_;
    return true;
  }
  bool was_earliest =
      earliest_known_ && earliest_cache_ && n.deadline == *earliest_cache_;
  Unlink(index);
  FreeNode(index);
  --live_count_;
  if (live_count_ == 0) {
    earliest_cache_.reset();
    earliest_known_ = true;
  } else if (was_earliest) {
    earliest_known_ = false;
  }
  return true;
}

// The native O(1) update: relink the node under the new deadline, keeping
// its slab slot and generation, so the input id stays valid and is returned.
// A fresh seq keeps FIFO parity with the cancel+reschedule emulation (the
// moved timer fires after existing equal-deadline timers).
// SOFTTIMER_HOT
TimerId GroupedSortingQueue::Update(TimerId id, uint64_t new_deadline_tick) {
  if (!slab_.IsCurrent(id.value)) {
    return TimerId{};
  }
  uint32_t index = TimerIdIndex(id.value);
  Node& n = slab_.at(index);
  if (n.state == TimerNodeState::kCancelledDue) {
    return TimerId{};
  }
  if (new_deadline_tick < cursor_) {
    new_deadline_tick = cursor_;
  }
  if (n.state == TimerNodeState::kDue) {
    // Sitting unfired in an in-progress expiry batch: pull it back to
    // pending and relink; the fire loop skips non-kDue entries without
    // freeing them, so the node simply fires at its new deadline later.
    n.state = TimerNodeState::kPending;
    n.deadline = new_deadline_tick;
    n.seq = next_seq_++;
    Link(index);
    if (earliest_known_ &&
        (!earliest_cache_ || new_deadline_tick < *earliest_cache_)) {
      earliest_cache_ = new_deadline_tick;
    }
    return id;
  }
  bool was_earliest =
      earliest_known_ && earliest_cache_ && n.deadline == *earliest_cache_;
  Unlink(index);
  n.deadline = new_deadline_tick;
  n.seq = next_seq_++;
  Link(index);
  if (earliest_known_) {
    if (!earliest_cache_ || new_deadline_tick <= *earliest_cache_) {
      earliest_cache_ = new_deadline_tick;
    } else if (was_earliest) {
      // The (possibly sole) earliest timer moved later; recompute lazily.
      earliest_known_ = false;
    }
  }
  return id;
}

std::optional<uint64_t> GroupedSortingQueue::EarliestDeadline() const {
  if (!earliest_known_) {
    uint64_t best = UINT64_MAX;
    if (ring_count_ > 0) {
      // Fine groups outward from the cursor, with a per-group floor
      // early-exit: group b only holds deadlines >= b * fine_width_. When
      // cursor_ > fine_limit_ the range is empty, and so is the fine ring
      // (see the cursor_ comment in the header).
      for (uint64_t b = cursor_ / fine_width_; b < fine_limit_ / fine_width_;
           ++b) {
        if (best <= b * fine_width_) {
          break;
        }
        uint32_t it = fine_heads_[b % group_count_];
        while (it != kNilTimerIndex) {
          const Node& n = slab_.at(it);
          if (n.deadline < best) {
            best = n.deadline;
          }
          it = n.next;
        }
      }
      // Any fine hit beats every coarse node (tiers are range-disjoint).
      if (best == UINT64_MAX) {
        for (uint64_t b = fine_limit_ / coarse_width_;
             b < coarse_limit_ / coarse_width_; ++b) {
          if (best <= b * coarse_width_) {
            break;
          }
          uint32_t it = coarse_heads_[b % group_count_];
          while (it != kNilTimerIndex) {
            const Node& n = slab_.at(it);
            if (n.deadline < best) {
              best = n.deadline;
            }
            it = n.next;
          }
        }
      }
    }
    if (best == UINT64_MAX && far_count_ > 0) {
      uint32_t it = far_head_;
      while (it != kNilTimerIndex) {
        const Node& n = slab_.at(it);
        if (n.deadline < best) {
          best = n.deadline;
        }
        it = n.next;
      }
    }
    // best can remain UINT64_MAX mid-batch when every live node is an
    // unfired due entry; the batch re-invalidates the cache on completion.
    if (best != UINT64_MAX) {
      earliest_cache_ = best;
    } else {
      earliest_cache_.reset();
    }
    earliest_known_ = true;
  }
  return earliest_cache_;
}

size_t GroupedSortingQueue::ExpireUpTo(uint64_t now_tick) {
  if (now_tick < cursor_) {
    return 0;
  }
  if (live_count_ == 0) {
    cursor_ = now_tick + 1;
    if (fine_limit_ <= now_tick) {
      // Nothing pending anywhere (live_count_ covers the far list too), so
      // the empty-ring jump in AdvanceWindows applies directly.
      fine_limit_ = RoundUpMultiple(now_tick + 1, coarse_width_);
      if (coarse_limit_ < fine_limit_) {
        coarse_limit_ = fine_limit_;
      }
    }
    earliest_cache_.reset();
    earliest_known_ = true;
    return 0;
  }
  std::optional<uint64_t> earliest = EarliestDeadline();
  if (!earliest || *earliest > now_tick) {
    // Nothing due: skip window advancement entirely. The cursor may pass
    // fine_limit_ (or even coarse_limit_); placement and the earliest walk
    // tolerate that, and the next due expiry catches the windows up.
    cursor_ = now_tick + 1;
    return 0;
  }

  std::vector<uint32_t> batch;
  batch.swap(due_scratch_);
  // Catch the windows up first (this alone batches every due node that was
  // still sitting in a coarse group or the far list), then sweep the fine
  // groups covering [cursor_, now_tick] for the rest.
  AdvanceWindows(now_tick, &batch);
  // Groups to visit: every fine period from cursor_'s to now_tick's,
  // inclusive, capped at one lap of the ring (a wider span would only
  // revisit groups).
  uint64_t span_groups =
      now_tick / fine_width_ - cursor_ / fine_width_ + 1;
  uint64_t visit = std::min<uint64_t>(span_groups, group_count_);
  uint64_t first_group = cursor_ / fine_width_;
  for (uint64_t k = 0; k < visit; ++k) {
    uint32_t it = fine_heads_[(first_group + k) % group_count_];
    while (it != kNilTimerIndex) {
      Node& n = slab_.at(it);
      uint32_t next = n.next;
      if (n.deadline <= now_tick) {
        Unlink(it);
        n.state = TimerNodeState::kDue;
        batch.push_back(it);
      }
      it = next;
    }
  }
  // The lazy sort: group contents stay unsorted until this moment, when the
  // imminent set is ordered once by the shared (deadline, seq) fire order.
  std::sort(batch.begin(), batch.end(), [this](uint32_t a, uint32_t b) {
    const Node& na = slab_.at(a);
    const Node& nb = slab_.at(b);
    if (na.deadline != nb.deadline) {
      return na.deadline < nb.deadline;
    }
    return na.seq < nb.seq;
  });

  // Advance the cursor before firing so callbacks that re-schedule get
  // deadlines clamped into the future (see the header contract).
  cursor_ = now_tick + 1;
  earliest_known_ = false;

  size_t fired = 0;
  for (uint32_t index : batch) {
    Node& n = slab_.at(index);
    if (n.state != TimerNodeState::kDue) {
      // kCancelledDue: cancelled by an earlier callback in this batch.
      // Anything else: the node was Updated out of the batch (and possibly
      // cancelled, freed, or its slot reused afterwards) - not ours to
      // touch, let alone fire.
      if (n.state == TimerNodeState::kCancelledDue) {
        FreeNode(index);
      }
      continue;
    }
    // Move the payload out and recycle the node before invoking, so the
    // handler can schedule (reusing this slot), cancel stale ids, and defer
    // itself by moving its own state into a fresh node.
    TimerPayload payload = std::move(n.payload);
    TimerFired fired_info{&payload, n.deadline,
                          TimerId{PackTimerIdValue(index, n.generation)}};
    FreeNode(index);
    --live_count_;
    ++fired;
    payload.handler.Invoke(fired_info);
  }
  batch.clear();
  if (due_scratch_.capacity() < batch.capacity()) {
    due_scratch_.swap(batch);  // keep the larger buffer for next time
  }

  if (live_count_ == 0) {
    earliest_cache_.reset();
    earliest_known_ = true;
  } else {
    // A callback may have recomputed the cache mid-batch without seeing
    // then-unfired due nodes; recompute lazily now that the batch is done.
    earliest_known_ = false;
  }
  return fired;
}

}  // namespace softtimer
