// TimerSlab: chunked slab/free-list node storage shared by the TimerQueue
// implementations, plus the packed generation-counted TimerId encoding.
//
// Why a slab: the scheduling hot path must not touch the allocator. Nodes
// are recycled through an intrusive free list, so steady-state schedule /
// cancel / fire cycles perform zero heap allocations once the slab has grown
// to the workload's high-water mark. Chunks (not one big vector) keep node
// addresses stable across growth, so callbacks that schedule new timers
// cannot invalidate a node reference held by the expiry loop.
//
// Why generations: slot indices are recycled, so a bare index would let a
// stale TimerId cancel an unrelated timer that happens to reuse the slot
// (the classic ABA bug). Every slot carries a generation counter that is
// bumped on free; a TimerId packs {generation, index} and is only honoured
// while the slot's generation still matches.

#ifndef SOFTTIMER_SRC_TIMER_TIMER_SLAB_H_
#define SOFTTIMER_SRC_TIMER_TIMER_SLAB_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace softtimer {

// Sentinel for "no node" in intrusive index links.
inline constexpr uint32_t kNilTimerIndex = 0xFFFFFFFFu;

// TimerId::value <-> {slot index, generation}. Generations start at 1, so a
// packed value is never 0 (0 is the invalid/default TimerId).
inline constexpr uint64_t PackTimerIdValue(uint32_t index, uint32_t generation) {
  return (static_cast<uint64_t>(generation) << 32) | index;
}
inline constexpr uint32_t TimerIdIndex(uint64_t value) {
  return static_cast<uint32_t>(value);
}
inline constexpr uint32_t TimerIdGeneration(uint64_t value) {
  return static_cast<uint32_t>(value >> 32);
}

// Node lifecycle states shared by the queue implementations. kDue marks a
// node pulled out of its bucket into an expiry batch but not yet fired (it
// can still be cancelled by an earlier callback in the same batch).
enum class TimerNodeState : uint8_t {
  kFree = 0,
  kPending,
  kDue,
  kCancelledDue,  // cancelled while sitting in an expiry batch
};

// Node must provide:
//   uint32_t generation;        // starts at 1; bumped by Free (never 0)
//   uint32_t next;              // reused as the free-list link while free
//   TimerNodeState state;       // set to kFree by Free
template <typename Node>
class TimerSlab {
 public:
  static constexpr uint32_t kChunkShift = 8;
  static constexpr uint32_t kChunkSize = 1u << kChunkShift;

  Node& at(uint32_t index) {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }
  const Node& at(uint32_t index) const {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }

  uint32_t capacity() const {
    return static_cast<uint32_t>(chunks_.size()) << kChunkShift;
  }

  // True when `id_value` decodes to a currently-allocated slot whose
  // generation matches (i.e. the id is not stale/reused/invalid).
  bool IsCurrent(uint64_t id_value) const {
    uint32_t index = TimerIdIndex(id_value);
    if (id_value == 0 || index >= capacity()) {
      return false;
    }
    const Node& n = at(index);
    return n.state != TimerNodeState::kFree &&
           n.generation == TimerIdGeneration(id_value);
  }

  // Returns the index of a fresh node (state kPending, generation valid).
  // Allocates a new chunk only when the free list is empty.
  uint32_t Allocate() {
    if (free_head_ == kNilTimerIndex) {
      Grow();
    }
    uint32_t index = free_head_;
    Node& n = at(index);
    free_head_ = n.next;
    n.next = kNilTimerIndex;
    n.state = TimerNodeState::kPending;
    return index;
  }

  // Recycles a node: bumps the generation (invalidating every outstanding
  // TimerId for this slot) and pushes it on the free list.
  void Free(uint32_t index) {
    Node& n = at(index);
    if (++n.generation == 0) {
      n.generation = 1;  // skip 0 so packed ids stay non-zero
    }
    n.state = TimerNodeState::kFree;
    n.next = free_head_;
    free_head_ = index;
  }

 private:
  void Grow() {
    uint32_t base = capacity();
    chunks_.push_back(std::make_unique<Node[]>(kChunkSize));
    Node* chunk = chunks_.back().get();
    for (uint32_t i = 0; i < kChunkSize; ++i) {
      chunk[i].generation = 1;
      chunk[i].state = TimerNodeState::kFree;
      chunk[i].next = i + 1 < kChunkSize ? base + i + 1 : kNilTimerIndex;
    }
    free_head_ = base;
  }

  std::vector<std::unique_ptr<Node[]>> chunks_;
  uint32_t free_head_ = kNilTimerIndex;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_TIMER_TIMER_SLAB_H_
