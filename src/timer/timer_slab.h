// TimerSlab: chunked slab/free-list node storage shared by the TimerQueue
// implementations, plus the packed generation-counted TimerId encoding.
//
// Why a slab: the scheduling hot path must not touch the allocator. Nodes
// are recycled through an intrusive free list, so steady-state schedule /
// cancel / fire cycles perform zero heap allocations once the slab has grown
// to the workload's high-water mark. Chunks (not one big vector) keep node
// addresses stable across growth, so callbacks that schedule new timers
// cannot invalidate a node reference held by the expiry loop.
//
// Why generations: slot indices are recycled, so a bare index would let a
// stale TimerId cancel an unrelated timer that happens to reuse the slot
// (the classic ABA bug). Every slot carries a generation counter that is
// bumped on free; a TimerId packs {shard, generation, index} and is only
// honoured while the slot's generation still matches.
//
// Id layout (64 bits):
//
//   [63..56] shard      - owning shard in a ShardedSoftTimerRuntime; 0 for
//                         a standalone facility (the slab itself never sets
//                         these bits; the runtime ORs them in).
//   [55]     remote bit - set on runtime-issued cross-core ids, which live in
//                         a per-shard side table instead of the slab.
//   [54..32] generation - 23-bit wrapping counter, never 0.
//   [31..0]  index      - slab slot.
//
// Trim() releases chunks whose nodes are all free, so a workload burst does
// not pin its high-water mark forever. A released chunk remembers (in
// chunk_floor_generation_) one generation past the highest it ever handed
// out; if the chunk is later re-materialized, its nodes resume from that
// floor, so TimerIds minted before the trim still mismatch (ABA safety
// survives the release/re-materialize cycle).

#ifndef SOFTTIMER_SRC_TIMER_TIMER_SLAB_H_
#define SOFTTIMER_SRC_TIMER_TIMER_SLAB_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace softtimer {

// Sentinel for "no node" in intrusive index links.
inline constexpr uint32_t kNilTimerIndex = 0xFFFFFFFFu;

// --- TimerId bit layout -----------------------------------------------
inline constexpr uint32_t kTimerIdShardShift = 56;
inline constexpr uint32_t kTimerIdMaxShards = 256;  // 8 shard bits
inline constexpr uint64_t kTimerIdRemoteBit = 1ull << 55;
inline constexpr uint32_t kTimerIdGenerationBits = 23;
inline constexpr uint32_t kTimerIdGenerationMask =
    (1u << kTimerIdGenerationBits) - 1;

// TimerId::value <-> {slot index, generation}. Generations start at 1 and
// wrap inside the 23-bit field skipping 0, so a packed value is never 0
// (0 is the invalid/default TimerId).
inline constexpr uint64_t PackTimerIdValue(uint32_t index, uint32_t generation) {
  return (static_cast<uint64_t>(generation & kTimerIdGenerationMask) << 32) |
         index;
}
inline constexpr uint32_t TimerIdIndex(uint64_t value) {
  return static_cast<uint32_t>(value);
}
inline constexpr uint32_t TimerIdGeneration(uint64_t value) {
  return static_cast<uint32_t>(value >> 32) & kTimerIdGenerationMask;
}

// Shard annotation (used by ShardedSoftTimerRuntime; a bare facility leaves
// shard 0 and the remote bit clear).
inline constexpr uint32_t TimerIdShard(uint64_t value) {
  return static_cast<uint32_t>(value >> kTimerIdShardShift);
}
inline constexpr uint64_t WithTimerIdShard(uint64_t value, uint32_t shard) {
  return value | (static_cast<uint64_t>(shard) << kTimerIdShardShift);
}
inline constexpr bool IsRemoteTimerId(uint64_t value) {
  return (value & kTimerIdRemoteBit) != 0;
}
// Clears the shard byte and the remote bit, leaving a facility-local id.
inline constexpr uint64_t StripTimerIdShard(uint64_t value) {
  return value & (kTimerIdRemoteBit - 1);
}

// Bumps a generation inside the 23-bit field, skipping 0.
inline constexpr uint32_t NextTimerGeneration(uint32_t generation) {
  uint32_t next = (generation + 1) & kTimerIdGenerationMask;
  return next == 0 ? 1 : next;
}

// Node lifecycle states shared by the queue implementations. kDue marks a
// node pulled out of its bucket into an expiry batch but not yet fired (it
// can still be cancelled by an earlier callback in the same batch).
enum class TimerNodeState : uint8_t {
  kFree = 0,
  kPending,
  kDue,
  kCancelledDue,  // cancelled while sitting in an expiry batch
};

// Capacity/occupancy snapshot (surfaced through TimerQueue::slab_stats and
// facility Stats).
struct TimerSlabStats {
  uint32_t capacity = 0;        // slots currently backed by storage
  uint32_t live = 0;            // allocated (non-free) nodes
  uint32_t chunks = 0;          // materialized chunks
  uint32_t released_chunks = 0; // chunks released by Trim, re-usable
};

// Node must provide:
//   uint32_t generation;        // starts at 1; bumped by Free (never 0)
//   uint32_t next;              // reused as the free-list link while free
//   TimerNodeState state;       // set to kFree by Free
template <typename Node>
class TimerSlab {
 public:
  static constexpr uint32_t kChunkShift = 8;
  static constexpr uint32_t kChunkSize = 1u << kChunkShift;

  Node& at(uint32_t index) {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }
  const Node& at(uint32_t index) const {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }

  uint32_t capacity() const {
    return static_cast<uint32_t>(chunks_.size()) << kChunkShift;
  }

  // True when `id_value` decodes to a currently-allocated slot whose
  // generation matches (i.e. the id is not stale/reused/invalid). Ids whose
  // chunk was released by Trim are stale by construction.
  bool IsCurrent(uint64_t id_value) const {
    uint32_t index = TimerIdIndex(id_value);
    if (id_value == 0 || index >= capacity() ||
        chunks_[index >> kChunkShift] == nullptr) {
      return false;
    }
    const Node& n = at(index);
    return n.state != TimerNodeState::kFree &&
           n.generation == TimerIdGeneration(id_value);
  }

  // Returns the index of a fresh node (state kPending, generation valid).
  // Allocates a new chunk only when the free list is empty and no released
  // chunk can be re-materialized.
  // SOFTTIMER_HOT
  uint32_t Allocate() {
    if (free_head_ == kNilTimerIndex) {
      Grow();
    }
    uint32_t index = free_head_;
    Node& n = at(index);
    free_head_ = n.next;
    n.next = kNilTimerIndex;
    n.state = TimerNodeState::kPending;
    ++live_;
    return index;
  }

  // Recycles a node: bumps the generation (invalidating every outstanding
  // TimerId for this slot) and pushes it on the free list.
  // SOFTTIMER_HOT
  void Free(uint32_t index) {
    Node& n = at(index);
    n.generation = NextTimerGeneration(n.generation);
    n.state = TimerNodeState::kFree;
    n.next = free_head_;
    free_head_ = index;
    --live_;
  }

  // Releases every chunk whose nodes are all free, rebuilding the free list
  // over the surviving chunks. Returns the number of chunks released. Safe
  // for outstanding stale ids: a released slot fails IsCurrent, and a
  // re-materialized chunk resumes at a generation floor past everything the
  // old chunk issued. Callers must ensure no *internal* references (bucket
  // links, heap entries) point into fully-free chunks before trimming - true
  // by construction for the intrusive-list backends, and after Compact() for
  // the lazy-deletion heap.
  size_t Trim() {
    size_t released = 0;
    for (size_t c = 0; c < chunks_.size(); ++c) {
      if (chunks_[c] == nullptr) {
        continue;
      }
      Node* chunk = chunks_[c].get();
      bool all_free = true;
      uint32_t max_generation = 0;
      for (uint32_t i = 0; i < kChunkSize; ++i) {
        if (chunk[i].state != TimerNodeState::kFree) {
          all_free = false;
          break;
        }
        if (chunk[i].generation > max_generation) {
          max_generation = chunk[i].generation;
        }
      }
      if (!all_free) {
        continue;
      }
      chunk_floor_generation_[c] = NextTimerGeneration(max_generation);
      chunks_[c].reset();
      ++released_chunks_;
      ++released;
    }
    if (released > 0) {
      RebuildFreeList();
    }
    return released;
  }

  TimerSlabStats stats() const {
    TimerSlabStats s;
    s.chunks = static_cast<uint32_t>(chunks_.size()) -
               static_cast<uint32_t>(released_chunks_);
    s.capacity = s.chunks << kChunkShift;
    s.live = live_;
    s.released_chunks = static_cast<uint32_t>(released_chunks_);
    return s;
  }

 private:
  // SOFTTIMER_COLD: amortized slab growth - entered only when the free list
  // is empty, i.e. when the live-timer population breaks its previous peak;
  // steady state runs at capacity and recycles freed nodes without ever
  // re-entering (the zero-alloc schedule/cancel contract of DESIGN.md §5).
  void Grow() {
    // Prefer re-materializing a released chunk (keeps the index space dense
    // and honours its generation floor) over appending a new one.
    if (released_chunks_ > 0) {
      for (size_t c = 0; c < chunks_.size(); ++c) {
        if (chunks_[c] == nullptr) {
          MaterializeChunk(c, chunk_floor_generation_[c]);
          --released_chunks_;
          return;
        }
      }
    }
    chunks_.emplace_back();
    chunk_floor_generation_.push_back(1);
    MaterializeChunk(chunks_.size() - 1, 1);
  }

  void MaterializeChunk(size_t c, uint32_t generation_floor) {
    uint32_t base = static_cast<uint32_t>(c) << kChunkShift;
    chunks_[c] = std::make_unique<Node[]>(kChunkSize);
    Node* chunk = chunks_[c].get();
    for (uint32_t i = 0; i < kChunkSize; ++i) {
      chunk[i].generation = generation_floor;
      chunk[i].state = TimerNodeState::kFree;
      chunk[i].next = i + 1 < kChunkSize ? base + i + 1 : free_head_;
    }
    free_head_ = base;
  }

  void RebuildFreeList() {
    free_head_ = kNilTimerIndex;
    // Walk chunks in reverse so the rebuilt list hands out low indices first.
    for (size_t c = chunks_.size(); c-- > 0;) {
      if (chunks_[c] == nullptr) {
        continue;
      }
      Node* chunk = chunks_[c].get();
      uint32_t base = static_cast<uint32_t>(c) << kChunkShift;
      for (uint32_t i = kChunkSize; i-- > 0;) {
        if (chunk[i].state == TimerNodeState::kFree) {
          chunk[i].next = free_head_;
          free_head_ = base + i;
        }
      }
    }
  }

  std::vector<std::unique_ptr<Node[]>> chunks_;
  // Generation floor a released chunk must resume from (parallel to chunks_).
  std::vector<uint32_t> chunk_floor_generation_;
  uint32_t free_head_ = kNilTimerIndex;
  uint32_t live_ = 0;
  size_t released_chunks_ = 0;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_TIMER_TIMER_SLAB_H_
