#include "src/timer/hierarchical_timing_wheel.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace softtimer {

HierarchicalTimingWheel::HierarchicalTimingWheel(uint64_t granularity,
                                                 size_t slots_per_level,
                                                 size_t level_count)
    : granularity_(granularity), slots_per_level_(slots_per_level) {
  assert(granularity_ >= 1);
  assert(slots_per_level_ >= 2);
  assert(level_count >= 1);
  uint64_t width = granularity_;
  for (size_t l = 0; l < level_count; ++l) {
    Level level;
    level.bucket_width = width;
    level.cascade_cursor = 0;
    level.heads.assign(slots_per_level_, kNilTimerIndex);
    levels_.push_back(std::move(level));
    width *= slots_per_level_;
  }
}

void HierarchicalTimingWheel::LinkIntoBucket(uint32_t index, size_t level,
                                             size_t bucket) {
  Node& n = slab_.at(index);
  n.level = static_cast<uint8_t>(level);
  n.bucket = static_cast<uint32_t>(bucket);
  n.prev = kNilTimerIndex;
  n.next = levels_[level].heads[bucket];
  if (n.next != kNilTimerIndex) {
    slab_.at(n.next).prev = index;
  }
  levels_[level].heads[bucket] = index;
}

void HierarchicalTimingWheel::UnlinkFromBucket(uint32_t index) {
  Node& n = slab_.at(index);
  if (n.prev != kNilTimerIndex) {
    slab_.at(n.prev).next = n.next;
  } else {
    levels_[n.level].heads[n.bucket] = n.next;
  }
  if (n.next != kNilTimerIndex) {
    slab_.at(n.next).prev = n.prev;
  }
  n.prev = kNilTimerIndex;
  n.next = kNilTimerIndex;
}

void HierarchicalTimingWheel::FreeNode(uint32_t index) {
  Node& n = slab_.at(index);
  n.payload.handler.reset();
  slab_.Free(index);
}

void HierarchicalTimingWheel::Place(uint32_t index, uint64_t deadline) {
  uint64_t delta = deadline - std::min(deadline, cursor_);
  // Finest level whose horizon (slots * width) covers the delay; deadlines
  // beyond the top horizon sit in the top level and wrap (absolute-deadline
  // filtering makes multi-round occupancy safe, as in the hashed wheel).
  size_t level = levels_.size() - 1;
  for (size_t l = 0; l < levels_.size(); ++l) {
    if (delta < levels_[l].bucket_width * slots_per_level_) {
      level = l;
      break;
    }
  }
  // A coarse bucket whose time window was already cascaded this round would
  // never be revisited until it wraps; demote to a finer level in that case.
  while (level > 0) {
    uint64_t width = levels_[level].bucket_width;
    uint64_t bucket_start = (deadline / width) * width;
    if (levels_[level].cascade_cursor <= bucket_start) {
      break;
    }
    --level;
  }
  const Level& lv = levels_[level];
  LinkIntoBucket(index, level,
                 static_cast<size_t>((deadline / lv.bucket_width) % slots_per_level_));
}

void HierarchicalTimingWheel::CascadeUpTo(uint64_t now_tick,
                                          std::vector<uint32_t>* batch) {
  // Coarse to fine, so entries demoted from level l are re-examined by the
  // finer cascades below it within the same call.
  for (size_t l = levels_.size() - 1; l >= 1; --l) {
    Level& lv = levels_[l];
    while (lv.cascade_cursor <= now_tick) {
      uint64_t bucket_start = (lv.cascade_cursor / lv.bucket_width) * lv.bucket_width;
      uint64_t round_end = bucket_start + lv.bucket_width;  // exclusive
      size_t bucket = static_cast<size_t>((bucket_start / lv.bucket_width) % slots_per_level_);
      // Detach the whole bucket list, then re-place each node.
      uint32_t it = lv.heads[bucket];
      lv.heads[bucket] = kNilTimerIndex;
      while (it != kNilTimerIndex) {
        Node& n = slab_.at(it);
        uint32_t next = n.next;
        n.prev = kNilTimerIndex;
        n.next = kNilTimerIndex;
        uint64_t d = n.deadline;
        if (d >= round_end) {
          LinkIntoBucket(it, l, bucket);  // future round of this bucket; keep
        } else if (d <= now_tick) {
          n.state = TimerNodeState::kDue;
          batch->push_back(it);
        } else {
          // Due within this (now partially elapsed) coarse window but not
          // yet: demote toward level 0.
          uint64_t saved = lv.cascade_cursor;
          lv.cascade_cursor = round_end;  // mark this bucket as passed for Place
          Place(it, d);
          lv.cascade_cursor = saved;
        }
        it = next;
      }
      lv.cascade_cursor = round_end;
    }
  }
}

// SOFTTIMER_HOT
TimerId HierarchicalTimingWheel::Schedule(uint64_t deadline_tick, TimerPayload payload) {
  if (deadline_tick < cursor_) {
    deadline_tick = cursor_;
  }
  uint32_t index = slab_.Allocate();
  Node& n = slab_.at(index);
  n.payload = std::move(payload);
  n.deadline = deadline_tick;
  n.seq = next_seq_++;
  Place(index, deadline_tick);
  ++live_count_;
  if (earliest_known_) {
    if (!earliest_cache_ || deadline_tick < *earliest_cache_) {
      earliest_cache_ = deadline_tick;
    }
  }
  return TimerId{PackTimerIdValue(index, n.generation)};
}

// SOFTTIMER_HOT
bool HierarchicalTimingWheel::Cancel(TimerId id) {
  if (!slab_.IsCurrent(id.value)) {
    return false;
  }
  uint32_t index = TimerIdIndex(id.value);
  Node& n = slab_.at(index);
  if (n.state == TimerNodeState::kCancelledDue) {
    return false;
  }
  if (n.state == TimerNodeState::kDue) {
    n.state = TimerNodeState::kCancelledDue;
    --live_count_;
    return true;
  }
  bool was_earliest = earliest_known_ && earliest_cache_ &&
                      n.deadline == *earliest_cache_;
  UnlinkFromBucket(index);
  FreeNode(index);
  --live_count_;
  if (live_count_ == 0) {
    earliest_cache_.reset();
    earliest_known_ = true;
  } else if (was_earliest) {
    earliest_known_ = false;
  }
  return true;
}

std::optional<uint64_t> HierarchicalTimingWheel::EarliestDeadline() const {
  if (!earliest_known_) {
    if (live_count_ == 0) {
      earliest_cache_.reset();
    } else {
      // Per level, walk bucket heads outward from the cursor's bucket with
      // the same floor-based early exit as the hashed wheel (every pending
      // deadline is >= cursor_, and a node k buckets past the cursor's has
      // deadline >= (cursor_bucket + k) * width).
      uint64_t best = UINT64_MAX;
      for (const Level& lv : levels_) {
        uint64_t base_bucket = cursor_ / lv.bucket_width;
        for (size_t k = 0; k < slots_per_level_; ++k) {
          uint64_t bucket_floor = (base_bucket + k) * lv.bucket_width;
          if (best <= bucket_floor) {
            break;
          }
          uint32_t it = lv.heads[(base_bucket + k) % slots_per_level_];
          while (it != kNilTimerIndex) {
            const Node& n = slab_.at(it);
            if (n.deadline < best) {
              best = n.deadline;
            }
            it = n.next;
          }
        }
      }
      if (best != UINT64_MAX) {
        earliest_cache_ = best;
      } else {
        // Mid-batch: every live node is an unfired due entry; the batch
        // re-invalidates the cache on completion.
        earliest_cache_.reset();
      }
    }
    earliest_known_ = true;
  }
  return earliest_cache_;
}

size_t HierarchicalTimingWheel::ExpireUpTo(uint64_t now_tick) {
  if (now_tick < cursor_) {
    return 0;
  }
  if (live_count_ == 0) {
    cursor_ = now_tick + 1;
    earliest_cache_.reset();
    earliest_known_ = true;
    return 0;
  }
  std::optional<uint64_t> earliest = EarliestDeadline();
  if (!earliest || *earliest > now_tick) {
    // Nothing due; cascade cursors intentionally lag (Place() demotes around
    // already-passed coarse buckets, so lagging is safe and cheaper).
    cursor_ = now_tick + 1;
    return 0;
  }

  std::vector<uint32_t> batch;
  batch.swap(due_scratch_);
  CascadeUpTo(now_tick, &batch);

  // Level-0 walk, identical in structure to the hashed wheel (bucket-index
  // arithmetic so a mid-bucket cursor still reaches now's bucket).
  Level& l0 = levels_[0];
  uint64_t span_slots = now_tick / l0.bucket_width - cursor_ / l0.bucket_width + 1;
  size_t visit = std::min<uint64_t>(span_slots, slots_per_level_);
  size_t first_slot = static_cast<size_t>((cursor_ / l0.bucket_width) % slots_per_level_);
  for (size_t k = 0; k < visit; ++k) {
    size_t slot = (first_slot + k) % slots_per_level_;
    uint32_t it = l0.heads[slot];
    while (it != kNilTimerIndex) {
      Node& n = slab_.at(it);
      uint32_t next = n.next;
      if (n.deadline <= now_tick) {
        UnlinkFromBucket(it);
        n.state = TimerNodeState::kDue;
        batch.push_back(it);
      }
      it = next;
    }
  }

  std::sort(batch.begin(), batch.end(), [this](uint32_t a, uint32_t b) {
    const Node& na = slab_.at(a);
    const Node& nb = slab_.at(b);
    if (na.deadline != nb.deadline) {
      return na.deadline < nb.deadline;
    }
    return na.seq < nb.seq;
  });

  cursor_ = now_tick + 1;
  earliest_known_ = false;

  size_t fired = 0;
  for (uint32_t index : batch) {
    Node& n = slab_.at(index);
    if (n.state == TimerNodeState::kCancelledDue) {
      FreeNode(index);
      continue;
    }
    TimerPayload payload = std::move(n.payload);
    TimerFired fired_info{&payload, n.deadline,
                          TimerId{PackTimerIdValue(index, n.generation)}};
    FreeNode(index);
    --live_count_;
    ++fired;
    payload.handler.Invoke(fired_info);
  }
  batch.clear();
  if (due_scratch_.capacity() < batch.capacity()) {
    due_scratch_.swap(batch);
  }

  if (live_count_ == 0) {
    earliest_cache_.reset();
    earliest_known_ = true;
  } else {
    earliest_known_ = false;
  }
  return fired;
}

}  // namespace softtimer
