#include "src/timer/hierarchical_timing_wheel.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace softtimer {

HierarchicalTimingWheel::HierarchicalTimingWheel(uint64_t granularity,
                                                 size_t slots_per_level,
                                                 size_t level_count)
    : granularity_(granularity), slots_per_level_(slots_per_level) {
  assert(granularity_ >= 1);
  assert(slots_per_level_ >= 2);
  assert(level_count >= 1);
  uint64_t width = granularity_;
  for (size_t l = 0; l < level_count; ++l) {
    Level level;
    level.bucket_width = width;
    level.cascade_cursor = 0;
    level.slots.resize(slots_per_level_);
    levels_.push_back(std::move(level));
    width *= slots_per_level_;
  }
}

void HierarchicalTimingWheel::Place(uint64_t id, uint64_t deadline) {
  uint64_t delta = deadline - std::min(deadline, cursor_);
  // Finest level whose horizon (slots * width) covers the delay; deadlines
  // beyond the top horizon sit in the top level and wrap (absolute-deadline
  // filtering makes multi-round occupancy safe, as in the hashed wheel).
  size_t level = levels_.size() - 1;
  for (size_t l = 0; l < levels_.size(); ++l) {
    if (delta < levels_[l].bucket_width * slots_per_level_) {
      level = l;
      break;
    }
  }
  // A coarse bucket whose time window was already cascaded this round would
  // never be revisited until it wraps; demote to a finer level in that case.
  while (level > 0) {
    uint64_t width = levels_[level].bucket_width;
    uint64_t bucket_start = (deadline / width) * width;
    if (levels_[level].cascade_cursor <= bucket_start) {
      break;
    }
    --level;
  }
  Level& lv = levels_[level];
  lv.slots[(deadline / lv.bucket_width) % slots_per_level_].push_back(id);
}

void HierarchicalTimingWheel::CascadeUpTo(uint64_t now_tick,
                                          std::vector<uint64_t>* maybe_due) {
  // Coarse to fine, so entries demoted from level l are re-examined by the
  // finer cascades below it within the same call.
  for (size_t l = levels_.size() - 1; l >= 1; --l) {
    Level& lv = levels_[l];
    while (lv.cascade_cursor <= now_tick) {
      uint64_t bucket_start = (lv.cascade_cursor / lv.bucket_width) * lv.bucket_width;
      uint64_t round_end = bucket_start + lv.bucket_width;  // exclusive
      std::vector<uint64_t>& bucket = lv.slots[(bucket_start / lv.bucket_width) % slots_per_level_];
      std::vector<uint64_t> taken;
      taken.swap(bucket);
      for (uint64_t id : taken) {
        auto it = live_.find(id);
        if (it == live_.end()) {
          continue;  // cancelled; prune
        }
        uint64_t d = it->second.deadline;
        if (d >= round_end) {
          bucket.push_back(id);  // future round of this bucket; keep
        } else if (d <= now_tick) {
          maybe_due->push_back(id);
        } else {
          // Due within this (now partially elapsed) coarse window but not
          // yet: demote toward level 0.
          uint64_t saved = lv.cascade_cursor;
          lv.cascade_cursor = round_end;  // mark this bucket as passed for Place
          Place(id, d);
          lv.cascade_cursor = saved;
        }
      }
      lv.cascade_cursor = round_end;
    }
  }
}

TimerId HierarchicalTimingWheel::Schedule(uint64_t deadline_tick, Callback cb) {
  if (deadline_tick < cursor_) {
    deadline_tick = cursor_;
  }
  uint64_t id = next_id_++;
  live_.emplace(id, Entry{deadline_tick, next_seq_++, std::move(cb)});
  Place(id, deadline_tick);
  if (earliest_known_) {
    if (!earliest_cache_ || deadline_tick < *earliest_cache_) {
      earliest_cache_ = deadline_tick;
    }
  }
  return TimerId{id};
}

bool HierarchicalTimingWheel::Cancel(TimerId id) {
  if (!id.valid()) {
    return false;
  }
  auto it = live_.find(id.value);
  if (it == live_.end()) {
    return false;
  }
  bool was_earliest = earliest_known_ && earliest_cache_ &&
                      it->second.deadline == *earliest_cache_;
  live_.erase(it);
  if (live_.empty()) {
    earliest_cache_.reset();
    earliest_known_ = true;
  } else if (was_earliest) {
    earliest_known_ = false;
  }
  return true;
}

std::optional<uint64_t> HierarchicalTimingWheel::EarliestDeadline() const {
  if (!earliest_known_) {
    if (live_.empty()) {
      earliest_cache_.reset();
    } else {
      uint64_t best = UINT64_MAX;
      for (const auto& [id, e] : live_) {
        if (e.deadline < best) {
          best = e.deadline;
        }
      }
      earliest_cache_ = best;
    }
    earliest_known_ = true;
  }
  return earliest_cache_;
}

size_t HierarchicalTimingWheel::ExpireUpTo(uint64_t now_tick) {
  if (now_tick < cursor_) {
    return 0;
  }
  if (live_.empty()) {
    cursor_ = now_tick + 1;
    earliest_cache_.reset();
    earliest_known_ = true;
    return 0;
  }
  std::optional<uint64_t> earliest = EarliestDeadline();
  if (!earliest || *earliest > now_tick) {
    // Nothing due; cascade cursors intentionally lag (Place() demotes around
    // already-passed coarse buckets, so lagging is safe and cheaper).
    cursor_ = now_tick + 1;
    return 0;
  }

  std::vector<uint64_t> due_ids;
  CascadeUpTo(now_tick, &due_ids);

  // Level-0 walk, identical in structure to the hashed wheel (bucket-index
  // arithmetic so a mid-bucket cursor still reaches now's bucket).
  Level& l0 = levels_[0];
  uint64_t span_slots = now_tick / l0.bucket_width - cursor_ / l0.bucket_width + 1;
  size_t visit = std::min<uint64_t>(span_slots, slots_per_level_);
  size_t first_slot = static_cast<size_t>((cursor_ / l0.bucket_width) % slots_per_level_);
  for (size_t k = 0; k < visit; ++k) {
    std::vector<uint64_t>& bucket = l0.slots[(first_slot + k) % slots_per_level_];
    size_t w = 0;
    for (size_t r = 0; r < bucket.size(); ++r) {
      auto it = live_.find(bucket[r]);
      if (it == live_.end()) {
        continue;
      }
      if (it->second.deadline <= now_tick) {
        due_ids.push_back(bucket[r]);
        continue;
      }
      bucket[w++] = bucket[r];
    }
    bucket.resize(w);
  }

  struct Due {
    uint64_t deadline;
    uint64_t seq;
    uint64_t id;
  };
  std::vector<Due> due;
  due.reserve(due_ids.size());
  for (uint64_t id : due_ids) {
    auto it = live_.find(id);
    if (it != live_.end()) {
      due.push_back(Due{it->second.deadline, it->second.seq, id});
    }
  }
  std::sort(due.begin(), due.end(), [](const Due& a, const Due& b) {
    if (a.deadline != b.deadline) {
      return a.deadline < b.deadline;
    }
    return a.seq < b.seq;
  });

  cursor_ = now_tick + 1;
  earliest_known_ = false;

  size_t fired = 0;
  for (const Due& d : due) {
    auto it = live_.find(d.id);
    if (it == live_.end()) {
      continue;
    }
    Callback cb = std::move(it->second.cb);
    live_.erase(it);
    ++fired;
    cb();
  }
  if (live_.empty()) {
    earliest_cache_.reset();
    earliest_known_ = true;
  }
  return fired;
}

}  // namespace softtimer
