// Single-level hashed timing wheel (Varghese & Lauck, scheme 6).
//
// An array of `slot_count` buckets, each `granularity` ticks wide, indexed by
// (deadline / granularity) % slot_count. Entries carry their absolute
// deadline, so a bucket can hold timers from several "rounds"; expiry filters
// by deadline. Schedule and cancel are O(1); expiry visits the buckets whose
// tick range elapsed since the previous expiry, which is O(elapsed /
// granularity) bounded by slot_count (plus the fired timers).
//
// The wheel keeps an exact earliest-deadline cache (recomputed by an O(live)
// scan when invalidated by expiry), which lets ExpireUpTo skip the bucket
// walk entirely when nothing is due - the common case for the soft-timer
// facility's per-trigger-state check.

#ifndef SOFTTIMER_SRC_TIMER_HASHED_TIMING_WHEEL_H_
#define SOFTTIMER_SRC_TIMER_HASHED_TIMING_WHEEL_H_

#include <unordered_map>
#include <vector>

#include "src/timer/timer_queue.h"

namespace softtimer {

class HashedTimingWheel : public TimerQueue {
 public:
  explicit HashedTimingWheel(uint64_t granularity = 1, size_t slot_count = 1024);

  TimerId Schedule(uint64_t deadline_tick, Callback cb) override;
  bool Cancel(TimerId id) override;
  size_t ExpireUpTo(uint64_t now_tick) override;
  std::optional<uint64_t> EarliestDeadline() const override;
  size_t size() const override { return live_.size(); }
  std::string name() const override { return "hashed-wheel"; }

 private:
  struct Entry {
    uint64_t deadline;
    uint64_t seq;
    Callback cb;
  };

  size_t SlotFor(uint64_t deadline) const {
    return static_cast<size_t>((deadline / granularity_) % slot_count_);
  }

  uint64_t granularity_;
  size_t slot_count_;
  // Next tick value not yet covered by an ExpireUpTo walk. Deadlines below
  // this are clamped up to it at Schedule time.
  uint64_t cursor_ = 0;
  std::unordered_map<uint64_t, Entry> live_;
  std::vector<std::vector<uint64_t>> slots_;
  uint64_t next_id_ = 1;
  uint64_t next_seq_ = 0;
  // Exact earliest pending deadline; nullopt means "unknown, recompute".
  // An empty wheel caches 0 entries and reports nullopt from EarliestDeadline.
  mutable std::optional<uint64_t> earliest_cache_;
  mutable bool earliest_known_ = true;  // empty wheel: known, no value
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_TIMER_HASHED_TIMING_WHEEL_H_
