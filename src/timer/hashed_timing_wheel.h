// Single-level hashed timing wheel (Varghese & Lauck, scheme 6).
//
// An array of `slot_count` buckets, each `granularity` ticks wide, indexed by
// (deadline / granularity) % slot_count. Buckets are intrusive doubly-linked
// lists over slab-recycled nodes (timer_slab.h), so schedule and cancel are
// O(1) with zero steady-state heap allocations, and cancel unlinks eagerly
// (no tombstones to prune). Nodes carry their absolute deadline, so a bucket
// can hold timers from several "rounds"; expiry filters by deadline. Expiry
// visits the buckets whose tick range elapsed since the previous expiry,
// which is O(elapsed / granularity) bounded by slot_count (plus the fired
// timers).
//
// The wheel keeps an exact earliest-deadline cache. When invalidated, it is
// recomputed by walking bucket heads outward from the cursor and stopping as
// soon as no later bucket could hold a smaller deadline - O(occupied span),
// not O(live entries). This keeps ExpireUpTo's nothing-due case (the
// facility's per-trigger-state check) at a compare and a cursor bump.
//
// ExpireUpTo must not be re-entered from a fired handler's own call stack in
// a way that observes batch ordering: a re-entrant call is memory-safe (the
// due batch is detached first) but fires its own due set immediately.
// EarliestDeadline queried from inside a firing handler does not count
// not-yet-fired timers of the current batch (their deadlines are already in
// the past); the cache is re-invalidated when the batch completes.

#ifndef SOFTTIMER_SRC_TIMER_HASHED_TIMING_WHEEL_H_
#define SOFTTIMER_SRC_TIMER_HASHED_TIMING_WHEEL_H_

#include <vector>

#include "src/timer/timer_queue.h"
#include "src/timer/timer_slab.h"

namespace softtimer {

class HashedTimingWheel : public TimerQueue {
 public:
  explicit HashedTimingWheel(uint64_t granularity = 1, size_t slot_count = 1024);

  using TimerQueue::Schedule;
  TimerId Schedule(uint64_t deadline_tick, TimerPayload payload) override;
  bool Cancel(TimerId id) override;
  size_t ExpireUpTo(uint64_t now_tick) override;
  std::optional<uint64_t> EarliestDeadline() const override;
  size_t size() const override { return live_count_; }
  std::string name() const override { return "hashed-wheel"; }
  TimerSlabStats slab_stats() const override { return slab_.stats(); }
  // Bucket links only ever reach live nodes, so the slab can trim directly.
  size_t TrimSlab() override { return slab_.Trim(); }
  uint64_t PeekUserData(TimerId id) const override {
    return slab_.IsCurrent(id.value)
               ? slab_.at(TimerIdIndex(id.value)).payload.user_data
               : 0;
  }
  // kCancelledDue is excluded: its Cancel already returned true once, so the
  // inherited Update emulation must see it as stale, not revive it.
  TimerPayload* MutablePayload(TimerId id) override {
    if (!slab_.IsCurrent(id.value)) {
      return nullptr;
    }
    Node& node = slab_.at(TimerIdIndex(id.value));
    return node.state == TimerNodeState::kCancelledDue ? nullptr
                                                       : &node.payload;
  }

 private:
  struct Node {
    TimerPayload payload;
    uint64_t deadline = 0;
    uint64_t seq = 0;
    uint32_t generation = 1;          // slab convention (see timer_slab.h)
    uint32_t next = kNilTimerIndex;   // bucket link / free-list link
    uint32_t prev = kNilTimerIndex;
    TimerNodeState state = TimerNodeState::kFree;
  };

  size_t SlotFor(uint64_t deadline) const {
    return static_cast<size_t>((deadline / granularity_) % slot_count_);
  }

  void LinkIntoBucket(uint32_t index, size_t slot);
  void UnlinkFromBucket(uint32_t index, size_t slot);
  void FreeNode(uint32_t index);

  uint64_t granularity_;
  size_t slot_count_;
  // Next tick value not yet covered by an ExpireUpTo walk. Deadlines below
  // this are clamped up to it at Schedule time.
  uint64_t cursor_ = 0;
  TimerSlab<Node> slab_;
  std::vector<uint32_t> buckets_;  // head node index per slot (kNil = empty)
  // Reused expiry batch (swapped to a local during firing, so a re-entrant
  // ExpireUpTo from a handler cannot clobber an in-progress batch).
  std::vector<uint32_t> due_scratch_;
  uint64_t next_seq_ = 0;
  size_t live_count_ = 0;
  // Exact earliest pending deadline; nullopt means empty.
  // earliest_known_ == false means "unknown, recompute on demand".
  mutable std::optional<uint64_t> earliest_cache_;
  mutable bool earliest_known_ = true;  // empty wheel: known, no value
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_TIMER_HASHED_TIMING_WHEEL_H_
