#include "src/timer/hashed_timing_wheel.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace softtimer {

HashedTimingWheel::HashedTimingWheel(uint64_t granularity, size_t slot_count)
    : granularity_(granularity), slot_count_(slot_count), slots_(slot_count) {
  assert(granularity_ >= 1);
  assert(slot_count_ >= 2);
}

TimerId HashedTimingWheel::Schedule(uint64_t deadline_tick, Callback cb) {
  if (deadline_tick < cursor_) {
    deadline_tick = cursor_;
  }
  uint64_t id = next_id_++;
  live_.emplace(id, Entry{deadline_tick, next_seq_++, std::move(cb)});
  slots_[SlotFor(deadline_tick)].push_back(id);
  if (earliest_known_) {
    if (!earliest_cache_ || deadline_tick < *earliest_cache_) {
      earliest_cache_ = deadline_tick;
    }
  }
  return TimerId{id};
}

bool HashedTimingWheel::Cancel(TimerId id) {
  if (!id.valid()) {
    return false;
  }
  auto it = live_.find(id.value);
  if (it == live_.end()) {
    return false;
  }
  // The slot entry is pruned lazily during the next walk of that bucket.
  bool was_earliest = earliest_known_ && earliest_cache_ &&
                      it->second.deadline == *earliest_cache_;
  live_.erase(it);
  if (live_.empty()) {
    earliest_cache_.reset();
    earliest_known_ = true;
  } else if (was_earliest) {
    earliest_known_ = false;
  }
  return true;
}

std::optional<uint64_t> HashedTimingWheel::EarliestDeadline() const {
  if (!earliest_known_) {
    if (live_.empty()) {
      earliest_cache_.reset();
    } else {
      uint64_t best = UINT64_MAX;
      for (const auto& [id, e] : live_) {
        if (e.deadline < best) {
          best = e.deadline;
        }
      }
      earliest_cache_ = best;
    }
    earliest_known_ = true;
  }
  return earliest_cache_;
}

size_t HashedTimingWheel::ExpireUpTo(uint64_t now_tick) {
  if (now_tick < cursor_) {
    return 0;
  }
  if (live_.empty()) {
    cursor_ = now_tick + 1;
    earliest_cache_.reset();
    earliest_known_ = true;
    return 0;
  }
  std::optional<uint64_t> earliest = EarliestDeadline();
  if (!earliest || *earliest > now_tick) {
    // Nothing due: the walk can be skipped because buckets are indexed by
    // absolute deadline and will be visited when their deadline comes due.
    cursor_ = now_tick + 1;
    return 0;
  }

  // Collect every due entry from the buckets covering [cursor_, now_tick].
  struct Due {
    uint64_t deadline;
    uint64_t seq;
    uint64_t id;
  };
  std::vector<Due> due;
  // Buckets to visit: every slot period from cursor_'s to now_tick's,
  // inclusive (computed on bucket indices, not raw tick deltas, so a cursor
  // sitting mid-bucket still reaches now's bucket).
  uint64_t span_slots = now_tick / granularity_ - cursor_ / granularity_ + 1;
  size_t visit = std::min<uint64_t>(span_slots, slot_count_);
  size_t first_slot = SlotFor(cursor_);
  for (size_t k = 0; k < visit; ++k) {
    std::vector<uint64_t>& bucket = slots_[(first_slot + k) % slot_count_];
    size_t w = 0;
    for (size_t r = 0; r < bucket.size(); ++r) {
      auto it = live_.find(bucket[r]);
      if (it == live_.end()) {
        continue;  // cancelled or already fired; prune
      }
      if (it->second.deadline <= now_tick) {
        due.push_back(Due{it->second.deadline, it->second.seq, bucket[r]});
        continue;  // removed from the bucket; lives on in `due`
      }
      bucket[w++] = bucket[r];
    }
    bucket.resize(w);
  }
  std::sort(due.begin(), due.end(), [](const Due& a, const Due& b) {
    if (a.deadline != b.deadline) {
      return a.deadline < b.deadline;
    }
    return a.seq < b.seq;
  });

  // Advance the cursor before firing so callbacks that re-schedule get
  // deadlines clamped into the future (see the header contract).
  cursor_ = now_tick + 1;
  earliest_known_ = false;

  size_t fired = 0;
  for (const Due& d : due) {
    auto it = live_.find(d.id);
    if (it == live_.end()) {
      continue;  // cancelled by an earlier callback in this batch
    }
    Callback cb = std::move(it->second.cb);
    live_.erase(it);
    ++fired;
    cb();
  }
  if (live_.empty()) {
    earliest_cache_.reset();
    earliest_known_ = true;
  }
  return fired;
}

}  // namespace softtimer
