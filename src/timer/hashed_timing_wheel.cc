#include "src/timer/hashed_timing_wheel.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace softtimer {

HashedTimingWheel::HashedTimingWheel(uint64_t granularity, size_t slot_count)
    : granularity_(granularity),
      slot_count_(slot_count),
      buckets_(slot_count, kNilTimerIndex) {
  assert(granularity_ >= 1);
  assert(slot_count_ >= 2);
}

void HashedTimingWheel::LinkIntoBucket(uint32_t index, size_t slot) {
  Node& n = slab_.at(index);
  n.prev = kNilTimerIndex;
  n.next = buckets_[slot];
  if (n.next != kNilTimerIndex) {
    slab_.at(n.next).prev = index;
  }
  buckets_[slot] = index;
}

void HashedTimingWheel::UnlinkFromBucket(uint32_t index, size_t slot) {
  Node& n = slab_.at(index);
  if (n.prev != kNilTimerIndex) {
    slab_.at(n.prev).next = n.next;
  } else {
    buckets_[slot] = n.next;
  }
  if (n.next != kNilTimerIndex) {
    slab_.at(n.next).prev = n.prev;
  }
  n.prev = kNilTimerIndex;
  n.next = kNilTimerIndex;
}

void HashedTimingWheel::FreeNode(uint32_t index) {
  Node& n = slab_.at(index);
  n.payload.handler.reset();
  slab_.Free(index);
}

// SOFTTIMER_HOT
TimerId HashedTimingWheel::Schedule(uint64_t deadline_tick, TimerPayload payload) {
  if (deadline_tick < cursor_) {
    deadline_tick = cursor_;
  }
  uint32_t index = slab_.Allocate();
  Node& n = slab_.at(index);
  n.payload = std::move(payload);
  n.deadline = deadline_tick;
  n.seq = next_seq_++;
  LinkIntoBucket(index, SlotFor(deadline_tick));
  ++live_count_;
  if (earliest_known_) {
    if (!earliest_cache_ || deadline_tick < *earliest_cache_) {
      earliest_cache_ = deadline_tick;
    }
  }
  return TimerId{PackTimerIdValue(index, n.generation)};
}

// SOFTTIMER_HOT
bool HashedTimingWheel::Cancel(TimerId id) {
  if (!slab_.IsCurrent(id.value)) {
    return false;
  }
  uint32_t index = TimerIdIndex(id.value);
  Node& n = slab_.at(index);
  if (n.state == TimerNodeState::kCancelledDue) {
    return false;  // already cancelled (while sitting in an expiry batch)
  }
  if (n.state == TimerNodeState::kDue) {
    // In an in-progress expiry batch: mark it; the fire loop frees it.
    n.state = TimerNodeState::kCancelledDue;
    --live_count_;
    return true;
  }
  bool was_earliest = earliest_known_ && earliest_cache_ &&
                      n.deadline == *earliest_cache_;
  UnlinkFromBucket(index, SlotFor(n.deadline));
  FreeNode(index);
  --live_count_;
  if (live_count_ == 0) {
    earliest_cache_.reset();
    earliest_known_ = true;
  } else if (was_earliest) {
    earliest_known_ = false;
  }
  return true;
}

std::optional<uint64_t> HashedTimingWheel::EarliestDeadline() const {
  if (!earliest_known_) {
    if (live_count_ == 0) {
      earliest_cache_.reset();
    } else {
      // Walk bucket heads outward from the cursor. Every pending deadline is
      // >= cursor_, and a node in the bucket k slots past the cursor's has
      // deadline >= (cursor_bucket + k) * granularity, so once the best seen
      // undercuts the next bucket's floor no later bucket can beat it.
      uint64_t best = UINT64_MAX;
      uint64_t base_bucket = cursor_ / granularity_;
      for (size_t k = 0; k < slot_count_; ++k) {
        uint64_t bucket_floor = (base_bucket + k) * granularity_;
        if (best <= bucket_floor) {
          break;
        }
        uint32_t it = buckets_[(base_bucket + k) % slot_count_];
        while (it != kNilTimerIndex) {
          const Node& n = slab_.at(it);
          if (n.deadline < best) {
            best = n.deadline;
          }
          it = n.next;
        }
      }
      // best can remain UINT64_MAX mid-batch when every live node is an
      // unfired due entry; the batch re-invalidates the cache on completion.
      if (best != UINT64_MAX) {
        earliest_cache_ = best;
      } else {
        earliest_cache_.reset();
      }
    }
    earliest_known_ = true;
  }
  return earliest_cache_;
}

size_t HashedTimingWheel::ExpireUpTo(uint64_t now_tick) {
  if (now_tick < cursor_) {
    return 0;
  }
  if (live_count_ == 0) {
    cursor_ = now_tick + 1;
    earliest_cache_.reset();
    earliest_known_ = true;
    return 0;
  }
  std::optional<uint64_t> earliest = EarliestDeadline();
  if (!earliest || *earliest > now_tick) {
    // Nothing due: the walk can be skipped because buckets are indexed by
    // absolute deadline and will be visited when their deadline comes due.
    cursor_ = now_tick + 1;
    return 0;
  }

  // Unlink every due node from the buckets covering [cursor_, now_tick] into
  // the batch. Buckets to visit: every slot period from cursor_'s to
  // now_tick's, inclusive (computed on bucket indices, not raw tick deltas,
  // so a cursor sitting mid-bucket still reaches now's bucket).
  std::vector<uint32_t> batch;
  batch.swap(due_scratch_);
  uint64_t span_slots = now_tick / granularity_ - cursor_ / granularity_ + 1;
  size_t visit = std::min<uint64_t>(span_slots, slot_count_);
  size_t first_slot = SlotFor(cursor_);
  for (size_t k = 0; k < visit; ++k) {
    size_t slot = (first_slot + k) % slot_count_;
    uint32_t it = buckets_[slot];
    while (it != kNilTimerIndex) {
      Node& n = slab_.at(it);
      uint32_t next = n.next;
      if (n.deadline <= now_tick) {
        UnlinkFromBucket(it, slot);
        n.state = TimerNodeState::kDue;
        batch.push_back(it);
      }
      it = next;
    }
  }
  std::sort(batch.begin(), batch.end(), [this](uint32_t a, uint32_t b) {
    const Node& na = slab_.at(a);
    const Node& nb = slab_.at(b);
    if (na.deadline != nb.deadline) {
      return na.deadline < nb.deadline;
    }
    return na.seq < nb.seq;
  });

  // Advance the cursor before firing so callbacks that re-schedule get
  // deadlines clamped into the future (see the header contract).
  cursor_ = now_tick + 1;
  earliest_known_ = false;

  size_t fired = 0;
  for (uint32_t index : batch) {
    Node& n = slab_.at(index);
    if (n.state == TimerNodeState::kCancelledDue) {
      FreeNode(index);  // cancelled by an earlier callback in this batch
      continue;
    }
    // Move the payload out and recycle the node before invoking, so the
    // handler can schedule (reusing this slot), cancel stale ids, and defer
    // itself by moving its own state into a fresh node.
    TimerPayload payload = std::move(n.payload);
    TimerFired fired_info{&payload, n.deadline,
                          TimerId{PackTimerIdValue(index, n.generation)}};
    FreeNode(index);
    --live_count_;
    ++fired;
    payload.handler.Invoke(fired_info);
  }
  batch.clear();
  if (due_scratch_.capacity() < batch.capacity()) {
    due_scratch_.swap(batch);  // keep the larger buffer for next time
  }

  if (live_count_ == 0) {
    earliest_cache_.reset();
    earliest_known_ = true;
  } else {
    // A callback may have recomputed the cache mid-batch without seeing
    // then-unfired due nodes; recompute lazily now that the batch is done.
    earliest_known_ = false;
  }
  return fired;
}

}  // namespace softtimer
