#include "src/timer/callout_list_timer_queue.h"

#include <utility>

namespace softtimer {

TimerId CalloutListTimerQueue::Schedule(uint64_t deadline_tick, Callback cb) {
  if (deadline_tick < cursor_) {
    deadline_tick = cursor_;
  }
  uint64_t id = next_id_++;
  // Walk from the back: workloads schedule mostly-ascending deadlines, so
  // the common case is O(1) (the same trick 4.3BSD relied on).
  auto pos = list_.end();
  while (pos != list_.begin()) {
    auto prev = std::prev(pos);
    if (prev->deadline <= deadline_tick) {
      break;
    }
    pos = prev;
  }
  auto it = list_.insert(pos, Entry{deadline_tick, id, std::move(cb)});
  index_.emplace(id, it);
  return TimerId{id};
}

bool CalloutListTimerQueue::Cancel(TimerId id) {
  if (!id.valid()) {
    return false;
  }
  auto it = index_.find(id.value);
  if (it == index_.end()) {
    return false;
  }
  list_.erase(it->second);
  index_.erase(it);
  return true;
}

std::optional<uint64_t> CalloutListTimerQueue::EarliestDeadline() const {
  if (list_.empty()) {
    return std::nullopt;
  }
  return list_.front().deadline;
}

size_t CalloutListTimerQueue::ExpireUpTo(uint64_t now_tick) {
  if (now_tick + 1 > cursor_) {
    cursor_ = now_tick + 1;
  }
  size_t fired = 0;
  while (!list_.empty() && list_.front().deadline <= now_tick) {
    Entry e = std::move(list_.front());
    list_.pop_front();
    index_.erase(e.id);
    ++fired;
    e.cb();
  }
  return fired;
}

}  // namespace softtimer
