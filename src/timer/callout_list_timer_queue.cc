#include "src/timer/callout_list_timer_queue.h"

#include <utility>

namespace softtimer {

void CalloutListTimerQueue::Unlink(uint32_t index) {
  Node& n = slab_.at(index);
  if (n.prev != kNilTimerIndex) {
    slab_.at(n.prev).next = n.next;
  } else {
    head_ = n.next;
  }
  if (n.next != kNilTimerIndex) {
    slab_.at(n.next).prev = n.prev;
  } else {
    tail_ = n.prev;
  }
  n.prev = kNilTimerIndex;
  n.next = kNilTimerIndex;
}

void CalloutListTimerQueue::FreeNode(uint32_t index) {
  Node& n = slab_.at(index);
  n.payload.handler.reset();
  slab_.Free(index);
}

// SOFTTIMER_HOT
TimerId CalloutListTimerQueue::Schedule(uint64_t deadline_tick, TimerPayload payload) {
  if (deadline_tick < cursor_) {
    deadline_tick = cursor_;
  }
  uint32_t index = slab_.Allocate();
  Node& n = slab_.at(index);
  n.payload = std::move(payload);
  n.deadline = deadline_tick;
  // Walk from the back: workloads schedule mostly-ascending deadlines, so
  // the common case is O(1) (the same trick 4.3BSD relied on).
  uint32_t after = tail_;
  while (after != kNilTimerIndex && slab_.at(after).deadline > deadline_tick) {
    after = slab_.at(after).prev;
  }
  if (after == kNilTimerIndex) {
    // New head.
    n.prev = kNilTimerIndex;
    n.next = head_;
    if (head_ != kNilTimerIndex) {
      slab_.at(head_).prev = index;
    }
    head_ = index;
    if (tail_ == kNilTimerIndex) {
      tail_ = index;
    }
  } else {
    Node& a = slab_.at(after);
    n.prev = after;
    n.next = a.next;
    if (a.next != kNilTimerIndex) {
      slab_.at(a.next).prev = index;
    } else {
      tail_ = index;
    }
    a.next = index;
  }
  ++live_count_;
  return TimerId{PackTimerIdValue(index, n.generation)};
}

// SOFTTIMER_HOT
bool CalloutListTimerQueue::Cancel(TimerId id) {
  if (!slab_.IsCurrent(id.value)) {
    return false;
  }
  uint32_t index = TimerIdIndex(id.value);
  Unlink(index);
  FreeNode(index);
  --live_count_;
  return true;
}

std::optional<uint64_t> CalloutListTimerQueue::EarliestDeadline() const {
  if (head_ == kNilTimerIndex) {
    return std::nullopt;
  }
  return slab_.at(head_).deadline;
}

size_t CalloutListTimerQueue::ExpireUpTo(uint64_t now_tick) {
  if (now_tick + 1 > cursor_) {
    cursor_ = now_tick + 1;
  }
  size_t fired = 0;
  while (head_ != kNilTimerIndex && slab_.at(head_).deadline <= now_tick) {
    uint32_t index = head_;
    Node& n = slab_.at(index);
    Unlink(index);
    // Move the payload out and recycle the node before invoking, so the
    // handler can schedule (reusing this slot) or cancel stale ids.
    TimerPayload payload = std::move(n.payload);
    TimerFired fired_info{&payload, n.deadline,
                          TimerId{PackTimerIdValue(index, n.generation)}};
    FreeNode(index);
    --live_count_;
    ++fired;
    payload.handler.Invoke(fired_info);
  }
  return fired;
}

}  // namespace softtimer
