// Grouped sorting queue - the fifth TimerQueue backend, built for the
// high-churn dynamic-update mix (RTO re-arm on every cumulative ACK) the NIC
// timer-queue literature targets with grouped sorting queues.
//
// Pending timers live unsorted in coarse deadline groups; a group's entries
// are ordered (by (deadline, seq), the shared conformance order) only when
// the group becomes imminent - i.e. its members join the current expiry
// batch, which is sorted once before firing. Three range-disjoint tiers:
//
//   fine ring    [cursor_, fine_limit_)        group_count groups, each
//                                              `granularity` ticks wide
//   coarse ring  [fine_limit_, coarse_limit_)  group_count groups, each
//                                              granularity * group_count wide
//   far list     [coarse_limit_, inf)          one unsorted list
//
// As time advances, the coarse group at the fine window's edge is detached
// and its nodes redistributed into fine groups (or straight into the expiry
// batch); when the coarse window is exhausted the far list is swept once to
// refill it. Tiers never overlap in deadline range, so a group index plus
// the node's recorded {level, group} locate any timer in O(1).
//
// The point of the structure is native Update(id, new_deadline): unlink the
// node from its group, relink it under the new deadline, keep its slab slot
// and generation. No payload move, no free/allocate round-trip, and the
// returned id is the input id - against the cancel+reschedule emulation the
// other four backends inherit, this is the O(1) re-arm fast path.
//
// Window advancement cost: O(elapsed / coarse_width) group detaches per
// expiry (each O(1) when empty), with one far-list sweep per coarse-window
// span; when both rings are empty the windows jump wholesale, so an idle gap
// costs O(1) unless far timers must be swept in.
//
// Earliest-deadline caching, the expiry batch protocol, and the re-entrancy
// caveats match the hashed wheel (see hashed_timing_wheel.h): a node updated
// or cancelled while sitting in an in-progress batch is skipped or reaped by
// the fire loop, never fired under its old deadline.

#ifndef SOFTTIMER_SRC_TIMER_GROUPED_SORTING_QUEUE_H_
#define SOFTTIMER_SRC_TIMER_GROUPED_SORTING_QUEUE_H_

#include <vector>

#include "src/timer/timer_queue.h"
#include "src/timer/timer_slab.h"

namespace softtimer {

class GroupedSortingQueue : public TimerQueue {
 public:
  explicit GroupedSortingQueue(uint64_t granularity = 1,
                               size_t group_count = 1024);

  using TimerQueue::Schedule;
  TimerId Schedule(uint64_t deadline_tick, TimerPayload payload) override;
  bool Cancel(TimerId id) override;
  TimerId Update(TimerId id, uint64_t new_deadline_tick) override;
  size_t ExpireUpTo(uint64_t now_tick) override;
  std::optional<uint64_t> EarliestDeadline() const override;
  size_t size() const override { return live_count_; }
  std::string name() const override { return "grouped-sort"; }
  TimerSlabStats slab_stats() const override { return slab_.stats(); }
  // Group links only ever reach live nodes, so the slab can trim directly.
  size_t TrimSlab() override { return slab_.Trim(); }
  uint64_t PeekUserData(TimerId id) const override {
    return slab_.IsCurrent(id.value)
               ? slab_.at(TimerIdIndex(id.value)).payload.user_data
               : 0;
  }
  // kCancelledDue is excluded: its Cancel already returned true once, so
  // neither Update nor the inherited emulation may revive it.
  TimerPayload* MutablePayload(TimerId id) override {
    if (!slab_.IsCurrent(id.value)) {
      return nullptr;
    }
    Node& node = slab_.at(TimerIdIndex(id.value));
    return node.state == TimerNodeState::kCancelledDue ? nullptr
                                                       : &node.payload;
  }

 private:
  enum Level : uint8_t { kLevelFine = 0, kLevelCoarse = 1, kLevelFar = 2 };

  struct Node {
    TimerPayload payload;
    uint64_t deadline = 0;
    uint64_t seq = 0;
    uint32_t generation = 1;         // slab convention (see timer_slab.h)
    uint32_t next = kNilTimerIndex;  // group link / free-list link
    uint32_t prev = kNilTimerIndex;
    uint32_t group = 0;              // ring slot while level is fine/coarse
    uint8_t level = kLevelFine;
    TimerNodeState state = TimerNodeState::kFree;
  };

  static uint64_t RoundUpMultiple(uint64_t value, uint64_t multiple) {
    return (value + multiple - 1) / multiple * multiple;
  }

  // Picks the tier for the node's deadline and links it at the group head.
  void Link(uint32_t index);
  // Removes the node from the tier recorded in {level, group}.
  void Unlink(uint32_t index);
  void FreeNode(uint32_t index);
  // Routes a detached node: due -> batch (kDue), else relink by deadline.
  void PlaceOrBatch(uint32_t index, uint64_t now_tick,
                    std::vector<uint32_t>* batch);
  // Detaches the coarse group at the fine window's edge and advances
  // fine_limit_ one coarse width, redistributing its nodes.
  void MigrateCoarseGroup(uint64_t now_tick, std::vector<uint32_t>* batch);
  // Extends the coarse window one full span and sweeps the far list for
  // nodes that now fall inside it. Only called when fine_limit_ ==
  // coarse_limit_ (the coarse window is empty of range).
  void RefillCoarseFromFar(uint64_t now_tick, std::vector<uint32_t>* batch);
  // Advances fine_limit_/coarse_limit_ until fine_limit_ > now_tick,
  // batching every node whose deadline elapsed on the way.
  void AdvanceWindows(uint64_t now_tick, std::vector<uint32_t>* batch);

  uint64_t fine_width_;    // = granularity
  uint64_t coarse_width_;  // = granularity * group_count
  size_t group_count_;
  // Next tick value not yet covered by an ExpireUpTo walk. Deadlines below
  // this are clamped up to it at Schedule/Update time. May exceed
  // fine_limit_ after a nothing-due expiry; the fine ring is provably empty
  // whenever it does (every fine deadline would already have been due).
  uint64_t cursor_ = 0;
  uint64_t fine_limit_;    // multiple of coarse_width_
  uint64_t coarse_limit_;  // multiple of coarse_width_, >= fine_limit_
  TimerSlab<Node> slab_;
  std::vector<uint32_t> fine_heads_;    // head index per group (kNil = empty)
  std::vector<uint32_t> coarse_heads_;  // head index per group
  uint32_t far_head_ = kNilTimerIndex;
  std::vector<uint32_t> due_scratch_;   // reused expiry batch
  uint64_t next_seq_ = 0;
  size_t live_count_ = 0;
  size_t ring_count_ = 0;  // nodes linked in the fine + coarse rings
  size_t far_count_ = 0;   // nodes linked in the far list
  // Exact earliest pending deadline; nullopt means empty.
  // earliest_known_ == false means "unknown, recompute on demand".
  mutable std::optional<uint64_t> earliest_cache_;
  mutable bool earliest_known_ = true;  // empty queue: known, no value
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_TIMER_GROUPED_SORTING_QUEUE_H_
