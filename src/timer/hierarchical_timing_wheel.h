// Hierarchical timing wheel (Varghese & Lauck, scheme 7).
//
// `level_count` wheels of `slots_per_level` buckets each; level l has bucket
// width granularity * slots_per_level^l ticks. A timer is inserted at the
// finest level whose horizon covers its delay; as coarse buckets elapse their
// entries cascade down to finer levels. Compared with the hashed wheel this
// bounds per-bucket occupancy for widely-spread deadlines at the cost of
// re-insertion work on cascade.
//
// Buckets are intrusive doubly-linked lists over slab-recycled nodes
// (timer_slab.h): schedule, cancel, and cascade relink nodes in place with
// zero steady-state heap allocations, and TimerIds are generation-counted so
// stale ids of recycled slots are rejected. Each node remembers its current
// (level, bucket) so cancel can unlink in O(1) even after cascades moved it.
//
// The earliest-deadline cache is recomputed, when invalidated, by walking
// each level's bucket heads outward from the cursor with a per-bucket floor
// early-exit (O(occupied span), not O(live)). The same caveats as the hashed
// wheel apply to EarliestDeadline queried from inside a firing handler.

#ifndef SOFTTIMER_SRC_TIMER_HIERARCHICAL_TIMING_WHEEL_H_
#define SOFTTIMER_SRC_TIMER_HIERARCHICAL_TIMING_WHEEL_H_

#include <vector>

#include "src/timer/timer_queue.h"
#include "src/timer/timer_slab.h"

namespace softtimer {

class HierarchicalTimingWheel : public TimerQueue {
 public:
  explicit HierarchicalTimingWheel(uint64_t granularity = 1,
                                   size_t slots_per_level = 256,
                                   size_t level_count = 4);

  using TimerQueue::Schedule;
  TimerId Schedule(uint64_t deadline_tick, TimerPayload payload) override;
  bool Cancel(TimerId id) override;
  size_t ExpireUpTo(uint64_t now_tick) override;
  std::optional<uint64_t> EarliestDeadline() const override;
  size_t size() const override { return live_count_; }
  std::string name() const override { return "hier-wheel"; }
  TimerSlabStats slab_stats() const override { return slab_.stats(); }
  // Bucket links only ever reach live nodes, so the slab can trim directly.
  size_t TrimSlab() override { return slab_.Trim(); }
  uint64_t PeekUserData(TimerId id) const override {
    return slab_.IsCurrent(id.value)
               ? slab_.at(TimerIdIndex(id.value)).payload.user_data
               : 0;
  }
  // kCancelledDue is excluded: its Cancel already returned true once, so the
  // inherited Update emulation must see it as stale, not revive it.
  TimerPayload* MutablePayload(TimerId id) override {
    if (!slab_.IsCurrent(id.value)) {
      return nullptr;
    }
    Node& node = slab_.at(TimerIdIndex(id.value));
    return node.state == TimerNodeState::kCancelledDue ? nullptr
                                                       : &node.payload;
  }

 private:
  struct Node {
    TimerPayload payload;
    uint64_t deadline = 0;
    uint64_t seq = 0;
    uint32_t generation = 1;         // slab convention (see timer_slab.h)
    uint32_t next = kNilTimerIndex;  // bucket link / free-list link
    uint32_t prev = kNilTimerIndex;
    uint32_t bucket = 0;             // current slot within `level`
    uint8_t level = 0;               // current wheel level
    TimerNodeState state = TimerNodeState::kFree;
  };
  struct Level {
    uint64_t bucket_width;        // ticks per bucket
    uint64_t cascade_cursor;      // next tick not yet cascaded
    std::vector<uint32_t> heads;  // head node index per slot (kNil = empty)
  };

  // Links `index` into the finest level whose horizon covers
  // (deadline - cursor_), recording (level, bucket) in the node.
  void Place(uint32_t index, uint64_t deadline);
  void LinkIntoBucket(uint32_t index, size_t level, size_t bucket);
  void UnlinkFromBucket(uint32_t index);
  void FreeNode(uint32_t index);
  // Moves entries out of coarse buckets whose time range has been reached,
  // down to finer levels (or into `batch` when already expired).
  void CascadeUpTo(uint64_t now_tick, std::vector<uint32_t>* batch);

  uint64_t granularity_;
  size_t slots_per_level_;
  uint64_t cursor_ = 0;  // next tick not yet covered at level 0
  std::vector<Level> levels_;
  TimerSlab<Node> slab_;
  std::vector<uint32_t> due_scratch_;  // reused expiry batch
  uint64_t next_seq_ = 0;
  size_t live_count_ = 0;
  mutable std::optional<uint64_t> earliest_cache_;
  mutable bool earliest_known_ = true;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_TIMER_HIERARCHICAL_TIMING_WHEEL_H_
