// Hierarchical timing wheel (Varghese & Lauck, scheme 7).
//
// `level_count` wheels of `slots_per_level` buckets each; level l has bucket
// width granularity * slots_per_level^l ticks. A timer is inserted at the
// finest level whose horizon covers its delay; as coarse buckets elapse their
// entries cascade down to finer levels. Compared with the hashed wheel this
// bounds per-bucket occupancy for widely-spread deadlines at the cost of
// re-insertion work on cascade.

#ifndef SOFTTIMER_SRC_TIMER_HIERARCHICAL_TIMING_WHEEL_H_
#define SOFTTIMER_SRC_TIMER_HIERARCHICAL_TIMING_WHEEL_H_

#include <unordered_map>
#include <vector>

#include "src/timer/timer_queue.h"

namespace softtimer {

class HierarchicalTimingWheel : public TimerQueue {
 public:
  explicit HierarchicalTimingWheel(uint64_t granularity = 1,
                                   size_t slots_per_level = 256,
                                   size_t level_count = 4);

  TimerId Schedule(uint64_t deadline_tick, Callback cb) override;
  bool Cancel(TimerId id) override;
  size_t ExpireUpTo(uint64_t now_tick) override;
  std::optional<uint64_t> EarliestDeadline() const override;
  size_t size() const override { return live_.size(); }
  std::string name() const override { return "hier-wheel"; }

 private:
  struct Entry {
    uint64_t deadline;
    uint64_t seq;
    Callback cb;
  };
  struct Level {
    uint64_t bucket_width;                     // ticks per bucket
    uint64_t cascade_cursor;                   // next tick not yet cascaded
    std::vector<std::vector<uint64_t>> slots;  // ids, pruned lazily
  };

  // Inserts into the finest level whose horizon covers (deadline - cursor_).
  void Place(uint64_t id, uint64_t deadline);
  // Moves entries out of coarse buckets whose time range has been reached,
  // down to finer levels (or straight to `due` when already expired).
  void CascadeUpTo(uint64_t now_tick, std::vector<uint64_t>* maybe_due);

  uint64_t granularity_;
  size_t slots_per_level_;
  uint64_t cursor_ = 0;  // next tick not yet covered at level 0
  std::vector<Level> levels_;
  std::unordered_map<uint64_t, Entry> live_;
  uint64_t next_id_ = 1;
  uint64_t next_seq_ = 0;
  mutable std::optional<uint64_t> earliest_cache_;
  mutable bool earliest_known_ = true;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_TIMER_HIERARCHICAL_TIMING_WHEEL_H_
