#include "src/timer/timer_queue.h"

#include "src/timer/callout_list_timer_queue.h"
#include "src/timer/hashed_timing_wheel.h"
#include "src/timer/heap_timer_queue.h"
#include "src/timer/hierarchical_timing_wheel.h"

namespace softtimer {

std::unique_ptr<TimerQueue> MakeTimerQueue(TimerQueueKind kind, uint64_t tick_granularity) {
  switch (kind) {
    case TimerQueueKind::kHeap:
      return std::make_unique<HeapTimerQueue>();
    case TimerQueueKind::kHashedWheel:
      return std::make_unique<HashedTimingWheel>(tick_granularity);
    case TimerQueueKind::kHierarchicalWheel:
      return std::make_unique<HierarchicalTimingWheel>(tick_granularity);
    case TimerQueueKind::kCalloutList:
      return std::make_unique<CalloutListTimerQueue>();
  }
  return nullptr;
}

const char* TimerQueueKindName(TimerQueueKind kind) {
  switch (kind) {
    case TimerQueueKind::kHeap:
      return "heap";
    case TimerQueueKind::kHashedWheel:
      return "hashed-wheel";
    case TimerQueueKind::kHierarchicalWheel:
      return "hier-wheel";
    case TimerQueueKind::kCalloutList:
      return "callout-list";
  }
  return "unknown";
}

}  // namespace softtimer
