#include "src/timer/timer_queue.h"

#include "src/timer/callout_list_timer_queue.h"
#include "src/timer/grouped_sorting_queue.h"
#include "src/timer/hashed_timing_wheel.h"
#include "src/timer/heap_timer_queue.h"
#include "src/timer/hierarchical_timing_wheel.h"

namespace softtimer {

// Default Update: cancel+reschedule with the payload carried across on the
// stack. MutablePayload gates out kCancelledDue nodes (their Cancel already
// returned true once), so the Cancel below can only fail if the id went
// stale between the two calls - impossible under the single-threaded queue
// contract, but restore-and-bail keeps the emulation self-contained.
// SOFTTIMER_HOT
TimerId TimerQueue::Update(TimerId id, uint64_t new_deadline_tick) {
  TimerPayload* payload = MutablePayload(id);
  if (payload == nullptr) {
    return TimerId{};
  }
  TimerPayload moved = std::move(*payload);
  if (!Cancel(id)) {
    *payload = std::move(moved);
    return TimerId{};
  }
  return Schedule(new_deadline_tick, std::move(moved));
}

std::unique_ptr<TimerQueue> MakeTimerQueue(TimerQueueKind kind, uint64_t tick_granularity) {
  switch (kind) {
    case TimerQueueKind::kHeap:
      return std::make_unique<HeapTimerQueue>();
    case TimerQueueKind::kHashedWheel:
      return std::make_unique<HashedTimingWheel>(tick_granularity);
    case TimerQueueKind::kHierarchicalWheel:
      return std::make_unique<HierarchicalTimingWheel>(tick_granularity);
    case TimerQueueKind::kCalloutList:
      return std::make_unique<CalloutListTimerQueue>();
    case TimerQueueKind::kGroupedSorting:
      return std::make_unique<GroupedSortingQueue>(tick_granularity);
  }
  return nullptr;
}

const char* TimerQueueKindName(TimerQueueKind kind) {
  switch (kind) {
    case TimerQueueKind::kHeap:
      return "heap";
    case TimerQueueKind::kHashedWheel:
      return "hashed-wheel";
    case TimerQueueKind::kHierarchicalWheel:
      return "hier-wheel";
    case TimerQueueKind::kCalloutList:
      return "callout-list";
    case TimerQueueKind::kGroupedSorting:
      return "grouped-sort";
  }
  return "unknown";
}

}  // namespace softtimer
