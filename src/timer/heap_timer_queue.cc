#include "src/timer/heap_timer_queue.h"

#include <utility>

namespace softtimer {

TimerId HeapTimerQueue::Schedule(uint64_t deadline_tick, Callback cb) {
  if (deadline_tick < cursor_) {
    deadline_tick = cursor_;
  }
  uint64_t id = next_id_++;
  heap_.push(HeapEntry{deadline_tick, next_seq_++, id});
  live_.emplace(id, std::move(cb));
  return TimerId{id};
}

bool HeapTimerQueue::Cancel(TimerId id) {
  if (!id.valid()) {
    return false;
  }
  return live_.erase(id.value) > 0;
}

void HeapTimerQueue::SkimCancelled() const {
  while (!heap_.empty() && live_.find(heap_.top().id) == live_.end()) {
    heap_.pop();
  }
}

size_t HeapTimerQueue::ExpireUpTo(uint64_t now_tick) {
  if (now_tick + 1 > cursor_) {
    cursor_ = now_tick + 1;
  }
  size_t fired = 0;
  for (;;) {
    SkimCancelled();
    if (heap_.empty() || heap_.top().deadline > now_tick) {
      break;
    }
    HeapEntry top = heap_.top();
    heap_.pop();
    auto it = live_.find(top.id);
    Callback cb = std::move(it->second);
    live_.erase(it);
    ++fired;
    cb();
  }
  return fired;
}

std::optional<uint64_t> HeapTimerQueue::EarliestDeadline() const {
  SkimCancelled();
  if (heap_.empty()) {
    return std::nullopt;
  }
  return heap_.top().deadline;
}

}  // namespace softtimer
