#include "src/timer/heap_timer_queue.h"

#include <algorithm>
#include <utility>

namespace softtimer {

// SOFTTIMER_COLD: amortized heap-vector growth - entered only when the entry
// count breaks its previous capacity high-water mark; after warmup the heap
// runs at capacity and Schedule's push_back below never reallocates.
void HeapTimerQueue::GrowHeap() {
  heap_.reserve(heap_.capacity() == 0 ? 64 : heap_.capacity() * 2);
}

// SOFTTIMER_HOT
TimerId HeapTimerQueue::Schedule(uint64_t deadline_tick, TimerPayload payload) {
  if (deadline_tick < cursor_) {
    deadline_tick = cursor_;
  }
  uint32_t index = slab_.Allocate();
  Node& n = slab_.at(index);
  n.payload = std::move(payload);
  n.deadline = deadline_tick;
  if (heap_.size() == heap_.capacity()) {
    GrowHeap();
  }
  heap_.push_back(HeapEntry{deadline_tick, next_seq_++, index, n.generation});  // lint:allow-alloc
  std::push_heap(heap_.begin(), heap_.end(), EntryAfter{});
  ++live_count_;
  return TimerId{PackTimerIdValue(index, n.generation)};
}

// SOFTTIMER_HOT
bool HeapTimerQueue::Cancel(TimerId id) {
  if (!slab_.IsCurrent(id.value)) {
    return false;
  }
  // Free the slot now (bumping its generation); the heap entry goes stale
  // and is skimmed when it reaches the top, or swept out by Compact below.
  uint32_t index = TimerIdIndex(id.value);
  Node& n = slab_.at(index);
  n.payload.handler.reset();
  slab_.Free(index);
  --live_count_;
  ++stale_count_;
  // Without compaction, a schedule/cancel-only workload (no expiry in
  // between) would grow the heap without bound. Sweeping once stale entries
  // outnumber live ones keeps the vector at <= 2x the live high-water mark
  // and costs amortized O(1) per cancel.
  if (stale_count_ > live_count_ && heap_.size() > 64) {
    Compact();
  }
  return true;
}

void HeapTimerQueue::Compact() const {
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const HeapEntry& e) { return !EntryCurrent(e); }),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), EntryAfter{});
  stale_count_ = 0;
}

void HeapTimerQueue::SkimCancelled() const {
  while (!heap_.empty() && !EntryCurrent(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), EntryAfter{});
    heap_.pop_back();
    --stale_count_;
  }
}

size_t HeapTimerQueue::ExpireUpTo(uint64_t now_tick) {
  if (now_tick + 1 > cursor_) {
    cursor_ = now_tick + 1;
  }
  size_t fired = 0;
  for (;;) {
    SkimCancelled();
    if (heap_.empty() || heap_.front().deadline > now_tick) {
      break;
    }
    HeapEntry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), EntryAfter{});
    heap_.pop_back();
    Node& n = slab_.at(top.slot);
    // Move the payload out and recycle the node before invoking, so the
    // handler can schedule (reusing this slot) or cancel stale ids.
    TimerPayload payload = std::move(n.payload);
    TimerFired fired_info{&payload, n.deadline,
                          TimerId{PackTimerIdValue(top.slot, n.generation)}};
    slab_.Free(top.slot);
    --live_count_;
    ++fired;
    payload.handler.Invoke(fired_info);
  }
  return fired;
}

std::optional<uint64_t> HeapTimerQueue::EarliestDeadline() const {
  SkimCancelled();
  if (heap_.empty()) {
    return std::nullopt;
  }
  return heap_.front().deadline;
}

}  // namespace softtimer
