// Sorted callout list - the classic BSD timer structure that timing wheels
// were invented to replace (Varghese & Lauck's scheme 3; the 4.3BSD
// `callout` queue kept entries sorted by delta-encoded expiry).
//
// O(n) schedule, O(1) earliest-deadline and expiry-per-fired-timer. Included
// as the historically-faithful baseline for the microbenchmarks and as a
// fourth implementation under the conformance suite.
//
// The list is intrusive and doubly linked over slab-recycled nodes
// (timer_slab.h): schedule walks from the tail (O(1) for mostly-ascending
// deadlines, the same trick 4.3BSD relied on), cancel unlinks in O(1), and
// steady-state operation performs zero heap allocations. TimerIds are
// generation-counted, so stale ids of recycled slots are rejected.

#ifndef SOFTTIMER_SRC_TIMER_CALLOUT_LIST_TIMER_QUEUE_H_
#define SOFTTIMER_SRC_TIMER_CALLOUT_LIST_TIMER_QUEUE_H_

#include "src/timer/timer_queue.h"
#include "src/timer/timer_slab.h"

namespace softtimer {

class CalloutListTimerQueue : public TimerQueue {
 public:
  CalloutListTimerQueue() = default;

  using TimerQueue::Schedule;
  TimerId Schedule(uint64_t deadline_tick, TimerPayload payload) override;
  bool Cancel(TimerId id) override;
  size_t ExpireUpTo(uint64_t now_tick) override;
  std::optional<uint64_t> EarliestDeadline() const override;
  size_t size() const override { return live_count_; }
  std::string name() const override { return "callout-list"; }
  TimerSlabStats slab_stats() const override { return slab_.stats(); }
  // List links only ever reach live nodes, so the slab can trim directly.
  size_t TrimSlab() override { return slab_.Trim(); }
  uint64_t PeekUserData(TimerId id) const override {
    return slab_.IsCurrent(id.value)
               ? slab_.at(TimerIdIndex(id.value)).payload.user_data
               : 0;
  }
  TimerPayload* MutablePayload(TimerId id) override {
    return slab_.IsCurrent(id.value)
               ? &slab_.at(TimerIdIndex(id.value)).payload
               : nullptr;
  }

 private:
  struct Node {
    TimerPayload payload;
    uint64_t deadline = 0;
    uint32_t generation = 1;         // slab convention (see timer_slab.h)
    uint32_t next = kNilTimerIndex;  // list link / free-list link
    uint32_t prev = kNilTimerIndex;
    TimerNodeState state = TimerNodeState::kFree;
  };

  void Unlink(uint32_t index);
  void FreeNode(uint32_t index);

  uint64_t cursor_ = 0;
  TimerSlab<Node> slab_;
  // Sorted ascending by (deadline, insertion order): new entries with an
  // equal deadline go after existing ones, which preserves FIFO semantics.
  uint32_t head_ = kNilTimerIndex;
  uint32_t tail_ = kNilTimerIndex;
  size_t live_count_ = 0;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_TIMER_CALLOUT_LIST_TIMER_QUEUE_H_
