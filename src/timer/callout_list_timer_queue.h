// Sorted callout list - the classic BSD timer structure that timing wheels
// were invented to replace (Varghese & Lauck's scheme 3; the 4.3BSD
// `callout` queue kept entries sorted by delta-encoded expiry).
//
// O(n) schedule, O(1) earliest-deadline and expiry-per-fired-timer. Included
// as the historically-faithful baseline for the microbenchmarks and as a
// fourth implementation under the conformance suite.

#ifndef SOFTTIMER_SRC_TIMER_CALLOUT_LIST_TIMER_QUEUE_H_
#define SOFTTIMER_SRC_TIMER_CALLOUT_LIST_TIMER_QUEUE_H_

#include <list>
#include <unordered_map>

#include "src/timer/timer_queue.h"

namespace softtimer {

class CalloutListTimerQueue : public TimerQueue {
 public:
  CalloutListTimerQueue() = default;

  TimerId Schedule(uint64_t deadline_tick, Callback cb) override;
  bool Cancel(TimerId id) override;
  size_t ExpireUpTo(uint64_t now_tick) override;
  std::optional<uint64_t> EarliestDeadline() const override;
  size_t size() const override { return index_.size(); }
  std::string name() const override { return "callout-list"; }

 private:
  struct Entry {
    uint64_t deadline;
    uint64_t id;
    Callback cb;
  };

  uint64_t cursor_ = 0;
  // Sorted ascending by (deadline, insertion order): new entries with an
  // equal deadline go after existing ones, which preserves FIFO semantics.
  std::list<Entry> list_;
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
  uint64_t next_id_ = 1;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_TIMER_CALLOUT_LIST_TIMER_QUEUE_H_
