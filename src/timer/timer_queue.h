// TimerQueue: the data-structure interface under the soft-timer facility.
//
// The paper maintains scheduled soft-timer events in "a modified form of
// timing wheels [Varghese & Lauck]". This library provides three
// interchangeable implementations behind one interface:
//
//   HeapTimerQueue           - binary heap; the textbook baseline.
//   HashedTimingWheel        - single-level hashed wheel with rounds.
//   HierarchicalTimingWheel  - multi-level cascading wheel.
//   CalloutListTimerQueue    - sorted list; the 4.3BSD callout structure
//                              timing wheels were invented to replace.
//
// All of them deal in abstract unsigned "ticks" (the facility maps its
// measurement clock onto ticks). Deadlines are absolute tick values.
//
// Semantics shared by all implementations (enforced by the conformance suite
// in tests/timer_queue_conformance_test.cc):
//
//  * ExpireUpTo(now) fires every pending timer with deadline <= now, in
//    (deadline, schedule-order) order.
//  * A timer scheduled with a deadline that is already in the past fires on
//    the next ExpireUpTo call.
//  * A callback may schedule or cancel timers; a timer scheduled from inside
//    a callback with an already-due deadline clamps to one tick past the
//    current ExpireUpTo time and fires on the next ExpireUpTo call that
//    reaches it.
//  * Cancel returns true exactly once per scheduled timer that has neither
//    fired nor been cancelled.

#ifndef SOFTTIMER_SRC_TIMER_TIMER_QUEUE_H_
#define SOFTTIMER_SRC_TIMER_TIMER_QUEUE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

namespace softtimer {

// Identifies one scheduled timer. Default-constructed ids are invalid.
struct TimerId {
  uint64_t value = 0;
  bool valid() const { return value != 0; }
};

class TimerQueue {
 public:
  using Callback = std::function<void()>;

  virtual ~TimerQueue() = default;

  // Schedules `cb` to fire once `ExpireUpTo(now)` is called with
  // now >= deadline_tick.
  virtual TimerId Schedule(uint64_t deadline_tick, Callback cb) = 0;

  // Cancels a pending timer. Returns false if it already fired or was
  // already cancelled.
  virtual bool Cancel(TimerId id) = 0;

  // Fires all timers with deadline <= now_tick; returns how many fired.
  virtual size_t ExpireUpTo(uint64_t now_tick) = 0;

  // Exact earliest pending deadline, or nullopt when empty. May cost a scan
  // of pending entries in the wheel implementations (cached between calls).
  virtual std::optional<uint64_t> EarliestDeadline() const = 0;

  // Number of pending timers.
  virtual size_t size() const = 0;
  bool empty() const { return size() == 0; }

  // Implementation name, for bench labels.
  virtual std::string name() const = 0;
};

// Factory selector used by SoftTimerFacility config.
enum class TimerQueueKind {
  kHeap,
  kHashedWheel,
  kHierarchicalWheel,
  kCalloutList,
};

// Creates a queue of the given kind. `tick_granularity` is the wheel slot
// width in ticks (ignored by the heap).
std::unique_ptr<TimerQueue> MakeTimerQueue(TimerQueueKind kind,
                                           uint64_t tick_granularity = 1);

const char* TimerQueueKindName(TimerQueueKind kind);

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_TIMER_TIMER_QUEUE_H_
