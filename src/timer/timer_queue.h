// TimerQueue: the data-structure interface under the soft-timer facility.
//
// The paper maintains scheduled soft-timer events in "a modified form of
// timing wheels [Varghese & Lauck]". This library provides five
// interchangeable implementations behind one interface:
//
//   HeapTimerQueue           - binary heap; the textbook baseline.
//   HashedTimingWheel        - single-level hashed wheel with rounds.
//   HierarchicalTimingWheel  - multi-level cascading wheel.
//   CalloutListTimerQueue    - sorted list; the 4.3BSD callout structure
//                              timing wheels were invented to replace.
//   GroupedSortingQueue      - coarse deadline groups sorted lazily on
//                              imminence, with native O(1) Update.
//
// All of them deal in abstract unsigned "ticks" (the facility maps its
// measurement clock onto ticks). Deadlines are absolute tick values.
//
// Hot-path design: a scheduled timer is a typed node, not a heap-allocated
// closure. The caller hands the queue a POD-ish TimerPayload whose handler
// lives in a small-buffer TimerHandlerSlot, the queue stores it in
// slab-recycled node storage (see timer_slab.h), and expiry fires the slot
// in place. Steady-state schedule / cancel / fire performs zero heap
// allocations. TimerIds are generation-counted, so a stale id whose slab
// slot was recycled is rejected rather than cancelling a stranger.
//
// Semantics shared by all implementations (enforced by the conformance suite
// in tests/timer_queue_conformance_test.cc):
//
//  * ExpireUpTo(now) fires every pending timer with deadline <= now, in
//    (deadline, schedule-order) order.
//  * A timer scheduled with a deadline that is already in the past fires on
//    the next ExpireUpTo call.
//  * A callback may schedule or cancel timers; a timer scheduled from inside
//    a callback with an already-due deadline clamps to one tick past the
//    current ExpireUpTo time and fires on the next ExpireUpTo call that
//    reaches it.
//  * Cancel returns true exactly once per scheduled timer that has neither
//    fired nor been cancelled; stale ids (fired, cancelled, or recycled
//    slots) return false.
//  * Update(id, new_deadline) atomically moves a live timer to a new
//    deadline, preserving its payload, and returns the id that names the
//    timer afterwards (an invalid id for stale/fired/cancelled inputs).
//    Observably it is cancel+reschedule: the moved timer fires at the new
//    deadline in fresh schedule order, past deadlines clamp like Schedule.
//    Backends without a native path inherit exactly that emulation;
//    GroupedSortingQueue relinks the node in place and returns `id` itself.

#ifndef SOFTTIMER_SRC_TIMER_TIMER_QUEUE_H_
#define SOFTTIMER_SRC_TIMER_TIMER_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>

#include "src/timer/timer_slab.h"

namespace softtimer {

// Identifies one scheduled timer. Default-constructed ids are invalid.
// Packs {shard, generation, slab slot index}; see timer_slab.h.
struct TimerId {
  uint64_t value = 0;
  bool valid() const { return value != 0; }
};

struct TimerPayload;

// Passed to the fired handler: the node's payload (movable: a handler may
// steal its own state to relink/defer itself), the deadline the node was
// stored under, and the id it was scheduled as.
struct TimerFired {
  TimerPayload* payload;
  uint64_t deadline_tick;
  TimerId id;
};

// Small-buffer, move-only callable of signature void(const TimerFired&).
// Callables up to kInlineBytes are stored inline (no heap allocation on the
// schedule path); larger ones fall back to a boxed heap copy so correctness
// never depends on capture size.
class TimerHandlerSlot {
 public:
  static constexpr size_t kInlineBytes = 48;

  TimerHandlerSlot() = default;
  TimerHandlerSlot(TimerHandlerSlot&& other) noexcept { MoveFrom(other); }
  TimerHandlerSlot& operator=(TimerHandlerSlot&& other) noexcept {
    if (this != &other) {
      reset();
      MoveFrom(other);
    }
    return *this;
  }
  TimerHandlerSlot(const TimerHandlerSlot&) = delete;
  TimerHandlerSlot& operator=(const TimerHandlerSlot&) = delete;
  ~TimerHandlerSlot() { reset(); }

  template <typename F>
  void emplace(F fn) {
    static_assert(std::is_invocable_v<F&, const TimerFired&>);
    if constexpr (sizeof(F) <= kInlineBytes &&
                  std::is_nothrow_move_constructible_v<F>) {
      reset();
      ::new (static_cast<void*>(storage_)) F(std::move(fn));
      ops_ = &OpsFor<F>::kOps;
    } else {
      emplace(Boxed<F>{std::make_unique<F>(std::move(fn))});
    }
  }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  bool empty() const { return ops_ == nullptr; }
  explicit operator bool() const { return ops_ != nullptr; }

  void Invoke(const TimerFired& fired) { ops_->invoke(storage_, fired); }

 private:
  struct Ops {
    void (*invoke)(void* storage, const TimerFired& fired);
    void (*move)(void* dst, void* src);  // move-construct dst, destroy src
    void (*destroy)(void* storage);
  };

  template <typename F>
  struct OpsFor {
    static void Invoke(void* storage, const TimerFired& fired) {
      (*static_cast<F*>(storage))(fired);
    }
    static void Move(void* dst, void* src) {
      F* from = static_cast<F*>(src);
      ::new (dst) F(std::move(*from));
      from->~F();
    }
    static void Destroy(void* storage) { static_cast<F*>(storage)->~F(); }
    static constexpr Ops kOps{&Invoke, &Move, &Destroy};
  };

  // Fallback for callables too large (or not nothrow-movable) for the
  // inline buffer.
  template <typename F>
  struct Boxed {
    std::unique_ptr<F> fn;
    void operator()(const TimerFired& fired) { (*fn)(fired); }
  };

  void MoveFrom(TimerHandlerSlot& other) {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->move(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
};

// The typed timer node contents: POD bookkeeping the dispatch entry point
// reads back at fire time, plus the handler slot. The facility stores its
// scheduling metadata here instead of capturing it in a closure.
struct TimerPayload {
  uint64_t scheduled_tick = 0;  // tick the event was scheduled at
  uint64_t delta_ticks = 0;     // the requested delay T
  uint64_t user_data = 0;       // caller-owned (facility: original public id)
  uint32_t tag = 0;             // caller-chosen handler class
  TimerHandlerSlot handler;
};

class TimerQueue {
 public:
  virtual ~TimerQueue() = default;

  // Schedules `payload` to fire once `ExpireUpTo(now)` is called with
  // now >= deadline_tick. The payload (including its handler slot) is moved
  // into slab node storage: no heap allocation in steady state.
  virtual TimerId Schedule(uint64_t deadline_tick, TimerPayload payload) = 0;

  // Convenience for plain no-argument callbacks (tests, benches, non-
  // facility users): wraps `cb` into a payload handler slot.
  template <typename F, typename = std::enable_if_t<std::is_invocable_v<F&>>>
  TimerId Schedule(uint64_t deadline_tick, F cb) {
    TimerPayload payload;
    payload.handler.emplace(CallbackThunk<std::decay_t<F>>{std::move(cb)});
    return Schedule(deadline_tick, std::move(payload));
  }

  // Cancels a pending timer. Returns false if it already fired, was already
  // cancelled, or the id is stale (its slab slot was recycled).
  virtual bool Cancel(TimerId id) = 0;

  // Moves a live timer to `new_deadline_tick`, preserving its payload, and
  // returns the id naming the timer afterwards; an invalid id if `id` is
  // stale/fired/cancelled (the reused slot, if any, is left untouched).
  // The default is an allocation-free cancel+reschedule emulation (the
  // returned id carries a fresh generation); backends with native update
  // relink in place and return `id` unchanged.
  virtual TimerId Update(TimerId id, uint64_t new_deadline_tick);

  // The live timer's payload for in-place metadata edits, or nullptr for
  // stale/fired/cancelled ids. Callers must not touch the handler slot of a
  // node that is being fired.
  virtual TimerPayload* MutablePayload(TimerId id) = 0;

  // The pending timer's payload user_data, or 0 for stale/fired/cancelled
  // ids. The facility's cancel path reads this before Cancel destroys the
  // payload, so a cancelled event's cookie can still be retired.
  virtual uint64_t PeekUserData(TimerId id) const = 0;

  // Fires all timers with deadline <= now_tick; returns how many fired.
  virtual size_t ExpireUpTo(uint64_t now_tick) = 0;

  // Exact earliest pending deadline, or nullopt when empty. The wheel
  // implementations cache it and recompute by walking bucket heads from the
  // cursor (early-exiting) when invalidated.
  virtual std::optional<uint64_t> EarliestDeadline() const = 0;

  // Number of pending timers.
  virtual size_t size() const = 0;
  bool empty() const { return size() == 0; }

  // Capacity/occupancy of the backing node slab (timer_slab.h).
  virtual TimerSlabStats slab_stats() const = 0;

  // Releases fully-free slab chunks back to the allocator (the slab
  // otherwise grows to the high-water mark and stays there). Returns the
  // number of chunks released. Outstanding stale TimerIds stay safely
  // rejectable afterwards.
  virtual size_t TrimSlab() = 0;

  // Implementation name, for bench labels.
  virtual std::string name() const = 0;

 private:
  template <typename F>
  struct CallbackThunk {
    F fn;
    void operator()(const TimerFired&) { fn(); }
  };
};

// Factory selector used by SoftTimerFacility config.
enum class TimerQueueKind {
  kHeap,
  kHashedWheel,
  kHierarchicalWheel,
  kCalloutList,
  kGroupedSorting,
};

// Creates a queue of the given kind. `tick_granularity` is the wheel slot
// width in ticks (ignored by the heap and the callout list).
std::unique_ptr<TimerQueue> MakeTimerQueue(TimerQueueKind kind,
                                           uint64_t tick_granularity = 1);

const char* TimerQueueKindName(TimerQueueKind kind);

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_TIMER_TIMER_QUEUE_H_
