// MultiQueuePoller - M NIC rx queues served by N cores (M > N) through the
// QueueClaim protocol (src/core/queue_claim.h), in the spirit of Metronome
// (arXiv 2103.13263): timed intermittent polling where service capacity is
// pooled across cores while poll-interval adaptation stays per-queue.
//
// The paper's Section 5.9 poller (SoftTimerNetPoller) binds ONE governed
// poll stream to the whole NIC set. Here every queue keeps its own
// PollGovernor - its own arrival-rate estimate and poll interval - while ANY
// core's trigger loop may serve it:
//
//   PollOnce(core, now):
//     1. gate check     - one relaxed load; if the set-wide next-due gate is
//                         in the future, nothing can be due: return.
//     2. scan           - walk the queues, peek claim + deadline, remember
//                         the most OVERDUE unclaimed due queue (deadline-
//                         ordered service keeps per-queue lateness bounded
//                         even when queues outnumber cores).
//     3. claim          - one CAS; on conflict, rescan (another core took
//                         it; bounded by the queue count).
//     4. poll + govern  - drain up to max_per_poll packets, feed the
//                         governor (found, elapsed-since-last-poll; the
//                         last-poll tick is claim-protected queue state, so
//                         elapsed spans matter across owner changes).
//     5. release        - publish the governor's next deadline, clear the
//                         claim, fold the deadline into the gate.
//
// A core with no due queue advances the gate (NextDueGate::TryAdvance) so
// the whole set can sleep until the earliest deadline; an idle core absorbs
// queues from a busy one simply by winning the claim CAS first - there are
// no handoff messages and no queue->core binding to rebalance.
//
// Threading: AddQueue() is setup-time only (before the serving threads
// start). PollOnce() may be called from any number of threads concurrently;
// next_due_tick() from anywhere. Aggregate accessors (achieved_quota,
// total_packets) are safe anytime; per-queue/per-core stats structs are
// quiesced reads (after the serving threads stop).

#ifndef SOFTTIMER_SRC_NET_MULTI_QUEUE_POLLER_H_
#define SOFTTIMER_SRC_NET_MULTI_QUEUE_POLLER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/poll_governor.h"
#include "src/core/queue_claim.h"
#include "src/core/spsc_ring.h"  // kCacheLineBytes

namespace softtimer {

class MultiQueuePoller {
 public:
  // One NIC rx queue (or anything pollable). Drain() is only ever invoked
  // under the queue's claim, i.e. by one core at a time - implementations
  // need no internal locking against other drainers (producers are their
  // own problem, as with real NIC descriptor rings).
  class Queue {
   public:
    virtual ~Queue() = default;
    // Processes up to max_packets pending packets; returns how many.
    virtual size_t Drain(size_t max_packets, uint64_t now_tick) = 0;
  };

  struct Config {
    // Per-queue governor configuration (every queue starts from the same
    // config; adaptation then diverges per queue).
    PollGovernor::Config governor;
    // Max packets drained from one queue per poll.
    size_t max_per_poll = 64;
    // Upper bound on serving-core ids passed to PollOnce (stats sizing).
    size_t max_cores = 16;
  };

  explicit MultiQueuePoller(Config config);

  // Registers a queue; returns its index. Setup-time only: must complete
  // before any thread calls PollOnce. The queue starts due immediately.
  size_t AddQueue(Queue* queue);

  // Serves at most one queue: claims the most-overdue unclaimed due queue,
  // drains it under its governor, releases it with the updated deadline.
  // Returns packets drained (0 = nothing was due or every due queue was
  // claimed by another core). Call in a loop while it returns nonzero.
  // `core` must be < Config::max_cores and unique per concurrent caller.
  size_t PollOnce(uint32_t core, uint64_t now_tick);

  // Set-wide earliest next-due hint (<= the true earliest deadline); the
  // serving host bounds its sleep by this so no due queue is stranded.
  uint64_t next_due_tick() const { return gate_.Load(); }

  size_t num_queues() const { return queues_.size(); }

  // Mean achieved packets-per-poll over all queues (each queue's governor
  // found_ewma, published at release). The governor->pacer coupling signal:
  // PacingWheelHost feeds this into PacingWheel max_batch. Safe anytime.
  double achieved_quota() const;

  // Total packets drained across all queues and cores. Safe anytime.
  uint64_t total_packets() const {
    // ordering: monotonic counter for progress/throughput readers; no other
    // state is inferred from it.
    return packets_total_.load(std::memory_order_relaxed);
  }

  struct QueueStats {
    uint64_t polls = 0;
    uint64_t packets = 0;
    uint64_t current_interval_ticks = 0;
    uint32_t last_owner = 0;  // core+1 of the last core to poll this queue
  };
  QueueStats queue_stats(size_t queue) const;  // quiesced read

  struct CoreStats {
    uint64_t polls = 0;           // successful claim->poll->release cycles
    uint64_t packets = 0;
    uint64_t gate_skips = 0;      // PollOnce returns at the gate fast check
    uint64_t scan_misses = 0;     // full scan found nothing claimable
    uint64_t claim_conflicts = 0; // lost a claim CAS to another core
    uint64_t stale_claims = 0;    // claimed, then saw a future deadline
  };
  CoreStats core_stats(uint32_t core) const;  // quiesced read

  // Test hooks: hold/release a queue's claim from outside PollOnce, to pin
  // absorb-from-busy-owner behaviour deterministically.
  bool ClaimQueueForTest(size_t queue, uint32_t core);
  void ReleaseQueueForTest(size_t queue, uint64_t next_due_tick);

 private:
  static constexpr size_t kNone = static_cast<size_t>(-1);

  // Per-queue state. The claim word is the lock for everything below it:
  // governor, last-poll tick, and the plain stats are only touched by the
  // claim holder and published by the release store.
  struct alignas(kCacheLineBytes) QueueState {
    explicit QueueState(Queue* q, const PollGovernor::Config& gc)
        : queue(q), governor(gc) {}
    QueueClaim<> claim;
    Queue* queue;
    PollGovernor governor;
    uint64_t last_poll_tick = 0;
    bool have_last_poll_tick = false;
    QueueStats stats;
    // Governor found_ewma x1000, published at release for achieved_quota()
    // readers outside the claim.
    std::atomic<uint32_t> quota_milli{0};
  };

  struct alignas(kCacheLineBytes) PerCore {
    CoreStats stats;
  };

  Config config_;
  std::vector<std::unique_ptr<QueueState>> queues_;
  std::vector<PerCore> cores_;
  NextDueGate<> gate_;
  std::atomic<uint64_t> packets_total_{0};
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_NET_MULTI_QUEUE_POLLER_H_
