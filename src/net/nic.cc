#include "src/net/nic.h"

#include <utility>

namespace softtimer {

Nic::Nic(Simulator* sim, Kernel* kernel, Link* tx_link, Config config)
    : sim_(sim), kernel_(kernel), tx_link_(tx_link), config_(config) {}

SimDuration Nic::RxServiceCost(const Packet& p) const {
  const MachineProfile& prof = kernel_->profile();
  return p.kind == Packet::Kind::kAck ? prof.rx_ack_service : prof.rx_packet_service;
}

void Nic::OnWireRx(const Packet& p) {
  if (rx_ring_.size() >= config_.rx_ring_size) {
    ++stats_.rx_dropped;
    return;
  }
  rx_ring_.push_back(p);
  ++stats_.rx_packets;
  if (mode_ == Mode::kInterrupt) {
    RaiseRxInterrupt();
  }
}

void Nic::RaiseRxInterrupt() {
  // One interrupt drains everything currently in the ring (arrivals during
  // the service window raise their own).
  size_t n = rx_ring_.size();
  if (n == 0) {
    return;
  }
  ++stats_.rx_interrupts;
  const MachineProfile& prof = kernel_->profile();
  SimDuration work;
  for (size_t i = 0; i < n; ++i) {
    work += prof.Work(RxServiceCost(rx_ring_[i]));
  }
  kernel_->RaiseInterrupt(TriggerSource::kIpIntr, work, [this, n] {
    for (size_t i = 0; i < n && !rx_ring_.empty(); ++i) {
      Packet p = rx_ring_.front();
      rx_ring_.pop_front();
      if (rx_handler_) {
        rx_handler_(p);
      }
    }
  });
}

void Nic::Transmit(Packet p) {
  ++stats_.tx_packets;
  SimDuration serialize = tx_link_->SerializationDelay(p.size_bytes);
  tx_link_->Send(p);
  if (mode_ == Mode::kInterrupt && config_.tx_complete_interrupts) {
    ++pending_tx_completions_;
    if (!tx_reap_scheduled_) {
      tx_reap_scheduled_ = true;
      sim_->ScheduleAfter(serialize + config_.tx_coalesce_window,
                          [this] { ReapTxCompletions(); });
    }
  }
}

void Nic::EnqueueBurst(const Packet* packets, size_t count) {
  if (count == 0) {
    return;
  }
  stats_.tx_packets += count;
  SimDuration serialize;
  for (size_t i = 0; i < count; ++i) {
    serialize += tx_link_->SerializationDelay(packets[i].size_bytes);
    tx_link_->Send(packets[i]);
  }
  if (mode_ == Mode::kInterrupt && config_.tx_complete_interrupts) {
    pending_tx_completions_ += count;
    if (!tx_reap_scheduled_) {
      tx_reap_scheduled_ = true;
      sim_->ScheduleAfter(serialize + config_.tx_coalesce_window,
                          [this] { ReapTxCompletions(); });
    }
  }
}

void Nic::ReapTxCompletions() {
  tx_reap_scheduled_ = false;
  if (pending_tx_completions_ == 0 || mode_ != Mode::kInterrupt) {
    pending_tx_completions_ = 0;
    return;
  }
  if (tx_link_->queue_depth() > 0) {
    // A burst is still draining onto the wire; signal once when it is done.
    tx_reap_scheduled_ = true;
    sim_->ScheduleAfter(tx_link_->SerializationDelay(kEthernetMtu),
                        [this] { ReapTxCompletions(); });
    return;
  }
  uint64_t n = pending_tx_completions_;
  pending_tx_completions_ = 0;
  ++stats_.tx_complete_interrupts;
  const MachineProfile& prof = kernel_->profile();
  kernel_->RaiseInterrupt(TriggerSource::kIpIntr,
                          prof.Work(config_.tx_complete_work) * static_cast<int64_t>(n));
}

void Nic::SetMode(Mode m) {
  if (mode_ == m) {
    return;
  }
  mode_ = m;
  if (mode_ == Mode::kInterrupt && !rx_ring_.empty()) {
    // Re-enabling interrupts with packets pending signals immediately.
    RaiseRxInterrupt();
  }
  if (mode_ == Mode::kPolled) {
    pending_tx_completions_ = 0;  // reaped for free at the next poll
  }
}

size_t Nic::Poll(size_t max_packets) {
  const MachineProfile& prof = kernel_->profile();
  kernel_->cpu(0).Steal(prof.Work(config_.poll_cost));
  size_t n = rx_ring_.size();
  if (n > max_packets) {
    n = max_packets;
  }
  pending_tx_completions_ = 0;  // tx reaping rides along with the poll
  if (n == 0) {
    return 0;
  }
  DeliverBatchFromPoll(n);
  return n;
}

void Nic::DeliverBatchFromPoll(size_t n) {
  const MachineProfile& prof = kernel_->profile();
  // First packet saves the locality discount vs interrupt processing; the
  // rest of the batch amortizes further (Section 4.2's aggregation benefit).
  SimDuration work;
  for (size_t i = 0; i < n; ++i) {
    SimDuration base = RxServiceCost(rx_ring_[i]) * (1.0 - prof.poll_locality_discount);
    if (i > 0) {
      base = base * (1.0 - prof.batch_locality_discount);
    }
    work += base;
  }
  kernel_->cpu(0).Steal(prof.Work(work));
  stats_.polled_packets += n;
  for (size_t i = 0; i < n; ++i) {
    Packet p = rx_ring_.front();
    rx_ring_.pop_front();
    if (rx_handler_) {
      rx_handler_(p);
    }
  }
}

}  // namespace softtimer
