#include "src/net/link.h"

#include <cassert>
#include <utility>

namespace softtimer {

Link::Link(Simulator* sim, Config config) : sim_(sim), config_(config) {
  assert(config_.bandwidth_bps > 0);
}

SimDuration Link::SerializationDelay(uint32_t bytes) const {
  return SimDuration::Seconds(static_cast<double>(bytes) * 8.0 / config_.bandwidth_bps);
}

bool Link::Send(Packet p) {
  if (in_flight_tx_ >= config_.queue_limit_packets) {
    ++stats_.dropped;
    return false;
  }
  SimTime now = sim_->now();
  SimTime start = tx_free_at_ > now ? tx_free_at_ : now;
  SimTime done_serializing = start + SerializationDelay(p.size_bytes);
  tx_free_at_ = done_serializing;
  ++in_flight_tx_;
  ++stats_.sent;
  stats_.bytes_sent += p.size_bytes;
  SimTime arrival = done_serializing + config_.propagation_delay;
  sim_->ScheduleAt(done_serializing, [this] { --in_flight_tx_; });
  FaultAction action = fault_hook_ ? fault_hook_(p) : FaultAction::kNone;
  if (action == FaultAction::kDrop) {
    ++stats_.fault_dropped;
    return true;  // the sender saw a successful transmit; the wire ate it
  }
  int copies = action == FaultAction::kDuplicate ? 2 : 1;
  if (action == FaultAction::kDuplicate) {
    ++stats_.fault_duplicated;
  }
  for (int i = 0; i < copies; ++i) {
    sim_->ScheduleAt(arrival, [this, p] {
      if (receiver_) {
        receiver_(p);
      }
    });
  }
  return true;
}

}  // namespace softtimer
