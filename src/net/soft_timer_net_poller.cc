#include "src/net/soft_timer_net_poller.h"

#include <algorithm>
#include <utility>

namespace softtimer {

SoftTimerNetPoller::SoftTimerNetPoller(Kernel* kernel, std::vector<Nic*> nics, Config config)
    : kernel_(kernel), nics_(std::move(nics)), config_(config), governor_(config.governor) {}

void SoftTimerNetPoller::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  // Degradation recovery: a trigger drought starves the poll stream, so the
  // first post-drought poll would see a huge elapsed gap and read as a
  // collapsed arrival rate. Reset the governor instead of letting the drought
  // poison its rate estimate.
  kernel_->soft_timers().AddDroughtListener([this](bool entering) {
    if (!entering && active_) {
      ++stats_.drought_resets;
      // ReEngage, not just ResetRate: the pending poll event was scheduled
      // at the pre-drought interval, and traffic after a drought is
      // unknown - left alone, the stream would re-engage one full stale
      // interval late. Re-clamp to min(current, initial) within the Config
      // bounds and reschedule at the re-clamped interval.
      governor_.ReEngage();
      have_last_poll_tick_ = false;
      if (pending_event_.valid()) {
        kernel_->soft_timers().CancelSoftEvent(pending_event_);
      }
      ScheduleNext(governor_.current_interval_ticks());
    }
  });
  if (config_.interrupts_when_idle) {
    kernel_->AddCpuIdleListener([this](int cpu, bool idle) {
      (void)cpu;
      if (idle) {
        if (active_) {
          ++stats_.idle_switches;
          SetPolled(false);
        }
      } else {
        if (!active_) {
          SetPolled(true);
        }
      }
    });
    // Engage according to the current CPU state.
    SetPolled(kernel_->cpu(0).busy());
  } else {
    SetPolled(true);
  }
}

void SoftTimerNetPoller::SetPolled(bool polled) {
  // Re-entrancy guard: switching a NIC to interrupt mode can immediately
  // raise an interrupt whose handler makes the CPU busy, which calls back
  // into SetPolled(true) from inside our own loop. Record the latest desired
  // state and let the outermost invocation settle it.
  desired_polled_ = polled;
  if (in_set_polled_) {
    return;
  }
  in_set_polled_ = true;
  while (desired_polled_ != applied_polled_ || !applied_once_) {
    applied_once_ = true;
    bool p = desired_polled_;
    applied_polled_ = p;
    active_ = p;
    for (Nic* nic : nics_) {
      nic->SetMode(p ? Nic::Mode::kPolled : Nic::Mode::kInterrupt);
    }
    if (p) {
      ++stats_.engages;
      // The pause must not read as a low arrival rate, and whatever sat in
      // the rings during the flip gets drained promptly.
      governor_.ReEngage();
      have_last_poll_tick_ = false;
      if (pending_event_.valid()) {
        kernel_->soft_timers().CancelSoftEvent(pending_event_);
      }
      ScheduleNext(governor_.current_interval_ticks());
    } else if (pending_event_.valid()) {
      kernel_->soft_timers().CancelSoftEvent(pending_event_);
      pending_event_ = SoftEventId{};
    }
  }
  in_set_polled_ = false;
}

void SoftTimerNetPoller::ScheduleNext(uint64_t interval_ticks) {
  pending_event_ = kernel_->soft_timers().ScheduleSoftEvent(
      interval_ticks, [this](const SoftTimerFacility::FireInfo&) { OnPollEvent(); });
}

void SoftTimerNetPoller::OnPollEvent() {
  pending_event_ = SoftEventId{};
  if (!active_) {
    return;
  }
  size_t found = 0;
  for (Nic* nic : nics_) {
    found += nic->Poll(config_.max_per_poll);
  }
  ++stats_.polls;
  stats_.packets += found;
  uint64_t now_ticks = kernel_->soft_timers().MeasureTime();
  uint64_t elapsed = have_last_poll_tick_ ? now_ticks - last_poll_tick_ : 0;
  last_poll_tick_ = now_ticks;
  have_last_poll_tick_ = true;
  uint64_t next = governor_.OnPoll(found, elapsed);
  ScheduleNext(next);
}

}  // namespace softtimer
