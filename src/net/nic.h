// Network interface model with the two processing disciplines the paper
// compares in Section 5.9:
//
//   kInterrupt - every packet arrival raises a device interrupt (full
//                hardware interrupt overhead + per-packet protocol
//                processing); transmit completions raise a coalesced
//                interrupt per burst.
//   kPolled    - arrivals only land in the rx ring; the host drains the ring
//                from Poll(), typically driven by a soft-timer event
//                (SoftTimerNetPoller). Polled processing is cheaper per
//                packet (better locality at trigger states) and batches
//                amortize further (aggregation quota > 1).

#ifndef SOFTTIMER_SRC_NET_NIC_H_
#define SOFTTIMER_SRC_NET_NIC_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "src/machine/kernel.h"
#include "src/net/link.h"
#include "src/net/packet.h"

namespace softtimer {

class Nic {
 public:
  enum class Mode { kInterrupt, kPolled };

  struct Config {
    size_t rx_ring_size = 256;
    // Coalesced transmit-completion interrupts (interrupt mode only).
    bool tx_complete_interrupts = true;
    // Buffer-release work per completed transmission.
    SimDuration tx_complete_work = SimDuration::Micros(0.8);
    // How long the NIC holds a completion before signalling, letting a burst
    // coalesce into one interrupt ("some interfaces can be programmed to
    // signal the completion of a burst", Section 4.2 footnote).
    SimDuration tx_coalesce_window = SimDuration::Micros(250);
    // Reading the NIC status registers once per poll.
    SimDuration poll_cost = SimDuration::Micros(0.6);
  };

  Nic(Simulator* sim, Kernel* kernel, Link* tx_link, Config config);

  // Attach as the receiver of the peer's link:
  //   peer_link.set_receiver([&nic](const Packet& p) { nic.OnWireRx(p); });
  void OnWireRx(const Packet& p);

  // Upper-layer delivery, invoked once per packet after its protocol
  // processing cost has been charged.
  void set_rx_handler(std::function<void(const Packet&)> h) { rx_handler_ = std::move(h); }

  // Hands a packet to the wire. The caller is responsible for charging the
  // ip-output path cost (Kernel::KernelOp with TriggerSource::kIpOutput).
  void Transmit(Packet p);

  // Hands a burst of packets to the wire as one batched tx operation (the
  // pacing wheel's dispatch path; see TcpSender::set_burst_sender). The
  // packets queue back-to-back on the link and the whole burst is covered
  // by a single coalesced completion arm — "some interfaces can be
  // programmed to signal the completion of a burst" (Section 4.2 footnote),
  // which the burst path exploits by construction instead of relying on the
  // coalesce window to merge per-packet arms.
  void EnqueueBurst(const Packet* packets, size_t count);

  void SetMode(Mode m);
  Mode mode() const { return mode_; }

  // Drains up to `max_packets` from the rx ring, charging poll + batched
  // protocol-processing costs. Returns packets delivered. (Polled mode; in
  // interrupt mode the ring is normally empty.)
  size_t Poll(size_t max_packets);

  size_t rx_ring_depth() const { return rx_ring_.size(); }

  struct Stats {
    uint64_t rx_packets = 0;
    uint64_t rx_interrupts = 0;
    uint64_t rx_dropped = 0;
    uint64_t polled_packets = 0;
    uint64_t tx_packets = 0;
    uint64_t tx_complete_interrupts = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  SimDuration RxServiceCost(const Packet& p) const;
  void RaiseRxInterrupt();
  void ReapTxCompletions();
  void DeliverBatchFromPoll(size_t n);

  Simulator* sim_;
  Kernel* kernel_;
  Link* tx_link_;
  Config config_;
  Mode mode_ = Mode::kInterrupt;
  std::function<void(const Packet&)> rx_handler_;
  std::deque<Packet> rx_ring_;
  // Tx completions accumulated while the wire is still busy (coalescing).
  uint64_t pending_tx_completions_ = 0;
  bool tx_reap_scheduled_ = false;
  Stats stats_;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_NET_NIC_H_
