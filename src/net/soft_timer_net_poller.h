// Soft-timer-based network polling (Section 4.2 / Section 5.9).
//
// A soft-timer event polls every attached NIC; the poll interval is steered
// by a PollGovernor toward the configured aggregation quota (average packets
// found per poll). Following Section 5.9:
//
//   "soft-timer based network polling is turned off (and interrupts are
//    enabled instead) whenever a CPU enters the idle loop. This ensures that
//    packet processing is never delayed unnecessarily."
//
// so the poller flips NICs between kPolled (CPU busy) and kInterrupt (any
// CPU idle).

#ifndef SOFTTIMER_SRC_NET_SOFT_TIMER_NET_POLLER_H_
#define SOFTTIMER_SRC_NET_SOFT_TIMER_NET_POLLER_H_

#include <cstdint>
#include <vector>

#include "src/core/poll_governor.h"
#include "src/machine/kernel.h"
#include "src/net/nic.h"

namespace softtimer {

class SoftTimerNetPoller {
 public:
  struct Config {
    PollGovernor::Config governor;
    // Flip to interrupt mode whenever a CPU idles (paper behaviour). Off
    // turns the system into pure soft-timer polling.
    bool interrupts_when_idle = true;
    // Max packets drained per NIC per poll.
    size_t max_per_poll = 64;
  };

  SoftTimerNetPoller(Kernel* kernel, std::vector<Nic*> nics, Config config);

  // Begins polling (call once, after the NICs are wired up).
  void Start();

  struct Stats {
    uint64_t polls = 0;
    uint64_t packets = 0;
    uint64_t idle_switches = 0;
    uint64_t engages = 0;
    // Governor resets taken because a trigger drought ended.
    uint64_t drought_resets = 0;
  };
  const Stats& stats() const { return stats_; }
  const PollGovernor& governor() const { return governor_; }

 private:
  void SetPolled(bool polled);
  void ScheduleNext(uint64_t interval_ticks);
  void OnPollEvent();

  Kernel* kernel_;
  std::vector<Nic*> nics_;
  Config config_;
  PollGovernor governor_;
  bool active_ = false;    // polling mode engaged (CPU busy)
  bool started_ = false;
  bool in_set_polled_ = false;
  bool desired_polled_ = false;
  bool applied_polled_ = false;
  bool applied_once_ = false;
  uint64_t last_poll_tick_ = 0;
  bool have_last_poll_tick_ = false;
  SoftEventId pending_event_;
  Stats stats_;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_NET_SOFT_TIMER_NET_POLLER_H_
