#include "src/net/multi_queue_poller.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace softtimer {

MultiQueuePoller::MultiQueuePoller(Config config)
    : config_(config), cores_(config.max_cores) {
  assert(config_.max_cores >= 1);
  assert(config_.max_per_poll >= 1);
}

size_t MultiQueuePoller::AddQueue(Queue* queue) {
  assert(queue != nullptr);
  queues_.push_back(std::make_unique<QueueState>(queue, config_.governor));
  // New queues are due at once (deadline 0); the gate starts at 0 too, so no
  // Lower() is needed here.
  return queues_.size() - 1;
}

// SOFTTIMER_HOT
size_t MultiQueuePoller::PollOnce(uint32_t core, uint64_t now_tick) {
  assert(core < cores_.size());
  CoreStats& cs = cores_[core].stats;

  // Fast gate: one relaxed load proves nothing is due (the gate is always
  // <= the true earliest deadline, so a future gate is conclusive).
  uint64_t observed_gate = gate_.Load();
  if (observed_gate > now_tick) {
    ++cs.gate_skips;
    return 0;
  }

  // Claim conflicts send us back to rescan - another core is making
  // progress, so the bound only matters as a safety net against livelock
  // between perfectly synchronized scanners.
  size_t attempts = queues_.size() + 1;
  while (attempts-- > 0) {
    // Deadline-ordered scan: pick the most-overdue unclaimed due queue, and
    // track the min over EVERY queue's peeked deadline (claimed included -
    // their stale value undershoots what the owner will publish, which is
    // exactly what makes the gate advance below safe; see queue_claim.h).
    size_t best = kNone;
    uint64_t best_deadline = std::numeric_limits<uint64_t>::max();
    uint64_t min_seen = std::numeric_limits<uint64_t>::max();
    for (size_t i = 0; i < queues_.size(); ++i) {
      const QueueState& qs = *queues_[i];
      uint64_t d = qs.claim.deadline_peek();
      min_seen = std::min(min_seen, d);
      if (d <= now_tick && d < best_deadline && !qs.claim.claimed_peek()) {
        best = i;
        best_deadline = d;
      }
    }
    if (best == kNone) {
      ++cs.scan_misses;
      gate_.TryAdvance(observed_gate, min_seen);
      return 0;
    }
    QueueState& qs = *queues_[best];
    if (!qs.claim.TryClaim(core)) {
      ++cs.claim_conflicts;
      continue;
    }
    // Claim held: the exact deadline may have moved past `now` if another
    // core polled this queue between our peek and our CAS. Hand it back
    // untouched rather than polling early and distorting its governor.
    uint64_t exact_deadline = qs.claim.deadline_owned();
    if (exact_deadline > now_tick) {
      ++cs.stale_claims;
      qs.claim.Release(exact_deadline);
      continue;
    }

    size_t found = qs.queue->Drain(config_.max_per_poll, now_tick);
    uint64_t elapsed = qs.have_last_poll_tick
                           ? now_tick - qs.last_poll_tick
                           : qs.governor.current_interval_ticks();
    qs.last_poll_tick = now_tick;
    qs.have_last_poll_tick = true;
    uint64_t next_interval = qs.governor.OnPoll(found, elapsed);
    ++qs.stats.polls;
    qs.stats.packets += found;
    qs.stats.current_interval_ticks = next_interval;
    qs.stats.last_owner = core + 1;
    // ordering: published best-effort for achieved_quota() readers; the
    // release store below is what publishes it to the next claim holder.
    qs.quota_milli.store(
        static_cast<uint32_t>(qs.governor.found_ewma() * 1000.0),
        std::memory_order_relaxed);

    uint64_t next_due = now_tick + next_interval;
    qs.claim.Release(next_due);
    gate_.Lower(next_due);

    ++cs.polls;
    cs.packets += found;
    // ordering: monotonic throughput counter; see total_packets().
    packets_total_.fetch_add(found, std::memory_order_relaxed);
    return found;
  }
  return 0;
}

double MultiQueuePoller::achieved_quota() const {
  if (queues_.empty()) {
    return 0.0;
  }
  uint64_t sum_milli = 0;
  for (const auto& qs : queues_) {
    // ordering: best-effort snapshot; see PollOnce publish.
    sum_milli += qs->quota_milli.load(std::memory_order_relaxed);
  }
  return static_cast<double>(sum_milli) /
         (1000.0 * static_cast<double>(queues_.size()));
}

MultiQueuePoller::QueueStats MultiQueuePoller::queue_stats(size_t queue) const {
  assert(queue < queues_.size());
  return queues_[queue]->stats;
}

MultiQueuePoller::CoreStats MultiQueuePoller::core_stats(uint32_t core) const {
  assert(core < cores_.size());
  return cores_[core].stats;
}

bool MultiQueuePoller::ClaimQueueForTest(size_t queue, uint32_t core) {
  assert(queue < queues_.size());
  return queues_[queue]->claim.TryClaim(core);
}

void MultiQueuePoller::ReleaseQueueForTest(size_t queue,
                                           uint64_t next_due_tick) {
  assert(queue < queues_.size());
  queues_[queue]->claim.Release(next_due_tick);
  gate_.Lower(next_due_tick);
}

}  // namespace softtimer
