// Duplex wide-area path: the paper's laboratory "WAN emulator" (Section 5.8),
// a FreeBSD router that delays each forwarded packet to emulate a given
// one-way delay and bottleneck bandwidth. Both directions get the delay; the
// forward (data) direction gets the bottleneck bandwidth; the reverse (ACK)
// direction is assumed uncongested at the same nominal rate.

#ifndef SOFTTIMER_SRC_NET_WAN_PATH_H_
#define SOFTTIMER_SRC_NET_WAN_PATH_H_

#include "src/net/link.h"

namespace softtimer {

class WanPath {
 public:
  struct Config {
    double bottleneck_bps = 50e6;
    SimDuration one_way_delay = SimDuration::Millis(50);
    size_t queue_limit_packets = 4096;
  };

  WanPath(Simulator* sim, Config config)
      : forward_(sim, MakeLinkConfig(config)), reverse_(sim, MakeLinkConfig(config)) {}

  // Server -> client (data) direction.
  Link& forward() { return forward_; }
  // Client -> server (request/ACK) direction.
  Link& reverse() { return reverse_; }

 private:
  static Link::Config MakeLinkConfig(const Config& c) {
    Link::Config lc;
    lc.bandwidth_bps = c.bottleneck_bps;
    lc.propagation_delay = c.one_way_delay;
    lc.queue_limit_packets = c.queue_limit_packets;
    return lc;
  }

  Link forward_;
  Link reverse_;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_NET_WAN_PATH_H_
