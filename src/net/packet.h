// Simulated network packet.
//
// One flat struct serves every layer of the simulation: link-level fields
// (size), demux fields (flow id), and the TCP segment fields used by the
// src/tcp state machines. Non-TCP users leave the segment fields zero. This
// is a deliberate simulation simplification - a real stack would nest
// headers - kept flat so packets stay trivially copyable and allocation-free.

#ifndef SOFTTIMER_SRC_NET_PACKET_H_
#define SOFTTIMER_SRC_NET_PACKET_H_

#include <cstdint>

#include "src/sim/time.h"

namespace softtimer {

// 1500-byte Ethernet MTU minus 40 bytes of TCP/IP headers guessing classic
// timestamps off; the paper's WAN experiments use 1448-byte packets.
inline constexpr uint32_t kEthernetMtu = 1500;
inline constexpr uint32_t kTcpIpHeaderBytes = 52;
inline constexpr uint32_t kDefaultMss = 1448;
inline constexpr uint32_t kAckPacketBytes = 40;

struct Packet {
  enum class Kind : uint8_t {
    kData = 0,
    kAck,
    kSyn,
    kSynAck,
    kFin,
    kRequest,  // an application request (HTTP GET)
  };

  uint64_t id = 0;
  uint64_t flow_id = 0;
  Kind kind = Kind::kData;
  uint32_t size_bytes = 0;  // wire size including headers

  // --- TCP segment fields (bytes) ---
  uint64_t seq = 0;      // first payload byte
  uint32_t payload = 0;  // payload length
  uint64_t ack_seq = 0;  // cumulative ACK (valid when kind == kAck)
  bool fin = false;      // sender has no more data after this segment

  // Set by the sender for RTT/latency accounting.
  SimTime sent_at;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_NET_PACKET_H_
