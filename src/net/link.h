// Point-to-point simplex link: serialization at a configured bandwidth, a
// fixed propagation delay, and a drop-tail transmit queue.
//
// Two of these back a duplex Ethernet segment; a slower one with a large
// delay is the paper's "WAN emulator" bottleneck (Section 5.8).

#ifndef SOFTTIMER_SRC_NET_LINK_H_
#define SOFTTIMER_SRC_NET_LINK_H_

#include <cstdint>
#include <functional>

#include "src/net/packet.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace softtimer {

class Link {
 public:
  struct Config {
    double bandwidth_bps = 100e6;
    SimDuration propagation_delay = SimDuration::Micros(1);
    // Transmit queue bound, in packets (drop-tail). Counts packets that have
    // not yet finished serializing.
    size_t queue_limit_packets = 1024;
  };

  Link(Simulator* sim, Config config);

  // Destination callback, invoked at packet arrival time.
  void set_receiver(std::function<void(const Packet&)> rx) { receiver_ = std::move(rx); }

  // Fault-injection verdict for a packet entering the link. The packet still
  // occupies the transmitter either way (loss happens on the wire, after
  // serialization); kDuplicate delivers two copies to the receiver.
  enum class FaultAction { kNone, kDrop, kDuplicate };
  void set_fault_hook(std::function<FaultAction(const Packet&)> hook) {
    fault_hook_ = std::move(hook);
  }

  // Queues `p` for transmission. Returns false (and drops) when the queue is
  // full.
  bool Send(Packet p);

  // Time to serialize a packet of `bytes` onto this link.
  SimDuration SerializationDelay(uint32_t bytes) const;

  // Packets currently queued or serializing.
  size_t queue_depth() const { return in_flight_tx_; }

  struct Stats {
    uint64_t sent = 0;
    uint64_t dropped = 0;
    uint64_t bytes_sent = 0;
    // Packets lost / duplicated by an installed fault hook.
    uint64_t fault_dropped = 0;
    uint64_t fault_duplicated = 0;
  };
  const Stats& stats() const { return stats_; }

  const Config& config() const { return config_; }

 private:
  Simulator* sim_;
  Config config_;
  std::function<void(const Packet&)> receiver_;
  std::function<FaultAction(const Packet&)> fault_hook_;
  // Time the transmitter becomes free.
  SimTime tx_free_at_;
  size_t in_flight_tx_ = 0;
  Stats stats_;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_NET_LINK_H_
