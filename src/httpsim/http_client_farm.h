// Closed-loop HTTP client farm: the three (or four) client machines of the
// paper's testbed, each saturating the server through its own Fast Ethernet
// link. Every virtual client runs request-after-request with no think time;
// the number of simultaneous clients is "set such that the server machine
// [is] saturated" (Section 5.1).
//
// The farm implements the client half of the scripted LAN exchange: SYN ->
// (SYN-ACK) -> request -> data packets (ACK every other segment) -> FIN on
// response end (or further requests on a persistent connection).

#ifndef SOFTTIMER_SRC_HTTPSIM_HTTP_CLIENT_FARM_H_
#define SOFTTIMER_SRC_HTTPSIM_HTTP_CLIENT_FARM_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/httpsim/http_types.h"
#include "src/net/link.h"
#include "src/net/packet.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/stats/summary_stats.h"

namespace softtimer {

class HttpClientFarm {
 public:
  struct Config {
    int concurrent_clients = 8;
    // Open-loop mode: ignore responses for pacing and fire new connections
    // at this aggregate rate (0 = closed loop). Used by the receiver-
    // livelock experiment, where offered load must exceed capacity.
    double open_loop_conn_per_sec = 0;
    HttpWorkload workload;
    // Upper 32 bits of this farm's flow ids; must be unique per farm.
    uint32_t farm_id = 0;
    // Client-side processing time before reacting to a received packet.
    SimDuration reaction_delay = SimDuration::Micros(30);
    double reaction_jitter_sigma = 0.5;
    // Delay before a client opens its next connection; spread widely to
    // break up closed-loop convoys (real client machines desynchronize via
    // scheduling and network noise).
    SimDuration restart_delay_median = SimDuration::Micros(250);
    double restart_jitter_sigma = 1.1;
    int ack_every = 2;
    uint64_t rng_seed = 3;
  };

  // `uplink` carries client -> server packets. Wire the reverse link with
  //   downlink.set_receiver([&farm](const Packet& p) { farm.OnPacket(p); });
  HttpClientFarm(Simulator* sim, Link* uplink, Config config);

  // Launches all virtual clients.
  void Start();

  // Ingress from the server.
  void OnPacket(const Packet& p);

  struct Stats {
    uint64_t connections_completed = 0;
    uint64_t responses_completed = 0;
    uint64_t acks_sent = 0;
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() {
    stats_ = Stats{};
    response_time_us_.Reset();
  }

  // Request -> last-response-byte latency, microseconds.
  const SummaryStats& response_time_us() const { return response_time_us_; }

 private:
  struct VirtualClient {
    int index = 0;
    uint64_t flow = 0;
    uint32_t serial = 0;
    uint32_t requests_done = 0;
    int unacked_segments = 0;
    SimTime request_sent_at;
  };

  uint64_t MakeFlow(const VirtualClient& vc) const;
  void ScheduleOpenLoopArrival();
  void StartConnection(VirtualClient* vc);
  void SendToServer(VirtualClient* vc, Packet::Kind kind, uint32_t size_bytes);
  void SendRequest(VirtualClient* vc);
  void FinishConnection(VirtualClient* vc);
  SimDuration Reaction();

  Simulator* sim_;
  Link* uplink_;
  Config config_;
  Rng rng_;
  std::vector<VirtualClient> clients_;
  int open_loop_next_ = 0;
  std::unordered_map<uint64_t, int> flow_to_client_;
  Stats stats_;
  SummaryStats response_time_us_;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_HTTPSIM_HTTP_CLIENT_FARM_H_
