#include "src/httpsim/http_testbed.h"

#include <utility>

namespace softtimer {

HttpTestbed::HttpTestbed(Config config) : config_(std::move(config)) {
  Kernel::Config kc;
  kc.profile = config_.profile;
  kc.interrupt_clock_hz = config_.interrupt_clock_hz;
  kc.idle_behavior = config_.idle_behavior;
  kc.rng_seed = config_.rng_seed;
  kernel_ = std::make_unique<Kernel>(&sim_, kc);

  config_.server.workload = config_.workload;
  config_.server.rng_seed = config_.rng_seed ^ 0x5e5e5e5eULL;
  server_ = std::make_unique<HttpServerModel>(kernel_.get(), config_.server);

  Link::Config lan;
  lan.bandwidth_bps = config_.lan_bandwidth_bps;
  lan.propagation_delay = config_.lan_delay;

  for (int i = 0; i < config_.num_links; ++i) {
    uplinks_.push_back(std::make_unique<Link>(&sim_, lan));
    downlinks_.push_back(std::make_unique<Link>(&sim_, lan));
    nics_.push_back(std::make_unique<Nic>(&sim_, kernel_.get(), downlinks_.back().get(),
                                          config_.nic));
    Nic* nic = nics_.back().get();
    int idx = server_->AttachNic(nic);
    nic->set_rx_handler([this, idx](const Packet& p) { server_->OnPacket(idx, p); });
    uplinks_.back()->set_receiver([nic](const Packet& p) { nic->OnWireRx(p); });

    HttpClientFarm::Config fc;
    fc.concurrent_clients = config_.clients_per_link;
    fc.open_loop_conn_per_sec = config_.open_loop_conn_per_sec_per_link;
    fc.workload = config_.workload;
    fc.farm_id = static_cast<uint32_t>(i + 1);
    fc.rng_seed = config_.rng_seed + static_cast<uint64_t>(i) * 77'777 + 13;
    farms_.push_back(std::make_unique<HttpClientFarm>(&sim_, uplinks_.back().get(), fc));
    HttpClientFarm* farm = farms_.back().get();
    downlinks_.back()->set_receiver([farm](const Packet& p) { farm->OnPacket(p); });
  }

  if (config_.polling) {
    std::vector<Nic*> nic_ptrs;
    for (auto& n : nics_) {
      nic_ptrs.push_back(n.get());
    }
    poller_ = std::make_unique<SoftTimerNetPoller>(kernel_.get(), std::move(nic_ptrs),
                                                   *config_.polling);
  }
}

void HttpTestbed::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  for (auto& farm : farms_) {
    farm->Start();
  }
  if (poller_) {
    poller_->Start();
  }
}

HttpTestbed::RunResult HttpTestbed::Measure(SimDuration warmup, SimDuration window) {
  Start();
  sim_.RunFor(warmup);

  server_->ResetStats();
  kernel_->ResetTriggerStats();
  for (auto& farm : farms_) {
    farm->ResetStats();
  }
  SimDuration stolen_before = kernel_->cpu(0).stolen_time();
  SimDuration busy_before = kernel_->cpu(0).busy_time();
  uint64_t rx_before = 0;
  for (auto& n : nics_) {
    rx_before += n->stats().rx_packets;
  }

  sim_.RunFor(window);

  RunResult r;
  double secs = window.ToSeconds();
  r.conn_per_sec = static_cast<double>(server_->stats().connections_completed) / secs;
  r.req_per_sec = static_cast<double>(server_->stats().responses_completed) / secs;
  r.cpu_stolen_fraction =
      (kernel_->cpu(0).stolen_time() - stolen_before).ToSeconds() / secs;
  SummaryStats resp;
  for (auto& farm : farms_) {
    resp.Merge(farm->response_time_us());
  }
  r.mean_response_us = resp.mean();
  r.triggers = kernel_->stats().triggers;
  r.paced_interval_mean_us = server_->paced_intervals().mean();
  r.paced_interval_stddev_us = server_->paced_intervals().stddev();
  uint64_t rx_after = 0;
  for (auto& n : nics_) {
    rx_after += n->stats().rx_packets;
  }
  r.rx_packets = rx_after - rx_before;
  if (r.rx_packets > 0) {
    r.busy_cpu_us_per_packet =
        (kernel_->cpu(0).busy_time() - busy_before).ToSeconds() * 1e6 /
        static_cast<double>(r.rx_packets);
  }
  return r;
}

}  // namespace softtimer
