// Shared types for the HTTP server/client simulation.
//
// The LAN web-server experiments (Sections 5.1-5.7, 5.9) use this scripted
// HTTP-over-TCP exchange rather than the full src/tcp state machines: on a
// LAN, FreeBSD's TCP does not slow-start (Section 5.6), responses leave as
// back-to-back bursts, and what matters to the paper's measurements is the
// *kernel-entry structure* of serving a request (syscalls, ip-output,
// network interrupts) and its CPU cost. The WAN experiments (Section 5.8)
// use the real TcpSender/TcpReceiver.

#ifndef SOFTTIMER_SRC_HTTPSIM_HTTP_TYPES_H_
#define SOFTTIMER_SRC_HTTPSIM_HTTP_TYPES_H_

#include <cstdint>

namespace softtimer {

struct HttpWorkload {
  // Response body size; the paper's experiments serve a 6 KB file.
  uint32_t file_bytes = 6144;
  // HTTP response header bytes prepended to the body.
  uint32_t response_header_bytes = 250;
  // Request packet wire size.
  uint32_t request_bytes = 300;
  // Persistent-connection HTTP (Section 5.9's P-HTTP rows): the connection
  // is set up once and carries `requests_per_connection` requests.
  bool persistent = false;
  uint32_t requests_per_connection = 10;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_HTTPSIM_HTTP_TYPES_H_
