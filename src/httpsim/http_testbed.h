// One-stop wiring for the LAN web-server experiments: a server machine
// (Kernel + NICs) fed by client farms over per-NIC duplex Fast Ethernet
// links, exactly the testbed topology of Sections 5.1-5.7 (three client
// machines) and 5.9 (four).
//
//   farm[i] --uplink[i]--> nic[i] --> HttpServerModel --> nic[i] --downlink[i]--> farm[i]
//
// Measure() runs a warmup, clears counters, runs a measurement window and
// reports throughput plus CPU accounting - the quantity every table in the
// paper's Sections 5.1-5.7/5.9 is built from.

#ifndef SOFTTIMER_SRC_HTTPSIM_HTTP_TESTBED_H_
#define SOFTTIMER_SRC_HTTPSIM_HTTP_TESTBED_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/httpsim/http_client_farm.h"
#include "src/httpsim/http_server_model.h"
#include "src/machine/kernel.h"
#include "src/net/link.h"
#include "src/net/nic.h"
#include "src/net/soft_timer_net_poller.h"
#include "src/sim/simulator.h"

namespace softtimer {

class HttpTestbed {
 public:
  struct Config {
    MachineProfile profile = MachineProfile::PentiumII300();
    HttpServerModel::Config server;
    HttpWorkload workload;
    int num_links = 3;
    int clients_per_link = 8;
    // Open-loop offered load per link, connections/s (0 = closed loop).
    double open_loop_conn_per_sec_per_link = 0;
    // Fast Ethernet segments.
    double lan_bandwidth_bps = 100e6;
    SimDuration lan_delay = SimDuration::Micros(5);
    Nic::Config nic;
    uint64_t interrupt_clock_hz = 1'000;
    Kernel::IdleBehavior idle_behavior = Kernel::IdleBehavior::kHaltPolicy;
    // When set, NICs run under soft-timer polling with this governor config
    // (Table 8); otherwise they stay in interrupt mode.
    std::optional<SoftTimerNetPoller::Config> polling;
    uint64_t rng_seed = 1234;
  };

  explicit HttpTestbed(Config config);

  // Launches the client farms (and the poller, if configured).
  void Start();

  struct RunResult {
    double conn_per_sec = 0;
    double req_per_sec = 0;
    double cpu_stolen_fraction = 0;  // stolen CPU time / window
    double mean_response_us = 0;
    uint64_t triggers = 0;
    double paced_interval_mean_us = 0;
    double paced_interval_stddev_us = 0;
    // NIC rx packets delivered to the server during the window (all links).
    uint64_t rx_packets = 0;
    // Busy CPU time (work + interrupt steals) per delivered rx packet, in
    // microseconds: the CPU-efficiency metric shared with
    // bench_poll_frontier's busy-ticks/packet frontier axis.
    double busy_cpu_us_per_packet = 0;
  };
  // Runs `warmup`, resets all counters, runs `window`, and reports.
  RunResult Measure(SimDuration warmup, SimDuration window);

  Simulator& sim() { return sim_; }
  Kernel& kernel() { return *kernel_; }
  HttpServerModel& server() { return *server_; }
  Nic& nic(int i) { return *nics_[static_cast<size_t>(i)]; }
  HttpClientFarm& farm(int i) { return *farms_[static_cast<size_t>(i)]; }
  SoftTimerNetPoller* poller() { return poller_ ? poller_.get() : nullptr; }
  int num_links() const { return config_.num_links; }

 private:
  Config config_;
  Simulator sim_;
  std::unique_ptr<Kernel> kernel_;
  std::vector<std::unique_ptr<Link>> uplinks_;
  std::vector<std::unique_ptr<Link>> downlinks_;
  std::vector<std::unique_ptr<Nic>> nics_;
  std::unique_ptr<HttpServerModel> server_;
  std::vector<std::unique_ptr<HttpClientFarm>> farms_;
  std::unique_ptr<SoftTimerNetPoller> poller_;
  bool started_ = false;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_HTTPSIM_HTTP_TESTBED_H_
