#include "src/httpsim/http_client_farm.h"

#include <cassert>
#include <utility>

namespace softtimer {

HttpClientFarm::HttpClientFarm(Simulator* sim, Link* uplink, Config config)
    : sim_(sim), uplink_(uplink), config_(config), rng_(config.rng_seed) {
  assert(config_.concurrent_clients > 0);
  clients_.resize(static_cast<size_t>(config_.concurrent_clients));
  for (int i = 0; i < config_.concurrent_clients; ++i) {
    clients_[static_cast<size_t>(i)].index = i;
  }
}

SimDuration HttpClientFarm::Reaction() {
  if (config_.reaction_jitter_sigma <= 0) {
    return config_.reaction_delay;
  }
  return rng_.LogNormalDuration(config_.reaction_delay, config_.reaction_jitter_sigma);
}

uint64_t HttpClientFarm::MakeFlow(const VirtualClient& vc) const {
  return (static_cast<uint64_t>(config_.farm_id) << 48) |
         (static_cast<uint64_t>(vc.index) << 32) | vc.serial;
}

void HttpClientFarm::Start() {
  if (config_.open_loop_conn_per_sec > 0) {
    ScheduleOpenLoopArrival();
    return;
  }
  for (auto& vc : clients_) {
    // Stagger connection starts slightly so SYNs do not collide on one tick.
    sim_->ScheduleAfter(Reaction(), [this, idx = vc.index] {
      StartConnection(&clients_[static_cast<size_t>(idx)]);
    });
  }
}

void HttpClientFarm::ScheduleOpenLoopArrival() {
  SimDuration gap = rng_.ExpDuration(
      SimDuration::Seconds(1.0 / config_.open_loop_conn_per_sec));
  sim_->ScheduleAfter(gap, [this] {
    // Round-robin over the client slots; an open-loop client abandons its
    // previous connection when its turn comes around again.
    VirtualClient* vc = &clients_[static_cast<size_t>(open_loop_next_)];
    open_loop_next_ = (open_loop_next_ + 1) % config_.concurrent_clients;
    flow_to_client_.erase(vc->flow);
    StartConnection(vc);
    ScheduleOpenLoopArrival();
  });
}

void HttpClientFarm::StartConnection(VirtualClient* vc) {
  ++vc->serial;
  vc->requests_done = 0;
  vc->unacked_segments = 0;
  vc->flow = MakeFlow(*vc);
  flow_to_client_[vc->flow] = vc->index;
  SendToServer(vc, Packet::Kind::kSyn, kAckPacketBytes);
}

void HttpClientFarm::SendToServer(VirtualClient* vc, Packet::Kind kind, uint32_t size_bytes) {
  Packet p;
  p.flow_id = vc->flow;
  p.kind = kind;
  p.size_bytes = size_bytes;
  p.sent_at = sim_->now();
  uplink_->Send(p);
}

void HttpClientFarm::SendRequest(VirtualClient* vc) {
  vc->request_sent_at = sim_->now();
  vc->unacked_segments = 0;
  SendToServer(vc, Packet::Kind::kRequest, config_.workload.request_bytes);
}

void HttpClientFarm::FinishConnection(VirtualClient* vc) {
  ++stats_.connections_completed;
  flow_to_client_.erase(vc->flow);
  SendToServer(vc, Packet::Kind::kFin, kAckPacketBytes);
  if (config_.open_loop_conn_per_sec > 0) {
    return;  // arrivals are driven by the open-loop process
  }
  // Closed loop: start the next connection after client-side processing,
  // with a wide jitter that desynchronizes the client population.
  SimDuration restart =
      rng_.LogNormalDuration(config_.restart_delay_median, config_.restart_jitter_sigma);
  sim_->ScheduleAfter(restart, [this, idx = vc->index] {
    StartConnection(&clients_[static_cast<size_t>(idx)]);
  });
}

void HttpClientFarm::OnPacket(const Packet& p) {
  auto it = flow_to_client_.find(p.flow_id);
  if (it == flow_to_client_.end()) {
    return;  // packet for a finished connection
  }
  VirtualClient* vc = &clients_[static_cast<size_t>(it->second)];

  switch (p.kind) {
    case Packet::Kind::kSynAck: {
      sim_->ScheduleAfter(Reaction(), [this, flow = vc->flow] {
        auto f = flow_to_client_.find(flow);
        if (f != flow_to_client_.end()) {
          SendRequest(&clients_[static_cast<size_t>(f->second)]);
        }
      });
      return;
    }
    case Packet::Kind::kData: {
      ++vc->unacked_segments;
      bool end_of_response = p.fin;
      if (vc->unacked_segments >= config_.ack_every ||
          (end_of_response && !config_.workload.persistent)) {
        // The final segment of a non-persistent response is covered by the
        // FIN below; mid-stream segments get a cumulative ACK.
        if (!end_of_response) {
          vc->unacked_segments = 0;
          ++stats_.acks_sent;
          SendToServer(vc, Packet::Kind::kAck, kAckPacketBytes);
        }
      }
      if (end_of_response) {
        ++vc->requests_done;
        ++stats_.responses_completed;
        response_time_us_.Add((sim_->now() - vc->request_sent_at).ToMicros());
        if (config_.workload.persistent &&
            vc->requests_done < config_.workload.requests_per_connection) {
          // ACK the response tail, then issue the next request.
          vc->unacked_segments = 0;
          ++stats_.acks_sent;
          SendToServer(vc, Packet::Kind::kAck, kAckPacketBytes);
          sim_->ScheduleAfter(Reaction(), [this, flow = vc->flow] {
            auto f = flow_to_client_.find(flow);
            if (f != flow_to_client_.end()) {
              SendRequest(&clients_[static_cast<size_t>(f->second)]);
            }
          });
        } else {
          FinishConnection(vc);
        }
      }
      return;
    }
    case Packet::Kind::kAck:
      return;  // server's ACK of our request/FIN
    default:
      return;
  }
}

}  // namespace softtimer
