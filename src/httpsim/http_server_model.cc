#include "src/httpsim/http_server_model.h"

#include <cassert>
#include <utility>

namespace softtimer {

namespace {

constexpr uint32_t kSynAckBytes = 58;

// Packet actions attached to script ops.
constexpr int kActionNone = 0;
constexpr int kActionTxSynAck = 1;
constexpr int kActionTxServerAck = 2;
constexpr int kActionTxDataPacket = 3;
constexpr int kActionEnqueuePacedResponse = 4;
constexpr int kActionConnectionDone = 5;

SimDuration Us(double v) { return SimDuration::Micros(v); }

}  // namespace

HttpServerModel::HttpServerModel(Kernel* kernel, Config config)
    : kernel_(kernel), config_(config), rng_(config.rng_seed) {
  // Resolve per-server-kind calibrated defaults (see DESIGN.md section 5.7
  // and EXPERIMENTS.md for the calibration targets).
  const bool apache = config_.kind == ServerKind::kApache;
  if (config_.op_jitter_sigma < 0) {
    config_.op_jitter_sigma = apache ? 0.80 : 0.70;
  }
  if (config_.op_cost_cap <= SimDuration::Zero()) {
    config_.op_cost_cap = SimDuration::Micros(apache ? 240 : 160);
  }
  if (config_.op_scale <= 0) {
    config_.op_scale = apache ? 1.11 : 1.25;
  }
  if (config_.paced_tx_extra_soft < SimDuration::Zero()) {
    config_.paced_tx_extra_soft = SimDuration::Micros(apache ? 2.5 : 5.0);
  }
  if (config_.paced_tx_extra_hard < SimDuration::Zero()) {
    config_.paced_tx_extra_hard = SimDuration::Micros(apache ? 13.0 : 20.0);
  }
  if (config_.tx == TxDiscipline::kSoftPaced) {
    StartSoftPacer();
  } else if (config_.tx == TxDiscipline::kHardPaced) {
    StartHardPacer();
  }
}

int HttpServerModel::AttachNic(Nic* nic) {
  nics_.push_back(nic);
  return static_cast<int>(nics_.size()) - 1;
}

SimDuration HttpServerModel::PerPacketOutputCost() const {
  // Must match the kImmediate per-data-packet op in AppendRequestOps so the
  // pacing disciplines move the output work rather than changing it.
  return Us(config_.kind == ServerKind::kApache ? 26 : 11);
}

SimDuration HttpServerModel::PacedHandoffCost() const {
  // In paced mode, segmentation/checksum/copy happen when the burst is
  // queued (tcp_output at writev time); only the driver handoff remains to
  // be paid per packet at the pacing event.
  return Us(config_.kind == ServerKind::kApache ? 8 : 6);
}

SimDuration HttpServerModel::JitteredCost(SimDuration median) {
  SimDuration scaled = median * config_.op_scale;
  if (config_.op_jitter_sigma <= 0) {
    return scaled;
  }
  SimDuration d = rng_.LogNormalDuration(scaled, config_.op_jitter_sigma);
  if (d > config_.op_cost_cap) {
    d = config_.op_cost_cap;
  }
  return d;
}

// --- Scripts ---------------------------------------------------------------
//
// Costs are medians in microseconds at PII-300 reference speed; per-op
// log-normal jitter (sigma ~1) supplies the right-skewed interval shape of
// Figure 4. Counts per connection are chosen to land near the paper's
// Table 2 source mix for the ST-Apache workload (syscalls 47.7%, ip-output
// 28%, ip-intr 16.4%, tcpip-others 5.4%, traps 2.5%).

void HttpServerModel::AppendConnSetupOps(Connection* c) {
  const bool apache = config_.kind == ServerKind::kApache;
  // Connection establishment is the expensive part of serving small static
  // files (visible in Table 8: P-HTTP throughput is 1.6x / 3.2x the HTTP
  // throughput for Apache / Flash). The SYN arrived via an ip-intr; the
  // kernel completes the handshake and the server accepts.
  c->ops.push_back({TriggerSource::kTcpIpOthers, true, Us(20), kActionNone});  // SYN: PCB alloc
  c->ops.push_back({TriggerSource::kIpOutput, true, Us(14), kActionTxSynAck});
  if (apache) {
    c->ops.push_back({TriggerSource::kSyscall, true, Us(24), kActionNone});  // select wakeup
    c->ops.push_back({TriggerSource::kSyscall, true, Us(46), kActionNone});  // accept
    // Worker process gets scheduled in.
    c->ops.push_back({TriggerSource::kSyscall, false, kernel_->profile().context_switch_cost, kActionNone});
    c->ops.push_back({TriggerSource::kSyscall, true, Us(26), kActionNone});  // fcntl/sockopt
    c->ops.push_back({TriggerSource::kSyscall, true, Us(24), kActionNone});  // getsockname
    c->ops.push_back({TriggerSource::kSyscall, true, Us(28), kActionNone});  // scoreboard/sched
  } else {
    c->ops.push_back({TriggerSource::kSyscall, true, Us(44), kActionNone});  // accept
    c->ops.push_back({TriggerSource::kSyscall, true, Us(36), kActionNone});  // fd + sockopt setup
    c->ops.push_back({TriggerSource::kSyscall, true, Us(34), kActionNone});  // event registration
    c->ops.push_back({TriggerSource::kTcpIpOthers, true, Us(24), kActionNone});  // 3WHS completion
  }
}

void HttpServerModel::AppendRequestOps(Connection* c) {
  const bool apache = config_.kind == ServerKind::kApache;
  const uint32_t total_bytes =
      config_.workload.file_bytes + config_.workload.response_header_bytes;
  const uint32_t data_packets = (total_bytes + kDefaultMss - 1) / kDefaultMss;
  c->response_packets_left = data_packets;

  if (apache) {
    c->ops.push_back({TriggerSource::kSyscall, true, Us(14), kActionNone});  // sigprocmask
    c->ops.push_back({TriggerSource::kSyscall, true, Us(16), kActionNone});  // alarm (timeout)
  }
  c->ops.push_back({TriggerSource::kSyscall, true, Us(apache ? 34 : 15), kActionNone});  // read request
  c->ops.push_back({TriggerSource::kIpOutput, true, Us(8), kActionTxServerAck});  // ack the request
  if (apache) {
    c->ops.push_back({TriggerSource::kSyscall, true, Us(22), kActionNone});  // stat
    c->ops.push_back({TriggerSource::kSyscall, true, Us(24), kActionNone});  // open
    if (rng_.Bernoulli(config_.trap_probability)) {
      c->ops.push_back({TriggerSource::kTrap, true, Us(12), kActionNone});  // page fault
    }
    c->ops.push_back({TriggerSource::kSyscall, true, Us(30), kActionNone});  // read file
    c->ops.push_back({TriggerSource::kSyscall, true, Us(20), kActionNone});  // mmap/copy
    c->ops.push_back({TriggerSource::kSyscall, true, Us(24), kActionNone});  // header build/log prep
  } else {
    // Flash hits its mapped-file and stat caches.
    c->ops.push_back({TriggerSource::kSyscall, true, Us(10), kActionNone});  // cache-hit stat
    if (rng_.Bernoulli(config_.trap_probability * 0.5)) {
      c->ops.push_back({TriggerSource::kTrap, true, Us(10), kActionNone});
    }
  }
  c->ops.push_back({TriggerSource::kSyscall, true, Us(apache ? 44 : 18), kActionNone});  // writev

  if (config_.tx == TxDiscipline::kImmediate) {
    for (uint32_t i = 0; i < data_packets; ++i) {
      c->ops.push_back({TriggerSource::kIpOutput, true, Us(apache ? 26 : 11), kActionTxDataPacket});
    }
  } else {
    // Paced output: tcp_output does the segmentation work up front and hands
    // the burst to the pacing queue; only the per-packet driver handoff is
    // paid later, from the pacing handler.
    SimDuration enqueue_cost =
        Us(12) + (PerPacketOutputCost() - PacedHandoffCost()) * static_cast<int64_t>(data_packets);
    c->ops.push_back({TriggerSource::kTcpIpOthers, true, enqueue_cost, kActionEnqueuePacedResponse});
  }

  // Pure-ACK traffic back to the client (delayed ACK of the request body,
  // window update as the socket buffer drains).
  c->ops.push_back({TriggerSource::kIpOutput, true, Us(6), kActionTxServerAck});
  c->ops.push_back({TriggerSource::kIpOutput, true, Us(6), kActionTxServerAck});
  c->ops.push_back({TriggerSource::kTcpIpOthers, true, Us(12), kActionNone});  // TCP timers/delack
  if (apache) {
    c->ops.push_back({TriggerSource::kSyscall, true, Us(14), kActionNone});  // time() for log
    c->ops.push_back({TriggerSource::kSyscall, true, Us(32), kActionNone});  // write access log
    c->ops.push_back({TriggerSource::kSyscall, true, Us(18), kActionNone});   // close file
    c->ops.push_back({TriggerSource::kSyscall, true, Us(14), kActionNone});  // sigprocmask restore
    c->ops.push_back({TriggerSource::kSyscall, false, kernel_->profile().context_switch_cost, kActionNone});
    c->ops.push_back({TriggerSource::kSyscall, true, Us(22), kActionNone});  // back in select
  } else {
    c->ops.push_back({TriggerSource::kSyscall, true, Us(12), kActionNone});  // event loop turn
  }
}

void HttpServerModel::AppendTeardownOps(Connection* c) {
  const bool apache = config_.kind == ServerKind::kApache;
  c->ops.push_back({TriggerSource::kSyscall, true, Us(apache ? 30 : 34), kActionNone});  // close socket
  c->ops.push_back({TriggerSource::kIpOutput, true, Us(8), kActionTxServerAck});  // ack client FIN
  c->ops.push_back({TriggerSource::kTcpIpOthers, true, Us(apache ? 24 : 40), kActionNone});  // PCB teardown + timers
  if (apache) {
    c->ops.push_back({TriggerSource::kSyscall, true, Us(13), kActionNone});  // waitpid/bookkeeping
    c->ops.push_back({TriggerSource::kSyscall, false, kernel_->profile().context_switch_cost, kActionNone});
    c->ops.push_back({TriggerSource::kSyscall, true, Us(18), kActionNone});  // select again
  } else {
    c->ops.push_back({TriggerSource::kSyscall, true, Us(26), kActionNone});  // event dereg
  }
  c->ops.push_back({TriggerSource::kSyscall, true, Us(0.5), kActionConnectionDone});
}

// --- Packet ingress ----------------------------------------------------------

void HttpServerModel::OnPacket(int nic_index, const Packet& p) {
  switch (p.kind) {
    case Packet::Kind::kSyn: {
      if (config_.max_connections != 0 && conns_.size() >= config_.max_connections) {
        ++stats_.syns_rejected;  // listen backlog full: shed before any work
        return;
      }
      Connection& c = conns_[p.flow_id];
      c.flow = p.flow_id;
      c.nic = nic_index;
      AppendConnSetupOps(&c);
      PumpScript(&c);
      return;
    }
    case Packet::Kind::kRequest: {
      auto it = conns_.find(p.flow_id);
      if (it == conns_.end()) {
        return;  // stray
      }
      AppendRequestOps(&it->second);
      PumpScript(&it->second);
      return;
    }
    case Packet::Kind::kFin: {
      auto it = conns_.find(p.flow_id);
      if (it == conns_.end()) {
        return;
      }
      AppendTeardownOps(&it->second);
      PumpScript(&it->second);
      return;
    }
    case Packet::Kind::kAck:
    case Packet::Kind::kData:
    case Packet::Kind::kSynAck:
      // ACK processing cost is part of the NIC's per-packet protocol
      // service; nothing further happens at the application.
      return;
  }
}

void HttpServerModel::PumpScript(Connection* c) {
  if (c->script_running || c->ops.empty()) {
    return;
  }
  c->script_running = true;
  ScriptOp op = c->ops.front();
  c->ops.pop_front();
  SimDuration cost = JitteredCost(op.cost);
  uint64_t flow = c->flow;
  auto cont = [this, flow, op] {
    auto it = conns_.find(flow);
    if (it == conns_.end()) {
      return;
    }
    Connection* conn = &it->second;
    conn->script_running = false;
    RunOpAction(conn, op);
    // RunOpAction may have erased the connection (kActionConnectionDone).
    auto again = conns_.find(flow);
    if (again != conns_.end()) {
      PumpScript(&again->second);
    }
  };
  if (op.is_trigger) {
    kernel_->KernelOp(op.source, cost, std::move(cont));
  } else {
    kernel_->cpu(0).Submit(kernel_->profile().Work(cost), std::move(cont));
  }
}

void HttpServerModel::RunOpAction(Connection* c, const ScriptOp& op) {
  switch (op.action) {
    case kActionNone:
      return;
    case kActionTxSynAck:
      TxControl(c, Packet::Kind::kSynAck, kSynAckBytes);
      return;
    case kActionTxServerAck:
      TxControl(c, Packet::Kind::kAck, kAckPacketBytes);
      return;
    case kActionTxDataPacket:
      TxNextDataPacket(c);
      return;
    case kActionEnqueuePacedResponse: {
      const uint32_t total_bytes =
          config_.workload.file_bytes + config_.workload.response_header_bytes;
      uint32_t remaining = total_bytes;
      while (c->response_packets_left > 0) {
        uint32_t payload = remaining > kDefaultMss ? kDefaultMss : remaining;
        Packet p;
        p.flow_id = c->flow;
        p.kind = Packet::Kind::kData;
        p.payload = payload;
        p.size_bytes = payload + kTcpIpHeaderBytes;
        remaining -= payload;
        --c->response_packets_left;
        p.fin = (c->response_packets_left == 0);  // end-of-response marker
        EnqueuePaced(c->nic, p);
      }
      ++c->requests_served;
      ++stats_.responses_completed;
      return;
    }
    case kActionConnectionDone:
      ++stats_.connections_completed;
      conns_.erase(c->flow);
      return;
  }
}

void HttpServerModel::TxControl(Connection* c, Packet::Kind kind, uint32_t size_bytes) {
  Packet p;
  p.flow_id = c->flow;
  p.kind = kind;
  p.size_bytes = size_bytes;
  EmitOnWire(c, p);
}

void HttpServerModel::TxNextDataPacket(Connection* c) {
  if (c->response_packets_left == 0) {
    return;
  }
  const uint32_t total_bytes =
      config_.workload.file_bytes + config_.workload.response_header_bytes;
  uint32_t idx_from_end = c->response_packets_left;
  uint32_t last_payload = total_bytes % kDefaultMss;
  if (last_payload == 0) {
    last_payload = kDefaultMss;
  }
  Packet p;
  p.flow_id = c->flow;
  p.kind = Packet::Kind::kData;
  p.payload = (idx_from_end == 1) ? last_payload : kDefaultMss;
  p.size_bytes = p.payload + kTcpIpHeaderBytes;
  --c->response_packets_left;
  p.fin = (c->response_packets_left == 0);  // end-of-response marker
  ++stats_.data_packets_sent;
  if (p.fin) {
    ++c->requests_served;
    ++stats_.responses_completed;
  }
  EmitOnWire(c, p);
}

void HttpServerModel::EmitOnWire(Connection* c, Packet p) {
  p.sent_at = kernel_->sim()->now();
  nics_[static_cast<size_t>(c->nic)]->Transmit(p);
}

// --- Pacing -------------------------------------------------------------------

void HttpServerModel::EnqueuePaced(int nic_index, Packet p) {
  paced_queue_.emplace_back(nic_index, p);
}

void HttpServerModel::StartSoftPacer() {
  if (soft_pacer_started_) {
    return;
  }
  soft_pacer_started_ = true;
  // T = 0: due at the very next trigger state (the Section 5.6 setup: "the
  // soft timer was programmed to generate an event every time the system
  // reaches a trigger state").
  kernel_->soft_timers().ScheduleSoftEvent(
      0, [this](const SoftTimerFacility::FireInfo&) { OnSoftPaceFire(); });
}

void HttpServerModel::OnSoftPaceFire() {
  if (!paced_queue_.empty()) {
    auto [nic_index, p] = paced_queue_.front();
    paced_queue_.pop_front();
    // Driver handoff plus the (small) cache effect of running it from a
    // foreign trigger state.
    kernel_->cpu(0).Steal(kernel_->profile().Work(
        JitteredCost(PacedHandoffCost()) + config_.paced_tx_extra_soft));
    ++stats_.paced_packets;
    ++stats_.data_packets_sent;
    p.sent_at = kernel_->sim()->now();
    RecordPacedSend(!paced_queue_.empty());
    nics_[static_cast<size_t>(nic_index)]->Transmit(p);
  }
  // Re-arm for the next trigger state.
  kernel_->soft_timers().ScheduleSoftEvent(
      0, [this](const SoftTimerFacility::FireInfo&) { OnSoftPaceFire(); });
}

void HttpServerModel::StartHardPacer() {
  // The paper's comparator: the 8253 interrupt dispatches a BSD software
  // interrupt thread that transmits one pending packet. The swi runs after
  // the interrupted work completes (which is what stretches the average
  // transmission interval past the programmed period), with the extra cache
  // pollution Table 3 attributes to hardware-timer pacing.
  kernel_->AddPeriodicHardwareTimer(config_.hard_pace_hz, SimDuration::Zero(), [this] {
    if (paced_queue_.empty()) {
      return;
    }
    auto [nic_index, p] = paced_queue_.front();
    paced_queue_.pop_front();
    bool more_pending = !paced_queue_.empty();
    // The software interrupt preempts user work: the transmit happens right
    // after the hardware interrupt, with the extra cache pollution Table 3
    // attributes to output work in interrupt context.
    kernel_->cpu(0).Steal(kernel_->profile().Work(
        JitteredCost(PacedHandoffCost()) + config_.paced_tx_extra_hard));
    ++stats_.paced_packets;
    ++stats_.data_packets_sent;
    p.sent_at = kernel_->sim()->now();
    RecordPacedSend(more_pending);
    nics_[static_cast<size_t>(nic_index)]->Transmit(p);
  });
}

void HttpServerModel::RecordPacedSend(bool more_pending) {
  // Record the interval only between *back-to-back* paced sends (the queue
  // stayed non-empty across them): Table 3's "avg xmit intvl" characterizes
  // the pacing process, not the request arrival process.
  SimTime now = kernel_->sim()->now();
  if (have_last_paced_tx_) {
    paced_intervals_.Add((now - last_paced_tx_).ToMicros());
  }
  have_last_paced_tx_ = more_pending;
  last_paced_tx_ = now;
}

}  // namespace softtimer
