// Web-server models: "apache" (multi-process, context-switch heavy, larger
// per-request kernel footprint) and "flash" (event-driven single process,
// lean). Each HTTP connection runs a script of kernel operations - syscalls,
// IP output steps, TCP housekeeping, occasional traps - whose counts and
// costs are calibrated so that base throughput, the Table 2 trigger-source
// mix, and the Table 1 interval statistics land near the paper's
// measurements (see DESIGN.md section 5.7 and EXPERIMENTS.md).
//
// Response data can leave through three transmit disciplines:
//   kImmediate  - the normal output path (one ip-output step per packet).
//   kSoftPaced  - rate-based clocking via soft timers: a self-rescheduling
//                 T=0 soft event transmits one pending packet per trigger
//                 state (the Section 5.6 setup).
//   kHardPaced  - rate-based clocking via a periodic hardware interrupt
//                 timer (the Section 5.6 comparator), with the extra cache
//                 pollution of running the output path in interrupt context.

#ifndef SOFTTIMER_SRC_HTTPSIM_HTTP_SERVER_MODEL_H_
#define SOFTTIMER_SRC_HTTPSIM_HTTP_SERVER_MODEL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/httpsim/http_types.h"
#include "src/machine/kernel.h"
#include "src/net/nic.h"
#include "src/net/packet.h"
#include "src/sim/random.h"
#include "src/stats/summary_stats.h"

namespace softtimer {

class HttpServerModel {
 public:
  enum class ServerKind { kApache, kFlash };
  enum class TxDiscipline { kImmediate, kSoftPaced, kHardPaced };

  struct Config {
    ServerKind kind = ServerKind::kApache;
    HttpWorkload workload;
    TxDiscipline tx = TxDiscipline::kImmediate;
    // kHardPaced: 8253 frequency (the paper programs 50 kHz, one tick per
    // 20 us).
    uint64_t hard_pace_hz = 50'000;
    // Extra per-packet cost of transmitting from a pacing handler, beyond
    // the normal output path: cache effects at a trigger state (soft) vs in
    // interrupt context (hard). Negative = use the per-server-kind default
    // calibrated against Table 3 (the paper attributes the large
    // hardware-timer gap to cache pollution, larger for the locality-
    // sensitive Flash server).
    SimDuration paced_tx_extra_soft = SimDuration::Micros(-1);
    SimDuration paced_tx_extra_hard = SimDuration::Micros(-1);
    // Log-normal jitter applied to every op cost, and a cap that keeps the
    // tail within the paper's observed maxima. Negative sigma / zero cap =
    // per-kind calibrated default.
    double op_jitter_sigma = -1.0;
    SimDuration op_cost_cap = SimDuration::Zero();
    // Global multiplier on all op costs (calibration knob); 0 = per-kind
    // calibrated default.
    double op_scale = 0.0;
    // Probability that a request path takes a page-fault trap.
    double trap_probability = 1.0;
    // Listen-queue backlog: SYNs beyond this many live connections are
    // dropped cheaply (0 = unlimited). Early shedding is what lets a polled
    // server survive overload (the receiver-livelock experiment).
    size_t max_connections = 0;
    uint64_t rng_seed = 7;
  };

  HttpServerModel(Kernel* kernel, Config config);

  // Registers a NIC; its rx handler must be wired to OnPacket(index, p).
  // Returns the NIC index.
  int AttachNic(Nic* nic);

  // Packet ingress (already charged for protocol processing by the NIC).
  void OnPacket(int nic_index, const Packet& p);

  struct Stats {
    uint64_t connections_completed = 0;
    uint64_t responses_completed = 0;
    uint64_t data_packets_sent = 0;
    uint64_t paced_packets = 0;
    uint64_t syns_rejected = 0;
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() {
    stats_ = Stats{};
    paced_intervals_.Reset();
    have_last_paced_tx_ = false;
  }

  uint64_t paced_queue_depth() const { return paced_queue_.size(); }

  // Intervals between consecutive paced transmissions (Table 3's "Avg xmit
  // intvl"), in microseconds; gaps from a drained queue are excluded.
  const SummaryStats& paced_intervals() const { return paced_intervals_; }

 private:
  struct ScriptOp {
    TriggerSource source = TriggerSource::kSyscall;
    bool is_trigger = true;  // false: pure CPU cost (e.g. context switch)
    SimDuration cost;        // reference-speed median
    // 0 = no packet; otherwise a packet action index (see RunOpAction).
    int action = 0;
  };

  struct Connection {
    uint64_t flow = 0;
    int nic = 0;
    std::deque<ScriptOp> ops;
    bool script_running = false;
    uint32_t requests_served = 0;
    // Data packets of the in-progress response.
    uint32_t response_packets_left = 0;
  };

  // Script builders (per server kind).
  void AppendConnSetupOps(Connection* c);
  void AppendRequestOps(Connection* c);
  void AppendTeardownOps(Connection* c);

  void PumpScript(Connection* c);
  void RunOpAction(Connection* c, const ScriptOp& op);

  // Transmit helpers.
  void TxControl(Connection* c, Packet::Kind kind, uint32_t size_bytes);
  void TxNextDataPacket(Connection* c);
  void EmitOnWire(Connection* c, Packet p);

  // Pacing machinery.
  void EnqueuePaced(int nic_index, Packet p);
  void StartSoftPacer();
  void OnSoftPaceFire();
  void StartHardPacer();
  void RecordPacedSend(bool more_pending);
  SimDuration PerPacketOutputCost() const;
  SimDuration PacedHandoffCost() const;
  SimDuration JitteredCost(SimDuration median);

  Kernel* kernel_;
  Config config_;
  Rng rng_;
  std::vector<Nic*> nics_;
  std::unordered_map<uint64_t, Connection> conns_;
  // FIFO of (nic, packet) awaiting a pacing event.
  std::deque<std::pair<int, Packet>> paced_queue_;
  bool soft_pacer_started_ = false;
  SimTime last_paced_tx_;
  bool have_last_paced_tx_ = false;
  SummaryStats paced_intervals_;
  Stats stats_;
};

}  // namespace softtimer

#endif  // SOFTTIMER_SRC_HTTPSIM_HTTP_SERVER_MODEL_H_
